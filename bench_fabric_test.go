package repro

import (
	"context"
	"sync"
	"testing"

	"repro/internal/comm"
)

// --- Fabric benches (the pluggable communication layer, DESIGN.md §9) ---
//
// The three backends perform the same reduction over the same K×n
// inputs; the bench contrasts what each backend adds on top of the
// arithmetic — nothing (in-process reference), clock modeling (sim), or
// real framed sockets through the coordinator relay (loopback TCP).
// Charged bytes per op are reported as a custom metric and are
// identical across the three by the fabric contract.

const (
	fabricBenchK = 4
	fabricBenchN = 4096
)

func fabricBenchVecs() [][]float64 {
	return benchVecs(fabricBenchN, fabricBenchK)
}

func benchInProcessFabric(b *testing.B, fabric comm.Fabric) {
	b.Helper()
	vecs := fabricBenchVecs()
	var rep comm.CostReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = fabric.AllReduce("model", vecs)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Bytes), "charged_B/op")
}

// BenchmarkFabricAllReduceInProc is the reference backend: pure
// reduction, no transport.
func BenchmarkFabricAllReduceInProc(b *testing.B) {
	benchInProcessFabric(b, comm.NewClusterWithCost(fabricBenchK, comm.DefaultCostModel()))
}

// BenchmarkFabricAllReduceSim adds the virtual clock (per-link time
// model) on top of the reference math.
func BenchmarkFabricAllReduceSim(b *testing.B) {
	benchInProcessFabric(b, comm.NewSimFabric(fabricBenchK, comm.DefaultCostModel(), comm.ScenarioFedWAN))
}

// BenchmarkFabricAllReduceTCP runs the collective through real loopback
// sockets: K fabric clients, framed contributions, coordinator bundle
// relay, local reduction — the full multi-process wire path per op.
func BenchmarkFabricAllReduceTCP(b *testing.B) {
	coord, err := comm.ListenCoordinator("127.0.0.1:0", fabricBenchK)
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	serveDone := make(chan error, 1)
	go func() {
		_, err := coord.Serve(context.Background(), []byte("{}"))
		serveDone <- err
	}()

	fabrics := make([]*comm.TCPFabric, fabricBenchK)
	for range fabrics {
		f, _, err := comm.DialFabric(context.Background(), coord.Addr(), comm.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fabrics[f.Rank()] = f
	}
	vecs := fabricBenchVecs()

	// Ranks 1..K−1 run their b.N collectives (and their result frame —
	// the coordinator acks results only once all K arrive, so every rank
	// must send its own) on goroutines; rank 0 is timed on the bench
	// goroutine.
	rounds := b.N
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 1; w < fabricBenchK; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := [][]float64{vecs[w]}
			for i := 0; i < rounds; i++ {
				fabrics[w].AllReduce("model", local)
			}
			if err := fabrics[w].SendResult([]byte("ok")); err != nil {
				b.Error(err)
			}
		}(w)
	}
	var rep comm.CostReport
	local := [][]float64{vecs[0]}
	for i := 0; i < rounds; i++ {
		rep = fabrics[0].AllReduce("model", local)
	}
	b.StopTimer()
	b.ReportMetric(float64(rep.Bytes), "charged_B/op")
	b.ReportMetric(float64(rep.WireBytes), "wire_B/op")

	if err := fabrics[0].SendResult([]byte("ok")); err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		b.Fatal(err)
	}
}
