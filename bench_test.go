// Benchmarks regenerating every table and figure of the paper's
// evaluation at Tiny scale, plus ablation benches for the design choices
// called out in DESIGN.md §5 and sequential-vs-parallel comparison
// benches for the execution engine (DESIGN.md §3). Each benchmark
// executes the corresponding experiment runner once per iteration and
// reports the headline quantities (median communication, steps) as
// custom metrics, so `go test -bench=. -benchmem` prints the reproduced
// series alongside timing. Run `cmd/fdaexp -scale quick|full` for denser
// grids.
package repro

import (
	"testing"

	"repro/fda"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/tensor"
)

// benchOpts returns Tiny-scale options; seed fixed for comparability.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: experiments.Tiny, Seed: 1}
}

// reportClouds attaches per-strategy medians of (comm, steps) over
// reached runs to the benchmark output.
func reportClouds(b *testing.B, recs []experiments.Record) {
	b.Helper()
	type agg struct{ comm, steps, n float64 }
	sums := map[string]*agg{}
	for _, r := range recs {
		if !r.Reached {
			continue
		}
		a := sums[r.Strategy]
		if a == nil {
			a = &agg{}
			sums[r.Strategy] = a
		}
		a.comm += r.CommGB
		a.steps += float64(r.Steps)
		a.n++
	}
	for name, a := range sums {
		if a.n == 0 {
			continue
		}
		b.ReportMetric(a.comm/a.n*1e3, name+"_comm_MB/op")
		b.ReportMetric(a.steps/a.n, name+"_steps/op")
	}
}

func BenchmarkTable2Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2(benchOpts())
		if t.Len() != 5 {
			b.Fatal("table rows")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure3(benchOpts()))
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure4(benchOpts()))
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure5(benchOpts()))
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure6(benchOpts()))
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure7(benchOpts())
		// Report the generalization gaps (paper: FDA ≈ 0, baselines > 0).
		for _, c := range curves {
			b.ReportMetric(c.Gap, c.Strategy+"_gap")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure8(benchOpts()))
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure9(benchOpts()))
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure10(benchOpts()))
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure11(benchOpts()))
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fits := experiments.Figure12(benchOpts())
		for _, f := range fits {
			b.ReportMetric(f.Slope*1e5, "slope_"+f.Setting+"_x1e5")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure13(benchOpts()))
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// ablationConfig is a small, fast shared workload.
func ablationConfig(seed uint64) fda.Config {
	spec, err := fda.ModelByName("lenet5s")
	if err != nil {
		panic(err)
	}
	train, test := fda.DatasetForModel(spec, seed)
	return fda.Config{
		K: 5, BatchSize: 32, Seed: seed,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Train: train, Test: test,
		MaxSteps: 150, EvalEvery: 50,
	}
}

// BenchmarkAblationSketchSize sweeps the AMS sketch width, reporting sync
// counts and state traffic: wider sketches estimate variance more tightly
// (fewer syncs) at higher monitoring cost.
func BenchmarkAblationSketchSize(b *testing.B) {
	theta := 0.05
	for i := 0; i < b.N; i++ {
		for _, m := range []int{16, 64, 250} {
			s := core.NewSketchFDA(theta)
			s.L, s.M = 5, m
			res := fda.MustRun(ablationConfig(3), s)
			b.ReportMetric(float64(res.SyncCount), "syncs_m"+itoa(m))
			b.ReportMetric(float64(res.StateBytes)/1e6, "stateMB_m"+itoa(m))
		}
	}
}

// BenchmarkAblationXi compares LinearFDA's ξ heuristics: the paper's
// drift direction vs a random unit vector vs no deflation at all.
func BenchmarkAblationXi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mode := range []string{"drift", "random", "zero"} {
			l := core.NewLinearFDA(0.05)
			l.XiMode = mode
			res := fda.MustRun(ablationConfig(4), l)
			b.ReportMetric(float64(res.SyncCount), "syncs_"+mode)
		}
	}
}

// BenchmarkAblationCostModel contrasts ring vs naive AllReduce
// accounting on identical trajectories.
func BenchmarkAblationCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ring := range []bool{true, false} {
			cfg := ablationConfig(5)
			cfg.Cost = fda.CostModel{BytesPerParam: 4, Ring: ring}
			res := fda.MustRun(cfg, fda.NewLinearFDA(0.05))
			name := "naive"
			if ring {
				name = "ring"
			}
			b.ReportMetric(float64(res.CommBytes)/1e6, "commMB_"+name)
		}
	}
}

// BenchmarkAblationOracle measures how many extra synchronizations the
// deployable estimators pay relative to exact variance monitoring.
func BenchmarkAblationOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range []fda.Strategy{
			fda.NewOracleFDA(0.05), fda.NewSketchFDA(0.05), fda.NewLinearFDA(0.05),
		} {
			res := fda.MustRun(ablationConfig(6), s)
			b.ReportMetric(float64(res.SyncCount), "syncs_"+res.Strategy)
		}
	}
}

// BenchmarkAblationCompression composes top-k and quantization codecs
// with FDA's synchronization step (the paper's §2 compatibility claim).
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			name  string
			codec fda.Codec
		}{
			{"dense", nil},
			{"top10", fda.TopK{Fraction: 0.1}},
			{"q8", fda.Quantize{Bits: 8}},
		} {
			cfg := ablationConfig(7)
			cfg.SyncCodec = c.codec
			res := fda.MustRun(cfg, fda.NewLinearFDA(0.05))
			b.ReportMetric(float64(res.ModelBytes)/1e6, "modelMB_"+c.name)
			b.ReportMetric(res.FinalTestAcc, "acc_"+c.name)
		}
	}
}

// --- Parallel execution benches ---

// benchSweepJobs regenerates Figure 3's Tiny grid with the given job
// count; comparing the Jobs=1 and Jobs=GOMAXPROCS variants shows the
// sweep-level speedup while reportClouds proves the medians match.
func benchSweepJobs(b *testing.B, jobs int) {
	o := benchOpts()
	o.Jobs = jobs
	for i := 0; i < b.N; i++ {
		reportClouds(b, experiments.Figure3(o))
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchSweepJobs(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweepJobs(b, fda.AutoParallelism) }

// --- Warm-start benches ---

// BenchmarkSweepThetaCold / BenchmarkSweepThetaWarm measure prefix-keyed
// warm starts (DESIGN.md §10) on the thetasweep grid: three FDA variants
// times a Θ series per variant, one trajectory seed per variant, run
// sequentially. Cold trains every cell from step 0; Warm runs the same
// grid over a fresh snapshot store, so each Θ series' later cells
// restore the prefix its earlier cells published. Records are
// bit-identical either way — the wall-clock gap between the two is the
// figure-sweep series BENCH_PR6.json tracks, and the _Warm variant
// reports how many cells restored and how many steps the restores
// skipped.
func BenchmarkSweepThetaCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if recs := experiments.ThetaSweep(benchOpts()); len(recs) == 0 {
			b.Fatal("no records")
		}
	}
}

func BenchmarkSweepThetaWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := runstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		o := benchOpts()
		o.Store, o.Warm = st, true
		o.Stats = &experiments.SweepStats{}
		if recs := experiments.ThetaSweep(o); len(recs) == 0 {
			b.Fatal("no records")
		}
		b.ReportMetric(float64(o.Stats.SnapshotHits.Load()), "snapshot_hits/op")
		b.ReportMetric(float64(o.Stats.StepsSaved.Load()), "steps_saved/op")
	}
}

// benchRunParallelism times one training run's worker/eval loops at the
// given Config.Parallelism; the reported sync count is identical across
// settings by the determinism contract.
func benchRunParallelism(b *testing.B, par int) {
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(12)
		cfg.Parallelism = par
		res := fda.MustRun(cfg, fda.NewLinearFDA(0.05))
		b.ReportMetric(float64(res.SyncCount), "syncs")
	}
}

func BenchmarkRunWorkersSequential(b *testing.B) { benchRunParallelism(b, 1) }
func BenchmarkRunWorkersParallel(b *testing.B)   { benchRunParallelism(b, fda.AutoParallelism) }

// benchStep times one worker's mini-batch step on a zoo model (the
// simulation's compute unit). Allocations reported here guard the
// zero-allocation contract of the fused kernel layer.
func benchStep(b *testing.B, model string) {
	spec, err := fda.ModelByName(model)
	if err != nil {
		b.Fatal(err)
	}
	train, _ := fda.DatasetForModel(spec, 1)
	net := spec.Build(fda.NewRNG(1))
	o := spec.Optimizer()
	sampler := newBenchSampler(train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.LossGradBatch(sampler.batch(32))
		o.Step(net.Params(), net.Grads())
	}
}

// BenchmarkLocalStep isolates the per-step training cost of one worker on
// the smallest zoo model — the headline number of the PR 3 fused-kernel
// overhaul (tracked in BENCH_PR3.json against the PR 2 baseline).
func BenchmarkLocalStep(b *testing.B) { benchStep(b, "lenet5s") }

// BenchmarkLocalStepDenseNet covers the largest conv stack (three conv
// stages, dropout, SGD-NM), whose kernel mix differs from LeNet's.
func BenchmarkLocalStepDenseNet(b *testing.B) { benchStep(b, "densenet121s") }

// --- Kernel benches (the fused layer of internal/tensor) ---

// benchSink defeats dead-code elimination of pure kernels.
var benchSink float64

func benchVecs(n int, count int) [][]float64 {
	rng := fda.NewRNG(uint64(n))
	out := make([][]float64, count)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = rng.Float64() - 0.5
		}
	}
	return out
}

func BenchmarkKernelDot(b *testing.B) {
	v := benchVecs(4096, 2)
	b.SetBytes(2 * 8 * 4096)
	for i := 0; i < b.N; i++ {
		benchSink += tensor.Dot(v[0], v[1])
	}
}

func BenchmarkKernelAXPY(b *testing.B) {
	v := benchVecs(4096, 2)
	b.SetBytes(3 * 8 * 4096)
	for i := 0; i < b.N; i++ {
		tensor.AXPY(1e-9, v[0], v[1])
	}
}

func BenchmarkKernelAXPY4x2(b *testing.B) {
	v := benchVecs(4096, 6)
	b.SetBytes(8 * 8 * 4096)
	for i := 0; i < b.N; i++ {
		tensor.AXPY4x2(1e-9, 2e-9, 3e-9, 4e-9, 5e-9, 6e-9, 7e-9, 8e-9,
			v[0], v[1], v[2], v[3], v[4], v[5])
	}
}

func BenchmarkKernelSubThenSquaredNorm(b *testing.B) {
	v := benchVecs(4096, 3)
	b.SetBytes(3 * 8 * 4096)
	for i := 0; i < b.N; i++ {
		benchSink += tensor.SubThenSquaredNorm(v[0], v[1], v[2])
	}
}

func BenchmarkKernelMatMulBlocked(b *testing.B) {
	const n = 96
	m := benchVecs(n*n, 3)
	am := tensor.MatFrom(n, n, m[0])
	bm := tensor.MatFrom(n, n, m[1])
	dst := tensor.MatFrom(n, n, m[2])
	b.SetBytes(3 * 8 * n * n)
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, am, bm)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Telemetry benches (internal/obs, DESIGN.md §11) ---

// benchSessionStep times one end-to-end Session.Step of a K=4 lenet5s
// run — strategy bookkeeping, fabric collectives and telemetry gates
// included. The ObsOff/ObsOn pair is the headline contrast tracked in
// BENCH_PR7.json: with telemetry disabled the instrumentation must cost
// one atomic load per gate, i.e. be unmeasurable against ObsOff's
// baseline noise.
func benchSessionStep(b *testing.B, enable bool) {
	if enable {
		fda.EnableTelemetry()
		defer fda.DisableTelemetry()
	}
	spec, err := fda.ModelByName("lenet5s")
	if err != nil {
		b.Fatal(err)
	}
	train, test := fda.DatasetForModel(spec, 1)
	cfg := fda.Config{
		K: 4, BatchSize: 32, Seed: 1,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Train: train, Test: test,
		MaxSteps: b.N + 1, EvalEvery: 1 << 30,
	}
	sess, err := fda.NewSession(nil, cfg, fda.NewLinearFDA(spec.ThetaGrid[1]))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalStepSessionObsOff(b *testing.B) { benchSessionStep(b, false) }
func BenchmarkLocalStepSessionObsOn(b *testing.B)  { benchSessionStep(b, true) }

// The Obs micro benches price the telemetry primitives themselves, in
// both armed and disarmed states (the disarmed numbers are the cost
// every instrumented call site pays when observability is off).
func BenchmarkObsCounterAddOn(b *testing.B) {
	fda.EnableTelemetry()
	defer fda.DisableTelemetry()
	c := obs.Default.Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsCounterAddOff(b *testing.B) {
	c := obs.Default.Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramObserveOn(b *testing.B) {
	fda.EnableTelemetry()
	defer fda.DisableTelemetry()
	h := obs.Default.Histogram("bench_hist_seconds", "bench", obs.Seconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*977 + 1)
	}
}

func BenchmarkObsHistogramObserveOff(b *testing.B) {
	h := obs.Default.Histogram("bench_hist_seconds", "bench", obs.Seconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*977 + 1)
	}
}

func BenchmarkObsSpanDisarmed(b *testing.B) {
	fda.EnableTelemetry()
	defer fda.DisableTelemetry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.StartRegion("bench", "bench")
		sp.End()
	}
}
