#!/bin/sh
# clusterbench: the scale-out saturation study behind BENCH_PR10.json
# (DESIGN.md §14). For each cluster size (1, 2, 4 replicas) it boots the
# replicas on a fresh shared store behind fdagate, drives the same
# geometric `fdaload -ramp` through the gateway, captures each replica's
# /v1/metrics snapshot, and finally folds the per-size ramp reports into
# one benchjson-compatible capacity report with `fdagate -analyze`.
#
# Methodology: the workload submits *distributed* train jobs (the
# server admits each one and parks it waiting for fabric workers, like
# the thousand-job load test), so a job costs a replica an admission
# slot rather than host CPU. That makes the measured resource the
# per-replica admission capacity (-max-queue), which is the thing that
# actually multiplies when replicas are added — the study stays honest
# on a single-core CI box where N co-hosted replicas cannot multiply
# FLOPs. Saturation shows up as 503 shed load (counted, never an
# error); the knee is the last ramp level the cluster absorbs with
# <10% rejections.
#
# Usage: scripts/clusterbench.sh [outfile]   (default BENCH_PR10.json)
set -eu

OUT=${1:-BENCH_PR10.json}
WORK=.clusterbench
GO=${GO:-go}
PORT_GATE=18100
PORT_BASE=18110
MAX_QUEUE=62
RAMP="5,10,20,40,80,160"

rm -rf "$WORK"
mkdir -p "$WORK"
$GO build -o "$WORK/" ./cmd/fdaserve ./cmd/fdagate ./cmd/fdaload

# The shared workload spec: two-thirds distributed train submissions
# (fresh seed per request — real admissions, no dedupe), the rest
# status and catalog reads. The heavy train fraction and 4s levels
# keep Poisson noise ≥2.4σ away from every knee boundary: with
# -max-queue 62 and the ×2 ramp grid, the expected knees sit at
# 10/20/40 req/s for 1/2/4 replicas.
cat >"$WORK/spec.json" <<'EOF'
{
  "arrival": {"process": "poisson", "rate": 1},
  "duration_sec": 4,
  "seed": 11,
  "mix": [
    {"kind": "train", "weight": 4, "train": {
      "model": "lenet5s", "strategy": "LinearFDA", "k": 1, "batch": 8,
      "steps": 100000, "eval_every": 50000, "seed_base": 1,
      "distributed": true}},
    {"kind": "status", "weight": 1},
    {"kind": "store", "weight": 1}
  ]
}
EOF

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    PIDS=""
}
trap cleanup EXIT INT TERM

# POSIX sh has no locals: the tries counter must not collide with the
# callers' loop variables.
wait_healthz() {
    tries=0
    while ! curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null 2>&1; do
        tries=$((tries + 1))
        [ "$tries" -ge 100 ] && { echo "clusterbench: $2 on :$1 never came up" >&2; exit 1; }
        sleep 0.1
    done
}

run_series() {
    n=$1
    echo "clusterbench: === $n replica(s), ramp $RAMP req/s ===" >&2
    store="$WORK/store$n"
    mkdir -p "$store"
    replicas=""
    i=0
    while [ "$i" -lt "$n" ]; do
        port=$((PORT_BASE + i))
        "$WORK/fdaserve" -store "$store" -addr "127.0.0.1:$port" -name "r$i" \
            -max-queue $MAX_QUEUE -fabric 127.0.0.1:0 \
            >"$WORK/serve$n-$i.log" 2>&1 &
        PIDS="$PIDS $!"
        replicas="$replicas,http://127.0.0.1:$port"
        i=$((i + 1))
    done
    replicas=${replicas#,}
    i=0
    while [ "$i" -lt "$n" ]; do
        wait_healthz $((PORT_BASE + i)) "replica r$i"
        i=$((i + 1))
    done
    "$WORK/fdagate" -addr "127.0.0.1:$PORT_GATE" -replicas "$replicas" \
        -poll 500ms >"$WORK/gate$n.log" 2>&1 &
    PIDS="$PIDS $!"
    wait_healthz $PORT_GATE fdagate

    "$WORK/fdaload" -addr "http://127.0.0.1:$PORT_GATE" -spec "$WORK/spec.json" \
        -ramp "$RAMP" -out "$WORK/ramp$n.json" -check -max-rejected 0.95

    # Per-replica metrics snapshots feed the queue-wait percentiles of
    # the capacity report.
    snaps=""
    i=0
    while [ "$i" -lt "$n" ]; do
        curl -sf "http://127.0.0.1:$((PORT_BASE + i))/v1/metrics" \
            >"$WORK/metrics$n-$i.json"
        snaps="$snaps:$WORK/metrics$n-$i.json"
        i=$((i + 1))
    done
    SERIES="$SERIES,$n=$WORK/ramp$n.json$snaps"
    cleanup
}

SERIES=""
for n in 1 2 4; do
    run_series "$n"
done

"$WORK/fdagate" -analyze "${SERIES#,}" -out "$OUT"
echo "clusterbench: wrote $OUT" >&2
