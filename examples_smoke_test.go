package repro

import (
	"os/exec"
	"testing"

	"repro/fda"
)

// TestExamplesBuild compiles every example main against the current tree
// so API drift in the facade cannot silently break them.
func TestExamplesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
}

// TestQuickstartLogicTinyScale runs the quickstart walk-through's flow —
// same workload, model and strategies — at Tiny scale (a reduced step
// budget and a reachable target) and checks it completes with a sane
// result, so the tutorial path stays exercised by the suite.
func TestQuickstartLogicTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy training run")
	}
	train, test := fda.MNISTLike(42)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	model := func(rng *fda.RNG) *fda.Network {
		conv := fda.NewConv2D(fda.Shape{H: 8, W: 8, C: 1}, 6, 3, fda.GlorotUniformInit)
		pool := fda.NewMaxPool2D(conv.OutShape(), 2)
		return fda.NewNetwork(rng,
			conv, fda.NewReLU(conv.OutDim()), pool,
			fda.NewDense(pool.OutDim(), 32, fda.GlorotUniformInit),
			fda.NewReLU(32),
			fda.NewDense(32, 10, fda.GlorotUniformInit),
		)
	}

	cfg := fda.Config{
		K: 8, BatchSize: 32, Seed: 42,
		Model: model, Optimizer: fda.NewAdam(1e-3),
		Train: train, Test: test,
		TargetAccuracy: 0.80, // Tiny-scale stand-in for the example's 0.95
		MaxSteps:       200,
		Parallelism:    fda.AutoParallelism,
	}
	d := model(fda.NewRNG(0)).NumParams()
	theta := 4e-5 * float64(d)

	for _, strat := range []fda.Strategy{fda.NewLinearFDA(theta), fda.NewSynchronous()} {
		res := fda.MustRun(cfg, strat)
		if res.Steps == 0 || res.FinalTestAcc < 0.3 {
			t.Fatalf("%s: implausible result %v", res.Strategy, res)
		}
		if !res.ReachedTarget {
			t.Logf("%s did not reach the tiny target (acc %.3f) — acceptable at this budget",
				res.Strategy, res.FinalTestAcc)
		}
	}
}
