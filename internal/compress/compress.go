// Package compress implements the gradient/model compression techniques
// the paper's related-work section names as composable with FDA: top-k
// sparsification (Aji & Heafield) and uniform quantization (as in QSGD-
// style schemes). FDA only decides *when* to synchronize; these codecs
// shrink *what* is transmitted during a synchronization, so their savings
// stack multiplicatively with FDA's (paper §2, "Compression").
//
// Codecs are lossy round-trips: Encode produces the wire size in bytes and
// Decode reconstructs an approximation. The trainer applies them to worker
// drifts during a synchronization and charges the compressed size.
package compress

import (
	"fmt"
	"math"
	"sort"
)

// Codec is a lossy vector compressor with explicit wire accounting.
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	// Roundtrip writes the decode(encode(v)) reconstruction into dst
	// (which may alias v) and returns the wire size in bytes that
	// transmitting encode(v) would cost.
	Roundtrip(dst, v []float64) int
}

// TopK keeps only the Fraction largest-magnitude components, zeroing the
// rest. Wire format: one (index, value) pair per kept component
// (4 + 4 bytes, int32 index and float32 value).
type TopK struct {
	// Fraction of components kept, in (0, 1].
	Fraction float64
}

// Name implements Codec.
func (c TopK) Name() string { return fmt.Sprintf("top%g%%", c.Fraction*100) }

// keepCount returns how many components TopK retains for an n-vector.
// It depends only on n, so every worker can price a peer's payload
// without seeing it.
func (c TopK) keepCount(n int) int {
	if c.Fraction <= 0 || c.Fraction > 1 {
		panic(fmt.Sprintf("compress: TopK fraction %v outside (0,1]", c.Fraction))
	}
	keep := int(math.Ceil(c.Fraction * float64(n)))
	if keep < 1 {
		// Also the n == 0 case: the historical accounting charges one
		// (index, value) pair for an empty vector, and the wire encoding
		// simply carries zero pairs.
		keep = 1
	}
	if n > 0 && keep > n {
		keep = n
	}
	return keep
}

// kept returns the indices TopK retains for v, ascending — the single
// source of truth shared by Roundtrip and the wire Encode so the
// in-process reconstruction and a decoded wire payload are bit-equal.
// Everything strictly above the keep-th largest magnitude is retained,
// then the remaining quota fills with threshold-magnitude components in
// scan order — a plain ">= thresh" scan could exhaust the quota on ties
// and drop a strictly larger component appearing later.
func (c TopK) kept(v []float64) []int {
	n := len(v)
	keep := c.keepCount(n)
	idx := make([]int, 0, keep)
	if keep >= n {
		for i := range v {
			idx = append(idx, i)
		}
		return idx
	}
	mags := make([]float64, n)
	for i, x := range v {
		mags[i] = math.Abs(x)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
	thresh := mags[keep-1]
	above := 0
	for _, m := range mags[:keep] {
		if m > thresh {
			above++
		}
	}
	tieQuota := keep - above
	for i, x := range v {
		m := math.Abs(x)
		switch {
		case m > thresh:
			idx = append(idx, i)
		case m == thresh && tieQuota > 0:
			idx = append(idx, i)
			tieQuota--
		}
	}
	return idx
}

// Roundtrip implements Codec.
func (c TopK) Roundtrip(dst, v []float64) int {
	n := len(v)
	keep := c.keepCount(n)
	if keep >= n {
		copy(dst, v)
		return keep * 8
	}
	idx := c.kept(v)
	// Scatter kept values; idx is ascending, so walking it alongside a
	// zero fill reconstructs in one pass even when dst aliases v.
	j := 0
	for i := range dst[:n] {
		if j < len(idx) && idx[j] == i {
			dst[i] = v[i]
			j++
		} else {
			dst[i] = 0
		}
	}
	return keep * 8
}

// Quantize maps each component onto 2^Bits uniform levels between the
// vector's min and max. Wire format: Bits per component plus two float32
// range scalars.
type Quantize struct {
	// Bits per component, in [1, 16].
	Bits int
}

// Name implements Codec.
func (c Quantize) Name() string { return fmt.Sprintf("q%dbit", c.Bits) }

// Roundtrip implements Codec.
func (c Quantize) Roundtrip(dst, v []float64) int {
	if c.Bits < 1 || c.Bits > 16 {
		panic(fmt.Sprintf("compress: Quantize bits %d outside [1,16]", c.Bits))
	}
	if len(v) == 0 {
		return 8
	}
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	levels := float64(int(1)<<c.Bits) - 1
	if hi == lo {
		copy(dst, v)
	} else {
		scale := (hi - lo) / levels
		for i, x := range v {
			q := math.Round((x - lo) / scale)
			dst[i] = lo + q*scale
		}
	}
	return (len(v)*c.Bits+7)/8 + 8
}

// Chain composes codecs left to right (for example top-k then quantize).
// Charging only the final stage's wire size on the surviving data is
// subtle to get right for every pairing, so the conservative model here
// charges the sum of all stage outputs' sizes, documenting an upper
// bound; a Chain is therefore never billed below any of its stages.
type Chain struct {
	Stages []Codec
}

// Name implements Codec.
func (c Chain) Name() string {
	s := ""
	for i, st := range c.Stages {
		if i > 0 {
			s += "+"
		}
		s += st.Name()
	}
	return s
}

// Roundtrip implements Codec. The wire cost accumulates across stages —
// the conservative sum the type comment specifies; an earlier version
// charged only the final stage, silently under-billing every chained
// codec. An empty Chain transmits the vector dense at 4 bytes/param,
// consistent with CostModel.BytesPerParam's float32 wire format.
func (c Chain) Roundtrip(dst, v []float64) int {
	if len(c.Stages) == 0 {
		copy(dst, v)
		return len(v) * 4
	}
	cur := make([]float64, len(v))
	copy(cur, v)
	bytes := 0
	for _, st := range c.Stages {
		bytes += st.Roundtrip(cur, cur)
	}
	copy(dst, cur)
	return bytes
}
