// Wire serialization for the codecs: Encode materializes a compressed
// vector as real framed bytes and Decode reconstructs from them, so a
// socket fabric can transmit codec-compressed drifts instead of merely
// accounting their hypothetical size.
//
// Frame layout (little-endian):
//
//	u32 payLen   — length of everything after this prefix
//	u8  codecID  — idDense/idTopK/idQuant (the decoding schema)
//	u32 n        — original vector length
//	body         — codec-specific (see each Encode)
//	u32 crc      — CRC-32 (IEEE) over codecID..body
//
// Exactness contract (pinned by TestWireMatchesRoundtrip): for every
// codec, Decode(Encode(v)) is bit-for-bit equal to the in-process
// Roundtrip(v) reconstruction. Values therefore travel as full float64
// (TopK pairs) or as the exact (lo, q, scale) triple that Roundtrip's
// arithmetic produces (Quantize) — the wire is the reference
// implementation's reconstruction, not a re-approximation of it. The
// charged wire size stays Roundtrip's cost-model figure (float32-based,
// the paper's accounting); the physically framed bytes are reported by
// len(Encode(v)) and may differ — exactness is favored over matching
// the hypothetical float32 wire, and the divergence is confined to the
// diagnostic CostReport.WireBytes channel.
package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// WireCodec is a Codec that can materialize its compressed form as real
// bytes. All codecs in this package implement it.
type WireCodec interface {
	Codec
	// Encode produces the framed wire payload for v.
	Encode(v []float64) []byte
	// Decode reconstructs into dst (len(dst) must equal the encoded n)
	// from a payload produced by the same codec configuration.
	Decode(dst []float64, payload []byte) error
}

const (
	idDense byte = 0
	idTopK  byte = 1
	idQuant byte = 2
)

// frameHeader appends the prefix (payLen placeholder, codecID, n).
func frameHeader(dst []byte, id byte, n int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, 0) // patched by seal
	dst = append(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	return dst
}

// seal patches the length prefix and appends the CRC trailer.
func seal(frame []byte) []byte {
	crc := crc32.ChecksumIEEE(frame[4:])
	frame = binary.LittleEndian.AppendUint32(frame, crc)
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	return frame
}

// open verifies the prefix, codec ID, vector length and CRC, returning
// the body.
func open(payload []byte, wantID byte, wantN int) ([]byte, error) {
	if len(payload) < 13 {
		return nil, fmt.Errorf("compress: wire payload truncated (%d bytes)", len(payload))
	}
	payLen := int(binary.LittleEndian.Uint32(payload))
	if payLen != len(payload)-4 {
		return nil, fmt.Errorf("compress: wire length prefix %d, frame carries %d", payLen, len(payload)-4)
	}
	crcOff := len(payload) - 4
	want := binary.LittleEndian.Uint32(payload[crcOff:])
	if got := crc32.ChecksumIEEE(payload[4:crcOff]); got != want {
		return nil, fmt.Errorf("compress: wire CRC mismatch: frame %08x, computed %08x", want, got)
	}
	if id := payload[4]; id != wantID {
		return nil, fmt.Errorf("compress: wire codec id %d, decoder expects %d", id, wantID)
	}
	if n := int(binary.LittleEndian.Uint32(payload[5:])); n != wantN {
		return nil, fmt.Errorf("compress: wire vector length %d, decoder expects %d", n, wantN)
	}
	return payload[9:crcOff], nil
}

// Encode implements WireCodec. Body: u32 kept count, then kept ×
// (u32 index, f64 value), indices ascending.
func (c TopK) Encode(v []float64) []byte {
	idx := c.kept(v)
	frame := frameHeader(make([]byte, 0, 13+12*len(idx)+4), idTopK, len(v))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(idx)))
	for _, i := range idx {
		frame = binary.LittleEndian.AppendUint32(frame, uint32(i))
		frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(v[i]))
	}
	return seal(frame)
}

// Decode implements WireCodec.
func (c TopK) Decode(dst []float64, payload []byte) error {
	body, err := open(payload, idTopK, len(dst))
	if err != nil {
		return err
	}
	if len(body) < 4 {
		return fmt.Errorf("compress: TopK wire body truncated")
	}
	kept := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	if len(body) != 12*kept {
		return fmt.Errorf("compress: TopK wire carries %d bytes for %d pairs", len(body), kept)
	}
	for i := range dst {
		dst[i] = 0
	}
	prev := -1
	for p := 0; p < kept; p++ {
		i := int(binary.LittleEndian.Uint32(body[12*p:]))
		if i <= prev || i >= len(dst) {
			return fmt.Errorf("compress: TopK wire index %d out of order or range", i)
		}
		prev = i
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[12*p+4:]))
	}
	return nil
}

// Encode implements WireCodec. Body: f64 lo, f64 hi, then the level
// indices q packed Bits per component (little-endian bit order). The
// decoder recomputes lo + q·scale with the exact arithmetic Roundtrip
// uses, so the reconstruction is bit-equal to the in-process one. The
// degenerate hi == lo range carries the components verbatim instead of
// level bits: Roundtrip copies the input in that case, and merely
// replaying the constant lo would lose bit patterns that compare equal
// but are not identical (negative zeros), breaking the
// Decode(Encode(v)) == Roundtrip(v) contract.
func (c Quantize) Encode(v []float64) []byte {
	if c.Bits < 1 || c.Bits > 16 {
		panic(fmt.Sprintf("compress: Quantize bits %d outside [1,16]", c.Bits))
	}
	n := len(v)
	frame := frameHeader(make([]byte, 0, 13+16+(n*c.Bits+7)/8+4), idQuant, n)
	if n == 0 {
		return seal(frame)
	}
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(lo))
	frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(hi))
	if hi == lo {
		for _, x := range v {
			frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(x))
		}
		return seal(frame)
	}
	levels := float64(int(1)<<c.Bits) - 1
	scale := (hi - lo) / levels
	var acc uint32
	accBits := 0
	for _, x := range v {
		q := uint32(math.Round((x - lo) / scale))
		acc |= q << accBits
		accBits += c.Bits
		for accBits >= 8 {
			frame = append(frame, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		frame = append(frame, byte(acc))
	}
	return seal(frame)
}

// Decode implements WireCodec.
func (c Quantize) Decode(dst []float64, payload []byte) error {
	if c.Bits < 1 || c.Bits > 16 {
		panic(fmt.Sprintf("compress: Quantize bits %d outside [1,16]", c.Bits))
	}
	body, err := open(payload, idQuant, len(dst))
	if err != nil {
		return err
	}
	n := len(dst)
	if n == 0 {
		if len(body) != 0 {
			return fmt.Errorf("compress: Quantize wire body %d bytes for empty vector", len(body))
		}
		return nil
	}
	if len(body) < 16 {
		return fmt.Errorf("compress: Quantize wire body truncated")
	}
	lo := math.Float64frombits(binary.LittleEndian.Uint64(body))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
	body = body[16:]
	if hi == lo {
		if len(body) != 8*n {
			return fmt.Errorf("compress: Quantize degenerate-range wire carries %d bytes, want %d", len(body), 8*n)
		}
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return nil
	}
	if want := (n*c.Bits + 7) / 8; len(body) != want {
		return fmt.Errorf("compress: Quantize wire carries %d level bytes, want %d", len(body), want)
	}
	levels := float64(int(1)<<c.Bits) - 1
	scale := (hi - lo) / levels
	mask := uint32(1)<<c.Bits - 1
	var acc uint32
	accBits := 0
	pos := 0
	for i := range dst {
		for accBits < c.Bits {
			acc |= uint32(body[pos]) << accBits
			pos++
			accBits += 8
		}
		q := float64(acc & mask)
		acc >>= c.Bits
		accBits -= c.Bits
		dst[i] = lo + q*scale
	}
	return nil
}

// Encode implements WireCodec: the chain is applied for real — every
// stage but the last is round-tripped locally (exactly as Roundtrip
// composes them) and the final stage's encoder frames the survivor, so
// the transmitted payload is the last stage's wire format of the
// partially compressed vector. An empty chain frames the dense vector.
func (c Chain) Encode(v []float64) []byte {
	if len(c.Stages) == 0 {
		return encodeDense(v)
	}
	cur := make([]float64, len(v))
	copy(cur, v)
	for _, st := range c.Stages[:len(c.Stages)-1] {
		st.Roundtrip(cur, cur)
	}
	last, ok := c.Stages[len(c.Stages)-1].(WireCodec)
	if !ok {
		panic(fmt.Sprintf("compress: chain stage %s has no wire encoding", c.Stages[len(c.Stages)-1].Name()))
	}
	return last.Encode(cur)
}

// Decode implements WireCodec: only the final stage materialized on the
// wire, so only it decodes.
func (c Chain) Decode(dst []float64, payload []byte) error {
	if len(c.Stages) == 0 {
		return decodeDense(dst, payload)
	}
	last, ok := c.Stages[len(c.Stages)-1].(WireCodec)
	if !ok {
		return fmt.Errorf("compress: chain stage %s has no wire encoding", c.Stages[len(c.Stages)-1].Name())
	}
	return last.Decode(dst, payload)
}

// encodeDense frames a vector verbatim (empty-chain wire format).
func encodeDense(v []float64) []byte {
	frame := frameHeader(make([]byte, 0, 13+8*len(v)+4), idDense, len(v))
	for _, x := range v {
		frame = binary.LittleEndian.AppendUint64(frame, math.Float64bits(x))
	}
	return seal(frame)
}

func decodeDense(dst []float64, payload []byte) error {
	body, err := open(payload, idDense, len(dst))
	if err != nil {
		return err
	}
	if len(body) != 8*len(dst) {
		return fmt.Errorf("compress: dense wire carries %d bytes, want %d", len(body), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return nil
}
