package compress

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// wireCase runs the exactness contract on one (codec, vector) pair:
// Decode(Encode(v)) must be bit-for-bit equal to the in-process
// Roundtrip(v) reconstruction, and the original v must be untouched.
func wireCase(t *testing.T, c WireCodec, v []float64) {
	t.Helper()
	orig := append([]float64(nil), v...)

	want := make([]float64, len(v))
	c.Roundtrip(want, v)

	payload := c.Encode(v)
	got := make([]float64, len(v))
	for i := range got {
		got[i] = math.NaN() // decode must overwrite every slot
	}
	if err := c.Decode(got, payload); err != nil {
		t.Fatalf("%s n=%d: decode: %v", c.Name(), len(v), err)
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s n=%d: wire reconstruction[%d] = %v, roundtrip = %v",
				c.Name(), len(v), i, got[i], want[i])
		}
		if math.Float64bits(v[i]) != math.Float64bits(orig[i]) {
			t.Fatalf("%s n=%d: Encode mutated input[%d]", c.Name(), len(v), i)
		}
	}
}

// edgeVectors builds the shapes the wire format must survive: empty,
// length 1, lengths that are not multiples of the quantizer's 8-bit
// packing chunk, and vectors with magnitude ties for top-k.
func edgeVectors(seed uint64) [][]float64 {
	rng := tensor.NewRNG(seed)
	shapes := []int{0, 1, 2, 3, 7, 8, 9, 13, 64, 65, 100, 129}
	out := make([][]float64, 0, len(shapes)+2)
	for _, n := range shapes {
		v := make([]float64, n)
		tensor.Normal(rng, v, 0, 1)
		out = append(out, v)
	}
	// Magnitude ties: ±x pairs force the top-k tie-quota path.
	out = append(out, []float64{1, -1, 2, -2, 2, 0.5, -0.5, 2})
	// Constant vector: quantize's degenerate hi == lo range.
	out = append(out, []float64{3.25, 3.25, 3.25, 3.25, 3.25})
	// Degenerate range with mixed zero signs: +0 == −0 numerically, so
	// hi == lo, but Roundtrip copies the input verbatim — the wire must
	// preserve the sign bits, not replay the constant lo.
	out = append(out, []float64{0, math.Copysign(0, -1), 0, math.Copysign(0, -1)})
	return out
}

func TestWireMatchesRoundtripTopK(t *testing.T) {
	for _, frac := range []float64{0.01, 0.1, 0.5, 1} {
		for _, v := range edgeVectors(7) {
			wireCase(t, TopK{Fraction: frac}, v)
		}
	}
}

func TestWireMatchesRoundtripQuantize(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 7, 8, 9, 16} {
		for _, v := range edgeVectors(11) {
			wireCase(t, Quantize{Bits: bits}, v)
		}
	}
}

func TestWireMatchesRoundtripChain(t *testing.T) {
	chains := []Chain{
		{},
		{Stages: []Codec{TopK{Fraction: 0.3}}},
		{Stages: []Codec{TopK{Fraction: 0.3}, Quantize{Bits: 8}}},
		{Stages: []Codec{Quantize{Bits: 6}, TopK{Fraction: 0.5}}},
		{Stages: []Codec{TopK{Fraction: 0.5}, TopK{Fraction: 0.5}, Quantize{Bits: 4}}},
	}
	for _, c := range chains {
		for _, v := range edgeVectors(13) {
			wireCase(t, c, v)
		}
	}
}

// TestWireLosslessStages pins exact identity where a stage is lossless:
// TopK keeping everything and the quantizer's degenerate constant range
// reconstruct the input bit-for-bit. (Lossy settings are covered by the
// Roundtrip-equality contract above; their documented tolerance is
// whatever Roundtrip produces, which TestQuantizeError in
// compress_test.go bounds.)
func TestWireLosslessStages(t *testing.T) {
	rng := tensor.NewRNG(3)
	v := make([]float64, 33)
	tensor.Normal(rng, v, 0, 1)

	got := make([]float64, len(v))
	full := TopK{Fraction: 1}
	if err := full.Decode(got, full.Encode(v)); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Fatalf("TopK(1.0) wire not lossless at %d", i)
		}
	}

	konst := []float64{-2.5, -2.5, -2.5}
	q := Quantize{Bits: 2}
	got = make([]float64, len(konst))
	if err := q.Decode(got, q.Encode(konst)); err != nil {
		t.Fatal(err)
	}
	for i := range konst {
		if got[i] != konst[i] {
			t.Fatalf("constant-range quantize wire not lossless at %d", i)
		}
	}

	var dense Chain
	got = make([]float64, len(v))
	if err := dense.Decode(got, dense.Encode(v)); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Fatalf("dense (empty chain) wire not lossless at %d", i)
		}
	}
}

// TestWireCorruptionDetected flips bytes across the frame and asserts
// the CRC (or a structural check) rejects every corruption.
func TestWireCorruptionDetected(t *testing.T) {
	rng := tensor.NewRNG(5)
	v := make([]float64, 20)
	tensor.Normal(rng, v, 0, 1)
	c := TopK{Fraction: 0.25}
	payload := c.Encode(v)
	dst := make([]float64, len(v))
	for i := range payload {
		bad := append([]byte(nil), payload...)
		bad[i] ^= 0x41
		if err := c.Decode(dst, bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	if err := c.Decode(dst, payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated payload went undetected")
	}
	if err := c.Decode(make([]float64, len(v)+1), payload); err == nil {
		t.Fatal("wrong decode length went undetected")
	}
	q := Quantize{Bits: 4}
	if err := q.Decode(dst, payload); err == nil {
		t.Fatal("codec-id mismatch went undetected")
	}
}
