package compress

import (
	"math"
	"testing"
)

// FuzzWireDecode drives every WireCodec decoder with arbitrary frames.
// Decode reconstructs into a fixed-length destination from bytes that
// crossed a socket, so corrupt frames — bad CRCs, lying length
// prefixes, out-of-range TopK indices, short Quantize bodies — must
// come back as errors, never panics or writes past dst.
func FuzzWireDecode(f *testing.F) {
	v := []float64{0.5, -1.25, 2.25, 0, 3e-5}
	f.Add(byte(0), len(v), Chain{}.Encode(v))
	f.Add(byte(1), len(v), TopK{Fraction: 0.4}.Encode(v))
	f.Add(byte(2), len(v), Quantize{Bits: 6}.Encode(v))
	f.Add(byte(2), 0, Quantize{Bits: 6}.Encode(nil))
	f.Add(byte(1), 3, []byte("short and corrupt"))

	f.Fuzz(func(t *testing.T, which byte, n int, payload []byte) {
		if n < 0 || n > 1<<12 {
			return
		}
		dst := make([]float64, n)
		switch which % 3 {
		case 0:
			_ = Chain{}.Decode(dst, payload) // dense framing
		case 1:
			_ = TopK{Fraction: 0.5}.Decode(dst, payload)
		case 2:
			_ = Quantize{Bits: 6}.Decode(dst, payload)
		}
	})
}

// FuzzWireRoundtrip checks the exactness contract on arbitrary
// vectors: for every codec, Decode(Encode(v)) must succeed and equal
// the in-process Roundtrip reconstruction bit for bit.
func FuzzWireRoundtrip(f *testing.F) {
	f.Add(uint8(0), 0.5, -1.25, 2.25, 0.0)
	f.Add(uint8(1), 1e300, -1e-300, 0.0, -0.0)
	f.Add(uint8(2), 3.5, 3.5, 3.5, 3.5)

	f.Fuzz(func(t *testing.T, which uint8, a, b, c, d float64) {
		v := []float64{a, b, c, d}
		var codec WireCodec
		switch which % 3 {
		case 0:
			codec = Chain{}
		case 1:
			codec = TopK{Fraction: 0.5}
		case 2:
			codec = Quantize{Bits: 8}
		}
		want := make([]float64, len(v))
		copy(want, v)
		codec.Roundtrip(want, want)

		got := make([]float64, len(v))
		if err := codec.Decode(got, codec.Encode(v)); err != nil {
			t.Fatalf("%s: decode of own encoding failed: %v", codec.Name(), err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: component %d: wire %x, roundtrip %x", codec.Name(), i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	})
}
