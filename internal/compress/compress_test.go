package compress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestTopKKeepsLargest(t *testing.T) {
	v := []float64{0.1, -5, 2, 0.01, -3}
	dst := make([]float64, 5)
	bytes := TopK{Fraction: 0.4}.Roundtrip(dst, v)
	if bytes != 2*8 {
		t.Fatalf("wire = %d want 16", bytes)
	}
	want := []float64{0, -5, 0, 0, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestTopKFullFractionIsIdentity(t *testing.T) {
	v := []float64{1, 2, 3}
	dst := make([]float64, 3)
	TopK{Fraction: 1}.Roundtrip(dst, v)
	for i := range v {
		if dst[i] != v[i] {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestTopKAliasedDst(t *testing.T) {
	v := []float64{3, 1, 2, 0.5}
	TopK{Fraction: 0.5}.Roundtrip(v, v)
	want := []float64{3, 0, 2, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("aliased roundtrip = %v", v)
		}
	}
}

func TestTopKValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TopK{Fraction: 0}.Roundtrip(make([]float64, 2), []float64{1, 2})
}

func TestQuantizeRoundtripError(t *testing.T) {
	rng := tensor.NewRNG(1)
	v := make([]float64, 1000)
	tensor.Normal(rng, v, 0, 1)
	dst := make([]float64, 1000)
	bytes := Quantize{Bits: 8}.Roundtrip(dst, v)
	if bytes != 1000+8 {
		t.Fatalf("wire = %d", bytes)
	}
	// 8-bit quantization over roughly ±4σ: per-component error below one
	// quantization step.
	lo, hi := v[0], v[0]
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	step := (hi - lo) / 255
	for i := range v {
		if math.Abs(dst[i]-v[i]) > step/2+1e-12 {
			t.Fatalf("component %d error %v exceeds half step %v", i, dst[i]-v[i], step/2)
		}
	}
}

func TestQuantizeConstantVector(t *testing.T) {
	v := []float64{2, 2, 2}
	dst := make([]float64, 3)
	Quantize{Bits: 4}.Roundtrip(dst, v)
	for i := range v {
		if dst[i] != 2 {
			t.Fatalf("constant roundtrip = %v", dst)
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantize{Bits: 0}.Roundtrip(make([]float64, 1), []float64{1})
}

func TestQuantizeEmpty(t *testing.T) {
	if got := (Quantize{Bits: 8}).Roundtrip(nil, nil); got != 8 {
		t.Fatalf("empty wire = %d", got)
	}
}

func TestChainComposes(t *testing.T) {
	c := Chain{Stages: []Codec{TopK{Fraction: 0.5}, Quantize{Bits: 8}}}
	if c.Name() != "top50%+q8bit" {
		t.Fatalf("name = %q", c.Name())
	}
	v := []float64{4, 0.1, -3, 0.2}
	dst := make([]float64, 4)
	c.Roundtrip(dst, v)
	// The small components are zeroed by the top-k stage; after
	// quantization they land on the grid level nearest zero (within one
	// quantization step of it).
	step := 7.0 / 255
	if math.Abs(dst[1]) > step || math.Abs(dst[3]) > step {
		t.Fatalf("chain did not sparsify: %v", dst)
	}
	// The large ones survive approximately.
	if math.Abs(dst[0]-4) > 0.1 || math.Abs(dst[2]+3) > 0.1 {
		t.Fatalf("chain mangled large components: %v", dst)
	}
}

func TestChainEmptyIsDense(t *testing.T) {
	c := Chain{}
	v := []float64{1, 2}
	dst := make([]float64, 2)
	if got := c.Roundtrip(dst, v); got != 8 {
		t.Fatalf("empty chain wire = %d", got)
	}
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatal("empty chain should copy")
	}
}

// Property: quantization never moves a component outside the input range.
func TestQuantizeRangeProperty(t *testing.T) {
	f := func(raw [16]float64, bitsRaw uint8) bool {
		bits := int(bitsRaw%16) + 1
		v := make([]float64, 16)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range raw {
			v[i] = math.Mod(x, 100)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			lo = math.Min(lo, v[i])
			hi = math.Max(hi, v[i])
		}
		dst := make([]float64, 16)
		Quantize{Bits: bits}.Roundtrip(dst, v)
		for _, x := range dst {
			if x < lo-1e-9 || x > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: top-k preserves the largest-magnitude component exactly.
func TestTopKPreservesMaxProperty(t *testing.T) {
	f := func(raw [12]float64) bool {
		v := make([]float64, 12)
		for i, x := range raw {
			v[i] = math.Mod(x, 50)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		best := 0
		for i := range v {
			if math.Abs(v[i]) > math.Abs(v[best]) {
				best = i
			}
		}
		dst := make([]float64, 12)
		TopK{Fraction: 0.25}.Roundtrip(dst, v)
		return dst[best] == v[best]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Regression: Chain.Roundtrip must charge the conservative sum of stage
// outputs, as its doc comment specifies. A previous version kept only the
// final stage's bytes, silently under-billing chained codecs in every
// figure that sweeps them — a chain can never cost less than any single
// stage run alone.
func TestChainChargesSumOfStages(t *testing.T) {
	topk := TopK{Fraction: 0.1}
	quant := Quantize{Bits: 8}
	chain := Chain{Stages: []Codec{topk, quant}}

	v := make([]float64, 1000)
	tensor.Normal(tensor.NewRNG(9), v, 0, 1)
	dst := make([]float64, len(v))

	chainBytes := chain.Roundtrip(dst, v)
	topkBytes := topk.Roundtrip(dst, v)
	quantBytes := quant.Roundtrip(dst, v)

	if chainBytes < topkBytes {
		t.Fatalf("chain wire %d < top-k stage alone %d", chainBytes, topkBytes)
	}
	if chainBytes < quantBytes {
		t.Fatalf("chain wire %d < quantize stage alone %d", chainBytes, quantBytes)
	}
	if want := topkBytes + quantBytes; chainBytes != want {
		t.Fatalf("chain wire %d, want conservative sum %d", chainBytes, want)
	}
}

// The empty chain's dense fallback charges 4 bytes/param, matching the
// float32 wire format of comm.CostModel.BytesPerParam's default.
func TestChainEmptyChargesFourBytesPerParam(t *testing.T) {
	v := make([]float64, 123)
	if got := (Chain{}).Roundtrip(make([]float64, len(v)), v); got != 4*len(v) {
		t.Fatalf("empty chain wire = %d, want %d", got, 4*len(v))
	}
}
