package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestReduce61(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{mersenne61, 0},
		{mersenne61 + 1, 1},
		{2 * mersenne61, 0},
		{^uint64(0), (^uint64(0)) % mersenne61},
	}
	for _, c := range cases {
		if got := reduce61(c.in); got != c.want {
			t.Fatalf("reduce61(%d) = %d want %d", c.in, got, c.want)
		}
	}
}

func TestMulMod61MatchesBigArithmetic(t *testing.T) {
	rng := tensor.NewRNG(1)
	for i := 0; i < 1000; i++ {
		a := rng.Uint64() % mersenne61
		b := rng.Uint64() % mersenne61
		got := mulmod61(a, b)
		// Reference via math/big-free 128-bit simulation: compute with
		// smaller operands where direct multiplication is exact.
		al, bl := a%(1<<30), b%(1<<30)
		if a < 1<<30 && b < 1<<30 {
			if want := (al * bl) % mersenne61; got != want {
				t.Fatalf("mulmod61(%d,%d) = %d want %d", a, b, got, want)
			}
		}
		if got >= mersenne61 {
			t.Fatalf("mulmod61 result %d not reduced", got)
		}
	}
	// Exhaustive small-value check against direct %.
	for a := uint64(0); a < 50; a++ {
		for b := uint64(0); b < 50; b++ {
			if got, want := mulmod61(a, b), (a*b)%mersenne61; got != want {
				t.Fatalf("mulmod61(%d,%d) = %d want %d", a, b, got, want)
			}
		}
	}
}

func TestMulMod61Identities(t *testing.T) {
	rng := tensor.NewRNG(2)
	for i := 0; i < 200; i++ {
		a := rng.Uint64() % mersenne61
		if mulmod61(a, 1) != a {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if mulmod61(a, 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
		b := rng.Uint64() % mersenne61
		if mulmod61(a, b) != mulmod61(b, a) {
			t.Fatalf("commutativity failed for %d,%d", a, b)
		}
	}
}

func TestDimensions(t *testing.T) {
	l, m := Dimensions(0.1, 0.05)
	if l < 4 || m < 800 {
		t.Fatalf("Dimensions(0.1,0.05) = (%d,%d) unexpectedly small", l, m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad eps")
		}
	}()
	Dimensions(0, 0.5)
}

func TestNewSketcherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSketcher(0, 10, 1)
}

func TestSketchDeterministicAcrossInstances(t *testing.T) {
	v := make([]float64, 100)
	rng := tensor.NewRNG(3)
	tensor.Normal(rng, v, 0, 1)
	a := NewSketcher(5, 50, 42).Sketch(v)
	b := NewSketcher(5, 50, 42).Sketch(v)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed sketchers disagree")
		}
	}
	c := NewSketcher(5, 50, 43).Sketch(v)
	diff := false
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical sketches")
	}
}

func TestUpdateMatchesSketchVec(t *testing.T) {
	s := NewSketcher(5, 60, 7)
	v := make([]float64, 80)
	rng := tensor.NewRNG(4)
	tensor.Normal(rng, v, 0, 1)
	bulk := s.Sketch(v)
	inc := s.NewSketch()
	for i, x := range v {
		s.Update(inc, i, x)
	}
	for i := range bulk.Data {
		if math.Abs(bulk.Data[i]-inc.Data[i]) > 1e-9 {
			t.Fatalf("bulk vs incremental mismatch at %d: %v vs %v", i, bulk.Data[i], inc.Data[i])
		}
	}
}

func TestPrecomputeMatchesHashPath(t *testing.T) {
	v := make([]float64, 200)
	rng := tensor.NewRNG(5)
	tensor.Normal(rng, v, 0, 1)
	slow := NewSketcher(4, 64, 99)
	want := slow.Sketch(v)
	fast := NewSketcher(4, 64, 99)
	fast.Precompute(len(v))
	got := fast.Sketch(v)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("precomputed path diverges at %d", i)
		}
	}
}

// Property (Theorem 3.1 prerequisite): sketches are linear,
// sk(αa + βb) = α·sk(a) + β·sk(b).
func TestLinearityProperty(t *testing.T) {
	s := NewSketcher(3, 32, 11)
	f := func(a0, b0 [16]float64, alphaRaw, betaRaw float64) bool {
		a := shrink(a0[:])
		b := shrink(b0[:])
		alpha := math.Mod(alphaRaw, 10)
		beta := math.Mod(betaRaw, 10)
		if math.IsNaN(alpha) {
			alpha = 0
		}
		if math.IsNaN(beta) {
			beta = 0
		}
		comb := make([]float64, len(a))
		for i := range comb {
			comb[i] = alpha*a[i] + beta*b[i]
		}
		left := s.Sketch(comb)
		right := s.Sketch(a)
		right.Scale(alpha)
		right.AXPY(beta, s.Sketch(b))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-6*(1+math.Abs(left.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func shrink(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Mod(x, 100)
		if math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}

// M2 should estimate the squared norm within the ε bound for the paper's
// recommended dimensions (l=5, m=250 ⇒ ε≈6%) on the vast majority of
// random vectors.
func TestM2Accuracy(t *testing.T) {
	s := NewSketcher(5, 250, 17)
	rng := tensor.NewRNG(6)
	const trials = 60
	const dim = 2000
	bad := 0
	for trial := 0; trial < trials; trial++ {
		v := make([]float64, dim)
		tensor.Normal(rng, v, 0, 1)
		truth := tensor.SquaredNorm(v)
		est := M2(s.Sketch(v))
		if math.Abs(est-truth)/truth > 0.15 {
			bad++
		}
	}
	if bad > trials/10 {
		t.Fatalf("M2 outside 15%% on %d/%d trials", bad, trials)
	}
}

func TestM2ZeroVector(t *testing.T) {
	s := NewSketcher(5, 50, 1)
	if got := M2(s.Sketch(make([]float64, 64))); got != 0 {
		t.Fatalf("M2 of zero vector = %v", got)
	}
}

// Cross-worker aggregation: mean of per-worker sketches equals the sketch
// of the mean drift, so M2(mean sketch) estimates ‖ū‖² — the core of
// SketchFDA's AllReduce-based estimation.
func TestMeanOfSketchesEstimatesMeanNorm(t *testing.T) {
	const K = 8
	const dim = 1500
	s := NewSketcher(5, 250, 23)
	rng := tensor.NewRNG(9)
	drifts := make([][]float64, K)
	mean := make([]float64, dim)
	agg := s.NewSketch()
	for k := 0; k < K; k++ {
		drifts[k] = make([]float64, dim)
		tensor.Normal(rng, drifts[k], 0.1, 1)
		tensor.AXPY(1, drifts[k], mean)
		agg.AXPY(1.0/K, s.Sketch(drifts[k]))
	}
	tensor.Scale(mean, 1.0/K)
	truth := tensor.SquaredNorm(mean)
	est := M2(agg)
	if math.Abs(est-truth)/truth > 0.2 {
		t.Fatalf("aggregated M2 = %v truth = %v", est, truth)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Fatalf("empty median = %v", got)
	}
}

func TestSketchBytesAndClone(t *testing.T) {
	s := NewSketcher(5, 250, 1)
	sk := s.NewSketch()
	if got := sk.Bytes(4); got != 5*250*4 {
		t.Fatalf("Bytes = %d", got)
	}
	sk.Data[0] = 1
	c := sk.Clone()
	c.Data[0] = 2
	if sk.Data[0] != 1 {
		t.Fatal("Clone aliases")
	}
	sk.Zero()
	if sk.Data[0] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewSketcher(2, 8, 1).NewSketch()
	b := NewSketcher(3, 8, 1).NewSketch()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Add(b)
}

// Buckets should spread roughly uniformly over columns.
func TestBucketUniformity(t *testing.T) {
	s := NewSketcher(1, 16, 31)
	counts := make([]int, 16)
	const n = 16000
	for j := 0; j < n; j++ {
		counts[int(s.bucket[0].eval(uint64(j))%16)]++
	}
	for c, got := range counts {
		if got < n/16/2 || got > n/16*2 {
			t.Fatalf("column %d count %d far from uniform %d", c, got, n/16)
		}
	}
}

// Signs should be balanced.
func TestSignBalance(t *testing.T) {
	s := NewSketcher(1, 16, 37)
	pos := 0
	const n = 20000
	for j := 0; j < n; j++ {
		if s.sign[0].eval(uint64(j))&1 == 1 {
			pos++
		}
	}
	if pos < n*45/100 || pos > n*55/100 {
		t.Fatalf("sign balance %d/%d", pos, n)
	}
}

func BenchmarkSketchVecPrecomputed(b *testing.B) {
	s := NewSketcher(5, 250, 1)
	const d = 10000
	s.Precompute(d)
	v := make([]float64, d)
	tensor.Normal(tensor.NewRNG(1), v, 0, 1)
	dst := s.NewSketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SketchVec(dst, v)
	}
}
