// Package sketch implements AMS (Alon–Matias–Szegedy) sketches as used by
// SketchFDA (paper §3.1). An AMS sketch of a vector v ∈ R^d is an l×m real
// matrix computed through 4-wise independent hash functions; it supports
//
//   - an unbiased second-moment (squared L2 norm) estimator M2 with error
//     ε = O(1/√m) at confidence 1−δ, δ = O(exp(−l)), and
//   - linearity: sk(αa + βb) = α·sk(a) + β·sk(b),
//
// which together let K workers estimate ‖mean drift‖² from the mean of
// their individual drift sketches (Theorem 3.1).
//
// A Sketcher carries the shared hash functions; all workers in a cluster
// must use the same Sketcher (same seed) for cross-worker linearity to be
// meaningful. Sketch carries only the l×m counters.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/tensor"
)

// mersenne61 is the Mersenne prime 2^61−1 used as the field for polynomial
// hashing; reduction is cheap (shift and add) and 4 coefficients give
// 4-wise independence.
const mersenne61 = (1 << 61) - 1

// polyHash is a degree-3 polynomial hash over GF(2^61−1), 4-wise
// independent by construction.
type polyHash struct {
	a, b, c, d uint64 // coefficients in [0, p)
}

func newPolyHash(rng *tensor.RNG) polyHash {
	draw := func() uint64 { return rng.Uint64() % mersenne61 }
	return polyHash{a: draw(), b: draw(), c: draw(), d: draw()}
}

// mulmod61 multiplies a*b mod 2^61−1 for a, b < 2^61. With the 128-bit
// product a*b = hi·2^64 + lo and 2^64 ≡ 8 (mod 2^61−1), the reduction is
// 8·hi + lo; hi < 2^58 so 8·hi fits a uint64.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduce61(reduce61(hi<<3) + reduce61(lo))
}

// reduce61 reduces x modulo 2^61−1 for any uint64 x.
func reduce61(x uint64) uint64 {
	x = (x >> 61) + (x & mersenne61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	return x
}

// eval computes the hash of key as a 61-bit value.
func (h polyHash) eval(key uint64) uint64 {
	k := reduce61(key)
	// Horner: ((a*k + b)*k + c)*k + d.
	v := h.a
	v = reduce61(mulmod61(v, k) + h.b)
	v = reduce61(mulmod61(v, k) + h.c)
	v = reduce61(mulmod61(v, k) + h.d)
	return v
}

// Sketcher holds the shared hash functions defining an (l×m) AMS sketch
// family. It is immutable after construction and safe for concurrent use.
type Sketcher struct {
	l, m   int
	bucket []polyHash // one per row: index → column
	sign   []polyHash // one per row: index → ±1

	// Optional lookup tables built by Precompute for a fixed dimension d:
	// cols[i][j] and signs[i][j] are the column and ±1 sign of coordinate j
	// in row i. They turn SketchVec's inner loop from three modular
	// multiplications per (row, coordinate) into two array loads, which
	// matters because SketchFDA sketches a d-dimensional drift every step.
	cols  [][]int32
	signs [][]int8
}

// NewSketcher builds a Sketcher with l rows (depth) and m columns (width)
// seeded deterministically from seed. The paper's recommended setting is
// l=5, m=250 (ε≈6%, 1−δ≈95%; §3.3); see Dimensions for ε/δ-driven sizing.
func NewSketcher(l, m int, seed uint64) *Sketcher {
	if l <= 0 || m <= 0 {
		panic("sketch: non-positive sketch dimensions")
	}
	rng := tensor.NewRNG(seed)
	s := &Sketcher{l: l, m: m}
	s.bucket = make([]polyHash, l)
	s.sign = make([]polyHash, l)
	for i := 0; i < l; i++ {
		s.bucket[i] = newPolyHash(rng)
		s.sign[i] = newPolyHash(rng)
	}
	return s
}

// Dimensions returns (l, m) giving estimation error ε with confidence 1−δ,
// using the standard AMS bounds l = ⌈4·ln(1/δ)⌉ and m = ⌈8/ε²⌉.
func Dimensions(eps, delta float64) (l, m int) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic("sketch: Dimensions requires eps > 0 and 0 < delta < 1")
	}
	l = int(math.Ceil(4 * math.Log(1/delta)))
	if l < 1 {
		l = 1
	}
	m = int(math.Ceil(8 / (eps * eps)))
	if m < 1 {
		m = 1
	}
	return l, m
}

// L returns the number of rows.
func (s *Sketcher) L() int { return s.l }

// M returns the number of columns.
func (s *Sketcher) M() int { return s.m }

// Sketch is the l×m counter matrix for one vector, stored row-major.
// Sketches from the same Sketcher combine linearly with Add/AXPY/Scale.
type Sketch struct {
	L, M int
	Data []float64
}

// NewSketch returns an all-zero sketch shaped for s.
func (s *Sketcher) NewSketch() *Sketch {
	return &Sketch{L: s.l, M: s.m, Data: make([]float64, s.l*s.m)}
}

// Bytes returns the wire size of the sketch payload assuming
// bytesPerCounter bytes per counter (the paper uses 4, float32).
func (sk *Sketch) Bytes(bytesPerCounter int) int {
	return sk.L * sk.M * bytesPerCounter
}

// Clone returns a deep copy.
func (sk *Sketch) Clone() *Sketch {
	return &Sketch{L: sk.L, M: sk.M, Data: tensor.Clone(sk.Data)}
}

// Zero resets all counters.
func (sk *Sketch) Zero() { tensor.Zero(sk.Data) }

// checkShape panics if two sketches are not conformal.
func checkShape(op string, a, b *Sketch) {
	if a.L != b.L || a.M != b.M {
		panic(fmt.Sprintf("sketch: %s shape mismatch %dx%d vs %dx%d", op, a.L, a.M, b.L, b.M))
	}
}

// Add accumulates other into sk (sk += other).
func (sk *Sketch) Add(other *Sketch) {
	checkShape("Add", sk, other)
	tensor.Add(sk.Data, sk.Data, other.Data)
}

// AXPY accumulates alpha*other into sk.
func (sk *Sketch) AXPY(alpha float64, other *Sketch) {
	checkShape("AXPY", sk, other)
	tensor.AXPY(alpha, other.Data, sk.Data)
}

// Scale multiplies all counters by c.
func (sk *Sketch) Scale(c float64) { tensor.Scale(sk.Data, c) }

// Update adds value at coordinate index into the sketch (the streaming
// single-entry update).
func (s *Sketcher) Update(sk *Sketch, index int, value float64) {
	if sk.L != s.l || sk.M != s.m {
		panic("sketch: Update with foreign sketch shape")
	}
	key := uint64(index)
	for i := 0; i < s.l; i++ {
		col := int(s.bucket[i].eval(key) % uint64(s.m))
		sign := float64(1)
		if s.sign[i].eval(key)&1 == 0 {
			sign = -1
		}
		sk.Data[i*s.m+col] += sign * value
	}
}

// Precompute builds lookup tables covering coordinates [0, d). Calling it
// is optional but strongly recommended before repeatedly sketching vectors
// of a fixed dimension (as SketchFDA does). Precompute is not safe to call
// concurrently with SketchVec/Update.
func (s *Sketcher) Precompute(d int) {
	if d <= 0 {
		panic("sketch: Precompute with non-positive dimension")
	}
	if len(s.cols) == s.l && len(s.cols[0]) >= d {
		return // already covers d
	}
	s.cols = make([][]int32, s.l)
	s.signs = make([][]int8, s.l)
	for i := 0; i < s.l; i++ {
		cs := make([]int32, d)
		ss := make([]int8, d)
		bh, sh := s.bucket[i], s.sign[i]
		for j := 0; j < d; j++ {
			key := uint64(j)
			cs[j] = int32(bh.eval(key) % uint64(s.m))
			if sh.eval(key)&1 == 0 {
				ss[j] = -1
			} else {
				ss[j] = 1
			}
		}
		s.cols[i] = cs
		s.signs[i] = ss
	}
}

// SketchVec computes the sketch of a dense vector v into dst (overwriting
// it). This is the O(l·d) bulk form used every training step by SketchFDA.
func (s *Sketcher) SketchVec(dst *Sketch, v []float64) {
	if dst.L != s.l || dst.M != s.m {
		panic("sketch: SketchVec with foreign sketch shape")
	}
	dst.Zero()
	if len(s.cols) == s.l && len(v) <= len(s.cols[0]) {
		for i := 0; i < s.l; i++ {
			row := dst.Data[i*s.m : (i+1)*s.m]
			cs, ss := s.cols[i], s.signs[i]
			for j, x := range v {
				row[cs[j]] += float64(ss[j]) * x
			}
		}
		return
	}
	for i := 0; i < s.l; i++ {
		row := dst.Data[i*s.m : (i+1)*s.m]
		bh, sh := s.bucket[i], s.sign[i]
		for j, x := range v {
			if x == 0 {
				continue
			}
			key := uint64(j)
			col := int(bh.eval(key) % uint64(s.m))
			if sh.eval(key)&1 == 0 {
				row[col] -= x
			} else {
				row[col] += x
			}
		}
	}
}

// Sketch allocates and returns the sketch of v.
func (s *Sketcher) Sketch(v []float64) *Sketch {
	sk := s.NewSketch()
	s.SketchVec(sk, v)
	return sk
}

// M2 returns the median-of-rows estimate of ‖v‖² for the sketched vector
// (the M2(sk(v)) estimator of §3.1).
func M2(sk *Sketch) float64 {
	return M2Into(sk, make([]float64, sk.L))
}

// M2Into is M2 with a caller-provided scratch slice of length ≥ sk.L, so
// per-step estimators (SketchFDA evaluates M2 every global step) can run
// allocation-free. scratch is clobbered.
func M2Into(sk *Sketch, scratch []float64) float64 {
	rowEst := scratch[:sk.L]
	for i := 0; i < sk.L; i++ {
		row := sk.Data[i*sk.M : (i+1)*sk.M]
		rowEst[i] = tensor.SquaredNorm(row)
	}
	return median(rowEst)
}

// median returns the median of xs, averaging the middle pair for even
// lengths. xs is reordered.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
