// Package metrics provides the statistics and reporting helpers used by
// the experiment harness: summary statistics, Gaussian kernel density
// estimation (the paper visualizes cost distributions as KDE plots),
// ordinary least-squares fits (the Θ-vs-d lines of Figure 12), and
// aligned-text table rendering.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the middle value (mean of middle pair for even lengths).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean returns the geometric mean of strictly positive xs; it panics on
// non-positive values (communication costs are positive by construction).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// LinearFit returns the ordinary-least-squares slope and intercept of
// y = slope·x + intercept. It panics on fewer than two points or on
// degenerate (constant-x) input.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) {
		panic("metrics: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		panic("metrics: LinearFit needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		panic("metrics: LinearFit with constant x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept
}

// FitThroughOrigin returns the least-squares slope of y = slope·x (the
// form of the paper's Θ ≈ c·d estimates in Figure 12).
func FitThroughOrigin(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("metrics: FitThroughOrigin needs matched non-empty input")
	}
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		panic("metrics: FitThroughOrigin with all-zero x")
	}
	return sxy / sxx
}

// KDE1D is a Gaussian kernel density estimate over a sample.
type KDE1D struct {
	points    []float64
	bandwidth float64
}

// NewKDE1D builds a KDE with Scott's-rule bandwidth (or the provided
// override when bw > 0). It panics on an empty sample.
func NewKDE1D(points []float64, bw float64) *KDE1D {
	if len(points) == 0 {
		panic("metrics: KDE over empty sample")
	}
	if bw <= 0 {
		sd := Std(points)
		if sd == 0 {
			sd = 1e-9
		}
		bw = 1.06 * sd * math.Pow(float64(len(points)), -0.2)
	}
	return &KDE1D{points: append([]float64(nil), points...), bandwidth: bw}
}

// Density evaluates the estimated density at x.
func (k *KDE1D) Density(x float64) float64 {
	var s float64
	inv := 1 / k.bandwidth
	norm := 1 / (math.Sqrt(2*math.Pi) * k.bandwidth * float64(len(k.points)))
	for _, p := range k.points {
		z := (x - p) * inv
		s += math.Exp(-0.5 * z * z)
	}
	return s * norm
}

// Bandwidth reports the bandwidth in use.
func (k *KDE1D) Bandwidth() float64 { return k.bandwidth }

// Table renders aligned text tables for experiment output.
type Table struct {
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	if len(row) != len(t.Headers) {
		panic(fmt.Sprintf("metrics: row has %d cells for %d headers", len(row), len(t.Headers)))
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
