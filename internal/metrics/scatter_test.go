package metrics

import (
	"strings"
	"testing"
)

func TestScatterRendersPointsAndLegend(t *testing.T) {
	p := Scatter{Title: "demo", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	p.Add("alpha", []float64{1, 2, 3}, []float64{1, 4, 9})
	p.Add("beta", []float64{1.5}, []float64{2})
	var b strings.Builder
	p.Render(&b)
	out := b.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "L=alpha") || !strings.Contains(out, "S=beta") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "L") || !strings.Contains(out, "S") {
		t.Fatal("missing glyphs")
	}
}

func TestScatterLogAxesDropNonPositive(t *testing.T) {
	p := Scatter{LogX: true, LogY: true, Width: 20, Height: 5}
	p.Add("s", []float64{0, -1, 10}, []float64{1, 1, 100})
	var b strings.Builder
	p.Render(&b)
	out := b.String()
	// Only the (10, 100) point survives; plot must still render.
	if strings.Contains(out, "no plottable points") {
		t.Fatalf("valid point dropped:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	p := Scatter{LogX: true}
	p.Add("s", []float64{-1}, []float64{1})
	var b strings.Builder
	p.Render(&b)
	if !strings.Contains(b.String(), "no plottable points") {
		t.Fatal("empty plot not flagged")
	}
}

func TestScatterLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Scatter{}).Add("s", []float64{1}, []float64{1, 2})
}

func TestScatterSinglePoint(t *testing.T) {
	p := Scatter{Width: 10, Height: 4}
	p.Add("one", []float64{5}, []float64{5})
	var b strings.Builder
	p.Render(&b)
	if !strings.Contains(b.String(), "L") {
		t.Fatal("single point not plotted")
	}
}
