package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Scatter renders an ASCII scatter plot of multiple named series, the
// terminal equivalent of the paper's (communication, steps) figures.
// Both axes can be logarithmic, as in the paper's plots.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Width  int // plot columns (default 60)
	Height int // plot rows (default 20)

	series []scatterSeries
}

type scatterSeries struct {
	name string
	xs   []float64
	ys   []float64
}

// seriesGlyphs are assigned to series in insertion order.
var seriesGlyphs = []byte{'L', 'S', 'F', 'B', 'o', 'x', '+', '*'}

// Add appends a named series. Non-positive values are dropped when the
// corresponding axis is logarithmic.
func (p *Scatter) Add(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("metrics: Scatter series length mismatch")
	}
	p.series = append(p.series, scatterSeries{name: name, xs: xs, ys: ys})
}

// Render draws the plot to w. Empty plots render a note instead.
func (p *Scatter) Render(w io.Writer) {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 20
	}

	tx := func(v float64) (float64, bool) { return v, true }
	ty := tx
	if p.LogX {
		tx = func(v float64) (float64, bool) {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
	}
	if p.LogY {
		ty = func(v float64) (float64, bool) {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
	}

	// Collect transformed points.
	type pt struct {
		x, y  float64
		glyph byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range p.series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.xs {
			x, okx := tx(s.xs[i])
			y, oky := ty(s.ys[i])
			if !okx || !oky {
				continue
			}
			pts = append(pts, pt{x: x, y: y, glyph: glyph})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if p.Title != "" {
		fmt.Fprintln(w, p.Title)
	}
	if len(pts) == 0 {
		fmt.Fprintln(w, "(no plottable points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, q := range pts {
		col := int((q.x - minX) / (maxX - minX) * float64(width-1))
		row := int((q.y - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-row][col] = q.glyph
	}

	axisVal := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%-10.3g", axisVal(maxY, p.LogY))
		case height - 1:
			label = fmt.Sprintf("%-10.3g", axisVal(minY, p.LogY))
		case height / 2:
			label = fmt.Sprintf("%-10s", p.YLabel)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%10s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s %-.3g%s%.3g  (%s)\n", "",
		axisVal(minX, p.LogX), strings.Repeat(" ", max(1, width-16)), axisVal(maxX, p.LogX), p.XLabel)

	// Legend, in series order.
	var legend []string
	for si, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.name))
	}
	sort.Strings(legend)
	fmt.Fprintf(w, "%10s %s\n", "", strings.Join(legend, "  "))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
