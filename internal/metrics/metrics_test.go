package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", Std(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("median %v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-input behaviour")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 10}
	if Quantile(xs, 0.25) != 2.5 {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
	if Quantile(xs, 0) != 0 || Quantile(xs, 1) != 10 {
		t.Fatal("extreme quantiles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(xs, 1.5)
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input reordered")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit %v %v", slope, intercept)
	}
}

func TestFitThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 4}
	ys := []float64{3, 6, 12}
	if got := FitThroughOrigin(xs, ys); math.Abs(got-3) > 1e-12 {
		t.Fatalf("slope %v", got)
	}
}

// Property: OLS residuals are orthogonal to x (normal equations hold).
func TestLinearFitNormalEquationProperty(t *testing.T) {
	f := func(raw [6]float64) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, 6)
		for i, r := range raw {
			ys[i] = math.Mod(r, 100)
			if math.IsNaN(ys[i]) {
				ys[i] = 0
			}
		}
		slope, intercept := LinearFit(xs, ys)
		var dot, sum float64
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			dot += r * xs[i]
			sum += r
		}
		return math.Abs(dot) < 1e-6 && math.Abs(sum) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := tensor.NewRNG(1)
	pts := make([]float64, 200)
	tensor.Normal(rng, pts, 5, 2)
	k := NewKDE1D(pts, 0)
	// Trapezoid integration over ±6σ.
	const n = 2000
	lo, hi := -10.0, 20.0
	h := (hi - lo) / n
	var integral float64
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		integral += w * k.Density(lo+float64(i)*h)
	}
	integral *= h
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("KDE integral %v", integral)
	}
}

func TestKDEPeaksNearMode(t *testing.T) {
	pts := []float64{1, 1.1, 0.9, 1.05, 0.95, 5}
	k := NewKDE1D(pts, 0.2)
	if k.Density(1) <= k.Density(5) {
		t.Fatal("KDE density at cluster not above outlier")
	}
	if k.Bandwidth() != 0.2 {
		t.Fatalf("bandwidth %v", k.Bandwidth())
	}
}

func TestKDEEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKDE1D(nil, 0)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Fatalf("render missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header+sep+2 rows, got %d lines", len(lines))
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableArityPanics(t *testing.T) {
	tb := NewTable("a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}
