package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Allocation regression tests guarding the scratch arenas: after warm-up
// (lazy optimizer state, batch arena, meter keys), a steady-state
// LocalStep plus strategy AfterLocalStep must perform zero heap
// allocations. Θ is set astronomically high so the measured window
// contains no model synchronization — that is the steady state; syncs
// are allowed to touch their (reused, but lazily grown) arenas.

// allocModel is a small but representative CNN: conv, ReLU, pool, dense —
// every layer class on the LocalStep hot path.
func allocModel(rng *tensor.RNG) *nn.Network {
	in := nn.Shape{H: 4, W: 4, C: 1}
	c1 := nn.NewConv2D(in, 3, 3, nn.GlorotUniformInit)
	p1 := nn.NewMaxPool2D(c1.OutShape(), 2)
	return nn.New(rng,
		c1, nn.NewReLU(c1.OutDim()), p1,
		nn.NewDense(p1.OutDim(), 8, nn.GlorotUniformInit),
		nn.NewReLU(8),
		nn.NewDense(8, 4, nn.GlorotUniformInit),
	)
}

// newAllocEnv wires K workers over a tiny synthetic shard, sequential
// pool, ready for steady-state stepping.
func newAllocEnv(k int) *Env {
	rng := tensor.NewRNG(7)
	train, _ := data.Synthetic(data.SyntheticConfig{
		Seed: 7, Classes: 4, TrainPer: 16, TestPer: 2,
		Height: 4, Width: 4, Channels: 1,
	})
	workers := make([]*Worker, k)
	d := 0
	for i := range workers {
		net := allocModel(rng.Split())
		d = net.NumParams()
		workers[i] = &Worker{
			ID: i, Net: net, Opt: opt.NewAdam(1e-3)(), Shard: train,
			drift:   make([]float64, net.NumParams()),
			sampler: data.NewSampler(train, rng.Split()),
		}
	}
	_ = d
	env := newEnv(comm.NewCluster(k), workers)
	env.pool = newPool(1)
	return env
}

// measureSteadyStep warms the arenas, then asserts the fused step
// allocates nothing.
func measureSteadyStep(t *testing.T, name string, env *Env, strat Strategy) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race instrumentation")
	}
	strat.Init(env)
	step := 0
	body := func() {
		step++
		for _, w := range env.Workers {
			w.LocalStep(8)
		}
		strat.AfterLocalStep(env, step)
	}
	for i := 0; i < 3; i++ {
		body() // warm-up: lazy Adam moments, batch arena, meter keys
	}
	if avg := testing.AllocsPerRun(20, body); avg != 0 {
		t.Fatalf("%s: steady-state step allocates %.1f times, want 0", name, avg)
	}
}

func TestLocalStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race instrumentation")
	}
	env := newAllocEnv(1)
	w := env.Workers[0]
	for i := 0; i < 3; i++ {
		w.LocalStep(8)
	}
	if avg := testing.AllocsPerRun(50, func() { w.LocalStep(8) }); avg != 0 {
		t.Fatalf("LocalStep allocates %.1f times per call, want 0", avg)
	}
}

func TestLinearFDASteadyStepZeroAllocs(t *testing.T) {
	s := NewLinearFDA(1e18)
	measureSteadyStep(t, "LinearFDA", newAllocEnv(3), s)
}

func TestSketchFDASteadyStepZeroAllocs(t *testing.T) {
	s := NewSketchFDA(1e18)
	measureSteadyStep(t, "SketchFDA", newAllocEnv(3), s)
}

func TestOracleFDASteadyStepZeroAllocs(t *testing.T) {
	s := NewOracleFDA(1e18)
	measureSteadyStep(t, "OracleFDA", newAllocEnv(3), s)
}

// TestMomentumStepZeroAllocs covers the SGD-NM update rule used by the
// DenseNet rows (Adam is covered by the step tests above).
func TestMomentumStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race instrumentation")
	}
	o := opt.NewSGDNesterov(0.05, 0.9, 1e-4)()
	params := make([]float64, 512)
	grads := make([]float64, 512)
	tensor.Normal(tensor.NewRNG(3), params, 0, 1)
	tensor.Normal(tensor.NewRNG(4), grads, 0, 1)
	o.Step(params, grads) // lazy velocity
	if avg := testing.AllocsPerRun(50, func() { o.Step(params, grads) }); avg != 0 {
		t.Fatalf("Momentum.Step allocates %.1f times per call, want 0", avg)
	}
}
