package core

// Event is one element of a training session's typed progress stream.
// Sessions (and the asynchronous coordinator runner) emit events
// synchronously, on the training goroutine, in a deterministic order per
// step: StepEvent, then SyncEvent if the strategy synchronized, then
// EvalEvent if the step was an evaluation point, then DoneEvent once the
// run finishes (DESIGN.md §8). Sinks must not retain pointers into
// mutable session state; every event payload is self-contained values.
type Event interface {
	// Kind names the event variant ("step", "sync", "eval", "done") for
	// log lines and the SSE wire format.
	Kind() string
}

// StepEvent reports one completed training step.
type StepEvent struct {
	// Step is the 1-based global step that just completed. In the
	// asynchronous runner it is the per-cluster total divided by K (the
	// in-parallel step count), and Worker identifies which worker moved.
	Step int `json:"step"`
	// Worker is the worker that completed a local step in the
	// asynchronous runner; -1 in lock-step sessions, where every worker
	// steps together.
	Worker int `json:"worker"`
	// VirtualTime is the simulated clock of the asynchronous runner; 0 in
	// lock-step sessions.
	VirtualTime float64 `json:"virtual_time,omitempty"`
}

// Kind implements Event.
func (StepEvent) Kind() string { return "step" }

// SyncEvent reports one model synchronization.
type SyncEvent struct {
	// Step is the global step at which the synchronization happened.
	Step int `json:"step"`
	// SyncCount is the total number of synchronizations so far, this one
	// included.
	SyncCount int `json:"sync_count"`
	// Trigger names the policy decision that triggered the
	// synchronization (the strategy name, e.g. "LinearFDA" for a
	// variance-threshold crossing, "LocalSGD(τ=10)" for a schedule tick).
	Trigger string `json:"trigger"`
	// SyncBytes is the model traffic charged for this synchronization.
	SyncBytes int64 `json:"sync_bytes"`
	// TotalBytes is the cumulative communication (state + model) after it.
	TotalBytes int64 `json:"total_bytes"`
}

// Kind implements Event.
func (SyncEvent) Kind() string { return "sync" }

// EvalEvent reports one evaluation of the averaged global model.
type EvalEvent struct {
	// Point is the evaluation snapshot appended to the run history.
	Point Point `json:"point"`
}

// Kind implements Event.
func (EvalEvent) Kind() string { return "eval" }

// DoneEvent is the final event of a session: the run completed (max
// steps, target accuracy, or divergence — inspect Result and Err).
type DoneEvent struct {
	// Result is the finished run's summary.
	Result Result `json:"result"`
	// Err holds the failure message when the run ended in an error
	// (divergence); empty on success.
	Err string `json:"err,omitempty"`
}

// Kind implements Event.
func (DoneEvent) Kind() string { return "done" }

// EventSink consumes session events. Sinks run synchronously on the
// training goroutine — slow sinks slow the run, and a sink must never
// call back into the session.
type EventSink func(Event)
