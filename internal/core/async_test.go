package core

import (
	"testing"
)

func asyncConfig(seed uint64) AsyncConfig {
	return AsyncConfig{
		Config: testConfig(seed),
		Theta:  0.1,
	}
}

func TestAsyncRunsAndTrains(t *testing.T) {
	ac := asyncConfig(1)
	ac.MaxSteps = 120
	res, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncCount == 0 {
		t.Fatal("async FDA never synchronized")
	}
	if res.FinalTestAcc < 0.5 {
		t.Fatalf("async accuracy %v", res.FinalTestAcc)
	}
}

func TestAsyncEqualSpeedsBalanceSteps(t *testing.T) {
	ac := asyncConfig(2)
	ac.MaxSteps = 60
	res, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	minS, maxS := res.StepsPerWorker[0], res.StepsPerWorker[0]
	for _, s := range res.StepsPerWorker {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS-minS > 1 {
		t.Fatalf("equal speeds but steps spread %v", res.StepsPerWorker)
	}
}

func TestAsyncStragglersKeepTrainingProportionally(t *testing.T) {
	ac := asyncConfig(3)
	ac.MaxSteps = 100
	ac.Speeds = []float64{1, 1, 1, 1, 0.25} // one 4× slower straggler
	res, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	fast := res.StepsPerWorker[0]
	slow := res.StepsPerWorker[4]
	if slow == 0 {
		t.Fatal("straggler made no progress")
	}
	ratio := float64(fast) / float64(slow)
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("fast/slow step ratio %v want ≈ 4 (steps %v)", ratio, res.StepsPerWorker)
	}
}

func TestAsyncSketchVariant(t *testing.T) {
	ac := asyncConfig(4)
	ac.MaxSteps = 60
	ac.UseSketch = true
	res, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "AsyncSketchFDA" {
		t.Fatalf("strategy %q", res.Strategy)
	}
	if res.SyncCount == 0 {
		t.Fatal("sketch variant never synced")
	}
}

func TestAsyncValidation(t *testing.T) {
	ac := asyncConfig(5)
	ac.Speeds = []float64{1, 1} // wrong arity for K=5
	if _, err := RunAsync(ac); err == nil {
		t.Fatal("expected speeds arity error")
	}
	ac = asyncConfig(5)
	ac.Speeds = []float64{1, 1, 1, 1, 0}
	if _, err := RunAsync(ac); err == nil {
		t.Fatal("expected non-positive speed error")
	}
	ac = asyncConfig(5)
	ac.Theta = -1
	if _, err := RunAsync(ac); err == nil {
		t.Fatal("expected negative theta error")
	}
}

func TestAsyncVirtualTimeAdvances(t *testing.T) {
	ac := asyncConfig(6)
	ac.MaxSteps = 40
	res, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime <= 0 {
		t.Fatalf("virtual time %v", res.VirtualTime)
	}
}

func TestAsyncTargetStopsEarly(t *testing.T) {
	ac := asyncConfig(7)
	ac.TargetAccuracy = 0.5
	ac.MaxSteps = 400
	res, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatal("target not reached")
	}
}
