package core

import "testing"

// TestEventQueueLessBreaksTiesByWorker pins the ordering contract: events
// sort by virtual time first, and simultaneous completions by worker id,
// so straggler scheduling is specified rather than an artifact of heap
// internals.
func TestEventQueueLessBreaksTiesByWorker(t *testing.T) {
	q := eventQueue{
		{at: 1.0, worker: 2},
		{at: 1.0, worker: 0},
		{at: 0.5, worker: 7},
	}
	if !q.Less(2, 0) {
		t.Fatal("earlier time must order first regardless of worker id")
	}
	if !q.Less(1, 0) {
		t.Fatal("equal times must break ties by lower worker id")
	}
	if q.Less(0, 1) {
		t.Fatal("tie-break must be asymmetric")
	}
}

// TestEventQueueEqualSpeedsRoundRobin drives the queue exactly as
// RunAsync does with equal worker speeds: every virtual-time slot is a
// K-way tie, and the pop order must be a strict worker-id round-robin in
// every round.
func TestEventQueueEqualSpeedsRoundRobin(t *testing.T) {
	const k = 5
	q := make(eventQueue, 0, k)
	// Seed in scrambled order; the heap must still drain ties by id.
	for _, w := range []int{3, 0, 4, 2, 1} {
		q.push(stepEvent{at: 1, worker: w})
	}
	for step := 0; step < 4*k; step++ {
		ev := q.pop()
		if want := step % k; ev.worker != want {
			t.Fatalf("step %d: popped worker %d, want %d (at=%v)", step, ev.worker, want, ev.at)
		}
		if wantAt := 1 + float64(step/k); ev.at != wantAt {
			t.Fatalf("step %d: at = %v, want %v", step, ev.at, wantAt)
		}
		q.push(stepEvent{at: ev.at + 1, worker: ev.worker})
	}
}

// TestEventQueueHeapProperty exercises push/pop with distinct mixed times
// against a straggler pattern: pops must come out in nondecreasing time.
func TestEventQueueHeapProperty(t *testing.T) {
	speeds := []float64{1, 0.3, 2.5, 1, 0.7}
	q := make(eventQueue, 0, len(speeds))
	for w, s := range speeds {
		q.push(stepEvent{at: 1 / s, worker: w})
	}
	prevAt, prevWorker := 0.0, -1
	for i := 0; i < 100; i++ {
		ev := q.pop()
		if ev.at < prevAt || (ev.at == prevAt && ev.worker <= prevWorker) {
			t.Fatalf("pop %d out of order: (%v, w%d) after (%v, w%d)",
				i, ev.at, ev.worker, prevAt, prevWorker)
		}
		prevAt, prevWorker = ev.at, ev.worker
		q.push(stepEvent{at: ev.at + 1/speeds[ev.worker], worker: ev.worker})
	}
}
