package core

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// testWorkload returns a small normalized synthetic task and an MLP
// builder sized for fast tests (d ≈ 2.4k).
func testWorkload(seed uint64) (train, test *data.Dataset, model ModelBuilder) {
	train, test = data.MNISTLike(seed)
	nz := data.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)
	dim := train.Dim()
	model = func(rng *tensor.RNG) *nn.Network {
		return nn.New(rng,
			nn.NewDense(dim, 32, nn.GlorotUniformInit),
			nn.NewReLU(32),
			nn.NewDense(32, 10, nn.GlorotUniformInit),
		)
	}
	return train, test, model
}

func testConfig(seed uint64) Config {
	train, test, model := testWorkload(seed)
	return Config{
		K: 5, BatchSize: 32, Seed: seed,
		Model: model, Optimizer: opt.NewAdam(1e-3),
		Train: train, Test: test,
		MaxSteps: 150, EvalEvery: 25,
	}
}

func TestRunValidatesConfig(t *testing.T) {
	_, err := Run(Config{}, NewSynchronous())
	if err == nil {
		t.Fatal("expected config error")
	}
}

func TestSynchronousSyncsEveryStep(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxSteps = 40
	res := MustRun(cfg, NewSynchronous())
	if res.SyncCount != 40 {
		t.Fatalf("Synchronous synced %d times in 40 steps", res.SyncCount)
	}
	if res.StateBytes != 0 {
		t.Fatalf("Synchronous charged %d state bytes", res.StateBytes)
	}
	if res.ModelBytes == 0 {
		t.Fatal("Synchronous charged no model bytes")
	}
}

func TestLocalSGDSyncCadence(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxSteps = 60
	res := MustRun(cfg, NewLocalSGD(10))
	if res.SyncCount != 6 {
		t.Fatalf("LocalSGD(10) synced %d times in 60 steps", res.SyncCount)
	}
}

func TestFedOptRoundCadence(t *testing.T) {
	cfg := testConfig(3)
	cfg.MaxSteps = 45
	f := NewFedAvgFor(cfg, 1)
	// shard = 2400/5 = 480; 480/32 = 15 steps per epoch.
	if f.roundSteps != 15 {
		t.Fatalf("round steps = %d want 15", f.roundSteps)
	}
	res := MustRun(cfg, f)
	if res.SyncCount != 3 {
		t.Fatalf("FedAvg synced %d times in 45 steps", res.SyncCount)
	}
}

func TestVarianceIdentityDuringTraining(t *testing.T) {
	// Eq. (4): Var(w) computed via drifts must equal the direct definition
	// throughout a real training trajectory.
	cfg := testConfig(4)
	cfg.MaxSteps = 30
	probe := &identityProbe{t: t}
	MustRun(cfg, probe)
	if probe.checks == 0 {
		t.Fatal("probe never ran")
	}
}

type identityProbe struct {
	t      *testing.T
	checks int
}

func (p *identityProbe) Name() string { return "identity-probe" }
func (p *identityProbe) Init(_ *Env)  {}
func (p *identityProbe) AfterLocalStep(env *Env, step int) {
	direct := env.ExactVariance()
	viaDrift := env.ExactVarianceViaDrift()
	if math.Abs(direct-viaDrift) > 1e-9*(1+direct) {
		p.t.Fatalf("step %d: Var direct %v != via-drift %v", step, direct, viaDrift)
	}
	p.checks++
	if step%10 == 0 {
		env.SyncModels()
	}
}

// Both FDA estimators must overestimate the true variance (Thm 3.1 holds
// with probability 1−δ, Thm 3.2 deterministically). We assert the linear
// bound always and allow rare sketch failures.
func TestEstimatorsOverestimateVariance(t *testing.T) {
	cfg := testConfig(5)
	cfg.MaxSteps = 60
	probe := &boundProbe{}
	MustRun(cfg, probe)
	if probe.checks < 50 {
		t.Fatalf("only %d checks ran", probe.checks)
	}
	if probe.linearViolations > 0 {
		t.Fatalf("LinearFDA bound violated %d/%d times (must never happen)",
			probe.linearViolations, probe.checks)
	}
	if float64(probe.sketchViolations) > 0.1*float64(probe.checks) {
		t.Fatalf("SketchFDA bound violated %d/%d times (should be ≤ δ≈5%%)",
			probe.sketchViolations, probe.checks)
	}
}

type boundProbe struct {
	sk               *SketchFDA
	lin              *LinearFDA
	checks           int
	linearViolations int
	sketchViolations int
}

func (p *boundProbe) Name() string { return "bound-probe" }
func (p *boundProbe) Init(env *Env) {
	p.sk = NewSketchFDA(math.Inf(1)) // never sync via the variant itself
	p.lin = NewLinearFDA(math.Inf(1))
	p.sk.Init(env)
	p.lin.Init(env)
}

func (p *boundProbe) AfterLocalStep(env *Env, step int) {
	truth := env.ExactVarianceViaDrift()
	// Evaluate both estimators' H on the current drifts.
	for i, w := range env.Workers {
		u := w.Drift(env.W0)
		p.sk.states[i][0] = tensor.SquaredNorm(u)
		p.sk.sk.SketchVec(p.sk.workerSk[i], u)
		p.lin.states[i][0] = p.sk.states[i][0]
		p.lin.states[i][1] = tensor.Dot(p.lin.xi, u)
	}
	tensor.Mean(p.sk.meanSt, p.sk.states...)
	tensor.Mean(p.lin.meanSt, p.lin.states...)
	hSketch := p.sk.estimate()
	hLinear := p.lin.meanSt[0] - p.lin.meanSt[1]*p.lin.meanSt[1]

	p.checks++
	if hLinear < truth-1e-9*(1+truth) {
		p.linearViolations++
	}
	if hSketch < truth-1e-9*(1+truth) {
		p.sketchViolations++
	}
	if step%15 == 0 {
		env.SyncModels()
	}
}

func TestFDASyncsLessThanSynchronous(t *testing.T) {
	for _, mk := range []func() Strategy{
		func() Strategy { return NewSketchFDA(0.1) },
		func() Strategy { return NewLinearFDA(0.1) },
		func() Strategy { return NewOracleFDA(0.1) },
	} {
		cfg := testConfig(6)
		cfg.MaxSteps = 80
		res := MustRun(cfg, mk())
		if res.SyncCount >= 80 {
			t.Fatalf("%s synced every step", res.Strategy)
		}
		if res.SyncCount == 0 {
			t.Fatalf("%s never synced with a moderate Θ", res.Strategy)
		}
	}
}

func TestThetaMonotonicity(t *testing.T) {
	// Higher Θ ⇒ at most as many synchronizations.
	syncs := func(theta float64) int {
		cfg := testConfig(7)
		cfg.MaxSteps = 80
		return MustRun(cfg, NewLinearFDA(theta)).SyncCount
	}
	low, high := syncs(0.05), syncs(0.5)
	if high > low {
		t.Fatalf("Θ=0.5 synced %d > Θ=0.05 synced %d", high, low)
	}
	if low == 0 {
		t.Fatal("Θ=0.05 never synced; test not meaningful")
	}
}

func TestSketchSyncsAtMostLinear(t *testing.T) {
	// SketchFDA's tighter estimator should trigger no more syncs than
	// LinearFDA at the same Θ (allowing tiny slack for sketch noise).
	cfg := testConfig(8)
	cfg.MaxSteps = 100
	lin := MustRun(cfg, NewLinearFDA(0.12)).SyncCount
	sk := MustRun(cfg, NewSketchFDA(0.12)).SyncCount
	if sk > lin+1 {
		t.Fatalf("SketchFDA %d syncs > LinearFDA %d", sk, lin)
	}
}

func TestFDACommFarBelowSynchronous(t *testing.T) {
	// The headline claim at small scale: same accuracy target, orders of
	// magnitude less communication.
	target := 0.9
	mk := func() Config {
		cfg := testConfig(9)
		cfg.MaxSteps = 400
		cfg.TargetAccuracy = target
		return cfg
	}
	syncRes := MustRun(mk(), NewSynchronous())
	fdaRes := MustRun(mk(), NewLinearFDA(0.1))
	if !syncRes.ReachedTarget || !fdaRes.ReachedTarget {
		t.Fatalf("targets not reached: sync=%v fda=%v", syncRes, fdaRes)
	}
	if fdaRes.CommBytes*5 > syncRes.CommBytes {
		t.Fatalf("FDA comm %d not ≪ Synchronous comm %d", fdaRes.CommBytes, syncRes.CommBytes)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := testConfig(10)
	cfg.MaxSteps = 60
	a := MustRun(cfg, NewLinearFDA(0.1))
	b := MustRun(cfg, NewLinearFDA(0.1))
	if a.SyncCount != b.SyncCount || a.CommBytes != b.CommBytes ||
		a.FinalTestAcc != b.FinalTestAcc || a.Steps != b.Steps {
		t.Fatalf("identical configs diverged:\n%v\n%v", a, b)
	}
}

func TestSeedsProduceDifferentRuns(t *testing.T) {
	a := MustRun(testConfig(11), NewLinearFDA(0.1))
	cfg := testConfig(11)
	cfg.Seed = 12
	b := MustRun(cfg, NewLinearFDA(0.1))
	if a.FinalTestAcc == b.FinalTestAcc && a.SyncCount == b.SyncCount && a.CommBytes == b.CommBytes {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestTargetAccuracyStopsRun(t *testing.T) {
	cfg := testConfig(13)
	cfg.TargetAccuracy = 0.5 // trivially reachable
	cfg.MaxSteps = 400
	res := MustRun(cfg, NewSynchronous())
	if !res.ReachedTarget {
		t.Fatal("target never reached")
	}
	if res.Steps == 400 {
		t.Fatal("run did not stop early")
	}
	if res.FinalTestAcc < 0.5 {
		t.Fatalf("stopped below target: %v", res.FinalTestAcc)
	}
}

func TestHistoryRecorded(t *testing.T) {
	cfg := testConfig(14)
	cfg.MaxSteps = 50
	cfg.EvalEvery = 10
	cfg.RecordTrainAccuracy = true
	res := MustRun(cfg, NewLinearFDA(0.1))
	if len(res.History) != 5 {
		t.Fatalf("history has %d points want 5", len(res.History))
	}
	for i, p := range res.History {
		if p.Step != (i+1)*10 {
			t.Fatalf("history step %d = %d", i, p.Step)
		}
		if p.TrainAcc == 0 {
			t.Fatalf("train accuracy not recorded at point %d", i)
		}
		if i > 0 && p.CommBytes < res.History[i-1].CommBytes {
			t.Fatal("comm bytes decreased over time")
		}
	}
}

func TestHeterogeneousRunsComplete(t *testing.T) {
	for _, het := range []data.Heterogeneity{
		data.IID(), data.NonIIDPercent(60), data.NonIIDLabel(0, 2),
	} {
		cfg := testConfig(15)
		cfg.Het = het
		cfg.MaxSteps = 60
		res := MustRun(cfg, NewLinearFDA(0.1))
		if res.Steps != 60 {
			t.Fatalf("%s run stopped early", het)
		}
		if res.FinalTestAcc < 0.3 {
			t.Fatalf("%s accuracy %v suspiciously low", het, res.FinalTestAcc)
		}
	}
}

func TestStateTrafficTinyVersusModelTraffic(t *testing.T) {
	// LinearFDA's per-step state is 2 scalars; even over many steps it
	// must stay far below one model synchronization.
	cfg := testConfig(16)
	cfg.MaxSteps = 100
	res := MustRun(cfg, NewLinearFDA(0.1))
	d := int64(2410)
	oneModelSync := comm.DefaultCostModel().TotalBytes(int(d), cfg.K)
	if res.StateBytes > oneModelSync {
		t.Fatalf("100 steps of linear state (%d B) exceeded one model sync (%d B)",
			res.StateBytes, oneModelSync)
	}
}

func TestOracleNeverSyncsMoreThanVariants(t *testing.T) {
	cfg := testConfig(17)
	cfg.MaxSteps = 100
	theta := 0.12
	oracle := MustRun(cfg, NewOracleFDA(theta)).SyncCount
	lin := MustRun(cfg, NewLinearFDA(theta)).SyncCount
	sk := MustRun(cfg, NewSketchFDA(theta)).SyncCount
	if oracle > lin || oracle > sk+1 {
		t.Fatalf("oracle %d syncs vs linear %d sketch %d", oracle, lin, sk)
	}
}

func TestLinearFDAXiAblationModes(t *testing.T) {
	cfg := testConfig(18)
	cfg.MaxSteps = 60
	for _, mode := range []string{"drift", "random", "zero"} {
		l := NewLinearFDA(0.1)
		l.XiMode = mode
		res := MustRun(cfg, l)
		if res.Steps != 60 {
			t.Fatalf("mode %s stopped early", mode)
		}
	}
	// Zero ξ cannot deflate, so it can only sync at least as often as the
	// drift heuristic.
	drift := NewLinearFDA(0.1)
	zero := NewLinearFDA(0.1)
	zero.XiMode = "zero"
	dRes := MustRun(cfg, drift)
	zRes := MustRun(cfg, zero)
	if zRes.SyncCount < dRes.SyncCount {
		t.Fatalf("zero-ξ synced %d < drift-ξ %d", zRes.SyncCount, dRes.SyncCount)
	}
}

func TestFedOptTrainsAndSpacesComm(t *testing.T) {
	cfg := testConfig(19)
	cfg.Optimizer = opt.NewAdam(1e-3)
	cfg.MaxSteps = 150
	res := MustRun(cfg, NewFedAdamFor(cfg, 1))
	if res.SyncCount != 10 {
		t.Fatalf("FedAdam rounds = %d want 10 (150 steps / 15-step epochs)", res.SyncCount)
	}
	if res.FinalTestAcc < 0.5 {
		t.Fatalf("FedAdam accuracy %v", res.FinalTestAcc)
	}
}

func TestResultStringAndCommGB(t *testing.T) {
	r := Result{Strategy: "X", CommBytes: 2_500_000_000}
	if r.CommGB() != 2.5 {
		t.Fatalf("CommGB = %v", r.CommGB())
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

// After any model synchronization the variance must be exactly zero and
// every worker must hold the identical model — the protocol's reset
// invariant, checked along a live trajectory for every strategy family.
func TestSyncResetsVarianceInvariant(t *testing.T) {
	for _, mk := range []func(cfg Config) Strategy{
		func(Config) Strategy { return NewLinearFDA(0.05) },
		func(Config) Strategy { return NewSketchFDA(0.05) },
		func(Config) Strategy { return NewLocalSGD(7) },
		func(cfg Config) Strategy { return NewFedAvgFor(cfg, 1) },
	} {
		cfg := testConfig(50)
		cfg.MaxSteps = 40
		inner := mk(cfg)
		probe := &resetProbe{t: t, inner: inner}
		MustRun(cfg, probe)
		if probe.syncsSeen == 0 {
			t.Fatalf("%s: no synchronization observed in 40 steps", inner.Name())
		}
	}
}

type resetProbe struct {
	t         *testing.T
	inner     Strategy
	syncsSeen int
}

func (p *resetProbe) Name() string  { return "reset-probe(" + p.inner.Name() + ")" }
func (p *resetProbe) Init(env *Env) { p.inner.Init(env) }
func (p *resetProbe) AfterLocalStep(env *Env, step int) {
	before := env.SyncCount
	p.inner.AfterLocalStep(env, step)
	if env.SyncCount == before {
		return
	}
	p.syncsSeen++
	if v := env.ExactVariance(); v > 1e-18 {
		p.t.Fatalf("%s: variance %v after synchronization", p.inner.Name(), v)
	}
	ref := env.Workers[0].Net.Params()
	for _, w := range env.Workers[1:] {
		params := w.Net.Params()
		for i := range ref {
			if params[i] != ref[i] {
				p.t.Fatalf("%s: workers differ after synchronization", p.inner.Name())
			}
		}
	}
}
