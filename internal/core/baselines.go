package core

import (
	"fmt"

	"repro/internal/opt"
	"repro/internal/tensor"
)

// Synchronous is the bulk-synchronous-parallel baseline: the models are
// AllReduce-averaged after every learning step. The paper notes it is the
// Θ=0 special case of Algorithm 1 (footnote 3); no monitoring state is
// needed because synchronization is unconditional.
type Synchronous struct{}

// NewSynchronous returns the BSP baseline.
func NewSynchronous() *Synchronous { return &Synchronous{} }

// Name implements Strategy.
func (s *Synchronous) Name() string { return "Synchronous" }

// Init implements Strategy.
func (s *Synchronous) Init(_ *Env) {}

// AfterLocalStep implements Strategy.
//
//fda:noalloc
func (s *Synchronous) AfterLocalStep(env *Env, _ int) { env.SyncModels() }

// LocalSGD synchronizes every Tau steps regardless of training state —
// the fixed-schedule family FDA argues against (related work §2).
type LocalSGD struct {
	Tau int
}

// NewLocalSGD returns the fixed-τ Local-SGD baseline.
func NewLocalSGD(tau int) *LocalSGD {
	if tau <= 0 {
		panic(fmt.Sprintf("core: LocalSGD τ = %d", tau))
	}
	return &LocalSGD{Tau: tau}
}

// Name implements Strategy.
func (l *LocalSGD) Name() string { return fmt.Sprintf("LocalSGD(τ=%d)", l.Tau) }

// Init implements Strategy.
func (l *LocalSGD) Init(_ *Env) {}

// AfterLocalStep implements Strategy.
//
//fda:noalloc
func (l *LocalSGD) AfterLocalStep(env *Env, t int) {
	if t%l.Tau == 0 {
		env.SyncModels()
	}
}

// FedOpt is the federated-optimization family (Reddi et al.): workers run
// E local epochs between rounds; at a round boundary the server forms the
// pseudo-gradient Δ = w_t0 − w̄ (the negated average local progress) and
// applies a server optimizer to the global model, which is then broadcast.
//
//   - Server SGD with momentum 0.9       ⇒ FedAvgM (paper's baseline for
//     the SGD-NM experiments)
//   - Server Adam                        ⇒ FedAdam (baseline for the Adam
//     experiments)
//   - Server plain SGD with lr 1        ⇒ FedAvg
//
// Communication per round is one model AllReduce, identical in size to an
// FDA synchronization; FedOpt simply spaces them on a fixed schedule.
type FedOpt struct {
	name string
	// E is the number of local epochs per round (the paper uses E=1).
	E int
	// ServerOpt updates the global model from the pseudo-gradient.
	ServerOpt opt.Optimizer

	roundSteps int // steps per round, derived from shard sizes
	global     []float64
	pseudoGrad []float64
	mean       []float64
	views      [][]float64
	broadcast  func(i int, w *Worker)
}

// NewFedAvg returns plain federated averaging with E local epochs.
func NewFedAvg(e int) *FedOpt {
	return newFedOpt("FedAvg", e, &opt.SGD{LR: 1})
}

// NewFedAvgM returns FedAvgM: server SGD with momentum. The paper's server
// settings are momentum 0.9 and learning rate 0.316.
func NewFedAvgM(e int) *FedOpt {
	return newFedOpt("FedAvgM", e, &opt.Momentum{LR: 0.316, Mu: 0.9})
}

// NewFedAdam returns FedAdam: server Adam with the reference defaults
// (lr 1e-2, τ-adaptivity via epsilon 1e-3 as in Reddi et al.).
func NewFedAdam(e int) *FedOpt {
	return newFedOpt("FedAdam", e, &opt.Adam{LR: 1e-2, Beta1: 0.9, Beta2: 0.999, Eps: 1e-3})
}

func newFedOpt(name string, e int, server opt.Optimizer) *FedOpt {
	if e <= 0 {
		panic(fmt.Sprintf("core: FedOpt E = %d", e))
	}
	return &FedOpt{name: name, E: e, ServerOpt: server}
}

// Name implements Strategy.
func (f *FedOpt) Name() string { return f.name }

// Init implements Strategy.
func (f *FedOpt) Init(env *Env) {
	// Round length must be set (SetRoundSteps / the *For constructors)
	// before Run; an unset value degenerates to per-step rounds.
	if f.roundSteps == 0 {
		f.roundSteps = 1
	}
	f.global = tensor.Clone(env.W0)
	f.pseudoGrad = make([]float64, env.D)
	f.mean = make([]float64, env.D)
	f.views = make([][]float64, len(env.Workers))
	for i, w := range env.Workers {
		f.views[i] = w.Net.Params()
	}
	f.broadcast = func(_ int, w *Worker) {
		w.Net.SetParams(f.global)
		w.Opt.Reset() // local optimizer state restarts each round
	}
	f.ServerOpt.Reset()
}

// SetRoundSteps fixes the number of lock-step iterations per communication
// round. Use FedRoundSteps to derive it from a config.
func (f *FedOpt) SetRoundSteps(steps int) {
	if steps <= 0 {
		panic("core: FedOpt round steps must be positive")
	}
	f.roundSteps = steps
}

// FedRoundSteps returns the lock-step iterations that make up E local
// epochs for cfg: ceil(shardSize/b)·E with shardSize = |train|/K.
func FedRoundSteps(cfg Config, e int) int {
	shard := cfg.Train.Len() / cfg.K
	if shard == 0 {
		shard = 1
	}
	steps := (shard + cfg.BatchSize - 1) / cfg.BatchSize * e
	if steps < 1 {
		steps = 1
	}
	return steps
}

// NewFedAvgFor, NewFedAvgMFor and NewFedAdamFor bind the round length to
// cfg so one local round spans E full epochs of the worker shards, as in
// the paper's FedOpt experiments (E = 1).

// NewFedAvgFor returns FedAvg with its round length derived from cfg.
func NewFedAvgFor(cfg Config, e int) *FedOpt {
	f := NewFedAvg(e)
	f.SetRoundSteps(FedRoundSteps(cfg, e))
	return f
}

// NewFedAvgMFor returns FedAvgM with its round length derived from cfg.
func NewFedAvgMFor(cfg Config, e int) *FedOpt {
	f := NewFedAvgM(e)
	f.SetRoundSteps(FedRoundSteps(cfg, e))
	return f
}

// NewFedAdamFor returns FedAdam with its round length derived from cfg.
func NewFedAdamFor(cfg Config, e int) *FedOpt {
	f := NewFedAdam(e)
	f.SetRoundSteps(FedRoundSteps(cfg, e))
	return f
}

// StateSnapshot implements the session checkpoint contract: the server's
// global model plus the server optimizer's state (momentum or Adam
// moments), which is what distinguishes a round boundary mid-run from
// one at initialization.
func (f *FedOpt) StateSnapshot() ([][]float64, []uint64) {
	vecs := [][]float64{f.global}
	var counters []uint64
	if s, ok := f.ServerOpt.(opt.Snapshotter); ok {
		sv, sc := s.StateSnapshot()
		vecs = append(vecs, sv...)
		counters = sc
	}
	return vecs, counters
}

// RestoreState implements the session checkpoint contract.
func (f *FedOpt) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) < 1 {
		return fmt.Errorf("core: FedOpt snapshot carries no global model")
	}
	if len(vecs[0]) != len(f.global) {
		return fmt.Errorf("core: FedOpt global length %d, want %d", len(vecs[0]), len(f.global))
	}
	copy(f.global, vecs[0])
	if s, ok := f.ServerOpt.(opt.Snapshotter); ok {
		return s.RestoreState(vecs[1:], counters)
	}
	if len(vecs) > 1 || len(counters) > 0 {
		return fmt.Errorf("core: FedOpt snapshot carries server state for a stateless server optimizer")
	}
	return nil
}

// AfterLocalStep implements Strategy.
func (f *FedOpt) AfterLocalStep(env *Env, t int) {
	if t%f.roundSteps != 0 {
		return
	}
	// Round boundary: aggregate local models (one metered model AllReduce),
	// then apply the server update on the global model and broadcast.
	env.Fabric.AllReduceMean("model", f.mean, f.views)

	// Pseudo-gradient Δ = w_global − w̄; server step moves the global
	// model along −Δ scaled by its optimizer.
	tensor.Sub(f.pseudoGrad, f.global, f.mean)
	f.ServerOpt.Step(f.global, f.pseudoGrad)

	env.ForEachWorker(f.broadcast)
	env.advanceW0(f.global)
	env.SyncCount++
}
