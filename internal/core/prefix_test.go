package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
)

// prefixSnap is one published trajectory-prefix snapshot plus the guard
// the publisher reported at publication time.
type prefixSnap struct {
	steps int
	guard float64
	blob  []byte
}

// publishPrefixes runs cfg under mk()'s strategy with the prefix hook
// armed at the given cadence and returns everything it published.
func publishPrefixes(t *testing.T, cfg Config, mk func() Strategy, every int) (Strategy, []prefixSnap) {
	t.Helper()
	strat := mk()
	sess, err := NewSession(nil, cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	sharer, ok := strat.(PrefixSharer)
	if !ok {
		t.Fatalf("%s does not implement PrefixSharer", strat.Name())
	}
	var published []prefixSnap
	if err := sess.PublishPrefixes(every, func(steps int, snap *checkpoint.Snapshot) {
		blob, err := checkpoint.Marshal(snap)
		if err != nil {
			t.Fatalf("marshal prefix snapshot: %v", err)
		}
		published = append(published, prefixSnap{steps, sharer.PrefixGuard(), blob})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	return strat, published
}

// warmStartParity pins the tentpole invariant: a consumer cell that
// restores the longest admissible prefix published by a sibling ends
// bit-identical to its own cold run. pubCfg and conCfg differ at most
// in parallelism knobs (which the engine guarantees cannot change the
// bytes); mkPub and mkCon differ only in sync-time parameters within
// one prefix family.
func warmStartParity(t *testing.T, pubCfg, conCfg Config, mkPub, mkCon func() Strategy, every int) {
	t.Helper()
	pubStrat, published := publishPrefixes(t, pubCfg, mkPub, every)
	if len(published) == 0 {
		t.Fatalf("publisher %s produced no prefix snapshots", pubStrat.Name())
	}

	// Cold reference.
	want := MustRun(conCfg, mkCon())

	// Warm consumer: restore the longest admissible prefix, run the tail.
	conStrat := mkCon()
	con, err := NewSession(nil, conCfg, conStrat)
	if err != nil {
		t.Fatal(err)
	}
	sharerP := pubStrat.(PrefixSharer)
	sharerC := conStrat.(PrefixSharer)
	if pf, cf := sharerP.PrefixFamily(), sharerC.PrefixFamily(); pf != cf {
		t.Fatalf("prefix families diverge: publisher %q, consumer %q", pf, cf)
	}
	best := -1
	for i, ps := range published {
		if sharerC.AcceptPrefix(ps.steps, ps.guard) && (best < 0 || ps.steps > published[best].steps) {
			best = i
		}
	}
	if best < 0 {
		t.Fatalf("no admissible prefix among %d published by %s", len(published), pubStrat.Name())
	}
	snap, err := checkpoint.Unmarshal(published[best].blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := con.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := con.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm run diverged from cold after restoring %d steps:\ncold: %+v\nwarm: %+v",
			published[best].steps, want, got)
	}
}

func prefixTestConfig() Config {
	cfg := testConfig(31)
	cfg.MaxSteps = 60
	cfg.EvalEvery = 15
	return cfg
}

// TestSessionWarmStartParity covers every prefix-sharing strategy
// family: each FDA variant across Θ, and the silent (schedule-driven)
// family across τ, round lengths and even across strategies. Thresholds
// are chosen against the measured statistic profile at this config so
// the publisher synchronizes mid-run (ending its prefix stream) while
// the consumer accepts a strict prefix of it.
func TestSessionWarmStartParity(t *testing.T) {
	cfg := prefixTestConfig()
	cases := []struct {
		name         string
		mkPub, mkCon func() Strategy
	}{
		// Θ ascending: the consumer accepts everything the publisher
		// stayed silent through.
		{"LinearFDA-theta-asc",
			func() Strategy { return NewLinearFDA(0.4) },
			func() Strategy { return NewLinearFDA(1.0) }},
		// Θ descending: the consumer's smaller Θ rejects late prefixes via
		// the guard and restores an earlier one (exercised below too).
		{"LinearFDA-theta-desc",
			func() Strategy { return NewLinearFDA(1.0) },
			func() Strategy { return NewLinearFDA(0.3) }},
		{"SketchFDA-theta",
			func() Strategy { return NewSketchFDA(0.13) },
			func() Strategy { return NewSketchFDA(0.4) }},
		{"OracleFDA-theta",
			func() Strategy { return NewOracleFDA(0.045) },
			func() Strategy { return NewOracleFDA(0.12) }},
		// The silent family: τ → τ′ and cross-strategy shares. At this
		// config FedRoundSteps(cfg, 1) = 15.
		{"LocalSGD-tau",
			func() Strategy { return NewLocalSGD(20) },
			func() Strategy { return NewLocalSGD(30) }},
		{"LocalSGD-to-FedAvgM",
			func() Strategy { return NewLocalSGD(20) },
			func() Strategy { return NewFedAvgMFor(cfg, 1) }},
		{"FedAdam-to-LAG",
			func() Strategy { return NewFedAdamFor(cfg, 1) },
			func() Strategy { return NewLAG(25, 0.5) }},
		{"LocalSGD-to-IncreasingTau",
			func() Strategy { return NewLocalSGD(20) },
			func() Strategy { return NewIncreasingTauLocalSGD(25, 2) }},
		{"LocalSGD-to-PostLocalSGD",
			func() Strategy { return NewLocalSGD(20) },
			func() Strategy { return NewPostLocalSGD(0, 18) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warmStartParity(t, cfg, cfg, tc.mkPub, tc.mkCon, 5)
		})
	}
}

// TestSessionWarmStartCrossParallel restores a prefix published by a
// 4-way-parallel publisher into a sequential consumer — parallelism
// must not leak into snapshots any more than into results.
func TestSessionWarmStartCrossParallel(t *testing.T) {
	pubCfg := prefixTestConfig()
	pubCfg.Parallelism = 4
	conCfg := prefixTestConfig()
	conCfg.Parallelism = 1
	warmStartParity(t, pubCfg, conCfg,
		func() Strategy { return NewLinearFDA(0.4) },
		func() Strategy { return NewLinearFDA(1.0) }, 5)
}

// TestWarmStartGuardMatchesFirstSync pins the guard-acceptance rule to
// ground truth: a consumer accepts exactly the prefixes that end
// strictly before its own cold first synchronization.
func TestWarmStartGuardMatchesFirstSync(t *testing.T) {
	cfg := prefixTestConfig()
	// A never-syncing publisher records the family's full Θ-independent
	// statistic profile.
	_, published := publishPrefixes(t, cfg, func() Strategy { return NewLinearFDA(math.Inf(1)) }, 1)
	if len(published) != cfg.MaxSteps {
		t.Fatalf("published %d snapshots, want %d", len(published), cfg.MaxSteps)
	}

	const theta = 0.3
	firstSync := 0
	sess, err := NewSession(nil, cfg, NewLinearFDA(theta))
	if err != nil {
		t.Fatal(err)
	}
	sess.Subscribe(func(e Event) {
		if se, ok := e.(SyncEvent); ok && firstSync == 0 {
			firstSync = se.Step
		}
	})
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if firstSync == 0 {
		t.Fatal("consumer never synchronized; pick a smaller Θ")
	}

	consumer := NewLinearFDA(theta)
	consumer.Init(&Env{}) // families/acceptance only need Theta for LinearFDA
	for _, ps := range published {
		wantAccept := ps.steps < firstSync
		if got := consumer.AcceptPrefix(ps.steps, ps.guard); got != wantAccept {
			t.Fatalf("AcceptPrefix(steps=%d, guard=%g) = %v, want %v (first sync at %d)",
				ps.steps, ps.guard, got, wantAccept, firstSync)
		}
	}
}

// TestPublishPrefixesLifecycle pins the hook mechanics: publication
// stops permanently at the first synchronization, never fires at a
// terminal step, and arming is refused on bad arguments or after a
// synchronization.
func TestPublishPrefixesLifecycle(t *testing.T) {
	cfg := prefixTestConfig()
	strat, published := publishPrefixes(t, cfg, func() Strategy { return NewLinearFDA(0.4) }, 5)

	// The publisher synchronized mid-run (that is what ends the stream);
	// every published step must predate the first sync.
	sharer := strat.(PrefixSharer)
	for _, ps := range published {
		if !sharer.AcceptPrefix(ps.steps, ps.guard) {
			t.Fatalf("publisher's own guard at step %d (%g) exceeds its Θ — published inside a sync",
				ps.steps, ps.guard)
		}
	}
	last := published[len(published)-1].steps
	if last >= cfg.MaxSteps {
		t.Fatalf("publication continued to the end (%d); expected the first sync to disarm it", last)
	}

	// Synchronous syncs at step 1: nothing is ever published, and it does
	// not even implement PrefixSharer.
	syncStrat := NewSynchronous()
	sess, err := NewSession(nil, cfg, syncStrat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Strategy(syncStrat).(PrefixSharer); ok {
		t.Fatal("Synchronous must not be a PrefixSharer")
	}
	fired := 0
	if err := sess.PublishPrefixes(1, func(int, *checkpoint.Snapshot) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("Synchronous published %d prefixes", fired)
	}

	// Bad arguments are refused.
	sess2, _ := NewSession(nil, cfg, NewLocalSGD(10))
	if err := sess2.PublishPrefixes(0, func(int, *checkpoint.Snapshot) {}); err == nil {
		t.Fatal("cadence 0 accepted")
	}
	if err := sess2.PublishPrefixes(5, nil); err == nil {
		t.Fatal("nil sink accepted")
	}

	// A terminal step is never published: with cadence 1 and an early
	// target, the stopping step itself must be absent from the stream.
	tCfg := prefixTestConfig()
	tCfg.TargetAccuracy = 0.05 // trivially reached at the first eval
	tStrat := NewLocalSGD(1000)
	tSess, err := NewSession(nil, tCfg, tStrat)
	if err != nil {
		t.Fatal(err)
	}
	var steps []int
	if err := tSess.PublishPrefixes(1, func(n int, _ *checkpoint.Snapshot) { steps = append(steps, n) }); err != nil {
		t.Fatal(err)
	}
	res, err := tSess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReachedTarget {
		t.Fatalf("target not reached (acc %v); test premise broken", res.FinalTestAcc)
	}
	for _, n := range steps {
		if n >= res.Steps {
			t.Fatalf("published at step %d, at/after the stopping step %d", n, res.Steps)
		}
	}
}
