package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Worker is one simulated training node: a model replica, a local
// optimizer with private state, and a shard of the training data.
//
// Each worker owns a private scratch arena (drift vector, mini-batch
// view) sized once at construction; every per-step computation happens
// inside it, so the steady-state training step performs zero heap
// allocations and workers can run concurrently without sharing scratch.
type Worker struct {
	ID      int
	Net     *nn.Network
	Opt     opt.Optimizer
	Shard   *data.Dataset
	sampler *data.Sampler

	drift []float64  // scratch: u^(k) = w^(k) − w_t0
	batch data.Batch // scratch: reused mini-batch view
}

// LocalStep performs one mini-batch Optimize step and returns the batch
// loss.
//
//fda:noalloc
func (w *Worker) LocalStep(batchSize int) float64 {
	w.sampler.SampleInto(&w.batch, batchSize)
	loss := w.Net.LossGradBatch(w.batch)
	w.Opt.Step(w.Net.Params(), w.Net.Grads())
	return loss
}

// Drift recomputes and returns the worker's drift vector u = w − w0. The
// returned slice is reused across calls.
func (w *Worker) Drift(w0 []float64) []float64 {
	tensor.Sub(w.drift, w.Net.Params(), w0)
	return w.drift
}

// DriftSquaredNorm recomputes the drift and returns it together with
// ‖u‖², fused into one sweep (every FDA state computation needs both).
// The squared norm accumulates left to right, bit-identical to
// SquaredNorm(Drift(w0)).
func (w *Worker) DriftSquaredNorm(w0 []float64) ([]float64, float64) {
	sq := tensor.SubThenSquaredNorm(w.drift, w.Net.Params(), w0)
	return w.drift, sq
}

// Env is the shared state a strategy operates on: the communication
// fabric, this process's workers, and the models at the last two
// synchronization points (w_t0 and w_t−1 in the paper's notation,
// needed by LinearFDA's ξ heuristic).
//
// Workers holds only the ranks this process drives — all K of them on
// the in-process fabrics, a single one inside a `fdarun -worker`
// process. Strategies iterate Workers for their per-worker state
// computations and go through Fabric for every cross-worker reduction,
// which is what makes the same strategy code run unchanged on all
// backends.
type Env struct {
	Fabric  comm.Fabric
	Workers []*Worker
	// W0 is the global model at the most recent synchronization.
	W0 []float64
	// WPrev is the global model at the synchronization before that; nil
	// until two synchronizations have happened.
	WPrev []float64
	// D is the model dimension.
	D int
	// SyncCount counts model synchronizations performed so far.
	SyncCount int
	// Codec, when non-nil, compresses the drifts exchanged during model
	// synchronization (see Config.SyncCodec). FDA composes with model
	// compression because it only changes when synchronization happens.
	Codec compress.Codec

	paramViews [][]float64 // local workers' parameter slices, for AllReduce
	codecBuf   []float64
	codecMean  []float64
	encoded    [][]byte // distributed compressed sync: encoded local drifts
	pool       *pool

	// w0Arenas double-buffers the (W0, WPrev) pair: at most two
	// synchronization-point models are live at once, so each sync writes
	// the new global model into the arena currently holding the retiring
	// WPrev instead of allocating. w0Idx tracks which arena W0 occupies.
	w0Arenas [2][]float64
	w0Idx    int
	// driftScratch and driftScratch2 back the measurement helpers
	// (ExactVariance and the drift-identity variant), which strategies
	// may evaluate every step.
	driftScratch  []float64
	driftScratch2 []float64
}

func newEnv(fabric comm.Fabric, workers []*Worker) *Env {
	e := &Env{
		Fabric:  fabric,
		Workers: workers,
		D:       workers[0].Net.NumParams(),
	}
	e.w0Arenas[0] = tensor.Clone(workers[0].Net.Params())
	e.W0 = e.w0Arenas[0]
	e.paramViews = make([][]float64, len(workers))
	for i, w := range workers {
		e.paramViews[i] = w.Net.Params()
	}
	return e
}

// advanceW0 retires the current (W0, WPrev) pair: WPrev becomes the old
// W0 and W0 becomes a copy of src, written into the spare arena. Callers
// must not retain the old WPrev slice across synchronizations — the
// arena it occupies is recycled on the following call.
func (e *Env) advanceW0(src []float64) {
	next := 1 - e.w0Idx
	if e.w0Arenas[next] == nil {
		e.w0Arenas[next] = make([]float64, e.D)
	}
	copy(e.w0Arenas[next], src)
	e.WPrev = e.W0
	e.W0 = e.w0Arenas[next]
	e.w0Idx = next
}

// restoreSyncPoints rewinds the (W0, WPrev) bookkeeping to a checkpointed
// pair. The arenas are laid out exactly as a live run would have them —
// W0 in arena 0, WPrev (when present) in arena 1 with w0Idx at 0 — so a
// subsequent advanceW0 recycles the same way an uninterrupted run would.
func (e *Env) restoreSyncPoints(w0, wPrev []float64) {
	copy(e.w0Arenas[0], w0)
	e.W0 = e.w0Arenas[0]
	e.w0Idx = 0
	if wPrev == nil {
		e.WPrev = nil
		return
	}
	if e.w0Arenas[1] == nil {
		e.w0Arenas[1] = make([]float64, e.D)
	}
	copy(e.w0Arenas[1], wPrev)
	e.WPrev = e.w0Arenas[1]
}

// scratchD returns the Env's lazily sized d-length measurement scratch.
func (e *Env) scratchD() []float64 {
	if e.driftScratch == nil {
		e.driftScratch = make([]float64, e.D)
	}
	return e.driftScratch
}

// scratchD2 is the second measurement scratch (per-rank drift while
// scratchD accumulates the mean).
func (e *Env) scratchD2() []float64 {
	if e.driftScratch2 == nil {
		e.driftScratch2 = make([]float64, e.D)
	}
	return e.driftScratch2
}

// Parallelism returns the effective goroutine count of the run's worker
// pool (1 when the run is sequential).
func (e *Env) Parallelism() int { return e.pool.Workers() }

// ForEachWorker runs body(k, Workers[k]) for every worker, concurrently
// when the run's Config.Parallelism allows it. Bodies must touch only
// state owned by worker k (its replica, optimizer, drift scratch) and
// index-addressed slots such as states[k]; cross-worker reductions belong
// after the call, in worker order, as in the sequential path. A nil-pool
// Env (zero value, tests) runs inline.
func (e *Env) ForEachWorker(body func(k int, w *Worker)) {
	// Sequential fast path: calling body inline avoids building the
	// index-adapter closure, which escapes into the pool and would be the
	// one heap allocation left on the steady-state step.
	if e.pool.Workers() <= 1 || len(e.Workers) <= 1 {
		for i, w := range e.Workers {
			body(i, w)
		}
		return
	}
	e.pool.ForEach(len(e.Workers), func(i int) { body(i, e.Workers[i]) })
}

// SyncModels performs the expensive model synchronization: an AllReduce
// over the full parameter vectors, leaving every worker holding the
// average model, and advances the (w_t0, w_t−1) bookkeeping. When a codec
// is configured, each worker's drift is compressed before aggregation and
// the compressed wire size is charged instead of the dense model.
func (e *Env) SyncModels() {
	if e.Codec != nil {
		e.syncCompressed()
		return
	}
	e.Fabric.AllReduce("model", e.paramViews)
	e.advanceW0(e.Workers[0].Net.Params())
	e.SyncCount++
}

// syncCompressed implements compressed synchronization: workers exchange
// codec-compressed drifts; the new global model is w_t0 plus the mean of
// the reconstructed drifts. The residual each worker keeps (its true
// parameters minus the reconstruction) is discarded, matching plain
// (non-error-feedback) compressed averaging.
//
// When the fabric is distributed (this process owns a strict subset of
// ranks), the drifts genuinely travel in their compress wire encoding
// through ExchangeBytes and every process reconstructs the mean from
// the decoded payloads. Decode(Encode(u)) is bit-equal to the
// in-process Roundtrip(u) reconstruction (the compress wire contract),
// so the resulting global model is bit-identical to the in-process
// fabrics'.
func (e *Env) syncCompressed() {
	if e.codecBuf == nil {
		e.codecBuf = make([]float64, e.D)
		e.codecMean = make([]float64, e.D)
	}
	tensor.Zero(e.codecMean)
	var wire int64
	if len(e.Workers) == e.Fabric.K() {
		// In-process: reconstruct each drift locally, no bytes needed.
		for _, w := range e.Workers {
			u := w.Drift(e.W0)
			wire += int64(e.Codec.Roundtrip(e.codecBuf, u))
			tensor.AXPY(1, e.codecBuf, e.codecMean)
		}
	} else {
		wire = e.exchangeCompressedDrifts()
	}
	tensor.Scale(e.codecMean, 1/float64(e.Fabric.K()))
	// New global model w_t0 + mean(û), assembled in the codec scratch and
	// copied into the W0 arena by advanceW0.
	tensor.Add(e.codecMean, e.W0, e.codecMean)
	global := e.codecMean
	e.ForEachWorker(func(_ int, w *Worker) { w.Net.SetParams(global) })
	e.advanceW0(global)
	e.SyncCount++
	// Each worker uploads its compressed drift and downloads the
	// aggregate; charge 2× the summed compressed payloads. All codecs
	// price by vector length alone, so every process computes the same
	// cluster total from its local drifts.
	e.Fabric.Meter().Charge("model", 2*wire)
	if tt, ok := e.Fabric.(comm.TransferTimer); ok {
		tt.TransferDone(2 * wire / int64(e.Fabric.K()))
	}
}

// exchangeCompressedDrifts runs the distributed half of syncCompressed:
// encode local drifts, exchange the framed payloads, decode all K in
// rank order into the accumulating mean. Returns the cluster-total
// charged wire size.
func (e *Env) exchangeCompressedDrifts() int64 {
	wc, ok := e.Codec.(compress.WireCodec)
	if !ok {
		panic(fmt.Sprintf("core: distributed compressed sync needs a wire codec, %s has no encoding", e.Codec.Name()))
	}
	var perWorker int64
	e.encoded = e.encoded[:0]
	for _, w := range e.Workers {
		u := w.Drift(e.W0)
		// Cost-model size of one drift (length-dependent only, so it
		// prices every rank's payload); the real frame travels below.
		perWorker = int64(e.Codec.Roundtrip(e.codecBuf, u))
		e.encoded = append(e.encoded, wc.Encode(u))
	}
	parts := e.Fabric.ExchangeBytes("model", e.encoded)
	for r, p := range parts {
		if err := wc.Decode(e.codecBuf, p); err != nil {
			panic(fmt.Sprintf("core: decoding rank %d compressed drift: %v", r, err))
		}
		tensor.AXPY(1, e.codecBuf, e.codecMean)
	}
	return perWorker * int64(e.Fabric.K())
}

// GlobalModel writes the current average model w̄ into dst (measurement
// only; not charged as communication). On a distributed fabric this is
// a collective — every process of the cluster must call it at the same
// point of the run, which the replicated session loop guarantees.
func (e *Env) GlobalModel(dst []float64) {
	tensor.Mean(dst, e.Fabric.Gather(e.paramViews)...)
}

// MeanSquaredDrift returns the mean ‖u^(k)‖² over this process's
// workers (measurement helper for tests; not a collective).
func (e *Env) MeanSquaredDrift() float64 {
	var s float64
	for _, w := range e.Workers {
		_, sq := w.DriftSquaredNorm(e.W0)
		s += sq
	}
	return s / float64(len(e.Workers))
}

// ExactVariance returns Var(w_t) computed directly from Eq. (2) — the
// ground truth that the FDA estimators bound. Used by tests and the
// oracle ablation; a real deployment cannot compute it cheaply.
func (e *Env) ExactVariance() float64 {
	all := e.Fabric.Gather(e.paramViews)
	mean := make([]float64, e.D)
	tensor.Mean(mean, all...)
	var s float64
	diff := make([]float64, e.D)
	for _, p := range all {
		s += tensor.SubThenSquaredNorm(diff, p, mean)
	}
	return s / float64(e.Fabric.K())
}

// ExactVarianceViaDrift returns Var(w_t) through the drift identity
// Eq. (4): mean‖u‖² − ‖ū‖². Tests assert it matches ExactVariance.
// OracleFDA evaluates it every step, so the drifts and their mean
// accumulate in Env scratch arenas rather than fresh vectors; the
// gathered parameters and the same fused kernel keep the reduction
// bit-identical to the pre-fabric per-worker loop.
func (e *Env) ExactVarianceViaDrift() float64 {
	all := e.Fabric.Gather(e.paramViews)
	meanDrift := e.scratchD()
	diff := e.scratchD2()
	tensor.Zero(meanDrift)
	var meanSq float64
	for _, p := range all {
		sq := tensor.SubThenSquaredNorm(diff, p, e.W0)
		meanSq += sq
		tensor.AXPY(1, diff, meanDrift)
	}
	k := float64(e.Fabric.K())
	meanSq /= k
	tensor.Scale(meanDrift, 1/k)
	return meanSq - tensor.SquaredNorm(meanDrift)
}
