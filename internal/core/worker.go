package core

import (
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Worker is one simulated training node: a model replica, a local
// optimizer with private state, and a shard of the training data.
type Worker struct {
	ID      int
	Net     *nn.Network
	Opt     opt.Optimizer
	Shard   *data.Dataset
	sampler *data.Sampler

	drift []float64 // scratch: u^(k) = w^(k) − w_t0
}

// LocalStep performs one mini-batch Optimize step and returns the batch
// loss.
func (w *Worker) LocalStep(batchSize int) float64 {
	loss := w.Net.LossGradBatch(w.sampler.Sample(batchSize))
	w.Opt.Step(w.Net.Params(), w.Net.Grads())
	return loss
}

// Drift recomputes and returns the worker's drift vector u = w − w0. The
// returned slice is reused across calls.
func (w *Worker) Drift(w0 []float64) []float64 {
	tensor.Sub(w.drift, w.Net.Params(), w0)
	return w.drift
}

// Env is the shared state a strategy operates on: the cluster fabric, the
// workers, and the models at the last two synchronization points (w_t0
// and w_t−1 in the paper's notation, needed by LinearFDA's ξ heuristic).
type Env struct {
	Cluster *comm.Cluster
	Workers []*Worker
	// W0 is the global model at the most recent synchronization.
	W0 []float64
	// WPrev is the global model at the synchronization before that; nil
	// until two synchronizations have happened.
	WPrev []float64
	// D is the model dimension.
	D int
	// SyncCount counts model synchronizations performed so far.
	SyncCount int
	// Codec, when non-nil, compresses the drifts exchanged during model
	// synchronization (see Config.SyncCodec). FDA composes with model
	// compression because it only changes when synchronization happens.
	Codec compress.Codec

	paramViews [][]float64 // workers' parameter slices, for AllReduce
	codecBuf   []float64
	codecMean  []float64
	pool       *pool
}

func newEnv(cluster *comm.Cluster, workers []*Worker) *Env {
	e := &Env{
		Cluster: cluster,
		Workers: workers,
		D:       workers[0].Net.NumParams(),
	}
	e.W0 = tensor.Clone(workers[0].Net.Params())
	e.paramViews = make([][]float64, len(workers))
	for i, w := range workers {
		e.paramViews[i] = w.Net.Params()
	}
	return e
}

// Parallelism returns the effective goroutine count of the run's worker
// pool (1 when the run is sequential).
func (e *Env) Parallelism() int { return e.pool.Workers() }

// ForEachWorker runs body(k, Workers[k]) for every worker, concurrently
// when the run's Config.Parallelism allows it. Bodies must touch only
// state owned by worker k (its replica, optimizer, drift scratch) and
// index-addressed slots such as states[k]; cross-worker reductions belong
// after the call, in worker order, as in the sequential path. A nil-pool
// Env (zero value, tests) runs inline.
func (e *Env) ForEachWorker(body func(k int, w *Worker)) {
	e.pool.ForEach(len(e.Workers), func(i int) { body(i, e.Workers[i]) })
}

// SyncModels performs the expensive model synchronization: an AllReduce
// over the full parameter vectors, leaving every worker holding the
// average model, and advances the (w_t0, w_t−1) bookkeeping. When a codec
// is configured, each worker's drift is compressed before aggregation and
// the compressed wire size is charged instead of the dense model.
func (e *Env) SyncModels() {
	if e.Codec != nil {
		e.syncCompressed()
		return
	}
	e.WPrev = e.W0
	e.Cluster.AllReduce("model", e.paramViews)
	e.W0 = tensor.Clone(e.Workers[0].Net.Params())
	e.SyncCount++
}

// syncCompressed implements compressed synchronization: workers exchange
// codec-compressed drifts; the new global model is w_t0 plus the mean of
// the reconstructed drifts. The residual each worker keeps (its true
// parameters minus the reconstruction) is discarded, matching plain
// (non-error-feedback) compressed averaging.
func (e *Env) syncCompressed() {
	if e.codecBuf == nil {
		e.codecBuf = make([]float64, e.D)
		e.codecMean = make([]float64, e.D)
	}
	tensor.Zero(e.codecMean)
	var wire int64
	for _, w := range e.Workers {
		u := w.Drift(e.W0)
		wire += int64(e.Codec.Roundtrip(e.codecBuf, u))
		tensor.AXPY(1, e.codecBuf, e.codecMean)
	}
	tensor.Scale(e.codecMean, 1/float64(len(e.Workers)))
	e.WPrev = e.W0
	global := tensor.Clone(e.W0)
	tensor.Add(global, global, e.codecMean)
	e.ForEachWorker(func(_ int, w *Worker) { w.Net.SetParams(global) })
	e.W0 = global
	e.SyncCount++
	// Each worker uploads its compressed drift and downloads the
	// aggregate; charge 2× the summed compressed payloads.
	e.Cluster.Meter.Charge("model", 2*wire)
}

// GlobalModel writes the current average model w̄ into dst (measurement
// only; not charged as communication).
func (e *Env) GlobalModel(dst []float64) {
	tensor.Mean(dst, e.paramViews...)
}

// MeanSquaredDrift returns (1/K)·Σ‖u^(k)‖² computed locally (measurement
// helper for tests and the exact-variance oracle).
func (e *Env) MeanSquaredDrift() float64 {
	var s float64
	for _, w := range e.Workers {
		s += tensor.SquaredNorm(w.Drift(e.W0))
	}
	return s / float64(len(e.Workers))
}

// ExactVariance returns Var(w_t) computed directly from Eq. (2) — the
// ground truth that the FDA estimators bound. Used by tests and the
// oracle ablation; a real deployment cannot compute it cheaply.
func (e *Env) ExactVariance() float64 {
	mean := make([]float64, e.D)
	e.GlobalModel(mean)
	var s float64
	diff := make([]float64, e.D)
	for _, w := range e.Workers {
		tensor.Sub(diff, w.Net.Params(), mean)
		s += tensor.SquaredNorm(diff)
	}
	return s / float64(len(e.Workers))
}

// ExactVarianceViaDrift returns Var(w_t) through the drift identity
// Eq. (4): mean‖u‖² − ‖ū‖². Tests assert it matches ExactVariance.
func (e *Env) ExactVarianceViaDrift() float64 {
	meanDrift := make([]float64, e.D)
	var meanSq float64
	for _, w := range e.Workers {
		u := w.Drift(e.W0)
		meanSq += tensor.SquaredNorm(u)
		tensor.AXPY(1, u, meanDrift)
	}
	k := float64(len(e.Workers))
	meanSq /= k
	tensor.Scale(meanDrift, 1/k)
	return meanSq - tensor.SquaredNorm(meanDrift)
}
