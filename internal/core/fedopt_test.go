package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// FedAvg with a unit-learning-rate plain-SGD server is mathematically
// plain model averaging: w_global ← w_global − 1·(w_global − w̄) = w̄.
// This pins the pseudo-gradient formulation against the direct average.
func TestFedAvgEqualsPlainAveraging(t *testing.T) {
	cfg := testConfig(40)
	cfg.MaxSteps = 15
	f := NewFedAvgFor(cfg, 1) // roundSteps = 15 ⇒ exactly one round

	var checked bool
	probe := &fedAvgProbe{t: t, inner: f, checked: &checked}
	MustRun(cfg, probe)
	if !checked {
		t.Fatal("round boundary never reached")
	}
}

// fedAvgProbe wraps FedOpt and, at the round boundary, compares the
// broadcast global model against the directly computed average of the
// pre-aggregation worker models.
type fedAvgProbe struct {
	t       *testing.T
	inner   *FedOpt
	checked *bool
}

func (p *fedAvgProbe) Name() string  { return "fedavg-probe" }
func (p *fedAvgProbe) Init(env *Env) { p.inner.Init(env) }
func (p *fedAvgProbe) AfterLocalStep(env *Env, step int) {
	atBoundary := step%p.inner.roundSteps == 0
	var want []float64
	if atBoundary {
		want = make([]float64, env.D)
		env.GlobalModel(want) // average before the FedOpt aggregation
	}
	p.inner.AfterLocalStep(env, step)
	if !atBoundary {
		return
	}
	got := env.Workers[0].Net.Params()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			p.t.Fatalf("FedAvg broadcast differs from plain average at %d: %v vs %v",
				i, got[i], want[i])
		}
	}
	*p.checked = true
}

// After a FedOpt round every worker must hold an identical model and the
// round bookkeeping (W0) must match it.
func TestFedOptBroadcastConsistency(t *testing.T) {
	cfg := testConfig(41)
	cfg.MaxSteps = 15
	f := NewFedAdamFor(cfg, 1)
	probe := &broadcastProbe{t: t, inner: f}
	MustRun(cfg, probe)
	if !probe.checked {
		t.Fatal("round boundary never reached")
	}
}

type broadcastProbe struct {
	t       *testing.T
	inner   *FedOpt
	checked bool
}

func (p *broadcastProbe) Name() string  { return "broadcast-probe" }
func (p *broadcastProbe) Init(env *Env) { p.inner.Init(env) }
func (p *broadcastProbe) AfterLocalStep(env *Env, step int) {
	p.inner.AfterLocalStep(env, step)
	if step%p.inner.roundSteps != 0 {
		return
	}
	ref := env.Workers[0].Net.Params()
	for _, w := range env.Workers[1:] {
		params := w.Net.Params()
		for i := range ref {
			if params[i] != ref[i] {
				p.t.Fatal("workers diverge after FedOpt broadcast")
			}
		}
	}
	for i := range ref {
		if env.W0[i] != ref[i] {
			p.t.Fatal("W0 not updated to the broadcast model")
		}
	}
	p.checked = true
}

// FedAvgM must make different progress than plain FedAvg (the server
// momentum matters), while both remain finite and trainable.
func TestFedAvgMDiffersFromFedAvg(t *testing.T) {
	cfg := testConfig(42)
	cfg.MaxSteps = 60
	avg := MustRun(cfg, NewFedAvgFor(cfg, 1))
	avgM := MustRun(cfg, NewFedAvgMFor(cfg, 1))
	if avg.FinalTestAcc == avgM.FinalTestAcc {
		t.Fatal("server momentum had no effect (suspicious)")
	}
	if !(avg.FinalTestAcc > 0.2 && avgM.FinalTestAcc > 0.2) {
		t.Fatalf("baselines failed to train: %v vs %v", avg.FinalTestAcc, avgM.FinalTestAcc)
	}
}

// Worker optimizer state resets at round boundaries (the paper's FedOpt
// formulation restarts local optimizers each round).
func TestFedOptResetsLocalOptimizers(t *testing.T) {
	cfg := testConfig(43)
	cfg.MaxSteps = 30
	// Indirect but robust check: two FedAvg runs whose only difference is
	// MaxSteps spanning one extra full round must share the first round's
	// trajectory exactly (determinism would break if reset state leaked
	// differently). Primarily this guards the Opt.Reset call path.
	a := MustRun(cfg, NewFedAvgFor(cfg, 1))
	b := MustRun(cfg, NewFedAvgFor(cfg, 1))
	if a.FinalTestAcc != b.FinalTestAcc || a.CommBytes != b.CommBytes {
		t.Fatal("FedOpt runs not deterministic")
	}
	_ = tensor.Clone // keep tensor import meaningful if asserts change
}
