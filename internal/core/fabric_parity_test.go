package core

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/compress"
)

// fabricRun executes cfg under a fresh strategy on the given fabric and
// returns the Result plus the final averaged global model.
func fabricRun(t *testing.T, cfg Config, mk func() Strategy, fabric comm.Fabric) (Result, []float64) {
	t.Helper()
	cfg.Fabric = fabric
	sess, err := NewSession(context.Background(), cfg, mk())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	params := make([]float64, sess.NumParams())
	sess.GlobalModel(params)
	return res, params
}

// tcpRun executes cfg as a genuinely distributed K-process session over
// a loopback TCP coordinator: K goroutines each drive one rank through
// its own TCPFabric and the full wire protocol. Returns rank 0's Result
// and final global model (all ranks are asserted identical first).
func tcpRun(t *testing.T, cfg Config, mk func() Strategy) (Result, []float64) {
	t.Helper()
	coord, err := comm.ListenCoordinator("127.0.0.1:0", cfg.K)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type out struct {
		res    Result
		params []float64
		err    error
	}
	outs := make([]out, cfg.K)
	var wg sync.WaitGroup
	serveErr := make(chan error, 1)
	go func() {
		// The job payload is unused here — the test injects the config
		// directly — but the rendezvous protocol still delivers it.
		_, err := coord.Serve(ctx, []byte("{}"))
		serveErr <- err
	}()
	for w := 0; w < cfg.K; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if e, ok := r.(error); ok {
						outs[w].err = e
						return
					}
					panic(r)
				}
			}()
			fabric, _, err := comm.DialFabric(ctx, coord.Addr(), cfg.Cost)
			if err != nil {
				outs[w].err = err
				return
			}
			defer fabric.Close()
			wcfg := cfg
			wcfg.Fabric = fabric
			sess, err := NewSession(ctx, wcfg, mk())
			if err != nil {
				outs[w].err = err
				return
			}
			res, err := sess.Run()
			if err != nil {
				outs[w].err = err
				return
			}
			params := make([]float64, sess.NumParams())
			sess.GlobalModel(params) // a collective: every rank calls it in lockstep
			outs[w] = out{res: res, params: params}
			if err := fabric.SendResult([]byte("ok")); err != nil {
				outs[w].err = err
			}
		}(w)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("coordinator serve: %v", err)
	}
	for w, o := range outs {
		if o.err != nil {
			t.Fatalf("worker %d: %v", w, o.err)
		}
	}
	for w := 1; w < cfg.K; w++ {
		if !reflect.DeepEqual(outs[0].res, outs[w].res) {
			t.Fatalf("rank %d result diverged from rank 0:\n%+v\nvs\n%+v", w, outs[w].res, outs[0].res)
		}
		assertSameVec(t, "tcp rank", outs[0].params, outs[w].params)
	}
	return outs[0].res, outs[0].params
}

func assertSameVec(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: params[%d] = %x vs %x", what, i, math.Float64bits(a[i]), math.Float64bits(b[i]))
		}
	}
}

// stripTime zeroes the time fields that legitimately differ between
// fabrics (the sim fabric's virtual clock); everything else must match
// bit-for-bit.
func stripTime(r Result) Result {
	r.VirtualSec = 0
	for i := range r.History {
		r.History[i].VirtualSec = 0
	}
	return r
}

// TestCrossFabricParity is the tentpole invariant of the fabric
// refactor: a fixed config trained on the in-process reference, the
// simulated-network fabric and a loopback-TCP multi-process cluster
// produces bit-identical final parameters, identical histories and
// identical per-worker byte accounting for every FDA strategy family
// (and the baselines). Only the virtual clock differs.
func TestCrossFabricParity(t *testing.T) {
	base := testConfig(91)
	base.K = 3
	base.MaxSteps = 30
	base.EvalEvery = 10
	base = base.withDefaults()

	cases := parityStrategies(base)
	// Compressed synchronization exercises the real wire encode/decode
	// path on the TCP fabric.
	cases["LinearFDA+chain"] = func() Strategy { return NewLinearFDA(0.05) }
	codecs := map[string]compress.Codec{
		"LinearFDA+chain": compress.Chain{Stages: []compress.Codec{
			compress.TopK{Fraction: 0.25}, compress.Quantize{Bits: 8}}},
	}

	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := base
			cfg.SyncCodec = codecs[name]

			refRes, refParams := fabricRun(t, cfg, mk, comm.NewClusterWithCost(cfg.K, cfg.Cost))

			simRes, simParams := fabricRun(t, cfg, mk,
				comm.NewSimFabric(cfg.K, cfg.Cost, comm.ScenarioFedWAN))
			if simRes.VirtualSec <= 0 {
				t.Fatalf("sim fabric reported no virtual time")
			}
			assertSameVec(t, "sim", refParams, simParams)
			if !reflect.DeepEqual(refRes, stripTime(simRes)) {
				t.Fatalf("sim result diverged:\n%+v\nvs\n%+v", stripTime(simRes), refRes)
			}

			tcpRes, tcpParams := tcpRun(t, cfg, mk)
			assertSameVec(t, "tcp", refParams, tcpParams)
			if !reflect.DeepEqual(refRes, stripTime(tcpRes)) {
				t.Fatalf("tcp result diverged:\n%+v\nvs\n%+v", stripTime(tcpRes), refRes)
			}

			// Per-worker byte counts: every fabric charges the same
			// per-worker cost for the dominant collectives.
			d := len(refParams)
			if per := cfg.Cost.PerWorkerBytes(d, cfg.K); per <= 0 {
				t.Fatalf("degenerate per-worker cost %d", per)
			}
			if refRes.CommBytes%int64(cfg.K) != 0 {
				t.Fatalf("cluster total %d not divisible by K=%d", refRes.CommBytes, cfg.K)
			}
		})
	}
}

// TestSimFabricSnapshotRestoresClock checks the virtual clock rides the
// session checkpoint: a run cancelled mid-flight and resumed on a fresh
// SimFabric continues to the exact Result (including VirtualSec) of an
// uninterrupted run.
func TestSimFabricSnapshotRestoresClock(t *testing.T) {
	cfg := testConfig(23)
	cfg.K = 3
	cfg.MaxSteps = 24
	cfg.EvalEvery = 8
	cfg = cfg.withDefaults()
	mkFabric := func() comm.Fabric {
		return comm.NewSimFabric(cfg.K, cfg.Cost, comm.ScenarioStraggler)
	}

	full := cfg
	full.Fabric = mkFabric()
	ref, err := NewSession(context.Background(), full, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want.VirtualSec <= 0 {
		t.Fatal("reference run has no virtual time")
	}

	half := cfg
	half.Fabric = mkFabric()
	s1, err := NewSession(context.Background(), half, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if _, err := s1.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	resumed := cfg
	resumed.Fabric = mkFabric()
	s2, err := NewSession(context.Background(), resumed, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed sim run diverged:\n%+v\nvs\n%+v", got, want)
	}
}

// TestFabricPerWorkerBytesIdentical pins the per-worker byte accounting
// across fabrics at the meter level: same kinds, same bytes, same op
// counts.
func TestFabricPerWorkerBytesIdentical(t *testing.T) {
	cfg := testConfig(17)
	cfg.K = 3
	cfg.MaxSteps = 20
	cfg.EvalEvery = 10
	cfg = cfg.withDefaults()
	mk := func() Strategy { return NewLinearFDA(0.1) }

	fabrics := map[string]comm.Fabric{
		"ref": comm.NewClusterWithCost(cfg.K, cfg.Cost),
		"sim": comm.NewSimFabric(cfg.K, cfg.Cost, comm.ScenarioStraggler),
	}
	meters := map[string]map[string]int64{}
	for name, f := range fabrics {
		fabricRun(t, cfg, mk, f)
		bytes, ops := f.Meter().Snapshot()
		meters[name] = bytes
		for kind, n := range ops {
			if n <= 0 {
				t.Fatalf("%s fabric: kind %s has %d ops", name, kind, n)
			}
		}
	}
	if !reflect.DeepEqual(meters["ref"], meters["sim"]) {
		t.Fatalf("meters diverged: %v vs %v", meters["ref"], meters["sim"])
	}
}
