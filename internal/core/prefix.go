package core

import "fmt"

// This file classifies strategies for trajectory-prefix sharing — the
// warm-start machinery behind the experiment sweeps' snapshot reuse
// (DESIGN.md §10).
//
// The observation: until a strategy performs its first synchronization,
// the training trajectory does not depend on the parameters that decide
// *when* that synchronization fires. Workers step locally from the same
// w0, with the same shards, samplers and optimizers; the strategy only
// watches. Two grid cells that differ solely in sync-time parameters
// (Θ, or τ within limits below) therefore share a bit-identical prefix,
// and a snapshot taken inside that prefix by one cell can warm-start
// the other — provided the snapshot also proves the consumer would not
// have synchronized anywhere inside it. That proof takes two forms:
//
//   - Statistic-triggered strategies (the FDA family) sync when their
//     per-step statistic h exceeds Θ (strictly). The snapshot records
//     guard = max(h_1..h_n); a consumer accepts iff guard ≤ its own Θ,
//     the exact complement of the trigger. The h sequence itself is
//     Θ-independent before the first sync, but it is NOT variant-
//     independent — each FDA variant computes a different h and meters
//     different state traffic per step — so each variant is its own
//     family.
//
//   - Schedule-triggered strategies (LocalSGD and relatives) do nothing
//     at all before their first scheduled action: no collective, no
//     metered traffic, no state change. They all share one "silent"
//     family, and a consumer accepts a prefix iff it ends strictly
//     before its own first scheduled action. Sharing here crosses
//     strategy boundaries: a LocalSGD(τ=20) prefix serves a FedAvg cell
//     whose first round lands later.
//
// Synchronous syncs at step 1 and has no shareable prefix, so it simply
// does not implement PrefixSharer (nor does any wrapper whose trigger
// state mutates before the first sync).

// PrefixSharer is implemented by strategies that can publish and
// consume trajectory-prefix snapshots. All three methods are meaningful
// only after Init (families and first actions may be derived from the
// environment) and before the strategy's first synchronization.
type PrefixSharer interface {
	Strategy
	// PrefixFamily names the class of strategies whose pre-first-sync
	// trajectory is identical to this one's. Equal family strings (for
	// cells that agree on everything but sync-time parameters) mean
	// interchangeable prefixes.
	PrefixFamily() string
	// PrefixGuard returns the running maximum of the strategy's sync
	// statistic over the steps taken so far (0 for schedule-driven
	// strategies, which have no statistic).
	PrefixGuard() float64
	// AcceptPrefix reports whether this (freshly initialized) strategy
	// would have stayed silent through a prefix of the given length with
	// the given published guard.
	AcceptPrefix(steps int, guard float64) bool
}

// --- statistic-triggered family: FDA -------------------------------

// PrefixGuard implements PrefixSharer for the FDA variants: maxStat is
// maintained by each variant's AfterLocalStep.
func (b *fdaBase) PrefixGuard() float64 { return b.maxStat }

// AcceptPrefix implements PrefixSharer: h ≤ Θ everywhere in the prefix
// is the exact complement of the strict h > Θ sync trigger, so the
// consumer provably never fires inside it.
func (b *fdaBase) AcceptPrefix(_ int, guard float64) bool { return guard <= b.Theta }

// PrefixFamily implements PrefixSharer. Drift- and zero-ξ LinearFDA
// share a family: ξ is zero for both until the second synchronization,
// so their pre-first-sync h sequences coincide. Random ξ is fixed from
// Init and parameterized by its seed.
func (l *LinearFDA) PrefixFamily() string {
	if l.XiMode == "random" {
		return fmt.Sprintf("LinearFDA/random/%d", l.Seed)
	}
	return "LinearFDA/xi0"
}

// PrefixFamily implements PrefixSharer. The sketch dimensions and hash
// seed shape both the h sequence and the per-step state traffic, so
// they are part of the family; call after Init (which derives defaults
// from the model dimension).
func (s *SketchFDA) PrefixFamily() string {
	return fmt.Sprintf("SketchFDA/l%d/m%d/e%g/s%d", s.L, s.M, s.Epsilon, s.SketchSeed)
}

// PrefixFamily implements PrefixSharer.
func (o *OracleFDA) PrefixFamily() string { return "OracleFDA" }

// --- schedule-triggered family: silent until the first action ------

// silentFamily is shared by every strategy that performs no collective
// and mutates no state before its first scheduled synchronization.
const silentFamily = "silent"

// PrefixFamily implements PrefixSharer.
func (l *LocalSGD) PrefixFamily() string { return silentFamily }

// PrefixGuard implements PrefixSharer.
func (l *LocalSGD) PrefixGuard() float64 { return 0 }

// AcceptPrefix implements PrefixSharer: silent strictly before the
// first round boundary at τ.
func (l *LocalSGD) AcceptPrefix(steps int, _ float64) bool { return steps < l.Tau }

// PrefixFamily implements PrefixSharer.
func (f *FedOpt) PrefixFamily() string { return silentFamily }

// PrefixGuard implements PrefixSharer.
func (f *FedOpt) PrefixGuard() float64 { return 0 }

// AcceptPrefix implements PrefixSharer: silent strictly before the
// first round boundary. roundSteps is derived at Init/SetRoundSteps;
// before that (zero) nothing is accepted.
func (f *FedOpt) AcceptPrefix(steps int, _ float64) bool {
	return f.roundSteps > 0 && steps < f.roundSteps
}

// PrefixFamily implements PrefixSharer.
func (v *VaryingTauLocalSGD) PrefixFamily() string { return silentFamily }

// PrefixGuard implements PrefixSharer.
func (v *VaryingTauLocalSGD) PrefixGuard() float64 { return 0 }

// AcceptPrefix implements PrefixSharer: silent strictly before the
// schedule's first synchronization τ_0.
func (v *VaryingTauLocalSGD) AcceptPrefix(steps int, _ float64) bool {
	return v.Schedule != nil && steps < v.Schedule(0)
}

// PrefixFamily implements PrefixSharer.
func (p *PostLocalSGD) PrefixFamily() string { return silentFamily }

// PrefixGuard implements PrefixSharer.
func (p *PostLocalSGD) PrefixGuard() float64 { return 0 }

// AcceptPrefix implements PrefixSharer: with an initial BSP phase the
// first sync is at step 1 (no shareable prefix); with SwitchStep 0 the
// strategy degenerates to LocalSGD(τ).
func (p *PostLocalSGD) AcceptPrefix(steps int, _ float64) bool {
	if p.SwitchStep >= 1 {
		return false
	}
	return steps < p.Tau
}

// PrefixFamily implements PrefixSharer. LAG's first action — the state
// AllReduce at t=τ, which always syncs because lastNorm starts at 0 —
// is its first deviation from silence, so it shares the silent family
// below τ.
func (l *LAG) PrefixFamily() string { return silentFamily }

// PrefixGuard implements PrefixSharer.
func (l *LAG) PrefixGuard() float64 { return 0 }

// AcceptPrefix implements PrefixSharer.
func (l *LAG) AcceptPrefix(steps int, _ float64) bool { return steps < l.Tau }
