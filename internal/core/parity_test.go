package core

import (
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/data"
)

// parityStrategies enumerates one constructor per strategy family. Each
// call must build a fresh strategy (they carry per-run state).
func parityStrategies(cfg Config) map[string]func() Strategy {
	return map[string]func() Strategy{
		"SketchFDA":   func() Strategy { return NewSketchFDA(0.1) },
		"LinearFDA":   func() Strategy { return NewLinearFDA(0.1) },
		"OracleFDA":   func() Strategy { return NewOracleFDA(0.1) },
		"Synchronous": func() Strategy { return NewSynchronous() },
		"LocalSGD":    func() Strategy { return NewLocalSGD(7) },
		"FedAvg":      func() Strategy { return NewFedAvgFor(cfg, 1) },
		"FedAvgM":     func() Strategy { return NewFedAvgMFor(cfg, 1) },
		"FedAdam":     func() Strategy { return NewFedAdamFor(cfg, 1) },
	}
}

// TestParallelRunParityAllStrategies is the determinism contract of the
// parallel execution engine: for every strategy, Run with Parallelism 4
// must return a Result deeply equal — histories, byte counts, accuracies,
// every float64 bit — to the sequential run at the same seed, and two
// parallel runs must agree with each other.
func TestParallelRunParityAllStrategies(t *testing.T) {
	base := testConfig(42)
	base.MaxSteps = 45
	base.EvalEvery = 15
	base.RecordTrainAccuracy = true // exercises parallel train-set evaluation

	for name, mk := range parityStrategies(base) {
		t.Run(name, func(t *testing.T) {
			seq := base
			seq.Parallelism = 0
			par := base
			par.Parallelism = 4

			want := MustRun(seq, mk())
			got := MustRun(par, mk())
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("parallel run diverged from sequential:\nseq: %v\npar: %v", want, got)
			}
			again := MustRun(par, mk())
			if !reflect.DeepEqual(got, again) {
				t.Fatalf("two parallel runs diverged:\n1st: %v\n2nd: %v", got, again)
			}
		})
	}
}

// TestParallelRunParityAutoAndOddWidths checks the knob's edge settings:
// AutoParallelism, a width above K, and width 2 must all reproduce the
// sequential trajectory bit-for-bit.
func TestParallelRunParityAutoAndOddWidths(t *testing.T) {
	base := testConfig(7)
	base.MaxSteps = 30
	base.EvalEvery = 10
	want := MustRun(base, NewLinearFDA(0.1))
	for _, p := range []int{AutoParallelism, 2, 16} {
		cfg := base
		cfg.Parallelism = p
		got := MustRun(cfg, NewLinearFDA(0.1))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Parallelism=%d diverged from sequential:\nseq: %v\ngot: %v", p, want, got)
		}
	}
}

// TestParallelRunParityWithCodec covers the compressed-synchronization
// path, whose broadcast fans out across the pool.
func TestParallelRunParityWithCodec(t *testing.T) {
	base := testConfig(9)
	base.MaxSteps = 30
	base.EvalEvery = 10
	base.SyncCodec = compress.TopK{Fraction: 0.1}
	seq := MustRun(base, NewLinearFDA(0.05))
	par := base
	par.Parallelism = 4
	got := MustRun(par, NewLinearFDA(0.05))
	if !reflect.DeepEqual(seq, got) {
		t.Fatalf("codec run diverged under parallelism:\nseq: %v\npar: %v", seq, got)
	}
}

// TestParallelRunParityHeterogeneous runs the label-skew partitioner under
// parallelism: shard sizes differ across workers, so the pool sees uneven
// per-index work.
func TestParallelRunParityHeterogeneous(t *testing.T) {
	base := testConfig(11)
	base.MaxSteps = 30
	base.EvalEvery = 10
	base.Het = data.NonIIDLabel(0, 2)
	seq := MustRun(base, NewSketchFDA(0.1))
	par := base
	par.Parallelism = 3
	got := MustRun(par, NewSketchFDA(0.1))
	if !reflect.DeepEqual(seq, got) {
		t.Fatalf("heterogeneous run diverged under parallelism:\nseq: %v\npar: %v", seq, got)
	}
}
