package core

import (
	"context"
	"fmt"

	"repro/internal/sketch"
	"repro/internal/tensor"
)

// This file implements the asynchronous FDA operation sketched in §3.3:
// one worker-node acts as a coordinator, aggregating local states and
// deciding on synchronization every time a state arrives, based on the
// most recent states from all workers. The paper notes the primary
// benefit is tolerance to stragglers, so the simulation models per-worker
// speeds explicitly and advances a virtual clock with an event queue.

// AsyncConfig extends Config for the asynchronous runner.
type AsyncConfig struct {
	Config
	// Speeds holds one relative step rate per worker (1.0 = nominal).
	// A worker with speed 0.5 takes twice as long per local step. Nil
	// means all workers run at speed 1.
	Speeds []float64
	// Theta is the variance threshold Θ.
	Theta float64
	// UseSketch selects the AMS-sketch estimator; false uses the linear
	// two-scalar estimator with the drift heuristic ξ.
	UseSketch bool
	// MaxVirtualTime optionally caps the simulated clock (0 = no cap).
	MaxVirtualTime float64
}

// AsyncResult augments Result with per-worker progress and the virtual
// clock, the quantities that show straggler tolerance.
type AsyncResult struct {
	Result
	// StepsPerWorker records each worker's local step count at the end;
	// under synchronous operation these would all equal Result.Steps.
	StepsPerWorker []int
	// VirtualTime is the simulated clock at the end of the run.
	VirtualTime float64
}

// stepEvent is one worker's next step completion in virtual time.
type stepEvent struct {
	at     float64
	worker int
}

// eventQueue is a value-typed binary min-heap of step events. It replaces
// container/heap so the per-event push/pop cycle boxes no interfaces and
// allocates nothing once the backing array has reached cluster size.
type eventQueue []stepEvent

func (q eventQueue) Len() int { return len(q) }

// Less orders events by virtual time, breaking ties by worker id so the
// scheduling order of simultaneous completions (equal speeds are the
// common case) is specified rather than an artifact of heap internals.
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].worker < q[j].worker
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// push inserts ev, sifting it up to its heap position.
func (q *eventQueue) push(ev stepEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() stepEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.Less(l, smallest) {
			smallest = l
		}
		if r < n && h.Less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.Swap(i, smallest)
		i = smallest
	}
}

// RunAsync executes asynchronous FDA. Each worker trains at its own speed;
// after every local step it sends its small state to the coordinator
// (charged one-way), which re-evaluates H over the latest states from all
// workers and, when H > Θ, performs a model synchronization (gather +
// broadcast, charged as 2d per worker under the naive model or the ring
// cost otherwise).
func RunAsync(ac AsyncConfig) (AsyncResult, error) {
	return RunAsyncContext(context.Background(), ac, nil)
}

// RunAsyncContext is RunAsync on the session event spine: the
// coordinator loop emits the same typed events a lock-step Session does
// (StepEvent per completed local step — with the moving worker and the
// virtual clock — SyncEvent per coordinator-led synchronization,
// EvalEvent per evaluation, DoneEvent at the end) and honors ctx:
// cancellation stops the virtual clock between events and returns the
// partial result with ctx's error. A nil sink discards events.
func RunAsyncContext(ctx context.Context, ac AsyncConfig, sink EventSink) (AsyncResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	emit := sink
	if emit == nil {
		emit = func(Event) {}
	}
	cfg := ac.Config.withDefaults()
	if err := cfg.Validate(); err != nil {
		return AsyncResult{}, err
	}
	if ac.Theta < 0 {
		return AsyncResult{}, fmt.Errorf("core: negative Θ %v", ac.Theta)
	}
	speeds := ac.Speeds
	if speeds == nil {
		speeds = make([]float64, cfg.K)
		for i := range speeds {
			speeds[i] = 1
		}
	}
	if len(speeds) != cfg.K {
		return AsyncResult{}, fmt.Errorf("core: %d speeds for %d workers", len(speeds), cfg.K)
	}
	for i, s := range speeds {
		if s <= 0 {
			return AsyncResult{}, fmt.Errorf("core: worker %d speed %v", i, s)
		}
	}

	root := tensor.NewRNG(cfg.Seed)
	initNet := cfg.Model(root.Split())
	w0 := tensor.Clone(initNet.Params())
	d := initNet.NumParams()
	shards := cfg.Het.Partition(cfg.Train, cfg.K, root.Split())

	cluster := newAsyncCluster(cfg, d)
	workers := make([]*Worker, cfg.K)
	for k := range workers {
		net := cfg.Model(root.Split())
		net.SetParams(w0)
		workers[k] = &Worker{
			ID: k, Net: net, Opt: cfg.Optimizer(), Shard: shards[k],
			drift: make([]float64, d),
		}
		workers[k].sampler = newSampler(shards[k], root.Split())
	}

	// Estimator state held by the coordinator.
	var sk *sketch.Sketcher
	var skBuf *sketch.Sketch
	stateDim := 2
	epsilon := 0.06
	if ac.UseSketch {
		sk = sketch.NewSketcher(5, 250, cfg.Seed^0xa57c)
		sk.Precompute(d)
		skBuf = sk.NewSketch()
		stateDim = 1 + 5*250
	}
	latest := make([][]float64, cfg.K) // coordinator's latest state per worker
	for i := range latest {
		latest[i] = make([]float64, stateDim)
	}
	xi := make([]float64, d)
	wPrev := []float64(nil)

	computeState := func(w *Worker, dst []float64) {
		u := w.Drift(w0)
		dst[0] = tensor.SquaredNorm(u)
		if ac.UseSketch {
			sk.SketchVec(skBuf, u)
			copy(dst[1:], skBuf.Data)
		} else {
			dst[1] = tensor.Dot(xi, u)
		}
	}
	meanState := make([]float64, stateDim)
	var m2Scratch []float64
	if ac.UseSketch {
		m2Scratch = make([]float64, sk.L())
	}
	estimate := func() float64 {
		mean := meanState
		tensor.Mean(mean, latest...)
		if ac.UseSketch {
			copy(skBuf.Data, mean[1:])
			return mean[0] - sketch.M2Into(skBuf, m2Scratch)/(1+epsilon)
		}
		return mean[0] - mean[1]*mean[1]
	}

	evalNet := cfg.Model(root.Split())
	globalParams := make([]float64, d)
	views := make([][]float64, cfg.K)
	for i, w := range workers {
		views[i] = w.Net.Params()
	}

	res := AsyncResult{StepsPerWorker: make([]int, cfg.K)}
	res.Strategy = "AsyncFDA"
	if ac.UseSketch {
		res.Strategy = "AsyncSketchFDA"
	}

	q := make(eventQueue, 0, cfg.K)
	for k := 0; k < cfg.K; k++ {
		q.push(stepEvent{at: 1 / speeds[k], worker: k})
	}

	totalSteps := 0
	maxTotal := cfg.MaxSteps * cfg.K
	evalCounter := 0
	trainLen := float64(cfg.Train.Len())

	// finalize fills the run totals; shared by every exit path (step
	// budget, virtual-time cap, target reached, cancellation) so a
	// cancelled run still reports a coherent partial result.
	finalize := func() {
		res.Steps = maxInts(res.StepsPerWorker)
		res.Epochs = float64(totalSteps) * float64(cfg.BatchSize) / trainLen
		res.CommBytes = cluster.meter.TotalBytes()
		res.StateBytes = cluster.meter.BytesFor("state")
		res.ModelBytes = cluster.meter.BytesFor("model")
	}

	for totalSteps < maxTotal {
		if err := ctx.Err(); err != nil {
			finalize()
			return res, err
		}
		ev := q.pop()
		if ac.MaxVirtualTime > 0 && ev.at > ac.MaxVirtualTime {
			break
		}
		res.VirtualTime = ev.at
		w := workers[ev.worker]
		w.LocalStep(cfg.BatchSize)
		res.StepsPerWorker[ev.worker]++
		totalSteps++
		emit(StepEvent{Step: totalSteps / cfg.K, Worker: ev.worker, VirtualTime: ev.at})

		// Worker → coordinator state upload (one-way, small).
		computeState(w, latest[ev.worker])
		cluster.meterStateUpload(stateDim)

		if estimate() > ac.Theta {
			// Coordinator-led synchronization: gather all models, average,
			// broadcast. After it, every drift and state is zero.
			wPrev = w0
			tensor.Mean(globalParams, views...)
			for _, wk := range workers {
				wk.Net.SetParams(globalParams)
			}
			w0 = tensor.Clone(globalParams)
			prevModelBytes := cluster.meter.BytesFor("model")
			cluster.meterModelSync()
			res.SyncCount++
			emit(SyncEvent{
				Step:       totalSteps / cfg.K,
				SyncCount:  res.SyncCount,
				Trigger:    res.Strategy,
				SyncBytes:  cluster.meter.BytesFor("model") - prevModelBytes,
				TotalBytes: cluster.meter.TotalBytes(),
			})
			for i := range latest {
				tensor.Zero(latest[i])
			}
			if !ac.UseSketch && wPrev != nil {
				tensor.Sub(xi, w0, wPrev)
				if tensor.Normalize(xi) == 0 {
					tensor.Zero(xi)
				}
			}
		}

		evalCounter++
		if evalCounter%(cfg.EvalEvery*cfg.K) == 0 {
			tensor.Mean(globalParams, views...)
			evalNet.SetParams(globalParams)
			acc := evalNet.Accuracy(cfg.Test)
			p := Point{
				Step:      totalSteps / cfg.K,
				Epoch:     float64(totalSteps) * float64(cfg.BatchSize) / trainLen,
				TestAcc:   acc,
				CommBytes: cluster.meter.TotalBytes(),
				SyncCount: res.SyncCount,
			}
			res.History = append(res.History, p)
			res.FinalTestAcc = acc
			emit(EvalEvent{Point: p})
			if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy {
				res.ReachedTarget = true
				break
			}
		}

		q.push(stepEvent{at: ev.at + 1/speeds[ev.worker], worker: ev.worker})
	}

	finalize()
	emit(DoneEvent{Result: res.Result})
	return res, nil
}

func maxInts(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
