package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Session is an in-flight training run exposed as an incremental,
// inspectable object: callers advance it one global step at a time with
// Step, observe typed events (StepEvent, SyncEvent, EvalEvent,
// DoneEvent) through Subscribe, cancel it through the context passed to
// NewSession, and capture/replay its complete state with
// Snapshot/Restore. Run, MustRun and the experiment sweeps are thin
// loops over a Session, so a session-driven run is bit-identical to the
// batch API at the same config and seed.
//
// A session is single-goroutine: Step, Snapshot and Restore must not be
// called concurrently. Event sinks run synchronously on the stepping
// goroutine in subscription order.
//
// State machine (DESIGN.md §8): running → done | failed. Context
// cancellation is not a state — it is observed only between steps, so a
// cancelled session stays resumable: snapshot it, restore into a fresh
// session, and the continuation replays the exact trajectory an
// uninterrupted run would have taken.
type Session struct {
	cfg   Config
	strat Strategy
	ctx   context.Context

	env          *Env
	eval         *evaluator
	globalParams []float64
	stepBody     func(int, *Worker)
	// stepTimer/clock are the fabric's optional time-modeling faces,
	// asserted once at construction so the steady-state step does no
	// interface probing.
	stepTimer comm.StepTimer
	clock     comm.VirtualClocker

	samplesPerStep float64
	trainLen       float64

	t         int // last completed global step
	finished  bool
	finishErr error
	res       Result
	// modelBytesSeen is the model-traffic total as of the last
	// synchronization, so SyncEvent can report per-sync bytes.
	modelBytesSeen int64

	// prefixFn/prefixEvery implement the opt-in prefix-publication hook
	// (PublishPrefixes). prefixFn is nil when disabled — the steady-state
	// step then pays one pointer comparison and allocates nothing — and
	// is cleared permanently at the first synchronization.
	prefixFn    func(steps int, snap *checkpoint.Snapshot)
	prefixEvery int

	// tele holds the session's pre-resolved telemetry instruments
	// (obs.go); observations are side-channel reads only and are
	// dropped entirely while telemetry is disabled.
	tele sessionTele

	sinks []EventSink
}

// resumable is implemented by strategies that carry cross-step state
// beyond Env (ξ direction, server optimizer moments, schedule
// counters...) so Session.Snapshot can capture it. Strategies whose
// AfterLocalStep is a pure function of (Env, t) — Synchronous, LocalSGD,
// PostLocalSGD, SketchFDA, OracleFDA — need not implement it.
//
// StateSnapshot returns views; the session copies them into the
// checkpoint before the strategy runs again. RestoreState is called
// after Init on a freshly built strategy of the same type and must
// accept exactly the shapes its own StateSnapshot produces.
type resumable interface {
	StateSnapshot() (vecs [][]float64, counters []uint64)
	RestoreState(vecs [][]float64, counters []uint64) error
}

// NewSession validates cfg, builds the cluster, workers and strategy
// state exactly as Run does, and returns a session positioned before
// step 1. The context governs cancellation: once it is done, Step
// returns its error without advancing. A nil ctx means Background.
func NewSession(ctx context.Context, cfg Config, strat Strategy) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := tensor.NewRNG(cfg.Seed)

	// Shared initial model: one reference replica defines w0. The RNG
	// consumption order below (init replica, partition, then per worker
	// net + sampler) is the determinism contract shared with the
	// pre-session trainer loop; reordering it would silently change every
	// trajectory.
	initNet := cfg.Model(root.Split())
	w0 := tensor.Clone(initNet.Params())
	d := initNet.NumParams()

	shards := cfg.Het.Partition(cfg.Train, cfg.K, root.Split())

	// The fabric decides which ranks live in this process: all of them
	// on the in-process backends, one inside a distributed worker. A
	// fabric instance carries a meter and (possibly) a clock, so it
	// belongs to exactly one run.
	fabric := cfg.Fabric
	if fabric == nil {
		fabric = comm.NewClusterWithCost(cfg.K, cfg.Cost)
	}
	ranks := fabric.Ranks()
	if len(ranks) == 0 {
		return nil, fmt.Errorf("core: fabric owns no local ranks")
	}

	// Build replicas only for local ranks, but consume the root RNG
	// stream for every rank in the same order the in-process path does —
	// that alignment is what makes a distributed worker's shard, model
	// and sampler bit-identical to its in-process counterpart.
	workers := make([]*Worker, 0, len(ranks))
	next := 0
	for k := 0; k < cfg.K; k++ {
		netRNG := root.Split()
		samplerRNG := root.Split()
		if next < len(ranks) && ranks[next] == k {
			net := cfg.Model(netRNG)
			net.SetParams(w0)
			workers = append(workers, &Worker{
				ID:      k,
				Net:     net,
				Opt:     cfg.Optimizer(),
				Shard:   shards[k],
				drift:   make([]float64, d),
				sampler: data.NewSampler(shards[k], samplerRNG),
			})
			next++
		}
	}

	env := newEnv(fabric, workers)
	env.Codec = cfg.SyncCodec
	env.pool = newPool(cfg.Parallelism)
	strat.Init(env)

	s := &Session{
		cfg:            cfg,
		strat:          strat,
		ctx:            ctx,
		env:            env,
		eval:           newEvaluator(env.pool, cfg.Model(root.Split()), cfg.Model, cfg.Seed),
		globalParams:   make([]float64, d),
		samplesPerStep: float64(cfg.BatchSize * cfg.K),
		trainLen:       float64(cfg.Train.Len()),
		res:            Result{Strategy: strat.Name()},
		tele:           newSessionTele(strat.Name()),
	}
	if st, ok := fabric.(comm.StepTimer); ok {
		s.stepTimer = st
	}
	if cl, ok := fabric.(comm.VirtualClocker); ok {
		s.clock = cl
	}
	// Hoisted per-step body: one closure for the whole session, so the
	// steady-state loop allocates nothing.
	s.stepBody = func(_ int, w *Worker) { w.LocalStep(cfg.BatchSize) }
	return s, nil
}

// Subscribe attaches an event sink. Sinks receive every subsequent event
// synchronously, in subscription order, on the stepping goroutine.
func (s *Session) Subscribe(sink EventSink) {
	s.sinks = append(s.sinks, sink)
}

func (s *Session) emit(e Event) {
	for _, sink := range s.sinks {
		sink(e)
	}
}

// Step advances the session by one global step: every worker performs
// one local update, the strategy decides on synchronization, and — on
// evaluation steps — the averaged global model is scored. It returns
// false once the run has finished (the final Result is then available
// from Result); the error is non-nil when the session's context was
// cancelled (the session stays resumable) or the model diverged (the
// session is failed).
func (s *Session) Step() (bool, error) {
	if s.finished {
		return false, s.finishErr
	}
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	if s.t >= s.cfg.MaxSteps {
		// Only reachable through Restore: a snapshot taken at (or past)
		// this config's step budget has nothing left to run.
		s.finish(nil)
		return false, nil
	}

	t := s.t + 1
	// Telemetry stamps and spans are side-channel reads: they observe
	// the step, never steer it. Disabled, each costs one atomic load;
	// the per-step span honors the trace sampling stride.
	stepStart := obs.Clock()
	sp := obs.StartRegionEvery("step", "session", int64(t))
	prevSyncs := s.env.SyncCount
	s.env.ForEachWorker(s.stepBody)
	if s.stepTimer != nil {
		// Compute time of step t lands on the virtual clock before the
		// strategy's collectives add their communication time.
		s.stepTimer.StepDone(t)
	}
	syncStart := obs.Clock()
	s.strat.AfterLocalStep(s.env, t)
	s.t = t
	s.res.Steps = t
	s.emit(StepEvent{Step: t, Worker: -1})
	s.tele.steps.Inc()
	if s.env.SyncCount > prevSyncs {
		meter := s.env.Fabric.Meter()
		modelBytes := meter.BytesFor("model")
		s.emit(SyncEvent{
			Step:       t,
			SyncCount:  s.env.SyncCount,
			Trigger:    s.strat.Name(),
			SyncBytes:  modelBytes - s.modelBytesSeen,
			TotalBytes: meter.TotalBytes(),
		})
		s.tele.syncs.Inc()
		s.tele.syncSec.Since(syncStart)
		if obs.Tracing() {
			obs.Instant("sync", "session", "step", t,
				"trigger", s.strat.Name(), "sync_bytes", modelBytes-s.modelBytesSeen)
		}
		s.modelBytesSeen = modelBytes
	}
	s.tele.stepSec.Since(stepStart)
	if sp.Active() {
		sp.EndArgs("t", t, "synced", s.env.SyncCount > prevSyncs)
	}

	if t%s.cfg.EvalEvery == 0 || t == s.cfg.MaxSteps {
		evalStart := obs.Clock()
		esp := obs.StartRegion("eval", "session")
		p := s.evaluate(t)
		s.tele.evalSec.Since(evalStart)
		if esp.Active() {
			esp.EndArgs("step", t, "test_acc", p.TestAcc)
		}
		s.res.History = append(s.res.History, p)
		s.res.FinalTestAcc = p.TestAcc
		s.emit(EvalEvent{Point: p})
		if s.cfg.TargetAccuracy > 0 && p.TestAcc >= s.cfg.TargetAccuracy {
			s.res.ReachedTarget = true
			s.finish(nil)
			return false, nil
		}
		if !tensor.AllFinite(s.globalParams) {
			s.finish(fmt.Errorf("core: %s diverged (non-finite parameters) at step %d", s.strat.Name(), t))
			return false, s.finishErr
		}
	}
	// Prefix publication sits after the eval block on purpose: the early
	// returns above (target reached, divergence) mean a terminal step is
	// never published, so every published prefix ends strictly before any
	// early stop — a consumer restored from it cannot overshoot a finish
	// its own cold run would have taken. The first synchronization ends
	// the shared prefix and disarms the hook for good.
	if s.prefixFn != nil {
		if s.env.SyncCount > 0 {
			s.prefixFn = nil
		} else if t%s.prefixEvery == 0 {
			if snap, err := s.snapshot(false); err == nil {
				s.prefixFn(t, snap)
			}
		}
	}
	if t >= s.cfg.MaxSteps {
		s.finish(nil)
		return false, nil
	}
	return true, nil
}

// PublishPrefixes arms the trajectory-prefix publication hook: while
// the session has not yet synchronized, fn receives a snapshot every
// `every` completed steps. The snapshots deliberately omit strategy
// state — before the first synchronization a PrefixSharer's state is
// its Init state (prefix.go), which is what makes them consumable by
// sibling cells with different sync-time parameters. fn runs
// synchronously on the stepping goroutine; the hook disarms itself
// permanently at the first synchronization. On a session already past
// a synchronization (e.g. restored there) the call is a no-op.
func (s *Session) PublishPrefixes(every int, fn func(steps int, snap *checkpoint.Snapshot)) error {
	if every <= 0 {
		return fmt.Errorf("core: PublishPrefixes cadence %d", every)
	}
	if fn == nil {
		return fmt.Errorf("core: PublishPrefixes with nil sink")
	}
	if s.env.SyncCount > 0 {
		return nil
	}
	s.prefixEvery = every
	s.prefixFn = fn
	return nil
}

// evaluate scores the averaged global model at step t.
func (s *Session) evaluate(t int) Point {
	s.env.GlobalModel(s.globalParams)
	p := Point{
		Step:      t,
		Epoch:     float64(t) * s.samplesPerStep / s.trainLen,
		TestAcc:   s.eval.accuracy(s.globalParams, s.cfg.Test),
		CommBytes: s.env.Fabric.Meter().TotalBytes(),
		SyncCount: s.env.SyncCount,
	}
	if s.clock != nil {
		p.VirtualSec = s.clock.VirtualTime()
	}
	if s.cfg.RecordTrainAccuracy {
		p.TrainAcc = s.eval.accuracy(s.globalParams, s.cfg.Train)
	}
	return p
}

// fillTotals copies the cost totals into the Result, matching the batch
// Run epilogue bit-for-bit.
func (s *Session) fillTotals() {
	meter := s.env.Fabric.Meter()
	s.res.Epochs = float64(s.res.Steps) * s.samplesPerStep / s.trainLen
	s.res.CommBytes = meter.TotalBytes()
	s.res.StateBytes = meter.BytesFor("state")
	s.res.ModelBytes = meter.BytesFor("model")
	s.res.SyncCount = s.env.SyncCount
	if s.clock != nil {
		s.res.VirtualSec = s.clock.VirtualTime()
	}
}

// finish seals the session: totals are filled (left zero on divergence,
// as the batch Run left them) and DoneEvent fires.
func (s *Session) finish(err error) {
	s.finished = true
	s.finishErr = err
	if err == nil {
		s.fillTotals()
	}
	ev := DoneEvent{Result: s.res}
	if err != nil {
		ev.Err = err.Error()
	}
	s.emit(ev)
}

// Run drives the session to completion and returns the final Result —
// the session-backed equivalent of the batch Run entry point. On
// cancellation the partial Result carries coherent cost totals for the
// steps that did run.
func (s *Session) Run() (Result, error) {
	for {
		more, err := s.Step()
		if err != nil {
			if !s.finished {
				// Cancelled, not failed: make the partial result coherent.
				// (The divergence path keeps zero totals, matching the
				// pre-session batch trainer.)
				s.fillTotals()
			}
			return s.res, err
		}
		if !more {
			return s.res, nil
		}
	}
}

// Done reports whether the run has finished (successfully or not).
func (s *Session) Done() bool { return s.finished }

// Err returns the terminal error of a failed session (nil while running
// or after a successful finish).
func (s *Session) Err() error { return s.finishErr }

// StepCount returns the number of completed global steps.
func (s *Session) StepCount() int { return s.t }

// Result returns the run summary accumulated so far; once Done it is
// the final Result, bit-identical to what Run would have returned.
func (s *Session) Result() Result { return s.res }

// GlobalModel writes the current averaged global model into dst (live
// serving helper; measurement only, not charged as communication). On a
// distributed fabric this is a collective: every process of the cluster
// must call it at the same point between steps.
func (s *Session) GlobalModel(dst []float64) { s.env.GlobalModel(dst) }

// NumParams returns the model dimension d.
func (s *Session) NumParams() int { return s.env.D }

// Snapshot serializes the session's complete training state — every
// replica, optimizer moments, sampler and dropout stream positions,
// synchronization points, cost meters, evaluation history and resumable
// strategy state — into a version-2 checkpoint. A session restored from
// it continues bit-identically to one that never stopped. Snapshot must
// be called between steps (never from an event sink).
func (s *Session) Snapshot() (*checkpoint.Snapshot, error) { return s.snapshot(true) }

// snapshot builds the checkpoint; withStrategy selects whether
// resumable strategy state is captured. Full checkpoints capture it;
// prefix snapshots (PublishPrefixes) omit it, because before the first
// synchronization a PrefixSharer's state is provably its Init state —
// omitting it is what lets a sibling cell with a different Θ or τ
// restore the snapshot under its own freshly initialized strategy.
func (s *Session) snapshot(withStrategy bool) (*checkpoint.Snapshot, error) {
	env := s.env
	snap := &checkpoint.Snapshot{Step: int64(s.t)}
	snap.Params = make([]float64, env.D)
	env.GlobalModel(snap.Params)
	snap.W0 = append([]float64(nil), env.W0...)

	snap.AddU64("k", uint64(s.cfg.K))
	snap.AddU64("d", uint64(env.D))
	snap.AddU64("synccount", uint64(env.SyncCount))
	if env.WPrev != nil {
		snap.AddVec("wprev", env.WPrev)
	}

	for k, w := range env.Workers {
		snap.AddVec(fmt.Sprintf("w%d.params", k), w.Net.Params())
		snap.AddU64(fmt.Sprintf("w%d.rng", k), w.sampler.RNGState())
		for i, st := range w.Net.RNGStates() {
			snap.AddU64(fmt.Sprintf("w%d.netrng.%d", k, i), st)
		}
		if snapOpt, ok := w.Opt.(opt.Snapshotter); ok {
			vecs, counters := snapOpt.StateSnapshot()
			for i, v := range vecs {
				snap.AddVec(fmt.Sprintf("w%d.opt.v%d", k, i), v)
			}
			for i, c := range counters {
				snap.AddU64(fmt.Sprintf("w%d.opt.c%d", k, i), c)
			}
		} else {
			return nil, fmt.Errorf("core: optimizer %s does not support snapshots", w.Opt.Name())
		}
	}

	bytes, ops := env.Fabric.Meter().Snapshot()
	//fda:allow(detmap, AddU64 writes distinct map keys; checkpoint.Write serializes them sorted)
	for kind, b := range bytes {
		snap.AddU64("meter.b."+kind, uint64(b))
	}
	//fda:allow(detmap, AddU64 writes distinct map keys; checkpoint.Write serializes them sorted)
	for kind, o := range ops {
		snap.AddU64("meter.o."+kind, uint64(o))
	}
	snap.AddU64("modelbytesseen", uint64(s.modelBytesSeen))
	if s.clock != nil {
		snap.AddU64("fabric.clock", math.Float64bits(s.clock.VirtualTime()))
	}

	s.snapshotHistory(snap)

	if r, ok := s.strat.(resumable); ok && withStrategy {
		vecs, counters := r.StateSnapshot()
		snap.AddU64("strat.nv", uint64(len(vecs)))
		snap.AddU64("strat.nc", uint64(len(counters)))
		for i, v := range vecs {
			snap.AddVec(fmt.Sprintf("strat.v%d", i), v)
		}
		for i, c := range counters {
			snap.AddU64(fmt.Sprintf("strat.c%d", i), c)
		}
	}
	return snap, nil
}

// snapshotHistory stores the evaluation trace as parallel columns.
// Integer columns are stored as float64 bit patterns, which round-trips
// any int64 exactly (the checkpoint payload is raw bits).
func (s *Session) snapshotHistory(snap *checkpoint.Snapshot) {
	n := len(s.res.History)
	snap.AddU64("histlen", uint64(n))
	if n == 0 {
		return
	}
	step := make([]float64, n)
	epoch := make([]float64, n)
	testAcc := make([]float64, n)
	trainAcc := make([]float64, n)
	commBytes := make([]float64, n)
	syncCount := make([]float64, n)
	virtualSec := make([]float64, n)
	for i, p := range s.res.History {
		step[i] = math.Float64frombits(uint64(p.Step))
		epoch[i] = p.Epoch
		testAcc[i] = p.TestAcc
		trainAcc[i] = p.TrainAcc
		commBytes[i] = math.Float64frombits(uint64(p.CommBytes))
		syncCount[i] = math.Float64frombits(uint64(p.SyncCount))
		virtualSec[i] = p.VirtualSec
	}
	snap.AddVec("hist.step", step)
	snap.AddVec("hist.epoch", epoch)
	snap.AddVec("hist.testacc", testAcc)
	snap.AddVec("hist.trainacc", trainAcc)
	snap.AddVec("hist.commbytes", commBytes)
	snap.AddVec("hist.synccount", syncCount)
	snap.AddVec("hist.virtualsec", virtualSec)
}

// Restore overwrites the session's state with a snapshot taken from a
// session of the same Config and strategy type. The session must be
// freshly built (NewSession, zero steps taken); Restore positions it at
// the snapshot's step so the next Step call computes step t+1 exactly
// as the uninterrupted run would have.
func (s *Session) Restore(snap *checkpoint.Snapshot) error {
	if s.t != 0 {
		return fmt.Errorf("core: Restore on a session that has already stepped (t=%d)", s.t)
	}
	env := s.env
	if k, _ := snap.U64("k"); int(k) != s.cfg.K {
		return fmt.Errorf("core: snapshot has K=%d, session has K=%d", k, s.cfg.K)
	}
	if d, _ := snap.U64("d"); int(d) != env.D {
		return fmt.Errorf("core: snapshot has d=%d, session has d=%d", d, env.D)
	}
	if len(snap.W0) != env.D {
		return fmt.Errorf("core: snapshot w0 length %d, want %d", len(snap.W0), env.D)
	}

	for k, w := range env.Workers {
		params := snap.Vec(fmt.Sprintf("w%d.params", k))
		if len(params) != env.D {
			return fmt.Errorf("core: snapshot worker %d params length %d, want %d", k, len(params), env.D)
		}
		w.Net.SetParams(params)
		rngState, ok := snap.U64(fmt.Sprintf("w%d.rng", k))
		if !ok {
			return fmt.Errorf("core: snapshot missing worker %d sampler state", k)
		}
		w.sampler.SetRNGState(rngState)
		if n := len(w.Net.RNGStates()); n > 0 {
			states := make([]uint64, n)
			for i := range states {
				st, ok := snap.U64(fmt.Sprintf("w%d.netrng.%d", k, i))
				if !ok {
					return fmt.Errorf("core: snapshot missing worker %d dropout state %d", k, i)
				}
				states[i] = st
			}
			w.Net.SetRNGStates(states)
		}
		snapOpt, ok := w.Opt.(opt.Snapshotter)
		if !ok {
			return fmt.Errorf("core: optimizer %s does not support snapshots", w.Opt.Name())
		}
		// The live optimizer's own snapshot declares the expected shapes.
		liveVecs, liveCounters := snapOpt.StateSnapshot()
		vecs := make([][]float64, len(liveVecs))
		for i := range vecs {
			vecs[i] = snap.Vec(fmt.Sprintf("w%d.opt.v%d", k, i))
		}
		counters := make([]uint64, len(liveCounters))
		for i := range counters {
			counters[i], _ = snap.U64(fmt.Sprintf("w%d.opt.c%d", k, i))
		}
		if err := snapOpt.RestoreState(vecs, counters); err != nil {
			return fmt.Errorf("core: worker %d optimizer: %w", k, err)
		}
	}

	env.restoreSyncPoints(snap.W0, snap.Vec("wprev"))
	syncs, _ := snap.U64("synccount")
	env.SyncCount = int(syncs)

	bytes := map[string]int64{}
	ops := map[string]int64{}
	//fda:allow(detmap, map-to-map filter with distinct keys; write order is invisible)
	for name, v := range snap.Counters {
		switch {
		case len(name) > 8 && name[:8] == "meter.b.":
			bytes[name[8:]] = int64(v)
		case len(name) > 8 && name[:8] == "meter.o.":
			ops[name[8:]] = int64(v)
		}
	}
	env.Fabric.Meter().Restore(bytes, ops)
	seen, _ := snap.U64("modelbytesseen")
	s.modelBytesSeen = int64(seen)
	if s.clock != nil {
		clockBits, _ := snap.U64("fabric.clock")
		s.clock.SetVirtualTime(math.Float64frombits(clockBits))
	}

	if err := s.restoreHistory(snap); err != nil {
		return err
	}

	if r, ok := s.strat.(resumable); ok {
		// Prefix snapshots carry no strategy sections at all: before the
		// first synchronization a PrefixSharer's state equals its Init
		// state, so there is nothing to restore — and restoring zeros
		// would be wrong for strategies whose Init state is not zero
		// (FedOpt's global model). Presence of the shape counter is what
		// distinguishes the two snapshot kinds.
		if _, hasStrat := snap.U64("strat.nv"); hasStrat {
			nv, _ := snap.U64("strat.nv")
			nc, _ := snap.U64("strat.nc")
			vecs := make([][]float64, nv)
			for i := range vecs {
				vecs[i] = snap.Vec(fmt.Sprintf("strat.v%d", i))
			}
			counters := make([]uint64, nc)
			for i := range counters {
				counters[i], _ = snap.U64(fmt.Sprintf("strat.c%d", i))
			}
			if err := r.RestoreState(vecs, counters); err != nil {
				return fmt.Errorf("core: strategy state: %w", err)
			}
		}
	}

	s.t = int(snap.Step)
	s.res.Steps = s.t
	return nil
}

// restoreHistory rebuilds the evaluation trace from snapshot columns.
func (s *Session) restoreHistory(snap *checkpoint.Snapshot) error {
	n64, _ := snap.U64("histlen")
	n := int(n64)
	s.res.History = nil
	if n == 0 {
		return nil
	}
	cols := map[string][]float64{}
	for _, name := range []string{"hist.step", "hist.epoch", "hist.testacc", "hist.trainacc", "hist.commbytes", "hist.synccount"} {
		col := snap.Vec(name)
		if len(col) != n {
			return fmt.Errorf("core: snapshot history column %s has %d entries, want %d", name, len(col), n)
		}
		cols[name] = col
	}
	// hist.virtualsec arrived with the fabric refactor; checkpoints from
	// earlier binaries simply lack the column and restore as zeros.
	virtualSec := snap.Vec("hist.virtualsec")
	if len(virtualSec) != 0 && len(virtualSec) != n {
		return fmt.Errorf("core: snapshot history column hist.virtualsec has %d entries, want %d", len(virtualSec), n)
	}
	s.res.History = make([]Point, n)
	for i := range s.res.History {
		s.res.History[i] = Point{
			Step:      int(math.Float64bits(cols["hist.step"][i])),
			Epoch:     cols["hist.epoch"][i],
			TestAcc:   cols["hist.testacc"][i],
			TrainAcc:  cols["hist.trainacc"][i],
			CommBytes: int64(math.Float64bits(cols["hist.commbytes"][i])),
			SyncCount: int(math.Float64bits(cols["hist.synccount"][i])),
		}
		if len(virtualSec) == n {
			s.res.History[i].VirtualSec = virtualSec[i]
		}
	}
	s.res.FinalTestAcc = s.res.History[n-1].TestAcc
	return nil
}
