package core

import (
	"math"
	"testing"
)

func TestIncreasingTauSchedule(t *testing.T) {
	s := NewIncreasingTauLocalSGD(4, 2)
	wants := []int{4, 4, 8, 8, 16}
	for r, want := range wants {
		if got := s.Schedule(r); got != want {
			t.Fatalf("τ_%d = %d want %d", r, got, want)
		}
	}
}

func TestDecreasingTauSchedule(t *testing.T) {
	s := NewDecreasingTauLocalSGD(8, 1)
	wants := []int{8, 4, 2, 1, 1, 1}
	for r, want := range wants {
		if got := s.Schedule(r); got != want {
			t.Fatalf("τ_%d = %d want %d", r, got, want)
		}
	}
}

func TestVaryingTauSyncCadence(t *testing.T) {
	cfg := testConfig(30)
	cfg.MaxSteps = 30
	// Increasing: syncs at steps 4, 8, 16, 32... → 3 syncs in 30 steps
	// with base 4, doubling every round.
	res := MustRun(cfg, NewIncreasingTauLocalSGD(4, 1))
	if res.SyncCount != 3 {
		t.Fatalf("increasing-τ synced %d times, want 3", res.SyncCount)
	}
	// Decreasing from 8 halving per round: syncs at 8, 12, 14, 15, 16, …
	res = MustRun(cfg, NewDecreasingTauLocalSGD(8, 1))
	if res.SyncCount < 10 {
		t.Fatalf("decreasing-τ synced only %d times", res.SyncCount)
	}
}

func TestPostLocalSGDPhases(t *testing.T) {
	cfg := testConfig(31)
	cfg.MaxSteps = 40
	res := MustRun(cfg, NewPostLocalSGD(20, 10))
	// Phase 1: 20 syncs (every step); phase 2: steps 30 and 40 → 22 total.
	if res.SyncCount != 22 {
		t.Fatalf("PostLocalSGD synced %d times, want 22", res.SyncCount)
	}
}

func TestLAGSkipsRounds(t *testing.T) {
	cfg := testConfig(32)
	cfg.MaxSteps = 100
	lag := MustRun(cfg, NewLAG(10, 0.5))
	fixed := MustRun(cfg, NewLocalSGD(10))
	if lag.SyncCount >= fixed.SyncCount {
		t.Fatalf("LAG synced %d ≥ fixed schedule %d — never lazy", lag.SyncCount, fixed.SyncCount)
	}
	if lag.SyncCount == 0 {
		t.Fatal("LAG never synced")
	}
}

func TestRelatedWorkValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewIncreasingTauLocalSGD(0, 1) },
		func() { NewDecreasingTauLocalSGD(4, 0) },
		func() { NewPostLocalSGD(-1, 5) },
		func() { NewPostLocalSGD(5, 0) },
		func() { NewLAG(0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAdaptiveThetaTracksBudget(t *testing.T) {
	cfg := testConfig(33)
	cfg.MaxSteps = 400
	d := 2410.0

	// A tight budget forces Θ up (fewer syncs); a loose one lets Θ drop.
	run := func(budget float64) (Result, []float64) {
		a := NewAdaptiveTheta(NewLinearFDA(0.1), budget)
		a.Window = 20
		res := MustRun(cfg, a)
		return res, a.ThetaTrace()
	}

	// One model sync ≈ K · 2(K−1)/K · d · 4 bytes = 2(K−1)·d·4 ≈ 77 kB.
	syncBytes := 2 * 4 * d * 4
	tight, tightTrace := run(syncBytes / 100) // ~1 sync per 100 steps
	loose, looseTrace := run(syncBytes * 1)   // ~1 sync per step allowed

	if tight.SyncCount >= loose.SyncCount {
		t.Fatalf("tight budget synced %d ≥ loose %d", tight.SyncCount, loose.SyncCount)
	}
	if len(tightTrace) == 0 || len(looseTrace) == 0 {
		t.Fatal("controller never adjusted")
	}
	// Under the tight budget Θ should end above its start; under the
	// loose budget at or below.
	if tightTrace[len(tightTrace)-1] <= 0.1 {
		t.Fatalf("tight budget did not raise Θ: trace %v", tightTrace)
	}
	if looseTrace[len(looseTrace)-1] > 0.1+1e-9 {
		t.Fatalf("loose budget raised Θ: trace %v", looseTrace)
	}
}

func TestAdaptiveThetaClamps(t *testing.T) {
	cfg := testConfig(34)
	cfg.MaxSteps = 300
	a := NewAdaptiveTheta(NewSketchFDA(0.1), 1) // impossible 1 B/step budget
	a.Window = 10
	MustRun(cfg, a)
	for _, th := range a.ThetaTrace() {
		if th > 0.1*64+1e-9 || math.IsInf(th, 0) {
			t.Fatalf("Θ escaped clamp: %v", th)
		}
	}
}

func TestAdaptiveThetaRejectsUnknownInner(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptiveTheta(NewSynchronous(), 100)
}

func TestAdaptiveThetaName(t *testing.T) {
	a := NewAdaptiveTheta(NewLinearFDA(0.1), 100)
	if a.Name() != "AdaptiveLinearFDA" {
		t.Fatalf("name %q", a.Name())
	}
}
