package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
)

// TestPoolForEachCoversEveryIndexOnce drives the pool across widths and
// sizes — including width > n, n == 0 and the sequential path — and
// checks each index runs exactly once. The concurrent counter increments
// also make this a race-detector probe for the dispatch loop.
func TestPoolForEachCoversEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 4, 13, AutoParallelism} {
		for _, n := range []int{0, 1, 5, 64, 257} {
			hits := make([]atomic.Int32, n)
			newPool(par).ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("par=%d n=%d: index %d ran %d times", par, n, i, c)
				}
			}
		}
	}
}

// TestPoolNilIsSequential makes the zero-Env contract explicit: strategies
// may call ForEachWorker on an Env that was never given a pool.
func TestPoolNilIsSequential(t *testing.T) {
	var p *pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d", p.Workers())
	}
	sum := 0
	p.ForEach(4, func(i int) { sum += i })
	if sum != 6 {
		t.Fatalf("nil pool ForEach sum = %d", sum)
	}
}

// TestEvaluatorParity checks the chunked parallel accuracy scan against
// Network.Accuracy on the same parameters: integer count reduction must
// make them exactly equal, for widths that divide the dataset unevenly.
func TestEvaluatorParity(t *testing.T) {
	_, test, model := testWorkload(21)
	ref := model(tensor.NewRNG(21))
	want := ref.Accuracy(test)

	for _, par := range []int{1, 2, 3, 7} {
		e := newEvaluator(newPool(par), model(tensor.NewRNG(99)), model, 21)
		if got := e.accuracy(ref.Params(), test); got != want {
			t.Fatalf("parallelism %d: accuracy %v != sequential %v", par, got, want)
		}
	}
}

// TestEvaluatorTinyDataset covers datasets smaller than the pool width.
func TestEvaluatorTinyDataset(t *testing.T) {
	_, test, model := testWorkload(22)
	small := test.Subset([]int{0, 1, 2})
	ref := model(tensor.NewRNG(5))
	want := ref.Accuracy(small)
	e := newEvaluator(newPool(8), model(tensor.NewRNG(6)), model, 22)
	if got := e.accuracy(ref.Params(), small); got != want {
		t.Fatalf("tiny dataset: %v != %v", got, want)
	}
}
