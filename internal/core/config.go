// Package core implements the paper's contribution — Federated Dynamic
// Averaging (Algorithm 1) with its SketchFDA and LinearFDA variants — plus
// every distributed training baseline the paper evaluates against:
// Synchronous (BSP), Local-SGD with fixed τ, FedAvg, FedAvgM and FedAdam.
//
// A training run wires K simulated workers (each with its own model
// replica, optimizer state and data shard) to a metered AllReduce fabric
// and executes lock-step global iterations: one local Optimize per worker
// per step, followed by the strategy's synchronization decision. All
// strategies share the trainer loop; they differ only in their
// AfterLocalStep hook, mirroring the paper's observation that FDA changes
// *when* synchronization happens, not *what* is synchronized.
package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// ModelBuilder constructs a fresh, randomly initialized network replica.
// Each worker calls it once; the trainer then overwrites every replica's
// parameters with a shared w0 so all workers start from the same global
// model, as Algorithm 1 requires. The builder's rng drives any stochastic
// layers (dropout) of that replica.
type ModelBuilder func(rng *tensor.RNG) *nn.Network

// Config describes one training run.
type Config struct {
	// K is the number of workers.
	K int
	// BatchSize is the local mini-batch size b.
	BatchSize int
	// Seed drives every random choice of the run (init, partition,
	// sampling, dropout, sketches). Identical configs reproduce bit-equal
	// results.
	Seed uint64
	// Model builds worker replicas.
	Model ModelBuilder
	// Optimizer builds each worker's local optimizer.
	Optimizer opt.Factory
	// Train and Test are the global datasets; Train is partitioned across
	// workers according to Het.
	Train, Test *data.Dataset
	// Het selects the data-heterogeneity scenario (default IID).
	Het data.Heterogeneity
	// Cost is the communication cost model (default: paper accounting).
	Cost comm.CostModel
	// Fabric is the communication backend the run executes on. Nil
	// selects the in-process reference cluster (comm.NewCluster); a
	// comm.SimFabric adds a deterministic virtual clock (time-to-accuracy
	// estimates); a comm.TCPFabric places this process's workers in a
	// multi-process cluster. Training math is bit-identical across
	// fabrics — only cost/time accounting differs (DESIGN.md §9). A
	// non-nil fabric must agree with K; when it owns only a subset of
	// ranks (TCP), this process builds and steps only those workers.
	Fabric comm.Fabric
	// MaxSteps caps the in-parallel learning steps (safety bound).
	MaxSteps int
	// TargetAccuracy ends the run once the global model's test accuracy
	// reaches it ("training run" in the paper's evaluation methodology).
	// Zero disables early stopping.
	TargetAccuracy float64
	// EvalEvery is the step interval between test-accuracy evaluations
	// (default 20). Evaluation reads the averaged global model and is not
	// charged as communication.
	EvalEvery int
	// RecordTrainAccuracy additionally evaluates training accuracy at each
	// evaluation point (needed by the Figure 7 generalization-gap plot).
	RecordTrainAccuracy bool
	// SyncCodec optionally compresses model synchronizations (top-k
	// sparsification, quantization); nil transmits dense models as in the
	// paper's main experiments.
	SyncCodec compress.Codec
	// Parallelism bounds the goroutines used for the per-step worker loop,
	// the strategies' per-worker drift/state computations and accuracy
	// evaluation. 0 (the zero value) and 1 run sequentially; positive
	// values are taken literally; AutoParallelism (any negative value)
	// selects runtime.GOMAXPROCS. Results are bit-identical across all
	// settings: parallel sections write only index-addressed slots and
	// every floating-point reduction stays in worker order.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.EvalEvery == 0 {
		c.EvalEvery = 20
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 10000
	}
	if c.Cost.BytesPerParam == 0 {
		c.Cost = comm.DefaultCostModel()
	}
	return c
}

// FieldError pinpoints one invalid Config field.
type FieldError struct {
	// Field is the Config field name (e.g. "K", "Train").
	Field string
	// Msg explains what is wrong with its value.
	Msg string
}

// Error implements error.
func (e FieldError) Error() string { return "core: Config." + e.Field + ": " + e.Msg }

// ConfigError aggregates every invalid field found by Config.Validate,
// so callers (CLI flag parsing, the fdaserve submit endpoint) can report
// all problems at once instead of the first.
type ConfigError struct {
	Fields []FieldError
}

// Error implements error.
func (e *ConfigError) Error() string {
	msg := "core: invalid Config:"
	for i, f := range e.Fields {
		if i > 0 {
			msg += ";"
		}
		msg += " " + f.Field + ": " + f.Msg
	}
	return msg
}

// Validate checks every field of the config and returns nil or a
// *ConfigError listing each invalid field. Zero values that withDefaults
// fills (EvalEvery, MaxSteps, Cost) are valid; negative ones are not.
// Run, NewSession and RunAsync all validate through here, so a config
// rejected at submission time can never surface later as a panic inside
// the training loop.
func (c Config) Validate() error {
	var fields []FieldError
	add := func(field, format string, args ...any) {
		fields = append(fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	if c.K <= 0 {
		add("K", "must be positive, got %d", c.K)
	}
	if c.BatchSize <= 0 {
		add("BatchSize", "must be positive, got %d", c.BatchSize)
	}
	if c.Model == nil {
		add("Model", "builder is required")
	}
	if c.Optimizer == nil {
		add("Optimizer", "factory is required")
	}
	if c.Train == nil || c.Train.Len() == 0 {
		add("Train", "training set is empty")
	}
	if c.Test == nil || c.Test.Len() == 0 {
		add("Test", "test set is empty")
	}
	if c.MaxSteps < 0 {
		add("MaxSteps", "must be non-negative, got %d", c.MaxSteps)
	}
	if c.EvalEvery < 0 {
		add("EvalEvery", "must be non-negative, got %d", c.EvalEvery)
	}
	if c.TargetAccuracy < 0 {
		// Targets above 1 are legal: they mean "never stop early" (the
		// experiments use them to force full-budget runs).
		add("TargetAccuracy", "must be non-negative, got %v", c.TargetAccuracy)
	}
	if c.Cost.BytesPerParam < 0 {
		add("Cost", "BytesPerParam must be non-negative, got %d", c.Cost.BytesPerParam)
	}
	if c.Fabric != nil && c.K > 0 && c.Fabric.K() != c.K {
		add("Fabric", "spans %d workers, config has K=%d", c.Fabric.K(), c.K)
	}
	if len(fields) == 0 {
		return nil
	}
	return &ConfigError{Fields: fields}
}

// Point is one evaluation snapshot along a run.
type Point struct {
	Step      int
	Epoch     float64
	TestAcc   float64
	TrainAcc  float64 // only when Config.RecordTrainAccuracy
	CommBytes int64
	SyncCount int
	// VirtualSec is the fabric's virtual clock at this point (estimated
	// wall-clock seconds: compute + communication under the network
	// scenario). Zero unless the run executes on a time-modeling fabric.
	VirtualSec float64 `json:",omitempty"`
}

// Result summarizes a training run; its fields are the paper's evaluation
// metrics.
type Result struct {
	Strategy string
	// Steps is the number of in-parallel learning steps each worker
	// performed (the paper's computation-cost metric).
	Steps int
	// Epochs is Steps·b·K divided by the training-set size.
	Epochs float64
	// CommBytes is the total data transmitted by all workers (the paper's
	// communication-cost metric), split into monitoring state and model
	// synchronization traffic.
	CommBytes  int64
	StateBytes int64
	ModelBytes int64
	// SyncCount is how many model synchronizations were triggered.
	SyncCount int
	// FinalTestAcc is the global model's test accuracy when the run ended;
	// ReachedTarget reports whether TargetAccuracy was attained within
	// MaxSteps.
	FinalTestAcc  float64
	ReachedTarget bool
	// VirtualSec is the fabric's virtual clock when the run ended — the
	// estimated wall-clock time-to-accuracy under the simulated network
	// scenario. Zero unless the run executes on a time-modeling fabric.
	VirtualSec float64 `json:",omitempty"`
	// History holds the evaluation trace.
	History []Point
}

// CommGB returns the communication cost in gigabytes, the unit of the
// paper's figures.
func (r Result) CommGB() float64 { return float64(r.CommBytes) / 1e9 }

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: steps=%d epochs=%.1f comm=%.3fGB (state %.3f, model %.3f) syncs=%d acc=%.4f target=%v",
		r.Strategy, r.Steps, r.Epochs, r.CommGB(),
		float64(r.StateBytes)/1e9, float64(r.ModelBytes)/1e9,
		r.SyncCount, r.FinalTestAcc, r.ReachedTarget)
}
