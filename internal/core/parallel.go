package core

import (
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/tensor"
)

// AutoParallelism selects runtime.GOMAXPROCS(0) goroutines wherever a
// parallelism knob accepts it (Config.Parallelism, experiments' Jobs).
const AutoParallelism = -1

// pool executes index-addressed loop bodies across a bounded set of
// goroutines. It is the simulation's parallel substrate: the trainer uses
// it for the per-step worker loop and for evaluation, and strategies use
// it (through Env.ForEachWorker) for their per-worker drift/state
// computations.
//
// Determinism contract: see par.ForEach — callers keep results
// bit-identical to the sequential path by writing only to
// index-addressed slots (slice element i from body invocation i) and by
// performing any floating-point reduction over those slots afterwards,
// in index order, on the calling goroutine.
type pool struct {
	workers int
}

// newPool returns a pool for the given parallelism knob value. A nil pool
// is valid and sequential, so strategies can run against a zero Env.
func newPool(parallelism int) *pool {
	return &pool{workers: par.Resolve(parallelism)}
}

// Workers returns the effective goroutine count (1 = sequential).
func (p *pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs body(i) for every i in [0, n) across up to Workers()
// goroutines.
func (p *pool) ForEach(n int, body func(i int)) {
	par.ForEach(p.Workers(), n, body)
}

// evaluator computes dataset accuracy for the trainer, chunking the scan
// across the run's pool. Network.Forward reuses internal activation
// buffers, so parallel evaluation needs one replica per concurrent
// chunk. Replicas are built lazily on the first parallel scan (a run
// that never evaluates in parallel — or whose datasets are smaller than
// the pool — pays nothing) and their init RNGs are derived from the run
// seed alone, not the root stream, so enabling parallelism leaves the
// training trajectory untouched; their initialization is overwritten by
// SetParams before every scan anyway. Chunk results are integer counts
// reduced in chunk order, making the accuracy bit-identical to a
// sequential scan.
type evaluator struct {
	pool  *pool
	build ModelBuilder
	seed  uint64
	nets  []*nn.Network
}

func newEvaluator(p *pool, primary *nn.Network, build ModelBuilder, seed uint64) *evaluator {
	return &evaluator{pool: p, build: build, seed: seed, nets: []*nn.Network{primary}}
}

func (e *evaluator) accuracy(params []float64, ds *data.Dataset) float64 {
	n := ds.Len()
	chunks := e.pool.Workers()
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		e.nets[0].SetParams(params)
		return e.nets[0].Accuracy(ds)
	}
	for i := len(e.nets); i < chunks; i++ {
		e.nets = append(e.nets, e.build(tensor.NewRNG(e.seed^0xe7a1^uint64(i)<<32)))
	}
	counts := make([]int, chunks)
	e.pool.ForEach(chunks, func(i int) {
		e.nets[i].SetParams(params)
		counts[i] = e.nets[i].CountCorrect(ds, i*n/chunks, (i+1)*n/chunks)
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / float64(n)
}
