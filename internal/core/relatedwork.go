package core

import (
	"fmt"
	"math"
)

// This file implements the fixed-schedule communication strategies the
// paper's related-work section (§2) positions FDA against. They exist so
// the repository can also reproduce the comparisons FDA's design
// arguments rest on: no predetermined schedule — fixed, increasing,
// decreasing, or gradient-triggered — adapts to the actual training
// state the way variance monitoring does.

// VaryingTauLocalSGD is Local-SGD with a schedule of local-update counts
// {τ_0, τ_1, ...} instead of a fixed τ. The paper cites both decreasing
// schedules (Wang & Joshi: minimize error at a wall-time budget) and
// increasing ones (Haddadpour et al.: fewer rounds for a step budget).
type VaryingTauLocalSGD struct {
	// Schedule maps the round index r (0-based) to τ_r. The ready-made
	// schedules below cover the cited families.
	Schedule func(round int) int
	// Label names the schedule in results.
	Label string

	round    int
	nextSync int
}

// NewIncreasingTauLocalSGD returns τ_r = base·2^⌊r/every⌋ (the increasing
// family of Haddadpour et al. [17]).
func NewIncreasingTauLocalSGD(base, every int) *VaryingTauLocalSGD {
	if base <= 0 || every <= 0 {
		panic("core: increasing-τ schedule needs positive base and period")
	}
	return &VaryingTauLocalSGD{
		Label: fmt.Sprintf("LocalSGD(τ=%d·2^(r/%d))", base, every),
		Schedule: func(r int) int {
			return base << uint(r/every)
		},
	}
}

// NewDecreasingTauLocalSGD returns τ_r = max(1, ⌈base/2^⌊r/every⌋⌉) (the
// decaying family of Wang & Joshi [57] / Mills et al. [38]).
func NewDecreasingTauLocalSGD(base, every int) *VaryingTauLocalSGD {
	if base <= 0 || every <= 0 {
		panic("core: decreasing-τ schedule needs positive base and period")
	}
	return &VaryingTauLocalSGD{
		Label: fmt.Sprintf("LocalSGD(τ=%d/2^(r/%d))", base, every),
		Schedule: func(r int) int {
			tau := base >> uint(r/every)
			if tau < 1 {
				tau = 1
			}
			return tau
		},
	}
}

// Name implements Strategy.
func (v *VaryingTauLocalSGD) Name() string { return v.Label }

// Init implements Strategy.
func (v *VaryingTauLocalSGD) Init(_ *Env) {
	if v.Schedule == nil {
		panic("core: VaryingTauLocalSGD without a schedule")
	}
	v.round = 0
	v.nextSync = v.Schedule(0)
}

// StateSnapshot implements the session checkpoint contract: the round
// index and the next synchronization step.
func (v *VaryingTauLocalSGD) StateSnapshot() ([][]float64, []uint64) {
	return nil, []uint64{uint64(v.round), uint64(v.nextSync)}
}

// RestoreState implements the session checkpoint contract.
func (v *VaryingTauLocalSGD) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) != 0 || len(counters) != 2 {
		return fmt.Errorf("core: varying-τ snapshot shape %d/%d", len(vecs), len(counters))
	}
	v.round = int(counters[0])
	v.nextSync = int(counters[1])
	return nil
}

// AfterLocalStep implements Strategy.
func (v *VaryingTauLocalSGD) AfterLocalStep(env *Env, t int) {
	if t < v.nextSync {
		return
	}
	env.SyncModels()
	v.round++
	tau := v.Schedule(v.round)
	if tau < 1 {
		tau = 1
	}
	v.nextSync = t + tau
}

// PostLocalSGD is the two-phase method of Lin et al. [32] the paper
// discusses: an initial BSP phase (synchronize every step for the first
// SwitchStep steps) followed by Local-SGD with fixed τ, trading early
// convergence speed for late communication savings.
type PostLocalSGD struct {
	SwitchStep int
	Tau        int
}

// NewPostLocalSGD returns the two-phase baseline.
func NewPostLocalSGD(switchStep, tau int) *PostLocalSGD {
	if switchStep < 0 || tau <= 0 {
		panic("core: PostLocalSGD needs non-negative switch and positive τ")
	}
	return &PostLocalSGD{SwitchStep: switchStep, Tau: tau}
}

// Name implements Strategy.
func (p *PostLocalSGD) Name() string {
	return fmt.Sprintf("PostLocalSGD(t<%d, τ=%d)", p.SwitchStep, p.Tau)
}

// Init implements Strategy.
func (p *PostLocalSGD) Init(_ *Env) {}

// AfterLocalStep implements Strategy.
func (p *PostLocalSGD) AfterLocalStep(env *Env, t int) {
	if t <= p.SwitchStep || (t-p.SwitchStep)%p.Tau == 0 {
		env.SyncModels()
	}
}

// LAG is a lazily-aggregated baseline in the spirit of Chen et al. [5]:
// a synchronization round is skipped while the aggregate update magnitude
// has changed little since the last performed round (the analogue of
// reusing outdated gradients). Unlike FDA it watches update-magnitude
// *change* rather than cross-worker variance, so it cannot tell
// coordinated progress from divergence — the comparison FDA's intuition
// (§3.3) is about.
type LAG struct {
	// Tau is the nominal round length in steps.
	Tau int
	// Threshold is the relative-change fraction below which a round is
	// skipped (default 0.5).
	Threshold float64

	lastNorm float64
	states   [][]float64
	meanSt   []float64
	body     func(i int, w *Worker)
}

// NewLAG returns the lazily-aggregated baseline.
func NewLAG(tau int, threshold float64) *LAG {
	if tau <= 0 {
		panic("core: LAG τ must be positive")
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	return &LAG{Tau: tau, Threshold: threshold}
}

// Name implements Strategy.
func (l *LAG) Name() string { return fmt.Sprintf("LAG(τ=%d)", l.Tau) }

// Init implements Strategy.
func (l *LAG) Init(env *Env) {
	l.lastNorm = 0 // forces a synchronization at the first round
	l.states = make([][]float64, len(env.Workers))
	for i := range l.states {
		l.states[i] = make([]float64, 1)
	}
	l.meanSt = make([]float64, 1)
	l.body = func(i int, w *Worker) {
		_, sq := w.DriftSquaredNorm(env.W0)
		l.states[i][0] = sq
	}
}

// StateSnapshot implements the session checkpoint contract: the drift
// magnitude at the last performed round.
func (l *LAG) StateSnapshot() ([][]float64, []uint64) {
	return nil, []uint64{math.Float64bits(l.lastNorm)}
}

// RestoreState implements the session checkpoint contract.
func (l *LAG) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) != 0 || len(counters) != 1 {
		return fmt.Errorf("core: LAG snapshot shape %d/%d", len(vecs), len(counters))
	}
	l.lastNorm = math.Float64frombits(counters[0])
	return nil
}

// AfterLocalStep implements Strategy.
func (l *LAG) AfterLocalStep(env *Env, t int) {
	if t%l.Tau != 0 {
		return
	}
	// Cheap trigger: mean squared drift (scalars, like an FDA state
	// AllReduce but without the deflation term).
	env.ForEachWorker(l.body)
	env.Fabric.AllReduceMean("state", l.meanSt, l.states)

	// Lazily skip the round while the aggregate drift magnitude is close
	// to what it was at the last performed round.
	if math.Abs(l.meanSt[0]-l.lastNorm) < l.Threshold*l.lastNorm {
		return // models stay local; drift keeps accumulating
	}
	l.lastNorm = l.meanSt[0]
	env.SyncModels()
}
