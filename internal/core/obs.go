package core

import "repro/internal/obs"

// sessionTele is a session's pre-resolved telemetry instruments,
// registered once at construction so the step loop performs no
// registry lookups. Every observation is a pure read of state the
// training math already produced — telemetry can never feed back into
// a trajectory (the bit-exactness contract pinned by obs_parity_test).
type sessionTele struct {
	// stepSec covers one global step: all local ranks plus the
	// strategy's synchronization decision, excluding evaluation.
	stepSec *obs.Histogram
	// syncSec covers AfterLocalStep on steps that synchronized (the
	// collective-heavy case).
	syncSec *obs.Histogram
	// evalSec covers one averaged-global-model evaluation.
	evalSec *obs.Histogram
	steps   *obs.Counter
	syncs   *obs.Counter
}

func newSessionTele(strategy string) sessionTele {
	return sessionTele{
		stepSec: obs.Default.Histogram("fda_session_step_seconds",
			"Latency of one global training step (local updates plus sync decision).", obs.Seconds),
		syncSec: obs.Default.Histogram("fda_session_sync_seconds",
			"Latency of the strategy hook on steps that triggered a synchronization.", obs.Seconds),
		evalSec: obs.Default.Histogram("fda_session_eval_seconds",
			"Latency of one global-model evaluation.", obs.Seconds),
		steps: obs.Default.Counter("fda_steps_total",
			"Completed global training steps."),
		syncs: obs.Default.Counter("fda_syncs_total",
			"Model synchronizations triggered.", "strategy", strategy),
	}
}
