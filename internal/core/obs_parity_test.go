package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
)

// The telemetry bit-exactness contract (ISSUE 7): training results are
// identical with observability off, on, or on with span sampling —
// metrics and traces read the trajectory, they never steer it. Every
// strategy family runs three times under the three modes and the
// Results must be deeply equal, float64 bit for float64 bit.

// runWithObs executes one run in the requested telemetry mode,
// restoring the process-global switches afterwards (the obs layer is
// process-wide state, so this test must not run in parallel).
func runWithObs(t *testing.T, cfg Config, strat Strategy, enable bool, traceFile string, sampleEvery int) Result {
	t.Helper()
	if enable {
		obs.Enable()
		defer obs.Disable()
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.TraceTo(f); err != nil {
			t.Fatal(err)
		}
		obs.SetSampleEvery(sampleEvery)
		defer func() {
			obs.SetSampleEvery(1)
			if err := obs.StopTrace(); err != nil {
				t.Fatal(err)
			}
		}()
	}
	return MustRun(cfg, strat)
}

func TestObsParityAllStrategies(t *testing.T) {
	base := testConfig(23)
	base.MaxSteps = 30
	base.EvalEvery = 10
	dir := t.TempDir()

	for name, mk := range parityStrategies(base) {
		t.Run(name, func(t *testing.T) {
			off := runWithObs(t, base, mk(), false, "", 0)
			on := runWithObs(t, base, mk(), true, "", 0)
			if !reflect.DeepEqual(off, on) {
				t.Fatalf("metrics-enabled run diverged from disabled:\noff: %v\non:  %v", off, on)
			}
			traced := runWithObs(t, base, mk(), true, filepath.Join(dir, name+".json"), 3)
			if !reflect.DeepEqual(off, traced) {
				t.Fatalf("traced+sampled run diverged from disabled:\noff:    %v\ntraced: %v", off, traced)
			}
		})
	}
}

// TestObsParityVirtualClock pins the mode that exercises the fabric
// span path hardest: a SimFabric run, whose virtual clock lands in the
// Result, must be bit-identical with tracing armed.
func TestObsParityVirtualClock(t *testing.T) {
	mkCfg := func() Config {
		cfg := testConfig(31)
		cfg.MaxSteps = 30
		cfg.EvalEvery = 10
		cfg.Fabric = comm.NewSimFabric(cfg.K, cfg.Cost, comm.ScenarioStraggler)
		return cfg
	}
	off := runWithObs(t, mkCfg(), NewLinearFDA(0.1), false, "", 0)
	traced := runWithObs(t, mkCfg(), NewLinearFDA(0.1), true, filepath.Join(t.TempDir(), "sim.json"), 1)
	if !reflect.DeepEqual(off, traced) {
		t.Fatalf("traced SimFabric run diverged:\noff:    %v\ntraced: %v", off, traced)
	}
	if off.VirtualSec == 0 {
		t.Fatal("SimFabric run reported no virtual time")
	}
}
