package core

import (
	"fmt"
)

// AdaptiveTheta implements the paper's future-work proposal (§5):
// dynamically adjust Θ so the run's average bandwidth consumption tracks
// a target budget. The observation driving it is monotonicity — larger Θ
// means fewer synchronizations and therefore less communication — so a
// simple multiplicative controller converges onto the budget.
//
// AdaptiveTheta wraps either FDA variant. Every Window steps it compares
// the run's cumulative bytes/step with the budget and scales Θ by Gain
// (above budget) or 1/Gain (below budget), clamped to [MinTheta,
// MaxTheta]. The cumulative (rather than per-window) rate keeps the
// controller stable against the spiky nature of synchronization traffic:
// a window containing one synchronization can exceed the budget a
// hundredfold while most windows carry only monitoring state.
type AdaptiveTheta struct {
	// Inner is the wrapped FDA variant (SketchFDA or LinearFDA). Its
	// Theta field is overwritten by the controller.
	Inner Strategy
	// BudgetBytesPerStep is the target average communication per global
	// step, totalled across workers.
	BudgetBytesPerStep float64
	// Window is the adjustment period in steps (default 25).
	Window int
	// Gain is the multiplicative step (default 1.5).
	Gain float64
	// MinTheta and MaxTheta clamp the controller (defaults: Θ0/64, Θ0·64).
	MinTheta, MaxTheta float64

	setTheta   func(float64)
	getTheta   func() float64
	thetaTrace []float64
}

// NewAdaptiveTheta wraps inner (which must be *SketchFDA or *LinearFDA)
// with a bandwidth-budget controller.
func NewAdaptiveTheta(inner Strategy, budgetBytesPerStep float64) *AdaptiveTheta {
	a := &AdaptiveTheta{
		Inner:              inner,
		BudgetBytesPerStep: budgetBytesPerStep,
		Window:             25,
		Gain:               1.5,
	}
	switch s := inner.(type) {
	case *SketchFDA:
		a.setTheta = func(t float64) { s.Theta = t }
		a.getTheta = func() float64 { return s.Theta }
	case *LinearFDA:
		a.setTheta = func(t float64) { s.Theta = t }
		a.getTheta = func() float64 { return s.Theta }
	default:
		panic(fmt.Sprintf("core: AdaptiveTheta cannot wrap %T", inner))
	}
	return a
}

// Name implements Strategy.
func (a *AdaptiveTheta) Name() string { return "Adaptive" + a.Inner.Name() }

// Init implements Strategy.
func (a *AdaptiveTheta) Init(env *Env) {
	if a.BudgetBytesPerStep <= 0 {
		panic("core: AdaptiveTheta requires a positive bandwidth budget")
	}
	if a.Window <= 0 {
		a.Window = 25
	}
	if a.Gain <= 1 {
		a.Gain = 1.5
	}
	t0 := a.getTheta()
	if t0 <= 0 {
		t0 = 1
		a.setTheta(t0)
	}
	if a.MinTheta == 0 {
		a.MinTheta = t0 / 64
	}
	if a.MaxTheta == 0 {
		a.MaxTheta = t0 * 64
	}
	a.Inner.Init(env)
}

// AfterLocalStep implements Strategy.
func (a *AdaptiveTheta) AfterLocalStep(env *Env, t int) {
	a.Inner.AfterLocalStep(env, t)
	if t%a.Window != 0 {
		return
	}
	rate := float64(env.Fabric.Meter().TotalBytes()) / float64(t)

	theta := a.getTheta()
	switch {
	case rate > a.BudgetBytesPerStep:
		theta *= a.Gain
	case rate < a.BudgetBytesPerStep/a.Gain:
		// Comfortably under budget: spend some of it on tighter sync.
		theta /= a.Gain
	}
	if theta < a.MinTheta {
		theta = a.MinTheta
	}
	if theta > a.MaxTheta {
		theta = a.MaxTheta
	}
	a.setTheta(theta)
	a.thetaTrace = append(a.thetaTrace, theta)
}

// ThetaTrace returns the Θ value after each adjustment window, for
// inspection and tests.
func (a *AdaptiveTheta) ThetaTrace() []float64 {
	return append([]float64(nil), a.thetaTrace...)
}

// StateSnapshot implements the session checkpoint contract: the live Θ,
// the adjustment trace, then the wrapped variant's own state. The fixed
// two-vector prefix lets RestoreState split the snapshot without knowing
// the trace length in advance.
func (a *AdaptiveTheta) StateSnapshot() ([][]float64, []uint64) {
	vecs := [][]float64{{a.getTheta()}, a.thetaTrace}
	var counters []uint64
	if r, ok := a.Inner.(resumable); ok {
		iv, ic := r.StateSnapshot()
		vecs = append(vecs, iv...)
		counters = ic
	}
	return vecs, counters
}

// RestoreState implements the session checkpoint contract.
func (a *AdaptiveTheta) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) < 2 || len(vecs[0]) != 1 {
		return fmt.Errorf("core: AdaptiveTheta snapshot shape %d", len(vecs))
	}
	a.setTheta(vecs[0][0])
	a.thetaTrace = append([]float64(nil), vecs[1]...)
	if r, ok := a.Inner.(resumable); ok {
		return r.RestoreState(vecs[2:], counters)
	}
	if len(vecs) > 2 || len(counters) > 0 {
		return fmt.Errorf("core: AdaptiveTheta snapshot carries inner state for a stateless variant")
	}
	return nil
}
