package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

// TestSessionStepMatchesRun drives a session manually and checks the
// final Result is deeply equal to the batch Run at the same config.
func TestSessionStepMatchesRun(t *testing.T) {
	cfg := testConfig(21)
	cfg.MaxSteps = 60
	cfg.EvalEvery = 20
	want := MustRun(cfg, NewLinearFDA(0.1))

	sess, err := NewSession(context.Background(), cfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		more, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		steps++
	}
	if !sess.Done() {
		t.Fatal("session not done after Step returned false")
	}
	if got := sess.Result(); !reflect.DeepEqual(want, got) {
		t.Fatalf("session result diverged from Run:\nrun:     %v\nsession: %v", want, got)
	}
	if steps+1 != want.Steps {
		t.Fatalf("stepped %d times for a %d-step run", steps+1, want.Steps)
	}
}

// TestSessionEventOrdering checks the documented per-step event order
// (step, then sync, then eval, done last) and that event counts and
// payloads agree with the final Result.
func TestSessionEventOrdering(t *testing.T) {
	cfg := testConfig(22)
	cfg.MaxSteps = 40
	cfg.EvalEvery = 10

	sess, err := NewSession(context.Background(), cfg, NewLocalSGD(7))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	sess.Subscribe(func(e Event) { events = append(events, e) })
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}

	var stepCount, syncCount, evalCount, doneCount int
	var syncBytes int64
	lastStep := 0
	for i, e := range events {
		switch ev := e.(type) {
		case StepEvent:
			if ev.Step != lastStep+1 {
				t.Fatalf("event %d: step %d after step %d", i, ev.Step, lastStep)
			}
			if ev.Worker != -1 {
				t.Fatalf("lock-step StepEvent carries worker %d", ev.Worker)
			}
			lastStep = ev.Step
			stepCount++
		case SyncEvent:
			if ev.Step != lastStep {
				t.Fatalf("event %d: sync at step %d, current step %d", i, ev.Step, lastStep)
			}
			if ev.Trigger != "LocalSGD(τ=7)" {
				t.Fatalf("sync trigger %q", ev.Trigger)
			}
			if ev.SyncBytes <= 0 {
				t.Fatalf("sync reports %d bytes", ev.SyncBytes)
			}
			syncBytes += ev.SyncBytes
			syncCount++
		case EvalEvent:
			if ev.Point.Step != lastStep {
				t.Fatalf("event %d: eval at step %d, current step %d", i, ev.Point.Step, lastStep)
			}
			evalCount++
		case DoneEvent:
			if i != len(events)-1 {
				t.Fatalf("DoneEvent at %d of %d", i, len(events))
			}
			if !reflect.DeepEqual(ev.Result, res) {
				t.Fatalf("DoneEvent result differs from Run result")
			}
			doneCount++
		}
	}
	if stepCount != res.Steps {
		t.Fatalf("%d StepEvents for %d steps", stepCount, res.Steps)
	}
	if syncCount != res.SyncCount {
		t.Fatalf("%d SyncEvents for %d syncs", syncCount, res.SyncCount)
	}
	if syncBytes != res.ModelBytes {
		t.Fatalf("SyncEvent bytes sum %d, model traffic %d", syncBytes, res.ModelBytes)
	}
	if evalCount != len(res.History) {
		t.Fatalf("%d EvalEvents for %d history points", evalCount, len(res.History))
	}
	if doneCount != 1 {
		t.Fatalf("%d DoneEvents", doneCount)
	}
}

// TestSessionCancellation: a cancelled context stops Step between steps
// with the context's error; the session is not done (it is resumable)
// and no DoneEvent fires.
func TestSessionCancellation(t *testing.T) {
	cfg := testConfig(23)
	cfg.MaxSteps = 100
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := NewSession(ctx, cfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	done := false
	sess.Subscribe(func(e Event) {
		if _, ok := e.(DoneEvent); ok {
			done = true
		}
	})
	for i := 0; i < 10; i++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if _, err := sess.Step(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step after cancel: %v", err)
	}
	if sess.Done() {
		t.Fatal("cancelled session reports done")
	}
	if done {
		t.Fatal("cancelled session emitted DoneEvent")
	}
	if sess.StepCount() != 10 {
		t.Fatalf("cancelled at step %d, want 10", sess.StepCount())
	}
}

// TestRunContextCancelled: the batch wrapper surfaces cancellation with
// the partial result.
func TestRunContextCancelled(t *testing.T) {
	cfg := testConfig(24)
	cfg.MaxSteps = 100
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, cfg, NewSynchronous())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Steps != 0 {
		t.Fatalf("cancelled-before-start run took %d steps", res.Steps)
	}
}

// sessionResume runs cfg+strategy uninterrupted, then again with an
// interruption at snapStep — snapshot, serialize through the checkpoint
// codec, restore into a fresh session — and requires the resumed result
// to be deeply equal (every float64 bit) to the uninterrupted one.
func sessionResume(t *testing.T, cfg Config, mk func() Strategy, snapStep int) {
	t.Helper()
	want := MustRun(cfg, mk())

	first, err := NewSession(context.Background(), cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	for first.StepCount() < snapStep {
		more, err := first.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			t.Fatalf("run finished at step %d before snapshot step %d", first.StepCount(), snapStep)
		}
	}
	snap, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize through the binary codec so the test covers the wire
	// format, not just the in-memory struct.
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewSession(context.Background(), cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	if resumed.StepCount() != snapStep {
		t.Fatalf("restored session at step %d, want %d", resumed.StepCount(), snapStep)
	}
	got, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run:\nwant: %v\ngot:  %v", want, got)
	}
}

// TestSessionSnapshotResumeExact is the resume-parity contract for every
// strategy family with cross-step state (and the stateless ones, whose
// snapshots carry only the shared training state).
func TestSessionSnapshotResumeExact(t *testing.T) {
	base := testConfig(31)
	base.MaxSteps = 60
	base.EvalEvery = 15
	strategies := map[string]func() Strategy{
		"LinearFDA":   func() Strategy { return NewLinearFDA(0.1) },
		"SketchFDA":   func() Strategy { return NewSketchFDA(0.1) },
		"OracleFDA":   func() Strategy { return NewOracleFDA(0.1) },
		"Synchronous": func() Strategy { return NewSynchronous() },
		"LocalSGD":    func() Strategy { return NewLocalSGD(7) },
		"FedAvgM":     func() Strategy { return NewFedAvgMFor(base, 1) },
		"FedAdam":     func() Strategy { return NewFedAdamFor(base, 1) },
		"IncTau":      func() Strategy { return NewIncreasingTauLocalSGD(5, 2) },
		"LAG":         func() Strategy { return NewLAG(5, 0.5) },
		"Adaptive":    func() Strategy { return NewAdaptiveTheta(NewLinearFDA(0.1), 5e4) },
	}
	for name, mk := range strategies {
		t.Run(name, func(t *testing.T) {
			// Step 37 is mid-round for every schedule above and past the
			// second synchronization for the FDA variants (ξ is live).
			sessionResume(t, base, mk, 37)
		})
	}
}

// TestSessionSnapshotResumeParallel: snapshots taken from a parallel
// session restore into a sequential one (and vice versa) — snapshot
// state is parallelism-independent, like results.
func TestSessionSnapshotResumeParallel(t *testing.T) {
	cfg := testConfig(32)
	cfg.MaxSteps = 45
	cfg.EvalEvery = 15
	want := MustRun(cfg, NewLinearFDA(0.1))

	parCfg := cfg
	parCfg.Parallelism = 4
	first, err := NewSession(context.Background(), parCfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for first.StepCount() < 20 {
		if _, err := first.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSession(context.Background(), cfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel-snapshot resume diverged:\nwant: %v\ngot:  %v", want, got)
	}
}

// TestSessionRestoreRejectsMismatch: restoring a snapshot into a session
// of a different shape fails loudly instead of corrupting state.
func TestSessionRestoreRejectsMismatch(t *testing.T) {
	cfg := testConfig(33)
	cfg.MaxSteps = 20
	sess, err := NewSession(context.Background(), cfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.K = 3
	mismatch, err := NewSession(context.Background(), other, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := mismatch.Restore(snap); err == nil {
		t.Fatal("K-mismatched snapshot accepted")
	}

	stepped, err := NewSession(context.Background(), cfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stepped.Step(); err != nil {
		t.Fatal(err)
	}
	if err := stepped.Restore(snap); err == nil {
		t.Fatal("Restore accepted on an already-stepped session")
	}
}

// TestSessionCancelledPartialTotals: a cancelled Run returns a partial
// Result with coherent cost totals (epochs, traffic, sync count), not
// zeros.
func TestSessionCancelledPartialTotals(t *testing.T) {
	cfg := testConfig(34)
	cfg.MaxSteps = 100
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := NewSession(ctx, cfg, NewSynchronous())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	sess.Subscribe(func(e Event) {
		if _, ok := e.(StepEvent); ok {
			if n++; n == 12 {
				cancel()
			}
		}
	})
	res, err := sess.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if res.Steps != 12 || res.SyncCount != 12 || res.ModelBytes == 0 || res.Epochs == 0 {
		t.Fatalf("partial result incoherent: %v", res)
	}
}

// TestSessionRestorePastBudgetTerminates: a snapshot at or beyond the
// config's MaxSteps finishes on the next Step instead of training
// unboundedly.
func TestSessionRestorePastBudgetTerminates(t *testing.T) {
	cfg := testConfig(35)
	cfg.MaxSteps = 20
	cfg.EvalEvery = 10
	sess, err := NewSession(context.Background(), cfg, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	short := cfg
	short.MaxSteps = 10
	resumed, err := NewSession(context.Background(), short, NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Done() || res.Steps != 20 {
		t.Fatalf("past-budget restore: done=%v steps=%d", resumed.Done(), res.Steps)
	}
}

// TestConfigValidateFieldErrors: Validate reports every invalid field in
// one structured error.
func TestConfigValidateFieldErrors(t *testing.T) {
	err := Config{K: -1, BatchSize: 0, TargetAccuracy: -0.5}.Validate()
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	var cerr *ConfigError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *ConfigError, got %T", err)
	}
	fields := map[string]bool{}
	for _, f := range cerr.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"K", "BatchSize", "Model", "Optimizer", "Train", "Test", "TargetAccuracy"} {
		if !fields[want] {
			t.Fatalf("missing field error for %s in %v", want, cerr)
		}
	}
	if !strings.Contains(err.Error(), "TargetAccuracy") {
		t.Fatalf("error text %q", err.Error())
	}

	if err := testConfig(1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestAsyncEventsAndCancellation: the async coordinator emits the shared
// event vocabulary and honors its context.
func TestAsyncEventsAndCancellation(t *testing.T) {
	cfg := testConfig(41)
	cfg.MaxSteps = 30
	cfg.EvalEvery = 10
	ac := AsyncConfig{Config: cfg, Theta: 0.1, Speeds: []float64{1, 1, 1, 0.5, 0.25}}

	var steps, syncs, evals, dones int
	want, err := RunAsyncContext(context.Background(), ac, func(e Event) {
		switch e.(type) {
		case StepEvent:
			steps++
		case SyncEvent:
			syncs++
		case EvalEvent:
			evals++
		case DoneEvent:
			dones++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range want.StepsPerWorker {
		total += s
	}
	if steps != total {
		t.Fatalf("%d StepEvents for %d local steps", steps, total)
	}
	if syncs != want.SyncCount || evals != len(want.History) || dones != 1 {
		t.Fatalf("events %d/%d/%d for syncs=%d evals=%d", syncs, evals, dones, want.SyncCount, len(want.History))
	}

	// Parity: the event-spine runner with a nil sink is RunAsync.
	plain, err := RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, plain) {
		t.Fatalf("RunAsyncContext diverged from RunAsync")
	}

	// Cancellation mid-run: stop after 7 local steps.
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	partial, err := RunAsyncContext(ctx, ac, func(e Event) {
		if _, ok := e.(StepEvent); ok {
			if n++; n == 7 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled async run: %v", err)
	}
	got := 0
	for _, s := range partial.StepsPerWorker {
		got += s
	}
	if got != 7 {
		t.Fatalf("cancelled after %d local steps, want 7", got)
	}
}
