package core

import "context"

// Strategy is a synchronization policy plugged into the shared trainer
// loop. Implementations decide, after every lock-step local update, whether
// (and how) to synchronize the workers' models.
type Strategy interface {
	// Name identifies the strategy in results and figures.
	Name() string
	// Init is called once, after workers are built and before step 1.
	Init(env *Env)
	// AfterLocalStep is called at global step t (1-based) after every
	// worker has performed one local Optimize step.
	AfterLocalStep(env *Env, t int)
}

// Run executes one training run of cfg under the given strategy and
// returns its cost/quality summary. Runs are deterministic in (cfg, s).
//
// Run is a thin wrapper over Session: it builds one and drives it to
// completion, producing a Result bit-identical to stepping the session
// manually (or to the pre-session trainer loop — the parity tests pin
// this).
func Run(cfg Config, s Strategy) (Result, error) {
	return RunContext(context.Background(), cfg, s)
}

// RunContext is Run under a context: cancellation stops the run between
// global steps and returns the context's error alongside the partial
// Result accumulated so far.
func RunContext(ctx context.Context, cfg Config, s Strategy) (Result, error) {
	sess, err := NewSession(ctx, cfg, s)
	if err != nil {
		return Result{}, err
	}
	return sess.Run()
}

// MustRun is Run for tests and examples where a config error is a bug.
func MustRun(cfg Config, s Strategy) Result {
	r, err := Run(cfg, s)
	if err != nil {
		panic(err)
	}
	return r
}
