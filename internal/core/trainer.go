package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/tensor"
)

// Strategy is a synchronization policy plugged into the shared trainer
// loop. Implementations decide, after every lock-step local update, whether
// (and how) to synchronize the workers' models.
type Strategy interface {
	// Name identifies the strategy in results and figures.
	Name() string
	// Init is called once, after workers are built and before step 1.
	Init(env *Env)
	// AfterLocalStep is called at global step t (1-based) after every
	// worker has performed one local Optimize step.
	AfterLocalStep(env *Env, t int)
}

// Run executes one training run of cfg under the given strategy and
// returns its cost/quality summary. Runs are deterministic in (cfg, s).
func Run(cfg Config, s Strategy) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	root := tensor.NewRNG(cfg.Seed)

	// Shared initial model: one reference replica defines w0.
	initNet := cfg.Model(root.Split())
	w0 := tensor.Clone(initNet.Params())
	d := initNet.NumParams()

	shards := cfg.Het.Partition(cfg.Train, cfg.K, root.Split())

	cluster := comm.NewCluster(cfg.K)
	cluster.Cost = cfg.Cost

	workers := make([]*Worker, cfg.K)
	for k := range workers {
		net := cfg.Model(root.Split())
		net.SetParams(w0)
		workers[k] = &Worker{
			ID:      k,
			Net:     net,
			Opt:     cfg.Optimizer(),
			Shard:   shards[k],
			drift:   make([]float64, d),
			sampler: data.NewSampler(shards[k], root.Split()),
		}
	}

	env := newEnv(cluster, workers)
	env.Codec = cfg.SyncCodec
	env.pool = newPool(cfg.Parallelism)
	s.Init(env)

	eval := newEvaluator(env.pool, cfg.Model(root.Split()), cfg.Model, cfg.Seed)
	globalParams := make([]float64, d)

	res := Result{Strategy: s.Name()}
	samplesPerStep := float64(cfg.BatchSize * cfg.K)
	trainLen := float64(cfg.Train.Len())

	evaluate := func(t int) Point {
		env.GlobalModel(globalParams)
		p := Point{
			Step:      t,
			Epoch:     float64(t) * samplesPerStep / trainLen,
			TestAcc:   eval.accuracy(globalParams, cfg.Test),
			CommBytes: cluster.Meter.TotalBytes(),
			SyncCount: env.SyncCount,
		}
		if cfg.RecordTrainAccuracy {
			p.TrainAcc = eval.accuracy(globalParams, cfg.Train)
		}
		return p
	}

	// Hoisted per-step body: one closure for the whole run, so the
	// steady-state loop allocates nothing.
	stepBody := func(_ int, w *Worker) { w.LocalStep(cfg.BatchSize) }

	for t := 1; t <= cfg.MaxSteps; t++ {
		env.ForEachWorker(stepBody)
		s.AfterLocalStep(env, t)
		res.Steps = t

		if t%cfg.EvalEvery == 0 || t == cfg.MaxSteps {
			p := evaluate(t)
			res.History = append(res.History, p)
			res.FinalTestAcc = p.TestAcc
			if cfg.TargetAccuracy > 0 && p.TestAcc >= cfg.TargetAccuracy {
				res.ReachedTarget = true
				break
			}
			if !tensor.AllFinite(globalParams) {
				return res, fmt.Errorf("core: %s diverged (non-finite parameters) at step %d", s.Name(), t)
			}
		}
	}

	res.Epochs = float64(res.Steps) * samplesPerStep / trainLen
	res.CommBytes = cluster.Meter.TotalBytes()
	res.StateBytes = cluster.Meter.BytesFor("state")
	res.ModelBytes = cluster.Meter.BytesFor("model")
	res.SyncCount = env.SyncCount
	return res, nil
}

// MustRun is Run for tests and examples where a config error is a bug.
func MustRun(cfg Config, s Strategy) Result {
	r, err := Run(cfg, s)
	if err != nil {
		panic(err)
	}
	return r
}
