package core

import (
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/tensor"
)

// newSampler wraps data.NewSampler so the async runner reads like the
// synchronous trainer.
func newSampler(shard *data.Dataset, rng *tensor.RNG) *data.Sampler {
	return data.NewSampler(shard, rng)
}

// asyncCluster meters the coordinator-based communication pattern of
// asynchronous FDA. Unlike the AllReduce fabric, traffic is point-to-point
// with the coordinator: state uploads are one-way from a single worker,
// and a model synchronization is a gather of K models plus a broadcast of
// the average (2·d elements per worker).
type asyncCluster struct {
	meter *comm.Meter
	cost  comm.CostModel
	k, d  int
}

func newAsyncCluster(cfg Config, d int) *asyncCluster {
	return &asyncCluster{meter: comm.NewMeter(), cost: cfg.Cost, k: cfg.K, d: d}
}

// meterStateUpload charges one worker's state upload of n elements.
func (c *asyncCluster) meterStateUpload(n int) {
	c.meter.Charge("state", int64(n)*int64(c.cost.BytesPerParam))
}

// meterModelSync charges a coordinator gather+broadcast of the full model.
func (c *asyncCluster) meterModelSync() {
	c.meter.Charge("model", 2*int64(c.d)*int64(c.cost.BytesPerParam)*int64(c.k))
}
