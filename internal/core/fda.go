package core

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/tensor"
)

// fdaBase carries the state shared by both FDA variants: the variance
// threshold Θ and the per-step decision loop of Algorithm 1. The variant
// contributes the local-state summary and the estimation function H.
//
// Per global step t each worker k:
//
//  1. computes its drift u^(k) = w^(k) − w_t0 and squared norm ‖u^(k)‖²,
//  2. builds the variant's local state S^(k),
//  3. the states are AllReduce-averaged (charged as "state" traffic),
//  4. all workers evaluate H(S̄); if H(S̄) > Θ the full models are
//     AllReduce-averaged (charged as "model" traffic) and a new round
//     begins.
type fdaBase struct {
	Theta float64

	// maxStat tracks the running maximum of H over the run — the guard a
	// prefix snapshot publishes so siblings can prove they would not have
	// synchronized inside it (prefix.go). Maintained by each variant's
	// AfterLocalStep; only its pre-first-sync values are ever consumed.
	maxStat float64
}

// observe folds one step's statistic into the guard.
func (b *fdaBase) observe(h float64) {
	if h > b.maxStat {
		b.maxStat = h
	}
}

// SketchFDA is the AMS-sketch variant (paper §3.1, Theorem 3.1): the
// local state is (‖u‖², sk(u)) and
//
//	H(S̄) = mean‖u‖² − M2(mean sketch)/(1+ε),
//
// which overestimates Var(w_t) with probability ≥ 1−δ.
type SketchFDA struct {
	fdaBase
	// L and M are the sketch depth and width; zero values select the
	// paper's recommendation l=5, m=250 (ε≈6%, 1−δ≈95%).
	L, M int
	// Epsilon is the sketch error bound used in H's deflation term;
	// zero selects 0.06, matching the default dimensions.
	Epsilon float64
	// SketchSeed seeds the shared hash functions (all workers must agree).
	SketchSeed uint64

	sk     *sketch.Sketcher
	states [][]float64 // per-worker state vectors [‖u‖², sketch...]
	// workerSk[i] views states[i][1:] as a sketch so each worker can
	// sketch its drift straight into its own state slot, concurrently.
	workerSk []*sketch.Sketch
	meanSt   []float64
	meanSk   *sketch.Sketch
	// body is the per-worker state computation, bound once at Init so the
	// per-step dispatch closes over no per-call state and allocates
	// nothing; m2Scratch backs the estimator's median-of-rows buffer.
	body      func(i int, w *Worker)
	m2Scratch []float64
}

// NewSketchFDA returns the sketch-based FDA strategy with threshold theta
// and default sketch dimensions.
func NewSketchFDA(theta float64) *SketchFDA {
	return &SketchFDA{fdaBase: fdaBase{Theta: theta}}
}

// Name implements Strategy.
func (s *SketchFDA) Name() string { return "SketchFDA" }

// Init implements Strategy.
func (s *SketchFDA) Init(env *Env) {
	if s.L == 0 {
		s.L = 5
	}
	if s.M == 0 {
		// The paper's m=250 assumes sketches far smaller than the model
		// (5 kB vs multi-MB models, §3.3). At reproduction scale small
		// models would otherwise carry sketches comparable to themselves,
		// so cap the sketch at ~1/10 of the model dimension, floored to
		// keep estimates usable. The error bound ε widens accordingly
		// (ε ~ 1/√m), keeping H a conservative overestimate.
		s.M = env.D / (10 * s.L)
		if s.M > 250 {
			s.M = 250
		}
		if s.M < 16 {
			s.M = 16
		}
		if s.Epsilon == 0 {
			s.Epsilon = 15.0 / float64(s.M)
			if s.Epsilon < 0.06 {
				s.Epsilon = 0.06
			}
			if s.Epsilon > 0.5 {
				s.Epsilon = 0.5
			}
		}
	}
	if s.Epsilon == 0 {
		s.Epsilon = 0.06
	}
	if s.Theta < 0 {
		panic(fmt.Sprintf("core: negative Θ %v", s.Theta))
	}
	s.sk = sketch.NewSketcher(s.L, s.M, s.SketchSeed^0x5ce7c4)
	s.sk.Precompute(env.D)
	stateDim := 1 + s.L*s.M
	s.states = make([][]float64, len(env.Workers))
	s.workerSk = make([]*sketch.Sketch, len(env.Workers))
	for i := range s.states {
		s.states[i] = make([]float64, stateDim)
		s.workerSk[i] = &sketch.Sketch{L: s.L, M: s.M, Data: s.states[i][1:]}
	}
	s.meanSt = make([]float64, stateDim)
	s.meanSk = s.sk.NewSketch()
	s.m2Scratch = make([]float64, s.L)
	s.body = func(i int, w *Worker) {
		u, sq := w.DriftSquaredNorm(env.W0)
		s.states[i][0] = sq
		s.sk.SketchVec(s.workerSk[i], u)
	}
}

// AfterLocalStep implements Strategy.
//
//fda:noalloc
func (s *SketchFDA) AfterLocalStep(env *Env, _ int) {
	// Per-worker drift and sketch computations are independent (the
	// Sketcher is immutable after Precompute) and run on the pool; the
	// state AllReduce below reduces in worker order on this goroutine.
	env.ForEachWorker(s.body)
	env.Fabric.AllReduceMean("state", s.meanSt, s.states)
	h := s.estimate()
	s.observe(h)
	if h > s.Theta {
		env.SyncModels()
	}
}

// estimate computes H(S̄) from the averaged state.
func (s *SketchFDA) estimate() float64 {
	meanSq := s.meanSt[0]
	copy(s.meanSk.Data, s.meanSt[1:])
	return meanSq - sketch.M2Into(s.meanSk, s.m2Scratch)/(1+s.Epsilon)
}

// LinearFDA is the two-scalar variant (paper §3.2, Theorem 3.2): the local
// state is (‖u‖², ⟨ξ, u⟩) for a shared unit vector ξ, and
//
//	H(S̄) = mean‖u‖² − (mean⟨ξ, u⟩)²
//
// deterministically overestimates Var(w_t) by Cauchy–Schwarz. ξ is the
// paper's heuristic: the normalized global drift between the last two
// synchronizations, ξ = (w_t0 − w_t−1)/‖w_t0 − w_t−1‖; until two
// synchronizations have happened ξ = 0, making H the (valid, loose)
// mean-squared-drift bound.
type LinearFDA struct {
	fdaBase
	// XiMode selects the direction heuristic: "drift" (paper), "random"
	// (ablation: a fixed random unit vector), or "zero" (ablation: no
	// deflation term at all).
	XiMode string
	// Seed drives the random-ξ ablation.
	Seed uint64

	xi     []float64
	states [][]float64
	meanSt []float64
	body   func(i int, w *Worker)
}

// NewLinearFDA returns the linear FDA strategy with threshold theta and
// the paper's ξ heuristic.
func NewLinearFDA(theta float64) *LinearFDA {
	return &LinearFDA{fdaBase: fdaBase{Theta: theta}, XiMode: "drift"}
}

// Name implements Strategy.
func (l *LinearFDA) Name() string { return "LinearFDA" }

// Init implements Strategy.
func (l *LinearFDA) Init(env *Env) {
	l.xi = make([]float64, env.D)
	if l.XiMode == "random" {
		rng := tensor.NewRNG(l.Seed ^ 0x11fda)
		tensor.Normal(rng, l.xi, 0, 1)
		tensor.Normalize(l.xi)
	}
	l.states = make([][]float64, len(env.Workers))
	for i := range l.states {
		l.states[i] = make([]float64, 2)
	}
	l.meanSt = make([]float64, 2)
	l.body = func(i int, w *Worker) {
		u, sq := w.DriftSquaredNorm(env.W0)
		l.states[i][0] = sq
		l.states[i][1] = tensor.Dot(l.xi, u)
	}
}

// StateSnapshot implements the session checkpoint contract: ξ is the
// only cross-step state (the per-step drift states are recomputed).
func (l *LinearFDA) StateSnapshot() ([][]float64, []uint64) {
	return [][]float64{l.xi}, nil
}

// RestoreState implements the session checkpoint contract.
func (l *LinearFDA) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) != 1 || len(counters) != 0 {
		return fmt.Errorf("core: LinearFDA snapshot shape %d/%d", len(vecs), len(counters))
	}
	if len(vecs[0]) != len(l.xi) {
		return fmt.Errorf("core: LinearFDA ξ length %d, want %d", len(vecs[0]), len(l.xi))
	}
	copy(l.xi, vecs[0])
	return nil
}

// AfterLocalStep implements Strategy.
//
//fda:noalloc
func (l *LinearFDA) AfterLocalStep(env *Env, _ int) {
	env.ForEachWorker(l.body)
	env.Fabric.AllReduceMean("state", l.meanSt, l.states)
	h := l.meanSt[0] - l.meanSt[1]*l.meanSt[1]
	l.observe(h)
	if h > l.Theta {
		env.SyncModels()
		if l.XiMode == "drift" && env.WPrev != nil {
			// ξ ← (w_t0 − w_t−1) normalized; skip degenerate zero drift.
			tensor.Sub(l.xi, env.W0, env.WPrev)
			if tensor.Normalize(l.xi) == 0 {
				tensor.Zero(l.xi)
			}
		}
	}
}

// OracleFDA is an ablation, not a deployable strategy: it monitors the
// exact model variance (Eq. 2) at zero estimation error and synchronizes
// when Var(w_t) > Θ. It charges the same two-scalar state traffic as
// LinearFDA so results isolate estimation quality, not bandwidth. The gap
// between OracleFDA and the two real variants measures how much their
// overestimation costs in extra synchronizations.
type OracleFDA struct {
	fdaBase

	states [][]float64
	meanSt []float64
	body   func(i int, w *Worker)
}

// NewOracleFDA returns the exact-variance oracle with threshold theta.
func NewOracleFDA(theta float64) *OracleFDA {
	return &OracleFDA{fdaBase: fdaBase{Theta: theta}}
}

// Name implements Strategy.
func (o *OracleFDA) Name() string { return "OracleFDA" }

// Init implements Strategy.
func (o *OracleFDA) Init(env *Env) {
	o.states = make([][]float64, len(env.Workers))
	for i := range o.states {
		o.states[i] = make([]float64, 2)
	}
	o.meanSt = make([]float64, 2)
	o.body = func(i int, w *Worker) {
		_, sq := w.DriftSquaredNorm(env.W0)
		o.states[i][0] = sq
	}
}

// AfterLocalStep implements Strategy.
func (o *OracleFDA) AfterLocalStep(env *Env, _ int) {
	// Charge the same state traffic a two-scalar variant would use.
	env.ForEachWorker(o.body)
	env.Fabric.AllReduceMean("state", o.meanSt, o.states)
	h := env.ExactVarianceViaDrift()
	o.observe(h)
	if h > o.Theta {
		env.SyncModels()
	}
}
