package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Clock is the pool's time source: monotonic nanoseconds from an
// arbitrary epoch. It is injected (cmd/fdagate passes the wall clock,
// tests pass a virtual one) so the package itself stays off the
// ambient clock — only the quarantine/backoff windows and load
// staleness consume it, never a routing hash.
type Clock func() int64

// Quarantine backoff defaults: first failure parks a replica for
// defaultQuarantineBase, each consecutive failure doubles the window up
// to defaultQuarantineMax.
const (
	defaultQuarantineBase = int64(500e6) // 500ms
	defaultQuarantineMax  = int64(30e9)  // 30s
)

// Replica is one fdaserve process behind the gateway.
type Replica struct {
	// Base is the replica's root URL (no trailing slash). It is the
	// replica's routing identity: the rendezvous hash and the job-id
	// prefix both derive from it, so routing survives gateway restarts
	// and replica-list reordering.
	Base string
	// prefix is the job-id namespace: gateway job ids are
	// "<prefix>-<upstream id>". First 6 hex of SHA-256(Base).
	prefix string

	// dispatched counts gateway requests currently outstanding against
	// this replica — the freshest load signal between polls.
	dispatched atomic.Int64

	// Polled/observed state, guarded by the pool mutex.
	mu               sync.Mutex
	name             string // replica-reported identity (-name), falls back to Base
	healthy          bool
	draining         bool
	fails            int // consecutive transport failures
	quarantinedUntil int64
	overloadedUntil  int64 // 503 Retry-After window
	load             int64 // queued+running jobs at last poll
	inflight         int64 // admission in-flight at last poll
	maxQueue         int64 // admission cap at last poll (0 = unbounded)
	lastErr          string

	// Per-replica gauges (label = base URL), refreshed on every poll
	// and observation.
	gUp, gLoad, gDispatched *obs.Gauge
}

// Prefix returns the replica's job-id namespace.
func (r *Replica) Prefix() string { return r.prefix }

// Name returns the replica-reported identity (its -name flag), or the
// base URL before the first successful poll.
func (r *Replica) Name() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.name == "" {
		return r.Base
	}
	return r.name
}

// View is a replica's externally visible state (the /v1/cluster table).
type View struct {
	Name     string `json:"name"`
	Base     string `json:"base"`
	Prefix   string `json:"prefix"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	// Quarantined reports that the replica is parked behind a failure
	// backoff window and excluded from routing until a probe succeeds.
	Quarantined bool   `json:"quarantined,omitempty"`
	Overloaded  bool   `json:"overloaded,omitempty"`
	Load        int64  `json:"load"`
	InFlight    int64  `json:"in_flight"`
	MaxQueue    int64  `json:"max_queue,omitempty"`
	Dispatched  int64  `json:"dispatched"`
	LastError   string `json:"last_error,omitempty"`
}

// Pool tracks the replica set: health, load, and the deterministic
// affinity ranking.
type Pool struct {
	replicas []*Replica
	byPrefix map[string]*Replica
	client   *http.Client
	now      Clock
	qBase    int64
	qMax     int64
}

// Options configures a pool.
type Options struct {
	// Client executes health polls and probes; it should carry a
	// timeout. Defaults to http.DefaultClient.
	Client *http.Client
	// Now is the monotonic clock (required).
	Now Clock
	// QuarantineBaseNS/QuarantineMaxNS bound the failure backoff
	// windows; zero takes the defaults (500ms, 30s).
	QuarantineBaseNS int64
	QuarantineMaxNS  int64
}

// NewPool builds a pool over the given replica base URLs.
func NewPool(bases []string, opt Options) (*Pool, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica is required")
	}
	if opt.Now == nil {
		return nil, fmt.Errorf("cluster: Options.Now clock is required")
	}
	if opt.Client == nil {
		opt.Client = http.DefaultClient
	}
	if opt.QuarantineBaseNS <= 0 {
		opt.QuarantineBaseNS = defaultQuarantineBase
	}
	if opt.QuarantineMaxNS <= 0 {
		opt.QuarantineMaxNS = defaultQuarantineMax
	}
	p := &Pool{
		client:   opt.Client,
		now:      opt.Now,
		qBase:    opt.QuarantineBaseNS,
		qMax:     opt.QuarantineMaxNS,
		byPrefix: map[string]*Replica{},
	}
	for _, base := range bases {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" {
			continue
		}
		sum := sha256.Sum256([]byte(base))
		prefix := fmt.Sprintf("%x", sum[:3])
		if _, dup := p.byPrefix[prefix]; dup {
			return nil, fmt.Errorf("cluster: replica id prefix collision for %s (duplicate replica URL?)", base)
		}
		r := &Replica{
			Base:    base,
			prefix:  prefix,
			healthy: true, // optimistic: route before the first poll
			gUp: obs.Default.Gauge("fdagate_replica_up",
				"Replica availability: 1 healthy, 0 quarantined or unreachable.", "replica", base),
			gLoad: obs.Default.Gauge("fdagate_replica_load",
				"Queued plus running jobs at the replica's last /v1/metrics poll.", "replica", base),
			gDispatched: obs.Default.Gauge("fdagate_replica_dispatched",
				"Gateway requests currently outstanding against the replica.", "replica", base),
		}
		r.gUp.Set(1)
		p.replicas = append(p.replicas, r)
		p.byPrefix[prefix] = r
	}
	if len(p.replicas) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica is required")
	}
	return p, nil
}

// Replicas returns the replica set in configured order.
func (p *Pool) Replicas() []*Replica {
	out := make([]*Replica, len(p.replicas))
	copy(out, p.replicas)
	return out
}

// ByPrefix resolves a job-id namespace to its replica (nil if unknown).
func (p *Pool) ByPrefix(prefix string) *Replica { return p.byPrefix[prefix] }

// SplitID splits a gateway job id "<prefix>-<upstream>" into the owning
// replica and the upstream id. ok is false when the prefix is unknown.
func (p *Pool) SplitID(id string) (r *Replica, upstream string, ok bool) {
	i := strings.IndexByte(id, '-')
	if i <= 0 || i == len(id)-1 {
		return nil, "", false
	}
	r = p.byPrefix[id[:i]]
	if r == nil {
		return nil, "", false
	}
	return r, id[i+1:], true
}

// rendezvousScore ranks (address, replica) pairs: SHA-256 of the pair,
// first 8 bytes as a big-endian integer. Highest score owns the
// address. Pure function — equal inputs rank equally everywhere.
func rendezvousScore(address, base string) uint64 {
	h := sha256.New()
	io.WriteString(h, address)
	io.WriteString(h, "|")
	io.WriteString(h, base)
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Rank returns the full replica set in rendezvous order for an
// address: the first entry is the affinity owner, later entries are
// the deterministic succession should the owner be unavailable.
// Ranking ignores health entirely — it is the pure affinity function;
// Candidates applies the measured-state filters on top.
func (p *Pool) Rank(address string) []*Replica {
	out := make([]*Replica, len(p.replicas))
	copy(out, p.replicas)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := rendezvousScore(address, out[i].Base), rendezvousScore(address, out[j].Base)
		if si != sj {
			return si > sj
		}
		return out[i].Base < out[j].Base
	})
	return out
}

// score is the least-loaded ordering key: last-polled queue depth plus
// the gateway's own outstanding dispatches (the freshest signal
// between polls).
func (r *Replica) score() int64 {
	r.mu.Lock()
	load := r.load
	r.mu.Unlock()
	return load + r.dispatched.Load()
}

// available reports whether the replica may receive new submissions:
// healthy (not quarantined behind a failure backoff) and not draining.
func (r *Replica) available() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy && !r.draining
}

// overloaded reports whether the replica is inside a 503 Retry-After
// window.
func (r *Replica) overloaded(now int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return now < r.overloadedUntil
}

// Candidates returns the replicas a submission should be attempted
// against, in order. With an affinity address, the rendezvous owner
// leads (cache hits, dedupe and warm-start snapshots live there);
// the fallback tier is the remaining available replicas from
// shallowest to deepest queue. Replicas inside an overload window sort
// after everything else (they answered 503 recently), and quarantined
// or draining replicas are excluded entirely. An empty slice means the
// cluster is saturated or down — the gateway degrades with a 503.
//
// The first tier is deterministic; the fallback tier deliberately is
// not, because it ranks replicas by measured queue depth.
func (p *Pool) Candidates(address string) []*Replica {
	now := p.now()
	ranked := p.replicas
	if address != "" {
		ranked = p.Rank(address)
	}
	var fresh, stale []*Replica
	for _, r := range ranked {
		if !r.available() {
			continue
		}
		if r.overloaded(now) {
			stale = append(stale, r)
		} else {
			fresh = append(fresh, r)
		}
	}
	// Keep the affinity owner first; order the rest by load. Without an
	// address every position orders by load (pure least-loaded).
	tail := fresh
	var head []*Replica
	if address != "" && len(fresh) > 0 {
		head, tail = fresh[:1], fresh[1:]
	}
	// The fallback tier deliberately orders by measured queue depth —
	// the one knowingly nondeterministic routing input (DESIGN.md §14).
	sort.SliceStable(tail, func(i, j int) bool {
		si, sj := tail[i].score(), tail[j].score()
		if si != sj {
			return si < sj
		}
		return tail[i].Base < tail[j].Base
	})
	out := append(head, tail...)
	return append(out, stale...)
}

// OnSuccess records a successful exchange with the replica: failures
// and quarantine clear immediately (a live response is a better probe
// than any poll).
func (p *Pool) OnSuccess(r *Replica) {
	r.mu.Lock()
	wasDown := !r.healthy
	r.healthy = true
	r.fails = 0
	r.quarantinedUntil = 0
	r.lastErr = ""
	r.mu.Unlock()
	if wasDown {
		r.gUp.Set(1)
	}
}

// OnTransportError records a failed exchange: the replica is
// quarantined behind an exponential backoff window (base doubling per
// consecutive failure, capped), and rejoins when a poll-probe or a
// routed request succeeds.
func (p *Pool) OnTransportError(r *Replica, err error) {
	now := p.now()
	r.mu.Lock()
	r.fails++
	r.healthy = false
	window := p.qBase << (r.fails - 1)
	if window > p.qMax || window <= 0 {
		window = p.qMax
	}
	r.quarantinedUntil = now + window
	if err != nil {
		r.lastErr = err.Error()
	}
	r.mu.Unlock()
	r.gUp.Set(0)
}

// OnOverload records a 503 from the replica: it is deprioritized (not
// quarantined — it is alive and shedding load as configured) for
// retryAfterSec seconds.
func (p *Pool) OnOverload(r *Replica, retryAfterSec int) {
	if retryAfterSec < 1 {
		retryAfterSec = 1
	}
	now := p.now()
	r.mu.Lock()
	until := now + int64(retryAfterSec)*1e9
	if until > r.overloadedUntil {
		r.overloadedUntil = until
	}
	r.mu.Unlock()
}

// RetryAfterSec suggests a client backoff when no replica accepted a
// submission: the soonest expiry among quarantine and overload windows,
// clamped to [1, 30] seconds.
func (p *Pool) RetryAfterSec() int {
	now := p.now()
	var soonest int64
	for _, r := range p.replicas {
		r.mu.Lock()
		until := r.overloadedUntil
		if r.quarantinedUntil > until {
			until = r.quarantinedUntil
		}
		r.mu.Unlock()
		if until > now && (soonest == 0 || until < soonest) {
			soonest = until
		}
	}
	if soonest == 0 {
		return 1
	}
	sec := (soonest - now + 1e9 - 1) / 1e9
	if sec < 1 {
		sec = 1
	}
	if sec > 30 {
		sec = 30
	}
	return int(sec)
}

// replicaMetrics is the slice of fdaserve's GET /v1/metrics payload the
// load tracker consumes.
type replicaMetrics struct {
	Replica string `json:"replica"`
	Jobs    struct {
		Queued  int64 `json:"queued"`
		Running int64 `json:"running"`
	} `json:"jobs"`
	Admission struct {
		InFlight int64 `json:"in_flight"`
		MaxQueue int64 `json:"max_queue"`
		Draining bool  `json:"draining"`
	} `json:"admission"`
}

// Poll refreshes every replica's health and load from its /v1/metrics
// endpoint. Healthy replicas are polled unconditionally; quarantined
// ones only once their backoff window has elapsed (the poll doubles as
// the rejoin probe — success clears the quarantine, failure doubles
// it). Polls run concurrently; Poll returns when all complete.
func (p *Pool) Poll(ctx context.Context) {
	var wg sync.WaitGroup
	now := p.now()
	for _, r := range p.replicas {
		r.mu.Lock()
		probe := r.healthy || now >= r.quarantinedUntil
		r.mu.Unlock()
		if !probe {
			continue
		}
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			p.pollOne(ctx, r)
		}(r)
	}
	wg.Wait()
}

func (p *Pool) pollOne(ctx context.Context, r *Replica) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.Base+"/v1/metrics", nil)
	if err != nil {
		p.OnTransportError(r, err)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.OnTransportError(r, err)
		return
	}
	defer resp.Body.Close()
	var m replicaMetrics
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		p.OnTransportError(r, fmt.Errorf("poll %s/v1/metrics: status %d", r.Base, resp.StatusCode))
		return
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&m); err != nil {
		p.OnTransportError(r, fmt.Errorf("poll %s/v1/metrics: %w", r.Base, err))
		return
	}
	p.OnSuccess(r)
	r.mu.Lock()
	if m.Replica != "" {
		r.name = m.Replica
	}
	r.load = m.Jobs.Queued + m.Jobs.Running
	r.inflight = m.Admission.InFlight
	r.maxQueue = m.Admission.MaxQueue
	r.draining = m.Admission.Draining
	load := r.load
	r.mu.Unlock()
	r.gLoad.Set(float64(load))
	r.gDispatched.Set(float64(r.dispatched.Load()))
}

// Views snapshots every replica's state in configured order.
func (p *Pool) Views() []View {
	now := p.now()
	out := make([]View, 0, len(p.replicas))
	for _, r := range p.replicas {
		r.mu.Lock()
		v := View{
			Name:        r.name,
			Base:        r.Base,
			Prefix:      r.prefix,
			Healthy:     r.healthy,
			Draining:    r.draining,
			Quarantined: !r.healthy && now < r.quarantinedUntil,
			Overloaded:  now < r.overloadedUntil,
			Load:        r.load,
			InFlight:    r.inflight,
			MaxQueue:    r.maxQueue,
			LastError:   r.lastErr,
		}
		if v.Name == "" {
			v.Name = r.Base
		}
		r.mu.Unlock()
		v.Dispatched = r.dispatched.Load()
		out = append(out, v)
	}
	return out
}
