package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// stubReplica is a minimal fdaserve stand-in: it accepts submissions,
// serves id-scoped reads, and can be flipped into overload (503) or
// dead (connection reset) states.
type stubReplica struct {
	ts       *httptest.Server
	submits  atomic.Int64
	overload atomic.Bool
	dead     atomic.Bool
}

func newStubReplica(t *testing.T, name string) *stubReplica {
	t.Helper()
	s := &stubReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/train", func(w http.ResponseWriter, r *http.Request) {
		if s.overload.Load() {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"at capacity"}`)
			return
		}
		n := s.submits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"r%d","kind":"train","status":"running","replica":%q}`+"\n", n, name)
	})
	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `[{"id":"r1","status":"done","replica":%q}]`, name)
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"status":"done","replica":%q}`+"\n", r.PathValue("id"), name)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"replica":%q,"jobs":{"queued":0,"running":0},"admission":{"in_flight":0,"max_queue":0,"draining":false}}`, name)
	})
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.dead.Load() {
			// Simulate a killed process: reset the connection without a
			// response, which the gateway sees as a transport error.
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
			panic("stub cannot hijack")
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func testGateway(t *testing.T, clk *fakeClock, stubs ...*stubReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	bases := make([]string, len(stubs))
	for i, s := range stubs {
		bases[i] = s.ts.URL
	}
	pool, err := NewPool(bases, Options{Now: clk.clock()})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(pool, GatewayOptions{Now: clk.clock()})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

func stubByBase(stubs []*stubReplica, base string) *stubReplica {
	for _, s := range stubs {
		if s.ts.URL == base {
			return s
		}
	}
	return nil
}

const trainBody = `{"model":"lenet5s","strategy":"LinearFDA","steps":20}`

func postTrain(t *testing.T, url string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url+"/v1/train", "application/json", strings.NewReader(trainBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	b, _ := io.ReadAll(resp.Body)
	if len(b) > 0 {
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("bad response body %q: %v", b, err)
		}
	}
	return resp, m
}

func TestGatewayRoutesSubmissionToAffinityOwner(t *testing.T) {
	clk := &fakeClock{}
	stubs := []*stubReplica{newStubReplica(t, "a"), newStubReplica(t, "b"), newStubReplica(t, "c")}
	gw, ts := testGateway(t, clk, stubs...)

	addr, ok := AffinityAddress("train", []byte(trainBody))
	if !ok {
		t.Fatal("train body carries no affinity")
	}
	owner := gw.Pool().Rank(addr)[0]

	resp, m := postTrain(t, ts.URL)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ownerStub := stubByBase(stubs, owner.Base)
	if got := ownerStub.submits.Load(); got != 1 {
		t.Fatalf("affinity owner received %d submissions, want 1", got)
	}
	var id string
	if err := json.Unmarshal(m["id"], &id); err != nil || !strings.HasPrefix(id, owner.Prefix()+"-") {
		t.Fatalf("id %q not namespaced with owner prefix %q", id, owner.Prefix())
	}
	// Resubmission routes to the same owner — the cache-affinity
	// property that turns dedupe hits into actual hits.
	for i := 0; i < 5; i++ {
		postTrain(t, ts.URL)
	}
	if got := ownerStub.submits.Load(); got != 6 {
		t.Fatalf("owner received %d of 6 submissions", got)
	}

	// The id round-trips: a status poll for the namespaced id reaches
	// the owner and comes back re-namespaced.
	resp2, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var v struct {
		ID      string `json:"id"`
		Replica string `json:"replica"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.ID != id {
		t.Fatalf("poll id %q, want %q", v.ID, id)
	}
	if base := stubByBase(stubs, owner.Base); base == nil || v.Replica == "" {
		t.Fatalf("poll did not reach a replica: %+v", v)
	}
}

func TestGatewayFailsOverOn503(t *testing.T) {
	clk := &fakeClock{}
	stubs := []*stubReplica{newStubReplica(t, "a"), newStubReplica(t, "b")}
	gw, ts := testGateway(t, clk, stubs...)

	addr, _ := AffinityAddress("train", []byte(trainBody))
	owner := gw.Pool().Rank(addr)[0]
	stubByBase(stubs, owner.Base).overload.Store(true)

	resp, m := postTrain(t, ts.URL)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202 via fallback", resp.StatusCode)
	}
	var id string
	json.Unmarshal(m["id"], &id)
	other := gw.Pool().Rank(addr)[1]
	if !strings.HasPrefix(id, other.Prefix()+"-") {
		t.Fatalf("id %q not served by fallback replica %q", id, other.Prefix())
	}
	// The owner sits in an overload window now: the next submission goes
	// straight to the fallback without re-hammering it.
	before := stubByBase(stubs, owner.Base).submits.Load()
	postTrain(t, ts.URL)
	if got := stubByBase(stubs, owner.Base).submits.Load(); got != before {
		t.Fatal("overloaded owner was re-attempted inside its Retry-After window")
	}
}

func TestGatewayRoutesAroundDeadReplicaAndRejoins(t *testing.T) {
	clk := &fakeClock{}
	stubs := []*stubReplica{newStubReplica(t, "a"), newStubReplica(t, "b")}
	gw, ts := testGateway(t, clk, stubs...)

	addr, _ := AffinityAddress("train", []byte(trainBody))
	owner := gw.Pool().Rank(addr)[0]
	ownerStub := stubByBase(stubs, owner.Base)
	ownerStub.dead.Store(true)

	resp, _ := postTrain(t, ts.URL)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202 via survivor", resp.StatusCode)
	}
	if owner.available() {
		t.Fatal("dead replica not quarantined after transport error")
	}

	// Recovery: the replica comes back, its backoff window elapses, and
	// the poll probe reinstates it.
	ownerStub.dead.Store(false)
	clk.advance(60e9)
	gw.Pool().Poll(t.Context())
	if !owner.available() {
		t.Fatal("recovered replica not reinstated by poll probe")
	}
	before := ownerStub.submits.Load()
	postTrain(t, ts.URL)
	if ownerStub.submits.Load() != before+1 {
		t.Fatal("affinity traffic did not return to the recovered owner")
	}
}

func TestGatewayDegradesWith503WhenClusterDown(t *testing.T) {
	clk := &fakeClock{}
	stubs := []*stubReplica{newStubReplica(t, "a"), newStubReplica(t, "b")}
	_, ts := testGateway(t, clk, stubs...)
	for _, s := range stubs {
		s.dead.Store(true)
	}
	// First submission discovers both replicas dead (transport errors);
	// it must come back as a 503 with a Retry-After, not hang or 502.
	resp, _ := postTrain(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Second submission finds them quarantined: same contract.
	resp, _ = postTrain(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d (Retry-After %q), want 503 with hint", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestGatewayAdmissionGate(t *testing.T) {
	clk := &fakeClock{}
	stub := newStubReplica(t, "a")
	pool, err := NewPool([]string{stub.ts.URL}, Options{Now: clk.clock()})
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(pool, GatewayOptions{Now: clk.clock(), MaxPending: 1})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	// Occupy the single admission slot; the next submission must be
	// refused at the gate, before any replica is contacted.
	gw.pending <- struct{}{}
	resp, _ := postTrain(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 from the gateway gate", resp.StatusCode)
	}
	if stub.submits.Load() != 0 {
		t.Fatal("gated submission still reached the replica")
	}
	<-gw.pending
	if resp, _ := postTrain(t, ts.URL); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d after gate freed, want 202", resp.StatusCode)
	}
}

func TestGatewayMergesRunListings(t *testing.T) {
	clk := &fakeClock{}
	stubs := []*stubReplica{newStubReplica(t, "a"), newStubReplica(t, "b")}
	gw, ts := testGateway(t, clk, stubs...)

	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("merged %d runs, want 2", len(views))
	}
	seen := map[string]bool{}
	for _, v := range views {
		i := strings.IndexByte(v.ID, '-')
		if i < 0 || gw.Pool().ByPrefix(v.ID[:i]) == nil {
			t.Fatalf("merged id %q not namespaced", v.ID)
		}
		seen[v.ID[:i]] = true
	}
	if len(seen) != 2 {
		t.Fatalf("listing did not cover both replicas: %v", seen)
	}

	// One replica down: the listing stays partial, not failed.
	stubs[0].dead.Store(true)
	resp2, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Fdagate-Partial") == "" {
		t.Fatalf("degraded listing: status %d, partial header %q", resp2.StatusCode, resp2.Header.Get("X-Fdagate-Partial"))
	}
}

func TestRewriteIDPreservesFieldBytes(t *testing.T) {
	// Every field except id must pass through byte-for-byte — the
	// property behind the routing-parity guarantee. Note 1e-7: a decode
	// into float64 would re-encode differently; RawMessage must not.
	body := []byte(`{"accuracy":0.9000000000000001,"id":"r3","loss":1e-7,"nested":{"z":1,"a":2}}`)
	out := rewriteID(body, "abc123")
	var m map[string]json.RawMessage
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["id"]) != `"abc123-r3"` {
		t.Fatalf("id = %s", m["id"])
	}
	if string(m["accuracy"]) != "0.9000000000000001" || string(m["loss"]) != "1e-7" {
		t.Fatalf("float bytes mangled: accuracy=%s loss=%s", m["accuracy"], m["loss"])
	}
	if string(m["nested"]) != `{"z":1,"a":2}` {
		t.Fatalf("nested object bytes mangled: %s", m["nested"])
	}
	// Bodies without a string id pass through untouched.
	for _, raw := range []string{`[1,2,3]`, `{"id":7}`, `plain`} {
		if got := rewriteID([]byte(raw), "abc123"); string(got) != raw {
			t.Fatalf("rewriteID(%q) = %q, want passthrough", raw, got)
		}
	}
}
