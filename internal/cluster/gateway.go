package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Gateway is the fdagate HTTP front-end: it proxies the full fdaserve
// v1 API across the pool's replicas. Job ids are namespaced with the
// owning replica's prefix ("<prefix>-r3"), so id-scoped requests route
// statelessly — the gateway keeps no job table and survives restarts
// without losing track of anything.
//
// Overload degrades explicitly, never by timeout: a submission that
// finds no available replica, or that exhausts its candidates on 503s,
// is answered 503 with a Retry-After derived from the pool's windows;
// the bounded admission gate in front caps how many proxied
// submissions may be outstanding at once.
type Gateway struct {
	pool *Pool
	// client executes proxied requests; it must NOT carry a global
	// timeout (the SSE proxy streams indefinitely) — per-attempt
	// deadlines come from the incoming request context.
	client  *http.Client
	now     Clock
	version string
	// pending is the bounded admission gate for proxied submissions.
	pending chan struct{}

	mSubmit    *obs.Counter // routed via the affinity owner
	mFallback  *obs.Counter // routed via the least-loaded fallback
	mRetries   *obs.Counter
	mRejGate   *obs.Counter // rejected at the gateway admission gate
	mRejDown   *obs.Counter // rejected: no available replica
	mRejUp     *obs.Counter // rejected: every candidate answered 503
	httpRoutes sync.Map     // route pattern -> *gwTele
}

// GatewayOptions configures a Gateway.
type GatewayOptions struct {
	// Client executes proxied requests. It must not set a global
	// timeout (SSE streams through it); defaults to a fresh
	// http.Client with a large connection pool.
	Client *http.Client
	// Now is the monotonic clock; defaults to the pool's.
	Now Clock
	// MaxPending bounds concurrently proxied submissions; beyond it new
	// submissions are answered 503 immediately. Default 1024.
	MaxPending int
	// Version is reported by GET /v1/version.
	Version string
}

// NewGateway builds the gateway over a pool.
func NewGateway(pool *Pool, opt GatewayOptions) *Gateway {
	if opt.Client == nil {
		opt.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1 << 12,
			MaxIdleConnsPerHost: 1 << 12,
		}}
	}
	if opt.Now == nil {
		opt.Now = pool.now
	}
	if opt.MaxPending <= 0 {
		opt.MaxPending = 1024
	}
	if opt.Version == "" {
		opt.Version = "fdagate"
	}
	return &Gateway{
		pool:    pool,
		client:  opt.Client,
		now:     opt.Now,
		version: opt.Version,
		pending: make(chan struct{}, opt.MaxPending),
		mSubmit: obs.Default.Counter("fdagate_submissions_total",
			"Submissions routed to their cache-affinity owner.", "route", "affinity"),
		mFallback: obs.Default.Counter("fdagate_submissions_total",
			"Submissions routed by least-loaded fallback.", "route", "fallback"),
		mRetries: obs.Default.Counter("fdagate_proxy_retries_total",
			"Submission attempts retried on another replica after a failure or 503."),
		mRejGate: obs.Default.Counter("fdagate_rejected_total",
			"Submissions rejected by the gateway admission gate.", "reason", "gateway_full"),
		mRejDown: obs.Default.Counter("fdagate_rejected_total",
			"Submissions rejected because no replica was available.", "reason", "no_replica"),
		mRejUp: obs.Default.Counter("fdagate_rejected_total",
			"Submissions rejected after every candidate replica answered 503.", "reason", "upstream_full"),
	}
}

// Pool returns the gateway's replica pool.
func (g *Gateway) Pool() *Pool { return g.pool }

// Handler builds the gateway's route table. Every fdaserve v1 endpoint
// is covered; /metrics and /v1/cluster are gateway-local.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Default.WritePrometheus(w); err != nil {
			return
		}
		_ = obs.WriteRuntimeMetrics(w)
	})
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /v1/cluster", g.handleCluster)
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": g.version, "role": "gateway"})
	})
	mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", g.proxyAny)
	mux.HandleFunc("GET /v1/store", g.proxyAny)
	mux.HandleFunc("GET /v1/runs", g.handleListRuns)
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) { g.handleSubmit(w, r, "sweep") })
	mux.HandleFunc("POST /v1/train", func(w http.ResponseWriter, r *http.Request) { g.handleSubmit(w, r, "train") })
	mux.HandleFunc("GET /v1/runs/{id}", g.handleByID)
	mux.HandleFunc("DELETE /v1/runs/{id}", g.handleByID)
	mux.HandleFunc("GET /v1/runs/{id}/events", g.handleByID)
	mux.HandleFunc("GET /v1/runs/{id}/records", g.handleByID)
	mux.HandleFunc("GET /v1/runs/{id}/output", g.handleByID)
	return g.instrument(mux)
}

// gwTele caches one route's metric handles (same idiom as fdaserve's
// middleware).
type gwTele struct {
	seconds *obs.Histogram
	byCode  sync.Map // status code (int) -> *obs.Counter
}

func (g *Gateway) teleFor(route string) *gwTele {
	if t, ok := g.httpRoutes.Load(route); ok {
		return t.(*gwTele)
	}
	t := &gwTele{seconds: obs.Default.Histogram("fdagate_http_request_seconds",
		"Gateway request latency by route pattern.", obs.Seconds, "route", route)}
	actual, _ := g.httpRoutes.LoadOrStore(route, t)
	return actual.(*gwTele)
}

func (t *gwTele) counter(route string, code int) *obs.Counter {
	if c, ok := t.byCode.Load(code); ok {
		return c.(*obs.Counter)
	}
	c := obs.Default.Counter("fdagate_http_requests_total",
		"Gateway requests by route pattern and status code.", "route", route, "code", strconv.Itoa(code))
	actual, _ := t.byCode.LoadOrStore(code, c)
	return actual.(*obs.Counter)
}

type gwStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *gwStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *gwStatusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *gwStatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with per-route latency histograms and
// status counters under the fdagate_http_* families.
func (g *Gateway) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := g.now()
		sw := &gwStatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "(unmatched)"
		}
		t := g.teleFor(route)
		t.seconds.Observe(g.now() - start)
		t.counter(route, sw.status).Inc()
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	views := g.pool.Views()
	up := 0
	for _, v := range views {
		if v.Healthy && !v.Draining {
			up++
		}
	}
	status := "ok"
	if up == 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"role":     "gateway",
		"version":  g.version,
		"replicas": len(views),
		"up":       up,
	})
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas":    g.pool.Views(),
		"max_pending": cap(g.pending),
		"pending":     len(g.pending),
	})
}

// clusterMetrics is the GET /v1/metrics aggregate: replica job counts
// summed across the pool plus the gateway's own telemetry snapshot.
type clusterMetrics struct {
	Jobs struct {
		Queued    int64 `json:"queued"`
		Running   int64 `json:"running"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Cancelled int64 `json:"cancelled"`
		Total     int64 `json:"total"`
	} `json:"jobs"`
	Replicas  []View             `json:"replicas"`
	Telemetry obs.Snap           `json:"telemetry"`
	Runtime   map[string]float64 `json:"runtime"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m clusterMetrics
	type counts struct {
		Jobs struct {
			Queued, Running, Done, Failed, Cancelled, Total int64
		} `json:"jobs"`
	}
	replicas := g.pool.Replicas()
	views := make([]counts, len(replicas))
	var wg sync.WaitGroup
	for i, rep := range replicas {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rep.Base+"/v1/metrics", nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			_ = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&views[i])
		}(i, rep)
	}
	wg.Wait()
	for _, v := range views {
		m.Jobs.Queued += v.Jobs.Queued
		m.Jobs.Running += v.Jobs.Running
		m.Jobs.Done += v.Jobs.Done
		m.Jobs.Failed += v.Jobs.Failed
		m.Jobs.Cancelled += v.Jobs.Cancelled
		m.Jobs.Total += v.Jobs.Total
	}
	m.Replicas = g.pool.Views()
	m.Telemetry = obs.Default.Snapshot()
	m.Runtime = obs.RuntimeSample()
	writeJSON(w, http.StatusOK, m)
}

// handleSubmit routes a submission: content-address the body, walk the
// candidate replicas (affinity owner first, then least-loaded), retry
// transport failures and 503s on the next candidate, and namespace the
// created job's id with the serving replica's prefix.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request, kind string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	select {
	case g.pending <- struct{}{}:
		defer func() { <-g.pending }()
	default:
		g.mRejGate.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(g.pool.RetryAfterSec()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":       fmt.Sprintf("gateway at capacity: %d submissions pending (max %d); retry later", cap(g.pending), cap(g.pending)),
			"max_pending": cap(g.pending),
		})
		return
	}

	address, hasAffinity := AffinityAddress(kind, body)
	candidates := g.pool.Candidates(address)
	if len(candidates) == 0 {
		g.mRejDown.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(g.pool.RetryAfterSec()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no replica available; retry later",
		})
		return
	}

	upstreamFull := false
	for i, rep := range candidates {
		if i > 0 {
			g.mRetries.Inc()
		}
		resp, rbody, err := g.forward(r, rep, r.URL.Path, body)
		if err != nil {
			g.pool.OnTransportError(rep, err)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			g.pool.OnOverload(rep, retryAfterOf(resp))
			upstreamFull = true
			continue
		}
		g.pool.OnSuccess(rep)
		if hasAffinity && i == 0 {
			g.mSubmit.Inc()
		} else {
			g.mFallback.Inc()
		}
		g.respond(w, resp, rewriteID(rbody, rep.prefix), rep)
		return
	}
	if upstreamFull {
		g.mRejUp.Inc()
	} else {
		g.mRejDown.Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(g.pool.RetryAfterSec()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": "cluster at capacity: every candidate replica refused the submission; retry later",
	})
}

// handleByID routes an id-scoped request ("<prefix>-<id>") to the
// owning replica. The events endpoint streams; everything else buffers
// and rewrites the id.
func (g *Gateway) handleByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, upstream, ok := g.pool.SplitID(id)
	if !ok {
		writeJSONError(w, http.StatusNotFound, "no such run (unknown replica prefix in id "+strconv.Quote(id)+")")
		return
	}
	suffix := ""
	if i := strings.Index(r.URL.Path, id); i >= 0 {
		suffix = r.URL.Path[i+len(id):]
	}
	path := "/v1/runs/" + upstream + suffix

	if strings.HasSuffix(suffix, "/events") {
		g.stream(w, r, rep, path)
		return
	}
	resp, rbody, err := g.forward(r, rep, path, nil)
	if err != nil {
		g.pool.OnTransportError(rep, err)
		w.Header().Set("Retry-After", strconv.Itoa(g.pool.RetryAfterSec()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": fmt.Sprintf("replica %s unreachable; retry later", rep.Name()),
		})
		return
	}
	g.pool.OnSuccess(rep)
	if strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		rbody = rewriteID(rbody, rep.prefix)
	}
	g.respond(w, resp, rbody, rep)
}

// handleListRuns merges every replica's run listing, ids namespaced.
// Unreachable replicas contribute nothing (their jobs reappear when
// they rejoin); the X-Fdagate-Partial header names them so a consumer
// can tell a complete listing from a degraded one.
func (g *Gateway) handleListRuns(w http.ResponseWriter, r *http.Request) {
	replicas := g.pool.Replicas()
	lists := make([][]map[string]json.RawMessage, len(replicas))
	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, rep := range replicas {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			resp, rbody, err := g.forward(r, rep, "/v1/runs", nil)
			if err != nil {
				g.pool.OnTransportError(rep, err)
				errs[i] = err
				return
			}
			g.pool.OnSuccess(rep)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var views []map[string]json.RawMessage
			if err := json.Unmarshal(rbody, &views); err != nil {
				errs[i] = err
				return
			}
			for _, v := range views {
				rewriteIDField(v, rep.prefix)
			}
			lists[i] = views
		}(i, rep)
	}
	wg.Wait()
	merged := []map[string]json.RawMessage{}
	var partial []string
	for i := range replicas {
		if errs[i] != nil {
			partial = append(partial, replicas[i].Name())
			continue
		}
		merged = append(merged, lists[i]...)
	}
	if len(partial) > 0 {
		w.Header().Set("X-Fdagate-Partial", strings.Join(partial, ","))
	}
	writeJSON(w, http.StatusOK, merged)
}

// proxyAny serves a replica-agnostic read (store catalog, experiment
// index — both identical across replicas sharing the store) from the
// least-loaded available replica, falling through the candidate order
// on failure.
func (g *Gateway) proxyAny(w http.ResponseWriter, r *http.Request) {
	candidates := g.pool.Candidates("")
	if len(candidates) == 0 {
		// Every replica is quarantined or draining: reads are harmless,
		// so fall back to trying the full set rather than refusing.
		candidates = g.pool.Replicas()
	}
	for _, rep := range candidates {
		resp, rbody, err := g.forward(r, rep, r.URL.Path, nil)
		if err != nil {
			g.pool.OnTransportError(rep, err)
			continue
		}
		g.pool.OnSuccess(rep)
		g.respond(w, resp, rbody, rep)
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(g.pool.RetryAfterSec()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": "no replica reachable; retry later",
	})
}

// forward proxies one buffered exchange to a replica: same method,
// given path, optional body. The response body is fully read (capped)
// and the response returned with its status and headers intact.
func (g *Gateway) forward(r *http.Request, rep *Replica, path string, body []byte) (*http.Response, []byte, error) {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.Base+path, reader)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rep.dispatched.Add(1)
	defer rep.dispatched.Add(-1)
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	rbody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, nil, err
	}
	return resp, rbody, nil
}

// stream proxies a streaming endpoint (SSE events): headers through,
// every chunk flushed as it arrives. Event payload ids are
// replica-local; the X-Fdagate-Replica header names the origin.
func (g *Gateway) stream(w http.ResponseWriter, r *http.Request, rep *Replica, path string) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.Base+path, nil)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	rep.dispatched.Add(1)
	defer rep.dispatched.Add(-1)
	resp, err := g.client.Do(req)
	if err != nil {
		g.pool.OnTransportError(rep, err)
		w.Header().Set("Retry-After", strconv.Itoa(g.pool.RetryAfterSec()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": fmt.Sprintf("replica %s unreachable; retry later", rep.Name()),
		})
		return
	}
	defer resp.Body.Close()
	g.pool.OnSuccess(rep)
	copyProxyHeaders(w, resp, rep)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// respond relays a buffered upstream response.
func (g *Gateway) respond(w http.ResponseWriter, resp *http.Response, body []byte, rep *Replica) {
	copyProxyHeaders(w, resp, rep)
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

func copyProxyHeaders(w http.ResponseWriter, resp *http.Response, rep *Replica) {
	for _, k := range []string{"Content-Type", "Cache-Control", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Fdagate-Replica", rep.prefix)
}

// rewriteID namespaces the "id" field of a JSON object body with the
// replica prefix. Field values are preserved byte-for-byte (raw
// messages), so job records pass through the gateway bit-identical to
// a direct fetch — only the id and the (deterministically sorted)
// top-level key order change. Non-object or id-less bodies pass
// through untouched.
func rewriteID(body []byte, prefix string) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil || m["id"] == nil {
		return body
	}
	if !rewriteIDField(m, prefix) {
		return body
	}
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return append(out, '\n')
}

// rewriteIDField namespaces m["id"] in place; reports whether the
// field was a string id.
func rewriteIDField(m map[string]json.RawMessage, prefix string) bool {
	raw, ok := m["id"]
	if !ok {
		return false
	}
	var id string
	if err := json.Unmarshal(raw, &id); err != nil || id == "" {
		return false
	}
	q, err := json.Marshal(prefix + "-" + id)
	if err != nil {
		return false
	}
	m["id"] = q
	return true
}

func retryAfterOf(resp *http.Response) int {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 1
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
