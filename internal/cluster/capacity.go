package cluster

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/obs"
	"repro/internal/workload"
)

// The cluster saturation analyzer: fold per-cluster-size fdaload -ramp
// reports into one capacity report. Each input series is a ramp driven
// through fdagate against N replicas sharing one store; the analyzer
// extracts each series' saturation knee, peak achieved throughput,
// rejection rate and (when replica telemetry snapshots are supplied)
// worst queue-wait p99, and expresses scaling as speedup over the
// smallest series. The output is benchjson-compatible — BENCH_PR10.json
// is one of these — so existing tooling reads the throughput series
// unchanged.

// CapacitySeries is one measured throughput series: a fdaload -ramp
// report captured against a cluster of Replicas fdaserve processes.
type CapacitySeries struct {
	Replicas int             `json:"replicas"`
	Report   workload.Report `json:"report"`
	// Snaps optionally carries each replica's /v1/metrics telemetry
	// snapshot taken after the ramp; the analyzer mines them for the
	// fdaserve_job_queue_wait_seconds p99.
	Snaps []obs.Snap `json:"-"`
}

// CapacitySummary is one series' distilled capacity figures.
type CapacitySummary struct {
	Replicas int `json:"replicas"`
	// SaturationRPS is the offered rate at the series' knee — the
	// highest ramp level sustained with ≥90% achieved throughput and
	// zero errors (workload.Knee).
	SaturationRPS float64 `json:"saturation_rps"`
	// PeakAchievedRPS is the best achieved throughput at any level,
	// sustained or not.
	PeakAchievedRPS float64 `json:"peak_achieved_rps"`
	// Speedup is SaturationRPS over the baseline series'. The baseline
	// (smallest replica count, normally 1) reports 1.
	Speedup float64 `json:"speedup"`
	// Issued/OK/Rejected/Errors total the whole ramp. Rejections are
	// shed load (503 + Retry-After) — the overload design degrades with
	// rejections, never with timeouts or errors.
	Issued        int64   `json:"issued"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	RejectionRate float64 `json:"rejection_rate"`
	// QueueWaitP99Ms is the worst per-replica job queue-wait p99 across
	// the supplied telemetry snapshots (0 when none were supplied).
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms,omitempty"`
}

// CapacityReport is the analyzer's output document. The
// goos/goarch/env/benchmarks keys mirror benchjson (one benchmark per
// series, op "Cluster/replicas=N"), so BENCH_*.json tooling consumes it
// unchanged; Series carries the same figures in a typed shape.
type CapacityReport struct {
	GoOS       string               `json:"goos,omitempty"`
	GoArch     string               `json:"goarch,omitempty"`
	Env        workload.Env         `json:"env"`
	Series     []CapacitySummary    `json:"series"`
	Benchmarks []workload.Benchmark `json:"benchmarks"`
}

// BuildCapacityReport assembles the capacity report from one or more
// ramp series. Series are ordered by replica count; the smallest is the
// speedup baseline. Errors when no series is given or a replica count
// repeats.
func BuildCapacityReport(series []CapacitySeries) (CapacityReport, error) {
	if len(series) == 0 {
		return CapacityReport{}, fmt.Errorf("no capacity series")
	}
	ordered := append([]CapacitySeries(nil), series...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Replicas < ordered[j].Replicas })
	for i, s := range ordered {
		if s.Replicas <= 0 {
			return CapacityReport{}, fmt.Errorf("series %d: replica count must be positive, got %d", i, s.Replicas)
		}
		if i > 0 && ordered[i-1].Replicas == s.Replicas {
			return CapacityReport{}, fmt.Errorf("duplicate series for %d replicas", s.Replicas)
		}
	}

	rep := CapacityReport{
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Env: workload.EnvMeta(),
	}
	var baseline float64
	for i, s := range ordered {
		sum := summarize(s)
		if i == 0 {
			baseline = sum.SaturationRPS
		}
		if baseline > 0 {
			sum.Speedup = sum.SaturationRPS / baseline
		}
		rep.Series = append(rep.Series, sum)
		rep.Benchmarks = append(rep.Benchmarks, workload.Benchmark{
			Op:         fmt.Sprintf("Cluster/replicas=%d", sum.Replicas),
			Iterations: sum.Issued,
			Metrics: map[string]float64{
				"saturation_rps":    sum.SaturationRPS,
				"peak_achieved_rps": sum.PeakAchievedRPS,
				"speedup":           sum.Speedup,
				"rejection_rate":    sum.RejectionRate,
				"queue_wait_p99_ms": sum.QueueWaitP99Ms,
				"ok":                float64(sum.OK),
				"rejected":          float64(sum.Rejected),
				"errors":            float64(sum.Errors),
			},
		})
	}
	return rep, nil
}

// summarize distills one series: knee, peak, ramp-wide totals, and the
// worst replica queue-wait p99.
func summarize(s CapacitySeries) CapacitySummary {
	sum := CapacitySummary{
		Replicas:       s.Replicas,
		SaturationRPS:  s.Report.SaturationRPS,
		QueueWaitP99Ms: QueueWaitP99Ms(s.Snaps...),
	}
	if len(s.Report.Ramp) > 0 {
		if sum.SaturationRPS == 0 {
			if k := workload.Knee(s.Report.Ramp); k >= 0 {
				sum.SaturationRPS = s.Report.Ramp[k].OfferedRPS
			}
		}
		for _, l := range s.Report.Ramp {
			sum.Issued += l.Stats.Issued
			sum.OK += l.Stats.OK
			sum.Rejected += l.Stats.Rejected
			sum.Errors += l.Stats.Errors
			if l.Stats.AchievedRPS > sum.PeakAchievedRPS {
				sum.PeakAchievedRPS = l.Stats.AchievedRPS
			}
		}
	} else {
		st := s.Report.Load
		sum.Issued, sum.OK, sum.Rejected, sum.Errors = st.Issued, st.OK, st.Rejected, st.Errors
		sum.PeakAchievedRPS = st.AchievedRPS
	}
	if sum.Issued > 0 {
		sum.RejectionRate = float64(sum.Rejected) / float64(sum.Issued)
	}
	return sum
}

// QueueWaitP99Ms returns the worst fdaserve_job_queue_wait_seconds p99
// across the given telemetry snapshots, in milliseconds (0 when absent:
// the queue-wait histogram reports seconds — obs.Seconds scale).
func QueueWaitP99Ms(snaps ...obs.Snap) float64 {
	var worst float64
	for _, s := range snaps {
		for _, h := range s.Histograms {
			if h.Name == "fdaserve_job_queue_wait_seconds" && h.P99*1e3 > worst {
				worst = h.P99 * 1e3
			}
		}
	}
	return worst
}
