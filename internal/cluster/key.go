// Package cluster is the scale-out serving layer (DESIGN.md §14): a
// replica pool with cache-affinity routing, the fdagate HTTP gateway
// that proxies the fdaserve v1 API across N replicas sharing one
// content-addressed runstore, and the cluster saturation analyzer that
// folds per-replica ramp reports into a single capacity report.
//
// Routing is two-tier. Submissions (train jobs, sweeps) are
// content-addressed — the canonical dedupe key of the spec, hashed with
// SHA-256 exactly like runstore addresses its run specs — and routed
// rendezvous-hash-style by that address, so a resubmission of an
// identical spec lands on the replica that already owns the job (or its
// warm-start snapshots) no matter which gateway instance routes it.
// When the affinity owner is quarantined, draining or overloaded, a
// least-loaded fallback picks the shallowest queue among the survivors;
// cached reads may be served by any replica because the store is
// shared. The affinity function is a pure function of (spec, replica
// set) — the package is inside fdavet's deterministic-lint scope, and
// only the explicitly annotated health/load trackers depend on
// measured state.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/models"
)

// TrainSpec mirrors fdaserve's POST /v1/train body (cmd/fdaserve
// train.go). The gateway decodes submissions into it to compute the
// same canonical dedupe key the replica will compute, so affinity
// routing and server-side dedupe always agree on what "the same job"
// means.
type TrainSpec struct {
	Model       string  `json:"model"`
	Strategy    string  `json:"strategy"`
	Theta       float64 `json:"theta"`
	Tau         int     `json:"tau"`
	K           int     `json:"k"`
	Batch       int     `json:"batch"`
	Steps       int     `json:"steps"`
	EvalEvery   int     `json:"eval_every"`
	Target      float64 `json:"target"`
	Het         string  `json:"het"`
	Seed        uint64  `json:"seed"`
	Distributed bool    `json:"distributed"`
}

// ApplyDefaults fills the zero-valued optional fields with the server's
// documented defaults, mirroring trainRequest.withDefaults in
// cmd/fdaserve. Two submissions that differ only in spelled-out
// defaults must share one key.
func (t *TrainSpec) ApplyDefaults() {
	if t.Theta == 0 {
		if spec, err := models.ByName(t.Model); err == nil && len(spec.ThetaGrid) > 1 {
			t.Theta = spec.ThetaGrid[1]
		}
	}
	if t.Tau == 0 {
		t.Tau = 10
	}
	if t.K == 0 {
		t.K = 5
	}
	if t.Batch == 0 {
		t.Batch = 32
	}
	if t.Steps == 0 {
		t.Steps = 200
	}
	if t.EvalEvery == 0 {
		t.EvalEvery = 20
	}
	if t.Het == "" {
		t.Het = "iid"
	}
	if t.Seed == 0 {
		t.Seed = 1
	}
}

// Key returns the canonical dedupe key of the spec — the same string
// fdaserve registers the job under. Call ApplyDefaults first when the
// spec came off the wire.
func (t TrainSpec) Key() string {
	key := fmt.Sprintf("train|%s|%s|%g|%d|%d|%d|%d|%d|%g|%s|%d",
		t.Model, t.Strategy, t.Theta, t.Tau, t.K, t.Batch, t.Steps, t.EvalEvery, t.Target, t.Het, t.Seed)
	if t.Distributed {
		// Distributed jobs never share resume checkpoints with local
		// ones, so they dedupe under their own key space.
		key += "|dist"
	}
	return key
}

// SweepSpec mirrors fdaserve's POST /v1/runs body.
type SweepSpec struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
}

// ApplyDefaults fills the server-side defaults (handleSubmit in
// cmd/fdaserve).
func (s *SweepSpec) ApplyDefaults() {
	if s.Scale == "" {
		s.Scale = "quick"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// Key returns the canonical dedupe key of the sweep spec.
func (s SweepSpec) Key() string {
	return fmt.Sprintf("sweep|%s|%s|%d", s.Experiment, s.Scale, s.Seed)
}

// Address content-addresses a canonical job key: hex SHA-256, the same
// scheme runstore uses for run specs. It is the shard key of the
// rendezvous router — equal specs hash to equal addresses on every
// platform, so routing is a pure function of (spec, replica set).
func Address(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// AffinityAddress classifies a raw submission body (the bytes of a
// POST /v1/train or POST /v1/runs request) and returns the content
// address its job will dedupe under. ok is false when the body does
// not decode — such requests carry no affinity and fall through to
// least-loaded routing, where the owning replica will produce the
// authoritative validation error.
func AffinityAddress(kind string, body []byte) (addr string, ok bool) {
	switch kind {
	case "train":
		var t TrainSpec
		if err := json.Unmarshal(body, &t); err != nil || t.Model == "" || t.Strategy == "" {
			return "", false
		}
		t.ApplyDefaults()
		return Address(t.Key()), true
	case "sweep":
		var s SweepSpec
		if err := json.Unmarshal(body, &s); err != nil || s.Experiment == "" {
			return "", false
		}
		s.ApplyDefaults()
		return Address(s.Key()), true
	default:
		return "", false
	}
}
