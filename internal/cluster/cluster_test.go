package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// fakeClock is a manually advanced monotonic clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64       { return c.ns.Load() }
func (c *fakeClock) advance(ns int64) { c.ns.Add(ns) }
func (c *fakeClock) clock() Clock     { return c.now }

func testPool(t *testing.T, clk *fakeClock, bases ...string) *Pool {
	t.Helper()
	p, err := NewPool(bases, Options{Now: clk.clock()})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTrainSpecKeyMatchesDefaults(t *testing.T) {
	// A spec that spells out the defaults and one that leaves them zero
	// must share a key — otherwise gateway affinity and server dedupe
	// would disagree on "the same job".
	short := TrainSpec{Model: "lenet5s", Strategy: "LinearFDA"}
	short.ApplyDefaults()
	long := TrainSpec{
		Model: "lenet5s", Strategy: "LinearFDA", Theta: short.Theta,
		Tau: 10, K: 5, Batch: 32, Steps: 200, EvalEvery: 20, Het: "iid", Seed: 1,
	}
	if short.Key() != long.Key() {
		t.Fatalf("defaulted key %q != spelled-out key %q", short.Key(), long.Key())
	}
	if !strings.HasPrefix(short.Key(), "train|lenet5s|LinearFDA|") {
		t.Fatalf("unexpected key shape %q", short.Key())
	}
	dist := short
	dist.Distributed = true
	if dist.Key() == short.Key() {
		t.Fatal("distributed jobs must dedupe under their own key space")
	}
}

func TestAffinityAddressStability(t *testing.T) {
	// Equivalent bodies (defaults spelled out vs omitted, different key
	// order) must produce one address; undecodable or incomplete bodies
	// must carry no affinity.
	a1, ok1 := AffinityAddress("train", []byte(`{"model":"lenet5s","strategy":"LinearFDA"}`))
	a2, ok2 := AffinityAddress("train", []byte(`{"strategy":"LinearFDA","seed":1,"model":"lenet5s","tau":10}`))
	if !ok1 || !ok2 || a1 != a2 {
		t.Fatalf("equivalent train bodies disagree: %q(%v) vs %q(%v)", a1, ok1, a2, ok2)
	}
	if a1 != Address(func() string {
		s := TrainSpec{Model: "lenet5s", Strategy: "LinearFDA"}
		s.ApplyDefaults()
		return s.Key()
	}()) {
		t.Fatal("AffinityAddress does not match Address(Key())")
	}
	if _, ok := AffinityAddress("train", []byte(`{"strategy":"LinearFDA"}`)); ok {
		t.Fatal("model-less body must not carry affinity")
	}
	if _, ok := AffinityAddress("train", []byte(`not json`)); ok {
		t.Fatal("undecodable body must not carry affinity")
	}
	s1, ok := AffinityAddress("sweep", []byte(`{"experiment":"fig3"}`))
	s2, _ := AffinityAddress("sweep", []byte(`{"experiment":"fig3","scale":"quick","seed":1}`))
	if !ok || s1 != s2 {
		t.Fatalf("equivalent sweep bodies disagree: %q vs %q", s1, s2)
	}
}

func TestRendezvousDeterministicAndBalanced(t *testing.T) {
	clk := &fakeClock{}
	bases := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	p1 := testPool(t, clk, bases...)
	p2 := testPool(t, clk, bases[3], bases[1], bases[0], bases[2]) // reordered

	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		addr := Address(fmt.Sprintf("spec-%d", i))
		o1 := p1.Rank(addr)[0].Base
		o2 := p2.Rank(addr)[0].Base
		if o1 != o2 {
			t.Fatalf("owner depends on configuration order: %s vs %s for %s", o1, o2, addr)
		}
		counts[o1]++
	}
	// Rendezvous hashing over 4 replicas should land near 250 each;
	// anything outside [150, 350] indicates a broken hash.
	for base, n := range counts {
		if n < 150 || n > 350 {
			t.Fatalf("unbalanced ownership: %s owns %d of 1000", base, n)
		}
	}
}

func TestRendezvousMinimalDisruption(t *testing.T) {
	// Removing one replica must only remap the addresses it owned;
	// every other address keeps its owner (the property that makes
	// rendezvous hashing cache-friendly under membership change).
	clk := &fakeClock{}
	all := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	full := testPool(t, clk, all...)
	reduced := testPool(t, clk, all[:3]...)
	moved := 0
	for i := 0; i < 500; i++ {
		addr := Address(fmt.Sprintf("spec-%d", i))
		was := full.Rank(addr)[0].Base
		now := reduced.Rank(addr)[0].Base
		if was == all[3] {
			moved++
			continue // owner removed; must move somewhere
		}
		if was != now {
			t.Fatalf("address %s moved from surviving owner %s to %s", addr, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: removed replica owned nothing")
	}
}

func TestCandidatesAffinityAndLoadOrder(t *testing.T) {
	clk := &fakeClock{}
	p := testPool(t, clk, "http://a:1", "http://b:1", "http://c:1")
	addr := Address("some-spec")
	owner := p.Rank(addr)[0]

	// Give the owner the deepest queue: affinity must still win the
	// first slot (cache hits beat load), with the rest ordered by load.
	for _, r := range p.replicas {
		r.mu.Lock()
		r.load = 1
		r.mu.Unlock()
	}
	owner.mu.Lock()
	owner.load = 100
	owner.mu.Unlock()

	cands := p.Candidates(addr)
	if len(cands) != 3 || cands[0] != owner {
		t.Fatalf("affinity owner not first: got %v", cands)
	}

	// Without an address the ordering is pure least-loaded: the owner
	// (load 100) must now sort last.
	cands = p.Candidates("")
	if cands[len(cands)-1] != owner {
		t.Fatalf("least-loaded fallback ignored load: got %s last, want %s", cands[len(cands)-1].Base, owner.Base)
	}
}

func TestCandidatesOverloadAndQuarantine(t *testing.T) {
	clk := &fakeClock{}
	p := testPool(t, clk, "http://a:1", "http://b:1", "http://c:1")
	addr := Address("spec")
	ranked := p.Rank(addr)
	owner, second := ranked[0], ranked[1]

	// An overloaded owner is deprioritized (but still attempted last).
	p.OnOverload(owner, 2)
	cands := p.Candidates(addr)
	if cands[0] == owner {
		t.Fatal("overloaded owner still leads the candidate list")
	}
	if cands[len(cands)-1] != owner {
		t.Fatal("overloaded owner should remain as the last-resort candidate")
	}
	// The window expires with the clock.
	clk.advance(3e9)
	if cands = p.Candidates(addr); cands[0] != owner {
		t.Fatal("owner did not recover first slot after the overload window")
	}

	// A quarantined replica is excluded entirely.
	p.OnTransportError(second, fmt.Errorf("connection refused"))
	for _, c := range p.Candidates(addr) {
		if c == second {
			t.Fatal("quarantined replica still a candidate")
		}
	}
	// A successful exchange reinstates it immediately.
	p.OnSuccess(second)
	found := false
	for _, c := range p.Candidates(addr) {
		found = found || c == second
	}
	if !found {
		t.Fatal("recovered replica not reinstated")
	}
}

func TestQuarantineBackoffDoubles(t *testing.T) {
	clk := &fakeClock{}
	p, err := NewPool([]string{"http://a:1"}, Options{
		Now: clk.clock(), QuarantineBaseNS: 1e9, QuarantineMaxNS: 8e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := p.Replicas()[0]
	wantWindows := []int64{1e9, 2e9, 4e9, 8e9, 8e9} // doubling, capped
	for i, want := range wantWindows {
		p.OnTransportError(r, fmt.Errorf("down"))
		r.mu.Lock()
		got := r.quarantinedUntil - clk.now()
		r.mu.Unlock()
		if got != want {
			t.Fatalf("failure %d: quarantine window %d, want %d", i+1, got, want)
		}
	}
	if got := p.RetryAfterSec(); got != 8 {
		t.Fatalf("RetryAfterSec = %d, want 8 (soonest window)", got)
	}
	// The window must actually gate polling probes until it elapses.
	if r.available() {
		t.Fatal("quarantined replica reports available")
	}
}

func TestSplitID(t *testing.T) {
	clk := &fakeClock{}
	p := testPool(t, clk, "http://a:1", "http://b:1")
	r := p.Replicas()[0]
	id := r.Prefix() + "-r17"
	got, upstream, ok := p.SplitID(id)
	if !ok || got != r || upstream != "r17" {
		t.Fatalf("SplitID(%q) = %v, %q, %v", id, got, upstream, ok)
	}
	for _, bad := range []string{"", "r17", "ffffff-r17", "-r17", r.Prefix() + "-"} {
		if _, _, ok := p.SplitID(bad); ok {
			t.Fatalf("SplitID(%q) unexpectedly resolved", bad)
		}
	}
}

func TestPollAdoptsReplicaState(t *testing.T) {
	var draining atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"replica":"r-test","jobs":{"queued":2,"running":3},"admission":{"in_flight":5,"max_queue":8,"draining":%v}}`, draining.Load())
	}))
	defer ts.Close()
	clk := &fakeClock{}
	p := testPool(t, clk, ts.URL)
	p.Poll(t.Context())
	v := p.Views()[0]
	if v.Name != "r-test" || v.Load != 5 || v.InFlight != 5 || v.MaxQueue != 8 || v.Draining {
		t.Fatalf("poll state not adopted: %+v", v)
	}
	draining.Store(true)
	p.Poll(t.Context())
	if !p.Views()[0].Draining {
		t.Fatal("draining flag not adopted")
	}
	if got := p.Candidates(""); len(got) != 0 {
		t.Fatalf("draining replica still a candidate: %v", got)
	}
}

func TestCapacityReportSpeedupAndRejection(t *testing.T) {
	mk := func(replicas int, knees ...workload.RampLevel) CapacitySeries {
		rep := workload.BuildReport(nil, workload.RunStats{}, knees)
		return CapacitySeries{Replicas: replicas, Report: rep}
	}
	lvl := func(offered, achieved float64, issued, rejected int64) workload.RampLevel {
		return workload.NewRampLevel(offered, workload.RunStats{
			OfferedRPS: offered, AchievedRPS: achieved, Issued: issued, OK: issued - rejected, Rejected: rejected,
		})
	}
	rep, err := BuildCapacityReport([]CapacitySeries{
		mk(4, lvl(40, 40, 400, 0), lvl(80, 79, 800, 40)),
		mk(1, lvl(20, 20, 200, 0), lvl(40, 22, 400, 180)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 || rep.Series[0].Replicas != 1 || rep.Series[1].Replicas != 4 {
		t.Fatalf("series not ordered by replica count: %+v", rep.Series)
	}
	if rep.Series[0].SaturationRPS != 20 || rep.Series[1].SaturationRPS != 80 {
		t.Fatalf("knees wrong: %+v", rep.Series)
	}
	if got := rep.Series[1].Speedup; got != 4 {
		t.Fatalf("speedup = %g, want 4", got)
	}
	wantRej := float64(180) / float64(600)
	if got := rep.Series[0].RejectionRate; got != wantRej {
		t.Fatalf("rejection rate = %g, want %g", got, wantRej)
	}
	if rep.Benchmarks[1].Op != "Cluster/replicas=4" {
		t.Fatalf("benchmark op = %q", rep.Benchmarks[1].Op)
	}
	if _, err := BuildCapacityReport(nil); err == nil {
		t.Fatal("empty series must error")
	}
	if _, err := BuildCapacityReport([]CapacitySeries{mk(2), mk(2)}); err == nil {
		t.Fatal("duplicate replica counts must error")
	}
}
