package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzUnmarshal drives the v2 container decoder with arbitrary bytes.
// The decoder must never panic or over-allocate on corrupt input
// (lengths are untrusted until the CRC at the end of the stream), and
// any blob it accepts must re-marshal to a stable canonical encoding —
// the content-addressed run registry keys on those bytes.
func FuzzUnmarshal(f *testing.F) {
	seed := func(s *Snapshot) {
		b, err := Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(&Snapshot{Step: 0, Params: []float64{}})
	seed(&Snapshot{Step: 7, Params: []float64{1, -2.5, 3e-9}})
	seed(&Snapshot{
		Step:     42,
		Params:   []float64{0.5, 1.5, -0.25},
		W0:       []float64{0, 1, 2},
		Sections: map[string][]float64{"opt.m": {1, 2}, "opt.v": {3}},
		Counters: map[string]uint64{"rng.pos": 9, "step": 42},
	})
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint at all"))
	// Valid magic and version, then an implausible params length:
	// exercises the header sanity guards without a CRC to hide behind.
	lie := binary.LittleEndian.AppendUint64(nil, magic)
	lie = binary.LittleEndian.AppendUint64(lie, versionSections)
	lie = binary.LittleEndian.AppendUint64(lie, 3) // step
	lie = binary.LittleEndian.AppendUint64(lie, 1<<62)
	f.Add(lie)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Unmarshal(b)
		if err != nil {
			return // rejection is the expected outcome for corrupt input
		}
		canon, err := Marshal(s)
		if err != nil {
			t.Fatalf("re-marshal of accepted snapshot failed: %v", err)
		}
		s2, err := Unmarshal(canon)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		canon2, err := Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("marshal is not stable: %d vs %d bytes", len(canon), len(canon2))
		}
	})
}
