// Package checkpoint serializes flat model parameter vectors (and, more
// generally, training snapshots) to a compact, versioned binary format.
// A production deployment of FDA needs checkpoints in two places the
// paper implies but does not spell out: resuming long federated training
// runs, and shipping pre-trained weights into the transfer-learning
// scenario (§4, Figure 13). The format is deliberately simple — header,
// dimension, float64 payload, CRC — so any language can read it.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
)

// magic identifies the file format; version gates layout changes.
const (
	magic   = 0xFDA0C4EC
	version = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Snapshot is a named training state: the flat parameter vector plus
// bookkeeping an FDA run needs to resume (step counter and the model at
// the last synchronization).
type Snapshot struct {
	// Step is the global step at which the snapshot was taken.
	Step int64
	// Params is the flat parameter vector w.
	Params []float64
	// W0 is the model at the most recent synchronization (may be nil for
	// plain model checkpoints, in which case it is stored empty).
	W0 []float64
}

// Write serializes s to w.
func Write(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	crc := crc64.New(crcTable)
	out := io.MultiWriter(bw, crc)

	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := out.Write(buf[:])
		return err
	}
	writeVec := func(v []float64) error {
		if err := writeU64(uint64(len(v))); err != nil {
			return err
		}
		var buf [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			if _, err := out.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}

	if err := writeU64(magic); err != nil {
		return err
	}
	if err := writeU64(version); err != nil {
		return err
	}
	if err := writeU64(uint64(s.Step)); err != nil {
		return err
	}
	if err := writeVec(s.Params); err != nil {
		return err
	}
	if err := writeVec(s.W0); err != nil {
		return err
	}
	// Trailer: CRC64 of everything written so far (not itself CRC'd).
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], crc.Sum64())
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a snapshot from r, verifying magic, version and CRC.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crcTable)
	in := io.TeeReader(br, crc)

	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(in, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	readVec := func() ([]float64, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		const maxLen = 1 << 30 // 8 GiB of float64s; reject corrupt headers
		if n > maxLen {
			return nil, fmt.Errorf("checkpoint: implausible vector length %d", n)
		}
		v := make([]float64, n)
		var buf [8]byte
		for i := range v {
			if _, err := io.ReadFull(in, buf[:]); err != nil {
				return nil, err
			}
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
		return v, nil
	}

	m, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	ver, err := readU64()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	step, err := readU64()
	if err != nil {
		return nil, err
	}
	params, err := readVec()
	if err != nil {
		return nil, err
	}
	w0, err := readVec()
	if err != nil {
		return nil, err
	}
	want := crc.Sum64()
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading CRC: %w", err)
	}
	if got := binary.LittleEndian.Uint64(buf[:]); got != want {
		return nil, fmt.Errorf("checkpoint: CRC mismatch: file %#x computed %#x", got, want)
	}
	s := &Snapshot{Step: int64(step), Params: params}
	if len(w0) > 0 {
		s.W0 = w0
	}
	return s, nil
}

// Save writes a snapshot to path atomically (write to a temp file in the
// same directory, then rename).
func Save(path string, s *Snapshot) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Load reads a snapshot from path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
