// Package checkpoint serializes flat model parameter vectors (and, more
// generally, training snapshots) to a compact, versioned binary format.
// A production deployment of FDA needs checkpoints in two places the
// paper implies but does not spell out: resuming long federated training
// runs, and shipping pre-trained weights into the transfer-learning
// scenario (§4, Figure 13). The format is deliberately simple — header,
// dimension, float64 payload, CRC — so any language can read it.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"sort"
)

// magic identifies the file format; version gates layout changes.
// Version 1 is the original (step, params, w0) layout; version 2 appends
// named float64 sections and named uint64 counters, the representation a
// full training-session snapshot needs (per-worker replicas, optimizer
// moments, RNG positions, meter totals). Plain snapshots still write
// version 1, so files produced before sessions existed remain readable
// and byte-identical.
const (
	magic           = 0xFDA0C4EC
	version         = 1
	versionSections = 2
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Snapshot is a named training state: the flat parameter vector plus
// bookkeeping an FDA run needs to resume (step counter and the model at
// the last synchronization).
type Snapshot struct {
	// Step is the global step at which the snapshot was taken.
	Step int64
	// Params is the flat parameter vector w.
	Params []float64
	// W0 is the model at the most recent synchronization (may be nil for
	// plain model checkpoints, in which case it is stored empty).
	W0 []float64
	// Sections holds named auxiliary vectors (per-worker replicas,
	// optimizer moments, history columns). Nil for plain checkpoints.
	// Serialization is key-sorted, so equal snapshots encode to equal
	// bytes regardless of map iteration order.
	Sections map[string][]float64
	// Counters holds named integer state (RNG positions, step counters,
	// byte meters). Nil for plain checkpoints.
	Counters map[string]uint64
}

// Vec returns a named section (nil when absent).
func (s *Snapshot) Vec(name string) []float64 {
	if s.Sections == nil {
		return nil
	}
	return s.Sections[name]
}

// U64 returns a named counter and whether it was present.
func (s *Snapshot) U64(name string) (uint64, bool) {
	if s.Counters == nil {
		return 0, false
	}
	v, ok := s.Counters[name]
	return v, ok
}

// AddVec stores a copy of v as a named section.
func (s *Snapshot) AddVec(name string, v []float64) {
	if s.Sections == nil {
		s.Sections = map[string][]float64{}
	}
	s.Sections[name] = append([]float64(nil), v...)
}

// AddU64 stores a named counter.
func (s *Snapshot) AddU64(name string, v uint64) {
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	s.Counters[name] = v
}

// Write serializes s to w.
func Write(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	crc := crc64.New(crcTable)
	out := io.MultiWriter(bw, crc)

	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := out.Write(buf[:])
		return err
	}
	writeVec := func(v []float64) error {
		if err := writeU64(uint64(len(v))); err != nil {
			return err
		}
		var buf [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			if _, err := out.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}

	writeStr := func(str string) error {
		if err := writeU64(uint64(len(str))); err != nil {
			return err
		}
		_, err := out.Write([]byte(str))
		return err
	}

	ver := uint64(version)
	if len(s.Sections) > 0 || len(s.Counters) > 0 {
		ver = versionSections
	}
	if err := writeU64(magic); err != nil {
		return err
	}
	if err := writeU64(ver); err != nil {
		return err
	}
	if err := writeU64(uint64(s.Step)); err != nil {
		return err
	}
	if err := writeVec(s.Params); err != nil {
		return err
	}
	if err := writeVec(s.W0); err != nil {
		return err
	}
	if ver == versionSections {
		// Key-sorted section and counter tables: deterministic bytes.
		if err := writeU64(uint64(len(s.Sections))); err != nil {
			return err
		}
		for _, name := range sortedKeys(s.Sections) {
			if err := writeStr(name); err != nil {
				return err
			}
			if err := writeVec(s.Sections[name]); err != nil {
				return err
			}
		}
		if err := writeU64(uint64(len(s.Counters))); err != nil {
			return err
		}
		for _, name := range sortedKeys(s.Counters) {
			if err := writeStr(name); err != nil {
				return err
			}
			if err := writeU64(s.Counters[name]); err != nil {
				return err
			}
		}
	}
	// Trailer: CRC64 of everything written so far (not itself CRC'd).
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], crc.Sum64())
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a snapshot from r, verifying magic, version and CRC.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crcTable)
	in := io.TeeReader(br, crc)

	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(in, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	readVec := func() ([]float64, error) {
		n, err := readU64()
		if err != nil {
			return nil, err
		}
		const maxLen = 1 << 30 // 8 GiB of float64s; reject corrupt headers
		if n > maxLen {
			return nil, fmt.Errorf("checkpoint: implausible vector length %d", n)
		}
		// Grow as bytes actually arrive instead of trusting the header:
		// a truncated or corrupt stream then fails with EOF after the
		// available data, not an n-sized up-front allocation.
		v := make([]float64, 0, min(n, 4096))
		var buf [8]byte
		for i := uint64(0); i < n; i++ {
			if _, err := io.ReadFull(in, buf[:]); err != nil {
				return nil, err
			}
			v = append(v, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		}
		return v, nil
	}

	m, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	readStr := func() (string, error) {
		n, err := readU64()
		if err != nil {
			return "", err
		}
		const maxName = 1 << 16
		if n > maxName {
			return "", fmt.Errorf("checkpoint: implausible name length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(in, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	ver, err := readU64()
	if err != nil {
		return nil, err
	}
	if ver != version && ver != versionSections {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	step, err := readU64()
	if err != nil {
		return nil, err
	}
	params, err := readVec()
	if err != nil {
		return nil, err
	}
	w0, err := readVec()
	if err != nil {
		return nil, err
	}
	var sections map[string][]float64
	var counters map[string]uint64
	if ver == versionSections {
		const maxEntries = 1 << 24
		ns, err := readU64()
		if err != nil {
			return nil, err
		}
		if ns > maxEntries {
			return nil, fmt.Errorf("checkpoint: implausible section count %d", ns)
		}
		sections = make(map[string][]float64, min(ns, 1024))
		for i := uint64(0); i < ns; i++ {
			name, err := readStr()
			if err != nil {
				return nil, err
			}
			vec, err := readVec()
			if err != nil {
				return nil, err
			}
			sections[name] = vec
		}
		nc, err := readU64()
		if err != nil {
			return nil, err
		}
		if nc > maxEntries {
			return nil, fmt.Errorf("checkpoint: implausible counter count %d", nc)
		}
		counters = make(map[string]uint64, min(nc, 1024))
		for i := uint64(0); i < nc; i++ {
			name, err := readStr()
			if err != nil {
				return nil, err
			}
			v, err := readU64()
			if err != nil {
				return nil, err
			}
			counters[name] = v
		}
	}
	want := crc.Sum64()
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading CRC: %w", err)
	}
	if got := binary.LittleEndian.Uint64(buf[:]); got != want {
		return nil, fmt.Errorf("checkpoint: CRC mismatch: file %#x computed %#x", got, want)
	}
	s := &Snapshot{Step: int64(step), Params: params}
	if len(w0) > 0 {
		s.W0 = w0
	}
	if len(sections) > 0 {
		s.Sections = sections
	}
	if len(counters) > 0 {
		s.Counters = counters
	}
	return s, nil
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Save writes a snapshot to path atomically (write to a temp file in the
// same directory, then rename).
func Save(path string, s *Snapshot) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Load reads a snapshot from path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Marshal serializes a snapshot to the checkpoint wire format in
// memory — the blob embedded in content-addressed stores (the run
// registry's prefix snapshots).
func Marshal(s *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a blob produced by Marshal (or Write).
func Unmarshal(b []byte) (*Snapshot, error) {
	return Read(bytes.NewReader(b))
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
