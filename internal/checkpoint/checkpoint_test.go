package checkpoint

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sampleSnapshot(n int, seed uint64) *Snapshot {
	rng := tensor.NewRNG(seed)
	params := make([]float64, n)
	tensor.Normal(rng, params, 0, 1)
	w0 := make([]float64, n)
	tensor.Normal(rng, w0, 0, 1)
	return &Snapshot{Step: 1234, Params: params, W0: w0}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot(257, 1)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != s.Step {
		t.Fatalf("step %d want %d", got.Step, s.Step)
	}
	for i := range s.Params {
		if got.Params[i] != s.Params[i] || got.W0[i] != s.W0[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestRoundTripWithoutW0(t *testing.T) {
	s := &Snapshot{Step: 1, Params: []float64{1, 2, 3}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W0 != nil {
		t.Fatalf("expected nil W0, got %v", got.W0)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := sampleSnapshot(64, 2)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[40] ^= 0x01 // flip one payload bit
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

// TestCRCTrailerCorruptionDetected flips a bit in the CRC trailer
// itself (the payload stays intact), which must still be rejected.
func TestCRCTrailerCorruptionDetected(t *testing.T) {
	s := sampleSnapshot(64, 5)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0x80 // inside the 8-byte CRC64 trailer
	_, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted CRC trailer accepted")
	}
	if !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("want CRC mismatch error, got: %v", err)
	}
}

// TestWrongVersionRejected patches the header's version field to an
// unsupported value; Read must fail on the version check (which runs
// before the CRC is even reachable) with a version error.
func TestWrongVersionRejected(t *testing.T) {
	s := sampleSnapshot(16, 6)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Layout: bytes [0,8) magic, [8,16) version.
	binary.LittleEndian.PutUint64(data[8:16], versionSections+1)
	_, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("wrong-version checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("want unsupported-version error, got: %v", err)
	}
}

// TestTruncationEveryPrefix rejects a checkpoint cut at any point: in
// the header, inside a vector, and inside the CRC trailer.
func TestTruncationEveryPrefix(t *testing.T) {
	s := sampleSnapshot(8, 7)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{0, 4, 8, 15, 16, 23, 24, 40, len(data) - 12, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("checkpoint truncated to %d of %d bytes accepted", n, len(data))
		}
	}
}

// TestImplausibleLengthRejected: a corrupt vector length must fail fast
// instead of attempting a giant allocation.
func TestImplausibleLengthRejected(t *testing.T) {
	s := &Snapshot{Step: 1, Params: []float64{1}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bytes [24,32) hold len(Params); write an absurd value.
	binary.LittleEndian.PutUint64(data[24:32], 1<<40)
	_, err := Read(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("want implausible-length error, got: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero stream accepted")
	}
}

func TestTruncationDetected(t *testing.T) {
	s := sampleSnapshot(64, 3)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-9]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	s := sampleSnapshot(100, 4)
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != s.Step || len(got.Params) != 100 {
		t.Fatalf("loaded %+v", got)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files: %v", entries)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: every (step, params) round-trips bit-exactly, including
// special values that survive the float64 bit-pattern encoding.
func TestRoundTripProperty(t *testing.T) {
	f := func(step uint32, params [9]float64) bool {
		s := &Snapshot{Step: int64(step), Params: params[:]}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Step != int64(step) {
			return false
		}
		for i := range params {
			// Compare bit patterns so NaN round-trips count as equal.
			if (got.Params[i] != params[i]) && !(got.Params[i] != got.Params[i] && params[i] != params[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSectionsRoundTrip: the version-2 layout (named sections and
// counters) round-trips bit-exactly and deterministically, and plain
// snapshots keep writing the version-1 bytes.
func TestSectionsRoundTrip(t *testing.T) {
	s := sampleSnapshot(32, 8)
	s.AddVec("w0.params", []float64{1.5, -2.25, 0})
	s.AddVec("empty", nil)
	s.AddU64("t", 1234)
	s.AddU64("meter.b.model", 1<<60)

	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vec("w0.params")) != 3 || got.Vec("w0.params")[1] != -2.25 {
		t.Fatalf("section payload: %+v", got.Sections)
	}
	if v, ok := got.U64("meter.b.model"); !ok || v != 1<<60 {
		t.Fatalf("counter payload: %v %v", v, ok)
	}
	if v, ok := got.U64("t"); !ok || v != 1234 {
		t.Fatalf("counter t: %v %v", v, ok)
	}
	if _, ok := got.U64("missing"); ok {
		t.Fatal("phantom counter")
	}
	if got.Vec("nope") != nil {
		t.Fatal("phantom section")
	}

	// Determinism: re-encoding the same snapshot yields identical bytes
	// (sections are key-sorted, not map-ordered).
	var buf2 bytes.Buffer
	if err := Write(&buf2, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("v2 encoding is not deterministic")
	}

	// A sectioned snapshot corrupted anywhere in the tables is rejected.
	data := append([]byte(nil), first...)
	data[len(data)-20] ^= 0x40
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted v2 checkpoint accepted")
	}

	// Plain snapshots still write version 1.
	var plain bytes.Buffer
	if err := Write(&plain, sampleSnapshot(8, 9)); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(plain.Bytes()[8:16]); v != version {
		t.Fatalf("plain snapshot wrote version %d", v)
	}
}
