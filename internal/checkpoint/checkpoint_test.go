package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sampleSnapshot(n int, seed uint64) *Snapshot {
	rng := tensor.NewRNG(seed)
	params := make([]float64, n)
	tensor.Normal(rng, params, 0, 1)
	w0 := make([]float64, n)
	tensor.Normal(rng, w0, 0, 1)
	return &Snapshot{Step: 1234, Params: params, W0: w0}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot(257, 1)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != s.Step {
		t.Fatalf("step %d want %d", got.Step, s.Step)
	}
	for i := range s.Params {
		if got.Params[i] != s.Params[i] || got.W0[i] != s.W0[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestRoundTripWithoutW0(t *testing.T) {
	s := &Snapshot{Step: 1, Params: []float64{1, 2, 3}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W0 != nil {
		t.Fatalf("expected nil W0, got %v", got.W0)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := sampleSnapshot(64, 2)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[40] ^= 0x01 // flip one payload bit
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zero stream accepted")
	}
}

func TestTruncationDetected(t *testing.T) {
	s := sampleSnapshot(64, 3)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-9]
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	s := sampleSnapshot(100, 4)
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != s.Step || len(got.Params) != 100 {
		t.Fatalf("loaded %+v", got)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files: %v", entries)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: every (step, params) round-trips bit-exactly, including
// special values that survive the float64 bit-pattern encoding.
func TestRoundTripProperty(t *testing.T) {
	f := func(step uint32, params [9]float64) bool {
		s := &Snapshot{Step: int64(step), Params: params[:]}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Step != int64(step) {
			return false
		}
		for i := range params {
			// Compare bit patterns so NaN round-trips count as equal.
			if (got.Params[i] != params[i]) && !(got.Params[i] != got.Params[i] && params[i] != params[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
