package data

import (
	"math"

	"repro/internal/tensor"
)

// SyntheticConfig describes a synthetic image-classification task.
//
// Each class c owns SubClusters prototype images; a sample is a randomly
// chosen prototype of its class plus isotropic Gaussian noise, followed by
// a shared smoothing pass that introduces local pixel correlations (so
// convolutions have structure to exploit). Separation controls how far
// apart class prototypes are relative to the noise, i.e. task difficulty.
type SyntheticConfig struct {
	Classes     int
	Height      int
	Width       int
	Channels    int
	TrainPer    int // training samples per class
	TestPer     int // test samples per class
	SubClusters int // prototypes per class (>=1); more = harder
	Separation  float64
	Noise       float64
	Seed        uint64
}

// withDefaults fills zero fields with sensible defaults.
func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Height == 0 {
		c.Height = 8
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Channels == 0 {
		c.Channels = 1
	}
	if c.TrainPer == 0 {
		c.TrainPer = 200
	}
	if c.TestPer == 0 {
		c.TestPer = 50
	}
	if c.SubClusters == 0 {
		c.SubClusters = 2
	}
	if c.Separation == 0 {
		c.Separation = 1.6
	}
	if c.Noise == 0 {
		c.Noise = 0.8
	}
	return c
}

// Synthetic generates deterministic train and test datasets from cfg.
func Synthetic(cfg SyntheticConfig) (train, test *Dataset) {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed ^ 0xfda0)
	dim := cfg.Height * cfg.Width * cfg.Channels

	prototypes := make([][][]float64, cfg.Classes)
	for c := range prototypes {
		prototypes[c] = make([][]float64, cfg.SubClusters)
		for s := range prototypes[c] {
			p := make([]float64, dim)
			tensor.Normal(rng, p, 0, cfg.Separation)
			prototypes[c][s] = p
		}
	}

	gen := func(perClass int, sampleRNG *tensor.RNG) *Dataset {
		ds := &Dataset{
			NumClasses: cfg.Classes,
			Height:     cfg.Height, Width: cfg.Width, Channels: cfg.Channels,
		}
		for c := 0; c < cfg.Classes; c++ {
			for i := 0; i < perClass; i++ {
				proto := prototypes[c][sampleRNG.Intn(cfg.SubClusters)]
				x := make([]float64, dim)
				for j := range x {
					x[j] = proto[j] + sampleRNG.NormFloat64()*cfg.Noise
				}
				smooth(x, cfg.Height, cfg.Width, cfg.Channels)
				ds.X = append(ds.X, x)
				ds.Y = append(ds.Y, c)
			}
		}
		ds.Shuffle(sampleRNG)
		return ds
	}

	train = gen(cfg.TrainPer, rng.Split())
	test = gen(cfg.TestPer, rng.Split())
	return train, test
}

// smooth applies a single in-place 3×3 box-blur pass per channel, giving
// pixels the local spatial correlation that natural images have. Without
// it, convolutional layers would have no advantage over dense ones.
func smooth(x []float64, h, w, ch int) {
	if h < 3 || w < 3 {
		return
	}
	tmp := make([]float64, h*w)
	for c := 0; c < ch; c++ {
		plane := x[c*h*w : (c+1)*h*w]
		copy(tmp, plane)
		for i := 1; i < h-1; i++ {
			for j := 1; j < w-1; j++ {
				var s float64
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						s += tmp[(i+di)*w+(j+dj)]
					}
				}
				plane[i*w+j] = 0.5*tmp[i*w+j] + 0.5*s/9
			}
		}
	}
}

// MNISTLike returns the stand-in for MNIST used by the LeNet-5 and VGG16*
// experiments: a 10-class, 8×8 grayscale task.
func MNISTLike(seed uint64) (train, test *Dataset) {
	return Synthetic(SyntheticConfig{
		Classes: 10, Height: 8, Width: 8, Channels: 1,
		TrainPer: 240, TestPer: 60, SubClusters: 2,
		Separation: 1.6, Noise: 0.9, Seed: seed,
	})
}

// CIFAR10Like returns the stand-in for CIFAR-10 used by the DenseNet
// experiments: a harder 10-class, 12×12 RGB task (more sub-clusters and
// noise ⇒ more steps to the accuracy target, like CIFAR-10 vs MNIST).
func CIFAR10Like(seed uint64) (train, test *Dataset) {
	return Synthetic(SyntheticConfig{
		Classes: 10, Height: 12, Width: 12, Channels: 3,
		TrainPer: 240, TestPer: 60, SubClusters: 3,
		Separation: 1.2, Noise: 1.0, Seed: seed,
	})
}

// CIFAR100Like returns the stand-in for CIFAR-100 used by the transfer
// learning experiment: 100 classes, 12×12 RGB, few samples per class.
func CIFAR100Like(seed uint64) (train, test *Dataset) {
	return Synthetic(SyntheticConfig{
		Classes: 100, Height: 12, Width: 12, Channels: 3,
		TrainPer: 30, TestPer: 8, SubClusters: 2,
		Separation: 0.9, Noise: 1.25, Seed: seed,
	})
}

// Normalize standardizes features in place to zero mean and unit variance
// computed over the given (training) dataset, and returns the (mean, std)
// so the same affine map can be applied to a test set via Apply.
type Normalizer struct {
	Mean, Std []float64
}

// FitNormalizer computes per-feature statistics over ds.
func FitNormalizer(ds *Dataset) *Normalizer {
	dim := ds.Dim()
	n := float64(ds.Len())
	mean := make([]float64, dim)
	for _, x := range ds.X {
		tensor.AXPY(1, x, mean)
	}
	tensor.Scale(mean, 1/n)
	std := make([]float64, dim)
	for _, x := range ds.X {
		for j, v := range x {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] < 1e-8 {
			std[j] = 1
		}
	}
	return &Normalizer{Mean: mean, Std: std}
}

// Apply standardizes ds in place using the fitted statistics.
func (nz *Normalizer) Apply(ds *Dataset) {
	for _, x := range ds.X {
		for j := range x {
			x[j] = (x[j] - nz.Mean[j]) / nz.Std[j]
		}
	}
}
