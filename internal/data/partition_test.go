package data

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// conservesSamples checks every sample lands in exactly one shard, using
// the unique first-feature tags applied by taggedDataset.
func conservesSamples(t *testing.T, ds *Dataset, shards []*Dataset) {
	t.Helper()
	total := 0
	seen := map[float64]bool{}
	for _, s := range shards {
		total += s.Len()
		for _, x := range s.X {
			if seen[x[0]] {
				t.Fatalf("sample tag %v assigned twice", x[0])
			}
			seen[x[0]] = true
		}
	}
	if total != ds.Len() {
		t.Fatalf("shards hold %d samples want %d", total, ds.Len())
	}
}

func taggedDataset(n, classes int) *Dataset {
	ds := tinyDataset(n, classes)
	for i := range ds.X {
		ds.X[i] = tensor.Clone(ds.X[i])
		ds.X[i][0] = float64(i) + 0.5 // unique tag
	}
	return ds
}

func TestPartitionIIDConservesAndBalances(t *testing.T) {
	ds := taggedDataset(100, 5)
	shards := PartitionIID(ds, 7, tensor.NewRNG(1))
	conservesSamples(t, ds, shards)
	for _, s := range shards {
		if s.Len() < 100/7 || s.Len() > 100/7+1 {
			t.Fatalf("IID shard size %d not balanced", s.Len())
		}
	}
}

func TestPartitionIIDLabelSpread(t *testing.T) {
	ds := taggedDataset(500, 5)
	shards := PartitionIID(ds, 5, tensor.NewRNG(2))
	// Each shard should contain every class (high probability with 100
	// samples per shard, 5 classes).
	for i, s := range shards {
		counts := s.ClassCounts()
		for c, n := range counts {
			if n == 0 {
				t.Fatalf("IID shard %d missing class %d", i, c)
			}
		}
	}
}

func TestPartitionNonIIDPercentZeroIsIIDLike(t *testing.T) {
	ds := taggedDataset(90, 3)
	shards := PartitionNonIIDPercent(ds, 3, 0, tensor.NewRNG(3))
	conservesSamples(t, ds, shards)
}

func TestPartitionNonIIDPercentFullSortSkews(t *testing.T) {
	ds := taggedDataset(300, 3)
	shards := PartitionNonIIDPercent(ds, 3, 100, tensor.NewRNG(4))
	conservesSamples(t, ds, shards)
	// With 100% sorted into 3 shards of 3 balanced classes, each shard
	// should be dominated by a single class.
	for i, s := range shards {
		counts := s.ClassCounts()
		maxc := 0
		for _, n := range counts {
			if n > maxc {
				maxc = n
			}
		}
		if float64(maxc) < 0.9*float64(s.Len()) {
			t.Fatalf("shard %d not label-skewed under 100%% sort: %v", i, counts)
		}
	}
}

func TestPartitionNonIIDPercentSixtySkewsSome(t *testing.T) {
	ds := taggedDataset(600, 10)
	shards := PartitionNonIIDPercent(ds, 10, 60, tensor.NewRNG(5))
	conservesSamples(t, ds, shards)
	// At least one worker should see a heavily skewed distribution.
	skewed := false
	for _, s := range shards {
		counts := s.ClassCounts()
		for _, n := range counts {
			if float64(n) > 0.4*float64(s.Len()) {
				skewed = true
			}
		}
	}
	if !skewed {
		t.Fatal("60% sort produced no skewed shard")
	}
}

func TestPartitionNonIIDLabelConcentrates(t *testing.T) {
	ds := taggedDataset(400, 4)
	shards := PartitionNonIIDLabel(ds, 8, 0, 2, tensor.NewRNG(6))
	conservesSamples(t, ds, shards)
	for i := 2; i < 8; i++ {
		if got := shards[i].ClassCounts()[0]; got != 0 {
			t.Fatalf("non-holder shard %d holds %d samples of label 0", i, got)
		}
	}
	got := shards[0].ClassCounts()[0] + shards[1].ClassCounts()[0]
	if got != 100 {
		t.Fatalf("holders have %d label-0 samples want 100", got)
	}
}

func TestPartitionNonIIDLabelShardsRoughlyBalanced(t *testing.T) {
	ds := taggedDataset(400, 4)
	shards := PartitionNonIIDLabel(ds, 8, 0, 2, tensor.NewRNG(7))
	for i, s := range shards {
		if s.Len() < 30 || s.Len() > 70 {
			t.Fatalf("shard %d size %d far from balanced 50", i, s.Len())
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	ds := taggedDataset(10, 2)
	for _, f := range []func(){
		func() { PartitionIID(ds, 0, tensor.NewRNG(1)) },
		func() { PartitionIID(ds, 11, tensor.NewRNG(1)) },
		func() { PartitionNonIIDPercent(ds, 2, 120, tensor.NewRNG(1)) },
		func() { PartitionNonIIDLabel(ds, 2, 9, 1, tensor.NewRNG(1)) },
		func() { PartitionNonIIDLabel(ds, 2, 0, 3, tensor.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHeterogeneityString(t *testing.T) {
	if got := IID().String(); got != "IID" {
		t.Fatalf("IID string %q", got)
	}
	if got := NonIIDPercent(60).String(); got != "Non-IID: 60%" {
		t.Fatalf("percent string %q", got)
	}
	if got := NonIIDLabel(0, 2).String(); got != `Non-IID: Label "0"` {
		t.Fatalf("label string %q", got)
	}
}

func TestHeterogeneityDispatch(t *testing.T) {
	ds := taggedDataset(120, 4)
	for _, h := range []Heterogeneity{IID(), NonIIDPercent(50), NonIIDLabel(1, 2)} {
		shards := h.Partition(ds, 4, tensor.NewRNG(8))
		conservesSamples(t, ds, shards)
	}
}

// Property: for any valid (n, k) the IID partitioner conserves sample
// count and balances within one sample.
func TestPartitionIIDProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		n := int(nRaw%200) + k
		ds := taggedDataset(n, 3)
		shards := PartitionIID(ds, k, tensor.NewRNG(uint64(nRaw)*31+uint64(kRaw)))
		total := 0
		minSz, maxSz := n, 0
		for _, s := range shards {
			total += s.Len()
			if s.Len() < minSz {
				minSz = s.Len()
			}
			if s.Len() > maxSz {
				maxSz = s.Len()
			}
		}
		return total == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
