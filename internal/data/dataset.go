// Package data provides the synthetic classification workloads and the
// data-heterogeneity partitioners used by the experiments.
//
// The paper trains on MNIST, CIFAR-10 and CIFAR-100. Those datasets are
// not available in this offline environment, so each is replaced by a
// seeded synthetic generator that produces an image-classification task of
// matching arity (10/10/100 classes) from Gaussian class prototypes with
// per-class sub-clusters and per-sample noise. What the paper's evaluation
// actually exercises — accuracy-target training dynamics and the effect of
// label-skewed partitioning across workers — depends only on labels and on
// the difficulty of the decision boundaries, both of which the synthetic
// tasks reproduce (see DESIGN.md §1).
package data

import (
	"fmt"

	"repro/internal/tensor"
)

// Dataset is an in-memory supervised classification dataset.
type Dataset struct {
	// X holds one feature vector per sample (flattened images).
	X [][]float64
	// Y holds the class label of each sample, in [0, NumClasses).
	Y []int
	// NumClasses is the label arity.
	NumClasses int
	// Height, Width, Channels describe the image shape of each sample;
	// Height*Width*Channels == len(X[i]). Dense-only models may ignore it.
	Height, Width, Channels int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks internal consistency and returns a descriptive error for
// malformed datasets (wrong label range, ragged features, shape mismatch).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("data: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("data: non-positive NumClasses %d", d.NumClasses)
	}
	want := d.Height * d.Width * d.Channels
	for i, x := range d.X {
		if want > 0 && len(x) != want {
			return fmt.Errorf("data: sample %d has dim %d, shape says %d", i, len(x), want)
		}
		if i > 0 && len(x) != len(d.X[0]) {
			return fmt.Errorf("data: ragged features at sample %d", i)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("data: label %d out of range at sample %d", y, i)
		}
	}
	return nil
}

// Subset returns a view dataset containing the samples at idx. Feature
// slices are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		X:          make([][]float64, len(idx)),
		Y:          make([]int, len(idx)),
		NumClasses: d.NumClasses,
		Height:     d.Height, Width: d.Width, Channels: d.Channels,
	}
	for i, j := range idx {
		sub.X[i] = d.X[j]
		sub.Y[i] = d.Y[j]
	}
	return sub
}

// Shuffle permutes the samples in place.
func (d *Dataset) Shuffle(rng *tensor.RNG) {
	perm := rng.Perm(d.Len())
	x := make([][]float64, d.Len())
	y := make([]int, d.Len())
	for i, j := range perm {
		x[i] = d.X[j]
		y[i] = d.Y[j]
	}
	d.X, d.Y = x, y
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Batch holds a mini-batch view of a dataset.
type Batch struct {
	X [][]float64
	Y []int
}

// Sampler draws uniform-with-replacement mini-batches from a dataset,
// matching stochastic mini-batch SGD over a worker's local shard D_k.
type Sampler struct {
	ds  *Dataset
	rng *tensor.RNG
}

// NewSampler returns a sampler over ds using rng. It panics on an empty
// dataset: a worker with no data cannot take an SGD step.
func NewSampler(ds *Dataset, rng *tensor.RNG) *Sampler {
	if ds.Len() == 0 {
		panic("data: sampler over empty dataset")
	}
	return &Sampler{ds: ds, rng: rng}
}

// RNGState exposes the sampler's stream position for checkpointing; a
// restored sampler with the same dataset and state draws the same batches.
func (s *Sampler) RNGState() uint64 { return s.rng.State() }

// SetRNGState rewinds the sampler's stream to a captured position.
func (s *Sampler) SetRNGState(st uint64) { s.rng.SetState(st) }

// Sample fills a batch of size b.
func (s *Sampler) Sample(b int) Batch {
	var batch Batch
	s.SampleInto(&batch, b)
	return batch
}

// SampleInto refills batch with b samples drawn like Sample, reusing
// batch's backing slices once they have capacity b. Feature rows are
// views into the dataset, so a steady-state caller that keeps one Batch
// per worker allocates nothing.
func (s *Sampler) SampleInto(batch *Batch, b int) {
	if cap(batch.X) < b || cap(batch.Y) < b {
		batch.X = make([][]float64, b)
		batch.Y = make([]int, b)
	}
	batch.X = batch.X[:b]
	batch.Y = batch.Y[:b]
	for i := 0; i < b; i++ {
		j := s.rng.Intn(s.ds.Len())
		batch.X[i] = s.ds.X[j]
		batch.Y[i] = s.ds.Y[j]
	}
}

// EpochIterator iterates a dataset in shuffled order in mini-batches; used
// by the FedAvg-style baselines that train for E full local epochs.
type EpochIterator struct {
	ds    *Dataset
	rng   *tensor.RNG
	order []int
	pos   int
}

// NewEpochIterator returns an iterator over ds.
func NewEpochIterator(ds *Dataset, rng *tensor.RNG) *EpochIterator {
	if ds.Len() == 0 {
		panic("data: epoch iterator over empty dataset")
	}
	it := &EpochIterator{ds: ds, rng: rng}
	it.reshuffle()
	return it
}

func (it *EpochIterator) reshuffle() {
	it.order = it.rng.Perm(it.ds.Len())
	it.pos = 0
}

// Next returns the next mini-batch of at most b samples and whether the
// epoch ended with this batch (the iterator reshuffles automatically).
func (it *EpochIterator) Next(b int) (Batch, bool) {
	if it.pos >= len(it.order) {
		it.reshuffle()
	}
	end := it.pos + b
	if end > len(it.order) {
		end = len(it.order)
	}
	idx := it.order[it.pos:end]
	batch := Batch{X: make([][]float64, len(idx)), Y: make([]int, len(idx))}
	for i, j := range idx {
		batch.X[i] = it.ds.X[j]
		batch.Y[i] = it.ds.Y[j]
	}
	it.pos = end
	return batch, it.pos >= len(it.order)
}

// StepsPerEpoch returns the number of size-b batches per local epoch.
func (it *EpochIterator) StepsPerEpoch(b int) int {
	n := it.ds.Len()
	return (n + b - 1) / b
}
