package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// PartitionDirichlet splits ds across k workers with label proportions
// drawn from a symmetric Dirichlet(α) distribution per class — the
// standard non-IID generator of the federated-learning literature (Hsu et
// al., cited by the paper as [21]). Small α concentrates each class on
// few workers (extreme skew); large α approaches IID. Every sample is
// assigned exactly once.
func PartitionDirichlet(ds *Dataset, k int, alpha float64, rng *tensor.RNG) []*Dataset {
	checkPartitionArgs(ds, k)
	if alpha <= 0 {
		panic(fmt.Sprintf("data: Dirichlet alpha %v must be positive", alpha))
	}
	// Group indices by class, shuffled.
	byClass := make([][]int, ds.NumClasses)
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	shards := make([][]int, k)
	for _, idxs := range byClass {
		rng.Shuffle(idxs)
		props := dirichlet(rng, alpha, k)
		// Convert proportions to contiguous cut points over the class.
		n := len(idxs)
		start := 0
		acc := 0.0
		for w := 0; w < k; w++ {
			acc += props[w]
			end := int(math.Round(acc * float64(n)))
			if w == k-1 {
				end = n
			}
			if end < start {
				end = start
			}
			shards[w] = append(shards[w], idxs[start:end]...)
			start = end
		}
	}
	return subsets(ds, shards)
}

// dirichlet draws one sample from a symmetric Dirichlet(alpha) over k
// categories using normalized Gamma variates (Marsaglia–Tsang for
// alpha ≥ 1, boosted for alpha < 1).
func dirichlet(rng *tensor.RNG, alpha float64, k int) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (possible only for tiny alpha); fall back to a
		// single random owner.
		out[rng.Intn(k)] = 1
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) via Marsaglia & Tsang (2000).
func gammaSample(rng *tensor.RNG, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// NonIIDDirichlet names the Dirichlet scenario for experiment configs.
func NonIIDDirichlet(alpha float64) Heterogeneity {
	return Heterogeneity{Kind: "dirichlet", Pct: alpha}
}
