package data

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tensor"
)

// The three data-distribution scenarios of the paper (§4.1):
//
//  1. IID — samples are shuffled and split evenly.
//  2. Non-IID X% — a fraction X% of the dataset is sorted by label and
//     dealt out sequentially (so some workers get long same-label runs);
//     the remainder is distributed IID.
//  3. Non-IID label Y — every sample of label Y goes to a small group of
//     workers; the rest is IID.
//
// All partitioners split the data into K approximately equal shards and
// conserve every sample exactly once.

// PartitionIID splits ds into K equal IID shards.
func PartitionIID(ds *Dataset, k int, rng *tensor.RNG) []*Dataset {
	checkPartitionArgs(ds, k)
	perm := rng.Perm(ds.Len())
	return dealRoundRobin(ds, perm, k)
}

// PartitionNonIIDPercent implements scenario 2: pct (in [0,100]) percent
// of the samples are sorted by label and assigned in contiguous blocks;
// the rest are spread IID. pct=0 degenerates to IID, pct=100 to fully
// sorted shards.
func PartitionNonIIDPercent(ds *Dataset, k int, pct float64, rng *tensor.RNG) []*Dataset {
	checkPartitionArgs(ds, k)
	if pct < 0 || pct > 100 {
		panic(fmt.Sprintf("data: pct %v out of [0,100]", pct))
	}
	n := ds.Len()
	perm := rng.Perm(n)
	nSorted := int(float64(n) * pct / 100)

	sorted := append([]int(nil), perm[:nSorted]...)
	sort.Slice(sorted, func(a, b int) bool { return ds.Y[sorted[a]] < ds.Y[sorted[b]] })
	rest := perm[nSorted:]

	// Deal the sorted block in contiguous chunks so each worker receives
	// long same-label runs, then spread the remainder round-robin.
	shards := make([][]int, k)
	chunk := (nSorted + k - 1) / k
	for w := 0; w < k; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo > nSorted {
			lo = nSorted
		}
		if hi > nSorted {
			hi = nSorted
		}
		shards[w] = append(shards[w], sorted[lo:hi]...)
	}
	for i, idx := range rest {
		w := i % k
		shards[w] = append(shards[w], idx)
	}
	return subsets(ds, shards)
}

// PartitionNonIIDLabel implements scenario 3: all samples with label y are
// concentrated on `holders` workers (holders >= 1); everything else is
// IID across all K workers. To keep shard sizes approximately equal, the
// IID remainder is dealt preferentially to the non-holder workers first.
func PartitionNonIIDLabel(ds *Dataset, k int, label, holders int, rng *tensor.RNG) []*Dataset {
	checkPartitionArgs(ds, k)
	if label < 0 || label >= ds.NumClasses {
		panic(fmt.Sprintf("data: label %d out of range", label))
	}
	if holders < 1 || holders > k {
		panic(fmt.Sprintf("data: holders %d out of [1,%d]", holders, k))
	}
	var labelled, rest []int
	for i, y := range ds.Y {
		if y == label {
			labelled = append(labelled, i)
		} else {
			rest = append(rest, i)
		}
	}
	rng.Shuffle(labelled)
	rng.Shuffle(rest)

	shards := make([][]int, k)
	for i, idx := range labelled {
		shards[i%holders] = append(shards[i%holders], idx)
	}
	// Balance: fill shards smallest-first with the remaining samples.
	target := ds.Len() / k
	w := holders % k
	for _, idx := range rest {
		// Skip workers already at or above the target unless everyone is.
		tries := 0
		for len(shards[w]) >= target+1 && tries < k {
			w = (w + 1) % k
			tries++
		}
		shards[w] = append(shards[w], idx)
		w = (w + 1) % k
	}
	return subsets(ds, shards)
}

func checkPartitionArgs(ds *Dataset, k int) {
	if k <= 0 {
		panic(fmt.Sprintf("data: non-positive worker count %d", k))
	}
	if ds.Len() < k {
		panic(fmt.Sprintf("data: %d samples cannot cover %d workers", ds.Len(), k))
	}
}

func dealRoundRobin(ds *Dataset, order []int, k int) []*Dataset {
	shards := make([][]int, k)
	for i, idx := range order {
		shards[i%k] = append(shards[i%k], idx)
	}
	return subsets(ds, shards)
}

func subsets(ds *Dataset, shards [][]int) []*Dataset {
	out := make([]*Dataset, len(shards))
	for i, idx := range shards {
		out[i] = ds.Subset(idx)
	}
	return out
}

// Heterogeneity names a data-distribution scenario for experiment configs.
type Heterogeneity struct {
	// Kind is "iid", "percent" or "label".
	Kind string
	// Pct is used when Kind == "percent".
	Pct float64
	// Label and Holders are used when Kind == "label".
	Label, Holders int
}

// IID is the identically-distributed scenario.
func IID() Heterogeneity { return Heterogeneity{Kind: "iid"} }

// NonIIDPercent is the sorted-fraction scenario.
func NonIIDPercent(pct float64) Heterogeneity {
	return Heterogeneity{Kind: "percent", Pct: pct}
}

// NonIIDLabel is the concentrated-label scenario.
func NonIIDLabel(label, holders int) Heterogeneity {
	return Heterogeneity{Kind: "label", Label: label, Holders: holders}
}

// ParseHeterogeneity converts the CLI/API selector grammar — "iid",
// "label<Y>", "pct<X>", "dir<alpha>" — into a scenario. It is the
// single parser shared by fdarun, fdaserve and the distributed job
// spec, so every surface accepts exactly the same spellings.
func ParseHeterogeneity(s string) (Heterogeneity, error) {
	switch {
	case s == "" || s == "iid":
		return IID(), nil
	case strings.HasPrefix(s, "label"):
		y, err := strconv.Atoi(strings.TrimPrefix(s, "label"))
		if err != nil {
			return Heterogeneity{}, fmt.Errorf("data: bad heterogeneity %q", s)
		}
		return NonIIDLabel(y, 2), nil
	case strings.HasPrefix(s, "pct"):
		x, err := strconv.ParseFloat(strings.TrimPrefix(s, "pct"), 64)
		if err != nil {
			return Heterogeneity{}, fmt.Errorf("data: bad heterogeneity %q", s)
		}
		return NonIIDPercent(x), nil
	case strings.HasPrefix(s, "dir"):
		a, err := strconv.ParseFloat(strings.TrimPrefix(s, "dir"), 64)
		if err != nil {
			return Heterogeneity{}, fmt.Errorf("data: bad heterogeneity %q", s)
		}
		return NonIIDDirichlet(a), nil
	default:
		return Heterogeneity{}, fmt.Errorf("data: unknown heterogeneity %q", s)
	}
}

// String returns the paper's naming for the scenario.
func (h Heterogeneity) String() string {
	switch h.Kind {
	case "iid", "":
		return "IID"
	case "percent":
		return fmt.Sprintf("Non-IID: %.0f%%", h.Pct)
	case "label":
		return fmt.Sprintf("Non-IID: Label %q", fmt.Sprint(h.Label))
	case "dirichlet":
		return fmt.Sprintf("Non-IID: Dir(%.2g)", h.Pct)
	default:
		return "unknown"
	}
}

// Partition applies the scenario to ds.
func (h Heterogeneity) Partition(ds *Dataset, k int, rng *tensor.RNG) []*Dataset {
	switch h.Kind {
	case "iid", "":
		return PartitionIID(ds, k, rng)
	case "percent":
		return PartitionNonIIDPercent(ds, k, h.Pct, rng)
	case "label":
		holders := h.Holders
		if holders == 0 {
			holders = 2
		}
		return PartitionNonIIDLabel(ds, k, h.Label, holders, rng)
	case "dirichlet":
		return PartitionDirichlet(ds, k, h.Pct, rng)
	default:
		panic("data: unknown heterogeneity kind " + h.Kind)
	}
}
