package data

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDirichletConservesSamples(t *testing.T) {
	ds := taggedDataset(400, 4)
	shards := PartitionDirichlet(ds, 8, 0.5, tensor.NewRNG(1))
	conservesSamples(t, ds, shards)
}

func TestDirichletSmallAlphaSkews(t *testing.T) {
	ds := taggedDataset(1000, 10)
	shards := PartitionDirichlet(ds, 10, 0.05, tensor.NewRNG(2))
	// With α=0.05, most workers should have a dominant class.
	dominated := 0
	for _, s := range shards {
		if s.Len() == 0 {
			continue
		}
		maxc := 0
		for _, n := range s.ClassCounts() {
			if n > maxc {
				maxc = n
			}
		}
		if float64(maxc) > 0.5*float64(s.Len()) {
			dominated++
		}
	}
	if dominated < 5 {
		t.Fatalf("only %d/10 shards dominated by one class at α=0.05", dominated)
	}
}

func TestDirichletLargeAlphaApproachesIID(t *testing.T) {
	ds := taggedDataset(2000, 4)
	shards := PartitionDirichlet(ds, 4, 100, tensor.NewRNG(3))
	// With α=100 each shard should hold roughly 1/4 of each class.
	for _, s := range shards {
		for c, n := range s.ClassCounts() {
			frac := float64(n) / 500 // 500 per class total
			if math.Abs(frac-0.25) > 0.12 {
				t.Fatalf("class %d fraction %v far from 0.25 at α=100", c, frac)
			}
		}
	}
}

func TestDirichletValidation(t *testing.T) {
	ds := taggedDataset(40, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha <= 0")
		}
	}()
	PartitionDirichlet(ds, 4, 0, tensor.NewRNG(1))
}

func TestDirichletHeterogeneityDispatch(t *testing.T) {
	ds := taggedDataset(120, 4)
	h := NonIIDDirichlet(0.3)
	if h.String() != "Non-IID: Dir(0.3)" {
		t.Fatalf("string %q", h.String())
	}
	shards := h.Partition(ds, 4, tensor.NewRNG(4))
	conservesSamples(t, ds, shards)
}

func TestGammaSampleMoments(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, shape := range []float64{0.5, 1, 2.5} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		// Gamma(shape, 1) has mean = shape.
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Fatalf("Gamma(%v) sample mean %v", shape, mean)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := tensor.NewRNG(6)
	for i := 0; i < 100; i++ {
		p := dirichlet(rng, 0.3, 7)
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative proportion %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proportions sum to %v", sum)
		}
	}
}
