package data

import (
	"testing"

	"repro/internal/tensor"
)

func tinyDataset(n, classes int) *Dataset {
	ds := &Dataset{NumClasses: classes, Height: 2, Width: 2, Channels: 1}
	rng := tensor.NewRNG(1)
	for i := 0; i < n; i++ {
		x := make([]float64, 4)
		tensor.Normal(rng, x, 0, 1)
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, i%classes)
	}
	return ds
}

func TestValidateOK(t *testing.T) {
	ds := tinyDataset(12, 3)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadLabel(t *testing.T) {
	ds := tinyDataset(4, 2)
	ds.Y[0] = 5
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

func TestValidateCatchesShapeMismatch(t *testing.T) {
	ds := tinyDataset(4, 2)
	ds.Height = 3
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestValidateCatchesRaggedRows(t *testing.T) {
	ds := tinyDataset(4, 2)
	ds.Height, ds.Width, ds.Channels = 0, 0, 0
	ds.X[2] = ds.X[2][:3]
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestValidateCountMismatch(t *testing.T) {
	ds := tinyDataset(4, 2)
	ds.Y = ds.Y[:3]
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for X/Y count mismatch")
	}
}

func TestSubsetSharesFeatures(t *testing.T) {
	ds := tinyDataset(10, 2)
	sub := ds.Subset([]int{3, 7})
	if sub.Len() != 2 {
		t.Fatalf("subset len %d", sub.Len())
	}
	sub.X[0][0] = 42
	if ds.X[3][0] != 42 {
		t.Fatal("Subset should share feature storage")
	}
	if sub.Y[1] != ds.Y[7] {
		t.Fatal("Subset labels wrong")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	ds := tinyDataset(30, 3)
	// Tag each sample's first feature with its label so we can verify the
	// (x, y) pairing survives the shuffle.
	for i := range ds.X {
		ds.X[i][0] = float64(ds.Y[i])
	}
	ds.Shuffle(tensor.NewRNG(9))
	for i := range ds.X {
		if int(ds.X[i][0]) != ds.Y[i] {
			t.Fatal("shuffle broke (x,y) pairing")
		}
	}
}

func TestClassCounts(t *testing.T) {
	ds := tinyDataset(12, 3)
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n != 4 {
			t.Fatalf("class %d count %d want 4", c, n)
		}
	}
}

func TestSamplerDrawsValidBatches(t *testing.T) {
	ds := tinyDataset(20, 4)
	s := NewSampler(ds, tensor.NewRNG(5))
	b := s.Sample(8)
	if len(b.X) != 8 || len(b.Y) != 8 {
		t.Fatalf("batch sizes %d/%d", len(b.X), len(b.Y))
	}
	for i := range b.Y {
		if b.Y[i] < 0 || b.Y[i] >= 4 {
			t.Fatalf("bad label %d", b.Y[i])
		}
	}
}

func TestSamplerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(&Dataset{NumClasses: 2}, tensor.NewRNG(1))
}

func TestEpochIteratorCoversAllSamples(t *testing.T) {
	ds := tinyDataset(23, 3)
	it := NewEpochIterator(ds, tensor.NewRNG(7))
	seen := map[float64]int{}
	total := 0
	done := false
	for !done {
		var b Batch
		b, done = it.Next(5)
		total += len(b.X)
		for _, x := range b.X {
			seen[x[0]]++
		}
	}
	if total != 23 {
		t.Fatalf("epoch visited %d samples want 23", total)
	}
	if it.StepsPerEpoch(5) != 5 {
		t.Fatalf("StepsPerEpoch = %d want 5", it.StepsPerEpoch(5))
	}
}

func TestEpochIteratorReshuffles(t *testing.T) {
	ds := tinyDataset(10, 2)
	it := NewEpochIterator(ds, tensor.NewRNG(11))
	// Drain two epochs; should not panic and should keep producing batches.
	for e := 0; e < 2; e++ {
		done := false
		for !done {
			_, done = it.Next(3)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	tr1, te1 := MNISTLike(5)
	tr2, te2 := MNISTLike(5)
	if tr1.Len() != tr2.Len() || te1.Len() != te2.Len() {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range tr1.X {
		for j := range tr1.X[i] {
			if tr1.X[i][j] != tr2.X[i][j] {
				t.Fatal("features differ across identical seeds")
			}
		}
		if tr1.Y[i] != tr2.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	tr1, _ := MNISTLike(1)
	tr2, _ := MNISTLike(2)
	same := true
	for j := range tr1.X[0] {
		if tr1.X[0][j] != tr2.X[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical first sample")
	}
}

func TestSyntheticShapesAndValidity(t *testing.T) {
	for name, gen := range map[string]func(uint64) (*Dataset, *Dataset){
		"mnist": MNISTLike, "cifar10": CIFAR10Like, "cifar100": CIFAR100Like,
	} {
		tr, te := gen(3)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s train: %v", name, err)
		}
		if err := te.Validate(); err != nil {
			t.Fatalf("%s test: %v", name, err)
		}
		if tr.Len() == 0 || te.Len() == 0 {
			t.Fatalf("%s produced empty split", name)
		}
	}
}

func TestSyntheticClassBalance(t *testing.T) {
	tr, _ := MNISTLike(7)
	for c, n := range tr.ClassCounts() {
		if n != 240 {
			t.Fatalf("class %d has %d samples want 240", c, n)
		}
	}
}

func TestNormalizer(t *testing.T) {
	tr, te := MNISTLike(13)
	nz := FitNormalizer(tr)
	nz.Apply(tr)
	nz.Apply(te)
	// After standardization the training mean should be ~0 and std ~1.
	refit := FitNormalizer(tr)
	for j := range refit.Mean {
		if m := refit.Mean[j]; m < -1e-9 || m > 1e-9 {
			t.Fatalf("post-normalize mean[%d] = %v", j, m)
		}
		if s := refit.Std[j]; s < 0.999 || s > 1.001 {
			t.Fatalf("post-normalize std[%d] = %v", j, s)
		}
	}
}
