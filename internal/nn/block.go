package nn

import "repro/internal/tensor"

// AvgPool2D is a non-overlapping average pooling layer with a square
// window (DenseNet transition layers use average pooling).
type AvgPool2D struct {
	in   Shape
	size int
	y    []float64
	gin  []float64
}

// NewAvgPool2D returns a size×size average pool over in. Input
// dimensions must be divisible by the window size.
func NewAvgPool2D(in Shape, size int) *AvgPool2D {
	if size <= 0 || in.H%size != 0 || in.W%size != 0 {
		panic("nn: AvgPool2D window must evenly divide input")
	}
	l := &AvgPool2D{in: in, size: size}
	l.y = make([]float64, l.OutShape().Size())
	l.gin = make([]float64, in.Size())
	return l
}

// OutShape returns the pooled volume.
func (l *AvgPool2D) OutShape() Shape {
	return Shape{H: l.in.H / l.size, W: l.in.W / l.size, C: l.in.C}
}

func (l *AvgPool2D) InDim() int          { return l.in.Size() }
func (l *AvgPool2D) OutDim() int         { return l.OutShape().Size() }
func (l *AvgPool2D) ParamCount() int     { return 0 }
func (l *AvgPool2D) Bind(_, _ []float64) {}
func (l *AvgPool2D) Init(_ *tensor.RNG)  {}

func (l *AvgPool2D) Forward(x []float64, _ bool) []float64 {
	h, w := l.in.H, l.in.W
	oh, ow := h/l.size, w/l.size
	inv := 1 / float64(l.size*l.size)
	for c := 0; c < l.in.C; c++ {
		xin := x[c*h*w:]
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				var s float64
				for di := 0; di < l.size; di++ {
					for dj := 0; dj < l.size; dj++ {
						//fda:allow(floatsum, fixed-order size×size pooling window over strided taps; not a contiguous vector reduction a kernel could replace)
						s += xin[(i*l.size+di)*w+j*l.size+dj]
					}
				}
				l.y[c*oh*ow+i*ow+j] = s * inv
			}
		}
	}
	return l.y
}

func (l *AvgPool2D) Backward(gradOut []float64) []float64 {
	h, w := l.in.H, l.in.W
	oh, ow := h/l.size, w/l.size
	inv := 1 / float64(l.size*l.size)
	tensor.Zero(l.gin)
	for c := 0; c < l.in.C; c++ {
		gin := l.gin[c*h*w:]
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				g := gradOut[c*oh*ow+i*ow+j] * inv
				for di := 0; di < l.size; di++ {
					for dj := 0; dj < l.size; dj++ {
						gin[(i*l.size+di)*w+j*l.size+dj] = g
					}
				}
			}
		}
	}
	return l.gin
}

// DenseBlock is the defining DenseNet connectivity pattern: an inner
// layer's output is concatenated channel-wise with its input, so features
// accumulate across depth. The inner layer must preserve spatial
// dimensions (for example a same-padded Conv2D followed by an
// activation); the block's output has In.C + growth channels, where
// growth is the inner layer's channel count.
type DenseBlock struct {
	in    Shape
	inner Layer // Shape in → Shape{in.H, in.W, growth}
	grow  int

	out []float64
	gin []float64
}

// NewDenseBlock wraps inner, whose output volume must match the input
// spatially. growth is the inner output's channel count.
func NewDenseBlock(in Shape, inner Layer, growth int) *DenseBlock {
	if inner.InDim() != in.Size() {
		panic("nn: DenseBlock inner input mismatch")
	}
	if inner.OutDim() != in.H*in.W*growth {
		panic("nn: DenseBlock inner must map to H×W×growth")
	}
	b := &DenseBlock{in: in, inner: inner, grow: growth}
	b.out = make([]float64, b.OutDim())
	b.gin = make([]float64, in.Size())
	return b
}

// OutShape returns the concatenated volume.
func (b *DenseBlock) OutShape() Shape {
	return Shape{H: b.in.H, W: b.in.W, C: b.in.C + b.grow}
}

func (b *DenseBlock) InDim() int      { return b.in.Size() }
func (b *DenseBlock) OutDim() int     { return b.OutShape().Size() }
func (b *DenseBlock) ParamCount() int { return b.inner.ParamCount() }

func (b *DenseBlock) Bind(params, grads []float64) { b.inner.Bind(params, grads) }
func (b *DenseBlock) Init(rng *tensor.RNG)         { b.inner.Init(rng) }

func (b *DenseBlock) Forward(x []float64, train bool) []float64 {
	// Channel-major layout makes concatenation a pair of copies: the
	// passthrough channels first, the new features after.
	copy(b.out[:b.in.Size()], x)
	copy(b.out[b.in.Size():], b.inner.Forward(x, train))
	return b.out
}

func (b *DenseBlock) Backward(gradOut []float64) []float64 {
	// Gradient w.r.t. the input is the passthrough part plus the inner
	// layer's backpropagated gradient, fused into one sweep.
	innerGrad := b.inner.Backward(gradOut[b.in.Size():])
	tensor.AXPYTo(b.gin, 1, innerGrad, gradOut[:b.in.Size()])
	return b.gin
}
