package nn

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/tensor"
)

// batchLoss computes the mean loss of a batch without gradients, used as
// the reference function for finite differences.
func batchLoss(n *Network, b data.Batch) float64 {
	probs := make([]float64, n.OutDim())
	var loss float64
	for i := range b.X {
		logits := n.Forward(b.X[i], true)
		loss += SoftmaxCrossEntropy(probs, logits, b.Y[i])
	}
	return loss / float64(len(b.X))
}

// gradCheck compares LossGradBatch's analytic gradient with central
// finite differences on every parameter.
func gradCheck(t *testing.T, n *Network, b data.Batch, tol float64) {
	t.Helper()
	analytic := tensor.Clone(func() []float64 { n.LossGradBatch(b); return n.Grads() }())
	params := n.Params()
	const h = 1e-5
	for i := range params {
		orig := params[i]
		params[i] = orig + h
		lp := batchLoss(n, b)
		params[i] = orig - h
		lm := batchLoss(n, b)
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic[i]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("param %d: analytic %v numeric %v", i, analytic[i], numeric)
		}
	}
}

func smallBatch(rng *tensor.RNG, dim, classes, n int) data.Batch {
	b := data.Batch{X: make([][]float64, n), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		tensor.Normal(rng, x, 0, 1)
		b.X[i] = x
		b.Y[i] = rng.Intn(classes)
	}
	return b
}

func TestDenseGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	n := New(rng,
		NewDense(6, 5, GlorotUniformInit),
		NewReLU(5),
		NewDense(5, 3, GlorotUniformInit),
	)
	gradCheck(t, n, smallBatch(rng, 6, 3, 4), 1e-4)
}

func TestTanhGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	n := New(rng,
		NewDense(4, 6, HeNormalInit),
		NewTanh(6),
		NewDense(6, 2, HeNormalInit),
	)
	gradCheck(t, n, smallBatch(rng, 4, 2, 3), 1e-4)
}

func TestConvGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	in := Shape{H: 4, W: 4, C: 2}
	conv := NewConv2D(in, 3, 3, GlorotUniformInit)
	pool := NewMaxPool2D(conv.OutShape(), 2)
	n := New(rng,
		conv,
		NewReLU(conv.OutDim()),
		pool,
		NewDense(pool.OutDim(), 3, GlorotUniformInit),
	)
	gradCheck(t, n, smallBatch(rng, in.Size(), 3, 2), 1e-4)
}

func TestGlobalAvgPoolGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	in := Shape{H: 3, W: 3, C: 2}
	conv := NewConv2D(in, 4, 3, HeNormalInit)
	gap := NewGlobalAvgPool(conv.OutShape())
	n := New(rng,
		conv,
		NewTanh(conv.OutDim()),
		gap,
		NewDense(gap.OutDim(), 2, HeNormalInit),
	)
	gradCheck(t, n, smallBatch(rng, in.Size(), 2, 2), 1e-4)
}

func TestSoftmaxCrossEntropyProperties(t *testing.T) {
	logits := []float64{1, 2, 3}
	grad := make([]float64, 3)
	loss := SoftmaxCrossEntropy(grad, logits, 2)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	// grad sums to zero (softmax sums to 1, minus one at the label).
	var sum float64
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("grad sum = %v", sum)
	}
	// Gradient at label is negative, others positive.
	if grad[2] >= 0 || grad[0] <= 0 || grad[1] <= 0 {
		t.Fatalf("grad signs wrong: %v", grad)
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := []float64{1000, -1000, 0}
	grad := make([]float64, 3)
	loss := SoftmaxCrossEntropy(grad, logits, 0)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	loss = SoftmaxCrossEntropy(grad, logits, 1)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("worst-case loss not finite: %v", loss)
	}
}

func TestNetworkDimensionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched layers")
		}
	}()
	New(tensor.NewRNG(1), NewDense(4, 5, GlorotUniformInit), NewDense(6, 2, GlorotUniformInit))
}

func TestParamsAliasing(t *testing.T) {
	rng := tensor.NewRNG(5)
	n := New(rng, NewDense(3, 2, GlorotUniformInit))
	x := []float64{1, 2, 3}
	before := tensor.Clone(n.Forward(x, false))
	// Zeroing the flat vector must change the layer's behaviour: the layer
	// views, not copies, its parameters.
	tensor.Zero(n.Params())
	after := n.Forward(x, false)
	for i := range after {
		if after[i] != 0 {
			t.Fatalf("output %v after zeroing params; flat vector not aliased (before %v)", after, before)
		}
	}
}

func TestSetParamsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(6)
	n := New(rng, NewDense(3, 2, GlorotUniformInit))
	w := make([]float64, n.NumParams())
	tensor.Normal(rng, w, 0, 1)
	n.SetParams(w)
	got := n.Params()
	for i := range w {
		if got[i] != w[i] {
			t.Fatal("SetParams did not copy")
		}
	}
	w[0] = 999
	if got[0] == 999 {
		t.Fatal("SetParams aliases caller slice")
	}
}

func TestFreezeZeroesGradientPrefix(t *testing.T) {
	rng := tensor.NewRNG(7)
	d1 := NewDense(4, 4, GlorotUniformInit)
	n := New(rng, d1, NewReLU(4), NewDense(4, 2, GlorotUniformInit))
	n.Freeze(d1.ParamCount())
	n.LossGradBatch(smallBatch(rng, 4, 2, 3))
	g := n.Grads()
	for i := 0; i < d1.ParamCount(); i++ {
		if g[i] != 0 {
			t.Fatalf("frozen gradient %d = %v", i, g[i])
		}
	}
	nonzero := false
	for _, v := range g[d1.ParamCount():] {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("head gradient entirely zero")
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(8)
	l := NewDropout(1000, 0.5, rng)
	x := make([]float64, 1000)
	tensor.Fill(x, 1)
	// Eval mode: identity.
	out := l.Forward(x, false)
	for _, v := range out {
		if v != 1 {
			t.Fatalf("eval dropout changed activation: %v", v)
		}
	}
	// Train mode: roughly half dropped, survivors scaled by 2.
	out = l.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout kept %d of 1000 at rate 0.5", 1000-zeros)
	}
	if zeros+twos != 1000 {
		t.Fatal("dropout outputs inconsistent")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := tensor.NewRNG(9)
	l := NewDropout(50, 0.3, rng)
	x := make([]float64, 50)
	tensor.Fill(x, 1)
	out := l.Forward(x, true)
	g := make([]float64, 50)
	tensor.Fill(g, 1)
	gin := l.Backward(g)
	for i := range out {
		if (out[i] == 0) != (gin[i] == 0) {
			t.Fatalf("gradient mask mismatch at %d", i)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(Shape{H: 2, W: 2, C: 1}, 2)
	out := p.Forward([]float64{1, 5, 3, 2}, false)
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("maxpool out %v", out)
	}
	gin := p.Backward([]float64{7})
	want := []float64{0, 7, 0, 0}
	for i := range want {
		if gin[i] != want[i] {
			t.Fatalf("maxpool gin %v", gin)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1-channel 3×3 conv initialized to the identity kernel must return
	// the input (interior and border, thanks to zero padding).
	in := Shape{H: 3, W: 3, C: 1}
	c := NewConv2D(in, 1, 3, GlorotUniformInit)
	n := New(tensor.NewRNG(1), c)
	tensor.Zero(n.Params())
	// kernel center = 1.
	n.Params()[4] = 1
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := n.Forward(x, false)
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("identity conv out %v", out)
		}
	}
}

func TestConv2DBias(t *testing.T) {
	in := Shape{H: 2, W: 2, C: 1}
	c := NewConv2D(in, 2, 1, GlorotUniformInit)
	n := New(tensor.NewRNG(1), c)
	tensor.Zero(n.Params())
	// weights zero, biases 3 and -1 (weights = outC*inC*1*1 = 2 scalars).
	n.Params()[2] = 3
	n.Params()[3] = -1
	out := n.Forward([]float64{9, 9, 9, 9}, false)
	want := []float64{3, 3, 3, 3, -1, -1, -1, -1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("conv bias out %v", out)
		}
	}
}

func TestAccuracyAndLoss(t *testing.T) {
	rng := tensor.NewRNG(10)
	train, test := data.MNISTLike(1)
	_ = train
	n := New(rng,
		NewDense(test.Dim(), 32, GlorotUniformInit),
		NewReLU(32),
		NewDense(32, 10, GlorotUniformInit),
	)
	acc := n.Accuracy(test)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	loss := n.Loss(test)
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss %v", loss)
	}
	// Untrained 10-class accuracy should be near chance.
	if acc > 0.5 {
		t.Fatalf("untrained accuracy suspiciously high: %v", acc)
	}
}

// A small end-to-end sanity check: plain SGD on the synthetic task should
// reach well-above-chance accuracy quickly.
func TestNetworkLearns(t *testing.T) {
	rng := tensor.NewRNG(11)
	train, test := data.MNISTLike(2)
	nz := data.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)
	n := New(rng,
		NewDense(train.Dim(), 32, GlorotUniformInit),
		NewReLU(32),
		NewDense(32, 10, GlorotUniformInit),
	)
	s := data.NewSampler(train, tensor.NewRNG(12))
	for step := 0; step < 300; step++ {
		n.LossGradBatch(s.Sample(32))
		tensor.AXPY(-0.05, n.Grads(), n.Params())
	}
	if acc := n.Accuracy(test); acc < 0.6 {
		t.Fatalf("SGD reached only %.3f accuracy", acc)
	}
}
