package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"

	"repro/internal/data"
)

// Network is a feed-forward stack of layers whose parameters live in one
// contiguous flat vector, the representation required by the FDA protocol
// (drift, variance and AllReduce are all flat-vector operations).
type Network struct {
	layers []Layer
	params []float64
	grads  []float64
	// frozen marks a prefix of the parameter vector excluded from
	// gradient updates (used by the transfer-learning model to emulate a
	// feature extractor that is fixed in the feature-extraction stage).
	frozen int
	// probs is the softmax/gradient scratch shared by LossGradBatch and
	// Loss so the steady-state training step allocates nothing.
	probs []float64
}

// New wires layers into a network, allocates the flat parameter and
// gradient vectors, binds each layer's slice, and initializes weights
// using rng. It panics if consecutive layer dimensions do not match.
func New(rng *tensor.RNG, layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: network with no layers")
	}
	total := 0
	for i, l := range layers {
		if i > 0 && layers[i-1].OutDim() != l.InDim() {
			panic(fmt.Sprintf("nn: layer %d expects input %d but previous output is %d",
				i, l.InDim(), layers[i-1].OutDim()))
		}
		total += l.ParamCount()
	}
	n := &Network{
		layers: layers,
		params: make([]float64, total),
		grads:  make([]float64, total),
	}
	off := 0
	for _, l := range layers {
		c := l.ParamCount()
		l.Bind(n.params[off:off+c], n.grads[off:off+c])
		l.Init(rng)
		off += c
	}
	n.probs = make([]float64, n.OutDim())
	return n
}

// stochastic is implemented by layers that consume a private random
// stream at training time (today: Dropout). Checkpointing walks it so a
// restored replica replays the exact masks an uninterrupted run would
// have drawn.
type stochastic interface {
	RNGState() uint64
	SetRNGState(uint64)
}

// RNGStates returns the stream positions of the network's stochastic
// layers, in layer order. Deterministic networks return an empty slice.
func (n *Network) RNGStates() []uint64 {
	var states []uint64
	for _, l := range n.layers {
		if s, ok := l.(stochastic); ok {
			states = append(states, s.RNGState())
		}
	}
	return states
}

// SetRNGStates restores stream positions captured by RNGStates. It panics
// if the count does not match the network's stochastic layers — that
// means the checkpoint belongs to a different architecture.
func (n *Network) SetRNGStates(states []uint64) {
	i := 0
	for _, l := range n.layers {
		if s, ok := l.(stochastic); ok {
			if i >= len(states) {
				panic("nn: too few RNG states for network")
			}
			s.SetRNGState(states[i])
			i++
		}
	}
	if i != len(states) {
		panic("nn: too many RNG states for network")
	}
}

// NumParams returns the model dimension d.
func (n *Network) NumParams() int { return len(n.params) }

// Params returns the live flat parameter vector. Mutating it (for example
// overwriting it with an AllReduce average) changes the model in place.
func (n *Network) Params() []float64 { return n.params }

// Grads returns the live flat gradient accumulation vector.
func (n *Network) Grads() []float64 { return n.grads }

// ZeroGrads clears the gradient accumulator.
func (n *Network) ZeroGrads() { tensor.Zero(n.grads) }

// SetParams copies w into the network's parameter vector.
func (n *Network) SetParams(w []float64) {
	if len(w) != len(n.params) {
		panic("nn: SetParams dimension mismatch")
	}
	copy(n.params, w)
}

// InDim and OutDim report the network's activation interface.
func (n *Network) InDim() int  { return n.layers[0].InDim() }
func (n *Network) OutDim() int { return n.layers[len(n.layers)-1].OutDim() }

// Freeze marks the first `count` parameters as frozen: LossGradBatch still
// computes their gradients but zeroes them before returning, so any
// optimizer leaves them untouched. Freeze(0) unfreezes everything.
func (n *Network) Freeze(count int) {
	if count < 0 || count > len(n.params) {
		panic("nn: Freeze count out of range")
	}
	n.frozen = count
}

// Frozen returns the number of frozen leading parameters.
func (n *Network) Frozen() int { return n.frozen }

// Forward runs the network on one input and returns the logits. The
// returned slice is an internal buffer, valid until the next Forward.
func (n *Network) Forward(x []float64, train bool) []float64 {
	a := x
	for _, l := range n.layers {
		a = l.Forward(a, train)
	}
	return a
}

// backward propagates dL/dlogits through all layers, accumulating
// parameter gradients.
func (n *Network) backward(gradOut []float64) {
	g := gradOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// LossGradBatch runs forward+backward over a mini-batch with softmax
// cross-entropy loss, leaving the batch-mean gradient in Grads() and
// returning the mean loss. Any frozen prefix of the gradient is zeroed.
func (n *Network) LossGradBatch(b data.Batch) float64 {
	if len(b.X) == 0 {
		panic("nn: empty batch")
	}
	n.ZeroGrads()
	var loss float64
	for i := range b.X {
		logits := n.Forward(b.X[i], true)
		loss += SoftmaxCrossEntropy(n.probs, logits, b.Y[i])
		// n.probs now holds softmax(logits) − onehot(y) = dL/dlogits.
		n.backward(n.probs)
	}
	inv := 1 / float64(len(b.X))
	tensor.Scale(n.grads, inv)
	if n.frozen > 0 {
		tensor.Zero(n.grads[:n.frozen])
	}
	return loss * inv
}

// Loss returns the mean softmax cross-entropy over a dataset without
// touching gradients (dropout disabled).
func (n *Network) Loss(ds *data.Dataset) float64 {
	var loss float64
	for i := range ds.X {
		logits := n.Forward(ds.X[i], false)
		loss += SoftmaxCrossEntropy(n.probs, logits, ds.Y[i])
	}
	return loss / float64(ds.Len())
}

// Accuracy returns the top-1 accuracy over a dataset (dropout disabled).
func (n *Network) Accuracy(ds *data.Dataset) float64 {
	return float64(n.CountCorrect(ds, 0, ds.Len())) / float64(ds.Len())
}

// CountCorrect returns how many of the samples ds[lo:hi) the network
// classifies correctly (dropout disabled). The half-open range lets
// callers chunk a dataset across network replicas — one replica per
// goroutine, since Forward reuses internal buffers — and reduce the
// integer counts, which is order-independent and therefore bit-identical
// to a sequential scan.
func (n *Network) CountCorrect(ds *data.Dataset, lo, hi int) int {
	correct := 0
	for i := lo; i < hi; i++ {
		logits := n.Forward(ds.X[i], false)
		if tensor.ArgMax(logits) == ds.Y[i] {
			correct++
		}
	}
	return correct
}

// SoftmaxCrossEntropy computes the cross-entropy loss of logits against
// label y and writes dL/dlogits = softmax(logits) − onehot(y) into grad.
// grad must have the same length as logits.
func SoftmaxCrossEntropy(grad, logits []float64, y int) float64 {
	if len(grad) != len(logits) {
		panic("nn: SoftmaxCrossEntropy buffer mismatch")
	}
	if y < 0 || y >= len(logits) {
		panic("nn: label out of range")
	}
	// Stable softmax.
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		grad[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range grad {
		grad[i] *= inv
	}
	loss := -math.Log(grad[y] + 1e-300)
	grad[y] -= 1
	return loss
}
