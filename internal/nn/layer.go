// Package nn is a from-scratch neural-network training stack: layers with
// explicit backpropagation, softmax cross-entropy loss, and networks whose
// parameters live in a single contiguous flat vector.
//
// The flat-parameter design is what the FDA protocol needs: worker drift
// u = w − w_t0, model variance, sketching, and model AllReduce are all
// plain vector operations over Network.Params() with no per-layer
// marshalling. Layers receive sub-slices of the flat vector at bind time
// and view them as matrices in place.
//
// The stack is per-sample (mini-batches loop over samples and average
// gradients), which keeps the numerics easy to verify with finite
// differences. Within a sample the layers run on the fused kernel layer
// of internal/tensor — convolutions lower through a per-layer reusable
// im2col scratch (DESIGN.md §7) — and every layer owns preallocated
// activation and gradient buffers, so a steady-state training step
// performs zero heap allocations.
package nn

import (
	"math"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network.
//
// The Forward/Backward contract is single-sample: Forward consumes an
// input activation vector and returns the output activation; Backward
// consumes ∂L/∂output, accumulates parameter gradients into the bound
// gradient slice, and returns ∂L/∂input. Backward must be called directly
// after the Forward whose cached activations it consumes.
type Layer interface {
	// InDim and OutDim report the activation vector sizes.
	InDim() int
	OutDim() int
	// ParamCount reports how many scalars of the flat parameter vector
	// this layer owns.
	ParamCount() int
	// Bind attaches the layer to its slice of the network's flat parameter
	// and gradient vectors. Both slices have length ParamCount.
	Bind(params, grads []float64)
	// Init writes initial weights into the bound parameter slice.
	Init(rng *tensor.RNG)
	// Forward computes the layer output for input x. When train is false,
	// stochastic layers (dropout) act as identity×expectation.
	Forward(x []float64, train bool) []float64
	// Backward propagates the gradient; see the interface comment.
	Backward(gradOut []float64) []float64
}

// Shape describes a (height, width, channels) activation volume for
// spatial layers. Dense layers treat activations as flat vectors.
type Shape struct {
	H, W, C int
}

// Size returns the flattened length of the volume.
func (s Shape) Size() int { return s.H * s.W * s.C }

// relu, tanh and sigmoid are implemented as stateless-parameter layers
// that cache their forward activations.

// ReLU is the rectified-linear activation layer. It caches only its
// output: out > 0 exactly when the input was > 0, so the backward mask
// needs no separate input copy.
type ReLU struct {
	dim int
	out []float64
	gin []float64
}

// NewReLU returns a ReLU over dim-length activations.
func NewReLU(dim int) *ReLU {
	return &ReLU{dim: dim, out: make([]float64, dim), gin: make([]float64, dim)}
}

func (l *ReLU) InDim() int          { return l.dim }
func (l *ReLU) OutDim() int         { return l.dim }
func (l *ReLU) ParamCount() int     { return 0 }
func (l *ReLU) Bind(_, _ []float64) {}
func (l *ReLU) Init(_ *tensor.RNG)  {}

// Forward rectifies branchlessly: clearing all bits when the sign bit is
// set maps negative inputs and −0 to +0 and keeps non-negative inputs
// bit-exact, so the output equals the branching max(v, 0) for all finite
// inputs. Random activations make the sign branch unpredictable — the
// mask form trades it for three integer ops per element.
func (l *ReLU) Forward(x []float64, _ bool) []float64 {
	for i, v := range x {
		b := math.Float64bits(v)
		l.out[i] = math.Float64frombits(b &^ uint64(int64(b)>>63))
	}
	return l.out
}

// Backward masks the gradient by out > 0, again branchlessly: out is
// either a strictly positive value or +0, so "out > 0" is exactly
// "bits(out) != 0", turned into an all-ones/all-zero mask.
func (l *ReLU) Backward(gradOut []float64) []float64 {
	out := l.out
	g := gradOut[:len(out)]
	for i, v := range out {
		b := int64(math.Float64bits(v))
		mask := uint64((b | -b) >> 63)
		l.gin[i] = math.Float64frombits(math.Float64bits(g[i]) & mask)
	}
	return l.gin
}

// Tanh is the hyperbolic-tangent activation layer.
type Tanh struct {
	dim int
	out []float64
	gin []float64
}

// NewTanh returns a Tanh over dim-length activations.
func NewTanh(dim int) *Tanh {
	return &Tanh{dim: dim, out: make([]float64, dim), gin: make([]float64, dim)}
}

func (l *Tanh) InDim() int          { return l.dim }
func (l *Tanh) OutDim() int         { return l.dim }
func (l *Tanh) ParamCount() int     { return 0 }
func (l *Tanh) Bind(_, _ []float64) {}
func (l *Tanh) Init(_ *tensor.RNG)  {}

func (l *Tanh) Forward(x []float64, _ bool) []float64 {
	for i, v := range x {
		l.out[i] = tanh(v)
	}
	return l.out
}

func (l *Tanh) Backward(gradOut []float64) []float64 {
	for i, y := range l.out {
		l.gin[i] = gradOut[i] * (1 - y*y)
	}
	return l.gin
}

// tanh avoids importing math in the hot path signature; math.Tanh is fine.
func tanh(x float64) float64 {
	// Clamp to avoid overflow in exp for extreme activations.
	if x > 20 {
		return 1
	}
	if x < -20 {
		return -1
	}
	e2 := exp(2 * x)
	return (e2 - 1) / (e2 + 1)
}
