// Package nn is a from-scratch neural-network training stack: layers with
// explicit backpropagation, softmax cross-entropy loss, and networks whose
// parameters live in a single contiguous flat vector.
//
// The flat-parameter design is what the FDA protocol needs: worker drift
// u = w − w_t0, model variance, sketching, and model AllReduce are all
// plain vector operations over Network.Params() with no per-layer
// marshalling. Layers receive sub-slices of the flat vector at bind time
// and view them as matrices in place.
//
// The stack is deliberately per-sample (mini-batches loop over samples and
// average gradients): at the model sizes used in this reproduction the
// simplicity and cache behaviour beat an im2col/GEMM pipeline, and the
// numerics are easier to verify with finite differences.
package nn

import "repro/internal/tensor"

// Layer is one differentiable stage of a network.
//
// The Forward/Backward contract is single-sample: Forward consumes an
// input activation vector and returns the output activation; Backward
// consumes ∂L/∂output, accumulates parameter gradients into the bound
// gradient slice, and returns ∂L/∂input. Backward must be called directly
// after the Forward whose cached activations it consumes.
type Layer interface {
	// InDim and OutDim report the activation vector sizes.
	InDim() int
	OutDim() int
	// ParamCount reports how many scalars of the flat parameter vector
	// this layer owns.
	ParamCount() int
	// Bind attaches the layer to its slice of the network's flat parameter
	// and gradient vectors. Both slices have length ParamCount.
	Bind(params, grads []float64)
	// Init writes initial weights into the bound parameter slice.
	Init(rng *tensor.RNG)
	// Forward computes the layer output for input x. When train is false,
	// stochastic layers (dropout) act as identity×expectation.
	Forward(x []float64, train bool) []float64
	// Backward propagates the gradient; see the interface comment.
	Backward(gradOut []float64) []float64
}

// Shape describes a (height, width, channels) activation volume for
// spatial layers. Dense layers treat activations as flat vectors.
type Shape struct {
	H, W, C int
}

// Size returns the flattened length of the volume.
func (s Shape) Size() int { return s.H * s.W * s.C }

// relu, tanh and sigmoid are implemented as stateless-parameter layers
// that cache their forward activations.

// ReLU is the rectified-linear activation layer.
type ReLU struct {
	dim int
	in  []float64
	out []float64
}

// NewReLU returns a ReLU over dim-length activations.
func NewReLU(dim int) *ReLU {
	return &ReLU{dim: dim, in: make([]float64, dim), out: make([]float64, dim)}
}

func (l *ReLU) InDim() int          { return l.dim }
func (l *ReLU) OutDim() int         { return l.dim }
func (l *ReLU) ParamCount() int     { return 0 }
func (l *ReLU) Bind(_, _ []float64) {}
func (l *ReLU) Init(_ *tensor.RNG)  {}
func (l *ReLU) Forward(x []float64, _ bool) []float64 {
	copy(l.in, x)
	for i, v := range x {
		if v > 0 {
			l.out[i] = v
		} else {
			l.out[i] = 0
		}
	}
	return l.out
}

func (l *ReLU) Backward(gradOut []float64) []float64 {
	g := make([]float64, l.dim)
	for i, v := range l.in {
		if v > 0 {
			g[i] = gradOut[i]
		}
	}
	return g
}

// Tanh is the hyperbolic-tangent activation layer.
type Tanh struct {
	dim int
	out []float64
}

// NewTanh returns a Tanh over dim-length activations.
func NewTanh(dim int) *Tanh {
	return &Tanh{dim: dim, out: make([]float64, dim)}
}

func (l *Tanh) InDim() int          { return l.dim }
func (l *Tanh) OutDim() int         { return l.dim }
func (l *Tanh) ParamCount() int     { return 0 }
func (l *Tanh) Bind(_, _ []float64) {}
func (l *Tanh) Init(_ *tensor.RNG)  {}

func (l *Tanh) Forward(x []float64, _ bool) []float64 {
	for i, v := range x {
		l.out[i] = tanh(v)
	}
	return l.out
}

func (l *Tanh) Backward(gradOut []float64) []float64 {
	g := make([]float64, l.dim)
	for i, y := range l.out {
		g[i] = gradOut[i] * (1 - y*y)
	}
	return g
}

// tanh avoids importing math in the hot path signature; math.Tanh is fine.
func tanh(x float64) float64 {
	// Clamp to avoid overflow in exp for extreme activations.
	if x > 20 {
		return 1
	}
	if x < -20 {
		return -1
	}
	e2 := exp(2 * x)
	return (e2 - 1) / (e2 + 1)
}
