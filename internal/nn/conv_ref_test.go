package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// refConv2D is the pre-im2col direct convolution, kept verbatim as the
// scalar reference the fused kernels are pinned against.
type refConv2D struct {
	in   Shape
	outC int
	k    int
	w, b []float64
}

func (l *refConv2D) widx(oc, ic, ki, kj int) int {
	return ((oc*l.in.C+ic)*l.k+ki)*l.k + kj
}

func (l *refConv2D) forward(y, x []float64) {
	h, w, inC := l.in.H, l.in.W, l.in.C
	pad := l.k / 2
	plane := h * w
	for oc := 0; oc < l.outC; oc++ {
		out := y[oc*plane : (oc+1)*plane]
		tensor.Fill(out, l.b[oc])
		for ic := 0; ic < inC; ic++ {
			xin := x[ic*plane : (ic+1)*plane]
			for ki := 0; ki < l.k; ki++ {
				for kj := 0; kj < l.k; kj++ {
					wv := l.w[l.widx(oc, ic, ki, kj)]
					if wv == 0 {
						continue
					}
					di, dj := ki-pad, kj-pad
					iLo, iHi := max(0, -di), min(h, h-di)
					jLo, jHi := max(0, -dj), min(w, w-dj)
					for i := iLo; i < iHi; i++ {
						srcRow := xin[(i+di)*w:]
						dstRow := out[i*w:]
						for j := jLo; j < jHi; j++ {
							dstRow[j] += wv * srcRow[j+dj]
						}
					}
				}
			}
		}
	}
}

func (l *refConv2D) backward(gw, gb, gin, x, gradOut []float64) {
	h, w, inC := l.in.H, l.in.W, l.in.C
	pad := l.k / 2
	plane := h * w
	tensor.Zero(gin)
	for oc := 0; oc < l.outC; oc++ {
		gout := gradOut[oc*plane : (oc+1)*plane]
		var bsum float64
		for _, g := range gout {
			bsum += g
		}
		gb[oc] += bsum
		for ic := 0; ic < inC; ic++ {
			xin := x[ic*plane : (ic+1)*plane]
			gc := gin[ic*plane : (ic+1)*plane]
			for ki := 0; ki < l.k; ki++ {
				for kj := 0; kj < l.k; kj++ {
					di, dj := ki-pad, kj-pad
					iLo, iHi := max(0, -di), min(h, h-di)
					jLo, jHi := max(0, -dj), min(w, w-dj)
					var wgrad float64
					wv := l.w[l.widx(oc, ic, ki, kj)]
					for i := iLo; i < iHi; i++ {
						srcRow := xin[(i+di)*w:]
						ginRow := gc[(i+di)*w:]
						goutRow := gout[i*w:]
						for j := jLo; j < jHi; j++ {
							g := goutRow[j]
							wgrad += g * srcRow[j+dj]
							ginRow[j+dj] += g * wv
						}
					}
					gw[l.widx(oc, ic, ki, kj)] += wgrad
				}
			}
		}
	}
}

// convShapes covers multi-channel, k=1/3/5, non-square volumes, and
// degenerate geometries where the kernel half-width exceeds an image
// dimension (taps entirely in the padding — regression: the im2col fast
// paths must not slice out of bounds there).
var convShapes = []struct {
	in   Shape
	outC int
	k    int
}{
	{Shape{H: 8, W: 8, C: 1}, 6, 3},
	{Shape{H: 4, W: 4, C: 3}, 4, 3},
	{Shape{H: 5, W: 7, C: 2}, 3, 5},
	{Shape{H: 3, W: 3, C: 2}, 2, 1},
	{Shape{H: 12, W: 12, C: 3}, 8, 3},
	{Shape{H: 1, W: 8, C: 1}, 2, 5}, // pad > H: vertical taps all-padding
	{Shape{H: 8, W: 1, C: 2}, 1, 5}, // pad > W: horizontal taps all-padding
	{Shape{H: 1, W: 1, C: 2}, 2, 3}, // pad > both
}

func buildPair(t *testing.T, in Shape, outC, k int, seed uint64) (*Conv2D, *refConv2D, []float64) {
	t.Helper()
	l := NewConv2D(in, outC, k, GlorotUniformInit)
	params := make([]float64, l.ParamCount())
	grads := make([]float64, l.ParamCount())
	l.Bind(params, grads)
	l.Init(tensor.NewRNG(seed))
	params[3] = 0 // exercise the zero-weight skip on both sides
	nW := outC * in.C * k * k
	ref := &refConv2D{in: in, outC: outC, k: k, w: params[:nW], b: params[nW:]}
	x := make([]float64, in.Size())
	tensor.Normal(tensor.NewRNG(seed^0xc0), x, 0, 1)
	return l, ref, x
}

// TestConvForwardMatchesScalarReferenceExactly: the im2col forward
// accumulates taps in the same (ic, ki, kj) order onto the bias as the
// direct convolution, so outputs must agree bit for bit.
func TestConvForwardMatchesScalarReferenceExactly(t *testing.T) {
	for si, sh := range convShapes {
		l, ref, x := buildPair(t, sh.in, sh.outC, sh.k, uint64(40+si))
		got := l.Forward(x, true)
		want := make([]float64, l.OutDim())
		ref.forward(want, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: forward[%d] = %v, reference %v", sh, i, got[i], want[i])
			}
		}
	}
}

// TestConvBackwardMatchesScalarReference: weight and bias gradients are
// reductions in the same pixel order as the reference (exact); the input
// gradient regroups the (oc, tap) accumulation order and is compared at
// last-ulp tolerance.
func TestConvBackwardMatchesScalarReference(t *testing.T) {
	for si, sh := range convShapes {
		l, ref, x := buildPair(t, sh.in, sh.outC, sh.k, uint64(60+si))
		gout := make([]float64, l.OutDim())
		tensor.Normal(tensor.NewRNG(uint64(90+si)), gout, 0, 1)

		l.Forward(x, true)
		gotGin := tensor.Clone(l.Backward(gout))
		nW := sh.outC * sh.in.C * sh.k * sh.k
		gotGw := tensor.Clone(l.gw[:nW])
		gotGb := tensor.Clone(l.gb)

		refGw := make([]float64, nW)
		refGb := make([]float64, sh.outC)
		refGin := make([]float64, sh.in.Size())
		ref.backward(refGw, refGb, refGin, x, gout)

		for i := range refGw {
			if gotGw[i] != refGw[i] {
				t.Fatalf("shape %v: gw[%d] = %v, reference %v", sh, i, gotGw[i], refGw[i])
			}
		}
		for i := range refGb {
			if gotGb[i] != refGb[i] {
				t.Fatalf("shape %v: gb[%d] = %v, reference %v", sh, i, gotGb[i], refGb[i])
			}
		}
		for i := range refGin {
			diff := math.Abs(gotGin[i] - refGin[i])
			tol := 1e-12 * (1 + math.Abs(refGin[i]))
			if diff > tol {
				t.Fatalf("shape %v: gin[%d] = %v, reference %v (|Δ|=%g)", sh, i, gotGin[i], refGin[i], diff)
			}
		}
	}
}

// TestConvBackwardAccumulates verifies gradients accumulate across
// samples (the mini-batch contract) rather than being overwritten.
func TestConvBackwardAccumulates(t *testing.T) {
	sh := convShapes[1]
	l, _, x := buildPair(t, sh.in, sh.outC, sh.k, 77)
	gout := make([]float64, l.OutDim())
	tensor.Fill(gout, 0.5)
	l.Forward(x, true)
	l.Backward(gout)
	once := tensor.Clone(l.gw)
	l.Forward(x, true)
	l.Backward(gout)
	for i := range once {
		if math.Abs(l.gw[i]-2*once[i]) > 1e-12*(1+math.Abs(once[i])) {
			t.Fatalf("gw[%d] after two passes = %v, want %v", i, l.gw[i], 2*once[i])
		}
	}
}
