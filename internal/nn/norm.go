package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm is a per-activation batch-normalization layer operating in
// the per-sample training regime of this stack: normalization statistics
// are exponential moving averages updated each training forward pass
// (momentum Momentum), and inference uses the running statistics. The
// learnable scale γ and shift β live in the flat parameter vector, so
// they participate in drift, variance and synchronization like any other
// parameter — as in the paper's DenseNet models, which batch-normalize
// throughout.
type BatchNorm struct {
	dim      int
	Momentum float64
	Eps      float64

	gamma, beta   []float64 // parameter views
	gGamma, gBeta []float64 // gradient views

	runMean, runVar []float64
	xhat            []float64 // cached normalized input
	std             []float64 // cached stddev used in the last forward
	out             []float64
	gin             []float64
}

// NewBatchNorm returns a batch-normalization layer over dim activations.
func NewBatchNorm(dim int) *BatchNorm {
	if dim <= 0 {
		panic("nn: BatchNorm with non-positive dimension")
	}
	bn := &BatchNorm{
		dim: dim, Momentum: 0.9, Eps: 1e-5,
		runMean: make([]float64, dim),
		runVar:  make([]float64, dim),
		xhat:    make([]float64, dim),
		std:     make([]float64, dim),
		out:     make([]float64, dim),
		gin:     make([]float64, dim),
	}
	tensor.Fill(bn.runVar, 1)
	return bn
}

func (l *BatchNorm) InDim() int      { return l.dim }
func (l *BatchNorm) OutDim() int     { return l.dim }
func (l *BatchNorm) ParamCount() int { return 2 * l.dim }

func (l *BatchNorm) Bind(params, grads []float64) {
	l.gamma, l.beta = params[:l.dim], params[l.dim:]
	l.gGamma, l.gBeta = grads[:l.dim], grads[l.dim:]
}

func (l *BatchNorm) Init(_ *tensor.RNG) {
	tensor.Fill(l.gamma, 1)
	tensor.Zero(l.beta)
}

// Forward normalizes with running statistics; during training the
// statistics are first updated from the current activation (a streaming
// EMA stand-in for mini-batch statistics, suited to per-sample backprop).
func (l *BatchNorm) Forward(x []float64, train bool) []float64 {
	if train {
		m := l.Momentum
		for i, v := range x {
			l.runMean[i] = m*l.runMean[i] + (1-m)*v
			d := v - l.runMean[i]
			l.runVar[i] = m*l.runVar[i] + (1-m)*d*d
		}
	}
	for i, v := range x {
		l.std[i] = math.Sqrt(l.runVar[i] + l.Eps)
		l.xhat[i] = (v - l.runMean[i]) / l.std[i]
		l.out[i] = l.gamma[i]*l.xhat[i] + l.beta[i]
	}
	return l.out
}

// Backward treats the running statistics as constants (the standard
// inference-style gradient, exact for the EMA formulation since each
// sample's contribution to the EMA is O(1−momentum)).
func (l *BatchNorm) Backward(gradOut []float64) []float64 {
	for i := range gradOut {
		l.gGamma[i] += gradOut[i] * l.xhat[i]
		l.gBeta[i] += gradOut[i]
		l.gin[i] = gradOut[i] * l.gamma[i] / l.std[i]
	}
	return l.gin
}

// Sigmoid is the logistic activation layer.
type Sigmoid struct {
	dim int
	out []float64
	gin []float64
}

// NewSigmoid returns a Sigmoid over dim activations.
func NewSigmoid(dim int) *Sigmoid {
	return &Sigmoid{dim: dim, out: make([]float64, dim), gin: make([]float64, dim)}
}

func (l *Sigmoid) InDim() int          { return l.dim }
func (l *Sigmoid) OutDim() int         { return l.dim }
func (l *Sigmoid) ParamCount() int     { return 0 }
func (l *Sigmoid) Bind(_, _ []float64) {}
func (l *Sigmoid) Init(_ *tensor.RNG)  {}

func (l *Sigmoid) Forward(x []float64, _ bool) []float64 {
	for i, v := range x {
		l.out[i] = 1 / (1 + math.Exp(-v))
	}
	return l.out
}

func (l *Sigmoid) Backward(gradOut []float64) []float64 {
	for i, y := range l.out {
		l.gin[i] = gradOut[i] * y * (1 - y)
	}
	return l.gin
}

// LeakyReLU is max(x, αx) with slope α on the negative side.
type LeakyReLU struct {
	dim   int
	Alpha float64
	in    []float64
	out   []float64
	gin   []float64
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(dim int, alpha float64) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		panic("nn: LeakyReLU slope outside [0,1)")
	}
	return &LeakyReLU{
		dim: dim, Alpha: alpha,
		in: make([]float64, dim), out: make([]float64, dim), gin: make([]float64, dim),
	}
}

func (l *LeakyReLU) InDim() int          { return l.dim }
func (l *LeakyReLU) OutDim() int         { return l.dim }
func (l *LeakyReLU) ParamCount() int     { return 0 }
func (l *LeakyReLU) Bind(_, _ []float64) {}
func (l *LeakyReLU) Init(_ *tensor.RNG)  {}

func (l *LeakyReLU) Forward(x []float64, _ bool) []float64 {
	copy(l.in, x)
	for i, v := range x {
		if v > 0 {
			l.out[i] = v
		} else {
			l.out[i] = l.Alpha * v
		}
	}
	return l.out
}

func (l *LeakyReLU) Backward(gradOut []float64) []float64 {
	for i, v := range l.in {
		if v > 0 {
			l.gin[i] = gradOut[i]
		} else {
			l.gin[i] = l.Alpha * gradOut[i]
		}
	}
	return l.gin
}
