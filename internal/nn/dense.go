package nn

import (
	"math"

	"repro/internal/tensor"
)

// exp is math.Exp; aliased so activation code reads compactly.
func exp(x float64) float64 { return math.Exp(x) }

// InitScheme selects the weight initialization for parameterized layers,
// matching the paper's model settings (Glorot uniform for LeNet-5/VGG16*,
// He normal for the DenseNets).
type InitScheme int

const (
	// GlorotUniformInit draws from U(±sqrt(6/(fanIn+fanOut))).
	GlorotUniformInit InitScheme = iota
	// HeNormalInit draws from N(0, 2/fanIn).
	HeNormalInit
)

// Dense is a fully connected layer: out = W·x + b with W of shape
// out×in viewed over the flat parameter vector.
type Dense struct {
	in, out int
	scheme  InitScheme

	w, b   *tensor.Mat // parameter views: w is out×in, b is 1×out
	gw, gb *tensor.Mat // gradient views, same shapes

	x   []float64 // cached input
	y   []float64 // output buffer
	gin []float64 // input-gradient buffer
}

// NewDense returns an out×in fully connected layer.
func NewDense(in, out int, scheme InitScheme) *Dense {
	if in <= 0 || out <= 0 {
		panic("nn: Dense with non-positive dimension")
	}
	return &Dense{
		in: in, out: out, scheme: scheme,
		x: make([]float64, in), y: make([]float64, out), gin: make([]float64, in),
	}
}

func (l *Dense) InDim() int      { return l.in }
func (l *Dense) OutDim() int     { return l.out }
func (l *Dense) ParamCount() int { return l.out*l.in + l.out }

func (l *Dense) Bind(params, grads []float64) {
	nW := l.out * l.in
	l.w = tensor.MatFrom(l.out, l.in, params[:nW])
	l.b = tensor.MatFrom(1, l.out, params[nW:])
	l.gw = tensor.MatFrom(l.out, l.in, grads[:nW])
	l.gb = tensor.MatFrom(1, l.out, grads[nW:])
}

func (l *Dense) Init(rng *tensor.RNG) {
	switch l.scheme {
	case HeNormalInit:
		tensor.HeNormal(rng, l.w.Data, l.in)
	default:
		tensor.GlorotUniform(rng, l.w.Data, l.in, l.out)
	}
	tensor.Zero(l.b.Data)
}

// Forward computes y = W·x + b in one pass over the rows: each output
// is its row dot product (accumulated left to right) plus the bias added
// last — exactly the operation order of MatVec followed by a bias Add,
// so results are bit-identical to the two-pass reference.
func (l *Dense) Forward(x []float64, _ bool) []float64 {
	copy(l.x, x)
	b := l.b.Data
	for i := 0; i < l.out; i++ {
		l.y[i] = tensor.Dot(l.w.Row(i), x) + b[i]
	}
	return l.y
}

func (l *Dense) Backward(gradOut []float64) []float64 {
	// dW += g xᵀ, db += g, dx = Wᵀ g.
	tensor.AddOuter(l.gw, 1, gradOut, l.x)
	tensor.AXPY(1, gradOut, l.gb.Data)
	tensor.MatTVec(l.gin, l.w, gradOut)
	return l.gin
}

// Dropout zeroes each activation with probability Rate at training time
// and scales the survivors by 1/(1−Rate) (inverted dropout), so inference
// is the identity. The paper adds dropout 0.2 to the DenseNet models.
type Dropout struct {
	dim  int
	rate float64
	rng  *tensor.RNG
	mask []bool
	out  []float64
	gin  []float64
}

// NewDropout returns a dropout layer with the given drop rate in [0, 1).
// The rng drives the per-step masks; giving each worker's network its own
// stream keeps workers' stochasticity independent, as on real hardware.
func NewDropout(dim int, rate float64, rng *tensor.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic("nn: dropout rate outside [0,1)")
	}
	return &Dropout{
		dim: dim, rate: rate, rng: rng,
		mask: make([]bool, dim), out: make([]float64, dim), gin: make([]float64, dim),
	}
}

// RNGState exposes the mask stream position for checkpointing.
func (l *Dropout) RNGState() uint64 { return l.rng.State() }

// SetRNGState rewinds the mask stream to a captured position.
func (l *Dropout) SetRNGState(s uint64) { l.rng.SetState(s) }

func (l *Dropout) InDim() int          { return l.dim }
func (l *Dropout) OutDim() int         { return l.dim }
func (l *Dropout) ParamCount() int     { return 0 }
func (l *Dropout) Bind(_, _ []float64) {}
func (l *Dropout) Init(_ *tensor.RNG)  {}

func (l *Dropout) Forward(x []float64, train bool) []float64 {
	if !train || l.rate == 0 {
		copy(l.out, x)
		// Mark mask pass-through so a Backward after eval Forward is sane.
		for i := range l.mask {
			l.mask[i] = true
		}
		return l.out
	}
	keep := 1 - l.rate
	scale := 1 / keep
	for i, v := range x {
		if l.rng.Float64() < keep {
			l.mask[i] = true
			l.out[i] = v * scale
		} else {
			l.mask[i] = false
			l.out[i] = 0
		}
	}
	return l.out
}

func (l *Dropout) Backward(gradOut []float64) []float64 {
	scale := 1 / (1 - l.rate)
	if l.rate == 0 {
		scale = 1
	}
	for i, keep := range l.mask {
		if keep {
			l.gin[i] = gradOut[i] * scale
		} else {
			l.gin[i] = 0
		}
	}
	return l.gin
}
