package nn

import "repro/internal/tensor"

// Conv2D is a 2-D convolution over channel-major volumes (layout
// [c][h][w] flattened), stride 1, with "same" zero padding for odd kernel
// sizes. Weights are stored flat as [outC][inC][kh][kw] followed by one
// bias per output channel.
type Conv2D struct {
	in     Shape
	outC   int
	k      int // square kernel size, odd
	scheme InitScheme

	w, gw []float64 // outC*inC*k*k weight / gradient views
	b, gb []float64 // outC bias / gradient views

	y   []float64 // output buffer
	gin []float64 // input-gradient buffer

	// im2col scratch, owned by the layer and reused across samples so the
	// steady-state step allocates nothing. cols is the (inC·k·k)×(H·W)
	// patch matrix of the last Forward — row r holds, for every output
	// pixel, the input value under kernel tap r (zero where the tap falls
	// outside the image); Backward consumes it in place of a cached input.
	// gcol and gcol2 are plane-length rows of the patch-gradient for a
	// pair of taps, scattered back into gin tap by tap.
	cols  []float64
	gcol  []float64
	gcol2 []float64
}

// NewConv2D returns a same-padded stride-1 convolution with a square odd
// kernel of size k, mapping in (H×W×C) to H×W×outC.
func NewConv2D(in Shape, outC, k int, scheme InitScheme) *Conv2D {
	if in.H <= 0 || in.W <= 0 || in.C <= 0 || outC <= 0 {
		panic("nn: Conv2D with non-positive dimension")
	}
	if k <= 0 || k%2 == 0 {
		panic("nn: Conv2D kernel must be positive and odd")
	}
	l := &Conv2D{in: in, outC: outC, k: k, scheme: scheme}
	plane := in.H * in.W
	l.y = make([]float64, l.OutShape().Size())
	l.gin = make([]float64, in.Size())
	l.cols = make([]float64, in.C*k*k*plane)
	l.gcol = make([]float64, plane)
	l.gcol2 = make([]float64, plane)
	return l
}

// OutShape returns the output volume (same H, W; outC channels).
func (l *Conv2D) OutShape() Shape { return Shape{H: l.in.H, W: l.in.W, C: l.outC} }

func (l *Conv2D) InDim() int  { return l.in.Size() }
func (l *Conv2D) OutDim() int { return l.OutShape().Size() }

func (l *Conv2D) ParamCount() int { return l.outC*l.in.C*l.k*l.k + l.outC }

func (l *Conv2D) Bind(params, grads []float64) {
	nW := l.outC * l.in.C * l.k * l.k
	l.w, l.b = params[:nW], params[nW:]
	l.gw, l.gb = grads[:nW], grads[nW:]
}

func (l *Conv2D) Init(rng *tensor.RNG) {
	fanIn := l.in.C * l.k * l.k
	fanOut := l.outC * l.k * l.k
	switch l.scheme {
	case HeNormalInit:
		tensor.HeNormal(rng, l.w, fanIn)
	default:
		tensor.GlorotUniform(rng, l.w, fanIn, fanOut)
	}
	tensor.Zero(l.b)
}

// im2col lowers x into the layer's patch matrix: row r = (ic, ki, kj)
// (the weight layout) holds, pixel by pixel, the input value that kernel
// tap touches, with zeros where the tap falls into the padding. Boundary
// clipping is computed once per tap here instead of once per (tap, output
// channel) as in a direct convolution.
func (l *Conv2D) im2col(x []float64) {
	h, w, inC := l.in.H, l.in.W, l.in.C
	pad := l.k / 2
	plane := h * w
	r := 0
	for ic := 0; ic < inC; ic++ {
		xin := x[ic*plane : (ic+1)*plane]
		for ki := 0; ki < l.k; ki++ {
			for kj := 0; kj < l.k; kj++ {
				row := l.cols[r*plane : (r+1)*plane]
				di, dj := ki-pad, kj-pad
				iLo, iHi := max(0, -di), min(h, h-di)
				jLo, jHi := max(0, -dj), min(w, w-dj)
				switch {
				case iLo >= iHi || jLo >= jHi:
					// Tap entirely in the padding (kernel wider than the
					// image): the whole row is zeros.
					tensor.Zero(row)
				case jLo == 0 && jHi == w:
					// Horizontally centered tap: one contiguous copy with
					// zeroed vertical borders.
					tensor.Zero(row[:iLo*w])
					copy(row[iLo*w:iHi*w], xin[(iLo+di)*w:(iHi+di)*w])
					tensor.Zero(row[iHi*w:])
				default:
					tensor.Zero(row)
					for i := iLo; i < iHi; i++ {
						copy(row[i*w+jLo:i*w+jHi], xin[(i+di)*w+jLo+dj:(i+di)*w+jHi+dj])
					}
				}
				r++
			}
		}
	}
}

// Forward computes y = W·im2col(x) + b as one fused AXPY sweep per
// (output channel, kernel tap). For each output pixel the contributions
// accumulate onto the bias in ascending (ic, ki, kj) order — exactly the
// order of the direct convolution, so results are bit-identical to the
// scalar reference (taps in the padding contribute an exact +0).
func (l *Conv2D) Forward(x []float64, _ bool) []float64 {
	l.im2col(x)
	plane := l.in.H * l.in.W
	taps := l.in.C * l.k * l.k
	// 2 output channels × 4 taps register blocking: each cols element
	// loaded once serves both channels. Interleaving channels never
	// reorders any single output element's tap accumulation, so results
	// stay bit-identical to the channel-at-a-time scalar reference.
	oc := 0
	for ; oc+2 <= l.outC; oc += 2 {
		outA := l.y[oc*plane : (oc+1)*plane]
		outB := l.y[(oc+1)*plane : (oc+2)*plane]
		tensor.Fill(outA, l.b[oc])
		tensor.Fill(outB, l.b[oc+1])
		wa := l.w[oc*taps : (oc+1)*taps]
		wb := l.w[(oc+1)*taps : (oc+2)*taps]
		r := 0
		for ; r+4 <= taps; r += 4 {
			tensor.AXPY4x2(wa[r], wa[r+1], wa[r+2], wa[r+3],
				wb[r], wb[r+1], wb[r+2], wb[r+3],
				l.cols[r*plane:(r+1)*plane], l.cols[(r+1)*plane:(r+2)*plane],
				l.cols[(r+2)*plane:(r+3)*plane], l.cols[(r+3)*plane:(r+4)*plane],
				outA, outB)
		}
		for ; r < taps; r++ {
			col := l.cols[r*plane : (r+1)*plane]
			if wv := wa[r]; wv != 0 {
				tensor.AXPY(wv, col, outA)
			}
			if wv := wb[r]; wv != 0 {
				tensor.AXPY(wv, col, outB)
			}
		}
	}
	for ; oc < l.outC; oc++ {
		out := l.y[oc*plane : (oc+1)*plane]
		tensor.Fill(out, l.b[oc])
		wrow := l.w[oc*taps : (oc+1)*taps]
		r := 0
		for ; r+4 <= taps; r += 4 {
			tensor.AXPY4(wrow[r], wrow[r+1], wrow[r+2], wrow[r+3],
				l.cols[r*plane:(r+1)*plane], l.cols[(r+1)*plane:(r+2)*plane],
				l.cols[(r+2)*plane:(r+3)*plane], l.cols[(r+3)*plane:(r+4)*plane], out)
		}
		for ; r < taps; r++ {
			if wv := wrow[r]; wv != 0 {
				tensor.AXPY(wv, l.cols[r*plane:(r+1)*plane], out)
			}
		}
	}
	return l.y
}

// Backward consumes the patch matrix of the last Forward: the bias
// gradient is a plane sum, the weight gradient one fused dot per (output
// channel, tap), and the input gradient is Wᵀ·gradOut computed tap by tap
// into gcol and scattered back through the im2col geometry.
func (l *Conv2D) Backward(gradOut []float64) []float64 {
	plane := l.in.H * l.in.W
	taps := l.in.C * l.k * l.k
	oc := 0
	for ; oc+2 <= l.outC; oc += 2 {
		goutA := gradOut[oc*plane : (oc+1)*plane]
		goutB := gradOut[(oc+1)*plane : (oc+2)*plane]
		l.gb[oc] += tensor.Sum(goutA)
		l.gb[oc+1] += tensor.Sum(goutB)
		gwa := l.gw[oc*taps : (oc+1)*taps]
		gwb := l.gw[(oc+1)*taps : (oc+2)*taps]
		r := 0
		for ; r+4 <= taps; r += 4 {
			s0, s1, s2, s3, t0, t1, t2, t3 := tensor.Dot4x2(goutA, goutB,
				l.cols[r*plane:(r+1)*plane], l.cols[(r+1)*plane:(r+2)*plane],
				l.cols[(r+2)*plane:(r+3)*plane], l.cols[(r+3)*plane:(r+4)*plane])
			gwa[r] += s0
			gwa[r+1] += s1
			gwa[r+2] += s2
			gwa[r+3] += s3
			gwb[r] += t0
			gwb[r+1] += t1
			gwb[r+2] += t2
			gwb[r+3] += t3
		}
		for ; r < taps; r++ {
			col := l.cols[r*plane : (r+1)*plane]
			gwa[r] += tensor.Dot(goutA, col)
			gwb[r] += tensor.Dot(goutB, col)
		}
	}
	for ; oc < l.outC; oc++ {
		gout := gradOut[oc*plane : (oc+1)*plane]
		l.gb[oc] += tensor.Sum(gout)
		gwrow := l.gw[oc*taps : (oc+1)*taps]
		r := 0
		for ; r+4 <= taps; r += 4 {
			s0, s1, s2, s3 := tensor.Dot4(gout,
				l.cols[r*plane:(r+1)*plane], l.cols[(r+1)*plane:(r+2)*plane],
				l.cols[(r+2)*plane:(r+3)*plane], l.cols[(r+3)*plane:(r+4)*plane])
			gwrow[r] += s0
			gwrow[r+1] += s1
			gwrow[r+2] += s2
			gwrow[r+3] += s3
		}
		for ; r < taps; r++ {
			gwrow[r] += tensor.Dot(gout, l.cols[r*plane:(r+1)*plane])
		}
	}
	tensor.Zero(l.gin)
	// Patch gradient Wᵀ·gradOut, two taps at a time (each gradOut element
	// loaded once for both), each accumulated over output channels in
	// ascending order and scattered back through the im2col geometry.
	r := 0
	for ; r+2 <= taps; r += 2 {
		tensor.Zero(l.gcol)
		tensor.Zero(l.gcol2)
		oc := 0
		for ; oc+4 <= l.outC; oc += 4 {
			tensor.AXPY4x2(
				l.w[oc*taps+r], l.w[(oc+1)*taps+r], l.w[(oc+2)*taps+r], l.w[(oc+3)*taps+r],
				l.w[oc*taps+r+1], l.w[(oc+1)*taps+r+1], l.w[(oc+2)*taps+r+1], l.w[(oc+3)*taps+r+1],
				gradOut[oc*plane:(oc+1)*plane], gradOut[(oc+1)*plane:(oc+2)*plane],
				gradOut[(oc+2)*plane:(oc+3)*plane], gradOut[(oc+3)*plane:(oc+4)*plane],
				l.gcol, l.gcol2)
		}
		for ; oc < l.outC; oc++ {
			gout := gradOut[oc*plane : (oc+1)*plane]
			if wv := l.w[oc*taps+r]; wv != 0 {
				tensor.AXPY(wv, gout, l.gcol)
			}
			if wv := l.w[oc*taps+r+1]; wv != 0 {
				tensor.AXPY(wv, gout, l.gcol2)
			}
		}
		l.scatterTap(l.gcol, r)
		l.scatterTap(l.gcol2, r+1)
	}
	for ; r < taps; r++ {
		tensor.Zero(l.gcol)
		oc := 0
		for ; oc+4 <= l.outC; oc += 4 {
			tensor.AXPY4(
				l.w[oc*taps+r], l.w[(oc+1)*taps+r], l.w[(oc+2)*taps+r], l.w[(oc+3)*taps+r],
				gradOut[oc*plane:(oc+1)*plane], gradOut[(oc+1)*plane:(oc+2)*plane],
				gradOut[(oc+2)*plane:(oc+3)*plane], gradOut[(oc+3)*plane:(oc+4)*plane],
				l.gcol)
		}
		for ; oc < l.outC; oc++ {
			if wv := l.w[oc*taps+r]; wv != 0 {
				tensor.AXPY(wv, gradOut[oc*plane:(oc+1)*plane], l.gcol)
			}
		}
		l.scatterTap(l.gcol, r)
	}
	return l.gin
}

// scatterTap adds the plane-length patch-gradient row of kernel tap r
// into the input gradient at that tap's spatial offset (col2im for one
// row).
func (l *Conv2D) scatterTap(gcol []float64, r int) {
	h, w := l.in.H, l.in.W
	pad := l.k / 2
	plane := h * w
	kk := l.k * l.k
	ic := r / kk
	rem := r % kk
	ki, kj := rem/l.k, rem%l.k
	di, dj := ki-pad, kj-pad
	iLo, iHi := max(0, -di), min(h, h-di)
	jLo, jHi := max(0, -dj), min(w, w-dj)
	if iLo >= iHi || jLo >= jHi {
		return // tap entirely in the padding: nothing to scatter
	}
	gin := l.gin[ic*plane : (ic+1)*plane]
	if jLo == 0 && jHi == w {
		// Horizontally centered tap: the valid rows are contiguous in
		// both buffers, so the scatter collapses to one unrolled add.
		tensor.Accumulate(gin[(iLo+di)*w:(iHi+di)*w], gcol[iLo*w:iHi*w])
		return
	}
	for i := iLo; i < iHi; i++ {
		src := gcol[i*w+jLo : i*w+jHi]
		dst := gin[(i+di)*w+jLo+dj : (i+di)*w+jHi+dj]
		for j, v := range src {
			dst[j] += v
		}
	}
}

// MaxPool2D is a non-overlapping max pooling layer with a square window.
// Input dimensions must be divisible by the window size.
type MaxPool2D struct {
	in   Shape
	size int

	arg []int // argmax input index per output element
	y   []float64
	gin []float64
}

// NewMaxPool2D returns a size×size max pool over in.
func NewMaxPool2D(in Shape, size int) *MaxPool2D {
	if size <= 0 || in.H%size != 0 || in.W%size != 0 {
		panic("nn: MaxPool2D window must evenly divide input")
	}
	l := &MaxPool2D{in: in, size: size}
	l.arg = make([]int, l.OutShape().Size())
	l.y = make([]float64, l.OutShape().Size())
	l.gin = make([]float64, in.Size())
	return l
}

// OutShape returns the pooled volume.
func (l *MaxPool2D) OutShape() Shape {
	return Shape{H: l.in.H / l.size, W: l.in.W / l.size, C: l.in.C}
}

func (l *MaxPool2D) InDim() int          { return l.in.Size() }
func (l *MaxPool2D) OutDim() int         { return l.OutShape().Size() }
func (l *MaxPool2D) ParamCount() int     { return 0 }
func (l *MaxPool2D) Bind(_, _ []float64) {}
func (l *MaxPool2D) Init(_ *tensor.RNG)  {}

func (l *MaxPool2D) Forward(x []float64, _ bool) []float64 {
	if l.size == 2 {
		return l.forward2(x)
	}
	h, w := l.in.H, l.in.W
	oh, ow := h/l.size, w/l.size
	for c := 0; c < l.in.C; c++ {
		xin := x[c*h*w:]
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				bestIdx := (i*l.size)*w + j*l.size
				best := xin[bestIdx]
				for di := 0; di < l.size; di++ {
					for dj := 0; dj < l.size; dj++ {
						idx := (i*l.size+di)*w + j*l.size + dj
						if xin[idx] > best {
							best = xin[idx]
							bestIdx = idx
						}
					}
				}
				o := c*oh*ow + i*ow + j
				l.y[o] = best
				l.arg[o] = c*h*w + bestIdx
			}
		}
	}
	return l.y
}

// forward2 is the 2×2 window specialization (every pooling layer in the
// model zoo): the four candidates are compared branch-by-branch without
// the generic window loops or per-candidate index multiplication. Tie
// handling matches the generic path — strictly-greater wins, so the
// first candidate in window scan order is kept on ties.
func (l *MaxPool2D) forward2(x []float64) []float64 {
	h, w := l.in.H, l.in.W
	oh, ow := h/2, w/2
	for c := 0; c < l.in.C; c++ {
		xin := x[c*h*w:]
		o := c * oh * ow
		for i := 0; i < oh; i++ {
			top := 2 * i * w
			bot := top + w
			for j := 0; j < ow; j++ {
				i00 := top + 2*j
				bestIdx, best := i00, xin[i00]
				if v := xin[i00+1]; v > best {
					bestIdx, best = i00+1, v
				}
				i10 := bot + 2*j
				if v := xin[i10]; v > best {
					bestIdx, best = i10, v
				}
				if v := xin[i10+1]; v > best {
					bestIdx, best = i10+1, v
				}
				l.y[o] = best
				l.arg[o] = c*h*w + bestIdx
				o++
			}
		}
	}
	return l.y
}

func (l *MaxPool2D) Backward(gradOut []float64) []float64 {
	tensor.Zero(l.gin)
	for o, src := range l.arg {
		l.gin[src] += gradOut[o]
	}
	return l.gin
}

// GlobalAvgPool averages each channel plane to a single value, as the
// DenseNet-style models do before their classifier head.
type GlobalAvgPool struct {
	in  Shape
	y   []float64
	gin []float64
}

// NewGlobalAvgPool returns a global average pool over in.
func NewGlobalAvgPool(in Shape) *GlobalAvgPool {
	return &GlobalAvgPool{in: in, y: make([]float64, in.C), gin: make([]float64, in.Size())}
}

func (l *GlobalAvgPool) InDim() int          { return l.in.Size() }
func (l *GlobalAvgPool) OutDim() int         { return l.in.C }
func (l *GlobalAvgPool) ParamCount() int     { return 0 }
func (l *GlobalAvgPool) Bind(_, _ []float64) {}
func (l *GlobalAvgPool) Init(_ *tensor.RNG)  {}

func (l *GlobalAvgPool) Forward(x []float64, _ bool) []float64 {
	plane := l.in.H * l.in.W
	for c := 0; c < l.in.C; c++ {
		// Left-to-right fused kernel: bit-identical to the raw
		// accumulation loop it replaced (fdavet/floatsum).
		l.y[c] = tensor.Sum(x[c*plane:(c+1)*plane]) / float64(plane)
	}
	return l.y
}

func (l *GlobalAvgPool) Backward(gradOut []float64) []float64 {
	plane := l.in.H * l.in.W
	inv := 1 / float64(plane)
	for c := 0; c < l.in.C; c++ {
		g := gradOut[c] * inv
		gin := l.gin[c*plane : (c+1)*plane]
		for i := range gin {
			gin[i] = g
		}
	}
	return l.gin
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
