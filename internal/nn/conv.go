package nn

import "repro/internal/tensor"

// Conv2D is a 2-D convolution over channel-major volumes (layout
// [c][h][w] flattened), stride 1, with "same" zero padding for odd kernel
// sizes. Weights are stored flat as [outC][inC][kh][kw] followed by one
// bias per output channel.
type Conv2D struct {
	in     Shape
	outC   int
	k      int // square kernel size, odd
	scheme InitScheme

	w, gw []float64 // outC*inC*k*k weight / gradient views
	b, gb []float64 // outC bias / gradient views

	x   []float64 // cached input
	y   []float64 // output buffer
	gin []float64 // input-gradient buffer
}

// NewConv2D returns a same-padded stride-1 convolution with a square odd
// kernel of size k, mapping in (H×W×C) to H×W×outC.
func NewConv2D(in Shape, outC, k int, scheme InitScheme) *Conv2D {
	if in.H <= 0 || in.W <= 0 || in.C <= 0 || outC <= 0 {
		panic("nn: Conv2D with non-positive dimension")
	}
	if k <= 0 || k%2 == 0 {
		panic("nn: Conv2D kernel must be positive and odd")
	}
	l := &Conv2D{in: in, outC: outC, k: k, scheme: scheme}
	l.x = make([]float64, in.Size())
	l.y = make([]float64, l.OutShape().Size())
	l.gin = make([]float64, in.Size())
	return l
}

// OutShape returns the output volume (same H, W; outC channels).
func (l *Conv2D) OutShape() Shape { return Shape{H: l.in.H, W: l.in.W, C: l.outC} }

func (l *Conv2D) InDim() int  { return l.in.Size() }
func (l *Conv2D) OutDim() int { return l.OutShape().Size() }

func (l *Conv2D) ParamCount() int { return l.outC*l.in.C*l.k*l.k + l.outC }

func (l *Conv2D) Bind(params, grads []float64) {
	nW := l.outC * l.in.C * l.k * l.k
	l.w, l.b = params[:nW], params[nW:]
	l.gw, l.gb = grads[:nW], grads[nW:]
}

func (l *Conv2D) Init(rng *tensor.RNG) {
	fanIn := l.in.C * l.k * l.k
	fanOut := l.outC * l.k * l.k
	switch l.scheme {
	case HeNormalInit:
		tensor.HeNormal(rng, l.w, fanIn)
	default:
		tensor.GlorotUniform(rng, l.w, fanIn, fanOut)
	}
	tensor.Zero(l.b)
}

// widx returns the flat weight index for (oc, ic, ki, kj).
func (l *Conv2D) widx(oc, ic, ki, kj int) int {
	return ((oc*l.in.C+ic)*l.k+ki)*l.k + kj
}

func (l *Conv2D) Forward(x []float64, _ bool) []float64 {
	copy(l.x, x)
	h, w, inC := l.in.H, l.in.W, l.in.C
	pad := l.k / 2
	plane := h * w
	for oc := 0; oc < l.outC; oc++ {
		out := l.y[oc*plane : (oc+1)*plane]
		tensor.Fill(out, l.b[oc])
		for ic := 0; ic < inC; ic++ {
			xin := x[ic*plane : (ic+1)*plane]
			for ki := 0; ki < l.k; ki++ {
				for kj := 0; kj < l.k; kj++ {
					wv := l.w[l.widx(oc, ic, ki, kj)]
					if wv == 0 {
						continue
					}
					di, dj := ki-pad, kj-pad
					iLo, iHi := max(0, -di), min(h, h-di)
					jLo, jHi := max(0, -dj), min(w, w-dj)
					for i := iLo; i < iHi; i++ {
						srcRow := xin[(i+di)*w:]
						dstRow := out[i*w:]
						for j := jLo; j < jHi; j++ {
							dstRow[j] += wv * srcRow[j+dj]
						}
					}
				}
			}
		}
	}
	return l.y
}

func (l *Conv2D) Backward(gradOut []float64) []float64 {
	h, w, inC := l.in.H, l.in.W, l.in.C
	pad := l.k / 2
	plane := h * w
	tensor.Zero(l.gin)
	for oc := 0; oc < l.outC; oc++ {
		gout := gradOut[oc*plane : (oc+1)*plane]
		var bsum float64
		for _, g := range gout {
			bsum += g
		}
		l.gb[oc] += bsum
		for ic := 0; ic < inC; ic++ {
			xin := l.x[ic*plane : (ic+1)*plane]
			gin := l.gin[ic*plane : (ic+1)*plane]
			for ki := 0; ki < l.k; ki++ {
				for kj := 0; kj < l.k; kj++ {
					di, dj := ki-pad, kj-pad
					iLo, iHi := max(0, -di), min(h, h-di)
					jLo, jHi := max(0, -dj), min(w, w-dj)
					var wgrad float64
					wv := l.w[l.widx(oc, ic, ki, kj)]
					for i := iLo; i < iHi; i++ {
						srcRow := xin[(i+di)*w:]
						ginRow := gin[(i+di)*w:]
						goutRow := gout[i*w:]
						for j := jLo; j < jHi; j++ {
							g := goutRow[j]
							wgrad += g * srcRow[j+dj]
							ginRow[j+dj] += g * wv
						}
					}
					l.gw[l.widx(oc, ic, ki, kj)] += wgrad
				}
			}
		}
	}
	return l.gin
}

// MaxPool2D is a non-overlapping max pooling layer with a square window.
// Input dimensions must be divisible by the window size.
type MaxPool2D struct {
	in   Shape
	size int

	arg []int // argmax input index per output element
	y   []float64
	gin []float64
}

// NewMaxPool2D returns a size×size max pool over in.
func NewMaxPool2D(in Shape, size int) *MaxPool2D {
	if size <= 0 || in.H%size != 0 || in.W%size != 0 {
		panic("nn: MaxPool2D window must evenly divide input")
	}
	l := &MaxPool2D{in: in, size: size}
	l.arg = make([]int, l.OutShape().Size())
	l.y = make([]float64, l.OutShape().Size())
	l.gin = make([]float64, in.Size())
	return l
}

// OutShape returns the pooled volume.
func (l *MaxPool2D) OutShape() Shape {
	return Shape{H: l.in.H / l.size, W: l.in.W / l.size, C: l.in.C}
}

func (l *MaxPool2D) InDim() int          { return l.in.Size() }
func (l *MaxPool2D) OutDim() int         { return l.OutShape().Size() }
func (l *MaxPool2D) ParamCount() int     { return 0 }
func (l *MaxPool2D) Bind(_, _ []float64) {}
func (l *MaxPool2D) Init(_ *tensor.RNG)  {}

func (l *MaxPool2D) Forward(x []float64, _ bool) []float64 {
	h, w := l.in.H, l.in.W
	oh, ow := h/l.size, w/l.size
	for c := 0; c < l.in.C; c++ {
		xin := x[c*h*w:]
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				bestIdx := (i*l.size)*w + j*l.size
				best := xin[bestIdx]
				for di := 0; di < l.size; di++ {
					for dj := 0; dj < l.size; dj++ {
						idx := (i*l.size+di)*w + j*l.size + dj
						if xin[idx] > best {
							best = xin[idx]
							bestIdx = idx
						}
					}
				}
				o := c*oh*ow + i*ow + j
				l.y[o] = best
				l.arg[o] = c*h*w + bestIdx
			}
		}
	}
	return l.y
}

func (l *MaxPool2D) Backward(gradOut []float64) []float64 {
	tensor.Zero(l.gin)
	for o, src := range l.arg {
		l.gin[src] += gradOut[o]
	}
	return l.gin
}

// GlobalAvgPool averages each channel plane to a single value, as the
// DenseNet-style models do before their classifier head.
type GlobalAvgPool struct {
	in  Shape
	y   []float64
	gin []float64
}

// NewGlobalAvgPool returns a global average pool over in.
func NewGlobalAvgPool(in Shape) *GlobalAvgPool {
	return &GlobalAvgPool{in: in, y: make([]float64, in.C), gin: make([]float64, in.Size())}
}

func (l *GlobalAvgPool) InDim() int          { return l.in.Size() }
func (l *GlobalAvgPool) OutDim() int         { return l.in.C }
func (l *GlobalAvgPool) ParamCount() int     { return 0 }
func (l *GlobalAvgPool) Bind(_, _ []float64) {}
func (l *GlobalAvgPool) Init(_ *tensor.RNG)  {}

func (l *GlobalAvgPool) Forward(x []float64, _ bool) []float64 {
	plane := l.in.H * l.in.W
	for c := 0; c < l.in.C; c++ {
		var s float64
		for _, v := range x[c*plane : (c+1)*plane] {
			s += v
		}
		l.y[c] = s / float64(plane)
	}
	return l.y
}

func (l *GlobalAvgPool) Backward(gradOut []float64) []float64 {
	plane := l.in.H * l.in.W
	inv := 1 / float64(plane)
	for c := 0; c < l.in.C; c++ {
		g := gradOut[c] * inv
		gin := l.gin[c*plane : (c+1)*plane]
		for i := range gin {
			gin[i] = g
		}
	}
	return l.gin
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
