package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestBatchNormInitIdentityStats(t *testing.T) {
	bn := NewBatchNorm(3)
	n := New(tensor.NewRNG(1), bn)
	// γ=1, β=0, running mean 0, running var 1 ⇒ near-identity at init.
	x := []float64{1, -2, 0.5}
	out := n.Forward(x, false)
	for i := range x {
		want := x[i] / math.Sqrt(1+bn.Eps)
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("init BN out[%d] = %v want %v", i, out[i], want)
		}
	}
}

func TestBatchNormTracksStatistics(t *testing.T) {
	bn := NewBatchNorm(1)
	New(tensor.NewRNG(1), bn)
	// Feed a constant 10; the running mean should converge toward it.
	x := []float64{10}
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	if math.Abs(bn.runMean[0]-10) > 0.5 {
		t.Fatalf("running mean %v did not approach 10", bn.runMean[0])
	}
	// Inference output of the mean input should be ≈ β = 0.
	out := bn.Forward(x, false)
	if math.Abs(out[0]) > 0.5 {
		t.Fatalf("normalized mean input = %v, want ≈ 0", out[0])
	}
}

func TestBatchNormGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	bn := NewBatchNorm(5)
	n := New(rng,
		NewDense(4, 5, GlorotUniformInit),
		bn,
		NewReLU(5),
		NewDense(5, 3, GlorotUniformInit),
	)
	// Freeze statistics by doing one training pass first, then verify the
	// gradient of the EMA-constant formulation numerically. Statistics
	// update in Forward(train), which the loss function also invokes, so
	// tolerate a slightly looser bound than pure-static layers.
	b := smallBatch(rng, 4, 3, 1)
	bn.Momentum = 1 - 1e-12 // effectively frozen statistics
	gradCheck(t, n, b, 1e-3)
}

func TestSigmoidForwardBackward(t *testing.T) {
	s := NewSigmoid(2)
	out := s.Forward([]float64{0, 100}, false)
	if math.Abs(out[0]-0.5) > 1e-12 || out[1] < 0.999 {
		t.Fatalf("sigmoid out %v", out)
	}
	g := s.Backward([]float64{1, 1})
	if math.Abs(g[0]-0.25) > 1e-12 {
		t.Fatalf("sigmoid grad at 0 = %v want 0.25", g[0])
	}
	if g[1] > 1e-3 {
		t.Fatalf("saturated sigmoid grad %v", g[1])
	}
}

func TestSigmoidGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	n := New(rng,
		NewDense(3, 4, GlorotUniformInit),
		NewSigmoid(4),
		NewDense(4, 2, GlorotUniformInit),
	)
	gradCheck(t, n, smallBatch(rng, 3, 2, 3), 1e-4)
}

func TestLeakyReLU(t *testing.T) {
	l := NewLeakyReLU(2, 0.1)
	out := l.Forward([]float64{-10, 5}, false)
	if out[0] != -1 || out[1] != 5 {
		t.Fatalf("leaky out %v", out)
	}
	g := l.Backward([]float64{1, 1})
	if g[0] != 0.1 || g[1] != 1 {
		t.Fatalf("leaky grad %v", g)
	}
}

func TestLeakyReLUGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	n := New(rng,
		NewDense(3, 4, HeNormalInit),
		NewLeakyReLU(4, 0.2),
		NewDense(4, 2, HeNormalInit),
	)
	gradCheck(t, n, smallBatch(rng, 3, 2, 3), 1e-4)
}

func TestLeakyReLUValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLeakyReLU(2, 1.5)
}

func TestAvgPool2D(t *testing.T) {
	p := NewAvgPool2D(Shape{H: 2, W: 2, C: 1}, 2)
	out := p.Forward([]float64{1, 2, 3, 6}, false)
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("avgpool out %v", out)
	}
	gin := p.Backward([]float64{4})
	for _, g := range gin {
		if g != 1 {
			t.Fatalf("avgpool gin %v", gin)
		}
	}
}

func TestAvgPool2DGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	in := Shape{H: 4, W: 4, C: 2}
	conv := NewConv2D(in, 2, 3, HeNormalInit)
	pool := NewAvgPool2D(conv.OutShape(), 2)
	n := New(rng,
		conv, NewTanh(conv.OutDim()), pool,
		NewDense(pool.OutDim(), 2, HeNormalInit),
	)
	gradCheck(t, n, smallBatch(rng, in.Size(), 2, 2), 1e-4)
}

func TestDenseBlockConcatenates(t *testing.T) {
	in := Shape{H: 2, W: 2, C: 1}
	conv := NewConv2D(in, 1, 1, GlorotUniformInit) // 1×1 conv: out = w·x + b
	block := NewDenseBlock(in, conv, 1)
	n := New(tensor.NewRNG(1), block)
	tensor.Zero(n.Params())
	n.Params()[0] = 2 // weight; bias stays 0
	x := []float64{1, 2, 3, 4}
	out := n.Forward(x, false)
	want := []float64{1, 2, 3, 4, 2, 4, 6, 8}
	if len(out) != 8 {
		t.Fatalf("concat dim %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dense block out %v", out)
		}
	}
}

func TestDenseBlockGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(6)
	in := Shape{H: 3, W: 3, C: 2}
	inner := NewConv2D(in, 2, 3, HeNormalInit)
	block := NewDenseBlock(in, inner, 2)
	n := New(rng,
		block,
		NewReLU(block.OutDim()),
		NewDense(block.OutDim(), 2, HeNormalInit),
	)
	gradCheck(t, n, smallBatch(rng, in.Size(), 2, 2), 1e-4)
}

func TestDenseBlockValidation(t *testing.T) {
	in := Shape{H: 2, W: 2, C: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// Growth mismatch: inner produces 1 channel, claim 2.
	NewDenseBlock(in, NewConv2D(in, 1, 1, GlorotUniformInit), 2)
}

// Stacked dense blocks build a true DenseNet-style network that learns.
func TestDenseBlockNetworkLearns(t *testing.T) {
	rng := tensor.NewRNG(7)
	in := Shape{H: 8, W: 8, C: 1}
	b1Inner := NewConv2D(in, 4, 3, HeNormalInit)
	b1 := NewDenseBlock(in, b1Inner, 4)
	s1 := b1.OutShape()
	pool := NewAvgPool2D(s1, 2)
	s2 := pool.OutShape()
	b2Inner := NewConv2D(s2, 4, 3, HeNormalInit)
	b2 := NewDenseBlock(s2, b2Inner, 4)
	gap := NewGlobalAvgPool(b2.OutShape())
	n := New(rng,
		b1, NewReLU(b1.OutDim()), pool,
		b2, NewReLU(b2.OutDim()), gap,
		NewDense(gap.OutDim(), 10, HeNormalInit),
	)
	if n.OutDim() != 10 {
		t.Fatalf("head dim %d", n.OutDim())
	}
	// A handful of SGD steps on a separable toy task must reduce loss.
	rngData := tensor.NewRNG(8)
	mkBatch := func() ([]float64, int) {
		y := rngData.Intn(10)
		x := make([]float64, in.Size())
		tensor.Normal(rngData, x, 0, 0.3)
		for i := y; i < len(x); i += 10 {
			x[i] += 2
		}
		return x, y
	}
	probs := make([]float64, 10)
	loss := func() float64 {
		var s float64
		r2 := tensor.NewRNG(9)
		for i := 0; i < 40; i++ {
			y := r2.Intn(10)
			x := make([]float64, in.Size())
			tensor.Normal(r2, x, 0, 0.3)
			for j := y; j < len(x); j += 10 {
				x[j] += 2
			}
			s += SoftmaxCrossEntropy(probs, n.Forward(x, false), y)
		}
		return s / 40
	}
	before := loss()
	grad := make([]float64, 10)
	for step := 0; step < 200; step++ {
		x, y := mkBatch()
		n.ZeroGrads()
		logits := n.Forward(x, true)
		SoftmaxCrossEntropy(grad, logits, y)
		n.backward(grad)
		tensor.AXPY(-0.05, n.Grads(), n.Params())
	}
	after := loss()
	if after >= before {
		t.Fatalf("DenseNet-style net did not learn: %v -> %v", before, after)
	}
}
