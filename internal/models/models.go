// Package models is the model zoo for the experiments: one builder per
// architecture row of the paper's Table 2, scaled to CPU-simulation size
// while preserving the paper's ordering of model dimensions
// (LeNet-5 < VGG16* < DenseNet121 < DenseNet201 < ConvNeXtLarge), each
// architecture's layer vocabulary (convolutions + pooling for the CNNs,
// dropout for the DenseNets, a frozen pretrained trunk for ConvNeXt), and
// each row's initialization scheme and local optimizer.
//
// Θ scales linearly with d in the paper (Figure 12), so preserving the
// d-ordering preserves every cross-model comparison; see DESIGN.md §1.
package models

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Spec describes one Table 2 row at reproduction scale.
type Spec struct {
	// Name is the zoo identifier (lenet5s, vgg16s, ...).
	Name string
	// PaperModel and PaperParams record what the row stands in for.
	PaperModel  string
	PaperParams string
	// Dataset names the synthetic workload ("mnist-like", "cifar10-like",
	// "cifar100-like").
	Dataset string
	// Optimizer is the paper's local optimizer for this row.
	Optimizer opt.Factory
	// OptimizerName is used in the Table 2 rendering.
	OptimizerName string
	// Build constructs a replica for the given dataset shape.
	Build core.ModelBuilder
	// Params is the reproduction's model dimension d.
	Params int
	// ThetaGrid is the default Θ sweep for the row, scaled from the
	// paper's Θ ≈ c·d guideline to this d.
	ThetaGrid []float64
	// Algorithms lists the strategies the paper ran on this row.
	Algorithms string
}

// thetaGrid builds a Θ sweep proportional to the model dimension, using
// multipliers that bracket the paper's empirical constants
// (2.74e-5·d … 4.91e-5·d, Figure 12).
func thetaGrid(d int) []float64 {
	mults := []float64{1e-5, 2e-5, 4e-5, 8e-5}
	grid := make([]float64, len(mults))
	for i, m := range mults {
		grid[i] = m * float64(d)
	}
	return grid
}

// countParams instantiates a builder once to measure d.
func countParams(b core.ModelBuilder) int {
	return b(tensor.NewRNG(0)).NumParams()
}

// LeNet5S is the LeNet-5 stand-in (paper: 62K params, MNIST, Adam,
// Glorot uniform): two conv+pool stages and a small dense head on the
// 8×8×1 mnist-like task.
func LeNet5S() Spec {
	in := nn.Shape{H: 8, W: 8, C: 1}
	build := func(rng *tensor.RNG) *nn.Network {
		c1 := nn.NewConv2D(in, 6, 3, nn.GlorotUniformInit)
		p1 := nn.NewMaxPool2D(c1.OutShape(), 2)
		c2 := nn.NewConv2D(p1.OutShape(), 12, 3, nn.GlorotUniformInit)
		p2 := nn.NewMaxPool2D(c2.OutShape(), 2)
		return nn.New(rng,
			c1, nn.NewReLU(c1.OutDim()), p1,
			c2, nn.NewReLU(c2.OutDim()), p2,
			nn.NewDense(p2.OutDim(), 32, nn.GlorotUniformInit),
			nn.NewReLU(32),
			nn.NewDense(32, 10, nn.GlorotUniformInit),
		)
	}
	d := countParams(build)
	return Spec{
		Name: "lenet5s", PaperModel: "LeNet-5", PaperParams: "62K",
		Dataset: "mnist-like", Optimizer: opt.NewAdam(1e-3), OptimizerName: "Adam",
		Build: build, Params: d, ThetaGrid: thetaGrid(d),
		Algorithms: "FDA, Synchronous, FedAdam",
	}
}

// VGG16S is the VGG16* stand-in (paper: 2.6M params, MNIST, Adam, Glorot
// uniform): a deeper double-conv-block network with a larger dense head.
func VGG16S() Spec {
	in := nn.Shape{H: 8, W: 8, C: 1}
	build := func(rng *tensor.RNG) *nn.Network {
		c1 := nn.NewConv2D(in, 8, 3, nn.GlorotUniformInit)
		c2 := nn.NewConv2D(c1.OutShape(), 8, 3, nn.GlorotUniformInit)
		p1 := nn.NewMaxPool2D(c2.OutShape(), 2)
		c3 := nn.NewConv2D(p1.OutShape(), 16, 3, nn.GlorotUniformInit)
		p2 := nn.NewMaxPool2D(c3.OutShape(), 2)
		return nn.New(rng,
			c1, nn.NewReLU(c1.OutDim()),
			c2, nn.NewReLU(c2.OutDim()), p1,
			c3, nn.NewReLU(c3.OutDim()), p2,
			nn.NewDense(p2.OutDim(), 96, nn.GlorotUniformInit),
			nn.NewReLU(96),
			nn.NewDense(96, 96, nn.GlorotUniformInit),
			nn.NewReLU(96),
			nn.NewDense(96, 10, nn.GlorotUniformInit),
		)
	}
	d := countParams(build)
	return Spec{
		Name: "vgg16s", PaperModel: "VGG16*", PaperParams: "2.6M",
		Dataset: "mnist-like", Optimizer: opt.NewAdam(1e-3), OptimizerName: "Adam",
		Build: build, Params: d, ThetaGrid: thetaGrid(d),
		Algorithms: "FDA, Synchronous, FedAdam",
	}
}

// DenseNet121S is the DenseNet121 stand-in (paper: 6.9M params, CIFAR-10,
// SGD with Nesterov momentum, He normal, dropout 0.2, weight decay 1e-4):
// a three-stage CNN with dropout and a global-average-pool head on the
// 12×12×3 cifar10-like task.
func DenseNet121S() Spec {
	return densenet("densenet121s", "DenseNet121", "6.9M", 8, 14, 20, 160)
}

// DenseNet201S is the DenseNet201 stand-in (paper: 18M params): the same
// family, wider, so d(densenet201s) > d(densenet121s).
func DenseNet201S() Spec {
	return densenet("densenet201s", "DenseNet201", "18M", 12, 20, 28, 224)
}

func densenet(name, paperModel, paperParams string, ch1, ch2, ch3, head int) Spec {
	in := nn.Shape{H: 12, W: 12, C: 3}
	build := func(rng *tensor.RNG) *nn.Network {
		drop := rng.Split()
		c1 := nn.NewConv2D(in, ch1, 3, nn.HeNormalInit)
		p1 := nn.NewMaxPool2D(c1.OutShape(), 2) // 6×6
		c2 := nn.NewConv2D(p1.OutShape(), ch2, 3, nn.HeNormalInit)
		p2 := nn.NewMaxPool2D(c2.OutShape(), 2) // 3×3
		c3 := nn.NewConv2D(p2.OutShape(), ch3, 3, nn.HeNormalInit)
		gap := nn.NewGlobalAvgPool(c3.OutShape())
		return nn.New(rng,
			c1, nn.NewReLU(c1.OutDim()), p1,
			c2, nn.NewReLU(c2.OutDim()), p2,
			c3, nn.NewReLU(c3.OutDim()), gap,
			nn.NewDropout(gap.OutDim(), 0.2, drop),
			nn.NewDense(gap.OutDim(), head, nn.HeNormalInit),
			nn.NewReLU(head),
			nn.NewDense(head, head, nn.HeNormalInit),
			nn.NewReLU(head),
			nn.NewDense(head, 10, nn.HeNormalInit),
		)
	}
	d := countParams(build)
	return Spec{
		Name: name, PaperModel: paperModel, PaperParams: paperParams,
		Dataset:   "cifar10-like",
		Optimizer: opt.NewSGDNesterov(0.05, 0.9, 1e-4), OptimizerName: "SGD-NM",
		Build: build, Params: d, ThetaGrid: thetaGrid(d),
		Algorithms: "FDA, Synchronous, FedAvgM",
	}
}

// ConvNeXtS is the ConvNeXtLarge transfer-learning stand-in (paper: 198M
// params pre-trained on ImageNet, fine-tuned on CIFAR-100 with AdamW).
// The "pre-trained backbone" is a wide dense trunk; PretrainedInit below
// produces the weights after the paper's feature-extraction stage (≈60%
// test accuracy with only the head trained), and the FDA experiment then
// fine-tunes the entire model.
func ConvNeXtS() Spec {
	inDim := 12 * 12 * 3
	build := func(rng *tensor.RNG) *nn.Network {
		return nn.New(rng,
			nn.NewDense(inDim, 160, nn.HeNormalInit),
			nn.NewReLU(160),
			nn.NewDense(160, 96, nn.HeNormalInit),
			nn.NewReLU(96),
			nn.NewDense(96, 100, nn.GlorotUniformInit),
		)
	}
	d := countParams(build)
	return Spec{
		Name: "convnexts", PaperModel: "ConvNeXtLarge (fine-tuning)", PaperParams: "198M",
		Dataset:   "cifar100-like",
		Optimizer: opt.NewAdamW(5e-4, 1e-4), OptimizerName: "AdamW",
		Build: build, Params: d, ThetaGrid: thetaGrid(d),
		Algorithms: "FDA, Synchronous",
	}
}

// Catalog returns all Table 2 rows in the paper's order.
func Catalog() []Spec {
	return []Spec{LeNet5S(), VGG16S(), DenseNet121S(), DenseNet201S(), ConvNeXtS()}
}

// ByName returns the spec with the given zoo name.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("models: unknown model %q", name)
}

// DatasetFor generates the spec's synthetic workload, standardized with
// training statistics.
func DatasetFor(s Spec, seed uint64) (train, test *data.Dataset) {
	switch s.Dataset {
	case "mnist-like":
		train, test = data.MNISTLike(seed)
	case "cifar10-like":
		train, test = data.CIFAR10Like(seed)
	case "cifar100-like":
		train, test = data.CIFAR100Like(seed)
	default:
		panic("models: unknown dataset " + s.Dataset)
	}
	nz := data.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)
	return train, test
}

// Pretrain runs centralized training of the spec's model on train for the
// given number of mini-batch steps and returns the resulting weights. The
// transfer-learning experiment uses it to produce the "pre-trained on the
// upstream task, feature extraction done" starting point the paper's
// fine-tuning stage begins from.
func Pretrain(s Spec, train *data.Dataset, steps, batch int, seed uint64) []float64 {
	rng := tensor.NewRNG(seed)
	net := s.Build(rng.Split())
	o := s.Optimizer()
	sampler := data.NewSampler(train, rng.Split())
	for i := 0; i < steps; i++ {
		net.LossGradBatch(sampler.Sample(batch))
		o.Step(net.Params(), net.Grads())
	}
	return tensor.Clone(net.Params())
}

// WithInit wraps a builder so every replica starts from the given weights
// (used to begin runs from a pre-trained model).
func WithInit(b core.ModelBuilder, w []float64) core.ModelBuilder {
	return func(rng *tensor.RNG) *nn.Network {
		net := b(rng)
		net.SetParams(w)
		return net
	}
}
