package models

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

func TestCatalogOrderedByDimension(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d entries", len(cat))
	}
	// The paper's d-ordering must be preserved:
	// lenet < vgg < densenet121 < densenet201.
	for i := 1; i < 4; i++ {
		if cat[i].Params <= cat[i-1].Params {
			t.Fatalf("d ordering broken: %s (%d) <= %s (%d)",
				cat[i].Name, cat[i].Params, cat[i-1].Name, cat[i-1].Params)
		}
	}
	// The transfer model is the largest.
	if cat[4].Params <= cat[3].Params {
		t.Fatalf("convnexts (%d) not largest (densenet201s %d)", cat[4].Params, cat[3].Params)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("vgg16s")
	if err != nil || s.Name != "vgg16s" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuildersMatchDataset(t *testing.T) {
	for _, s := range Catalog() {
		train, test := DatasetFor(s, 1)
		net := s.Build(tensor.NewRNG(1))
		if net.InDim() != train.Dim() {
			t.Fatalf("%s input %d != dataset dim %d", s.Name, net.InDim(), train.Dim())
		}
		if net.OutDim() != train.NumClasses {
			t.Fatalf("%s output %d != classes %d", s.Name, net.OutDim(), train.NumClasses)
		}
		if test.NumClasses != train.NumClasses {
			t.Fatalf("%s test/train class mismatch", s.Name)
		}
		if net.NumParams() != s.Params {
			t.Fatalf("%s spec says %d params, built %d", s.Name, s.Params, net.NumParams())
		}
	}
}

func TestThetaGridScalesWithD(t *testing.T) {
	small := LeNet5S()
	big := DenseNet201S()
	if len(small.ThetaGrid) == 0 || len(big.ThetaGrid) == 0 {
		t.Fatal("empty Θ grid")
	}
	if big.ThetaGrid[0] <= small.ThetaGrid[0] {
		t.Fatal("Θ grid does not scale with d")
	}
	for i := 1; i < len(small.ThetaGrid); i++ {
		if small.ThetaGrid[i] <= small.ThetaGrid[i-1] {
			t.Fatal("Θ grid not increasing")
		}
	}
}

func TestBuildersDeterministicInit(t *testing.T) {
	for _, s := range Catalog() {
		a := s.Build(tensor.NewRNG(7)).Params()
		b := s.Build(tensor.NewRNG(7)).Params()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s init not deterministic", s.Name)
			}
		}
	}
}

func TestPretrainImproves(t *testing.T) {
	s := ConvNeXtS()
	train, test := DatasetFor(s, 3)
	w := Pretrain(s, train, 300, 32, 9)
	net := s.Build(tensor.NewRNG(1))
	base := net.Accuracy(test)
	net.SetParams(w)
	tuned := net.Accuracy(test)
	if tuned <= base+0.05 {
		t.Fatalf("pretraining did not improve accuracy: %v -> %v", base, tuned)
	}
	// The paper's feature-extraction baseline sits at ≈60%; our stand-in
	// should land in a broadly comparable band (well above chance = 1%).
	if tuned < 0.2 {
		t.Fatalf("pretrained accuracy %v too low to emulate the transfer setting", tuned)
	}
}

func TestWithInitStartsFromWeights(t *testing.T) {
	s := LeNet5S()
	w := make([]float64, s.Params)
	tensor.Fill(w, 0.01)
	wrapped := WithInit(s.Build, w)
	net := wrapped(tensor.NewRNG(5))
	for i, v := range net.Params() {
		if v != 0.01 {
			t.Fatalf("param %d = %v", i, v)
		}
	}
}

func TestZooRunsUnderTrainer(t *testing.T) {
	// Each zoo model must complete a short FDA run end to end.
	for _, s := range Catalog() {
		if s.Name == "convnexts" {
			continue // covered by the transfer test; large dataset
		}
		train, test := DatasetFor(s, 2)
		cfg := core.Config{
			K: 3, BatchSize: 16, Seed: 2,
			Model: s.Build, Optimizer: s.Optimizer,
			Train: train, Test: test,
			MaxSteps: 20, EvalEvery: 10,
		}
		res := core.MustRun(cfg, core.NewLinearFDA(s.ThetaGrid[1]))
		if res.Steps != 20 {
			t.Fatalf("%s: run stopped early", s.Name)
		}
	}
}
