package opt

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// quadGrad writes the gradient of f(x) = 0.5‖x − target‖² into g.
func quadGrad(g, x, target []float64) {
	for i := range x {
		g[i] = x[i] - target[i]
	}
}

// minimizeQuadratic runs an optimizer on the quadratic and returns the
// final distance to the optimum.
func minimizeQuadratic(o Optimizer, steps int) float64 {
	target := []float64{3, -2, 0.5, 7}
	x := []float64{0, 0, 0, 0}
	g := make([]float64, len(x))
	for s := 0; s < steps; s++ {
		quadGrad(g, x, target)
		o.Step(x, g)
	}
	d := make([]float64, len(x))
	tensor.Sub(d, x, target)
	return tensor.Norm(d)
}

func TestAllOptimizersMinimizeQuadratic(t *testing.T) {
	cases := []struct {
		name  string
		f     Factory
		steps int
		tol   float64
	}{
		{"sgd", NewSGD(0.1), 300, 1e-6},
		{"momentum", NewSGDMomentum(0.05, 0.9), 400, 1e-6},
		{"nesterov", NewSGDNesterov(0.05, 0.9, 0), 400, 1e-6},
		{"adam", NewAdam(0.3), 600, 1e-3},
		{"adamw", NewAdamW(0.3, 0), 600, 1e-3},
	}
	for _, c := range cases {
		if d := minimizeQuadratic(c.f(), c.steps); d > c.tol {
			t.Errorf("%s ended %v from optimum", c.name, d)
		}
	}
}

func TestSGDSingleStep(t *testing.T) {
	o := &SGD{LR: 0.5}
	x := []float64{1, 2}
	o.Step(x, []float64{2, -4})
	if x[0] != 0 || x[1] != 4 {
		t.Fatalf("SGD step got %v", x)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	o := &SGD{LR: 0.1, WeightDecay: 0.5}
	x := []float64{2}
	o.Step(x, []float64{0})
	// g_eff = 0 + 0.5*2 = 1 ⇒ x = 2 − 0.1 = 1.9.
	if math.Abs(x[0]-1.9) > 1e-12 {
		t.Fatalf("decayed x = %v", x[0])
	}
}

func TestMomentumAccumulates(t *testing.T) {
	o := &Momentum{LR: 1, Mu: 0.5}
	x := []float64{0}
	o.Step(x, []float64{1}) // v=1, x=-1
	o.Step(x, []float64{1}) // v=1.5, x=-2.5
	if math.Abs(x[0]+2.5) > 1e-12 {
		t.Fatalf("momentum x = %v", x[0])
	}
}

func TestNesterovDiffersFromClassical(t *testing.T) {
	classical := &Momentum{LR: 0.1, Mu: 0.9}
	nesterov := &Momentum{LR: 0.1, Mu: 0.9, Nesterov: true}
	xc := []float64{1}
	xn := []float64{1}
	g := []float64{1}
	classical.Step(xc, g)
	nesterov.Step(xn, g)
	classical.Step(xc, g)
	nesterov.Step(xn, g)
	if xc[0] == xn[0] {
		t.Fatal("Nesterov trajectory identical to classical momentum")
	}
}

func TestAdamFirstStepIsSignedLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ LR
	// regardless of gradient scale.
	o := &Adam{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-12}
	x := []float64{0, 0}
	o.Step(x, []float64{1e-4, -1e4})
	if math.Abs(x[0]+0.01) > 1e-6 || math.Abs(x[1]-0.01) > 1e-6 {
		t.Fatalf("first Adam step %v, want ≈ (−0.01, +0.01)", x)
	}
}

func TestAdamWDecaysWithoutGradient(t *testing.T) {
	o := &Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.1, Decoupled: true}
	x := []float64{1}
	o.Step(x, []float64{0})
	// Zero gradient: only decoupled decay applies: x *= (1 − lr·wd).
	if math.Abs(x[0]-0.99) > 1e-12 {
		t.Fatalf("AdamW decayed to %v want 0.99", x[0])
	}
}

func TestCoupledVsDecoupledDiffer(t *testing.T) {
	coupled := &Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.1}
	decoupled := &Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.1, Decoupled: true}
	xc := []float64{1}
	xd := []float64{1}
	for i := 0; i < 3; i++ {
		coupled.Step(xc, []float64{0.5})
		decoupled.Step(xd, []float64{0.5})
	}
	if xc[0] == xd[0] {
		t.Fatal("coupled and decoupled decay coincide")
	}
}

func TestResetClearsState(t *testing.T) {
	o := &Momentum{LR: 0.1, Mu: 0.9}
	x := []float64{0}
	o.Step(x, []float64{1})
	o.Reset()
	x2 := []float64{0}
	o.Step(x2, []float64{1})
	// After reset the first step must equal a fresh optimizer's first step.
	if x2[0] != -0.1 {
		t.Fatalf("post-reset step %v want -0.1", x2[0])
	}

	a := &Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	y := []float64{0}
	a.Step(y, []float64{1})
	first := y[0]
	a.Reset()
	y2 := []float64{0}
	a.Step(y2, []float64{1})
	if y2[0] != first {
		t.Fatalf("Adam post-reset step %v want %v", y2[0], first)
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Factory{
		"SGD":    NewSGD(0.1),
		"SGD-M":  NewSGDMomentum(0.1, 0.9),
		"SGD-NM": NewSGDNesterov(0.1, 0.9, 0),
		"Adam":   NewAdam(0.1),
		"AdamW":  NewAdamW(0.1, 0.01),
	}
	for want, f := range cases {
		if got := f().Name(); got != want {
			t.Errorf("Name = %q want %q", got, want)
		}
	}
}

func TestFactoriesProduceIndependentState(t *testing.T) {
	f := NewSGDMomentum(0.1, 0.9)
	a, b := f(), f()
	x := []float64{0}
	a.Step(x, []float64{1})
	// b must behave as fresh.
	y := []float64{0}
	b.Step(y, []float64{1})
	if y[0] != -0.1 {
		t.Fatalf("second factory instance shares state: %v", y[0])
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&SGD{LR: 0.1}).Step([]float64{1, 2}, []float64{1})
}
