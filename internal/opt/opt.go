// Package opt implements the stochastic optimizers used by the paper's
// experiments: SGD, SGD with (Nesterov) momentum, Adam and AdamW for local
// optimization, and the same algorithms reused as *server* optimizers by
// the FedOpt baselines (FedAvgM = server SGD-momentum, FedAdam = server
// Adam) applied to pseudo-gradients.
//
// All optimizers mutate a flat parameter vector in place given a gradient
// vector of the same length, matching the flat-model representation in
// internal/nn.
package opt

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters in place from a gradient.
type Optimizer interface {
	// Step applies one update. params and grads must have equal lengths,
	// constant across calls (state buffers are sized on first use).
	Step(params, grads []float64)
	// Reset clears internal state (moments, step counters).
	Reset()
	// Name identifies the optimizer for logs and experiment tables.
	Name() string
}

// Factory builds a fresh optimizer; each simulated worker gets its own
// instance so state (momentum, Adam moments) stays local, as it would on
// real worker hardware.
type Factory func() Optimizer

// Snapshotter is implemented by optimizers whose Step depends on
// accumulated state (moments, step counters). Session checkpointing uses
// it to capture and restore that state so a resumed run replays the exact
// update sequence. StateSnapshot returns views into live buffers — the
// caller must copy before the optimizer steps again. A never-stepped
// optimizer returns nil vectors of the declared shape; RestoreState
// accepts either nil (state not yet materialized) or full-length vectors.
type Snapshotter interface {
	// StateSnapshot returns the optimizer's state vectors and counters.
	// The slice shapes are fixed per optimizer type.
	StateSnapshot() (vecs [][]float64, counters []uint64)
	// RestoreState overwrites the optimizer's state with a snapshot
	// previously returned by StateSnapshot on an optimizer of the same
	// type and dimension.
	RestoreState(vecs [][]float64, counters []uint64) error
}

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// NewSGD returns an SGD factory.
func NewSGD(lr float64) Factory {
	return func() Optimizer { return &SGD{LR: lr} }
}

// Step implements Optimizer. Without weight decay the update is a single
// fused AXPY (p += (−lr)·g, bit-identical to p −= lr·g); with decay the
// decay branch is hoisted out of the element loop.
func (o *SGD) Step(params, grads []float64) {
	checkLens(params, grads)
	if o.WeightDecay == 0 {
		tensor.AXPY(-o.LR, grads, params)
		return
	}
	lr, wd := o.LR, o.WeightDecay
	for i, g := range grads {
		params[i] -= lr * (g + wd*params[i])
	}
}

// Reset implements Optimizer.
func (o *SGD) Reset() {}

// StateSnapshot implements Snapshotter: SGD carries no state.
func (o *SGD) StateSnapshot() ([][]float64, []uint64) { return nil, nil }

// RestoreState implements Snapshotter.
func (o *SGD) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) != 0 || len(counters) != 0 {
		return fmt.Errorf("opt: SGD snapshot carries unexpected state")
	}
	return nil
}

// Name implements Optimizer.
func (o *SGD) Name() string { return "SGD" }

// Momentum is SGD with classical or Nesterov momentum and optional L2
// weight decay. With Nesterov=true and Mu=0.9 it matches the paper's
// "SGD-NM" local optimizer for the DenseNet experiments.
type Momentum struct {
	LR          float64
	Mu          float64
	Nesterov    bool
	WeightDecay float64

	velocity []float64
}

// NewSGDMomentum returns a classical-momentum factory.
func NewSGDMomentum(lr, mu float64) Factory {
	return func() Optimizer { return &Momentum{LR: lr, Mu: mu} }
}

// NewSGDNesterov returns a Nesterov-momentum factory (the paper's SGD-NM).
func NewSGDNesterov(lr, mu, weightDecay float64) Factory {
	return func() Optimizer {
		return &Momentum{LR: lr, Mu: mu, Nesterov: true, WeightDecay: weightDecay}
	}
}

// Step implements Optimizer. The velocity update v ← µv + g is the
// fused ScaleAdd kernel; the parameter update is an AXPY in the classical
// case and a fused loop for the Nesterov look-ahead and weight-decay
// variants. Element updates are independent, so splitting the loop into
// kernel sweeps leaves every result bit unchanged.
func (o *Momentum) Step(params, grads []float64) {
	checkLens(params, grads)
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	lr, mu, wd := o.LR, o.Mu, o.WeightDecay
	v := o.velocity
	switch {
	case wd == 0 && !o.Nesterov:
		tensor.ScaleAdd(v, mu, grads)
		tensor.AXPY(-lr, v, params)
	case wd == 0: // Nesterov
		for i, g := range grads {
			vi := mu*v[i] + g
			v[i] = vi
			// Nesterov look-ahead: effective update uses g + mu*v.
			params[i] -= lr * (g + mu*vi)
		}
	case !o.Nesterov:
		for i, g := range grads {
			g += wd * params[i]
			vi := mu*v[i] + g
			v[i] = vi
			params[i] -= lr * vi
		}
	default:
		for i, g := range grads {
			g += wd * params[i]
			vi := mu*v[i] + g
			v[i] = vi
			params[i] -= lr * (g + mu*vi)
		}
	}
}

// Reset implements Optimizer.
func (o *Momentum) Reset() { o.velocity = nil }

// StateSnapshot implements Snapshotter: one velocity vector (nil until
// the first Step) and no counters.
func (o *Momentum) StateSnapshot() ([][]float64, []uint64) {
	return [][]float64{o.velocity}, nil
}

// RestoreState implements Snapshotter.
func (o *Momentum) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) != 1 || len(counters) != 0 {
		return fmt.Errorf("opt: momentum snapshot shape %d/%d", len(vecs), len(counters))
	}
	o.velocity = cloneOrNil(vecs[0])
	return nil
}

// Name implements Optimizer.
func (o *Momentum) Name() string {
	if o.Nesterov {
		return "SGD-NM"
	}
	return "SGD-M"
}

// Adam implements Kingma & Ba's Adam with bias correction and optional
// coupled L2 weight decay (added to the gradient, as in classic Adam).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // coupled L2 (added to gradient)
	Decoupled   bool    // true = AdamW: decay applied directly to weights

	m, v []float64
	t    int
}

// NewAdam returns an Adam factory with the default hyper-parameters from
// the paper's references (lr=1e-3, β1=0.9, β2=0.999, ε=1e-7 as in Keras).
func NewAdam(lr float64) Factory {
	return func() Optimizer {
		return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-7}
	}
}

// NewAdamW returns an AdamW factory (decoupled weight decay), the paper's
// optimizer for the ConvNeXt fine-tuning experiment.
func NewAdamW(lr, weightDecay float64) Factory {
	return func() Optimizer {
		return &Adam{
			LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-7,
			WeightDecay: weightDecay, Decoupled: true,
		}
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params, grads []float64) {
	checkLens(params, grads)
	if o.m == nil {
		o.m = make([]float64, len(params))
		o.v = make([]float64, len(params))
	}
	o.t++
	b1c := 1 - math.Pow(o.Beta1, float64(o.t))
	b2c := 1 - math.Pow(o.Beta2, float64(o.t))
	// Hoist the weight-decay mode out of the element loop; the moment and
	// update expressions are unchanged from the scalar reference.
	b1, b2, lr, eps := o.Beta1, o.Beta2, o.LR, o.Eps
	coupledWD, decoupledWD := 0.0, 0.0
	if o.WeightDecay != 0 {
		if o.Decoupled {
			decoupledWD = o.WeightDecay
		} else {
			coupledWD = o.WeightDecay
		}
	}
	m, v := o.m, o.v
	for i, g := range grads {
		if coupledWD != 0 {
			g += coupledWD * params[i]
		}
		mi := b1*m[i] + (1-b1)*g
		vi := b2*v[i] + (1-b2)*g*g
		m[i] = mi
		v[i] = vi
		params[i] -= lr * (mi / b1c) / (math.Sqrt(vi/b2c) + eps)
		if decoupledWD != 0 {
			params[i] -= lr * decoupledWD * params[i]
		}
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.m, o.v = nil, nil
	o.t = 0
}

// StateSnapshot implements Snapshotter: the two moment vectors (nil until
// the first Step) and the bias-correction step counter.
func (o *Adam) StateSnapshot() ([][]float64, []uint64) {
	return [][]float64{o.m, o.v}, []uint64{uint64(o.t)}
}

// RestoreState implements Snapshotter.
func (o *Adam) RestoreState(vecs [][]float64, counters []uint64) error {
	if len(vecs) != 2 || len(counters) != 1 {
		return fmt.Errorf("opt: adam snapshot shape %d/%d", len(vecs), len(counters))
	}
	o.m = cloneOrNil(vecs[0])
	o.v = cloneOrNil(vecs[1])
	o.t = int(counters[0])
	return nil
}

// cloneOrNil copies v, mapping empty to nil (state not yet materialized).
func cloneOrNil(v []float64) []float64 {
	if len(v) == 0 {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Name implements Optimizer.
func (o *Adam) Name() string {
	if o.Decoupled {
		return "AdamW"
	}
	return "Adam"
}

func checkLens(params, grads []float64) {
	if len(params) != len(grads) {
		panic("opt: params/grads length mismatch")
	}
}
