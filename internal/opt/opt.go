// Package opt implements the stochastic optimizers used by the paper's
// experiments: SGD, SGD with (Nesterov) momentum, Adam and AdamW for local
// optimization, and the same algorithms reused as *server* optimizers by
// the FedOpt baselines (FedAvgM = server SGD-momentum, FedAdam = server
// Adam) applied to pseudo-gradients.
//
// All optimizers mutate a flat parameter vector in place given a gradient
// vector of the same length, matching the flat-model representation in
// internal/nn.
package opt

import "math"

// Optimizer updates parameters in place from a gradient.
type Optimizer interface {
	// Step applies one update. params and grads must have equal lengths,
	// constant across calls (state buffers are sized on first use).
	Step(params, grads []float64)
	// Reset clears internal state (moments, step counters).
	Reset()
	// Name identifies the optimizer for logs and experiment tables.
	Name() string
}

// Factory builds a fresh optimizer; each simulated worker gets its own
// instance so state (momentum, Adam moments) stays local, as it would on
// real worker hardware.
type Factory func() Optimizer

// SGD is plain stochastic gradient descent with optional L2 weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// NewSGD returns an SGD factory.
func NewSGD(lr float64) Factory {
	return func() Optimizer { return &SGD{LR: lr} }
}

// Step implements Optimizer.
func (o *SGD) Step(params, grads []float64) {
	checkLens(params, grads)
	for i := range params {
		g := grads[i]
		if o.WeightDecay != 0 {
			g += o.WeightDecay * params[i]
		}
		params[i] -= o.LR * g
	}
}

// Reset implements Optimizer.
func (o *SGD) Reset() {}

// Name implements Optimizer.
func (o *SGD) Name() string { return "SGD" }

// Momentum is SGD with classical or Nesterov momentum and optional L2
// weight decay. With Nesterov=true and Mu=0.9 it matches the paper's
// "SGD-NM" local optimizer for the DenseNet experiments.
type Momentum struct {
	LR          float64
	Mu          float64
	Nesterov    bool
	WeightDecay float64

	velocity []float64
}

// NewSGDMomentum returns a classical-momentum factory.
func NewSGDMomentum(lr, mu float64) Factory {
	return func() Optimizer { return &Momentum{LR: lr, Mu: mu} }
}

// NewSGDNesterov returns a Nesterov-momentum factory (the paper's SGD-NM).
func NewSGDNesterov(lr, mu, weightDecay float64) Factory {
	return func() Optimizer {
		return &Momentum{LR: lr, Mu: mu, Nesterov: true, WeightDecay: weightDecay}
	}
}

// Step implements Optimizer.
func (o *Momentum) Step(params, grads []float64) {
	checkLens(params, grads)
	if o.velocity == nil {
		o.velocity = make([]float64, len(params))
	}
	for i := range params {
		g := grads[i]
		if o.WeightDecay != 0 {
			g += o.WeightDecay * params[i]
		}
		v := o.Mu*o.velocity[i] + g
		o.velocity[i] = v
		if o.Nesterov {
			// Nesterov look-ahead: effective update uses g + mu*v.
			params[i] -= o.LR * (g + o.Mu*v)
		} else {
			params[i] -= o.LR * v
		}
	}
}

// Reset implements Optimizer.
func (o *Momentum) Reset() { o.velocity = nil }

// Name implements Optimizer.
func (o *Momentum) Name() string {
	if o.Nesterov {
		return "SGD-NM"
	}
	return "SGD-M"
}

// Adam implements Kingma & Ba's Adam with bias correction and optional
// coupled L2 weight decay (added to the gradient, as in classic Adam).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // coupled L2 (added to gradient)
	Decoupled   bool    // true = AdamW: decay applied directly to weights

	m, v []float64
	t    int
}

// NewAdam returns an Adam factory with the default hyper-parameters from
// the paper's references (lr=1e-3, β1=0.9, β2=0.999, ε=1e-7 as in Keras).
func NewAdam(lr float64) Factory {
	return func() Optimizer {
		return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-7}
	}
}

// NewAdamW returns an AdamW factory (decoupled weight decay), the paper's
// optimizer for the ConvNeXt fine-tuning experiment.
func NewAdamW(lr, weightDecay float64) Factory {
	return func() Optimizer {
		return &Adam{
			LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-7,
			WeightDecay: weightDecay, Decoupled: true,
		}
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params, grads []float64) {
	checkLens(params, grads)
	if o.m == nil {
		o.m = make([]float64, len(params))
		o.v = make([]float64, len(params))
	}
	o.t++
	b1c := 1 - math.Pow(o.Beta1, float64(o.t))
	b2c := 1 - math.Pow(o.Beta2, float64(o.t))
	for i := range params {
		g := grads[i]
		if o.WeightDecay != 0 && !o.Decoupled {
			g += o.WeightDecay * params[i]
		}
		o.m[i] = o.Beta1*o.m[i] + (1-o.Beta1)*g
		o.v[i] = o.Beta2*o.v[i] + (1-o.Beta2)*g*g
		mhat := o.m[i] / b1c
		vhat := o.v[i] / b2c
		params[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		if o.WeightDecay != 0 && o.Decoupled {
			params[i] -= o.LR * o.WeightDecay * params[i]
		}
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.m, o.v = nil, nil
	o.t = 0
}

// Name implements Optimizer.
func (o *Adam) Name() string {
	if o.Decoupled {
		return "AdamW"
	}
	return "Adam"
}

func checkLens(params, grads []float64) {
	if len(params) != len(grads) {
		panic("opt: params/grads length mismatch")
	}
}
