package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/tensor"
)

// testRNG gives experiment files a compact deterministic generator.
func testRNG(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }

// Table2 reproduces Table 2 (the experiment summary): one row per model
// with its dimension at both paper and reproduction scale, dataset,
// Θ grid, batch size, worker grid, optimizer and algorithm set.
func Table2(o Options) *metrics.Table {
	t := metrics.NewTable("NN", "paper d", "repro d", "Dataset", "Θ grid (repro)", "b", "K grid", "Optimizer", "Algorithms")
	for _, s := range models.Catalog() {
		ks, _ := o.grids(s.ThetaGrid)
		if s.Name == "convnexts" {
			ks = []int{3, 5}
		}
		t.AddRow(
			fmt.Sprintf("%s (%s)", s.PaperModel, s.Name),
			s.PaperParams,
			s.Params,
			s.Dataset,
			fmt.Sprintf("%.3g–%.3g", s.ThetaGrid[0], s.ThetaGrid[len(s.ThetaGrid)-1]),
			32,
			fmt.Sprint(ks),
			s.OptimizerName,
			s.Algorithms,
		)
	}
	t.Render(o.out())
	return t
}
