package experiments

import (
	"io"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/runstore"
)

// The KDE-cloud figures (3–6) all share one shape: for a fixed model and
// accuracy target(s), run every strategy across a (K, Θ) grid and a set of
// data-heterogeneity scenarios, then plot the (communication, steps)
// distribution per strategy. cloudFigure implements that shape.

// cloudSpec parameterizes one KDE figure.
type cloudSpec struct {
	figure     string
	model      string
	hets       []data.Heterogeneity
	targets    []float64 // scaled stand-ins for the paper's targets
	strategies []string
}

// grids returns the (K, Θ-index) sweep for the scale. Θ indices refer to
// the model's ThetaGrid.
func (o Options) grids(thetaGrid []float64) (ks []int, thetas []float64) {
	switch o.Scale {
	case Tiny:
		return []int{5}, thetaGrid[1:2]
	case Quick:
		return []int{5, 10}, thetaGrid[1:3]
	default:
		return []int{5, 10, 20, 30}, thetaGrid
	}
}

func cloudFigure(cs cloudSpec, o Options) []Record {
	lw := newLazyWorkload(cs.model, o.Seed)
	ks, thetas := o.grids(lw.spec.ThetaGrid)

	// Enumerate the grid first — the seed assignment follows the nested
	// loop order exactly as the sequential runner did — then dispatch the
	// cells through the store-aware scheduler and flatten in grid order.
	type cell struct {
		het   data.Heterogeneity
		strat string
		theta float64
		k     int
		seed  uint64
	}
	var cells []cell
	seed := o.Seed
	for _, het := range cs.hets {
		for _, strat := range cs.strategies {
			for _, k := range ks {
				if isFDA(strat) {
					// One trajectory seed for the whole Θ series (see
					// sweepFigure's bottom panel): Θ only decides when the
					// first synchronization fires, so the series' cells are
					// prefix-siblings under Options.Warm.
					seed++
					for _, th := range thetas {
						cells = append(cells, cell{het, strat, th, k, seed})
					}
				} else {
					seed++
					cells = append(cells, cell{het, strat, 0, k, seed})
				}
			}
		}
	}
	specs := make([]runstore.Spec, len(cells))
	for i, c := range cells {
		specs[i] = o.cellSpec(cs.figure, cs.model, c.strat, c.theta, c.k,
			c.het.String(), cs.targets, c.seed)
	}
	recs := flatten(runGrid(o, specs, func(i int) []Record {
		c := cells[i]
		return runToTargetsWarm(cs.figure, lw.get(), c.strat, c.theta, c.k, c.het,
			cs.targets, c.seed, o.warmCell(specs[i]))
	}))
	printRecords(o.out(), cs.figure+" — "+lw.spec.PaperModel+" ("+cs.model+")", recs)
	summarize(o.out(), recs)
	plotCloud(o.out(), cs.figure, recs)
	return recs
}

// plotCloud renders the figure's (communication, steps) scatter on
// log-log axes, mirroring the paper's KDE plots.
func plotCloud(out io.Writer, figure string, recs []Record) {
	bySeries := map[string][][2]float64{}
	var order []string
	for _, r := range recs {
		if !r.Reached {
			continue
		}
		if _, ok := bySeries[r.Strategy]; !ok {
			order = append(order, r.Strategy)
		}
		bySeries[r.Strategy] = append(bySeries[r.Strategy], [2]float64{r.CommGB, float64(r.Steps)})
	}
	p := metrics.Scatter{
		Title:  figure + " — communication vs in-parallel steps (log-log)",
		XLabel: "Communication (GB)", YLabel: "steps",
		LogX: true, LogY: true, Width: 64, Height: 16,
	}
	for _, name := range order {
		pts := bySeries[name]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, q := range pts {
			xs[i], ys[i] = q[0], q[1]
		}
		p.Add(name, xs, ys)
	}
	p.Render(out)
}

// Smoke is a cheap validation sweep — LeNet-5, IID, a target low enough
// to reach within the first evaluations — that exercises the full
// runner/scheduler/registry stack in seconds. It reproduces no paper
// artifact; fdaserve smoke tests and quick cache probes use it.
func Smoke(o Options) []Record {
	return cloudFigure(cloudSpec{
		figure:     "smoke",
		model:      "lenet5s",
		hets:       []data.Heterogeneity{data.IID()},
		targets:    []float64{0.5},
		strategies: []string{"LinearFDA", "Synchronous"},
	}, o)
}

// Figure3 reproduces Figure 3: LeNet-5 on MNIST across IID, Non-IID
// label-"0" and Non-IID 60% splits at one accuracy target. Paper target
// 0.985 → scaled synthetic target 0.95.
func Figure3(o Options) []Record {
	return cloudFigure(cloudSpec{
		figure: "fig3",
		model:  "lenet5s",
		hets: []data.Heterogeneity{
			data.IID(),
			data.NonIIDLabel(0, 2),
			data.NonIIDPercent(60),
		},
		targets:    []float64{0.95},
		strategies: []string{"LinearFDA", "SketchFDA", "FedAdam", "Synchronous"},
	}, o)
}

// Figure4 reproduces Figure 4: VGG16* on MNIST, six panels = {IID,
// Non-IID label "0", Non-IID label "8"} × two accuracy targets. Paper
// targets 0.994/0.995 → scaled 0.96/0.98; the nested-target extraction
// exposes the diminishing-returns gap the paper highlights.
func Figure4(o Options) []Record {
	return cloudFigure(cloudSpec{
		figure: "fig4",
		model:  "vgg16s",
		hets: []data.Heterogeneity{
			data.IID(),
			data.NonIIDLabel(0, 2),
			data.NonIIDLabel(8, 2),
		},
		targets:    []float64{0.96, 0.98},
		strategies: []string{"LinearFDA", "SketchFDA", "FedAdam", "Synchronous"},
	}, o)
}

// Figure5 reproduces Figure 5: DenseNet121 on CIFAR-10, IID, two targets.
// Paper targets 0.78/0.81 → scaled 0.75/0.82.
func Figure5(o Options) []Record {
	return cloudFigure(cloudSpec{
		figure:     "fig5",
		model:      "densenet121s",
		hets:       []data.Heterogeneity{data.IID()},
		targets:    []float64{0.75, 0.82},
		strategies: []string{"LinearFDA", "SketchFDA", "FedAvgM", "Synchronous"},
	}, o)
}

// Figure6 reproduces Figure 6: DenseNet201 on CIFAR-10, IID, two targets.
// Paper targets 0.78/0.8 → scaled 0.75/0.85.
func Figure6(o Options) []Record {
	cs := cloudSpec{
		figure:     "fig6",
		model:      "densenet201s",
		hets:       []data.Heterogeneity{data.IID()},
		targets:    []float64{0.75, 0.85},
		strategies: []string{"LinearFDA", "SketchFDA", "FedAvgM", "Synchronous"},
	}
	if o.Scale == Tiny {
		// The largest standard model: drop one baseline at benchmark scale
		// (FedAvgM is covered on the same family by Figure 5).
		cs.strategies = []string{"LinearFDA", "SketchFDA", "Synchronous"}
	}
	return cloudFigure(cs, o)
}
