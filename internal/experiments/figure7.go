package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/runstore"
)

// Curve is one strategy's training-accuracy progression (Figure 7).
type Curve struct {
	Model    string
	Strategy string
	K        int
	Theta    float64
	// Epochs[i], TrainAcc[i], TestAcc[i] trace the run.
	Epochs   []float64
	TrainAcc []float64
	TestAcc  []float64
	// TargetEpoch is the first epoch at which the test target was met
	// (0 when never met) and Gap is the final train − target-test gap the
	// paper uses as its overfitting signal.
	Target      float64
	TargetEpoch float64
	Gap         float64
}

// Figure7 reproduces Figure 7: training-accuracy progression with a test
// accuracy target line, showing that the FDA variants reach the target
// earlier and with a smaller train/test gap (less overfitting) than
// Synchronous and FedAvgM on the DenseNet workloads.
func Figure7(o Options) []Curve {
	type panel struct {
		model  string
		target float64
		steps  int
	}
	panels := []panel{{"densenet121s", 0.75, 300}}
	if o.Scale != Tiny {
		panels = append(panels, panel{"densenet201s", 0.75, 450})
	}
	strategies := []string{"LinearFDA", "SketchFDA", "FedAvgM", "Synchronous"}

	// One cell per (panel, strategy); the runs are independent full-length
	// trajectories, so they dispatch through the store-aware scheduler
	// and the curves come back in panel-major order for printing. The
	// spec carries the panel's step budget (an input the grid coordinates
	// alone do not determine) in Extra.
	type cell struct {
		panel int
		strat string
	}
	lws := make([]*lazyWorkload, len(panels))
	var cells []cell
	for pi := range panels {
		lws[pi] = newLazyWorkload(panels[pi].model, o.Seed)
		for _, strat := range strategies {
			cells = append(cells, cell{pi, strat})
		}
	}
	specs := make([]runstore.Spec, len(cells))
	for i, c := range cells {
		p := panels[c.panel]
		th := 0.0
		if isFDA(c.strat) {
			th = lws[c.panel].spec.ThetaGrid[1]
		}
		sp := o.cellSpec("fig7", p.model, c.strat, th, 5, "iid", []float64{p.target}, o.Seed+7)
		sp.Extra = map[string]string{"steps": strconv.Itoa(p.steps), "train_acc": "1"}
		specs[i] = sp
	}
	perCell := runGrid(o, specs, func(i int) []Curve {
		p, w := panels[cells[i].panel], lws[cells[i].panel].get()
		strat := cells[i].strat
		theta := w.spec.ThetaGrid[1]
		cfg := w.baseConfig(5, o.Seed+7, p.steps, 20, 0 /* run full length */, data.IID())
		cfg.RecordTrainAccuracy = true
		res := core.MustRun(cfg, strategyFor(strat, theta, cfg))
		c := Curve{
			Model: p.model, Strategy: strat, K: 5, Target: p.target,
		}
		if isFDA(strat) {
			c.Theta = theta
		}
		for _, pt := range res.History {
			c.Epochs = append(c.Epochs, pt.Epoch)
			c.TrainAcc = append(c.TrainAcc, pt.TrainAcc)
			c.TestAcc = append(c.TestAcc, pt.TestAcc)
			if c.TargetEpoch == 0 && pt.TestAcc >= p.target {
				c.TargetEpoch = pt.Epoch
			}
		}
		if n := len(c.TrainAcc); n > 0 {
			c.Gap = c.TrainAcc[n-1] - c.TestAcc[n-1]
		}
		return []Curve{c}
	})
	curves := make([]Curve, len(cells))
	for i, cs := range perCell {
		if len(cs) > 0 {
			curves[i] = cs[0]
		}
	}

	out := o.out()
	for i, c := range curves {
		if i%len(strategies) == 0 {
			pi := cells[i].panel
			fmt.Fprintf(out, "\n== fig7 — %s, IID, K=5, Θ=%.3f, target %.2f ==\n",
				lws[pi].spec.PaperModel, lws[pi].spec.ThetaGrid[1], panels[pi].target)
		}
		fmt.Fprintf(out, "%-12s target@epoch=%.1f final train=%.3f test=%.3f gap=%.3f\n",
			c.Strategy, c.TargetEpoch, last(c.TrainAcc), last(c.TestAcc), c.Gap)
	}
	return curves
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
