package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/runstore"
)

// ThetaFit is one deployment setting's empirical Θ* ≈ c·d line (Figure 12).
type ThetaFit struct {
	Setting string
	// Slope is the fitted constant c in Θ* = c·d.
	Slope float64
	// Points are the per-model (d, Θ*) pairs behind the fit.
	Dims, BestTheta []float64
}

// Figure12 reproduces Figure 12: for each deployment setting (FL,
// Balanced, ARIS-HPC network profiles), sweep Θ per model, pick the Θ*
// that minimizes estimated training wall-time under that profile, and fit
// Θ* = c·d through the origin. The paper's finding — slower networks favor
// larger Θ, and Θ* grows linearly with d — is reproduced as the ordering
// slope(FL) ≥ slope(Balanced) ≥ slope(HPC).
func Figure12(o Options) []ThetaFit {
	modelNames := []string{"lenet5s", "vgg16s", "densenet121s"}
	if o.Scale == Full {
		modelNames = append(modelNames, "densenet201s")
	}
	targets := map[string]float64{
		"lenet5s": 0.93, "vgg16s": 0.96, "densenet121s": 0.75, "densenet201s": 0.75,
	}
	// computeSecPerStep is the assumed per-step computation time used to
	// translate steps into wall-time alongside the profile's network time,
	// and byteScale rescales the metered bytes to the paper's regime: the
	// scaled models are O(100×) smaller than the paper's, so without
	// rescaling the communication term would be negligible on every
	// profile and all settings would pick the same compute-optimal Θ*.
	// byteScale ≈ the paper-to-reproduction model-size ratio restores the
	// comm/compute balance the figure is about.
	const computeSecPerStep = 0.05
	const byteScale = 300

	profiles := []comm.NetworkProfile{comm.ProfileFL, comm.ProfileBalanced, comm.ProfileHPC}

	// cell is one reached (model, Θ) run's cost summary. It holds raw
	// byte counts rather than a live meter so it can persist in the run
	// registry; profile wall-times are derived from the bytes post-hoc.
	type cell struct {
		Theta      float64 `json:"theta"`
		Steps      int     `json:"steps"`
		StateBytes int64   `json:"state_bytes"`
		ModelBytes int64   `json:"model_bytes"`
	}
	out := o.out()
	fmt.Fprintf(out, "\n== fig12 — empirical Θ* vs d per deployment setting ==\n")

	// Run the Θ sweeps once per model; evaluate every profile on the same
	// sweep (wall-time is a post-hoc function of the byte counts). The
	// (model, Θ) runs are independent, so they dispatch through the
	// store-aware scheduler; unreached cells come back empty and the
	// per-model sweep keeps Θ order.
	type job struct {
		name  string
		lw    *lazyWorkload
		theta float64
	}
	var jobsList []job
	dims := map[string]float64{}
	for _, name := range modelNames {
		lw := newLazyWorkload(name, o.Seed)
		dims[name] = float64(lw.spec.Params)
		thetas := lw.spec.ThetaGrid
		if o.Scale == Tiny {
			thetas = thetas[:3]
		}
		for _, th := range thetas {
			jobsList = append(jobsList, job{name, lw, th})
		}
	}
	specs := make([]runstore.Spec, len(jobsList))
	for i, j := range jobsList {
		specs[i] = o.cellSpec("fig12", j.name, "LinearFDA", j.theta, 3, "iid",
			[]float64{targets[j.name]}, o.Seed+31)
	}
	results := runGrid(o, specs, func(i int) []cell {
		j := jobsList[i]
		maxSteps, evalEvery := modelBudget(j.name)
		cfg := j.lw.get().baseConfig(3, o.Seed+31, maxSteps, evalEvery, targets[j.name], data.IID())
		res := core.MustRun(cfg, core.NewLinearFDA(j.theta))
		if !res.ReachedTarget {
			return nil
		}
		return []cell{{Theta: j.theta, Steps: res.Steps,
			StateBytes: res.StateBytes, ModelBytes: res.ModelBytes}}
	})
	sweeps := map[string][]cell{}
	for i, cs := range results {
		if len(cs) > 0 {
			sweeps[jobsList[i].name] = append(sweeps[jobsList[i].name], cs[0])
		}
	}

	var fits []ThetaFit
	for _, p := range profiles {
		fit := ThetaFit{Setting: p.Name}
		for _, name := range modelNames {
			best := -1
			bestTime := 0.0
			for i, c := range sweeps[name] {
				scaled := comm.NewMeter()
				scaled.Charge("model", int64(byteScale*float64(c.ModelBytes)))
				scaled.Charge("state", int64(byteScale*float64(c.StateBytes)))
				t := p.CommTime(scaled) + computeSecPerStep*float64(c.Steps)
				if best < 0 || t < bestTime {
					best, bestTime = i, t
				}
			}
			if best < 0 {
				continue
			}
			fit.Dims = append(fit.Dims, dims[name])
			fit.BestTheta = append(fit.BestTheta, sweeps[name][best].Theta)
		}
		if len(fit.Dims) > 0 {
			fit.Slope = metrics.FitThroughOrigin(fit.Dims, fit.BestTheta)
		}
		fits = append(fits, fit)
		fmt.Fprintf(out, "%-9s Θ* ≈ %.3g · d   (points:", p.Name, fit.Slope)
		for i := range fit.Dims {
			fmt.Fprintf(out, " d=%.0f→Θ*=%.3f", fit.Dims[i], fit.BestTheta[i])
		}
		fmt.Fprintf(out, ")\n")
	}
	return fits
}
