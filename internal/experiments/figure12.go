package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metrics"
)

// ThetaFit is one deployment setting's empirical Θ* ≈ c·d line (Figure 12).
type ThetaFit struct {
	Setting string
	// Slope is the fitted constant c in Θ* = c·d.
	Slope float64
	// Points are the per-model (d, Θ*) pairs behind the fit.
	Dims, BestTheta []float64
}

// Figure12 reproduces Figure 12: for each deployment setting (FL,
// Balanced, ARIS-HPC network profiles), sweep Θ per model, pick the Θ*
// that minimizes estimated training wall-time under that profile, and fit
// Θ* = c·d through the origin. The paper's finding — slower networks favor
// larger Θ, and Θ* grows linearly with d — is reproduced as the ordering
// slope(FL) ≥ slope(Balanced) ≥ slope(HPC).
func Figure12(o Options) []ThetaFit {
	modelNames := []string{"lenet5s", "vgg16s", "densenet121s"}
	if o.Scale == Full {
		modelNames = append(modelNames, "densenet201s")
	}
	targets := map[string]float64{
		"lenet5s": 0.93, "vgg16s": 0.96, "densenet121s": 0.75, "densenet201s": 0.75,
	}
	// computeSecPerStep is the assumed per-step computation time used to
	// translate steps into wall-time alongside the profile's network time,
	// and byteScale rescales the metered bytes to the paper's regime: the
	// scaled models are O(100×) smaller than the paper's, so without
	// rescaling the communication term would be negligible on every
	// profile and all settings would pick the same compute-optimal Θ*.
	// byteScale ≈ the paper-to-reproduction model-size ratio restores the
	// comm/compute balance the figure is about.
	const computeSecPerStep = 0.05
	const byteScale = 300

	profiles := []comm.NetworkProfile{comm.ProfileFL, comm.ProfileBalanced, comm.ProfileHPC}

	type cell struct {
		theta float64
		meter *comm.Meter
		steps int
	}
	out := o.out()
	fmt.Fprintf(out, "\n== fig12 — empirical Θ* vs d per deployment setting ==\n")

	// Run the Θ sweeps once per model; evaluate every profile on the same
	// sweep (wall-time is a post-hoc function of the meter). The (model, Θ)
	// runs are independent, so they dispatch across the job pool; unreached
	// cells come back nil and the per-model sweep keeps Θ order.
	type job struct {
		name  string
		w     workload
		theta float64
	}
	var jobsList []job
	dims := map[string]float64{}
	for _, name := range modelNames {
		w := loadWorkload(name, o.Seed)
		dims[name] = float64(w.spec.Params)
		thetas := w.spec.ThetaGrid
		if o.Scale == Tiny {
			thetas = thetas[:3]
		}
		for _, th := range thetas {
			jobsList = append(jobsList, job{name, w, th})
		}
	}
	results := parMap(o.Jobs, len(jobsList), func(i int) *cell {
		j := jobsList[i]
		maxSteps, evalEvery := modelBudget(j.name)
		cfg := j.w.baseConfig(3, o.Seed+31, maxSteps, evalEvery, targets[j.name], data.IID())
		res := core.MustRun(cfg, core.NewLinearFDA(j.theta))
		if !res.ReachedTarget {
			return nil
		}
		m := comm.NewMeter()
		m.Charge("state", res.StateBytes)
		m.Charge("model", res.ModelBytes)
		return &cell{theta: j.theta, meter: m, steps: res.Steps}
	})
	sweeps := map[string][]cell{}
	for i, c := range results {
		if c != nil {
			sweeps[jobsList[i].name] = append(sweeps[jobsList[i].name], *c)
		}
	}

	var fits []ThetaFit
	for _, p := range profiles {
		fit := ThetaFit{Setting: p.Name}
		for _, name := range modelNames {
			best := -1
			bestTime := 0.0
			for i, c := range sweeps[name] {
				scaled := comm.NewMeter()
				scaled.Charge("model", int64(byteScale*float64(c.meter.BytesFor("model"))))
				scaled.Charge("state", int64(byteScale*float64(c.meter.BytesFor("state"))))
				t := p.CommTime(scaled) + computeSecPerStep*float64(c.steps)
				if best < 0 || t < bestTime {
					best, bestTime = i, t
				}
			}
			if best < 0 {
				continue
			}
			fit.Dims = append(fit.Dims, dims[name])
			fit.BestTheta = append(fit.BestTheta, sweeps[name][best].theta)
		}
		if len(fit.Dims) > 0 {
			fit.Slope = metrics.FitThroughOrigin(fit.Dims, fit.BestTheta)
		}
		fits = append(fits, fit)
		fmt.Fprintf(out, "%-9s Θ* ≈ %.3g · d   (points:", p.Name, fit.Slope)
		for i := range fit.Dims {
			fmt.Fprintf(out, " d=%.0f→Θ*=%.3f", fit.Dims[i], fit.BestTheta[i])
		}
		fmt.Fprintf(out, ")\n")
	}
	return fits
}
