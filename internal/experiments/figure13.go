package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/runstore"
)

// Figure13 reproduces Figure 13: the transfer-learning scenario. The
// ConvNeXt stand-in is first "pre-trained" centrally (emulating the
// ImageNet backbone + feature-extraction stage that reaches ≈60% on
// CIFAR-100 in the paper), then the whole model is fine-tuned with FDA
// across K ∈ {3, 5} workers over a Θ sweep, reporting the communication
// to reach the fine-tuning accuracy target. The paper's headline here is
// that LinearFDA needs ≈1.5× the communication of SketchFDA on this
// harder task.
func Figure13(o Options) []Record {
	spec, err := models.ByName("convnexts")
	if err != nil {
		panic(err)
	}
	train, test := models.DatasetFor(spec, o.Seed)

	// Pre-training stage (not part of the measured fine-tuning costs).
	pre := models.Pretrain(spec, train, 200, 32, o.Seed+99)
	preNet := spec.Build(testRNG(o.Seed))
	preNet.SetParams(pre)
	baseAcc := preNet.Accuracy(test)

	// Fine-tuning target sits well above the feature-extraction baseline,
	// mirroring the paper's 0.60 → 0.76 gap.
	target := baseAcc + 0.25

	w := workload{spec: spec, train: train, test: test}
	w.spec.Build = models.WithInit(spec.Build, pre)

	ks := []int{3}
	if o.Scale != Tiny {
		ks = []int{3, 5}
	}
	thetas := spec.ThetaGrid[:3]
	if o.Scale == Full {
		thetas = spec.ThetaGrid
	}

	out := o.out()
	fmt.Fprintf(out, "\n== fig13 — ConvNeXt fine-tuning: feature-extraction acc %.3f, target %.3f ==\n",
		baseAcc, target)

	type cell struct {
		k     int
		strat string
		theta float64
		seed  uint64
	}
	var cells []cell
	seed := o.Seed + 500
	for _, k := range ks {
		for _, strat := range []string{"LinearFDA", "SketchFDA"} {
			for _, th := range thetas {
				seed++
				cells = append(cells, cell{k, strat, th, seed})
			}
		}
	}
	// The pre-trained initialization is an extra cell input the grid
	// coordinates do not capture; its recipe goes into Extra. (The
	// pre-training stage itself always runs — the printed baseline
	// accuracy and the target derive from it — but the fine-tuning runs,
	// which dominate the cost, are cached.)
	pretrainTag := fmt.Sprintf("steps=200,b=32,seed=%d", o.Seed+99)
	specs := make([]runstore.Spec, len(cells))
	for i, c := range cells {
		sp := o.cellSpec("fig13", "convnexts", c.strat, c.theta, c.k, "iid",
			[]float64{target}, c.seed)
		sp.Extra = map[string]string{"pretrain": pretrainTag}
		specs[i] = sp
	}
	recs := flatten(runGrid(o, specs, func(i int) []Record {
		c := cells[i]
		return runToTargets("fig13", w, c.strat, c.theta, c.k,
			data.IID(), []float64{target}, c.seed)
	}))
	printRecords(out, "fig13 — ConvNeXtLarge (convnexts) fine-tuning", recs)

	// The Linear/Sketch communication ratio the paper reports as ≈1.5×.
	// At the paper's 198M-parameter scale monitoring state is negligible,
	// so its "communication" is effectively synchronization traffic; the
	// comparable quantity at reproduction scale is ModelGB (total CommGB
	// is also reported — at small d the sketch state is proportionally
	// visible there, a documented deviation).
	var lin, sk, linAll, skAll []float64
	for _, r := range recs {
		if !r.Reached {
			continue
		}
		if r.Strategy == "LinearFDA" {
			lin = append(lin, r.ModelGB)
			linAll = append(linAll, r.CommGB)
		} else {
			sk = append(sk, r.ModelGB)
			skAll = append(skAll, r.CommGB)
		}
	}
	if len(lin) > 0 && len(sk) > 0 && median(sk) > 0 {
		fmt.Fprintf(out, "Linear/Sketch sync-traffic ratio (medians): %.2f\n", median(lin)/median(sk))
		fmt.Fprintf(out, "Linear/Sketch total-comm ratio   (medians): %.2f\n", median(linAll)/median(skAll))
	}
	return recs
}
