package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/runstore"
)

// NetRecord is one cell of the network-scenario sweep: a strategy
// trained to a target on the simulated-network fabric under one
// deployment scenario, reporting the estimated wall-clock
// time-to-accuracy alongside the usual byte accounting. This is the
// experiment the fabric refactor unlocks — the paper's figures count
// bytes; the netsweep prices those bytes (and the strategy's extra
// steps) on concrete heterogeneous networks.
type NetRecord struct {
	Scenario   string  `json:"scenario"`
	Model      string  `json:"model"`
	Strategy   string  `json:"strategy"`
	Theta      float64 `json:"theta,omitempty"`
	K          int     `json:"k"`
	Target     float64 `json:"target"`
	Steps      int     `json:"steps"`
	SyncCount  int     `json:"syncs"`
	CommGB     float64 `json:"comm_gb"`
	VirtualSec float64 `json:"virtual_sec"`
	Acc        float64 `json:"acc"`
	Reached    bool    `json:"reached"`
}

// netStrategy is one entry of the sweep's strategy axis.
type netStrategy struct {
	Name  string
	Theta float64
}

// netStrategies returns the sweep's strategy axis per scale.
func netStrategies(scale Scale) []netStrategy {
	base := []netStrategy{
		{"LinearFDA", 0.1},
		{"Synchronous", 0},
	}
	if scale >= Quick {
		base = append(base, netStrategy{"SketchFDA", 0.1}, netStrategy{"LocalSGD", 0})
	}
	return base
}

// NetSweep runs every canned network scenario × strategy cell on the
// simulated fabric and reports estimated time-to-accuracy. Cells
// persist through the run registry like every other sweep (the
// scenario lands in Spec.Extra), so interrupted or repeated sweeps
// resume from cache; the virtual clock is deterministic, so cached and
// fresh cells carry identical times.
func NetSweep(o Options) []NetRecord {
	const modelName = "lenet5s"
	scenarios := []comm.Scenario{comm.ScenarioLAN, comm.ScenarioFedWAN, comm.ScenarioStraggler}
	strategies := netStrategies(o.Scale)

	k := 3
	maxSteps, evalEvery, target := 150, 10, 0.90
	if o.Scale >= Quick {
		k = 5
		maxSteps, evalEvery = modelBudget(modelName)
		target = 0.93
	}

	out := o.out()
	fmt.Fprintf(out, "\n== netsweep — estimated time-to-accuracy per network scenario (simulated fabric) ==\n")

	lw := newLazyWorkload(modelName, o.Seed)
	type cell struct {
		scen  comm.Scenario
		strat string
		theta float64
	}
	var cells []cell
	for _, scen := range scenarios {
		for _, st := range strategies {
			cells = append(cells, cell{scen, st.Name, st.Theta})
		}
	}
	specs := make([]runstore.Spec, len(cells))
	for i, c := range cells {
		sp := o.cellSpec("netsweep", modelName, c.strat, c.theta, k, "iid",
			[]float64{target}, o.Seed+57)
		sp.Extra = map[string]string{"scenario": c.scen.Name}
		specs[i] = sp
	}

	results := runGrid(o, specs, func(i int) []NetRecord {
		c := cells[i]
		cfg := lw.get().baseConfig(k, o.Seed+57, maxSteps, evalEvery, target, data.IID())
		cfg.Fabric = comm.NewSimFabric(k, comm.DefaultCostModel(), c.scen)
		var strat core.Strategy
		switch c.strat {
		case "LocalSGD":
			strat = core.NewLocalSGD(10)
		default:
			strat = strategyFor(c.strat, c.theta, cfg)
		}
		res := core.MustRun(cfg, strat)
		rec := NetRecord{
			Scenario: c.scen.Name, Model: modelName, Strategy: c.strat,
			K: k, Target: target,
			Steps: res.Steps, SyncCount: res.SyncCount,
			CommGB: res.CommGB(), VirtualSec: res.VirtualSec,
			Acc: res.FinalTestAcc, Reached: res.ReachedTarget,
		}
		if isFDA(c.strat) {
			rec.Theta = c.theta
		}
		// Time-to-accuracy: the virtual clock at the first history point
		// reaching the target (the run continues to MaxSteps only when
		// the target was never reached).
		for _, p := range res.History {
			if res.ReachedTarget && p.TestAcc >= target {
				rec.VirtualSec = p.VirtualSec
				rec.Steps = p.Step
				rec.SyncCount = p.SyncCount
				rec.CommGB = float64(p.CommBytes) / 1e9
				break
			}
		}
		return []NetRecord{rec}
	})

	var recs []NetRecord
	for _, rs := range results {
		recs = append(recs, rs...)
	}
	fmt.Fprintf(out, "%-11s %-12s %8s %6s %6s %10s %12s %8s\n",
		"scenario", "strategy", "theta", "steps", "syncs", "comm(GB)", "est.time(s)", "reached")
	for _, r := range recs {
		theta := "-"
		if r.Theta > 0 {
			theta = fmt.Sprintf("%.3f", r.Theta)
		}
		fmt.Fprintf(out, "%-11s %-12s %8s %6d %6d %10.5f %12.2f %8v\n",
			r.Scenario, r.Strategy, theta, r.Steps, r.SyncCount, r.CommGB, r.VirtualSec, r.Reached)
	}
	return recs
}
