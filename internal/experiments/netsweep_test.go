package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/runstore"
)

func testStore(t *testing.T) *runstore.Store {
	t.Helper()
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestNetSweepEndToEnd runs the network-scenario sweep at Tiny scale
// through the registry (the fdaexp path), persists it in a run
// registry, and checks the scenario axis and virtual-time metrics
// survive the store round trip: a resubmission recomputes nothing and
// returns byte-identical records.
func TestNetSweepEndToEnd(t *testing.T) {
	st := testStore(t)
	var out strings.Builder
	stats := &SweepStats{}
	res, err := Run("netsweep", Options{Scale: Tiny, Seed: 5, Out: &out, Store: st, Stats: stats})
	if err != nil {
		t.Fatalf("netsweep: %v", err)
	}
	recs, ok := res.([]NetRecord)
	if !ok {
		t.Fatalf("netsweep returned %T", res)
	}

	scenarios := map[string]bool{}
	for _, r := range recs {
		scenarios[r.Scenario] = true
		if r.VirtualSec <= 0 {
			t.Fatalf("cell %s/%s reports no virtual time: %+v", r.Scenario, r.Strategy, r)
		}
		if r.CommGB <= 0 {
			t.Fatalf("cell %s/%s reports no communication", r.Scenario, r.Strategy)
		}
	}
	if len(scenarios) < 3 {
		t.Fatalf("sweep covered %d scenarios, want >= 3 (%v)", len(scenarios), scenarios)
	}
	if got := stats.Executed.Load(); got != stats.Cells.Load() || got == 0 {
		t.Fatalf("first sweep executed %d of %d cells", got, stats.Cells.Load())
	}
	if !strings.Contains(out.String(), "est.time(s)") {
		t.Fatalf("rendered table missing time column:\n%s", out.String())
	}

	// The slow scenarios must cost more estimated time than the LAN for
	// the same strategy (they move the same bytes over worse links).
	byKey := map[string]NetRecord{}
	for _, r := range recs {
		byKey[r.Scenario+"/"+r.Strategy] = r
	}
	for _, strat := range []string{"LinearFDA", "Synchronous"} {
		lan, fed := byKey["lan/"+strat], byKey["fedwan/"+strat]
		if lan.Scenario == "" || fed.Scenario == "" {
			t.Fatalf("missing lan/fedwan cells for %s", strat)
		}
		if fed.VirtualSec <= lan.VirtualSec {
			t.Fatalf("%s: fedwan %.3fs should exceed lan %.3fs", strat, fed.VirtualSec, lan.VirtualSec)
		}
	}

	// Warm resubmission: everything cached, records byte-identical
	// (including the deterministic virtual clock).
	stats2 := &SweepStats{}
	res2, err := Run("netsweep", Options{Scale: Tiny, Seed: 5, Store: st, Stats: stats2})
	if err != nil {
		t.Fatalf("warm netsweep: %v", err)
	}
	if got := stats2.Executed.Load(); got != 0 {
		t.Fatalf("warm sweep recomputed %d cells", got)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatalf("cached records differ from computed ones")
	}
}
