//go:build race

package experiments

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation slows cells by an order of magnitude and makes
// wall-clock assertions meaningless.
const raceEnabled = true
