package experiments

import (
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// cellWarm is one grid cell's warm-start context: the snapshot store to
// consult and publish through, the cell's registry spec (whose
// trajectory-determining fields key the prefix addresses), the
// publication cadence and the sweep's counters.
type cellWarm struct {
	store *runstore.Store
	spec  runstore.Spec
	every int
	stats *SweepStats
}

// warmCell returns the warm-start context for one grid cell, or nil when
// warm starts are off or no store is attached — runWarm degrades to
// core.MustRun on nil.
func (o Options) warmCell(spec runstore.Spec) *cellWarm {
	if !o.Warm || o.Store == nil {
		return nil
	}
	return &cellWarm{store: o.Store, spec: spec, every: o.WarmEvery, stats: o.Stats}
}

// runWarm is core.MustRun with prefix-keyed snapshot reuse (DESIGN.md
// §10). When the strategy shares a prefix family, the cell first
// restores the longest stored trajectory prefix it can prove it would
// have produced itself (sharer.AcceptPrefix over the published guard),
// then trains only the divergent tail while publishing its own
// pre-first-sync prefixes for sibling cells. The returned result is
// bit-identical to a cold run's: restores are gated on the exact
// complement of the strategy's synchronization predicate, and snapshot
// store failures only cost reuse, never correctness.
func runWarm(cfg core.Config, strat core.Strategy, warm *cellWarm) core.Result {
	sharer, ok := strat.(core.PrefixSharer)
	if warm == nil || !ok {
		return core.MustRun(cfg, strat)
	}
	sess, err := core.NewSession(nil, cfg, strat)
	if err != nil {
		panic(err)
	}
	prefix := warm.spec.Prefix(sharer.PrefixFamily())

	// Restore the longest admissible stored prefix, if any. baseGuard
	// carries the restored manifest's guard forward: the session never
	// re-observes the restored steps' statistics, so its own running
	// maximum restarts low and republished prefixes must take the max.
	var baseGuard float64
	rsp := obs.StartRegion("warmstart.restore", "runstore")
	restored := 0
	if blob, m, found, err := warm.store.BestSnapshot(prefix, cfg.MaxSteps, sharer.AcceptPrefix); err != nil || found {
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: snapshot store: %v\n", err)
		}
		if found {
			snap, err := checkpoint.Unmarshal(blob)
			if err == nil {
				err = sess.Restore(snap)
			}
			if err != nil {
				// The blob was CRC-verified and its spec re-hashed, so a
				// restore failure is a shape bug, not data rot. Surfacing it
				// as a panic matches MustRun's contract.
				panic(fmt.Errorf("experiments: restore prefix %s@%d: %w", m.Hash, m.Steps, err))
			}
			baseGuard = m.Guard
			restored = m.Steps
			if warm.stats != nil {
				warm.stats.SnapshotHits.Add(1)
				warm.stats.StepsSaved.Add(int64(m.Steps))
			}
		}
	}
	if rsp.Active() {
		rsp.EndArgs("restored_steps", restored, "hit", restored > 0)
	}

	every := warm.every
	if every <= 0 {
		every = cfg.EvalEvery
	}
	if every <= 0 {
		every = 1
	}
	if err := sess.PublishPrefixes(every, func(steps int, snap *checkpoint.Snapshot) {
		guard := sharer.PrefixGuard()
		if baseGuard > guard {
			guard = baseGuard
		}
		blob, err := checkpoint.Marshal(snap)
		if err == nil {
			err = warm.store.PutSnapshot(prefix, steps, guard, blob)
		}
		if err != nil {
			// Publication failures cost siblings a warm start, nothing else.
			fmt.Fprintf(os.Stderr, "experiments: snapshot publish: %v\n", err)
		}
	}); err != nil {
		panic(err)
	}

	res, err := sess.Run()
	if err != nil {
		panic(err)
	}
	return res
}

// ThetaSweep ("thetasweep") is the warm-start showcase grid: every FDA
// variant across the model's Θ grid at fixed K, with all cells of one
// variant sharing a single trajectory seed. Θ only decides when the
// first synchronization fires, so with Options.Warm each cell serves
// its siblings trajectory-prefix snapshots and the sweep's wall clock
// collapses toward one trajectory per variant plus divergent tails —
// the series BENCH_PR6.json measures cold vs warm.
func ThetaSweep(o Options) []Record {
	lw := newLazyWorkload("lenet5s", o.Seed)
	// The grid extends past the paper's ThetaGrid into the late-sync
	// regime: the silent prefix ahead of the first synchronization grows
	// roughly linearly in Θ (≈14 steps at the paper grid's top for
	// LinearFDA, ≈190 — the whole run — for OracleFDA at 8×), and warm
	// starts can only ever reuse that prefix. Small-Θ cells sync within
	// a handful of steps and would dilute the showcase to noise.
	top := lw.spec.ThetaGrid[len(lw.spec.ThetaGrid)-1]
	thetas := []float64{top, 2 * top, 4 * top, 8 * top}
	if o.Scale == Tiny {
		thetas = thetas[1:]
	}
	const fixedK = 5
	targets := []float64{0.93}

	type cell struct {
		strat string
		theta float64
		seed  uint64
	}
	var cells []cell
	seed := o.Seed + 5000
	for _, strat := range []string{"LinearFDA", "SketchFDA", "OracleFDA"} {
		// One trajectory seed for the whole Θ series: that is what makes
		// the cells prefix-siblings rather than independent trajectories.
		seed++
		for _, th := range thetas {
			cells = append(cells, cell{strat, th, seed})
		}
	}
	specs := make([]runstore.Spec, len(cells))
	for i, c := range cells {
		specs[i] = o.cellSpec("thetasweep", "lenet5s", c.strat, c.theta, fixedK, "iid", targets, c.seed)
	}
	recs := flatten(runGrid(o, specs, func(i int) []Record {
		c := cells[i]
		return runToTargetsWarm("thetasweep", lw.get(), c.strat, c.theta, fixedK,
			data.IID(), targets, c.seed, o.warmCell(specs[i]))
	}))
	printRecords(o.out(), fmt.Sprintf("thetasweep — %s: cost vs Θ (K=%d, shared trajectory seeds)",
		lw.spec.PaperModel, fixedK), recs)
	return recs
}
