package experiments

import "fmt"

// Runner is one registered experiment: a paper artifact reproducible by
// name. The registry is the single index `cmd/fdaexp` and `cmd/fdaserve`
// dispatch through, so adding a runner here surfaces it in both.
type Runner struct {
	// Name is the CLI/API identifier (table2, fig3 … fig13).
	Name string
	// Artifact describes the paper artifact the runner reproduces.
	Artifact string
	// Run executes the experiment. The concrete result type depends on
	// the artifact — []Record for the cost figures, []Curve for fig7,
	// []ThetaFit for fig12, *metrics.Table for table2 — and is JSON-
	// marshalable in every case (fdaserve's records endpoint relies on
	// this).
	Run func(Options) any
}

// paperRunners lists the paper-artifact runners in presentation order;
// `fdaexp -exp all` runs exactly these.
var paperRunners = []Runner{
	{"table2", "Table 2 — workload summary", func(o Options) any { return Table2(o) }},
	{"fig3", "Figure 3 — KDE cloud, LeNet-5 across heterogeneity scenarios", func(o Options) any { return Figure3(o) }},
	{"fig4", "Figure 4 — KDE cloud, VGG16* across heterogeneity × targets", func(o Options) any { return Figure4(o) }},
	{"fig5", "Figure 5 — KDE cloud, DenseNet121, two targets", func(o Options) any { return Figure5(o) }},
	{"fig6", "Figure 6 — KDE cloud, DenseNet201, two targets", func(o Options) any { return Figure6(o) }},
	{"fig7", "Figure 7 — accuracy progression and generalization gap", func(o Options) any { return Figure7(o) }},
	{"fig8", "Figure 8 — cost vs K and vs Θ, LeNet-5", func(o Options) any { return Figure8(o) }},
	{"fig9", "Figure 9 — cost vs K and vs Θ, VGG16*", func(o Options) any { return Figure9(o) }},
	{"fig10", "Figure 10 — cost vs K and vs Θ, DenseNet121", func(o Options) any { return Figure10(o) }},
	{"fig11", "Figure 11 — cost vs K and vs Θ, DenseNet201", func(o Options) any { return Figure11(o) }},
	{"fig12", "Figure 12 — empirical Θ* ≈ c·d per network profile", func(o Options) any { return Figure12(o) }},
	{"fig13", "Figure 13 — ConvNeXt transfer-learning fine-tuning", func(o Options) any { return Figure13(o) }},
}

// auxRunners are addressable by name but reproduce no paper artifact,
// so "all" skips them.
var auxRunners = []Runner{
	{"smoke", "two-cell validation sweep (fast end-to-end probe, no paper artifact)",
		func(o Options) any { return Smoke(o) }},
	{"netsweep", "network-scenario sweep — estimated time-to-accuracy on the simulated fabric across deployment scenarios (no paper artifact)",
		func(o Options) any { return NetSweep(o) }},
	{"thetasweep", "Θ sweep with shared trajectory seeds — the warm-start showcase grid (no paper artifact)",
		func(o Options) any { return ThetaSweep(o) }},
}

// registry is the full dispatch index (paper runners first).
var registry = append(append([]Runner(nil), paperRunners...), auxRunners...)

// Names returns every registered experiment name, paper artifacts first.
func Names() []string {
	names := make([]string, len(registry))
	for i, r := range registry {
		names[i] = r.Name
	}
	return names
}

// PaperNames returns only the paper-artifact runner names, in the
// paper's presentation order.
func PaperNames() []string {
	names := make([]string, len(paperRunners))
	for i, r := range paperRunners {
		names[i] = r.Name
	}
	return names
}

// Runners returns the registry in presentation order.
func Runners() []Runner {
	return append([]Runner(nil), registry...)
}

// Lookup fetches a runner by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range registry {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// Run executes the named experiment and returns its result records.
// When o.Ctx is cancelled mid-sweep, Run returns the context's error;
// cells that completed before the cancellation persisted to o.Store (if
// set), so a resubmission resumes from them.
func Run(name string, o Options) (res any, err error) {
	r, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	defer func() {
		if rec := recover(); rec != nil {
			sc, ok := rec.(sweepCancelled)
			if !ok {
				panic(rec)
			}
			res, err = nil, sc.err
		}
	}()
	return r.Run(o), nil
}

// ParseScale converts a scale name (tiny, quick, full) to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (want tiny, quick or full)", s)
}
