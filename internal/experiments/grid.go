package experiments

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/models"
	"repro/internal/runstore"
)

// SweepStats accumulates cell-scheduling counters across a runner's
// grids. Counters are atomic so a monitor (e.g. fdaserve's status
// endpoint) can read them while the sweep is still executing: Cells
// rises when a grid is enumerated, Executed ticks per computed cell as
// it finishes, and Cached lands when the grid's cache consultation is
// folded in.
type SweepStats struct {
	// Cells is the total grid size seen so far; Cached of those were
	// served from the run registry and Executed were computed.
	Cells, Cached, Executed atomic.Int64
	// SnapshotHits counts executed cells that warm-started from a stored
	// trajectory-prefix snapshot; StepsSaved totals the training steps
	// those restores skipped. Both stay zero unless Options.Warm is on.
	SnapshotHits, StepsSaved atomic.Int64
}

// cellSpec builds the canonical registry spec for one grid cell. Every
// argument is parallelism-independent and together they determine the
// cell's records bit-for-bit (DESIGN.md §3), which is what makes the
// content-addressed cache sound (DESIGN.md §6).
func (o Options) cellSpec(experiment, model, strategy string, theta float64,
	k int, het string, targets []float64, cellSeed uint64) runstore.Spec {
	return runstore.Spec{
		Experiment: experiment,
		Scale:      o.Scale.String(),
		Seed:       o.Seed,
		Model:      model,
		Strategy:   strategy,
		Theta:      theta,
		K:          k,
		Het:        het,
		Targets:    append([]float64(nil), targets...),
		CellSeed:   cellSeed,
	}
}

// CellEvent reports one grid cell's completion during a sweep — the
// per-cell progress stream behind fdaserve's SSE endpoint and fdaexp's
// -progress output.
type CellEvent struct {
	// Spec canonically identifies the cell.
	Spec runstore.Spec
	// Index is the cell's position in its grid; Total the grid size.
	Index, Total int
	// Cached reports whether the cell was served from the run registry
	// instead of computed.
	Cached bool
}

// sweepCancelled aborts a runner mid-enumeration when its context is
// done; Run recovers it into an ordinary error. A panic (rather than a
// sentinel return value) is deliberate: the figure runners post-process
// their grids assuming complete results, and cancellation must not hand
// them partial ones.
type sweepCancelled struct{ err error }

// runGrid is the store-aware sink every runner emits its cells through:
// cells already in o.Store load from disk, the rest compute on the job
// pool and persist before returning. Results come back in grid order
// and are byte-identical whatever mix of cache hits and parallelism
// produced them, so callers print and post-process exactly as they
// would after a fresh sequential sweep.
func runGrid[R any](o Options, specs []runstore.Spec, compute func(i int) []R) [][]R {
	track := compute
	if o.Stats != nil {
		o.Stats.Cells.Add(int64(len(specs)))
	}
	var computed []atomic.Bool
	if o.Events != nil {
		computed = make([]atomic.Bool, len(specs))
	}
	if o.Stats != nil || o.Events != nil {
		track = func(i int) []R {
			recs := compute(i)
			if o.Stats != nil {
				o.Stats.Executed.Add(1)
			}
			if o.Events != nil {
				computed[i].Store(true)
				o.Events(CellEvent{Spec: specs[i], Index: i, Total: len(specs)})
			}
			return recs
		}
	}
	// Warm-start counters tick inside compute (runWarm), invisible to
	// MapCtx; snapshot the totals so this grid's deltas can be folded
	// into its MapResult.
	var hits0, saved0 int64
	if o.Stats != nil {
		hits0, saved0 = o.Stats.SnapshotHits.Load(), o.Stats.StepsSaved.Load()
	}
	perCell, res, err := runstore.MapCtx(o.Ctx, o.Store, o.Jobs, specs, track)
	if o.Stats != nil {
		o.Stats.Cached.Add(int64(res.Cached))
		res.SnapshotHits = int(o.Stats.SnapshotHits.Load() - hits0)
		res.StepsSaved = int(o.Stats.StepsSaved.Load() - saved0)
	}
	cancelled := err != nil && o.Ctx != nil && errors.Is(err, o.Ctx.Err())
	if o.Events != nil {
		// Cache hits are announced after the dispatch, in grid order
		// (computed cells already announced themselves live). On a
		// completed grid every non-computed cell came from the store —
		// including legitimately empty ones; on a cancelled grid only
		// cells with decoded records are known to be cache hits (unvisited
		// cells stay nil and are not announced).
		for i := range specs {
			if computed[i].Load() {
				continue
			}
			if !cancelled || perCell[i] != nil {
				o.Events(CellEvent{Spec: specs[i], Index: i, Total: len(specs), Cached: true})
			}
		}
	}
	if err != nil {
		if cancelled {
			panic(sweepCancelled{err})
		}
		// Persistence failures must not fail (or alter) the sweep: results
		// are complete, only the cache write was lost. Report off the
		// record stream so output parity between runs is preserved.
		fmt.Fprintf(os.Stderr, "experiments: run registry: %v\n", err)
	}
	return perCell
}

// flatten concatenates per-cell record slices in cell order.
func flatten(perCell [][]Record) []Record {
	var recs []Record
	for _, rs := range perCell {
		recs = append(recs, rs...)
	}
	return recs
}

// lazyWorkload defers dataset generation until a cell actually
// computes: a fully cached sweep reads records without synthesizing a
// single sample. The model spec itself (architecture, Θ grid, paper
// metadata) is resolved eagerly because grid enumeration and table
// headers need it.
type lazyWorkload struct {
	spec models.Spec
	seed uint64
	once sync.Once
	w    workload
}

func newLazyWorkload(model string, seed uint64) *lazyWorkload {
	spec, err := models.ByName(model)
	if err != nil {
		panic(err)
	}
	return &lazyWorkload{spec: spec, seed: seed}
}

// get generates the datasets on first use (goroutine-safe; compute
// closures race here when the first uncached cells dispatch together).
func (l *lazyWorkload) get() workload {
	l.once.Do(func() {
		train, test := models.DatasetFor(l.spec, l.seed)
		l.w = workload{spec: l.spec, train: train, test: test}
	})
	return l.w
}
