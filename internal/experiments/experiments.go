// Package experiments contains one runner per table and figure of the
// paper's evaluation (Table 2, Figures 3–13). Each runner executes the
// corresponding workload sweep on the scaled model zoo, prints the rows /
// series the paper reports, and returns structured records so the
// benchmark harness and EXPERIMENTS.md generation can post-process them.
//
// Runners accept a Scale: Tiny grids fit the benchmark budget of a
// single-core CI machine, Quick is the CLI default, and Full approaches
// the paper's grid sizes (hours of CPU time). The grids differ only in
// how many (K, Θ) combinations are explored; the workloads, strategies
// and accuracy-target methodology are identical across scales.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/runstore"
)

// Scale selects the sweep density.
type Scale int

const (
	// Tiny fits the benchmark budget (one combination per cell).
	Tiny Scale = iota
	// Quick is the CLI default (small grids, minutes of CPU).
	Quick
	// Full approaches the paper's grids (hours of CPU).
	Full
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Quick:
		return "quick"
	default:
		return "full"
	}
}

// Options configures a runner.
type Options struct {
	Scale Scale
	Seed  uint64
	// Out receives human-readable tables; nil discards them.
	Out io.Writer
	// Ctx, when non-nil, makes the sweep cancellable: once it is done no
	// new grid cell dispatches (cells already computing finish and
	// persist to Store), the runner aborts, and Run returns the context's
	// error. With a Store, resubmitting the same sweep resumes from the
	// cells that completed.
	Ctx context.Context
	// Events, when non-nil, receives one CellEvent per completed grid
	// cell (live from the worker pool for computed cells — the sink must
	// be goroutine-safe — and in grid order for cache hits).
	Events func(CellEvent)
	// Jobs bounds how many independent sweep cells (training runs) execute
	// concurrently. 0 (the zero value) and 1 run the grid sequentially;
	// positive values are taken literally; negative values select
	// runtime.GOMAXPROCS. Each cell owns its seed-derived RNGs and meter,
	// and records are collected in grid order, so the output is identical
	// at every setting.
	Jobs int
	// Store, when non-nil, is the run registry consulted before each grid
	// cell dispatches: cells already present load from disk, only missing
	// ones execute, and fresh results persist before the runner returns —
	// so repeated or interrupted sweeps resume from cache. Cached and
	// computed records are byte-identical by the determinism contract.
	Store *runstore.Store
	// Stats, when non-nil, accumulates cell-scheduling counters
	// (total/cached/executed) across the runner's grids.
	Stats *SweepStats
	// Warm enables prefix-keyed snapshot reuse (DESIGN.md §10): before a
	// miss cell trains from step 0, the planner restores the longest
	// stored trajectory prefix compatible with the cell and runs only the
	// divergent tail, publishing prefixes for sibling cells as it goes.
	// Requires Store (ignored without one); records are bit-identical
	// either way — warm starts change wall clock, never bytes.
	Warm bool
	// WarmEvery is the prefix publication cadence in steps; 0 selects
	// each cell's evaluation cadence.
	WarmEvery int
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// Record is one training run's outcome at one accuracy target — one point
// of a paper figure.
type Record struct {
	Figure   string
	Model    string
	Het      string
	Strategy string
	K        int
	Theta    float64 // 0 for non-FDA strategies
	Target   float64
	Steps    int
	CommGB   float64
	// ModelGB is the synchronization-only traffic (excludes monitoring
	// state), the quantity that dominates CommGB at the paper's model
	// sizes.
	ModelGB   float64
	SyncCount int
	Acc       float64
	Reached   bool
}

// strategyFor builds a strategy by name; FedOpt strategies need cfg to
// derive their round length.
func strategyFor(name string, theta float64, cfg core.Config) core.Strategy {
	switch name {
	case "LinearFDA":
		return core.NewLinearFDA(theta)
	case "SketchFDA":
		return core.NewSketchFDA(theta)
	case "OracleFDA":
		return core.NewOracleFDA(theta)
	case "Synchronous":
		return core.NewSynchronous()
	case "FedAvg":
		return core.NewFedAvgFor(cfg, 1)
	case "FedAvgM":
		return core.NewFedAvgMFor(cfg, 1)
	case "FedAdam":
		return core.NewFedAdamFor(cfg, 1)
	default:
		panic("experiments: unknown strategy " + name)
	}
}

// isFDA reports whether the strategy consumes a Θ threshold.
func isFDA(name string) bool {
	switch name {
	case "LinearFDA", "SketchFDA", "OracleFDA":
		return true
	}
	return false
}

// workload bundles a spec with its generated datasets so repeated runs
// share the (deterministic) data.
type workload struct {
	spec  models.Spec
	train *data.Dataset
	test  *data.Dataset
}

func loadWorkload(modelName string, seed uint64) workload {
	spec, err := models.ByName(modelName)
	if err != nil {
		panic(err)
	}
	train, test := models.DatasetFor(spec, seed)
	return workload{spec: spec, train: train, test: test}
}

// baseConfig builds the shared run configuration for a workload.
func (w workload) baseConfig(k int, seed uint64, maxSteps, evalEvery int, target float64, het data.Heterogeneity) core.Config {
	return core.Config{
		K: k, BatchSize: 32, Seed: seed,
		Model: w.spec.Build, Optimizer: w.spec.Optimizer,
		Train: w.train, Test: w.test,
		Het:            het,
		MaxSteps:       maxSteps,
		EvalEvery:      evalEvery,
		TargetAccuracy: target,
	}
}

// modelBudget returns (maxSteps, evalEvery) per zoo model, sized so every
// strategy can reach the experiment targets with headroom.
func modelBudget(name string) (maxSteps, evalEvery int) {
	switch name {
	case "lenet5s":
		return 700, 10
	case "vgg16s":
		return 500, 10
	case "densenet121s":
		return 600, 20
	case "densenet201s":
		return 700, 20
	default:
		return 600, 20
	}
}

// runToTargets executes one training run to the highest target and emits
// one Record per requested target by locating the first history point at
// or above it. This mirrors the paper's "training run until a final epoch
// achieving a specific testing accuracy" while re-using one trajectory
// for nested targets.
func runToTargets(fig string, w workload, strategyName string, theta float64,
	k int, het data.Heterogeneity, targets []float64, seed uint64) []Record {
	return runToTargetsWarm(fig, w, strategyName, theta, k, het, targets, seed, nil)
}

// runToTargetsWarm is runToTargets with an optional warm-start context:
// a non-nil warm consults the snapshot store for the longest reusable
// trajectory prefix and publishes prefixes for sibling cells (warm.go).
// The records are bit-identical to a cold run's by the prefix-sharing
// safety argument (DESIGN.md §10).
func runToTargetsWarm(fig string, w workload, strategyName string, theta float64,
	k int, het data.Heterogeneity, targets []float64, seed uint64, warm *cellWarm) []Record {

	maxT := targets[0]
	for _, t := range targets[1:] {
		if t > maxT {
			maxT = t
		}
	}
	maxSteps, evalEvery := modelBudget(w.spec.Name)
	cfg := w.baseConfig(k, seed, maxSteps, evalEvery, maxT, het)
	strat := strategyFor(strategyName, theta, cfg)
	res := runWarm(cfg, strat, warm)

	recs := make([]Record, 0, len(targets))
	for _, target := range targets {
		rec := Record{
			Figure: fig, Model: w.spec.Name, Het: het.String(),
			Strategy: strategyName, K: k, Target: target,
			Acc: res.FinalTestAcc,
		}
		if isFDA(strategyName) {
			rec.Theta = theta
		}
		perSync := 0.0
		if res.SyncCount > 0 {
			perSync = float64(res.ModelBytes) / float64(res.SyncCount)
		}
		found := false
		for _, p := range res.History {
			if p.TestAcc >= target {
				rec.Steps = p.Step
				rec.CommGB = float64(p.CommBytes) / 1e9
				rec.ModelGB = perSync * float64(p.SyncCount) / 1e9
				rec.SyncCount = p.SyncCount
				rec.Reached = true
				found = true
				break
			}
		}
		if !found {
			rec.Steps = res.Steps
			rec.CommGB = res.CommGB()
			rec.ModelGB = float64(res.ModelBytes) / 1e9
			rec.SyncCount = res.SyncCount
			rec.Reached = false
		}
		recs = append(recs, rec)
	}
	return recs
}

// printRecords renders records as the figure's data table.
func printRecords(out io.Writer, title string, recs []Record) {
	fmt.Fprintf(out, "\n== %s ==\n", title)
	fmt.Fprintf(out, "%-12s %-18s %-11s %3s %8s %7s %6s %10s %6s %8s\n",
		"strategy", "het", "model", "K", "theta", "target", "steps", "comm(GB)", "syncs", "reached")
	for _, r := range recs {
		theta := "-"
		if r.Theta > 0 {
			theta = fmt.Sprintf("%.3f", r.Theta)
		}
		fmt.Fprintf(out, "%-12s %-18s %-11s %3d %8s %7.3f %6d %10.5f %6d %8v\n",
			r.Strategy, r.Het, r.Model, r.K, theta, r.Target, r.Steps, r.CommGB, r.SyncCount, r.Reached)
	}
}

// summarize prints per-strategy medians, the quantities the paper's KDE
// clouds visualize (communication on x, in-parallel steps on y).
func summarize(out io.Writer, recs []Record) {
	type agg struct {
		comm, steps []float64
	}
	byStrategy := map[string]*agg{}
	order := []string{}
	for _, r := range recs {
		if !r.Reached {
			continue
		}
		a, ok := byStrategy[r.Strategy]
		if !ok {
			a = &agg{}
			byStrategy[r.Strategy] = a
			order = append(order, r.Strategy)
		}
		a.comm = append(a.comm, r.CommGB)
		a.steps = append(a.steps, float64(r.Steps))
	}
	fmt.Fprintf(out, "-- KDE-cloud centers (medians over reached runs) --\n")
	for _, name := range order {
		a := byStrategy[name]
		fmt.Fprintf(out, "%-12s comm=%.5f GB  steps=%.0f  (n=%d)\n",
			name, median(a.comm), median(a.steps), len(a.comm))
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
