package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/runstore"
)

// storeRun executes the cheap parity grid against st, returning the
// records, the rendered output and the scheduling stats.
func storeRun(t *testing.T, st *runstore.Store, jobs int) ([]Record, string, *SweepStats) {
	t.Helper()
	var b strings.Builder
	stats := &SweepStats{}
	recs := cloudFigure(parityCloudSpec(), Options{
		Scale: Tiny, Seed: 3, Out: &b, Jobs: jobs, Store: st, Stats: stats,
	})
	return recs, b.String(), stats
}

// TestSweepCacheParityAndResume is the run-registry acceptance test:
// a second, fully cached sweep returns byte-identical records and
// output while executing zero cells, and a sweep missing part of its
// grid (the killed-mid-sweep state) executes exactly the missing cells.
func TestSweepCacheParityAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Baseline without a store, then a cold cached run: both must agree.
	baseRecs, baseOut, baseStats := storeRun(t, nil, 2)
	coldRecs, coldOut, coldStats := storeRun(t, st, 2)
	cells := int(coldStats.Cells.Load())
	if cells == 0 || int(baseStats.Cells.Load()) != cells {
		t.Fatalf("cell counts: base %d cold %d", baseStats.Cells.Load(), coldStats.Cells.Load())
	}
	if got := int(coldStats.Executed.Load()); got != cells {
		t.Fatalf("cold run executed %d of %d cells", got, cells)
	}
	if !reflect.DeepEqual(baseRecs, coldRecs) || baseOut != coldOut {
		t.Fatalf("store-backed run diverged from plain run:\n%s\n---\n%s", baseOut, coldOut)
	}

	// Warm run: everything from cache, nothing executed, same bytes.
	warmRecs, warmOut, warmStats := storeRun(t, st, 4)
	if got := int(warmStats.Executed.Load()); got != 0 {
		t.Fatalf("warm run executed %d cells, want 0", got)
	}
	if got := int(warmStats.Cached.Load()); got != cells {
		t.Fatalf("warm run cached %d of %d cells", got, cells)
	}
	if !reflect.DeepEqual(coldRecs, warmRecs) {
		t.Fatalf("cached records diverged:\ncold: %+v\nwarm: %+v", coldRecs, warmRecs)
	}
	if coldOut != warmOut {
		t.Fatalf("cached output diverged:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}

	// Simulate a sweep killed mid-grid by deleting part of the store,
	// then resume: exactly the missing cells execute, bytes unchanged.
	manifests, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != cells {
		t.Fatalf("store holds %d entries for %d cells", len(manifests), cells)
	}
	const drop = 1
	for _, m := range manifests[:drop] {
		if err := st.Delete(m.Spec); err != nil {
			t.Fatal(err)
		}
	}
	resRecs, resOut, resStats := storeRun(t, st, 3)
	if got := int(resStats.Executed.Load()); got != drop {
		t.Fatalf("resume executed %d cells, want %d", got, drop)
	}
	if got := int(resStats.Cached.Load()); got != cells-drop {
		t.Fatalf("resume cached %d cells, want %d", got, cells-drop)
	}
	if !reflect.DeepEqual(coldRecs, resRecs) || coldOut != resOut {
		t.Fatalf("resumed sweep diverged:\n--- cold ---\n%s\n--- resumed ---\n%s", coldOut, resOut)
	}
}

// TestSweepFigureCacheParity runs the second grid shape (K panel +
// Θ panel) through the same contract at a smaller scope.
func TestSweepFigureCacheParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sweepSpec{figure: "stest-sweep", model: "lenet5s", target: 0.5,
		strategies: []string{"LinearFDA"}}
	run := func(st *runstore.Store) ([]Record, string, *SweepStats) {
		var b strings.Builder
		stats := &SweepStats{}
		recs := sweepFigure(spec, Options{Scale: Tiny, Seed: 4, Out: &b, Jobs: 2, Store: st, Stats: stats})
		return recs, b.String(), stats
	}
	coldRecs, coldOut, coldStats := run(st)
	warmRecs, warmOut, warmStats := run(st)
	if warmStats.Executed.Load() != 0 || warmStats.Cached.Load() != coldStats.Cells.Load() {
		t.Fatalf("warm sweep stats: %d executed, %d cached",
			warmStats.Executed.Load(), warmStats.Cached.Load())
	}
	if !reflect.DeepEqual(coldRecs, warmRecs) || coldOut != warmOut {
		t.Fatalf("sweepFigure cache parity broken:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
}

// TestCellSpecDistinguishesCells: no two cells of a grid may share a
// content address, and sweep-level inputs must reach every cell spec.
func TestCellSpecDistinguishesCells(t *testing.T) {
	o := Options{Scale: Tiny, Seed: 3}
	a := o.cellSpec("fig3", "lenet5s", "LinearFDA", 0.05, 5, "iid", []float64{0.95}, 10)
	if a.Hash() != o.cellSpec("fig3", "lenet5s", "LinearFDA", 0.05, 5, "iid", []float64{0.95}, 10).Hash() {
		t.Fatal("identical cells hash differently")
	}
	o2 := o
	o2.Seed = 4
	if a.Hash() == o2.cellSpec("fig3", "lenet5s", "LinearFDA", 0.05, 5, "iid", []float64{0.95}, 10).Hash() {
		t.Fatal("sweep seed not part of the cell address")
	}
	o3 := o
	o3.Scale = Quick
	if a.Hash() == o3.cellSpec("fig3", "lenet5s", "LinearFDA", 0.05, 5, "iid", []float64{0.95}, 10).Hash() {
		t.Fatal("scale not part of the cell address")
	}
	if a.Hash() == o.cellSpec("fig4", "lenet5s", "LinearFDA", 0.05, 5, "iid", []float64{0.95}, 10).Hash() {
		t.Fatal("experiment not part of the cell address")
	}
}

// TestRegistry covers the shared runner index.
func TestRegistry(t *testing.T) {
	paper := PaperNames()
	if len(paper) != 12 || paper[0] != "table2" || paper[len(paper)-1] != "fig13" {
		t.Fatalf("paper runner names: %v", paper)
	}
	names := Names()
	if len(names) != len(paper)+3 || names[len(names)-3] != "smoke" || names[len(names)-1] != "thetasweep" {
		t.Fatalf("registry names: %v", names)
	}
	for _, name := range names {
		r, ok := Lookup(name)
		if !ok || r.Run == nil || r.Artifact == "" {
			t.Fatalf("runner %q incomplete: %+v ok=%v", name, r, ok)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("bogus experiment resolved")
	}
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("Run accepted a bogus experiment")
	}
	res, err := Run("table2", Options{Scale: Tiny})
	if err != nil || res == nil {
		t.Fatalf("Run(table2): %v %v", res, err)
	}
	for name, want := range map[string]Scale{"tiny": Tiny, "quick": Quick, "full": Full} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("ParseScale accepted a bogus scale")
	}
}
