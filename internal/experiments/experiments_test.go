package experiments

import (
	"strings"
	"testing"

	"repro/internal/data"
)

func TestScaleString(t *testing.T) {
	if Tiny.String() != "tiny" || Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale names wrong")
	}
}

func TestGridsGrowWithScale(t *testing.T) {
	grid := []float64{1, 2, 3, 4}
	kT, thT := Options{Scale: Tiny}.grids(grid)
	kQ, thQ := Options{Scale: Quick}.grids(grid)
	kF, thF := Options{Scale: Full}.grids(grid)
	if len(kT) >= len(kQ) || len(kQ) >= len(kF) {
		t.Fatalf("K grids not increasing: %v %v %v", kT, kQ, kF)
	}
	if len(thT) >= len(thQ) || len(thQ) > len(thF) {
		t.Fatalf("Θ grids not increasing: %v %v %v", thT, thQ, thF)
	}
}

func TestStrategyForKnownNames(t *testing.T) {
	w := loadWorkload("lenet5s", 1)
	cfg := w.baseConfig(2, 1, 10, 5, 0, data.IID())
	for _, name := range []string{"LinearFDA", "SketchFDA", "OracleFDA", "Synchronous", "FedAvg", "FedAvgM", "FedAdam"} {
		s := strategyFor(name, 0.1, cfg)
		if s == nil {
			t.Fatalf("nil strategy for %s", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown strategy")
		}
	}()
	strategyFor("nope", 0, cfg)
}

func TestIsFDA(t *testing.T) {
	if !isFDA("LinearFDA") || !isFDA("SketchFDA") || !isFDA("OracleFDA") {
		t.Fatal("FDA variants not recognized")
	}
	if isFDA("Synchronous") || isFDA("FedAdam") {
		t.Fatal("baselines misclassified")
	}
}

func TestMedianHelper(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestRunToTargetsNestedExtraction(t *testing.T) {
	// One short lenet run, two nested targets: the lower target must cross
	// no later and cost no more than the higher one.
	w := loadWorkload("lenet5s", 3)
	recs := runToTargets("t", w, "Synchronous", 0, 3, data.IID(), []float64{0.5, 0.8}, 7)
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	lo, hi := recs[0], recs[1]
	if !lo.Reached || !hi.Reached {
		t.Fatalf("targets not reached: %+v %+v", lo, hi)
	}
	if lo.Steps > hi.Steps || lo.CommGB > hi.CommGB {
		t.Fatalf("nested extraction inverted: lo=%+v hi=%+v", lo, hi)
	}
	if lo.Target != 0.5 || hi.Target != 0.8 {
		t.Fatal("target labels wrong")
	}
}

func TestRunToTargetsUnreachedMarked(t *testing.T) {
	w := loadWorkload("lenet5s", 4)
	// Impossible target within a tiny budget.
	recs := func() []Record {
		// shrink the budget by overriding through a custom config run: use
		// an absurd target so Reached must be false.
		return runToTargets("t", w, "LinearFDA", w.spec.ThetaGrid[3], 2, data.IID(), []float64{1.01}, 8)
	}()
	if recs[0].Reached {
		t.Fatal("impossible target marked reached")
	}
	if recs[0].Steps == 0 {
		t.Fatal("no steps recorded for unreached run")
	}
}

func TestTable2Structure(t *testing.T) {
	var b strings.Builder
	tab := Table2(Options{Scale: Tiny, Out: &b})
	if tab.Len() != 5 {
		t.Fatalf("Table 2 has %d rows", tab.Len())
	}
	out := b.String()
	for _, want := range []string{"LeNet-5", "VGG16*", "DenseNet121", "DenseNet201", "ConvNeXtLarge", "SGD-NM", "AdamW"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

// One end-to-end figure at minimal scale: Figure 8's sweep logic on the
// cheapest model, checking the paper-shape invariants that higher Θ does
// not increase communication and Synchronous communicates most.
func TestFigure8ShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	recs := Figure8(Options{Scale: Tiny, Seed: 5})
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	// Collect the Θ-sweep records for LinearFDA.
	var thetas, comms []float64
	maxSyncComm := 0.0
	minFDAComm := 1e18
	for _, r := range recs {
		if r.Figure == "fig8-Theta" && r.Strategy == "LinearFDA" && r.Reached {
			thetas = append(thetas, r.Theta)
			comms = append(comms, r.CommGB)
		}
		if r.Figure == "fig8-K" && r.Reached {
			if r.Strategy == "Synchronous" && r.CommGB > maxSyncComm {
				maxSyncComm = r.CommGB
			}
			if isFDA(r.Strategy) && r.CommGB < minFDAComm {
				minFDAComm = r.CommGB
			}
		}
	}
	if len(comms) < 2 {
		t.Fatalf("Θ sweep too small: %v", comms)
	}
	// Communication should not increase with Θ (allow 20% noise slack).
	for i := 1; i < len(comms); i++ {
		if comms[i] > comms[i-1]*1.2 {
			t.Fatalf("comm grew with Θ: %v at thetas %v", comms, thetas)
		}
	}
	if maxSyncComm == 0 || minFDAComm == 1e18 {
		t.Fatal("missing strategies in K sweep")
	}
	if minFDAComm*2 > maxSyncComm {
		t.Fatalf("FDA comm %v not well below Synchronous %v", minFDAComm, maxSyncComm)
	}
}
