package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/runstore"
)

// TestRunGridCoverageAndOrder pins the dispatch contract sweeps rely
// on: every cell runs exactly once and results land in grid order, at
// any jobs setting, with or without a store.
func TestRunGridCoverageAndOrder(t *testing.T) {
	specs := make([]runstore.Spec, 37)
	for i := range specs {
		specs[i] = Options{Scale: Tiny, Seed: 1}.cellSpec(
			"gridtest", "lenet5s", "LinearFDA", 0.05, 5, "iid", []float64{0.9}, uint64(i))
	}
	for _, jobs := range []int{0, 1, 3, 8, -1} {
		var calls atomic.Int64
		got := runGrid(Options{Jobs: jobs}, specs, func(i int) []int {
			calls.Add(1)
			return []int{i * i}
		})
		if calls.Load() != int64(len(specs)) {
			t.Fatalf("jobs=%d: %d calls for %d cells", jobs, calls.Load(), len(specs))
		}
		for i, v := range got {
			if len(v) != 1 || v[0] != i*i {
				t.Fatalf("jobs=%d: slot %d holds %v", jobs, i, v)
			}
		}
	}
	if out := runGrid(Options{Jobs: 4}, nil, func(i int) []int { return nil }); len(out) != 0 {
		t.Fatalf("empty grid produced %v", out)
	}
}

// parityCloudSpec is a two-cell grid cheap enough to run several times:
// the low target is reached within the first evaluations.
func parityCloudSpec() cloudSpec {
	return cloudSpec{
		figure:     "ptest",
		model:      "lenet5s",
		hets:       []data.Heterogeneity{data.IID()},
		targets:    []float64{0.5},
		strategies: []string{"LinearFDA", "Synchronous"},
	}
}

// TestCloudFigureParallelParity is the sweep-level determinism contract:
// records AND the rendered table must be byte-identical between Jobs=1
// and Jobs=4, and two parallel sweeps must agree with each other.
func TestCloudFigureParallelParity(t *testing.T) {
	run := func(jobs int) ([]Record, string) {
		var b strings.Builder
		recs := cloudFigure(parityCloudSpec(), Options{Scale: Tiny, Seed: 3, Out: &b, Jobs: jobs})
		return recs, b.String()
	}
	seqRecs, seqOut := run(1)
	parRecs, parOut := run(4)
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("parallel sweep records diverged:\nseq: %+v\npar: %+v", seqRecs, parRecs)
	}
	if seqOut != parOut {
		t.Fatalf("rendered output diverged:\n--- seq ---\n%s\n--- par ---\n%s", seqOut, parOut)
	}
	againRecs, againOut := run(4)
	if !reflect.DeepEqual(parRecs, againRecs) || parOut != againOut {
		t.Fatal("two parallel sweeps diverged from each other")
	}
}

// TestSweepFigureParallelParity covers the second grid shape (K panel +
// Θ panel) through the same contract.
func TestSweepFigureParallelParity(t *testing.T) {
	spec := sweepSpec{figure: "ptest-sweep", model: "lenet5s", target: 0.5,
		strategies: []string{"LinearFDA"}}
	run := func(jobs int) ([]Record, string) {
		var b strings.Builder
		recs := sweepFigure(spec, Options{Scale: Tiny, Seed: 4, Out: &b, Jobs: jobs})
		return recs, b.String()
	}
	seqRecs, seqOut := run(1)
	parRecs, parOut := run(5)
	if !reflect.DeepEqual(seqRecs, parRecs) {
		t.Fatalf("sweep records diverged:\nseq: %+v\npar: %+v", seqRecs, parRecs)
	}
	if seqOut != parOut {
		t.Fatalf("sweep output diverged:\n--- seq ---\n%s\n--- par ---\n%s", seqOut, parOut)
	}
}

// TestParallelSweepSpeedup asserts the acceptance criterion — ≥2× wall
// clock with Jobs ≥ 4 on a multicore runner — over a grid of independent
// Tiny cells. It self-skips on machines without enough cores (the cells
// would just time-slice) and in -short mode.
func TestParallelSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts wall-clock ratios")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("needs ≥4 CPUs, have %d", procs)
	}
	spec := cloudSpec{
		figure:     "speedup",
		model:      "lenet5s",
		hets:       []data.Heterogeneity{data.IID(), data.NonIIDPercent(60)},
		targets:    []float64{0.93},
		strategies: []string{"LinearFDA", "SketchFDA", "FedAdam", "Synchronous"},
	}
	run := func(jobs int) time.Duration {
		start := time.Now()
		cloudFigure(spec, Options{Scale: Tiny, Seed: 8, Jobs: jobs})
		return time.Since(start)
	}
	run(procs) // warm caches so the timed pair compares like with like
	seq := run(1)
	par := run(procs)
	t.Logf("sequential %v, %d jobs %v (%.2fx)", seq, procs, par, seq.Seconds()/par.Seconds())
	if par*2 > seq {
		t.Fatalf("speedup %.2fx < 2x (seq %v, par %v)", seq.Seconds()/par.Seconds(), seq, par)
	}
}
