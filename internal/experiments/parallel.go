package experiments

import "repro/internal/par"

// parMap evaluates fn(0) … fn(n−1) across up to jobs goroutines and
// returns the results indexed by input position. Every sweep cell of a
// grid already owns its seed-derived RNGs and its own cluster/meter, so
// cells are independent; dispatching them through parMap and collecting
// into index-addressed slots keeps the record stream byte-identical to
// the sequential nested loops, whatever the scheduling order.
//
// jobs follows the Options.Jobs convention (see par.Resolve): 0 and 1
// run inline on the calling goroutine, positive values bound the
// goroutine count, negative values select runtime.GOMAXPROCS.
func parMap[R any](jobs, n int, fn func(i int) R) []R {
	out := make([]R, n)
	par.ForEach(par.Resolve(jobs), n, func(i int) { out[i] = fn(i) })
	return out
}

// flatten concatenates per-cell record slices in cell order.
func flatten(perCell [][]Record) []Record {
	var recs []Record
	for _, rs := range perCell {
		recs = append(recs, rs...)
	}
	return recs
}
