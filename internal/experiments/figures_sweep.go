package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/runstore"
)

// Figures 8–11 share one shape: for a fixed model and accuracy target,
// (top) sweep the number of workers K at a fixed Θ for all strategies,
// and (bottom) sweep Θ at a fixed K for the two FDA variants.

type sweepSpec struct {
	figure     string
	model      string
	target     float64
	strategies []string // for the K sweep
}

// sweepGrids returns the K values and Θ values for the scale.
func (o Options) sweepGrids(thetaGrid []float64) (ks []int, thetas []float64, fixedK int) {
	switch o.Scale {
	case Tiny:
		return []int{3, 5}, thetaGrid[1:3], 5
	case Quick:
		return []int{3, 5, 10, 15}, thetaGrid, 5
	default:
		return []int{5, 10, 15, 20, 30, 45, 60}, thetaGrid, 30
	}
}

func sweepFigure(ss sweepSpec, o Options) []Record {
	lw := newLazyWorkload(ss.model, o.Seed)
	ks, thetas, fixedK := o.sweepGrids(lw.spec.ThetaGrid)
	fixedTheta := lw.spec.ThetaGrid[1]
	targets := []float64{ss.target}

	// Enumerate both panels (seed order matches the sequential loops),
	// then dispatch the cells through the store-aware scheduler in grid
	// order.
	type cell struct {
		figure string
		strat  string
		theta  float64
		k      int
		seed   uint64
	}
	var cells []cell
	seed := o.Seed + 1000

	// Top panels: cost vs K at fixed Θ.
	for _, strat := range ss.strategies {
		for _, k := range ks {
			seed++
			th := 0.0
			if isFDA(strat) {
				th = fixedTheta
			}
			cells = append(cells, cell{ss.figure + "-K", strat, th, k, seed})
		}
	}
	// Bottom panels: cost vs Θ at fixed K for the FDA variants. All
	// cells of one variant's Θ series share a single trajectory seed — Θ
	// only decides when the first synchronization fires, so the cells are
	// prefix-siblings and, with Options.Warm, serve each other trajectory
	// snapshots instead of all training from step 0.
	for _, strat := range []string{"LinearFDA", "SketchFDA"} {
		seed++
		for _, th := range thetas {
			cells = append(cells, cell{ss.figure + "-Theta", strat, th, fixedK, seed})
		}
	}
	specs := make([]runstore.Spec, len(cells))
	for i, c := range cells {
		specs[i] = o.cellSpec(c.figure, ss.model, c.strat, c.theta, c.k, "iid", targets, c.seed)
	}
	recs := flatten(runGrid(o, specs, func(i int) []Record {
		c := cells[i]
		return runToTargetsWarm(c.figure, lw.get(), c.strat, c.theta, c.k, data.IID(),
			targets, c.seed, o.warmCell(specs[i]))
	}))
	printRecords(o.out(), fmt.Sprintf("%s — %s: cost vs K (Θ=%.3f) and vs Θ (K=%d), target %.2f",
		ss.figure, lw.spec.PaperModel, fixedTheta, fixedK, ss.target), recs)
	return recs
}

// Figure8 reproduces Figure 8: LeNet-5 on MNIST, varying K and Θ.
// Paper target 0.98 → scaled 0.93.
func Figure8(o Options) []Record {
	return sweepFigure(sweepSpec{
		figure: "fig8", model: "lenet5s", target: 0.93,
		strategies: []string{"LinearFDA", "SketchFDA", "FedAdam", "Synchronous"},
	}, o)
}

// Figure9 reproduces Figure 9: VGG16* on MNIST, varying K and Θ.
// Paper target 0.994 → scaled 0.96.
func Figure9(o Options) []Record {
	return sweepFigure(sweepSpec{
		figure: "fig9", model: "vgg16s", target: 0.96,
		strategies: []string{"LinearFDA", "SketchFDA", "FedAdam", "Synchronous"},
	}, o)
}

// Figure10 reproduces Figure 10: DenseNet121 on CIFAR-10, varying K and Θ.
// Paper target 0.8 → scaled 0.75.
func Figure10(o Options) []Record {
	return sweepFigure(sweepSpec{
		figure: "fig10", model: "densenet121s", target: 0.75,
		strategies: []string{"LinearFDA", "SketchFDA", "FedAvgM", "Synchronous"},
	}, o)
}

// Figure11 reproduces Figure 11: DenseNet201 on CIFAR-10, varying K and Θ.
// Paper target 0.78 → scaled 0.75.
func Figure11(o Options) []Record {
	ss := sweepSpec{
		figure: "fig11", model: "densenet201s", target: 0.75,
		strategies: []string{"LinearFDA", "SketchFDA", "FedAvgM", "Synchronous"},
	}
	if o.Scale == Tiny {
		// The largest standard model: trim the Tiny K sweep to stay inside
		// the benchmark budget while keeping the FDA-vs-Synchronous and
		// Θ-trend comparisons.
		ss.strategies = []string{"LinearFDA", "Synchronous"}
	}
	return sweepFigure(ss, o)
}
