package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/runstore"
)

// TestSweepWarmStartParityAndHits is the warm-start acceptance test at
// the sweep level: with Options.Warm, the Θ panel's shared-seed cells
// must restore each other's trajectory prefixes (hits > 0, steps
// saved > 0) while the records and rendered output stay byte-identical
// to a storeless cold sweep.
func TestSweepWarmStartParityAndHits(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	spec := sweepSpec{figure: "wtest-sweep", model: "lenet5s", target: 0.5,
		strategies: []string{"LinearFDA"}}
	run := func(o Options) ([]Record, string, *SweepStats) {
		var b strings.Builder
		stats := &SweepStats{}
		o.Out, o.Stats = &b, stats
		return sweepFigure(spec, o), b.String(), stats
	}

	baseRecs, baseOut, _ := run(Options{Scale: Tiny, Seed: 4})

	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential on purpose: in grid order every Θ-panel cell publishes
	// before its sibling dispatches, so the hit counts are deterministic.
	warmRecs, warmOut, warmStats := run(Options{
		Scale: Tiny, Seed: 4, Store: st, Warm: true, WarmEvery: 1,
	})
	if !reflect.DeepEqual(baseRecs, warmRecs) {
		t.Fatalf("warm sweep records diverged from cold:\ncold: %+v\nwarm: %+v", baseRecs, warmRecs)
	}
	if baseOut != warmOut {
		t.Fatalf("warm sweep output diverged:\n--- cold ---\n%s\n--- warm ---\n%s", baseOut, warmOut)
	}
	// The Θ panel holds two shared-seed series (LinearFDA, SketchFDA) of
	// two cells each: the second cell of each series must warm-start.
	if hits := warmStats.SnapshotHits.Load(); hits < 2 {
		t.Fatalf("snapshot hits = %d, want >= 2", hits)
	}
	if saved := warmStats.StepsSaved.Load(); saved <= 0 {
		t.Fatalf("steps saved = %d, want > 0", saved)
	}
	if n := st.SnapshotCount(); n == 0 {
		t.Fatal("warm sweep published no snapshots")
	}

	// A repeat of the same sweep is served by the run registry outright —
	// warm starts never interfere with whole-cell caching.
	againRecs, _, againStats := run(Options{
		Scale: Tiny, Seed: 4, Store: st, Warm: true, WarmEvery: 1,
	})
	if got := againStats.Executed.Load(); got != 0 {
		t.Fatalf("cached rerun executed %d cells", got)
	}
	if !reflect.DeepEqual(baseRecs, againRecs) {
		t.Fatal("cached rerun records diverged")
	}
}

// TestThetaSweepWarmMatchesCold pins the showcase runner itself: records
// from a warm store-backed ThetaSweep equal a storeless cold run's, and
// the grid's MapResult-style counters surface through SweepStats.
func TestThetaSweepWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func(st *runstore.Store, warm bool) ([]Record, *SweepStats) {
		stats := &SweepStats{}
		recs := ThetaSweep(Options{Scale: Tiny, Seed: 6, Store: st, Warm: warm,
			WarmEvery: 1, Stats: stats})
		return recs, stats
	}
	coldRecs, _ := run(nil, false)

	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmRecs, warmStats := run(st, true)
	if !reflect.DeepEqual(coldRecs, warmRecs) {
		t.Fatalf("thetasweep warm records diverged:\ncold: %+v\nwarm: %+v", coldRecs, warmRecs)
	}
	if hits := warmStats.SnapshotHits.Load(); hits == 0 {
		t.Fatal("thetasweep warm run restored no prefixes")
	}
}
