package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/runstore"
)

// TestSweepCellEvents: every grid cell announces itself exactly once,
// computed cells live and cached cells in grid order on the second run.
func TestSweepCellEvents(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []CellEvent
	o := Options{Scale: Tiny, Seed: 11, Jobs: 2, Store: st, Stats: &SweepStats{},
		Events: func(ce CellEvent) {
			mu.Lock()
			events = append(events, ce)
			mu.Unlock()
		}}
	if _, err := Run("smoke", o); err != nil {
		t.Fatal(err)
	}
	cells := int(o.Stats.Cells.Load())
	if len(events) != cells {
		t.Fatalf("%d cell events for %d cells", len(events), cells)
	}
	for _, ce := range events {
		if ce.Cached {
			t.Fatalf("cold sweep reported cached cell: %+v", ce)
		}
		if ce.Total != cells {
			t.Fatalf("cell event total %d, want %d", ce.Total, cells)
		}
	}

	// Warm rerun: every cell is announced as cached, in grid order.
	events = nil
	if _, err := Run("smoke", o); err != nil {
		t.Fatal(err)
	}
	if len(events) != cells {
		t.Fatalf("warm rerun: %d events for %d cells", len(events), cells)
	}
	for i, ce := range events {
		if !ce.Cached || ce.Index != i {
			t.Fatalf("warm rerun event %d: %+v", i, ce)
		}
	}
}

// TestSweepCancellation: cancelling the sweep context mid-grid aborts
// the runner with the context's error; completed cells persist, so the
// resumed sweep computes only the remainder and its records match an
// uninterrupted sweep exactly.
func TestSweepCancellation(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference (separate store so nothing is shared).
	refStore, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run("smoke", Options{Scale: Tiny, Seed: 13, Store: refStore})
	if err != nil {
		t.Fatal(err)
	}

	// Cancelled sweep: sequential jobs, cancel after the first computed
	// cell, so exactly one of the two smoke cells lands in the store.
	ctx, cancel := context.WithCancel(context.Background())
	stats := &SweepStats{}
	_, err = Run("smoke", Options{Scale: Tiny, Seed: 13, Jobs: 1, Store: st, Stats: stats, Ctx: ctx,
		Events: func(CellEvent) { cancel() }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v", err)
	}
	if got := stats.Executed.Load(); got != 1 {
		t.Fatalf("cancelled sweep executed %d cells, want 1", got)
	}

	// Resume: only the missing cell computes, and the records are
	// byte-identical to the uninterrupted sweep.
	resumeStats := &SweepStats{}
	got, err := Run("smoke", Options{Scale: Tiny, Seed: 13, Jobs: 1, Store: st, Stats: resumeStats})
	if err != nil {
		t.Fatal(err)
	}
	if resumeStats.Cached.Load() != 1 || resumeStats.Executed.Load() != 1 {
		t.Fatalf("resume stats: cached=%d executed=%d, want 1/1",
			resumeStats.Cached.Load(), resumeStats.Executed.Load())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed sweep diverged from uninterrupted sweep:\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestSweepPreCancelled: a context that is already done aborts before
// any cell computes.
func TestSweepPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats := &SweepStats{}
	_, err := Run("smoke", Options{Scale: Tiny, Seed: 17, Jobs: 1, Stats: stats, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep returned %v", err)
	}
	if got := stats.Executed.Load(); got != 0 {
		t.Fatalf("pre-cancelled sweep executed %d cells", got)
	}
}
