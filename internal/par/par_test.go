package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != 1 {
		t.Fatalf("Resolve(0) = %d want 1 (sequential zero value)", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d", got)
	}
	if got := Resolve(6); got != 6 {
		t.Fatalf("Resolve(6) = %d", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-1) = %d want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestForEachCoversEveryIndexOnce drives the dispatch loop across widths
// and sizes — including width > n, n == 0 and the sequential path — and
// checks each index runs exactly once. The concurrent counter increments
// also make this a race-detector probe.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 13, 64} {
		for _, n := range []int{0, 1, 5, 64, 257} {
			hits := make([]atomic.Int32, n)
			ForEach(w, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", w, n, i, c)
				}
			}
		}
	}
}

// TestForEachCtxNilAndCompleted: a nil or never-cancelled context runs
// every index and returns nil, matching ForEach.
func TestForEachCtxNilAndCompleted(t *testing.T) {
	for _, w := range []int{1, 4} {
		hits := make([]atomic.Int32, 50)
		if err := ForEachCtx(nil, w, len(hits), func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("nil-ctx width %d: index %d ran %d times", w, i, hits[i].Load())
			}
		}
		hits = make([]atomic.Int32, 50)
		if err := ForEachCtx(context.Background(), w, len(hits), func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("background-ctx width %d: index %d ran %d times", w, i, hits[i].Load())
			}
		}
	}
}

// TestForEachCtxCancellation: cancelling mid-loop stops new dispatches,
// never interrupts a running body, and returns the context error. The
// sequential path must preserve prefix order: indices [0, k) ran, the
// rest did not.
func TestForEachCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := make([]atomic.Int32, 100)
	err := ForEachCtx(ctx, 1, len(ran), func(i int) {
		ran[i].Add(1)
		if i == 9 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i := range ran {
		want := int32(0)
		if i < 10 {
			want = 1
		}
		if ran[i].Load() != want {
			t.Fatalf("sequential cancel: index %d ran %d times", i, ran[i].Load())
		}
	}

	// Parallel path: at least the post-cancel tail is skipped, and no
	// index runs twice.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var count atomic.Int32
	ran2 := make([]atomic.Int32, 1000)
	err = ForEachCtx(ctx2, 4, len(ran2), func(i int) {
		ran2[i].Add(1)
		if count.Add(1) == 5 {
			cancel2()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v", err)
	}
	total := int32(0)
	for i := range ran2 {
		c := ran2[i].Load()
		if c > 1 {
			t.Fatalf("parallel cancel: index %d ran %d times", i, c)
		}
		total += c
	}
	if total == int32(len(ran2)) {
		t.Fatal("cancellation skipped nothing")
	}

	// Pre-cancelled: nothing runs.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	ran3 := 0
	if err := ForEachCtx(ctx3, 4, 10, func(int) { ran3++ }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if ran3 != 0 {
		t.Fatalf("pre-cancelled ctx ran %d bodies", ran3)
	}
}
