package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != 1 {
		t.Fatalf("Resolve(0) = %d want 1 (sequential zero value)", got)
	}
	if got := Resolve(1); got != 1 {
		t.Fatalf("Resolve(1) = %d", got)
	}
	if got := Resolve(6); got != 6 {
		t.Fatalf("Resolve(6) = %d", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-1) = %d want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestForEachCoversEveryIndexOnce drives the dispatch loop across widths
// and sizes — including width > n, n == 0 and the sequential path — and
// checks each index runs exactly once. The concurrent counter increments
// also make this a race-detector probe.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 13, 64} {
		for _, n := range []int{0, 1, 5, 64, 257} {
			hits := make([]atomic.Int32, n)
			ForEach(w, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", w, n, i, c)
				}
			}
		}
	}
}
