// Package par is the bounded fan-out primitive shared by the training
// pool (internal/core) and the sweep runner (internal/experiments). It
// defines the repository-wide parallelism-knob convention and the
// index-addressed dispatch loop both layers build on.
//
// Determinism contract: ForEach guarantees each index executes exactly
// once, but in no particular order and possibly concurrently. Callers
// stay bit-identical to a sequential loop by writing only to
// index-addressed slots and performing floating-point reductions
// afterwards, in index order, on the calling goroutine; integer
// reductions are order-independent.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a parallelism knob value to an effective goroutine
// count: 0 (the zero value) and 1 mean sequential, positive values are
// taken literally, and negative values select runtime.GOMAXPROCS.
func Resolve(knob int) int {
	if knob < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if knob == 0 {
		return 1
	}
	return knob
}

// ForEach runs body(i) for every i in [0, n) across up to workers
// goroutines. With one effective worker (or n <= 1) it runs inline on
// the calling goroutine; otherwise indices are drawn from a shared
// atomic counter by min(workers, n) goroutines.
// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// no new index is dispatched. Bodies already running are never
// interrupted — an index either executes fully or not at all, which is
// what lets checkpointed sweeps resume without torn cells. It returns
// ctx.Err() when cancellation preempted at least the dispatch loop, nil
// when every index ran.
//
// The cancellation check sits on the index-draw path only, so a nil or
// never-cancelled ctx costs one atomic load per index and the execution
// order (and therefore every result, by the index-addressed determinism
// contract) is identical to ForEach.
func ForEachCtx(ctx context.Context, workers, n int, body func(i int)) error {
	if ctx == nil {
		ForEach(workers, n, body)
		return nil
	}
	done := ctx.Done()
	if done == nil {
		ForEach(workers, n, body)
		return nil
	}
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return ctx.Err()
			}
			body(i)
		}
		return nil
	}
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					stopped.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if stopped.Load() {
		return ctx.Err()
	}
	return nil
}

func ForEach(workers, n int, body func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}
