package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// ObswriteAnalyzer enforces telemetry non-interference (DESIGN.md §11)
// structurally, in both directions:
//
//  1. internal/obs must not import any package of this module —
//     telemetry observes training, never participates in it, so the
//     dependency arrow points one way only;
//  2. everywhere else, calls into internal/obs APIs may pass only
//     values: an argument whose type carries a reference (pointer,
//     slice, map, channel, function, or a struct/array transitively
//     containing one) would hand the telemetry layer a window into
//     live model or optimizer state that a future "harmless" obs
//     change could read mid-step — or worse, write. Types declared by
//     obs itself (Buckets, Region, ...) are exempt: they are the
//     layer's own currency. Output sinks — any type implementing
//     io.Writer, like the *os.File behind TraceTo or the
//     http.ResponseWriter behind WritePrometheus — are also exempt:
//     exposition APIs exist to write telemetry out, and a sink gives
//     obs no path back into training state.
var ObswriteAnalyzer = &Analyzer{
	Name: "obswrite",
	Doc:  "enforces the obs one-way dependency rule and value-only obs call arguments",
	Run:  runObswrite,
}

func runObswrite(pass *Pass) error {
	if !ModulePackage(pass.Path) {
		return nil
	}
	if pass.Path == obsPath {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ModulePackage(path) {
					pass.Reportf(imp.Pos(),
						"internal/obs imports %s: telemetry must not depend on training packages (non-interference, DESIGN.md §11)", path)
				}
			}
		}
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := obsCallee(pass, call)
			if callee == "" {
				return true
			}
			for _, arg := range call.Args {
				t := pass.TypeOf(arg)
				if t == nil || isWriterSink(t) {
					continue
				}
				if ref := refComponent(t, map[types.Type]bool{}); ref != "" {
					pass.Reportf(arg.Pos(),
						"%s argument to obs.%s aliases mutable state (%s); pass a value — telemetry reads copies, never pointers into the model (DESIGN.md §11)",
						t.String(), callee, ref)
				}
			}
			return true
		})
	}
	return nil
}

// obsCallee returns the obs function/method name when call targets
// internal/obs, else "".
func obsCallee(pass *Pass, call *ast.CallExpr) string {
	if pass.Info == nil {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.Info.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return ""
	}
	return fn.Name()
}

// refComponent returns a description of the first reference-carrying
// component of t, or "" when t is pure value data. Named types from
// the obs package itself are exempt.
func refComponent(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == obsPath {
			return ""
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "unsafe.Pointer"
		}
		return ""
	case *types.Pointer:
		return "pointer " + u.String()
	case *types.Slice:
		return "slice " + u.String()
	case *types.Map:
		return "map " + u.String()
	case *types.Chan:
		return "channel " + u.String()
	case *types.Signature:
		return "function value"
	case *types.Interface:
		if isErrorType(t) {
			return ""
		}
		return "interface " + t.String() + " (cannot prove value semantics)"
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if ref := refComponent(u.Field(i).Type(), seen); ref != "" {
				return "field " + u.Field(i).Name() + ": " + ref
			}
		}
		return ""
	case *types.Array:
		return refComponent(u.Elem(), seen)
	}
	return ""
}

// writerIface is io.Writer, constructed without importing io so the
// check works on any type-checked universe: Write(p []byte) (n int,
// err error).
var writerIface = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(0, nil, "n", types.Typ[types.Int]),
			types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil).Complete()

// isWriterSink reports whether t (or *t) implements io.Writer — an
// output sink for exposition APIs, not a window into training state.
func isWriterSink(t types.Type) bool {
	return types.Implements(t, writerIface) || types.Implements(types.NewPointer(t), writerIface)
}

// isErrorType reports whether t is the built-in error interface —
// error values into obs (e.g. failure-labelled counters) are accepted:
// obs formats them to strings immediately.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
