package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetmapAnalyzer flags `range` over a map in the deterministic
// packages. Go randomizes map iteration order, so any map-ordered loop
// whose body is not provably order-insensitive is a latent
// determinism break — exactly the class of bug the PR 1 parity tests
// can only catch on the paths they happen to drive.
//
// A loop body passes the conservative order-insensitivity whitelist
// when every statement is commutative across iterations:
//
//   - a write into a map indexed by the range key variable itself
//     (`out[k] = v` — distinct keys of the source map hit distinct
//     destination keys, so writes commute); the value must be a pure
//     expression (no calls except type conversions),
//   - `delete(m, k)` keyed by the range key variable,
//   - an integer count (`n++`, `n--`, `n += pure`) — integer addition
//     is associative and commutative, unlike the float accumulations
//     floatsum polices.
//
// Anything else — appends, float math, sends, calls — needs sorted
// keys or an explicit //fda:allow(detmap, reason).
var DetmapAnalyzer = &Analyzer{
	Name: "detmap",
	Doc:  "flags iteration-order-dependent map ranges in deterministic packages",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) error {
	if !DeterministicPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if detmapWhitelisted(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s is iteration-order-dependent; iterate sorted keys (checkpoint.sortedKeys idiom) or annotate //fda:allow(detmap, reason) if provably order-insensitive",
				t.String())
			return true
		})
	}
	return nil
}

// detmapWhitelisted reports whether every statement in the loop body
// is on the order-insensitive whitelist.
func detmapWhitelisted(pass *Pass, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(pass, rs.Key)
	if rs.Body == nil || len(rs.Body.List) == 0 {
		return true // empty body: nothing order-dependent
	}
	for _, stmt := range rs.Body.List {
		if !detmapStmtOK(pass, stmt, keyObj) {
			return false
		}
	}
	return true
}

func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" || pass.Info == nil {
		return nil
	}
	return pass.Info.ObjectOf(id)
}

func detmapStmtOK(pass *Pass, stmt ast.Stmt, keyObj types.Object) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ASSIGN:
			// out[k] = pure — distinct source keys, distinct dest keys.
			ix, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok || keyObj == nil {
				return false
			}
			if t := pass.TypeOf(ix.X); t == nil {
				return false
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
			if !isIdentOf(pass, ix.Index, keyObj) {
				return false
			}
			return pureExpr(pass, s.Rhs[0])
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			// integer counting only; floats must go through kernels.
			return integerLHS(pass, s.Lhs[0]) && pureExpr(pass, s.Rhs[0])
		}
		return false
	case *ast.IncDecStmt:
		return integerLHS(pass, s.X)
	case *ast.ExprStmt:
		// delete(m, k)
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 || keyObj == nil {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		if obj := pass.Info.ObjectOf(fn); obj == nil || obj.Pkg() != nil {
			return false // shadowed delete
		}
		return isIdentOf(pass, call.Args[1], keyObj)
	}
	return false
}

func isIdentOf(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.Info != nil && pass.Info.ObjectOf(id) == obj
}

func integerLHS(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	t := pass.TypeOf(id)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr reports whether e is side-effect-free and call-free (type
// conversions excepted): identifiers, literals, selectors, indexing,
// arithmetic, address-of and composite literals of pure parts.
func pureExpr(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return pureExpr(pass, e.X)
	case *ast.SelectorExpr:
		return pureExpr(pass, e.X)
	case *ast.IndexExpr:
		return pureExpr(pass, e.X) && pureExpr(pass, e.Index)
	case *ast.BinaryExpr:
		return pureExpr(pass, e.X) && pureExpr(pass, e.Y)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && pureExpr(pass, e.X)
	case *ast.StarExpr:
		return pureExpr(pass, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !pureExpr(pass, kv.Key) || !pureExpr(pass, kv.Value) {
					return false
				}
			} else if !pureExpr(pass, el) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		// Type conversions are pure; function calls are not assumed so.
		if pass.Info != nil {
			if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return pureExpr(pass, e.Args[0])
			}
		}
		return false
	}
	return false
}
