// Fixture for the wallclock analyzer, type-checked as
// repro/internal/core so the internal-package scope applies.
package wallclock

import (
	"math/rand" // want "import of math/rand: deterministic code must draw randomness from tensor.RNG"
	"time"
)

// stamp is the historical violation shape (pre-telemetry step
// records): stamping events with the ambient clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "time\.Now reads the ambient clock"
}

func nap(d time.Duration) {
	time.Sleep(d) // want "time\.Sleep reads the ambient clock"
}

func delay() <-chan time.Time {
	return time.After(time.Second) // want "time\.After reads the ambient clock"
}

// jitter only exercises the import finding: the global math/rand
// stream is flagged at the import site, once.
func jitter() float64 {
	return rand.Float64()
}

// tick is legal: duration and constant arithmetic reads no clock.
const tick = 3 * time.Second

// epoch shows the annotated-edge exemption (runstore timestamps, the
// obs trace epoch and comm/tcp socket timing carry the same grammar).
//
//fda:allow(wallclock, fixture: legitimate edge keeps its wall clock)
var epoch = time.Now().UnixNano()
