// Fixture for the obswrite analyzer's direction-1 rule, type-checked
// as repro/internal/obs: the telemetry package must not import
// training packages.
package obs

import "repro/internal/core" // want "internal/obs imports repro/internal/core: telemetry must not depend on training packages"

var _ core.Result
