// Fixture for the obswrite analyzer's direction-2 rule, type-checked
// as repro/internal/core: calls into internal/obs pass values only.
package obswrite

import (
	"io"

	"repro/internal/obs"
)

// Model stands in for live training state.
type Model struct {
	Weights []float64
	Step    int
}

// leakSlice is the historical violation shape: handing the tracer a
// live gradient slice that a future obs change could read mid-step.
func leakSlice(grad []float64) {
	obs.Instant("grad", "train", grad) // want "\[\]float64 argument to obs\.Instant aliases mutable state \(slice \[\]float64\)"
}

// leakPointer hands obs a pointer into model state.
func leakPointer(m *Model) {
	obs.Instant("model", "train", m) // want "argument to obs\.Instant aliases mutable state \(pointer"
}

// leakStructField: a struct argument is traversed transitively — the
// embedded slice is the reference.
func leakStructField(m Model) {
	obs.Instant("model", "train", m) // want "aliases mutable state \(field Weights: slice \[\]float64\)"
}

// values is legal: scalars and strings are copies.
func values(grad []float64, m Model) {
	obs.Instant("grad", "train", len(grad), grad[0], m.Step)
}

// sink is legal: io.Writer arguments are output sinks (the *os.File
// behind TraceTo, the http.ResponseWriter behind WritePrometheus); a
// sink gives obs no path back into training state.
func sink(w io.Writer) error {
	return obs.TraceTo(w)
}
