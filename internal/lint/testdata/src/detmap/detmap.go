// Fixture for the detmap analyzer, type-checked as repro/internal/core
// so the deterministic-package scope applies.
package detmap

// collect is the historical violation shape (the pre-PR2 checkpoint
// serializer): collecting map values in iteration order, so the result
// depends on Go's randomized map walk.
func collect(m map[string]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m { // want "range over map map\[string\]float64 is iteration-order-dependent"
		out = append(out, v)
	}
	return out
}

// double is whitelisted: a write into a map indexed by the range key
// itself with a pure value — distinct source keys hit distinct
// destination keys, so writes commute.
func double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// count is whitelisted: integer counting is associative and
// commutative.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// drain is whitelisted: delete keyed by the range key.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// impureValue is not whitelisted: the written value calls a function,
// which the conservative purity check refuses to reason about.
func impureValue(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // want "range over map"
		out[k] = next(v)
	}
	return out
}

func next(v int) int { return v + 1 }

// annotated shows the exemption grammar: the allow on the preceding
// line suppresses the finding and is consumed (an unused allow is
// itself a diagnostic).
func annotated(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//fda:allow(detmap, fixture: caller sorts the keys before use)
	for k := range m {
		out = append(out, k)
	}
	return out
}
