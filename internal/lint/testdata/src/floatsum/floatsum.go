// Fixture for the floatsum analyzer, type-checked as
// repro/internal/core: a deterministic package that is not
// internal/tensor, so raw float reductions must go through the fused
// kernels.
package floatsum

// sum is the historical violation shape (pre-PR3
// comm.AllReduceScalars): a naive left-fold over a float slice whose
// accumulation order an "optimization" could silently change.
func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want "raw float accumulation s \+= "
	}
	return s
}

// dot flags the indexed product shape too.
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i] // want "raw float accumulation s \+= "
	}
	return s
}

// scaled flags element times plain float operand.
func scaled(xs []float64, w float64) float64 {
	var s float64
	for _, x := range xs {
		s += w * x // want "raw float accumulation s \+= "
	}
	return s
}

// blockSum is legal: accumulating the results of kernel calls across
// blocks is fine — block order is pinned by the slice iteration, and
// each call's inner order is pinned by the kernel.
func blockSum(blocks [][]float64) float64 {
	var s float64
	for _, b := range blocks {
		s += kernel(b)
	}
	return s
}

func kernel(v []float64) float64 { return float64(len(v)) }

// perElement is legal: the accumulator is declared inside the
// innermost loop body, so it resets every iteration — no
// cross-iteration reduction exists.
func perElement(xs []float64) {
	for i := range xs {
		d := 1.0
		d += xs[i]
		xs[i] = d
	}
}

// intSum is legal: integer addition is associative.
func intSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// window shows the exemption grammar for reductions no kernel covers
// (the AvgPool2D strided-tap window carries the same annotation).
func window(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		//fda:allow(floatsum, fixture: strided taps no fused kernel replaces)
		s += x
	}
	return s
}
