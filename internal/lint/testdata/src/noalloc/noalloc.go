// Fixture for the noalloc analyzer: annotated functions are rebuilt
// with -gcflags=-m and any escape-analysis allocation inside them is a
// finding.
package noalloc

var sink *int

// leak is the historical shape: a "harmless" refactor makes a local
// escape, and the zero-alloc contract breaks silently until a
// testing.AllocsPerRun assertion happens to drive the path.
//
//fda:noalloc
func leak(n int) {
	x := n + 1 // want "heap allocation in //fda:noalloc function leak: moved to heap: x"
	sink = &x
}

// clean keeps the promise: index loops over caller-owned slices
// allocate nothing.
//
//fda:noalloc
func clean(v []float64) float64 {
	s := 0.0
	for i := range v {
		s = s + v[i]
	}
	return s
}

// guarded shows the panic-path exemption: escape analysis is
// flow-insensitive, so abort-only boxing carries an explicit allow.
//
//fda:noalloc
func guarded(ok bool) {
	if !ok {
		panic("noalloc fixture: guard tripped") //fda:allow(noalloc, string boxing on the abort path only)
	}
}

// unannotated makes no promise; its escape is not a finding.
func unannotated() *int {
	y := 2
	return &y
}
