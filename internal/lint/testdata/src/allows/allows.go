// Fixture for the framework's own diagnostics: unused, malformed and
// unknown-analyzer //fda:allow annotations all fail the build, so
// there are no silent exemptions. Expectations live in lint_test.go
// (the annotation and a // want comment cannot share a line).
package allows

import "time"

//fda:allow(wallclock, nothing below reads the clock, so this is dead weight)
const tick = time.Second

//fda:allow(wallclock)
const tock = 2 * time.Second

//fda:allow(nosuch, the analyzer name is a typo)
const tack = 3 * time.Second
