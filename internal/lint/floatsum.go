package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatsumAnalyzer flags raw floating-point accumulation loops —
// `s += x[i]`, `s += x[i]*y[i]`, `s += v` over a ranged float slice —
// outside internal/tensor. Floating-point addition is not
// associative, so every reduction must run through the order-pinned
// fused kernels from PR 3 (tensor.Sum, tensor.Dot,
// tensor.SubThenSquaredNorm, ...): those pin the scalar accumulation
// order that the parity tests certify, and an ad-hoc loop that later
// gets "optimized" (unrolled, reordered, parallelized) silently
// changes trajectories. Accumulating the *results* of kernel calls
// across blocks (`s += tensor.Dot(a, b)`) is fine — block order is
// pinned by the enclosing slice iteration — so call results are
// deliberately not flagged.
var FloatsumAnalyzer = &Analyzer{
	Name: "floatsum",
	Doc:  "flags raw float64 element-accumulation loops outside internal/tensor",
	Run:  runFloatsum,
}

func runFloatsum(pass *Pass) error {
	if !DeterministicPackage(pass.Path) || pass.Path == modulePath+"/internal/tensor" {
		return nil
	}
	for _, f := range pass.Files {
		walkFloatsum(pass, f, nil, map[types.Object]bool{})
	}
	return nil
}

// walkFloatsum recurses carrying the innermost enclosing loop node and
// the set of range-value variables bound to float slice elements.
func walkFloatsum(pass *Pass, n ast.Node, loop ast.Node, rangeVals map[types.Object]bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		if n.Init != nil {
			walkFloatsum(pass, n.Init, loop, rangeVals)
		}
		walkFloatsumBody(pass, n.Body, n, rangeVals)
		return
	case *ast.RangeStmt:
		inner := rangeVals
		if obj := floatRangeValue(pass, n); obj != nil {
			inner = make(map[types.Object]bool, len(rangeVals)+1)
			for k := range rangeVals {
				inner[k] = true
			}
			inner[obj] = true
		}
		walkFloatsumBody(pass, n.Body, n, inner)
		return
	case *ast.AssignStmt:
		checkFloatsumAssign(pass, n, loop, rangeVals)
	}
	// Generic recursion preserving the current loop context.
	children(n, func(c ast.Node) {
		walkFloatsum(pass, c, loop, rangeVals)
	})
}

func walkFloatsumBody(pass *Pass, body *ast.BlockStmt, loop ast.Node, rangeVals map[types.Object]bool) {
	if body == nil {
		return
	}
	for _, stmt := range body.List {
		walkFloatsum(pass, stmt, loop, rangeVals)
	}
}

// children invokes fn on each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// floatRangeValue returns the object of the range value variable when
// n ranges over a slice/array of floats.
func floatRangeValue(pass *Pass, n *ast.RangeStmt) types.Object {
	if n.Value == nil || pass.Info == nil {
		return nil
	}
	t := pass.TypeOf(n.X)
	if t == nil {
		return nil
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return nil
	}
	if !isFloat(elem) {
		return nil
	}
	return rangeVarObj(pass, n.Value)
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkFloatsumAssign flags `s += <element expr>` where s is a float
// scalar declared outside the innermost loop.
func checkFloatsumAssign(pass *Pass, as *ast.AssignStmt, loop ast.Node, rangeVals map[types.Object]bool) {
	if loop == nil || as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || pass.Info == nil {
		return
	}
	obj := pass.Info.ObjectOf(lhs)
	if obj == nil || !isFloat(obj.Type()) {
		return
	}
	// Accumulators declared inside the loop body reset every iteration
	// and are no cross-iteration reduction.
	if obj.Pos() > loop.Pos() {
		return
	}
	if elementRead(pass, as.Rhs[0], rangeVals) {
		pass.Reportf(as.Pos(),
			"raw float accumulation %s += ... in a loop; reductions must use the order-pinned fused kernels (tensor.Sum/Dot/SubThenSquaredNorm), or annotate //fda:allow(floatsum, reason)", lhs.Name)
	}
}

// elementRead reports whether e is built purely from float
// slice/array element reads (x[i], a ranged value variable) combined
// with arithmetic — the shape a fused kernel replaces.
func elementRead(pass *Pass, e ast.Expr, rangeVals map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return elementRead(pass, e.X, rangeVals)
	case *ast.UnaryExpr:
		return e.Op == token.SUB && elementRead(pass, e.X, rangeVals)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return (elementRead(pass, e.X, rangeVals) && floatOperand(pass, e.Y, rangeVals)) ||
				(floatOperand(pass, e.X, rangeVals) && elementRead(pass, e.Y, rangeVals))
		}
		return false
	case *ast.IndexExpr:
		t := pass.TypeOf(e)
		xt := pass.TypeOf(e.X)
		if t == nil || xt == nil || !isFloat(t) {
			return false
		}
		switch xt.Underlying().(type) {
		case *types.Slice, *types.Array:
			return true
		}
		return false
	case *ast.Ident:
		if pass.Info == nil {
			return false
		}
		return rangeVals[pass.Info.ObjectOf(e)]
	}
	return false
}

// floatOperand is elementRead's companion for the non-element side of
// a product/quotient: element reads, plain float identifiers,
// selectors and literals all qualify (e.g. s += w.scale * x[i]).
func floatOperand(pass *Pass, e ast.Expr, rangeVals map[types.Object]bool) bool {
	if elementRead(pass, e, rangeVals) {
		return true
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return floatOperand(pass, e.X, rangeVals)
	case *ast.UnaryExpr:
		return e.Op == token.SUB && floatOperand(pass, e.X, rangeVals)
	case *ast.BasicLit, *ast.SelectorExpr:
		t := pass.TypeOf(e)
		return t != nil && isFloat(t)
	case *ast.Ident:
		t := pass.TypeOf(e)
		return t != nil && isFloat(t)
	}
	return false
}
