// Package loading for fdavet. Instead of depending on
// golang.org/x/tools/go/packages (not vendored here), the loader leans
// on the go command itself: `go list -deps -export -json` enumerates
// the packages matching the user's patterns and compiles export data
// for every dependency into the build cache, and the standard
// library's gc importer consumes that export data through a lookup
// function. Source is parsed (with comments — the annotation grammar
// lives there) and type-checked per analyzed package, so analyzers see
// full types.Info at go/analysis fidelity, entirely offline.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Err   error // parse or type error; analysis refuses to run on top
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` in dir and decodes the
// JSON stream.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// GcImporter wraps the standard library's gc export-data importer
// around a lookup function (the go vet protocol driver feeds it the
// vet config's PackageFile map).
func GcImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// exportImporter resolves imports through compiled export data.
type exportImporter struct {
	exports map[string]string // import path → export file
	gc      types.ImporterFrom
}

// NewImporter builds a types.Importer whose universe is the packages
// matched by patterns (plus all their dependencies), with export data
// produced by `go list -export` run in dir. The go command compiles
// into the local build cache, so this works with no network.
func NewImporter(fset *token.FileSet, dir string, patterns ...string) (types.Importer, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	imp := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (not among the listed patterns or their deps)", path)
		}
		return os.Open(file)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp, nil
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return i.gc.ImportFrom(path, dir, mode)
}

// CheckDir parses every listed file and type-checks the result as
// import path asPath. Files must all belong to srcDir.
func CheckDir(fset *token.FileSet, srcDir, asPath string, goFiles []string, imp types.Importer) *Package {
	pkg := &Package{ImportPath: asPath, Dir: srcDir}
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(srcDir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Err = err
			return pkg
		}
		pkg.Files = append(pkg.Files, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
	}
	if len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(asPath, fset, pkg.Files, info)
	pkg.Pkg, pkg.Info, pkg.Fset = tpkg, info, fset
	if err != nil {
		pkg.Err = err
	}
	return pkg
}

// Load enumerates, parses and type-checks the non-test compiled Go
// files of every package matching patterns, resolved relative to dir
// (the module root for `fdavet ./...`). Test files are not analyzed:
// the invariants under enforcement govern shipped code, and the test
// matrix is precisely the dynamic layer these checks back up.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	fset := token.NewFileSet()
	imp := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard {
			continue
		}
		if e.Error != nil {
			pkgs = append(pkgs, &Package{ImportPath: e.ImportPath, Dir: e.Dir, Err: fmt.Errorf("%s", e.Error.Err)})
			continue
		}
		pkg := CheckDir(fset, e.Dir, e.ImportPath, e.GoFiles, imp)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
