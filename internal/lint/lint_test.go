package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture tests mirror x/tools' analysistest: each directory under
// testdata/src is parsed and type-checked as an as-if import path (so
// fixtures can opt into a scope like repro/internal/core without
// living there), the analyzer under test runs, and its diagnostics are
// matched against trailing `// want "regex"` comments. Every
// diagnostic must be wanted and every want must fire.

// repoRoot is the module root relative to this package's directory,
// where `go list -export` resolves the fixture's imports offline.
const repoRoot = "../.."

// newFixtureImporter builds the shared type-checking universe: every
// module package plus the stdlib packages the fixtures import.
func newFixtureImporter(t *testing.T, fset *token.FileSet) types.Importer {
	t.Helper()
	imp, err := NewImporter(fset, repoRoot, "./...", "time", "math/rand", "io")
	if err != nil {
		t.Fatalf("building fixture importer: %v", err)
	}
	return imp
}

// loadFixture type-checks testdata/src/<dir> as import path asPath.
func loadFixture(t *testing.T, fset *token.FileSet, imp types.Importer, dir, asPath string) *Package {
	t.Helper()
	srcDir, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", dir, err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	pkg := CheckDir(fset, srcDir, asPath, goFiles, imp)
	if pkg.Err != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.Err)
	}
	return pkg
}

// wantExp is one expectation parsed from a `// want "regex"` comment.
type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantCommentRE = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantPatternRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// parseWants scans the fixture's comments for expectations. A want
// comment applies to the line it sits on, so expectations ride as
// trailing comments on the flagged statements.
func parseWants(t *testing.T, pkg *Package) []*wantExp {
	t.Helper()
	var wants []*wantExp
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantCommentRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pm := range wantPatternRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pm[1], err)
					}
					wants = append(wants, &wantExp{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture executes one analyzer over one fixture and matches
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, dir, asPath string, a *Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	imp := newFixtureImporter(t, fset)
	pkg := loadFixture(t, fset, imp, dir, asPath)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, dir, err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claimWant consumes the first unmatched expectation on the
// diagnostic's line whose pattern matches its message.
func claimWant(wants []*wantExp, d Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func TestDetmapFixture(t *testing.T) {
	runFixture(t, "detmap", "repro/internal/core", DetmapAnalyzer)
}

func TestWallclockFixture(t *testing.T) {
	runFixture(t, "wallclock", "repro/internal/core", WallclockAnalyzer)
}

func TestFloatsumFixture(t *testing.T) {
	runFixture(t, "floatsum", "repro/internal/core", FloatsumAnalyzer)
}

func TestObswriteValueRuleFixture(t *testing.T) {
	runFixture(t, "obswrite", "repro/internal/core", ObswriteAnalyzer)
}

func TestObswriteImportRuleFixture(t *testing.T) {
	runFixture(t, "obswrite_obs", "repro/internal/obs", ObswriteAnalyzer)
}

func TestNoallocFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("noalloc shells out to go build -gcflags=-m")
	}
	runFixture(t, "noalloc", "repro/internal/lint/testdata/src/noalloc", NoallocAnalyzer)
}

// TestAllowDiagnostics covers the framework's own findings: unused,
// malformed and unknown-analyzer annotations each fail the build, so
// deleting a violation without its annotation — or vice versa — is
// caught. Expectations are programmatic because an annotation and a
// want comment cannot share a line.
func TestAllowDiagnostics(t *testing.T) {
	fset := token.NewFileSet()
	imp := newFixtureImporter(t, fset)
	pkg := loadFixture(t, fset, imp, "allows", "repro/internal/core")
	diags, err := Run([]*Package{pkg}, []*Analyzer{WallclockAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		`unused //fda:allow(wallclock, ...)`,
		`malformed annotation "//fda:allow(wallclock)"`,
		`names unknown analyzer "nosuch"`,
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrings), renderDiags(diags))
	}
	for i, want := range wantSubstrings {
		if d := diags[i]; d.Analyzer != "fdavet" || !strings.Contains(d.Message, want) {
			t.Errorf("diagnostic %d = %s: %s, want fdavet message containing %q", i, d.Analyzer, d.Message, want)
		}
	}
}

// TestAllowConsumedSuppresses pins the two-line coverage rule: an
// annotation suppresses on its own line and the line below, and a
// consumed annotation is not reported as unused.
func TestAllowConsumedSuppresses(t *testing.T) {
	fset := token.NewFileSet()
	imp := newFixtureImporter(t, fset)
	pkg := loadFixture(t, fset, imp, "wallclock", "repro/internal/core")
	diags, err := Run([]*Package{pkg}, []*Analyzer{WallclockAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "unused //fda:allow") {
			t.Errorf("consumed annotation reported unused: %s", d)
		}
		if d.Pos.Line > 0 && strings.Contains(d.Message, "time.Now") && strings.Contains(d.Message, "epoch") {
			t.Errorf("suppressed diagnostic leaked: %s", d)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return b.String()
}
