package lint

import "strings"

// modulePath is this repository's module path (go.mod). The scope
// helpers key off full import paths so fixture tests can opt into a
// scope by type-checking under an as-if path (see linttest).
const modulePath = "repro"

// deterministicPackages are the packages under the bit-exact
// determinism contract (DESIGN.md §3): identical results at any
// parallelism, any fabric, telemetry on or off. detmap, wallclock and
// floatsum enforce their invariants here.
var deterministicPackages = map[string]bool{
	modulePath + "/internal/core":        true,
	modulePath + "/internal/nn":          true,
	modulePath + "/internal/opt":         true,
	modulePath + "/internal/tensor":      true,
	modulePath + "/internal/comm":        true,
	modulePath + "/internal/compress":    true,
	modulePath + "/internal/experiments": true,
	modulePath + "/internal/dist":        true,
	modulePath + "/internal/workload":    true,
	modulePath + "/internal/cluster":     true,
}

// obsPath is the telemetry package, whose one-way dependency rule
// obswrite enforces.
const obsPath = modulePath + "/internal/obs"

// DeterministicPackage reports whether path carries the determinism
// contract.
func DeterministicPackage(path string) bool { return deterministicPackages[path] }

// InternalPackage reports whether path is part of this module's
// internal tree (wallclock's scope: cmd binaries legitimately live on
// wall time; library code must not, outside annotated sites).
func InternalPackage(path string) bool {
	return strings.HasPrefix(path, modulePath+"/internal/")
}

// ModulePackage reports whether path belongs to this module at all
// (obswrite's value-passing rule applies module-wide).
func ModulePackage(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// Analyzers returns the full fdavet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetmapAnalyzer,
		WallclockAnalyzer,
		FloatsumAnalyzer,
		ObswriteAnalyzer,
		NoallocAnalyzer,
	}
}
