package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// NoallocAnalyzer makes the zero-allocation contract (DESIGN.md §7) a
// compile-time property. A function annotated
//
//	//fda:noalloc
//
// in its doc comment promises the training hot path never heap-
// allocates inside it. The analyzer recompiles the package with
// `go build -gcflags=-m` and fails on any escape-analysis diagnostic
// ("... escapes to heap", "moved to heap: x") positioned inside an
// annotated function — including diagnostics attributed there from
// inlined callees. Allocation sites that exist only on panic paths
// (the fmt.Sprintf argument boxing behind a length-check guard) carry
// line-level //fda:allow(noalloc, reason) annotations: escape analysis
// is flow-insensitive, so the exemption must be explicit rather than
// inferred.
//
// The check is deliberately per-function-body: allocations inside
// non-inlined callees belong to the callee's own annotation. It
// therefore complements — not replaces — the AllocsPerRun assertions,
// which measure whole call trees but only on the paths tests drive;
// noalloc covers every annotated body on every build.
var NoallocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc:  "fails on compiler-reported heap allocations inside //fda:noalloc functions",
	Run:  runNoalloc,
}

// noallocMarker is matched against each doc-comment line.
const noallocMarker = "//fda:noalloc"

// noallocFunc is one annotated function's source extent.
type noallocFunc struct {
	name      string
	file      string
	startLine int
	endLine   int
}

// escapeRE matches one escape-analysis diagnostic line.
var escapeRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

func runNoalloc(pass *Pass) error {
	var funcs []noallocFunc
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) != noallocMarker {
					continue
				}
				start := pass.Fset.Position(fd.Pos())
				end := pass.Fset.Position(fd.End())
				funcs = append(funcs, noallocFunc{
					name:      funcName(fd),
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
				})
				break
			}
		}
	}
	if len(funcs) == 0 {
		return nil
	}
	diags, err := escapeDiagnostics(pass)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fn := enclosingNoalloc(funcs, d.file, d.line)
		if fn == nil {
			continue
		}
		pass.report(token.Position{Filename: d.file, Line: d.line, Column: d.col},
			fmt.Sprintf("heap allocation in //fda:noalloc function %s: %s", fn.name, d.msg))
	}
	return nil
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		recv := fd.Recv.List[0].Type
		var b bytes.Buffer
		if star, ok := recv.(*ast.StarExpr); ok {
			b.WriteString("(*")
			if id, ok := star.X.(*ast.Ident); ok {
				b.WriteString(id.Name)
			}
			b.WriteString(")")
		} else if id, ok := recv.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
		return b.String() + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func enclosingNoalloc(funcs []noallocFunc, file string, line int) *noallocFunc {
	for i := range funcs {
		f := &funcs[i]
		if f.file == file && f.startLine <= line && line <= f.endLine {
			return f
		}
	}
	return nil
}

// escapeDiag is one parsed heap-allocation diagnostic.
type escapeDiag struct {
	file string
	line int
	col  int
	msg  string
}

// escapeDiagnostics rebuilds the package with escape-analysis output
// and returns the heap-allocation findings, positions resolved to
// absolute paths. The go build cache replays compiler diagnostics, so
// warm runs cost a cache probe, not a compile.
func escapeDiagnostics(pass *Pass) ([]escapeDiag, error) {
	args := []string{"build", "-gcflags=-m=1"}
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		args = append(args, "-o", os.DevNull)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = pass.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("noalloc: go build -gcflags=-m in %s: %v\n%s", pass.Dir, err, stderr.String())
	}
	var out []escapeDiag
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap:") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(pass.Dir, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, escapeDiag{file: filepath.Clean(file), line: ln, col: col, msg: msg})
	}
	return out, nil
}
