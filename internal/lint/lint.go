// Package lint is fdavet's analysis framework: a small, dependency-free
// analogue of golang.org/x/tools/go/analysis that statically enforces
// the repository's three load-bearing invariants — bit-exact
// determinism at any parallelism (DESIGN.md §3), zero allocations on
// the training hot path (§7), and telemetry non-interference (§11) —
// on every package, every build, instead of only on the code paths the
// dynamic test matrix happens to drive.
//
// The framework deliberately mirrors go/analysis (Analyzer, Pass,
// Reportf) so the analyzers port mechanically to the upstream
// framework if the x/tools dependency ever becomes available; the
// loader (load.go) feeds it fully type-checked packages using only the
// standard library and the go command.
//
// # The annotation grammar
//
// Every exemption is explicit and greppable (DESIGN.md §12):
//
//	//fda:allow(analyzer, reason)
//
// suppresses diagnostics from the named analyzer on the annotation's
// own line and on the line directly below it (so it works both as a
// trailing comment and as a standalone comment above a statement). The
// reason is mandatory. An allow that suppresses nothing is itself a
// diagnostic — deleting the violation without deleting its annotation
// fails the build, and so does deleting the annotation while the
// violation stands. There are no silent exemptions.
//
//	//fda:noalloc
//
// on a function declaration opts that function into the noalloc
// analyzer's escape-analysis check: any compiler-reported heap
// allocation inside its body fails the build (see noalloc.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named static check. Run is invoked once per loaded
// package; it reports findings through the Pass and returns an error
// only for infrastructure failures (never for findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, resolved to a concrete position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the go-vet-style single-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path under analysis
	Pkg      *types.Package
	Info     *types.Info
	Dir      string // package directory (noalloc shells out from here)

	allows *allowIndex
	sink   *[]Diagnostic
}

// Reportf records a finding at pos unless an //fda:allow annotation
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(position, fmt.Sprintf(format, args...))
}

// report is the position-resolved core of Reportf (noalloc reports
// compiler positions that never passed through the FileSet).
func (p *Pass) report(position token.Position, msg string) {
	if p.allows.suppress(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: msg})
}

// TypeOf is a nil-tolerant p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// allowRE matches the suppression annotation. The reason must be
// non-empty after trimming; the analyzer name must be a known one
// (checked by Run so typos cannot silently disable nothing).
var allowRE = regexp.MustCompile(`^//fda:allow\(([a-zA-Z0-9_]+)\s*,\s*(.*)\)\s*$`)

// allowSite is one parsed //fda:allow annotation.
type allowSite struct {
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
	bad      string // non-empty: malformed, reported verbatim
}

// allowIndex indexes a package's annotations by (analyzer, file, line).
type allowIndex struct {
	sites []*allowSite
	byKey map[string]*allowSite
}

func key(analyzer, file string, line int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", analyzer, file, line)
}

// parseAllows scans every comment in the package for the annotation
// grammar. known maps analyzer name → present, for typo detection.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) *allowIndex {
	idx := &allowIndex{byKey: map[string]*allowSite{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//fda:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				site := &allowSite{file: pos.Filename, line: pos.Line}
				m := allowRE.FindStringSubmatch(text)
				switch {
				case m == nil:
					site.bad = fmt.Sprintf("malformed annotation %q: want //fda:allow(analyzer, reason)", text)
				case strings.TrimSpace(m[2]) == "":
					site.bad = fmt.Sprintf("annotation %q has an empty reason", text)
				case !known[m[1]]:
					site.bad = fmt.Sprintf("annotation %q names unknown analyzer %q", text, m[1])
				default:
					site.analyzer, site.reason = m[1], strings.TrimSpace(m[2])
					idx.byKey[key(site.analyzer, site.file, site.line)] = site
				}
				idx.sites = append(idx.sites, site)
			}
		}
	}
	return idx
}

// suppress consumes the annotation covering (file, line), if any. An
// annotation covers its own line (trailing comment) and the line
// below it (standalone comment above the statement).
func (idx *allowIndex) suppress(analyzer, file string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		if s, ok := idx.byKey[key(analyzer, file, l)]; ok {
			s.used = true
			return true
		}
	}
	return false
}

// Run executes the analyzers over the loaded packages and returns
// every diagnostic, including the framework's own: malformed
// annotations and unused suppressions (an //fda:allow whose analyzer
// ran but reported nothing on its lines is dead weight that would
// mask a future violation, so it fails the build too). Diagnostics
// come back sorted by position for stable output.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			return nil, fmt.Errorf("lint: cannot analyze %s: %v", pkg.ImportPath, pkg.Err)
		}
		allows := parseAllows(pkg.Fset, pkg.Files, known)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.ImportPath,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Dir:      pkg.Dir,
				allows:   allows,
				sink:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		for _, s := range allows.sites {
			switch {
			case s.bad != "":
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: s.file, Line: s.line},
					Analyzer: "fdavet",
					Message:  s.bad,
				})
			case !s.used:
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: s.file, Line: s.line},
					Analyzer: "fdavet",
					Message: fmt.Sprintf("unused //fda:allow(%s, ...): no %s diagnostic on this or the next line — delete the annotation or restore the exemption it documented",
						s.analyzer, s.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
