package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// WallclockAnalyzer forbids ambient nondeterminism sources — wall
// clock reads and the global math/rand stream — in every internal
// library package. Simulated time lives on the SimFabric virtual
// clock (DESIGN.md §9), randomness on the counter-based tensor.RNG
// (§3); real wall time is legitimate only at the annotated edges
// (runstore manifest timestamps and staging GC, the obs trace epoch,
// comm/tcp socket timing), each carrying //fda:allow(wallclock, ...)
// so the full exemption surface is one grep away. The cmd binaries
// are out of scope: servers and CLIs legitimately live on wall time.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Sleep/etc and global math/rand outside annotated sites",
	Run:  runWallclock,
}

// wallclockForbidden are the time package's ambient-clock entry
// points. Pure duration/const arithmetic (time.Duration, time.Second)
// stays legal — it reads no clock.
var wallclockForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallclock(pass *Pass) error {
	if !InternalPackage(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: deterministic code must draw randomness from tensor.RNG (counter-based, seed-addressed) so streams are replayable and parallelism-independent", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pass.Info == nil {
				return true
			}
			pn, ok := pass.Info.ObjectOf(id).(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if wallclockForbidden[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the ambient clock; deterministic code must use the fabric's virtual clock, or annotate //fda:allow(wallclock, reason) at a legitimate edge", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
