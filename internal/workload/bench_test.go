package workload

import (
	"bytes"
	"testing"
)

// The Workload series prices the load-generation machinery itself, so
// reports can separate client-side cost from server behavior: schedule
// expansion, trace serialization both ways, and the open-loop runner
// at full dispatch speed against a no-op target.

func benchSpec() Spec {
	return Spec{
		Arrival:     Arrival{Process: "poisson", Rate: 2000},
		DurationSec: 1,
		Seed:        7,
		Mix: []MixEntry{
			{Kind: KindTrain, Weight: 1, Train: &TrainTemplate{Model: "lenet5s", Strategy: "LinearFDA", Steps: 10, SeedBase: 1}},
			{Kind: KindStatus, Weight: 3},
			{Kind: KindStore, Weight: 1},
		},
	}
}

func BenchmarkWorkloadSchedule(b *testing.B) {
	spec := benchSpec()
	var n int
	for i := 0; i < b.N; i++ {
		reqs, err := spec.Schedule()
		if err != nil {
			b.Fatal(err)
		}
		n = len(reqs)
	}
	b.ReportMetric(float64(n), "requests")
}

func BenchmarkWorkloadTraceWrite(b *testing.B) {
	reqs, err := benchSpec().Schedule()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteTrace(&buf, TraceHeader{Source: "bench"}, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

func BenchmarkWorkloadTraceRead(b *testing.B) {
	reqs, err := benchSpec().Schedule()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceHeader{Source: "bench"}, reqs); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadTrace(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

type nopTarget struct{}

func (nopTarget) Do(Request) Outcome { return Outcome{Status: 200} }

func BenchmarkWorkloadRun(b *testing.B) {
	reqs, err := benchSpec().Schedule()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := Run(reqs, nopTarget{}, RunOptions{Clock: &fakeClock{}})
		if stats.OK != int64(len(reqs)) {
			b.Fatalf("ok = %d, want %d", stats.OK, len(reqs))
		}
	}
}
