package workload

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	reqs, err := specFixture(21).Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	var buf bytes.Buffer
	hdr := TraceHeader{Source: "test", CreatedUnix: 1754600000}
	if err := WriteTrace(&buf, hdr, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	gotHdr, got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if gotHdr.Format != TraceFormat || gotHdr.Version != TraceVersion || gotHdr.Source != "test" || gotHdr.CreatedUnix != 1754600000 {
		t.Fatalf("header mismatch: %+v", gotHdr)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("round trip changed the schedule: %d in, %d out", len(reqs), len(got))
	}
}

func TestTraceRejectsCorruption(t *testing.T) {
	reqs, err := specFixture(22).Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, TraceHeader{Source: "test"}, reqs[:20]); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	clean := buf.String()
	lines := strings.Split(strings.TrimRight(clean, "\n"), "\n")

	t.Run("flipped payload byte", func(t *testing.T) {
		// Change a digit inside an entry's offset: still valid JSON, but
		// the CRC no longer matches.
		mut := strings.Replace(lines[5], `"offset_ns":`, `"offset_ns":1`, 1)
		if mut == lines[5] {
			t.Fatal("mutation did not apply")
		}
		doc := strings.Join(append(append(append([]string{}, lines[:5]...), mut), lines[6:]...), "\n")
		if _, _, err := ReadTrace(strings.NewReader(doc)); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("corrupted entry accepted (err=%v)", err)
		}
	})

	t.Run("truncated tail", func(t *testing.T) {
		torn := clean[:len(clean)-15] // cut mid final line
		if _, _, err := ReadTrace(strings.NewReader(torn)); err == nil {
			t.Fatal("torn trace accepted")
		}
	})

	t.Run("reordered entries", func(t *testing.T) {
		doc := strings.Join([]string{lines[0], lines[2], lines[1]}, "\n")
		if _, _, err := ReadTrace(strings.NewReader(doc)); err == nil {
			t.Fatal("out-of-order sequence accepted")
		}
	})

	t.Run("wrong format", func(t *testing.T) {
		if _, _, err := ReadTrace(strings.NewReader(`{"format":"not-a-trace","version":1}` + "\n")); err == nil {
			t.Fatal("foreign format accepted")
		}
	})

	t.Run("future version", func(t *testing.T) {
		if _, _, err := ReadTrace(strings.NewReader(`{"format":"fda-trace","version":2}` + "\n")); err == nil {
			t.Fatal("future version accepted")
		}
	})

	t.Run("empty file", func(t *testing.T) {
		if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
			t.Fatal("empty trace accepted")
		}
	})
}

// TestTraceWriterConcurrent pins the admission-order property: many
// goroutines recording at once still produce a valid trace (consecutive
// seqs, monotone offsets) containing exactly the requests issued.
func TestTraceWriterConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	var tick int64
	now := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		tick++
		return tick
	}
	tw, err := NewTraceWriter(&buf, "test", 0, now)
	if err != nil {
		t.Fatalf("NewTraceWriter: %v", err)
	}
	// perWorker is a multiple of len(Kinds()) so each worker issues every
	// kind equally and the expected multiset is exact.
	const workers, perWorker = 16, 66
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				kind := Kinds()[(w+i)%len(Kinds())]
				tw.Record(kind, "/v1/test", nil)
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Err(); err != nil {
		t.Fatalf("trace writer failed: %v", err)
	}
	_, reqs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrently recorded trace fails validation: %v", err)
	}
	if len(reqs) != workers*perWorker {
		t.Fatalf("recorded %d entries, want %d", len(reqs), workers*perWorker)
	}
	// Multiset of kinds matches what the workers issued: each kind was
	// recorded workers*perWorker/len(Kinds()) times by construction.
	counts := map[Kind]int{}
	for _, r := range reqs {
		counts[r.Kind]++
	}
	want := workers * perWorker / len(Kinds())
	for _, k := range Kinds() {
		if counts[k] != want {
			t.Fatalf("kind %s recorded %d times, want %d", k, counts[k], want)
		}
	}
}
