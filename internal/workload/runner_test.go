package workload

import (
	"sync/atomic"
	"testing"
)

// fakeClock advances instantly to whatever deadline the runner waits
// for, so a multi-second schedule executes in microseconds of wall
// time. Workers only read it; the dispatch loop is the sole advancer.
type fakeClock struct{ t atomic.Int64 }

func (c *fakeClock) Now() int64 { return c.t.Load() }
func (c *fakeClock) WaitUntil(ns int64, stop <-chan struct{}) {
	if ns > c.t.Load() {
		c.t.Store(ns)
	}
}

// scriptedTarget answers each kind with a fixed status.
type scriptedTarget struct {
	status  map[Kind]int
	inCalls atomic.Int64
}

func (s *scriptedTarget) Do(req Request) Outcome {
	s.inCalls.Add(1)
	return Outcome{Status: s.status[req.Kind]}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	reqs := []Request{
		{Seq: 0, Offset: 0, Kind: KindTrain},
		{Seq: 1, Offset: 10, Kind: KindTrain},
		{Seq: 2, Offset: 20, Kind: KindStatus},
		{Seq: 3, Offset: 30, Kind: KindStore},
		{Seq: 4, Offset: 40, Kind: KindRecords},
		{Seq: 5, Offset: 50, Kind: KindCancel},
	}
	target := &scriptedTarget{status: map[Kind]int{
		KindTrain:   200, // OK
		KindStatus:  503, // rejected by the admission cap
		KindStore:   500, // genuine error
		KindRecords: 404, // poll race: records before done
		KindCancel:  409, // poll race: cancel after done
	}}
	stats := Run(reqs, target, RunOptions{Clock: &fakeClock{}, DurationNS: 60})
	if stats.Scheduled != 6 || stats.Issued != 6 {
		t.Fatalf("scheduled/issued = %d/%d, want 6/6", stats.Scheduled, stats.Issued)
	}
	if stats.OK != 2 || stats.Rejected != 1 || stats.Errors != 1 || stats.Conflicts != 2 {
		t.Fatalf("ok/rejected/errors/conflicts = %d/%d/%d/%d, want 2/1/1/2",
			stats.OK, stats.Rejected, stats.Errors, stats.Conflicts)
	}
	byKind := map[Kind]KindStats{}
	for _, ks := range stats.Kinds {
		byKind[ks.Kind] = ks
	}
	if ks := byKind[KindTrain]; ks.OK != 2 || ks.Scheduled != 2 {
		t.Fatalf("train stats %+v, want 2 ok of 2 scheduled", ks)
	}
	if ks := byKind[KindStatus]; ks.Rejected != 1 {
		t.Fatalf("status stats %+v, want 1 rejected", ks)
	}
	if target.inCalls.Load() != 6 {
		t.Fatalf("target saw %d calls, want 6", target.inCalls.Load())
	}
}

// blockingTarget holds every request until release closes, forcing the
// in-flight bound to bind.
type blockingTarget struct {
	release chan struct{}
	peak    atomic.Int64
	cur     atomic.Int64
}

func (b *blockingTarget) Do(req Request) Outcome {
	n := b.cur.Add(1)
	for {
		p := b.peak.Load()
		if n <= p || b.peak.CompareAndSwap(p, n) {
			break
		}
	}
	<-b.release
	b.cur.Add(-1)
	return Outcome{Status: 200}
}

func TestRunBoundsInFlight(t *testing.T) {
	const n, bound = 64, 8
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Seq: int64(i), Offset: int64(i), Kind: KindStore}
	}
	target := &blockingTarget{release: make(chan struct{})}
	done := make(chan RunStats, 1)
	go func() {
		done <- Run(reqs, target, RunOptions{Clock: &fakeClock{}, MaxInFlight: bound})
	}()
	// The runner must stall at the bound; releasing lets it finish.
	for target.cur.Load() < bound {
	}
	close(target.release)
	stats := <-done
	if target.peak.Load() > bound {
		t.Fatalf("observed %d concurrent requests, bound is %d", target.peak.Load(), bound)
	}
	if stats.MaxInFlight > bound {
		t.Fatalf("reported max in-flight %d exceeds bound %d", stats.MaxInFlight, bound)
	}
	if stats.OK != n {
		t.Fatalf("ok = %d, want %d", stats.OK, n)
	}
	if stats.Delayed == 0 {
		t.Fatal("expected dispatch stalls to be counted in Delayed")
	}
}

func TestRunStopAbortsEarly(t *testing.T) {
	reqs := make([]Request, 100)
	for i := range reqs {
		reqs[i] = Request{Seq: int64(i), Offset: int64(i), Kind: KindStore}
	}
	stop := make(chan struct{})
	close(stop)
	stats := Run(reqs, &scriptedTarget{status: map[Kind]int{KindStore: 200}},
		RunOptions{Clock: &fakeClock{}, Stop: stop})
	if stats.Issued != 0 {
		t.Fatalf("issued %d requests after stop, want 0", stats.Issued)
	}
}
