package workload

import (
	"bytes"
	"encoding/json"
	"testing"
)

func specFixture(seed uint64) Spec {
	return Spec{
		Arrival:     Arrival{Process: "poisson", Rate: 100},
		DurationSec: 10,
		Seed:        seed,
		Mix: []MixEntry{
			{Kind: KindTrain, Weight: 1, Train: &TrainTemplate{Model: "lenet5s", Strategy: "LinearFDA", Steps: 10, SeedBase: 100}},
			{Kind: KindStatus, Weight: 3},
			{Kind: KindStore, Weight: 1},
		},
	}
}

// TestScheduleParity pins the determinism contract: the same spec and
// seed produce a byte-identical trace serialization on every call, and
// a different seed produces a different one.
func TestScheduleParity(t *testing.T) {
	hdr := TraceHeader{Source: "test"}
	render := func(seed uint64) []byte {
		reqs, err := specFixture(seed).Schedule()
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, hdr, reqs); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(42), render(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same spec+seed produced different trace bytes")
	}
	if c := render(43); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical trace bytes")
	}
}

// TestScheduleMixProportions checks that kind counts follow the mix
// weights (train:status:store = 1:3:1 here).
func TestScheduleMixProportions(t *testing.T) {
	spec := specFixture(7)
	spec.Arrival.Rate = 500
	reqs, err := spec.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	counts := map[Kind]float64{}
	for _, r := range reqs {
		counts[r.Kind]++
	}
	n := float64(len(reqs))
	for kind, wantFrac := range map[Kind]float64{KindTrain: 0.2, KindStatus: 0.6, KindStore: 0.2} {
		frac := counts[kind] / n
		if frac < wantFrac-0.05 || frac > wantFrac+0.05 {
			t.Errorf("kind %s: fraction %.3f of %d requests, want %.2f +/- 0.05", kind, frac, len(reqs), wantFrac)
		}
	}
}

// TestScheduleSeedVariation checks the cohort seeding: by default each
// train submission carries a distinct seed (so the server's dedupe
// never collapses the load), and DedupeSeeds pins them all.
func TestScheduleSeedVariation(t *testing.T) {
	spec := specFixture(9)
	reqs, err := spec.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	seen := map[uint64]bool{}
	trains := 0
	for _, r := range reqs {
		if r.Kind != KindTrain {
			continue
		}
		trains++
		var body struct {
			Seed uint64 `json:"seed"`
		}
		if err := json.Unmarshal(r.Body, &body); err != nil {
			t.Fatalf("train body: %v", err)
		}
		if seen[body.Seed] {
			t.Fatalf("duplicate train seed %d without DedupeSeeds", body.Seed)
		}
		seen[body.Seed] = true
	}
	if trains < 10 {
		t.Fatalf("only %d train requests generated; fixture too small", trains)
	}

	spec.Mix[0].Train.DedupeSeeds = true
	reqs, err = spec.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for _, r := range reqs {
		if r.Kind != KindTrain {
			continue
		}
		var body struct {
			Seed uint64 `json:"seed"`
		}
		if err := json.Unmarshal(r.Body, &body); err != nil {
			t.Fatalf("train body: %v", err)
		}
		if body.Seed != spec.Mix[0].Train.SeedBase {
			t.Fatalf("DedupeSeeds train seed %d, want pinned %d", body.Seed, spec.Mix[0].Train.SeedBase)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := specFixture(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("fixture spec rejected: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.DurationSec = 0 },
		func(s *Spec) { s.Mix = nil },
		func(s *Spec) { s.Mix[0].Kind = "bogus" },
		func(s *Spec) { s.Mix[0].Weight = -1 },
		func(s *Spec) { s.Mix[0].Train = nil },
		func(s *Spec) {
			for i := range s.Mix {
				s.Mix[i].Weight = 0
			}
		},
		func(s *Spec) { s.Arrival.Rate = 0 },
	}
	for i, mutate := range cases {
		s := specFixture(1)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid spec", i)
		}
	}
}
