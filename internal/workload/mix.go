package workload

import (
	"encoding/json"
	"fmt"

	"repro/internal/tensor"
)

// MixEntry weights one request kind in the job mix. Submission kinds
// (train, sweep) carry a payload template; poll kinds (status,
// records, store, cancel) need none — their targets are resolved by
// the driver at execution time against the jobs it has submitted.
type MixEntry struct {
	Kind   Kind           `json:"kind"`
	Weight float64        `json:"weight"`
	Train  *TrainTemplate `json:"train,omitempty"`
	Sweep  *SweepTemplate `json:"sweep,omitempty"`
}

// TrainTemplate shapes the POST /v1/train payloads of a train cohort.
// The zero values of the optional fields defer to the server's
// documented defaults, exactly like a hand-written request would.
type TrainTemplate struct {
	Model     string  `json:"model"`
	Strategy  string  `json:"strategy"`
	Theta     float64 `json:"theta,omitempty"`
	Tau       int     `json:"tau,omitempty"`
	K         int     `json:"k,omitempty"`
	Batch     int     `json:"batch,omitempty"`
	Steps     int     `json:"steps,omitempty"`
	EvalEvery int     `json:"eval_every,omitempty"`
	Het       string  `json:"het,omitempty"`
	// Distributed submits multi-process jobs: the server coordinates K
	// fabric workers per job instead of training in-process. Each job
	// then idles until workers join, which also makes this the lever for
	// holding very large numbers of jobs concurrently open.
	Distributed bool `json:"distributed,omitempty"`
	// SeedBase seeds the cohort: the i-th train request generated from
	// this template carries seed SeedBase+i, so every submission is a
	// distinct spec (distinct content address, no server-side dedupe)
	// and the load is real work, not one job polled a thousand times.
	// Set DedupeSeeds to pin every request to SeedBase instead and
	// exercise the dedupe path on purpose.
	SeedBase    uint64 `json:"seed_base,omitempty"`
	DedupeSeeds bool   `json:"dedupe_seeds,omitempty"`
}

// SweepTemplate shapes the POST /v1/runs payloads of a sweep cohort.
type SweepTemplate struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	// SeedBase varies the sweep seed per generated request, mirroring
	// TrainTemplate.SeedBase.
	SeedBase    uint64 `json:"seed_base,omitempty"`
	DedupeSeeds bool   `json:"dedupe_seeds,omitempty"`
}

// trainBody mirrors fdaserve's POST /v1/train request shape. Struct
// marshaling has a fixed field order, so generated payload bytes are
// deterministic.
type trainBody struct {
	Model       string  `json:"model"`
	Strategy    string  `json:"strategy"`
	Theta       float64 `json:"theta,omitempty"`
	Tau         int     `json:"tau,omitempty"`
	K           int     `json:"k,omitempty"`
	Batch       int     `json:"batch,omitempty"`
	Steps       int     `json:"steps,omitempty"`
	EvalEvery   int     `json:"eval_every,omitempty"`
	Het         string  `json:"het,omitempty"`
	Seed        uint64  `json:"seed"`
	Distributed bool    `json:"distributed,omitempty"`
}

// sweepBody mirrors fdaserve's POST /v1/runs request shape.
type sweepBody struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Seed       uint64 `json:"seed"`
}

// mixer draws kinds in proportion to the entry weights and stamps
// each submission kind's payload from its template.
type mixer struct {
	entries []MixEntry
	cum     []float64 // cumulative weights for inversion sampling
	total   float64
	issued  []uint64 // per-entry submission counter (seed variation)
}

func newMixer(entries []MixEntry) *mixer {
	m := &mixer{entries: entries, issued: make([]uint64, len(entries))}
	for _, e := range entries {
		m.total += e.Weight
		m.cum = append(m.cum, m.total)
	}
	return m
}

// next draws the next request's kind and body.
func (m *mixer) next(rng *tensor.RNG) (Kind, json.RawMessage, error) {
	r := rng.Float64() * m.total
	i := 0
	for i < len(m.cum)-1 && r >= m.cum[i] {
		i++
	}
	e := m.entries[i]
	switch e.Kind {
	case KindTrain:
		seed := e.Train.SeedBase
		if !e.Train.DedupeSeeds {
			seed += m.issued[i]
		}
		if seed == 0 {
			seed = 1 // the server treats seed 0 as "default"; keep specs addressable
		}
		m.issued[i]++
		b, err := json.Marshal(trainBody{
			Model: e.Train.Model, Strategy: e.Train.Strategy, Theta: e.Train.Theta,
			Tau: e.Train.Tau, K: e.Train.K, Batch: e.Train.Batch, Steps: e.Train.Steps,
			EvalEvery: e.Train.EvalEvery, Het: e.Train.Het, Seed: seed,
			Distributed: e.Train.Distributed,
		})
		if err != nil {
			return "", nil, fmt.Errorf("workload: marshaling train body: %w", err)
		}
		return KindTrain, b, nil
	case KindSweep:
		seed := e.Sweep.SeedBase
		if !e.Sweep.DedupeSeeds {
			seed += m.issued[i]
		}
		if seed == 0 {
			seed = 1
		}
		m.issued[i]++
		b, err := json.Marshal(sweepBody{Experiment: e.Sweep.Experiment, Scale: e.Sweep.Scale, Seed: seed})
		if err != nil {
			return "", nil, fmt.Errorf("workload: marshaling sweep body: %w", err)
		}
		return KindSweep, b, nil
	default:
		return e.Kind, nil, nil
	}
}

// Schedule expands the spec into its deterministic request schedule:
// arrival offsets from one split of the seed stream, mix draws from
// another, sequence numbers in arrival order. The same Spec yields
// byte-identical requests on every call.
func (s Spec) Schedule() ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	base := tensor.NewRNG(s.Seed)
	arrivalRNG, mixRNG := base.Split(), base.Split()
	times := s.Arrival.Times(arrivalRNG, int64(s.DurationSec*1e9))
	mix := newMixer(s.Mix)
	reqs := make([]Request, 0, len(times))
	for i, t := range times {
		kind, body, err := mix.next(mixRNG)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, Request{Seq: int64(i), Offset: t, Kind: kind, Body: body})
	}
	return reqs, nil
}
