package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Trace format v1 (DESIGN.md §13): a JSONL file whose first line is a
// schema header and whose remaining lines are one Request each, in
// admission order, with a CRC-32C trailer field:
//
//	{"format":"fda-trace","version":1,"source":"fdaserve","created_unix":1754600000}
//	{"seq":0,"offset_ns":12345,"kind":"train","body":{...},"crc":"9c2f1ab4"}
//
// The CRC covers the canonical marshaling of the entry without the crc
// field, sequence numbers are consecutive from 0, and offsets are
// non-decreasing — ReadTrace rejects violations of any of the three,
// plus torn (truncated mid-line) tails, so a replayed trace is either
// exactly what was recorded or an error, never a silent prefix.

// TraceFormat and TraceVersion identify trace containers this package
// can read and write.
const (
	TraceFormat  = "fda-trace"
	TraceVersion = 1
)

var traceCRCTable = crc32.MakeTable(crc32.Castagnoli)

// TraceHeader is the first line of a trace file.
type TraceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Source labels the producer ("fdaserve" for recorded traces,
	// "fdaload" for exported schedules).
	Source string `json:"source,omitempty"`
	// CreatedUnix is the producer's wall-clock creation time. It is
	// descriptive metadata only — nothing replays from it.
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// traceLine is one entry line: the request plus its CRC trailer.
type traceLine struct {
	Request
	CRC string `json:"crc"`
}

// requestCRC computes the entry checksum: CRC-32C over the canonical
// JSON of the request itself (the line minus its crc field).
func requestCRC(r Request) (string, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.Checksum(b, traceCRCTable)), nil
}

// WriteTrace writes a complete trace: header, then one line per
// request with seq rewritten to the line index. Byte-identical input
// schedules produce byte-identical trace files.
func WriteTrace(w io.Writer, hdr TraceHeader, reqs []Request) error {
	hdr.Format, hdr.Version = TraceFormat, TraceVersion
	bw := bufio.NewWriter(w)
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	bw.Write(hb)
	bw.WriteByte('\n')
	for i, r := range reqs {
		r.Seq = int64(i)
		if err := writeTraceLine(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeTraceLine(w io.Writer, r Request) error {
	crc, err := requestCRC(r)
	if err != nil {
		return err
	}
	lb, err := json.Marshal(traceLine{Request: r, CRC: crc})
	if err != nil {
		return err
	}
	_, err = w.Write(append(lb, '\n'))
	return err
}

// ReadTrace parses and verifies a v1 trace: header first, then every
// entry's CRC, consecutive sequence numbers, non-decreasing offsets
// and known kinds. Any violation — including a torn final line from a
// crashed recorder — is an error identifying the offending line.
func ReadTrace(r io.Reader) (TraceHeader, []Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return TraceHeader{}, nil, err
		}
		return TraceHeader{}, nil, fmt.Errorf("workload: empty trace (missing header)")
	}
	var hdr TraceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if hdr.Format != TraceFormat {
		return TraceHeader{}, nil, fmt.Errorf("workload: not a trace file (format %q, want %q)", hdr.Format, TraceFormat)
	}
	if hdr.Version != TraceVersion {
		return TraceHeader{}, nil, fmt.Errorf("workload: unsupported trace version %d (this build reads v%d)", hdr.Version, TraceVersion)
	}
	var reqs []Request
	var lastOffset int64
	for line := 1; sc.Scan(); line++ {
		var tl traceLine
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			return hdr, nil, fmt.Errorf("workload: trace line %d: corrupt or truncated entry: %w", line, err)
		}
		crc, err := requestCRC(tl.Request)
		if err != nil {
			return hdr, nil, err
		}
		if crc != tl.CRC {
			return hdr, nil, fmt.Errorf("workload: trace line %d: CRC mismatch (have %s, computed %s)", line, tl.CRC, crc)
		}
		if tl.Seq != int64(line-1) {
			return hdr, nil, fmt.Errorf("workload: trace line %d: sequence %d out of order (want %d)", line, tl.Seq, line-1)
		}
		if tl.Offset < lastOffset {
			return hdr, nil, fmt.Errorf("workload: trace line %d: offset %dns before predecessor %dns", line, tl.Offset, lastOffset)
		}
		if !ValidKind(tl.Kind) {
			return hdr, nil, fmt.Errorf("workload: trace line %d: unknown request kind %q", line, tl.Kind)
		}
		lastOffset = tl.Offset
		reqs = append(reqs, tl.Request)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	return hdr, reqs, nil
}

// TraceWriter journals requests as they are admitted by a live server
// (fdaserve -record). Sequence numbers, offsets and line writes all
// happen under one mutex, so entries land in admission order and
// offsets are monotone even under full handler concurrency — the
// property the concurrent-recording regression test pins. The clock is
// injected (nanoseconds since the recorder's epoch); the writer itself
// never reads wall time.
type TraceWriter struct {
	mu   sync.Mutex
	w    io.Writer
	now  func() int64
	seq  int64
	last int64
	err  error // first write error; recording disables itself, never the server
}

// NewTraceWriter writes the trace header and returns a recorder.
func NewTraceWriter(w io.Writer, source string, createdUnix int64, now func() int64) (*TraceWriter, error) {
	hb, err := json.Marshal(TraceHeader{Format: TraceFormat, Version: TraceVersion, Source: source, CreatedUnix: createdUnix})
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(append(hb, '\n')); err != nil {
		return nil, err
	}
	return &TraceWriter{w: w, now: now}, nil
}

// Record journals one admitted request. The sequence number and offset
// are assigned under the writer lock — the admission order is the
// journal order by construction. Returns the assigned sequence number.
func (tw *TraceWriter) Record(kind Kind, path string, body json.RawMessage) int64 {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return -1
	}
	off := tw.now()
	if off < tw.last {
		off = tw.last
	}
	tw.last = off
	seq := tw.seq
	tw.seq++
	if err := writeTraceLine(tw.w, Request{Seq: seq, Offset: off, Kind: kind, Path: path, Body: body}); err != nil {
		tw.err = err
		return -1
	}
	return seq
}

// Err reports the first write error, if recording has failed.
func (tw *TraceWriter) Err() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}
