// Package workload is the declarative, deterministic traffic engine
// behind the fdaload driver (DESIGN.md §13): arrival processes
// (Poisson, bursty on/off, diurnal multi-period composition) drawn
// from the seeded counter-based tensor.RNG, job-mix cohorts that
// weight request kinds over fdaserve's real API surface, and a
// versioned CRC-checked JSONL trace format that can be recorded from
// a live server and replayed bit-identically.
//
// Everything up to the moment a request leaves the client is a pure
// function of (Spec, seed): a workload spec with a fixed seed yields a
// byte-identical request schedule across runs and platforms (pinned by
// the schedule-parity tests), so two load runs against two server
// builds exercise exactly the same traffic and every difference in the
// report is attributable to the server. Real time enters only through
// the injected Clock at execution/recording time — the package itself
// never reads the wall clock (it is in scope for fdavet's wallclock
// analyzer, and for detmap/floatsum via the deterministic-package
// list).
package workload

import (
	"encoding/json"
	"fmt"
)

// Kind identifies one request class over fdaserve's API surface.
type Kind string

const (
	// KindTrain submits a single training session (POST /v1/train).
	KindTrain Kind = "train"
	// KindSweep submits a figure sweep (POST /v1/runs).
	KindSweep Kind = "sweep"
	// KindStatus polls one job's status (GET /v1/runs/{id}), or the run
	// listing when no job is known yet.
	KindStatus Kind = "status"
	// KindRecords fetches a finished job's records
	// (GET /v1/runs/{id}/records).
	KindRecords Kind = "records"
	// KindStore browses the cached-run catalog (GET /v1/store) — the
	// pure cached-read path.
	KindStore Kind = "store"
	// KindCancel cancels a job (DELETE /v1/runs/{id}).
	KindCancel Kind = "cancel"
)

// Kinds lists every request kind in stable (report) order.
func Kinds() []Kind {
	return []Kind{KindTrain, KindSweep, KindStatus, KindRecords, KindStore, KindCancel}
}

// ValidKind reports whether k names a known request kind.
func ValidKind(k Kind) bool {
	for _, v := range Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

// Request is one scheduled (or recorded) request. Offset is
// nanoseconds since the start of the schedule and is non-decreasing
// across a schedule or trace; Seq is the admission sequence number.
// Path is set on recorded traces (the exact URL path the original
// client hit); generated schedules leave it empty and the driver
// resolves the target at execution time (e.g. which job id to poll).
type Request struct {
	Seq    int64           `json:"seq"`
	Offset int64           `json:"offset_ns"`
	Kind   Kind            `json:"kind"`
	Path   string          `json:"path,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// Spec is a declarative workload: an arrival process shaping when
// requests fire, a job mix deciding what each one is, a duration and
// a seed. The same Spec+Seed yields a bit-identical schedule.
type Spec struct {
	Arrival Arrival    `json:"arrival"`
	Mix     []MixEntry `json:"mix"`
	// DurationSec bounds the schedule: every offset lies in
	// [0, DurationSec).
	DurationSec float64 `json:"duration_sec"`
	// Seed addresses the schedule's random streams (arrival times and
	// mix draws are decorrelated splits of it).
	Seed uint64 `json:"seed"`
}

// Validate checks the spec's static shape.
func (s Spec) Validate() error {
	if err := s.Arrival.validate(); err != nil {
		return err
	}
	if s.DurationSec <= 0 {
		return fmt.Errorf("workload: duration_sec must be positive, got %g", s.DurationSec)
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("workload: mix must name at least one request kind")
	}
	total := 0.0
	for i, e := range s.Mix {
		if !ValidKind(e.Kind) {
			return fmt.Errorf("workload: mix[%d]: unknown kind %q", i, e.Kind)
		}
		if e.Weight < 0 {
			return fmt.Errorf("workload: mix[%d] (%s): weight must be non-negative, got %g", i, e.Kind, e.Weight)
		}
		total += e.Weight
		if e.Kind == KindTrain && e.Train == nil {
			return fmt.Errorf("workload: mix[%d]: kind train requires a train template", i)
		}
		if e.Kind == KindSweep && e.Sweep == nil {
			return fmt.Errorf("workload: mix[%d]: kind sweep requires a sweep template", i)
		}
	}
	if total <= 0 {
		return fmt.Errorf("workload: mix weights sum to %g; at least one must be positive", total)
	}
	return nil
}
