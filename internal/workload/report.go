package workload

import (
	"runtime"
	"runtime/debug"
)

// The report emitted by fdaload is a superset of the benchjson report
// shape (cmd/benchjson): the goos/goarch/env/benchmarks keys match
// field for field, so existing tooling that reads BENCH_*.json series
// consumes a load report unchanged, and the load-specific sections
// (spec, load, ramp) ride alongside.

// Benchmark mirrors benchjson's per-result JSON object.
type Benchmark struct {
	Op          string             `json:"op"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Env mirrors benchjson's environment block.
type Env struct {
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// RampLevel is one rung of a ramp run: a fixed offered rate and the
// stats the server sustained under it.
type RampLevel struct {
	OfferedRPS float64 `json:"offered_rps"`
	// RejectionRate is the level's shed-load fraction
	// (rejected/issued) — 503s are graceful degradation, tracked apart
	// from errors so capacity gates can bound them separately.
	RejectionRate float64  `json:"rejection_rate"`
	Stats         RunStats `json:"stats"`
}

// NewRampLevel builds one ramp rung, deriving the rejection rate.
func NewRampLevel(offered float64, stats RunStats) RampLevel {
	l := RampLevel{OfferedRPS: offered, Stats: stats}
	if stats.Issued > 0 {
		l.RejectionRate = float64(stats.Rejected) / float64(stats.Issued)
	}
	return l
}

// Report is fdaload's JSON output document.
type Report struct {
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	Env    Env    `json:"env"`
	// Spec echoes the generated workload (nil for trace replays).
	Spec *Spec `json:"spec,omitempty"`
	// Trace names the replayed trace source, when replaying.
	Trace string `json:"trace,omitempty"`
	// Load is the run's aggregate statistics (the last level's, in
	// ramp mode).
	Load RunStats `json:"load"`
	// Ramp holds the per-level series of a ramp run, and
	// SaturationRPS the located knee: the highest offered rate the
	// server sustained (see Knee).
	Ramp          []RampLevel `json:"ramp,omitempty"`
	SaturationRPS float64     `json:"saturation_rps,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// EnvMeta samples the running process's environment, matching
// benchjson's env block (also used by cluster.BuildCapacityReport).
func EnvMeta() Env {
	e := Env{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				e.VCSRevision = s.Value
			case "vcs.modified":
				e.VCSModified = s.Value == "true"
			}
		}
	}
	return e
}

// BuildReport assembles the output document: env metadata, the raw
// stats, and one benchjson-shaped benchmark entry per request kind
// (ns_per_op = mean latency; p50/p95/p99/rps/errors as custom
// metrics) plus a Load/total rollup.
func BuildReport(spec *Spec, stats RunStats, ramp []RampLevel) Report {
	rep := Report{
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		Env:  EnvMeta(),
		Spec: spec,
		Load: stats,
		Ramp: ramp,
	}
	for _, ks := range stats.Kinds {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Op:         "Load/" + string(ks.Kind),
			Iterations: ks.Issued,
			NsPerOp:    ks.MeanMs * 1e6,
			Metrics: map[string]float64{
				"p50_ms":   ks.P50Ms,
				"p95_ms":   ks.P95Ms,
				"p99_ms":   ks.P99Ms,
				"ok":       float64(ks.OK),
				"rejected": float64(ks.Rejected),
				"errors":   float64(ks.Errors),
			},
		})
	}
	total := Benchmark{
		Op:         "Load/total",
		Iterations: stats.Issued,
		Metrics: map[string]float64{
			"offered_rps":   stats.OfferedRPS,
			"achieved_rps":  stats.AchievedRPS,
			"max_in_flight": float64(stats.MaxInFlight),
			"rejected":      float64(stats.Rejected),
			"errors":        float64(stats.Errors),
		},
	}
	if stats.Issued > 0 {
		total.NsPerOp = stats.DurationSec * 1e9 / float64(stats.Issued)
	}
	rep.Benchmarks = append(rep.Benchmarks, total)
	if len(ramp) > 0 {
		if k := Knee(ramp); k >= 0 {
			rep.SaturationRPS = ramp[k].OfferedRPS
		}
	}
	return rep
}

// Knee locates the saturation knee of a ramp series: the last level
// that still sustains its offered rate — achieved throughput within
// 90% of offered and zero unexpected errors — before the first level
// that does not. Returns -1 when even the first level buckles.
func Knee(levels []RampLevel) int {
	knee := -1
	for i, l := range levels {
		if !sustains(l) {
			return knee
		}
		knee = i
	}
	return knee
}

func sustains(l RampLevel) bool {
	return l.Stats.Errors == 0 && l.Stats.AchievedRPS >= 0.9*l.OfferedRPS
}
