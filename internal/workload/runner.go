package workload

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Clock abstracts the runner's time source so the package stays off
// the ambient wall clock (fdavet wallclock scope): cmd/fdaload injects
// a real monotonic clock, tests inject a virtual one that fires the
// whole schedule instantly. All values are nanoseconds since the
// clock's epoch.
type Clock interface {
	Now() int64
	// WaitUntil blocks until Now() >= ns or stop closes. A nil stop
	// never fires.
	WaitUntil(ns int64, stop <-chan struct{})
}

// Outcome is one request's result as observed by the client.
type Outcome struct {
	// Status is the HTTP status code, 0 on a transport error.
	Status int
	Err    error
}

// Target executes one request against the system under load. The
// driver's HTTP client implements it; tests substitute fakes.
type Target interface {
	Do(req Request) Outcome
}

// RunOptions shapes one open-loop execution of a schedule.
type RunOptions struct {
	Clock Clock
	// MaxInFlight bounds concurrent outstanding requests (default
	// 4096). The runner stays open-loop — request start times follow
	// the schedule, not the responses — but dispatch blocks when the
	// bound is reached, and every such stall is counted in
	// RunStats.Delayed so saturation is visible rather than silent.
	MaxInFlight int
	// Stop aborts the run early (remaining requests stay unissued).
	Stop <-chan struct{}
	// DurationNS is the schedule's nominal span, used for the offered
	// rate; zero falls back to the last request offset.
	DurationNS int64
}

// KindStats is one request kind's slice of a run report. Latency
// quantiles come from the obs power-of-two-bucket histograms, so each
// is an upper bound at most 2× the true quantile (DESIGN.md §11);
// MeanMs is exact.
type KindStats struct {
	Kind      Kind  `json:"kind"`
	Scheduled int64 `json:"scheduled"`
	Issued    int64 `json:"issued"`
	OK        int64 `json:"ok"`
	// Rejected counts 503 admission-cap responses — shed load, tallied
	// apart from errors because rejection is the server working as
	// configured.
	Rejected int64 `json:"rejected,omitempty"`
	// Conflicts counts 404/409 responses: an open-loop poll racing a
	// job's lifecycle (records before done, cancel after done), an
	// expected background rate, not a failure.
	Conflicts int64 `json:"conflicts,omitempty"`
	// Errors counts everything unexpected: transport failures, 5xx
	// other than 503, and 4xx other than 404/409.
	Errors int64   `json:"errors,omitempty"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// RunStats summarizes one open-loop run.
type RunStats struct {
	DurationSec float64 `json:"duration_sec"`
	OfferedRPS  float64 `json:"offered_rps"`
	// AchievedRPS is completed-OK requests per elapsed second — the
	// throughput the saturation analysis compares against OfferedRPS.
	AchievedRPS float64     `json:"achieved_rps"`
	Scheduled   int64       `json:"scheduled"`
	Issued      int64       `json:"issued"`
	OK          int64       `json:"ok"`
	Rejected    int64       `json:"rejected,omitempty"`
	Conflicts   int64       `json:"conflicts,omitempty"`
	Errors      int64       `json:"errors,omitempty"`
	Delayed     int64       `json:"delayed,omitempty"`
	MaxInFlight int64       `json:"max_in_flight"`
	Kinds       []KindStats `json:"kinds"`
}

// kindIndex maps a kind to its fixed position in Kinds() order (-1 if
// unknown), so collectors live in a slice and reports iterate in
// stable order.
func kindIndex(k Kind) int {
	for i, v := range Kinds() {
		if v == k {
			return i
		}
	}
	return -1
}

// kindCollector accumulates one kind's outcomes during a run.
type kindCollector struct {
	scheduled atomic.Int64
	issued    atomic.Int64
	ok        atomic.Int64
	rejected  atomic.Int64
	conflicts atomic.Int64
	errors    atomic.Int64
	lat       *obs.Histogram
}

// Run executes the schedule open-loop against target: each request is
// dispatched at its offset on the injected clock (never gated on a
// prior response), concurrency is bounded by MaxInFlight, and
// client-side latency lands in per-kind obs histograms. Telemetry is
// enabled for the process — the histograms are useless otherwise, and
// training results are telemetry-independent by the PR 7 parity
// contract.
func Run(reqs []Request, target Target, opt RunOptions) RunStats {
	obs.Enable()
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = 4096
	}
	clk := opt.Clock
	reg := obs.NewRegistry()
	collectors := make([]*kindCollector, len(Kinds()))
	for i, k := range Kinds() {
		collectors[i] = &kindCollector{
			lat: reg.Histogram("fdaload_request_seconds",
				"Client-observed request latency by request kind.", obs.Seconds, "kind", string(k)),
		}
	}
	var (
		wg       sync.WaitGroup
		inflight atomic.Int64
		hiwater  atomic.Int64
		delayed  atomic.Int64
	)
	sem := make(chan struct{}, opt.MaxInFlight)
	start := clk.Now()
	var issuedTotal int64
	for i := range reqs {
		req := reqs[i]
		ki := kindIndex(req.Kind)
		if ki < 0 {
			continue
		}
		c := collectors[ki]
		c.scheduled.Add(1)
		clk.WaitUntil(start+req.Offset, opt.Stop)
		if stopped(opt.Stop) {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			// The in-flight bound is binding: record the stall, then
			// block for a slot (or the stop signal).
			delayed.Add(1)
			select {
			case sem <- struct{}{}:
			case <-opt.Stop:
			}
		}
		if stopped(opt.Stop) {
			break
		}
		issuedTotal++
		c.issued.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			n := inflight.Add(1)
			for {
				hw := hiwater.Load()
				if n <= hw || hiwater.CompareAndSwap(hw, n) {
					break
				}
			}
			t0 := clk.Now()
			out := target.Do(req)
			c.lat.Observe(clk.Now() - t0)
			inflight.Add(-1)
			switch {
			case out.Err == nil && out.Status >= 200 && out.Status < 300:
				c.ok.Add(1)
			case out.Status == 503:
				c.rejected.Add(1)
			case out.Status == 404 || out.Status == 409:
				c.conflicts.Add(1)
			default:
				c.errors.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := clk.Now() - start

	stats := RunStats{
		DurationSec: float64(elapsed) / 1e9,
		Issued:      issuedTotal,
		Delayed:     delayed.Load(),
		MaxInFlight: hiwater.Load(),
	}
	span := opt.DurationNS
	if span == 0 && len(reqs) > 0 {
		span = reqs[len(reqs)-1].Offset
	}
	for i, k := range Kinds() {
		c := collectors[i]
		if c.scheduled.Load() == 0 {
			continue
		}
		ks := KindStats{
			Kind:      k,
			Scheduled: c.scheduled.Load(),
			Issued:    c.issued.Load(),
			OK:        c.ok.Load(),
			Rejected:  c.rejected.Load(),
			Conflicts: c.conflicts.Load(),
			Errors:    c.errors.Load(),
			P50Ms:     c.lat.Quantile(0.50) * 1e3,
			P95Ms:     c.lat.Quantile(0.95) * 1e3,
			P99Ms:     c.lat.Quantile(0.99) * 1e3,
		}
		if n := c.lat.Count(); n > 0 {
			ks.MeanMs = c.lat.Sum() / float64(n) * 1e3
		}
		stats.Scheduled += ks.Scheduled
		stats.OK += ks.OK
		stats.Rejected += ks.Rejected
		stats.Conflicts += ks.Conflicts
		stats.Errors += ks.Errors
		stats.Kinds = append(stats.Kinds, ks)
	}
	if span > 0 {
		stats.OfferedRPS = float64(stats.Scheduled) / (float64(span) / 1e9)
	}
	if elapsed > 0 {
		stats.AchievedRPS = float64(stats.OK) / (float64(elapsed) / 1e9)
	}
	return stats
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
