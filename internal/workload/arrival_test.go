package workload

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// Arrival-process statistics are exact functions of the seed, so the
// tests can assert tight tolerances without flake: a "statistical"
// bound here is really a regression pin on the generator.

func TestPoissonMeanRate(t *testing.T) {
	a := Arrival{Process: "poisson", Rate: 200}
	const durSec = 60.0
	times := a.Times(tensor.NewRNG(7), int64(durSec*1e9))
	want := a.Rate * durSec
	got := float64(len(times))
	// 5 sigma of a Poisson count: deterministic seed, so this either
	// passes forever or the generator changed.
	if sigma := math.Sqrt(want); math.Abs(got-want) > 5*sigma {
		t.Fatalf("poisson count %v, want %v +/- %v", got, want, 5*sigma)
	}
	checkMonotone(t, times, int64(durSec*1e9))
}

func TestBurstyDutyCycle(t *testing.T) {
	a := Arrival{Process: "bursty", Rate: 400, OnSec: 1, OffSec: 3}
	const durSec = 40.0
	durNS := int64(durSec * 1e9)
	times := a.Times(tensor.NewRNG(11), durNS)
	checkMonotone(t, times, durNS)
	// Every arrival must land strictly inside an on-window.
	onNS := int64(a.OnSec * 1e9)
	cycleNS := onNS + int64(a.OffSec*1e9)
	for i, ts := range times {
		if ts%cycleNS >= onNS {
			t.Fatalf("arrival %d at %dns falls in an off-window (phase %dns, on=%dns)", i, ts, ts%cycleNS, onNS)
		}
	}
	// The count reflects the duty cycle: Rate applies only during the
	// active quarter of each cycle.
	want := a.Rate * durSec * (a.OnSec / (a.OnSec + a.OffSec))
	got := float64(len(times))
	if sigma := math.Sqrt(want); math.Abs(got-want) > 5*sigma {
		t.Fatalf("bursty count %v, want %v +/- %v", got, want, 5*sigma)
	}
}

func TestDiurnalPeriodAlignment(t *testing.T) {
	// Four phase windows per 4s period: silent, low, silent, high.
	a := Arrival{Process: "diurnal", Rate: 300, PeriodSec: 4, Weights: []float64{0, 1, 0, 2}}
	const durSec = 60.0
	durNS := int64(durSec * 1e9)
	times := a.Times(tensor.NewRNG(13), durNS)
	checkMonotone(t, times, durNS)
	winNS := int64(a.PeriodSec * 1e9 / float64(len(a.Weights)))
	periodNS := int64(a.PeriodSec * 1e9)
	counts := make([]float64, len(a.Weights))
	for i, ts := range times {
		win := int((ts % periodNS) / winNS)
		if a.Weights[win] == 0 {
			t.Fatalf("arrival %d at %dns lands in zero-weight window %d", i, ts, win)
		}
		counts[win]++
	}
	// Window 3 carries twice window 1's weight, so twice its arrivals.
	ratio := counts[3] / counts[1]
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("window count ratio %v (counts %v), want ~2.0", ratio, counts)
	}
	total := counts[0] + counts[1] + counts[2] + counts[3]
	// Mean effective rate is Rate * mean(weights) = 300 * 0.75.
	want := a.Rate * durSec * 3 / 4
	if sigma := math.Sqrt(want); math.Abs(total-want) > 5*sigma {
		t.Fatalf("diurnal count %v, want %v +/- %v", total, want, 5*sigma)
	}
}

func checkMonotone(t *testing.T, times []int64, durNS int64) {
	t.Helper()
	if len(times) == 0 {
		t.Fatal("no arrivals generated")
	}
	prev := int64(-1)
	for i, ts := range times {
		if ts < prev {
			t.Fatalf("arrival %d at %dns before predecessor %dns", i, ts, prev)
		}
		if ts < 0 || ts >= durNS {
			t.Fatalf("arrival %d at %dns outside [0, %dns)", i, ts, durNS)
		}
		prev = ts
	}
}

func TestArrivalValidate(t *testing.T) {
	cases := []Arrival{
		{Process: "poisson", Rate: 0},
		{Process: "warp", Rate: 1},
		{Process: "bursty", Rate: 1, OnSec: 0, OffSec: 1},
		{Process: "bursty", Rate: 1, OnSec: 1, OffSec: -1},
		{Process: "diurnal", Rate: 1, PeriodSec: 0, Weights: []float64{1}},
		{Process: "diurnal", Rate: 1, PeriodSec: 1},
		{Process: "diurnal", Rate: 1, PeriodSec: 1, Weights: []float64{0, 0}},
		{Process: "diurnal", Rate: 1, PeriodSec: 1, Weights: []float64{1, -1}},
	}
	for i, a := range cases {
		if err := a.validate(); err == nil {
			t.Errorf("case %d (%+v): validate accepted an invalid arrival", i, a)
		}
	}
}
