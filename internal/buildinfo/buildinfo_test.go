package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringNamesBinary(t *testing.T) {
	s := String("fdatest")
	if !strings.HasPrefix(s, "fdatest ") {
		t.Fatalf("missing binary name: %q", s)
	}
	// Under `go test` build info is available and names this module.
	if !strings.Contains(s, "repro") {
		t.Fatalf("missing module path: %q", s)
	}
}

func TestDescribeFallback(t *testing.T) {
	if s := describe(nil, false); !strings.Contains(s, "unavailable") {
		t.Fatalf("fallback missing: %q", s)
	}
}

func TestDescribeVCSFields(t *testing.T) {
	bi := &debug.BuildInfo{GoVersion: "go1.24.0"}
	bi.Main.Path = "repro"
	bi.Main.Version = "v1.2.3"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "abcdef0123456789"},
		{Key: "vcs.modified", Value: "true"},
	}
	s := describe(bi, true)
	for _, want := range []string{"repro", "v1.2.3", "go1.24.0", "rev abcdef012345", "(modified)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
	if strings.Contains(s, "abcdef0123456789") {
		t.Fatalf("revision not truncated: %q", s)
	}
}
