// Package buildinfo renders the module version and VCS revision every
// binary reports behind its -version flag, read from the build metadata
// the Go toolchain embeds (no ldflags required).
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// String formats version information for one named binary, e.g.
//
//	fdaserve repro (devel) go1.24.0 rev 2ce6692… (modified)
func String(binary string) string {
	return binary + " " + describe(debug.ReadBuildInfo())
}

// describe is the testable core of String.
func describe(bi *debug.BuildInfo, ok bool) string {
	if !ok || bi == nil {
		return "(build info unavailable) " + runtime.Version()
	}
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	rev, modified := "unknown", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	out := fmt.Sprintf("%s %s %s rev %s", bi.Main.Path, version, bi.GoVersion, rev)
	if modified {
		out += " (modified)"
	}
	return out
}
