package runstore

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// MapResult reports how one grid dispatch was satisfied.
type MapResult struct {
	// Cells is the grid size, Cached how many cells were served from the
	// store, Executed how many were computed. On a completed grid
	// Cached + Executed = Cells; under cancellation Executed counts only
	// the cells that finished before the context fired.
	Cells, Cached, Executed int
	// SnapshotHits counts executed cells that warm-started from a stored
	// trajectory-prefix snapshot and StepsSaved the training steps those
	// restores skipped. Map cannot observe this itself — warm starts
	// happen inside compute — so warm-start-aware planners (experiments'
	// runGrid) fill the fields in; they stay zero otherwise.
	SnapshotHits, StepsSaved int
}

// Map is the store-aware sweep scheduler. It evaluates one grid of
// cells: cell i is described by specs[i] and computed, when needed, by
// compute(i), which must return the cell's records as a pure function
// of specs[i] (the determinism contract of DESIGN.md §3).
//
// For every cell the store already holds, the cached records are
// decoded instead of recomputed; the remaining cells dispatch across
// the par pool (jobs follows the par.Resolve convention) and persist
// before Map returns, so an interrupted sweep resumes from the cells it
// completed. Results are returned in grid order and are byte-identical
// whatever mix of cache hits, misses and parallelism produced them.
//
// st may be nil, which disables caching and reduces Map to a parallel
// map. Store read failures (including corrupt entries) downgrade to
// recomputation; the first store write failure is reported in err after
// the full grid has been evaluated, so results are complete even when
// persistence is not.
func Map[R any](st *Store, jobs int, specs []Spec, compute func(i int) []R) (perCell [][]R, res MapResult, err error) {
	return MapCtx(context.Background(), st, jobs, specs, compute)
}

// MapCtx is Map under a context. Cancellation is cooperative and
// cell-granular: cells already computing finish (and persist), no new
// cell dispatches, and the returned error is ctx.Err(). Because every
// completed cell persisted, re-running the same grid later — with the
// same store — resumes exactly where the cancellation landed.
func MapCtx[R any](ctx context.Context, st *Store, jobs int, specs []Spec, compute func(i int) []R) (perCell [][]R, res MapResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	perCell = make([][]R, len(specs))
	res.Cells = len(specs)

	// Cache-consultation pass: decode hits, collect misses.
	var missing []int
	for i, spec := range specs {
		if st == nil {
			missing = append(missing, i)
			continue
		}
		lines, ok, _ := st.Get(spec)
		if !ok {
			missing = append(missing, i)
			continue
		}
		recs, decErr := decodeRecords[R](lines)
		if decErr != nil {
			// Entries written by an older record schema decode loudly, not
			// silently: recompute and overwrite.
			missing = append(missing, i)
			continue
		}
		perCell[i] = recs
	}
	res.Cached = len(specs) - len(missing)

	// Compute pass: only the misses touch the pool. A panicking cell is
	// captured and re-raised on the calling goroutine after the grid
	// drains — pool goroutines must never die unrecovered (that would
	// kill the whole process, e.g. an fdaserve instance, regardless of
	// any recover installed by the caller), and completed cells keep
	// their persisted results for the next resume. Executed counts cells
	// that actually computed, which under cancellation is fewer than the
	// misses (Cached + Executed = Cells only on a completed grid).
	var mu sync.Mutex
	var firstErr error
	var panicked any
	var executed atomic.Int64
	ctxErr := par.ForEachCtx(ctx, par.Resolve(jobs), len(missing), func(j int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked == nil {
					panicked = r
				}
				mu.Unlock()
			}
		}()
		i := missing[j]
		recs := compute(i)
		perCell[i] = recs
		executed.Add(1)
		if st == nil {
			return
		}
		if putErr := putRecords(st, specs[i], recs); putErr != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = putErr
			}
			mu.Unlock()
		}
	})
	res.Executed = int(executed.Load())
	if panicked != nil {
		panic(panicked)
	}
	if ctxErr != nil {
		// Cancellation outranks a store-write error: the caller aborted
		// the sweep and must see that, not a persistence detail.
		return perCell, res, ctxErr
	}
	return perCell, res, firstErr
}

// putRecords encodes and stores one cell's records.
func putRecords[R any](st *Store, spec Spec, recs []R) error {
	lines := make([]json.RawMessage, len(recs))
	for i, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("runstore: encoding record: %w", err)
		}
		lines[i] = b
	}
	return st.Put(spec, lines)
}

// decodeRecords decodes one cell's stored JSONL lines.
func decodeRecords[R any](lines []json.RawMessage) ([]R, error) {
	if len(lines) == 0 {
		return nil, nil
	}
	recs := make([]R, len(lines))
	for i, line := range lines {
		if err := json.Unmarshal(line, &recs[i]); err != nil {
			return nil, fmt.Errorf("runstore: decoding record %d: %w", i, err)
		}
	}
	return recs, nil
}
