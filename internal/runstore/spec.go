// Package runstore is the run registry: a content-addressed, on-disk
// store of experiment results keyed by a canonical run specification,
// plus the store-aware sweep scheduler the experiment runners dispatch
// through.
//
// The registry exists because the execution engine (DESIGN.md §3) makes
// every run bit-identical in its configuration at any parallelism: a
// cell's records are a pure function of its parallelism-independent
// spec, so a result computed once is safe to reuse forever. Cells are
// therefore keyed by the SHA-256 of their canonical spec encoding and
// persisted as CRC-checked JSONL (DESIGN.md §6); interrupted or repeated
// sweeps recompute only the cells the store does not yet hold.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SpecVersion gates cache compatibility: it is baked into every spec
// hash, so bumping it after a semantics change (record fields, seed
// derivation, workload generation, training numerics) invalidates all
// prior entries instead of silently serving stale bytes.
//
// v2: the fused-kernel overhaul (DESIGN.md §7) regrouped the conv
// input-gradient accumulation, perturbing training trajectories at the
// last ulp — stores written by v1 binaries describe runs the current
// binary cannot reproduce bit-for-bit.
const SpecVersion = 2

// Spec canonically identifies one sweep cell — a single training run
// plus its record extraction. It must contain every input the records
// depend on and nothing else; parallelism knobs (Jobs, Parallelism) are
// deliberately absent because the engine guarantees they cannot change
// the bytes. The zero value of omitted fields participates in the
// canonical encoding via `omitempty`, so extending the struct with new
// optional fields keeps old hashes stable.
type Spec struct {
	// Version is the spec-format version; Canonical fills in SpecVersion
	// when it is zero.
	Version int `json:"v"`
	// Experiment names the runner (fig3 … fig13, table2) so equal grid
	// cells of different figures never alias.
	Experiment string `json:"experiment"`
	// Scale and Seed identify the sweep the cell belongs to.
	Scale string `json:"scale,omitempty"`
	Seed  uint64 `json:"seed"`
	// Model, Strategy, Theta, K, Het and Targets are the grid-cell
	// coordinates shared by every figure runner.
	Model    string    `json:"model,omitempty"`
	Strategy string    `json:"strategy,omitempty"`
	Theta    float64   `json:"theta,omitempty"`
	K        int       `json:"k,omitempty"`
	Het      string    `json:"het,omitempty"`
	Targets  []float64 `json:"targets,omitempty"`
	// CellSeed is the cell's derived run seed. It is kept alongside the
	// sweep Seed because derived seeds from different sweeps can collide.
	CellSeed uint64 `json:"cell_seed,omitempty"`
	// Extra carries runner-specific inputs (e.g. fig7's step budget or
	// fig13's pre-training recipe). Map keys are sorted by the canonical
	// encoder, so insertion order never affects the hash.
	Extra map[string]string `json:"extra,omitempty"`
}

// Canonical returns the spec with defaults applied (currently: Version).
func (s Spec) Canonical() Spec {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	return s
}

// Encode returns the canonical JSON encoding the hash is computed over.
// encoding/json emits struct fields in declaration order and map keys
// sorted, and formats float64 with the shortest round-trip
// representation, so equal specs encode to equal bytes on every
// platform.
func (s Spec) Encode() []byte {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		// Spec contains only marshalable field types; this is unreachable
		// short of NaN thresholds, which no runner produces.
		panic(fmt.Sprintf("runstore: encoding spec: %v", err))
	}
	return b
}

// Hash returns the content address: hex SHA-256 of the canonical
// encoding.
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.Encode())
	return hex.EncodeToString(sum[:])
}

// PrefixSpec addresses a trajectory prefix: the inputs that determine a
// run bit-for-bit up to (and only up to) the first synchronization. It
// is a Spec with the sync-time-acting coordinates (Strategy, Theta)
// replaced by a Family label naming the class of strategies whose
// pre-first-sync behaviour is identical — see core.PrefixSharer for the
// classification and DESIGN.md §10 for the safety argument. Cells whose
// specs differ only within a family share a prefix address, which is
// what lets a warm start serve one cell from a sibling's snapshot.
//
// The step count deliberately lives outside the hash (it is the
// directory level below the prefix address), so all snapshots of one
// trajectory are enumerable under a single address.
type PrefixSpec struct {
	// Version tracks SpecVersion: a numerics change that invalidates run
	// entries invalidates trajectory prefixes for the same reason.
	Version    int    `json:"v"`
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Seed       uint64 `json:"seed"`
	Model      string `json:"model,omitempty"`
	// Family replaces Spec.Strategy/Theta: every strategy in a family
	// produces the same trajectory while it has not yet synchronized.
	Family string `json:"family"`
	K      int    `json:"k,omitempty"`
	Het    string `json:"het,omitempty"`
	// Targets stays in the prefix address even though it only decides
	// when a run *stops*: snapshots are never published at a stopping
	// step, but keeping the field makes the address strictly finer than
	// necessary rather than relying on that invariant alone.
	Targets  []float64         `json:"targets,omitempty"`
	CellSeed uint64            `json:"cell_seed,omitempty"`
	Extra    map[string]string `json:"extra,omitempty"`
}

// Prefix derives the prefix address of this spec's trajectory for the
// given strategy family.
func (s Spec) Prefix(family string) PrefixSpec {
	s = s.Canonical()
	return PrefixSpec{
		Version:    s.Version,
		Experiment: s.Experiment,
		Scale:      s.Scale,
		Seed:       s.Seed,
		Model:      s.Model,
		Family:     family,
		K:          s.K,
		Het:        s.Het,
		Targets:    s.Targets,
		CellSeed:   s.CellSeed,
		Extra:      s.Extra,
	}
}

// Canonical returns the prefix spec with defaults applied.
func (p PrefixSpec) Canonical() PrefixSpec {
	if p.Version == 0 {
		p.Version = SpecVersion
	}
	return p
}

// Encode returns the canonical JSON encoding, with the same platform
// guarantees as Spec.Encode.
func (p PrefixSpec) Encode() []byte {
	b, err := json.Marshal(p.Canonical())
	if err != nil {
		panic(fmt.Sprintf("runstore: encoding prefix spec: %v", err))
	}
	return b
}

// Hash returns the prefix address: hex SHA-256 of the canonical
// encoding.
func (p PrefixSpec) Hash() string {
	sum := sha256.Sum256(p.Encode())
	return hex.EncodeToString(sum[:])
}
