package runstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func samplePrefix(cellSeed uint64) PrefixSpec {
	return sampleSpec(cellSeed).Prefix("LinearFDA/xi0")
}

func TestPrefixSpecHashStableAndSensitive(t *testing.T) {
	a, b := samplePrefix(7), samplePrefix(7)
	if a.Hash() != b.Hash() {
		t.Fatal("equal prefix specs hash differently")
	}
	// Canonicalization: a zero Version hashes like an explicit SpecVersion.
	c := samplePrefix(7)
	c.Version = SpecVersion
	if c.Hash() != a.Hash() {
		t.Fatal("canonicalization changed the hash")
	}
	// The sync-time coordinates must NOT be load-bearing: cells that
	// differ only in Strategy/Theta share a prefix address — that is the
	// whole point of the prefix spec.
	d := sampleSpec(7)
	d.Strategy, d.Theta = "SketchFDA", 0.2
	if d.Prefix("LinearFDA/xi0").Hash() != a.Hash() {
		t.Fatal("Strategy/Theta leaked into the prefix hash")
	}
	// Every remaining field must be load-bearing.
	mutants := []func(*PrefixSpec){
		func(p *PrefixSpec) { p.Version = SpecVersion + 1 },
		func(p *PrefixSpec) { p.Experiment = "figY" },
		func(p *PrefixSpec) { p.Scale = "full" },
		func(p *PrefixSpec) { p.Seed++ },
		func(p *PrefixSpec) { p.Model = "vgg16s" },
		func(p *PrefixSpec) { p.Family = "silent" },
		func(p *PrefixSpec) { p.K++ },
		func(p *PrefixSpec) { p.Het = "label0" },
		func(p *PrefixSpec) { p.Targets = []float64{0.95, 0.98} },
		func(p *PrefixSpec) { p.CellSeed++ },
		func(p *PrefixSpec) { p.Extra = map[string]string{"steps": "300"} },
	}
	for i, mutate := range mutants {
		m := samplePrefix(7)
		mutate(&m)
		if m.Hash() == a.Hash() {
			t.Fatalf("prefix mutant %d did not change the hash", i)
		}
	}
}

func TestSnapshotPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := samplePrefix(1)
	blob := []byte("checkpoint-bytes-1")
	if err := st.PutSnapshot(p, 25, 0.031, blob); err != nil {
		t.Fatal(err)
	}
	got, m, ok, err := st.GetSnapshot(p, 25)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, blob) || m.Steps != 25 || m.Guard != 0.031 {
		t.Fatalf("round trip: %q %+v", got, m)
	}
	// Misses: wrong step, wrong prefix.
	if _, _, ok, err := st.GetSnapshot(p, 50); ok || err != nil {
		t.Fatalf("missing step served: ok=%v err=%v", ok, err)
	}
	if _, _, ok, _ := st.GetSnapshot(samplePrefix(2), 25); ok {
		t.Fatal("different cell seed hit the same snapshot")
	}
	// Replacement is atomic and leaves no staging debris.
	if err := st.PutSnapshot(p, 25, 0.04, []byte("checkpoint-bytes-2")); err != nil {
		t.Fatal(err)
	}
	got, m, ok, _ = st.GetSnapshot(p, 25)
	if !ok || string(got) != "checkpoint-bytes-2" || m.Guard != 0.04 {
		t.Fatalf("overwrite not visible: %q %+v", got, m)
	}
	entries, err := os.ReadDir(filepath.Join(st.Dir(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("stray staging dirs: %v", entries)
	}
	if err := st.PutSnapshot(p, 0, 0, blob); err == nil {
		t.Fatal("PutSnapshot accepted step 0")
	}
}

func TestBestSnapshotPicksLongestAdmissible(t *testing.T) {
	st, _ := Open(t.TempDir())
	p := samplePrefix(3)
	for _, e := range []struct {
		steps int
		guard float64
	}{{10, 0.01}, {20, 0.03}, {30, 0.09}, {40, 0.2}} {
		if err := st.PutSnapshot(p, e.steps, e.guard, []byte(fmt.Sprintf("blob@%d", e.steps))); err != nil {
			t.Fatal(err)
		}
	}
	theta := 0.05 // admits guards at 10 and 20, rejects 30 and 40
	accept := func(_ int, guard float64) bool { return guard <= theta }
	blob, m, ok, err := st.BestSnapshot(p, 100, accept)
	if err != nil || !ok {
		t.Fatalf("best: ok=%v err=%v", ok, err)
	}
	if m.Steps != 20 || string(blob) != "blob@20" {
		t.Fatalf("picked steps=%d blob=%q, want the longest admissible (20)", m.Steps, blob)
	}
	// maxSteps caps the scan below the otherwise-best candidate.
	if _, m, ok, _ := st.BestSnapshot(p, 15, accept); !ok || m.Steps != 10 {
		t.Fatalf("maxSteps cap: ok=%v steps=%d, want 10", ok, m.Steps)
	}
	// Nothing admissible → miss, not error.
	if _, _, ok, err := st.BestSnapshot(p, 100, func(int, float64) bool { return false }); ok || err != nil {
		t.Fatalf("inadmissible grid served: ok=%v err=%v", ok, err)
	}
	// Unknown prefix → clean miss.
	if _, _, ok, err := st.BestSnapshot(samplePrefix(99), 100, nil); ok || err != nil {
		t.Fatalf("unknown prefix: ok=%v err=%v", ok, err)
	}
}

func TestBestSnapshotSkipsCorruptEntries(t *testing.T) {
	st, _ := Open(t.TempDir())
	p := samplePrefix(4)
	if err := st.PutSnapshot(p, 10, 0, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSnapshot(p, 20, 0, []byte("soon-corrupt")); err != nil {
		t.Fatal(err)
	}
	hash := p.Canonical().Hash()
	flipByte(t, filepath.Join(st.Dir(), "snapshots", hash[:2], hash, "20", "state.ckpt"))
	blob, m, ok, err := st.BestSnapshot(p, 100, nil)
	if !ok || m.Steps != 10 || string(blob) != "good" {
		t.Fatalf("corrupt candidate not skipped: ok=%v steps=%d blob=%q", ok, m.Steps, blob)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damage not surfaced: err=%v", err)
	}
	// Direct Get of the damaged entry is a loud miss.
	if _, _, ok, err := st.GetSnapshot(p, 20); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot served: ok=%v err=%v", ok, err)
	}
	// Self-healing: a fresh Put replaces the damaged entry.
	if err := st.PutSnapshot(p, 20, 0, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if blob, _, ok, err := st.GetSnapshot(p, 20); !ok || err != nil || string(blob) != "healed" {
		t.Fatalf("snapshot did not heal: %q ok=%v err=%v", blob, ok, err)
	}
}

func TestSnapshotsListAndSweep(t *testing.T) {
	st, _ := Open(t.TempDir())
	for i, p := range []PrefixSpec{samplePrefix(1), samplePrefix(1), samplePrefix(2)} {
		if err := st.PutSnapshot(p, 10*(i+1), 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.SnapshotCount(); n != 3 {
		t.Fatalf("SnapshotCount = %d, want 3", n)
	}
	ms, err := st.Snapshots()
	if err != nil || len(ms) != 3 {
		t.Fatalf("Snapshots: %d entries err=%v", len(ms), err)
	}
	for _, m := range ms {
		if m.Prefix.Family != "LinearFDA/xi0" {
			t.Fatalf("bad manifest %+v", m)
		}
	}
	// Nothing is old enough to expire...
	if n := st.SweepSnapshots(time.Hour); n != 0 {
		t.Fatalf("SweepSnapshots removed %d fresh entries", n)
	}
	// ...until everything is.
	if n := st.SweepSnapshots(-time.Hour); n != 3 {
		t.Fatalf("SweepSnapshots removed %d entries, want 3", n)
	}
	if n := st.SnapshotCount(); n != 0 {
		t.Fatalf("%d snapshots survived the sweep", n)
	}
}

// TestOpenSweepsStaleStaging simulates a writer killed mid-Put: its
// leaked staging dir must be collected by the next Open, while a fresh
// stage (a live concurrent writer) survives.
func TestOpenSweepsStaleStaging(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "put-stale123")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "records.jsonl"), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * stagingMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "tmp", "put-fresh456")
	if err := os.MkdirAll(fresh, 0o755); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale staging dir survived Open: err=%v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh staging dir was swept: %v", err)
	}
}

// TestStoreConcurrentPutSameSpec races many writers of one spec through
// the dst→old→rename dance; every writer must succeed and the final
// entry must verify (run under -race).
func TestStoreConcurrentPutSameSpec(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sampleSpec(6)
	want := rawLines(`{"v":1}`, `{"v":2}`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := st.Put(spec, want); err != nil {
				t.Errorf("concurrent Put: %v", err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := st.Get(spec)
	if !ok || err != nil || len(got) != 2 || string(got[0]) != `{"v":1}` {
		t.Fatalf("entry after race: %s ok=%v err=%v", got, ok, err)
	}
	// The race may leave transient .old dirs mid-flight, but once all
	// writers return the staging area must be clean.
	entries, err := os.ReadDir(filepath.Join(st.Dir(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("stray staging dirs after race: %v", entries)
	}
	// Same race on the snapshot side (shared installStaged path).
	p := samplePrefix(6)
	var wg2 sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if err := st.PutSnapshot(p, 30, 0.01, []byte("deterministic-blob")); err != nil {
				t.Errorf("concurrent PutSnapshot: %v", err)
			}
		}()
	}
	wg2.Wait()
	blob, m, ok, err := st.GetSnapshot(p, 30)
	if !ok || err != nil || string(blob) != "deterministic-blob" || m.Guard != 0.01 {
		t.Fatalf("snapshot after race: %q %+v ok=%v err=%v", blob, m, ok, err)
	}
}
