package runstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
)

// ManifestVersion gates the on-disk layout of a run entry.
const ManifestVersion = 1

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt marks a store entry whose bytes fail verification (CRC or
// record-count mismatch, unreadable manifest, or a spec that does not
// re-hash to its address). Readers treat corrupt entries as cache
// misses; the next Put overwrites them.
var ErrCorrupt = errors.New("runstore: corrupt entry")

// Manifest describes one stored run. It lives next to the records file
// and carries everything needed to verify and list the entry without
// decoding the records themselves.
type Manifest struct {
	ManifestVersion int    `json:"manifest_version"`
	Hash            string `json:"hash"`
	Spec            Spec   `json:"spec"`
	// Records is the JSONL line count and Bytes the records-file size;
	// CRC64 (ECMA, hex) covers the records-file bytes exactly.
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	CRC64   string `json:"crc64"`
	// CreatedUnix is informational only (not part of any hash).
	CreatedUnix int64 `json:"created_unix"`
}

// Store is a content-addressed result store rooted at a directory:
//
//	<dir>/runs/<hh>/<hash>/manifest.json   (hh = first hash byte)
//	<dir>/runs/<hh>/<hash>/records.jsonl
//
// Entries appear atomically (staged in <dir>/tmp, renamed into place),
// so a killed writer never leaves a half-visible run, and concurrent
// writers of the same spec are idempotent.
type Store struct {
	dir string
}

// stagingMaxAge is how old a staging directory must be before Open
// garbage-collects it. A live Put stages for milliseconds; anything
// this old is debris from a writer killed between MkdirTemp and its
// deferred RemoveAll.
const stagingMaxAge = time.Hour

// Open opens the store rooted at dir, creating the directory tree as
// needed. Stale staging directories — left behind by writers killed
// mid-Put — are swept; the age gate keeps concurrent live writers'
// stages untouched.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "runs"), filepath.Join(dir, "tmp")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	s := &Store{dir: dir}
	s.sweepStaging(stagingMaxAge)
	return s, nil
}

// sweepStaging removes staging entries older than maxAge from
// <dir>/tmp and returns how many it removed. Entries it cannot stat or
// remove are skipped — they will be retried by the next Open.
func (s *Store) sweepStaging(maxAge time.Duration) int {
	tmp := filepath.Join(s.dir, "tmp")
	entries, err := os.ReadDir(tmp)
	if err != nil {
		return 0
	}
	//fda:allow(wallclock, staging-GC age cutoff; affects only orphaned tmp files, never run contents)
	cutoff := time.Now().Add(-maxAge)
	n := 0
	for _, e := range entries {
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.RemoveAll(filepath.Join(tmp, e.Name())) == nil {
			n++
		}
	}
	return n
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// runDir maps a hash to its entry directory.
func (s *Store) runDir(hash string) string {
	return filepath.Join(s.dir, "runs", hash[:2], hash)
}

// Contains reports whether the store holds a verified entry for spec.
// Verification is the cheap structural kind (loadManifest plus a size
// stat): full CRC coverage of the records bytes is deferred to Get,
// which reads them anyway — so Contains stays O(1) in store bytes
// instead of re-reading the records file per call.
func (s *Store) Contains(spec Spec) bool {
	spec = spec.Canonical()
	hash := spec.Hash()
	dir := s.runDir(hash)
	m, err := loadManifest(dir)
	if err != nil || m.Hash != hash {
		return false
	}
	fi, err := os.Stat(filepath.Join(dir, "records.jsonl"))
	return err == nil && fi.Size() == m.Bytes
}

// loadManifest reads dir/manifest.json and verifies it is internally
// consistent: current version, and a spec that re-hashes to the
// recorded address (rejecting hand-edited entries and theoretical
// collisions). It does not touch the records file; the returned error
// wraps ErrCorrupt for anything but a missing manifest.
func loadManifest(dir string) (Manifest, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, err
		}
		return Manifest{}, fmt.Errorf("%w: reading manifest: %v", ErrCorrupt, err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: decoding manifest: %v", ErrCorrupt, err)
	}
	if m.ManifestVersion != ManifestVersion {
		return Manifest{}, fmt.Errorf("%w: manifest version %d, want %d",
			ErrCorrupt, m.ManifestVersion, ManifestVersion)
	}
	if m.Spec.Canonical().Hash() != m.Hash {
		return Manifest{}, fmt.Errorf("%w: manifest spec does not re-hash to %s", ErrCorrupt, m.Hash)
	}
	return m, nil
}

// Get loads the records stored for spec. ok is false on a miss; a
// non-nil error wrapping ErrCorrupt additionally reports an entry that
// exists but failed verification (also returned as a miss so callers
// recompute).
func (s *Store) Get(spec Spec) (recs []json.RawMessage, ok bool, err error) {
	start := obs.Clock()
	sp := obs.StartRegion("runstore.Get", "runstore")
	defer func() {
		getSec.Since(start)
		if sp.Active() {
			sp.EndArgs("hit", ok)
		}
	}()
	spec = spec.Canonical()
	hash := spec.Hash()
	dir := s.runDir(hash)
	m, err := loadManifest(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("manifest %s: %w", hash, err)
	}
	// loadManifest verified the stored spec re-hashes to m.Hash; it must
	// also be the address we derived, or the entry answers a different
	// question than asked.
	if m.Hash != hash {
		return nil, false, fmt.Errorf("%w: manifest %s does not match its spec", ErrCorrupt, hash)
	}
	rb, err := os.ReadFile(filepath.Join(dir, "records.jsonl"))
	if err != nil {
		return nil, false, fmt.Errorf("%w: reading records %s: %v", ErrCorrupt, hash, err)
	}
	if int64(len(rb)) != m.Bytes || fmt.Sprintf("%016x", crc64.Checksum(rb, crcTable)) != m.CRC64 {
		return nil, false, fmt.Errorf("%w: records %s fail CRC", ErrCorrupt, hash)
	}
	recs = splitLines(rb)
	if len(recs) != m.Records {
		return nil, false, fmt.Errorf("%w: records %s hold %d lines, manifest says %d",
			ErrCorrupt, hash, len(recs), m.Records)
	}
	return recs, true, nil
}

// Put stores records under spec's content address, replacing any
// existing entry. The entry is staged in the store's tmp area and
// renamed into place, so concurrent or interrupted writers leave either
// the old entry or the complete new one.
func (s *Store) Put(spec Spec, records []json.RawMessage) (err error) {
	start := obs.Clock()
	sp := obs.StartRegion("runstore.Put", "runstore")
	defer func() {
		putSec.Since(start)
		if sp.Active() {
			sp.EndArgs("records", len(records), "ok", err == nil)
		}
	}()
	spec = spec.Canonical()
	hash := spec.Hash()

	var rb bytes.Buffer
	for _, r := range records {
		line := bytes.TrimSpace([]byte(r))
		if bytes.ContainsRune(line, '\n') {
			// Re-encode to guarantee one line per record.
			var v any
			if err := json.Unmarshal(line, &v); err != nil {
				return fmt.Errorf("runstore: record is not valid JSON: %v", err)
			}
			compact, err := json.Marshal(v)
			if err != nil {
				return fmt.Errorf("runstore: %v", err)
			}
			line = compact
		}
		rb.Write(line)
		rb.WriteByte('\n')
	}
	m := Manifest{
		ManifestVersion: ManifestVersion,
		Hash:            hash,
		Spec:            spec,
		Records:         len(records),
		Bytes:           int64(rb.Len()),
		CRC64:           fmt.Sprintf("%016x", crc64.Checksum(rb.Bytes(), crcTable)),
		//fda:allow(wallclock, manifest provenance timestamp; excluded from the content address and record bytes)
		CreatedUnix: time.Now().Unix(),
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	return s.installStaged(map[string][]byte{
		"records.jsonl": rb.Bytes(),
		"manifest.json": mb,
	}, s.runDir(hash))
}

// installStaged writes files into a fresh staging directory under
// <dir>/tmp and renames it over dst — the atomic-replace dance shared
// by run entries and prefix snapshots. Any previous entry is first
// renamed out of the readers' way. If a concurrent writer won the
// rename race, its entry encodes the same content address —
// determinism makes the two byte-identical up to the manifest
// timestamp — so losing is success.
func (s *Store) installStaged(files map[string][]byte, dst string) error {
	stage, err := os.MkdirTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	defer os.RemoveAll(stage)
	for name, b := range files {
		if err := os.WriteFile(filepath.Join(stage, name), b, 0o644); err != nil {
			return fmt.Errorf("runstore: %v", err)
		}
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	old := stage + ".old"
	if err := os.Rename(dst, old); err == nil {
		defer os.RemoveAll(old)
	}
	if err := os.Rename(stage, dst); err != nil {
		if _, statErr := os.Stat(filepath.Join(dst, "manifest.json")); statErr == nil {
			return nil
		}
		return fmt.Errorf("runstore: %v", err)
	}
	return nil
}

// Delete removes spec's entry if present.
func (s *Store) Delete(spec Spec) error {
	return os.RemoveAll(s.runDir(spec.Canonical().Hash()))
}

// Count returns the number of stored entries by walking directory
// names only — no manifest decoding or record verification — so cheap
// periodic monitors (fdaserve's /v1/metrics) don't pay List's O(runs)
// file reads per poll. Unverifiable entries are counted; the catalog of
// record (List) remains the verified view.
func (s *Store) Count() int {
	shards, err := os.ReadDir(filepath.Join(s.dir, "runs"))
	if err != nil {
		return 0
	}
	n := 0
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, "runs", shard.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				n++
			}
		}
	}
	return n
}

// List returns the manifests of every verified entry, sorted by
// (experiment, model, strategy, hash) so listings are stable.
func (s *Store) List() ([]Manifest, error) {
	var out []Manifest
	shards, err := os.ReadDir(filepath.Join(s.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("runstore: %v", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, "runs", shard.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			dir := filepath.Join(s.dir, "runs", shard.Name(), e.Name())
			// Structural verification only: a consistent manifest whose
			// records file exists at the declared size. Get still CRC-checks
			// the records bytes it serves, so a listed-then-fetched entry is
			// fully verified; List itself stays O(manifests), not O(store
			// bytes), per call.
			m, err := loadManifest(dir)
			if err != nil || m.Hash != e.Name() {
				continue
			}
			fi, err := os.Stat(filepath.Join(dir, "records.jsonl"))
			if err != nil || fi.Size() != m.Bytes {
				continue
			}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Spec.Experiment != b.Spec.Experiment {
			return a.Spec.Experiment < b.Spec.Experiment
		}
		if a.Spec.Model != b.Spec.Model {
			return a.Spec.Model < b.Spec.Model
		}
		if a.Spec.Strategy != b.Spec.Strategy {
			return a.Spec.Strategy < b.Spec.Strategy
		}
		return a.Hash < b.Hash
	})
	return out, nil
}

// splitLines splits JSONL bytes into one raw message per line.
func splitLines(b []byte) []json.RawMessage {
	var out []json.RawMessage
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		out = append(out, json.RawMessage(append([]byte(nil), line...)))
	}
	return out
}
