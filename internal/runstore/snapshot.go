package runstore

import (
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

// SnapshotManifestVersion gates the on-disk layout of a prefix
// snapshot.
const SnapshotManifestVersion = 1

// SnapshotManifest describes one stored trajectory-prefix snapshot. It
// lives next to the checkpoint blob and carries everything a planner
// needs to pick a snapshot without reading the blob.
type SnapshotManifest struct {
	ManifestVersion int `json:"manifest_version"`
	// Hash is the prefix address (PrefixSpec.Hash); Steps the number of
	// completed global steps the blob captures.
	Hash   string     `json:"hash"`
	Prefix PrefixSpec `json:"prefix"`
	Steps  int        `json:"steps"`
	// Guard is the running maximum of the publishing strategy's sync
	// statistic over steps 1..Steps. A consumer with threshold Θ may
	// restore this snapshot only if Guard ≤ Θ — the exact complement of
	// the strict h > Θ sync trigger — which proves it would not have
	// synchronized anywhere in the prefix either (DESIGN.md §10).
	// Schedule-driven families ignore it (always 0) and gate on Steps.
	Guard float64 `json:"guard"`
	// Bytes is the blob size; CRC64 (ECMA, hex) covers the blob exactly.
	Bytes int64  `json:"bytes"`
	CRC64 string `json:"crc64"`
	// CreatedUnix is informational and drives age-based GC only.
	CreatedUnix int64 `json:"created_unix"`
}

// snapDir maps a prefix address and step count to the snapshot's
// directory: <dir>/snapshots/<hh>/<hash>/<steps>. Keeping steps as a
// directory level (not part of the hash) makes all snapshots of one
// trajectory enumerable with a single readdir.
func (s *Store) snapDir(hash string, steps int) string {
	return filepath.Join(s.dir, "snapshots", hash[:2], hash, strconv.Itoa(steps))
}

// PutSnapshot stores a checkpoint blob as the prefix snapshot of p at
// the given step count, replacing any existing one. Writes are staged
// and renamed exactly like Put: concurrent publishers of the same
// (prefix, steps) write byte-identical state (determinism) and equal
// guards (the guard is a pure function of the trajectory), so losing
// the rename race is success.
func (s *Store) PutSnapshot(p PrefixSpec, steps int, guard float64, blob []byte) (err error) {
	start := obs.Clock()
	sp := obs.StartRegion("runstore.PutSnapshot", "runstore")
	defer func() {
		snapPutSec.Since(start)
		if sp.Active() {
			sp.EndArgs("steps", steps, "bytes", len(blob), "ok", err == nil)
		}
	}()
	if steps <= 0 {
		return fmt.Errorf("runstore: snapshot at non-positive step %d", steps)
	}
	p = p.Canonical()
	m := SnapshotManifest{
		ManifestVersion: SnapshotManifestVersion,
		Hash:            p.Hash(),
		Prefix:          p,
		Steps:           steps,
		Guard:           guard,
		Bytes:           int64(len(blob)),
		CRC64:           fmt.Sprintf("%016x", crc64.Checksum(blob, crcTable)),
		//fda:allow(wallclock, snapshot provenance timestamp; excluded from the content address and restore path)
		CreatedUnix: time.Now().Unix(),
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: %v", err)
	}
	return s.installStaged(map[string][]byte{
		"state.ckpt":    blob,
		"manifest.json": mb,
	}, s.snapDir(m.Hash, steps))
}

// loadSnapshotManifest reads and structurally verifies the snapshot
// manifest in dir against the expected address and step count. Like
// loadManifest it never touches the blob; the error wraps ErrCorrupt
// for anything but a missing manifest.
func loadSnapshotManifest(dir, hash string, steps int) (SnapshotManifest, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return SnapshotManifest{}, err
		}
		return SnapshotManifest{}, fmt.Errorf("%w: reading snapshot manifest: %v", ErrCorrupt, err)
	}
	var m SnapshotManifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return SnapshotManifest{}, fmt.Errorf("%w: decoding snapshot manifest: %v", ErrCorrupt, err)
	}
	if m.ManifestVersion != SnapshotManifestVersion {
		return SnapshotManifest{}, fmt.Errorf("%w: snapshot manifest version %d, want %d",
			ErrCorrupt, m.ManifestVersion, SnapshotManifestVersion)
	}
	if m.Hash != hash || m.Steps != steps || m.Prefix.Canonical().Hash() != hash {
		return SnapshotManifest{}, fmt.Errorf("%w: snapshot manifest does not match its address", ErrCorrupt)
	}
	return m, nil
}

// readSnapshotBlob loads and CRC-verifies dir's checkpoint blob
// against its manifest.
func readSnapshotBlob(dir string, m SnapshotManifest) ([]byte, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "state.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("%w: reading snapshot blob: %v", ErrCorrupt, err)
	}
	if int64(len(blob)) != m.Bytes || fmt.Sprintf("%016x", crc64.Checksum(blob, crcTable)) != m.CRC64 {
		return nil, fmt.Errorf("%w: snapshot blob fails CRC", ErrCorrupt)
	}
	return blob, nil
}

// GetSnapshot loads the snapshot stored for p at exactly steps. ok is
// false on a miss; a non-nil error wrapping ErrCorrupt additionally
// reports an entry that exists but failed verification.
func (s *Store) GetSnapshot(p PrefixSpec, steps int) (blob []byte, m SnapshotManifest, ok bool, err error) {
	start := obs.Clock()
	sp := obs.StartRegion("runstore.GetSnapshot", "runstore")
	defer func() {
		snapGetSec.Since(start)
		if sp.Active() {
			sp.EndArgs("steps", steps, "hit", ok)
		}
	}()
	hash := p.Canonical().Hash()
	dir := s.snapDir(hash, steps)
	m, err = loadSnapshotManifest(dir, hash, steps)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, SnapshotManifest{}, false, nil
		}
		return nil, SnapshotManifest{}, false, err
	}
	blob, err = readSnapshotBlob(dir, m)
	if err != nil {
		return nil, SnapshotManifest{}, false, err
	}
	return blob, m, true, nil
}

// BestSnapshot returns the longest stored prefix of p with steps ≤
// maxSteps that accept admits, reading (and CRC-verifying) only the
// blob it selects. accept receives the candidate's step count and
// guard; a nil accept admits everything. Corrupt candidates are
// skipped — the first such error is reported alongside whatever result
// the scan still found, so callers can fall back to a cold start while
// surfacing the damage.
func (s *Store) BestSnapshot(p PrefixSpec, maxSteps int, accept func(steps int, guard float64) bool) (blob []byte, m SnapshotManifest, ok bool, err error) {
	start := obs.Clock()
	sp := obs.StartRegion("runstore.BestSnapshot", "runstore")
	defer func() {
		snapBestSec.Since(start)
		if ok {
			bestHits.Inc()
		} else {
			bestMisses.Inc()
		}
		if sp.Active() {
			sp.EndArgs("hit", ok, "steps", m.Steps)
		}
	}()
	hash := p.Canonical().Hash()
	base := filepath.Join(s.dir, "snapshots", hash[:2], hash)
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, SnapshotManifest{}, false, nil
	}
	var steps []int
	for _, e := range entries {
		n, convErr := strconv.Atoi(e.Name())
		if convErr != nil || !e.IsDir() || n <= 0 || n > maxSteps {
			continue
		}
		steps = append(steps, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(steps)))
	var firstErr error
	for _, n := range steps {
		dir := filepath.Join(base, strconv.Itoa(n))
		m, err := loadSnapshotManifest(dir, hash, n)
		if err != nil {
			if firstErr == nil && !os.IsNotExist(err) {
				firstErr = err
			}
			continue
		}
		if accept != nil && !accept(m.Steps, m.Guard) {
			continue
		}
		blob, err := readSnapshotBlob(dir, m)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return blob, m, true, firstErr
	}
	return nil, SnapshotManifest{}, false, firstErr
}

// SnapshotCount returns the number of stored prefix snapshots by
// walking directory names only — the cheap counterpart of Snapshots,
// for periodic monitors (fdaserve's /v1/metrics).
func (s *Store) SnapshotCount() int {
	n := 0
	s.eachSnapshotDir(func(string) bool { n++; return true })
	return n
}

// Snapshots returns the manifests of every structurally verified
// snapshot, sorted by (experiment, model, family, steps, hash) so
// listings are stable. Blob CRCs are deferred to Get/BestSnapshot,
// mirroring List.
func (s *Store) Snapshots() ([]SnapshotManifest, error) {
	var out []SnapshotManifest
	s.eachSnapshotDir(func(dir string) bool {
		mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err != nil {
			return true
		}
		var m SnapshotManifest
		if err := json.Unmarshal(mb, &m); err != nil {
			return true
		}
		if m.ManifestVersion != SnapshotManifestVersion || m.Prefix.Canonical().Hash() != m.Hash {
			return true
		}
		fi, err := os.Stat(filepath.Join(dir, "state.ckpt"))
		if err != nil || fi.Size() != m.Bytes {
			return true
		}
		out = append(out, m)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Prefix.Experiment != b.Prefix.Experiment {
			return a.Prefix.Experiment < b.Prefix.Experiment
		}
		if a.Prefix.Model != b.Prefix.Model {
			return a.Prefix.Model < b.Prefix.Model
		}
		if a.Prefix.Family != b.Prefix.Family {
			return a.Prefix.Family < b.Prefix.Family
		}
		if a.Steps != b.Steps {
			return a.Steps < b.Steps
		}
		return a.Hash < b.Hash
	})
	return out, nil
}

// SweepSnapshots is the snapshot GC policy: it removes every snapshot
// older than maxAge (by manifest CreatedUnix; unreadable manifests
// count as infinitely old) and returns how many were removed.
// Snapshots are pure accelerators — deleting one can never change a
// result, only cost a warm start — so age-based expiry is always safe.
func (s *Store) SweepSnapshots(maxAge time.Duration) int {
	//fda:allow(wallclock, snapshot-GC age cutoff; snapshots are pure accelerators so expiry cannot change results)
	cutoff := time.Now().Add(-maxAge).Unix()
	n := 0
	s.eachSnapshotDir(func(dir string) bool {
		mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
		if err == nil {
			var m SnapshotManifest
			if json.Unmarshal(mb, &m) == nil && m.CreatedUnix > cutoff {
				return true
			}
		}
		if os.RemoveAll(dir) == nil {
			n++
		}
		return true
	})
	return n
}

// eachSnapshotDir walks <dir>/snapshots/<hh>/<hash>/<steps> and calls
// fn with every step directory; fn returns false to stop early.
func (s *Store) eachSnapshotDir(fn func(dir string) bool) {
	root := filepath.Join(s.dir, "snapshots")
	shards, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		hashes, err := os.ReadDir(filepath.Join(root, shard.Name()))
		if err != nil {
			continue
		}
		for _, h := range hashes {
			if !h.IsDir() {
				continue
			}
			steps, err := os.ReadDir(filepath.Join(root, shard.Name(), h.Name()))
			if err != nil {
				continue
			}
			for _, st := range steps {
				if !st.IsDir() {
					continue
				}
				if !fn(filepath.Join(root, shard.Name(), h.Name(), st.Name())) {
					return
				}
			}
		}
	}
}
