package runstore

import "repro/internal/obs"

// Store telemetry (DESIGN.md §11): every public store operation is
// timed into a per-op latency histogram and traced as a "runstore"
// span carrying its outcome. These are disk-I/O cold paths, so the
// instrumentation uses plain defers; nothing here affects what the
// store reads or writes.
var (
	storeOpHelp = "Latency of one runstore operation."

	getSec      = obs.Default.Histogram("fda_runstore_op_seconds", storeOpHelp, obs.Seconds, "op", "get")
	putSec      = obs.Default.Histogram("fda_runstore_op_seconds", storeOpHelp, obs.Seconds, "op", "put")
	snapPutSec  = obs.Default.Histogram("fda_runstore_op_seconds", storeOpHelp, obs.Seconds, "op", "snapshot_put")
	snapGetSec  = obs.Default.Histogram("fda_runstore_op_seconds", storeOpHelp, obs.Seconds, "op", "snapshot_get")
	snapBestSec = obs.Default.Histogram("fda_runstore_op_seconds", storeOpHelp, obs.Seconds, "op", "snapshot_best")

	// bestHits/bestMisses count warm-start lookups: the ratio is the
	// sweep-level effectiveness of prefix snapshot sharing.
	bestHits = obs.Default.Counter("fda_runstore_snapshot_best_hits_total",
		"BestSnapshot lookups that found an admissible prefix.")
	bestMisses = obs.Default.Counter("fda_runstore_snapshot_best_misses_total",
		"BestSnapshot lookups that found nothing admissible.")
)
