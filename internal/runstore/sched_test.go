package runstore

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// schedRecord is a stand-in experiment record.
type schedRecord struct {
	Cell  int     `json:"cell"`
	Value float64 `json:"value"`
}

func schedSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = sampleSpec(uint64(1000 + i))
	}
	return specs
}

// computeFn returns a deterministic per-cell payload and counts calls.
func computeFn(calls *atomic.Int64) func(i int) []schedRecord {
	return func(i int) []schedRecord {
		calls.Add(1)
		return []schedRecord{{Cell: i, Value: float64(i) * 0.125}, {Cell: i, Value: float64(i) + 0.5}}
	}
}

func TestMapNilStoreComputesAll(t *testing.T) {
	var calls atomic.Int64
	specs := schedSpecs(9)
	perCell, res, err := Map(nil, 4, specs, computeFn(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 9 || res.Executed != 9 || res.Cached != 0 || res.Cells != 9 {
		t.Fatalf("nil store: calls=%d res=%+v", calls.Load(), res)
	}
	for i, recs := range perCell {
		if len(recs) != 2 || recs[0].Cell != i {
			t.Fatalf("cell %d holds %+v", i, recs)
		}
	}
}

func TestMapCachesAcrossCalls(t *testing.T) {
	st, _ := Open(t.TempDir())
	specs := schedSpecs(7)
	var cold atomic.Int64
	first, res1, err := Map(st, 3, specs, computeFn(&cold))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Load() != 7 || res1.Executed != 7 {
		t.Fatalf("cold run: calls=%d res=%+v", cold.Load(), res1)
	}
	var warm atomic.Int64
	second, res2, err := Map(st, 3, specs, computeFn(&warm))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Load() != 0 || res2.Executed != 0 || res2.Cached != 7 {
		t.Fatalf("warm run recomputed: calls=%d res=%+v", warm.Load(), res2)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached results diverged:\n%+v\n%+v", first, second)
	}
}

// TestMapResumesAfterKill simulates a sweep killed mid-grid: the first
// dispatch panics after completing part of the grid, and the retry must
// execute only the missing cells.
func TestMapResumesAfterKill(t *testing.T) {
	st, _ := Open(t.TempDir())
	specs := schedSpecs(10)
	const killAfter = 4
	var done atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected mid-grid panic")
			}
		}()
		// jobs=1 keeps the dispatch inline so the panic unwinds through
		// Map exactly like a process kill after 4 persisted cells.
		Map(st, 1, specs, func(i int) []schedRecord {
			if done.Load() == killAfter {
				panic("killed")
			}
			done.Add(1)
			return []schedRecord{{Cell: i}}
		})
	}()
	var retries atomic.Int64
	perCell, res, err := Map(st, 4, specs, func(i int) []schedRecord {
		retries.Add(1)
		return []schedRecord{{Cell: i}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != killAfter || res.Executed != len(specs)-killAfter {
		t.Fatalf("resume stats %+v, want %d cached", res, killAfter)
	}
	if retries.Load() != int64(len(specs)-killAfter) {
		t.Fatalf("resume recomputed %d cells, want %d", retries.Load(), len(specs)-killAfter)
	}
	for i, recs := range perCell {
		if len(recs) != 1 || recs[0].Cell != i {
			t.Fatalf("cell %d holds %+v", i, recs)
		}
	}
}

// TestMapRecomputesCorruptEntries: a damaged entry must not fail the
// sweep — it is recomputed and healed.
func TestMapRecomputesCorruptEntries(t *testing.T) {
	st, _ := Open(t.TempDir())
	specs := schedSpecs(3)
	var calls atomic.Int64
	if _, _, err := Map(st, 2, specs, computeFn(&calls)); err != nil {
		t.Fatal(err)
	}
	flipByte(t, st.runDir(specs[1].Canonical().Hash())+"/records.jsonl")
	var again atomic.Int64
	perCell, res, err := Map(st, 2, specs, computeFn(&again))
	if err != nil {
		t.Fatal(err)
	}
	if again.Load() != 1 || res.Executed != 1 || res.Cached != 2 {
		t.Fatalf("corrupt entry handling: calls=%d res=%+v", again.Load(), res)
	}
	if perCell[1][0].Cell != 1 {
		t.Fatalf("recomputed cell wrong: %+v", perCell[1])
	}
	if !st.Contains(specs[1]) {
		t.Fatal("corrupt entry not healed")
	}
}

// TestMapEmptyCellCached: cells that legitimately produce no records
// (e.g. an unreached fig12 Θ) are cached as empty, not recomputed.
func TestMapEmptyCellCached(t *testing.T) {
	st, _ := Open(t.TempDir())
	specs := schedSpecs(2)
	compute := func(i int) []schedRecord {
		if i == 0 {
			return nil
		}
		return []schedRecord{{Cell: i}}
	}
	if _, _, err := Map(st, 1, specs, compute); err != nil {
		t.Fatal(err)
	}
	perCell, res, err := Map(st, 1, specs, func(i int) []schedRecord {
		t.Fatalf("cell %d recomputed", i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached != 2 || len(perCell[0]) != 0 || len(perCell[1]) != 1 {
		t.Fatalf("empty-cell caching broken: %+v %+v", res, perCell)
	}
}

// TestMapCtxCancellation: cancelling mid-grid stops new cell dispatches,
// persists the cells that completed, reports the truth in MapResult, and
// a rerun over the same store resumes from exactly those cells.
func TestMapCtxCancellation(t *testing.T) {
	st, _ := Open(t.TempDir())
	specs := schedSpecs(5)
	ctx, cancel := context.WithCancel(context.Background())
	perCell, res, err := MapCtx(ctx, st, 1, specs, func(i int) []schedRecord {
		if i == 1 {
			cancel()
		}
		return []schedRecord{{Cell: i}}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Executed != 2 || res.Cached != 0 {
		t.Fatalf("cancelled MapResult: %+v", res)
	}
	for i := range specs {
		want := i < 2
		if got := perCell[i] != nil; got != want {
			t.Fatalf("cell %d present=%v after cancellation", i, got)
		}
	}

	// Resume: the two persisted cells load from the store, the other
	// three compute, and the grid result is complete.
	var computed []int
	perCell2, res2, err := MapCtx(context.Background(), st, 1, specs, func(i int) []schedRecord {
		computed = append(computed, i)
		return []schedRecord{{Cell: i}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cached != 2 || res2.Executed != 3 {
		t.Fatalf("resume MapResult: %+v", res2)
	}
	if len(computed) != 3 || computed[0] != 2 {
		t.Fatalf("resume computed cells %v", computed)
	}
	for i := range specs {
		if len(perCell2[i]) != 1 || perCell2[i][0].Cell != i {
			t.Fatalf("resume cell %d: %+v", i, perCell2[i])
		}
	}
}
