package runstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSpec(cellSeed uint64) Spec {
	return Spec{
		Experiment: "figX", Scale: "tiny", Seed: 1,
		Model: "lenet5s", Strategy: "LinearFDA", Theta: 0.05, K: 5,
		Het: "iid", Targets: []float64{0.95}, CellSeed: cellSeed,
	}
}

func rawLines(ss ...string) []json.RawMessage {
	var out []json.RawMessage
	for _, s := range ss {
		out = append(out, json.RawMessage(s))
	}
	return out
}

func TestSpecHashStableAndSensitive(t *testing.T) {
	a, b := sampleSpec(7), sampleSpec(7)
	if a.Hash() != b.Hash() {
		t.Fatal("equal specs hash differently")
	}
	// Canonicalization: a zero Version hashes like an explicit SpecVersion.
	c := sampleSpec(7)
	c.Version = SpecVersion
	if c.Hash() != a.Hash() {
		t.Fatal("canonicalization changed the hash")
	}
	// Every field must be load-bearing.
	mutants := []func(*Spec){
		func(s *Spec) { s.Version = SpecVersion + 1 },
		func(s *Spec) { s.Experiment = "figY" },
		func(s *Spec) { s.Scale = "full" },
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Model = "vgg16s" },
		func(s *Spec) { s.Strategy = "SketchFDA" },
		func(s *Spec) { s.Theta += 1e-9 },
		func(s *Spec) { s.K++ },
		func(s *Spec) { s.Het = "label0" },
		func(s *Spec) { s.Targets = []float64{0.95, 0.98} },
		func(s *Spec) { s.CellSeed++ },
		func(s *Spec) { s.Extra = map[string]string{"steps": "300"} },
	}
	for i, mutate := range mutants {
		m := sampleSpec(7)
		mutate(&m)
		if m.Hash() == a.Hash() {
			t.Fatalf("mutant %d did not change the hash", i)
		}
	}
	// Extra is order-independent by construction (sorted keys).
	x := sampleSpec(7)
	x.Extra = map[string]string{"a": "1", "b": "2"}
	y := sampleSpec(7)
	y.Extra = map[string]string{"b": "2", "a": "1"}
	if x.Hash() != y.Hash() {
		t.Fatal("Extra key order changed the hash")
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sampleSpec(1)
	if st.Contains(spec) {
		t.Fatal("empty store claims to contain spec")
	}
	want := rawLines(`{"steps":10,"acc":0.5}`, `{"steps":20,"acc":0.9}`)
	if err := st.Put(spec, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(spec)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %s want %s", got, want)
	}
	if !st.Contains(spec) {
		t.Fatal("Contains false after Put")
	}
	// Distinct cell → distinct entry.
	if st.Contains(sampleSpec(2)) {
		t.Fatal("different cell seed hit the same entry")
	}
}

func TestStoreEmptyRecords(t *testing.T) {
	st, _ := Open(t.TempDir())
	spec := sampleSpec(3)
	if err := st.Put(spec, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(spec)
	if !ok || err != nil || len(got) != 0 {
		t.Fatalf("empty entry: got %v ok=%v err=%v", got, ok, err)
	}
}

func TestStoreOverwrite(t *testing.T) {
	st, _ := Open(t.TempDir())
	spec := sampleSpec(4)
	if err := st.Put(spec, rawLines(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(spec, rawLines(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := st.Get(spec)
	if !ok || len(got) != 1 || string(got[0]) != `{"v":2}` {
		t.Fatalf("overwrite not visible: %s", got)
	}
	// The tmp staging area must not accumulate debris.
	entries, err := os.ReadDir(filepath.Join(st.Dir(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("stray staging dirs: %v", entries)
	}
}

// corrupt each stored artifact in turn and check Get degrades to a miss
// that reports ErrCorrupt (so schedulers recompute instead of failing).
func TestStoreCorruptionIsAMiss(t *testing.T) {
	cases := []struct {
		name string
		// listed reports whether List/Contains may still advertise the
		// entry: their verification is deliberately structural (manifest
		// consistency + records size), so a same-size bitflip is only
		// caught by Get's CRC — the reader that would serve the bytes.
		listed  bool
		corrupt func(t *testing.T, runDir string)
	}{
		{"records-bitflip", true, func(t *testing.T, dir string) {
			flipByte(t, filepath.Join(dir, "records.jsonl"))
		}},
		{"records-truncated", false, func(t *testing.T, dir string) {
			path := filepath.Join(dir, "records.jsonl")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest-garbage", false, func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest-wrong-spec", false, func(t *testing.T, dir string) {
			other := sampleSpec(99).Canonical()
			m := Manifest{ManifestVersion: ManifestVersion, Hash: other.Hash(), Spec: other}
			b, _ := json.Marshal(m)
			if err := os.WriteFile(filepath.Join(dir, "manifest.json"), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, _ := Open(t.TempDir())
			spec := sampleSpec(5)
			if err := st.Put(spec, rawLines(`{"v":1}`, `{"v":2}`)); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, filepath.Join(st.Dir(), "runs", spec.Canonical().Hash()[:2], spec.Canonical().Hash()))
			recs, ok, err := st.Get(spec)
			if ok || recs != nil {
				t.Fatalf("corrupt entry served: %s", recs)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			wantListed := 0
			if tc.listed {
				wantListed = 1
			}
			if ms, _ := st.List(); len(ms) != wantListed {
				t.Fatalf("List advertised %d entries, want %d: %+v", len(ms), wantListed, ms)
			}
			if got := st.Contains(spec); got != tc.listed {
				t.Fatalf("Contains = %v, want %v", got, tc.listed)
			}
			// Self-healing: a fresh Put replaces the damaged entry.
			if err := st.Put(spec, rawLines(`{"v":3}`)); err != nil {
				t.Fatal(err)
			}
			if got, ok, err := st.Get(spec); !ok || err != nil || string(got[0]) != `{"v":3}` {
				t.Fatalf("store did not heal: %s ok=%v err=%v", got, ok, err)
			}
		})
	}
}

func flipByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDeleteAndList(t *testing.T) {
	st, _ := Open(t.TempDir())
	specs := []Spec{sampleSpec(1), sampleSpec(2), sampleSpec(3)}
	for i, spec := range specs {
		if err := st.Put(spec, rawLines(`{"i":`+string(rune('0'+i))+`}`)); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("listed %d entries, want 3", len(ms))
	}
	for _, m := range ms {
		if m.Records != 1 || m.Spec.Experiment != "figX" {
			t.Fatalf("bad manifest %+v", m)
		}
	}
	if err := st.Delete(specs[1]); err != nil {
		t.Fatal(err)
	}
	if st.Contains(specs[1]) {
		t.Fatal("deleted entry still present")
	}
	if ms, _ = st.List(); len(ms) != 2 {
		t.Fatalf("listed %d entries after delete, want 2", len(ms))
	}
	// Deleting a missing entry is a no-op.
	if err := st.Delete(specs[1]); err != nil {
		t.Fatal(err)
	}
}
