package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The socket fabric's frame protocol. Every message between a worker
// and the coordinator is one frame:
//
//	magic   [4]byte "FDA1"
//	opcode  u8
//	rank    i32  (little-endian; -1 before assignment)
//	seq     u32  (collective sequence number; 0 for handshake frames)
//	kindLen u8, kind bytes (the meter kind, for protocol sanity checks)
//	payLen  u32, payload bytes
//	crc     u32  CRC-32 (IEEE) over opcode..payload
//
// Frames are length-prefixed (payLen) and integrity-checked (crc); a
// mismatch is a hard protocol error — the fabric never guesses at
// resynchronization. Payloads are opaque at this layer: float64 vectors
// travel little-endian (appendF64s/decodeF64s), codec-compressed drifts
// travel in their compress wire encoding, bundles in bundle framing.
const (
	wireMagic   = "FDA1"
	maxFrameLen = 1 << 30 // hard cap: a frame larger than 1 GiB is a protocol error

	opHello   = 1 // worker → coordinator: request a rank
	opAssign  = 2 // coordinator → worker: rank, K, job payload
	opContrib = 3 // worker → coordinator: one collective contribution
	opBundle  = 4 // coordinator → worker: all K contributions, rank order
	opResult  = 5 // worker → coordinator: final result payload
	opDone    = 6 // coordinator → worker: run acknowledged, close
	opError   = 7 // either direction: fatal error message
)

// frame is one decoded protocol message.
type frame struct {
	op      byte
	rank    int32
	seq     uint32
	kind    string
	payload []byte
}

// writeFrame encodes and flushes one frame.
func writeFrame(w *bufio.Writer, f frame) error {
	if len(f.kind) > 255 {
		return fmt.Errorf("comm: wire kind %q too long", f.kind)
	}
	if len(f.payload) > maxFrameLen {
		return fmt.Errorf("comm: wire payload %d exceeds frame cap", len(f.payload))
	}
	head := make([]byte, 0, 4+1+4+4+1+len(f.kind)+4)
	head = append(head, wireMagic...)
	head = append(head, f.op)
	head = binary.LittleEndian.AppendUint32(head, uint32(f.rank))
	head = binary.LittleEndian.AppendUint32(head, f.seq)
	head = append(head, byte(len(f.kind)))
	head = append(head, f.kind...)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(f.payload)))

	crc := crc32.NewIEEE()
	crc.Write(head[4:]) // opcode onward; magic is the resync marker, not data
	crc.Write(f.payload)

	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(f.payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads and verifies one frame. buf, when non-nil and large
// enough, backs the payload (zero-copy reuse across collectives).
func readFrame(r *bufio.Reader, buf []byte) (frame, []byte, error) {
	var head [14]byte // magic(4) op(1) rank(4) seq(4) kindLen(1)
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return frame{}, buf, err
	}
	if string(head[:4]) != wireMagic {
		return frame{}, buf, fmt.Errorf("comm: bad wire magic %q", head[:4])
	}
	f := frame{
		op:   head[4],
		rank: int32(binary.LittleEndian.Uint32(head[5:9])),
		seq:  binary.LittleEndian.Uint32(head[9:13]),
	}
	kindLen := int(head[13])
	crc := crc32.NewIEEE()
	crc.Write(head[4:])

	kindAndLen := make([]byte, kindLen+4)
	if _, err := io.ReadFull(r, kindAndLen); err != nil {
		return f, buf, err
	}
	crc.Write(kindAndLen)
	f.kind = string(kindAndLen[:kindLen])
	payLen := int(binary.LittleEndian.Uint32(kindAndLen[kindLen:]))
	if payLen > maxFrameLen {
		return f, buf, fmt.Errorf("comm: wire payload %d exceeds frame cap", payLen)
	}
	if cap(buf) < payLen {
		buf = make([]byte, payLen)
	}
	f.payload = buf[:payLen]
	if _, err := io.ReadFull(r, f.payload); err != nil {
		return f, buf, err
	}
	crc.Write(f.payload)

	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return f, buf, err
	}
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return f, buf, fmt.Errorf("comm: wire CRC mismatch: frame %08x, computed %08x", got, want)
	}
	if f.op == opError {
		return f, buf, fmt.Errorf("comm: peer error: %s", f.payload)
	}
	return f, buf, nil
}

// bundle framing: u32 count, then count × (u32 len, bytes), rank order.

// appendBundle encodes parts into dst.
func appendBundle(dst []byte, parts [][]byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(parts)))
	for _, p := range parts {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

// splitBundle decodes a bundle into per-rank payload views into b.
func splitBundle(b []byte, into [][]byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("comm: truncated bundle header")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	into = into[:0]
	for i := 0; i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("comm: truncated bundle part %d", i)
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < n {
			return nil, fmt.Errorf("comm: bundle part %d short: %d < %d", i, len(b), n)
		}
		into = append(into, b[:n])
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("comm: %d trailing bundle bytes", len(b))
	}
	return into, nil
}

// appendF64s encodes v little-endian into dst.
func appendF64s(dst []byte, v []float64) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// decodeF64s decodes exactly len(dst) little-endian float64s from b.
func decodeF64s(dst []float64, b []byte) error {
	if len(b) != 8*len(dst) {
		return fmt.Errorf("comm: float payload %d bytes, want %d", len(b), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// FabricError wraps a transport failure inside a fabric collective.
// Socket-fabric methods cannot return errors (the Fabric interface is
// shared with infallible in-process backends), so they panic with a
// *FabricError; drivers (dist.RunWorker) recover it into an ordinary
// error.
type FabricError struct{ Err error }

// Error implements error.
func (e *FabricError) Error() string { return "comm: fabric transport: " + e.Err.Error() }

// Unwrap exposes the cause.
func (e *FabricError) Unwrap() error { return e.Err }
