// Package comm is the communication fabric of a K-worker training
// cluster: an averaging AllReduce (the paper's only collective) behind
// the pluggable Fabric interface, a byte-accurate cost meter, and
// network profiles for translating bytes into estimated wall-clock time.
//
// The paper's hardware (44 GPU nodes on InfiniBand, MPI AllReduce) is
// replaced by three interchangeable backends: the in-process reference
// Cluster below (a faithful substitution for the paper's evaluation
// because its two metrics — total bytes transmitted by all workers, and
// in-parallel learning steps — are counted, not timed, and the
// simulation counts them exactly), the SimFabric virtual-clock model
// (sim.go), and the TCPFabric socket backend (tcp.go, coordinator.go)
// for genuinely multi-process training. A concurrent goroutine-based
// ring AllReduce is also provided (see ring.go) and tested to produce
// the same averages as the sequential reference.
package comm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// CostModel controls how AllReduce operations are charged.
type CostModel struct {
	// BytesPerParam is the wire size of one tensor element. The paper
	// transmits float32 models, so the default (see DefaultCostModel) is 4
	// even though the simulation computes in float64.
	BytesPerParam int
	// Ring selects ring-AllReduce accounting: each worker sends
	// 2(K−1)/K × payload bytes per operation. When false, the naive model
	// charges each worker the full payload (send to aggregation).
	Ring bool
}

// DefaultCostModel matches the paper's accounting assumptions.
func DefaultCostModel() CostModel {
	return CostModel{BytesPerParam: 4, Ring: true}
}

// PerWorkerBytes returns how many bytes one worker transmits for an
// AllReduce over a payload of n elements in a K-worker cluster.
func (cm CostModel) PerWorkerBytes(n, k int) int64 {
	payload := int64(n) * int64(cm.BytesPerParam)
	if !cm.Ring || k <= 1 {
		return payload
	}
	// Ring all-reduce: reduce-scatter + all-gather, each moving
	// (K−1)/K of the payload per worker, i.e. ⌊2·payload·(K−1)/K⌋.
	// Split payload = q·K + r so the intermediate products stay below
	// 2·payload + 2·K² instead of 2·payload·(K−1), which overflows
	// int64 for multi-exabyte payloads well inside int64's own range.
	kk := int64(k)
	q, r := payload/kk, payload%kk
	return 2*q*(kk-1) + 2*r*(kk-1)/kk
}

// TotalBytes returns the cluster-wide bytes for one AllReduce, i.e. the
// per-worker cost times K — the paper's "total data transmitted by all
// workers".
func (cm CostModel) TotalBytes(n, k int) int64 {
	return cm.PerWorkerBytes(n, k) * int64(k)
}

// Meter accumulates communication statistics, keyed by operation kind
// (for example "state" vs "model"), so experiments can report how much of
// the traffic was monitoring overhead versus synchronization.
type Meter struct {
	mu    sync.Mutex
	bytes map[string]int64
	ops   map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{bytes: map[string]int64{}, ops: map[string]int64{}}
}

// Charge records one operation of the given kind costing b bytes.
func (m *Meter) Charge(kind string, b int64) {
	chargeObs(kind, b)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes[kind] += b
	m.ops[kind]++
}

// TotalBytes returns the bytes across all kinds.
func (m *Meter) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, b := range m.bytes {
		t += b
	}
	return t
}

// BytesFor returns the bytes charged to one kind.
func (m *Meter) BytesFor(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes[kind]
}

// OpsFor returns the operation count for one kind.
func (m *Meter) OpsFor(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops[kind]
}

// Kinds returns the sorted set of operation kinds seen so far.
func (m *Meter) Kinds() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.bytes))
	//fda:allow(detmap, key collection is sorted two lines below; result is order-independent)
	for k := range m.bytes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of the per-kind byte and operation counters,
// the state a training checkpoint needs so a resumed run's cost
// accounting continues exactly where it stopped.
func (m *Meter) Snapshot() (bytes, ops map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bytes = make(map[string]int64, len(m.bytes))
	ops = make(map[string]int64, len(m.ops))
	for k, v := range m.bytes {
		bytes[k] = v
	}
	for k, v := range m.ops {
		ops[k] = v
	}
	return bytes, ops
}

// Restore overwrites the meter's counters with a Snapshot.
func (m *Meter) Restore(bytes, ops map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes = make(map[string]int64, len(bytes))
	m.ops = make(map[string]int64, len(ops))
	for k, v := range bytes {
		m.bytes[k] = v
	}
	for k, v := range ops {
		m.ops[k] = v
	}
}

// Reset clears all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes = map[string]int64{}
	m.ops = map[string]int64{}
}

// Cluster is the in-process reference fabric: a simulated group of K
// workers sharing an AllReduce. It is the specification the other
// Fabric backends are tested against.
type Cluster struct {
	k     int
	cost  CostModel
	meter *Meter
	ranks []int
	// Concurrent selects the goroutine ring implementation for vector
	// AllReduce; the sequential reference is the default (it is faster at
	// simulation scale on a single core and bit-identical in accounting).
	Concurrent bool

	// scratch is the sequential AllReduce's mean buffer, reused across
	// calls so model synchronizations don't allocate. Collectives on one
	// Cluster are inherently serialized (they model a blocking collective
	// and are only ever issued from the run's reduction goroutine), so a
	// single buffer suffices.
	scratch []float64
}

// NewCluster returns a cluster of k workers with the default cost model.
func NewCluster(k int) *Cluster {
	return NewClusterWithCost(k, DefaultCostModel())
}

// NewClusterWithCost returns a cluster of k workers charging under cm.
func NewClusterWithCost(k int, cm CostModel) *Cluster {
	if k <= 0 {
		panic(fmt.Sprintf("comm: non-positive cluster size %d", k))
	}
	return &Cluster{k: k, cost: cm, meter: NewMeter(), ranks: allRanks(k)}
}

// K implements Fabric.
func (c *Cluster) K() int { return c.k }

// Ranks implements Fabric: the in-process cluster owns every rank.
func (c *Cluster) Ranks() []int { return c.ranks }

// Meter implements Fabric.
func (c *Cluster) Meter() *Meter { return c.meter }

// Cost implements Fabric.
func (c *Cluster) Cost() CostModel { return c.cost }

// Close implements Fabric (no resources to release in-process).
func (c *Cluster) Close() error { return nil }

// charge meters one collective over n elements and builds its report.
func (c *Cluster) charge(kind string, n int) CostReport {
	per := c.cost.PerWorkerBytes(n, c.k)
	total := per * int64(c.k)
	c.meter.Charge(kind, total)
	return CostReport{Elements: n, PerWorker: per, Bytes: total}
}

func (c *Cluster) checkArity(op string, vecs [][]float64) int {
	if len(vecs) != c.k {
		panic(fmt.Sprintf("comm: %s over %d vectors in a %d-worker cluster", op, len(vecs), c.k))
	}
	n := len(vecs[0])
	for i, v := range vecs {
		if len(v) != n {
			panic(fmt.Sprintf("comm: %s ragged vector %d: %d != %d", op, i, len(v), n))
		}
	}
	return n
}

// AllReduce averages the K equal-length vectors in place: after the call
// every vecs[i] holds the element-wise mean. The operation is charged to
// the meter under kind. This models MPI_Allreduce(MPI_SUM)/K with the
// result replacing each worker's buffer, exactly the paper's
// synchronization primitive w^(k) ← w̄.
func (c *Cluster) AllReduce(kind string, vecs [][]float64) CostReport {
	sp := startOp("AllReduce")
	rep := c.allReduce(kind, vecs)
	endOp(sp, kind, rep)
	return rep
}

// allReduce is the span-free body, shared with SimFabric's override so
// a simulated collective traces once (with its virtual time attached).
func (c *Cluster) allReduce(kind string, vecs [][]float64) CostReport {
	n := c.checkArity("AllReduce", vecs)
	if c.Concurrent {
		ringAllReduce(vecs)
	} else {
		if cap(c.scratch) < n {
			c.scratch = make([]float64, n)
		}
		mean := c.scratch[:n]
		tensor.Mean(mean, vecs...)
		for _, v := range vecs {
			copy(v, mean)
		}
	}
	return c.charge(kind, n)
}

// AllReduceMean averages the vectors into dst without modifying them,
// charging the same cost as AllReduce. This models the aggregation of
// local states S̄ = AllReduce(S^(k)) where workers keep their own states.
func (c *Cluster) AllReduceMean(kind string, dst []float64, vecs [][]float64) CostReport {
	sp := startOp("AllReduceMean")
	rep := c.allReduceMean(kind, dst, vecs)
	endOp(sp, kind, rep)
	return rep
}

func (c *Cluster) allReduceMean(kind string, dst []float64, vecs [][]float64) CostReport {
	c.checkArity("AllReduceMean", vecs)
	tensor.Mean(dst, vecs...)
	return c.charge(kind, len(dst))
}

// Broadcast implements Fabric: every worker's vector is overwritten with
// rank root's, charged under the naive model ((K−1)·payload total).
func (c *Cluster) Broadcast(kind string, root int, vecs [][]float64) CostReport {
	sp := startOp("Broadcast")
	rep := c.broadcast(kind, root, vecs)
	endOp(sp, kind, rep)
	return rep
}

func (c *Cluster) broadcast(kind string, root int, vecs [][]float64) CostReport {
	n := c.checkArity("Broadcast", vecs)
	if root < 0 || root >= c.k {
		panic(fmt.Sprintf("comm: Broadcast root %d outside cluster of %d", root, c.k))
	}
	for i, v := range vecs {
		if i != root {
			copy(v, vecs[root])
		}
	}
	payload := int64(n) * int64(c.cost.BytesPerParam)
	total := payload * int64(c.k-1)
	c.meter.Charge(kind, total)
	return CostReport{Elements: n, PerWorker: payload, Bytes: total}
}

// Gather implements Fabric: in-process, the contributions already are
// the cluster's vectors.
func (c *Cluster) Gather(local [][]float64) [][]float64 {
	c.checkArity("Gather", local)
	return local
}

// ExchangeBytes implements Fabric: in-process, payloads are returned
// as-is.
func (c *Cluster) ExchangeBytes(kind string, local [][]byte) [][]byte {
	if len(local) != c.k {
		panic(fmt.Sprintf("comm: ExchangeBytes over %d payloads in a %d-worker cluster", len(local), c.k))
	}
	return local
}

// AllReduceScalars averages one scalar per worker, charging a 1-element
// AllReduce. (Reference-cluster helper, not part of the Fabric surface.)
func (c *Cluster) AllReduceScalars(kind string, xs []float64) float64 {
	if len(xs) != c.k {
		panic("comm: AllReduceScalars arity mismatch")
	}
	// tensor.Sum is left-to-right, so this is bit-identical to the
	// sequential loop it replaced (fdavet/floatsum).
	s := tensor.Sum(xs)
	c.charge(kind, 1)
	return s / float64(len(xs))
}

// NetworkProfile translates metered bytes and step counts into estimated
// wall-clock time for a deployment scenario (paper §4.3, Figure 12).
type NetworkProfile struct {
	Name string
	// BandwidthBps is the per-link usable bandwidth in bits per second.
	BandwidthBps float64
	// LatencySec is the fixed per-collective overhead.
	LatencySec float64
}

// The three settings of Figure 12.
var (
	// ProfileFL models a federated deployment on a shared 0.5 Gbps channel.
	ProfileFL = NetworkProfile{Name: "FL", BandwidthBps: 0.5e9, LatencySec: 20e-3}
	// ProfileBalanced sits between the federated and HPC regimes.
	ProfileBalanced = NetworkProfile{Name: "Balanced", BandwidthBps: 10e9, LatencySec: 1e-3}
	// ProfileHPC models the paper's ARIS InfiniBand FDR14 fabric (56 Gb/s).
	ProfileHPC = NetworkProfile{Name: "ARIS-HPC", BandwidthBps: 56e9, LatencySec: 5e-6}
)

// CommTime estimates the wall-clock seconds spent communicating given a
// meter: transmitted bits over bandwidth plus per-operation latency.
func (p NetworkProfile) CommTime(m *Meter) float64 {
	var ops int64
	for _, k := range m.Kinds() {
		ops += m.OpsFor(k)
	}
	bits := float64(m.TotalBytes()) * 8
	return bits/p.BandwidthBps + float64(ops)*p.LatencySec
}
