package comm

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/tensor"
)

// TCPFabric is the socket backend: one fabric per worker process, each
// owning exactly one global rank, all connected to a Coordinator. A
// collective is one framed round trip — the worker sends its
// contribution, the coordinator bundles all K contributions in rank
// order and broadcasts the bundle, and every worker computes the
// reduction locally with the same kernels as the in-process reference.
// The coordinator therefore does no arithmetic at all: reductions are
// replicated, which is what makes the training math bit-identical to
// the other fabrics regardless of network timing.
//
// Charged bytes follow the CostModel exactly as in-process (every
// process's meter accumulates the cluster totals); the actual framed
// bytes this process moved are reported separately in
// CostReport.WireBytes and WireBytes().
type TCPFabric struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	k     int
	rank  int
	ranks []int
	cost  CostModel
	meter *Meter
	seq   uint32

	// Reusable receive state: the bundle buffer, per-rank payload views,
	// decoded vectors and the reduction scratch.
	recvBuf  []byte
	parts    [][]byte
	vecs     [][]float64
	mean     []float64
	sendBuf  []byte
	wireTx   int64
	wireRx   int64
	lastWire int64
}

// DialFabric connects to a coordinator, performs the rendezvous
// handshake, and returns the fabric positioned before the first
// collective plus the coordinator's job payload (the serialized
// training spec every worker builds its replicated session from).
func DialFabric(ctx context.Context, addr string, cost CostModel) (*TCPFabric, []byte, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("comm: dialing coordinator %s: %w", addr, err)
	}
	f := &TCPFabric{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
		cost: cost,
	}
	if err := writeFrame(f.bw, frame{op: opHello, rank: -1}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	fr, _, err := readFrame(f.br, nil)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: waiting for rank assignment: %w", err)
	}
	if fr.op != opAssign || len(fr.payload) < 4 {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: unexpected handshake frame op=%d", fr.op)
	}
	f.rank = int(fr.rank)
	f.k = int(binary.LittleEndian.Uint32(fr.payload))
	if f.k <= 0 || f.rank < 0 || f.rank >= f.k {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: invalid assignment rank=%d k=%d", f.rank, f.k)
	}
	job := append([]byte(nil), fr.payload[4:]...)
	f.ranks = []int{f.rank}
	f.meter = NewMeter()
	return f, job, nil
}

// K implements Fabric.
func (f *TCPFabric) K() int { return f.k }

// Rank returns this process's global rank.
func (f *TCPFabric) Rank() int { return f.rank }

// Ranks implements Fabric.
func (f *TCPFabric) Ranks() []int { return f.ranks }

// Meter implements Fabric.
func (f *TCPFabric) Meter() *Meter { return f.meter }

// Cost implements Fabric.
func (f *TCPFabric) Cost() CostModel { return f.cost }

// WireBytes returns the actual framed payload bytes this process has
// sent and received (diagnostic; distinct from the charged cost model).
func (f *TCPFabric) WireBytes() (tx, rx int64) { return f.wireTx, f.wireRx }

// Close implements Fabric.
func (f *TCPFabric) Close() error { return f.conn.Close() }

// fail aborts the collective with a transport panic (see FabricError).
func (f *TCPFabric) fail(err error) {
	panic(&FabricError{Err: err})
}

// exchange performs one framed collective round trip: send this rank's
// payload, receive the K-part bundle, split it into rank-order views.
func (f *TCPFabric) exchange(kind string, payload []byte) [][]byte {
	f.seq++
	if err := writeFrame(f.bw, frame{op: opContrib, rank: int32(f.rank), seq: f.seq, kind: kind, payload: payload}); err != nil {
		f.fail(fmt.Errorf("sending contribution seq %d: %w", f.seq, err))
	}
	fr, buf, err := readFrame(f.br, f.recvBuf)
	f.recvBuf = buf
	if err != nil {
		f.fail(fmt.Errorf("awaiting bundle seq %d: %w", f.seq, err))
	}
	if fr.op != opBundle || fr.seq != f.seq || fr.kind != kind {
		f.fail(fmt.Errorf("protocol desync: got op=%d seq=%d kind=%q, want bundle seq=%d kind=%q",
			fr.op, fr.seq, fr.kind, f.seq, kind))
	}
	parts, err := splitBundle(fr.payload, f.parts)
	if err != nil {
		f.fail(err)
	}
	f.parts = parts
	if len(parts) != f.k {
		f.fail(fmt.Errorf("bundle carries %d parts, want %d", len(parts), f.k))
	}
	f.wireTx += int64(len(payload))
	f.wireRx += int64(len(fr.payload))
	f.lastWire = int64(len(payload)) + int64(len(fr.payload))
	return parts
}

// gatherVecs exchanges the local vector and decodes all K into the
// reusable vector scratch (rank order).
func (f *TCPFabric) gatherVecs(kind string, local [][]float64) [][]float64 {
	if len(local) != 1 {
		f.fail(fmt.Errorf("TCPFabric drives 1 rank, got %d local vectors", len(local)))
	}
	n := len(local[0])
	f.sendBuf = appendF64s(f.sendBuf[:0], local[0])
	parts := f.exchange(kind, f.sendBuf)
	if cap(f.vecs) < f.k {
		f.vecs = make([][]float64, f.k)
	}
	f.vecs = f.vecs[:f.k]
	for r, p := range parts {
		if cap(f.vecs[r]) < n {
			f.vecs[r] = make([]float64, n)
		}
		f.vecs[r] = f.vecs[r][:n]
		if err := decodeF64s(f.vecs[r], p); err != nil {
			f.fail(fmt.Errorf("rank %d contribution: %w", r, err))
		}
	}
	return f.vecs
}

// charge meters one collective over n elements, cluster-total like the
// in-process reference so every process's meter agrees with it.
func (f *TCPFabric) charge(kind string, n int, start time.Time) CostReport {
	per := f.cost.PerWorkerBytes(n, f.k)
	total := per * int64(f.k)
	f.meter.Charge(kind, total)
	return CostReport{
		Elements:  n,
		PerWorker: per,
		Bytes:     total,
		WireBytes: f.lastWire,
		//fda:allow(wallclock, measured socket time is diagnostic CostReport telemetry; never feeds training math)
		Seconds: time.Since(start).Seconds(),
	}
}

// AllReduce implements Fabric.
func (f *TCPFabric) AllReduce(kind string, local [][]float64) CostReport {
	sp := startOp("AllReduce")
	//fda:allow(wallclock, real socket timing on the TCP fabric; diagnostic only)
	start := time.Now()
	vecs := f.gatherVecs(kind, local)
	n := len(local[0])
	if cap(f.mean) < n {
		f.mean = make([]float64, n)
	}
	mean := f.mean[:n]
	tensor.Mean(mean, vecs...)
	copy(local[0], mean)
	rep := f.charge(kind, n, start)
	endOp(sp, kind, rep)
	return rep
}

// AllReduceMean implements Fabric.
func (f *TCPFabric) AllReduceMean(kind string, dst []float64, local [][]float64) CostReport {
	sp := startOp("AllReduceMean")
	//fda:allow(wallclock, real socket timing on the TCP fabric; diagnostic only)
	start := time.Now()
	vecs := f.gatherVecs(kind, local)
	tensor.Mean(dst, vecs...)
	rep := f.charge(kind, len(dst), start)
	endOp(sp, kind, rep)
	return rep
}

// Broadcast implements Fabric.
func (f *TCPFabric) Broadcast(kind string, root int, local [][]float64) CostReport {
	sp := startOp("Broadcast")
	//fda:allow(wallclock, real socket timing on the TCP fabric; diagnostic only)
	start := time.Now()
	vecs := f.gatherVecs(kind, local)
	copy(local[0], vecs[root])
	n := len(local[0])
	payload := int64(n) * int64(f.cost.BytesPerParam)
	total := payload * int64(f.k-1)
	f.meter.Charge(kind, total)
	rep := CostReport{Elements: n, PerWorker: payload, Bytes: total,
		//fda:allow(wallclock, measured socket time is diagnostic CostReport telemetry; never feeds training math)
		WireBytes: f.lastWire, Seconds: time.Since(start).Seconds()}
	endOp(sp, kind, rep)
	return rep
}

// Gather implements Fabric (uncharged measurement exchange).
func (f *TCPFabric) Gather(local [][]float64) [][]float64 {
	return f.gatherVecs("gather", local)
}

// ExchangeBytes implements Fabric: opaque payload exchange, uncharged.
// The returned views are valid until the next collective.
func (f *TCPFabric) ExchangeBytes(kind string, local [][]byte) [][]byte {
	if len(local) != 1 {
		f.fail(fmt.Errorf("TCPFabric drives 1 rank, got %d local payloads", len(local)))
	}
	sp := startOp("ExchangeBytes")
	out := f.exchange(kind, local[0])
	if sp.Active() {
		sp.EndArgs("kind", kind, "wire_bytes", f.lastWire)
	}
	return out
}

// SendResult delivers this worker's final result payload to the
// coordinator and waits for the acknowledgement, completing the run.
func (f *TCPFabric) SendResult(result []byte) error {
	f.seq++
	if err := writeFrame(f.bw, frame{op: opResult, rank: int32(f.rank), seq: f.seq, kind: "result", payload: result}); err != nil {
		return err
	}
	fr, buf, err := readFrame(f.br, f.recvBuf)
	f.recvBuf = buf
	if err != nil {
		return err
	}
	if fr.op != opDone {
		return fmt.Errorf("comm: expected done acknowledgement, got op=%d", fr.op)
	}
	return nil
}
