package comm

import (
	"sync"

	"repro/internal/obs"
)

// Fabric telemetry (DESIGN.md §11): every collective opens a span on
// the "fabric" category carrying the charged cost — bytes from the
// paper's accounting model and, on time-modeling fabrics, the
// operation's virtual seconds — and every Meter charge mirrors into
// the process-wide per-kind byte/op counters. Both paths are pure
// observers: they read the CostReport the math already produced, so
// training results are bit-identical with telemetry on or off.

// startOp opens one fabric-op span; disarmed tracing costs a single
// atomic load.
func startOp(name string) obs.Region { return obs.StartRegion(name, "fabric") }

// endOp closes a fabric-op span, attaching the operation's charged
// cost. virtual_sec is the simulated collective time on SimFabric and
// the measured wall seconds on TCPFabric (zero on the reference
// cluster, which does not model time).
func endOp(sp obs.Region, kind string, rep CostReport) {
	if !sp.Active() {
		return
	}
	sp.EndArgs("kind", kind, "elements", rep.Elements,
		"per_worker_bytes", rep.PerWorker, "bytes", rep.Bytes,
		"virtual_sec", rep.Seconds)
}

// meterCounters is one charge kind's process-wide mirror.
type meterCounters struct {
	bytes *obs.Counter
	ops   *obs.Counter
}

// meterKinds caches kind → counters so the per-charge path is one
// lock-free sync.Map read (kinds are a handful of static strings).
var meterKinds sync.Map

func meterCountersFor(kind string) *meterCounters {
	if v, ok := meterKinds.Load(kind); ok {
		return v.(*meterCounters)
	}
	mc := &meterCounters{
		bytes: obs.Default.Counter("fda_comm_bytes_total",
			"Total bytes charged by the communication cost model.", "kind", kind),
		ops: obs.Default.Counter("fda_comm_ops_total",
			"Total charged collective operations.", "kind", kind),
	}
	v, _ := meterKinds.LoadOrStore(kind, mc)
	return v.(*meterCounters)
}

// chargeObs mirrors one meter charge into the process counters. Only
// live charges flow through here — Meter.Restore rewinds a run's own
// accounting, not the process history.
func chargeObs(kind string, b int64) {
	if !obs.On() {
		return
	}
	mc := meterCountersFor(kind)
	mc.bytes.Add(b)
	mc.ops.Inc()
}
