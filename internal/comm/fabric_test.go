package comm

import (
	"context"
	"math"
	"math/big"
	"sync"
	"testing"
)

// Compile-time checks: every backend implements Fabric, and the
// time-modeling faces sit where expected.
var (
	_ Fabric         = (*Cluster)(nil)
	_ Fabric         = (*SimFabric)(nil)
	_ Fabric         = (*TCPFabric)(nil)
	_ VirtualClocker = (*SimFabric)(nil)
	_ StepTimer      = (*SimFabric)(nil)
	_ TransferTimer  = (*SimFabric)(nil)
)

// TestPerWorkerBytesOverflowBoundary pins the overflow fix: the ring
// formula ⌊2·payload·(K−1)/K⌋ must match exact big-integer arithmetic
// even when the old intermediate product 2·payload·(K−1) would have
// wrapped int64.
func TestPerWorkerBytesOverflowBoundary(t *testing.T) {
	cm := DefaultCostModel()
	ref := func(n int, k int) int64 {
		payload := new(big.Int).Mul(big.NewInt(int64(n)), big.NewInt(int64(cm.BytesPerParam)))
		num := new(big.Int).Mul(payload, big.NewInt(2*int64(k-1)))
		return new(big.Int).Div(num, big.NewInt(int64(k))).Int64()
	}
	cases := []struct{ n, k int }{
		{100, 4},                        // small regression anchor
		{math.MaxInt64 / 8, 4},          // payload ≈ MaxInt64/2: old code overflowed
		{math.MaxInt64 / 8, 7},          // non-divisible remainder path
		{math.MaxInt64/8 - 1, 44},       // the paper's K
		{math.MaxInt64 / 16, 3},         // odd K
		{(math.MaxInt64 / 4) / 4, 1000}, // large K, huge payload
	}
	for _, c := range cases {
		got := cm.PerWorkerBytes(c.n, c.k)
		want := ref(c.n, c.k)
		if got != want {
			t.Fatalf("PerWorkerBytes(%d, %d) = %d, want %d", c.n, c.k, got, want)
		}
		if got <= 0 {
			t.Fatalf("PerWorkerBytes(%d, %d) = %d overflowed", c.n, c.k, got)
		}
	}
	// Exhaustive small-value agreement with the naive formula, which is
	// exact where it cannot overflow.
	for k := 2; k <= 9; k++ {
		for n := 0; n <= 1000; n += 37 {
			payload := int64(n) * int64(cm.BytesPerParam)
			want := 2 * payload * int64(k-1) / int64(k)
			if got := cm.PerWorkerBytes(n, k); got != want {
				t.Fatalf("PerWorkerBytes(%d, %d) = %d, naive %d", n, k, got, want)
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	c := NewCluster(3)
	vecs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	rep := c.Broadcast("model", 1, vecs)
	for i, v := range vecs {
		if v[0] != 3 || v[1] != 4 {
			t.Fatalf("worker %d holds %v after broadcast from root 1", i, v)
		}
	}
	// Naive broadcast: (K−1)·payload = 2·(2·4) = 16 bytes.
	if rep.Bytes != 16 || c.Meter().BytesFor("model") != 16 {
		t.Fatalf("broadcast charged %d (meter %d)", rep.Bytes, c.Meter().BytesFor("model"))
	}
}

func TestCostReportConsistency(t *testing.T) {
	c := NewCluster(4)
	vecs := [][]float64{{1}, {2}, {3}, {4}}
	rep := c.AllReduce("model", vecs)
	if rep.Elements != 1 || rep.Bytes != rep.PerWorker*4 {
		t.Fatalf("report %+v inconsistent", rep)
	}
	if rep.Bytes != c.Meter().TotalBytes() {
		t.Fatalf("report charged %d, meter holds %d", rep.Bytes, c.Meter().TotalBytes())
	}
}

// TestSimFabricClock pins the virtual-clock model: deterministic across
// builds, advanced by collectives (slowest link gates) and steps
// (slowest worker gates, straggler schedule applied).
func TestSimFabricClock(t *testing.T) {
	run := func() *SimFabric {
		f := NewSimFabric(4, DefaultCostModel(), ScenarioStraggler)
		vecs := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {1, 1, 1}}
		for step := 1; step <= 10; step++ {
			f.StepDone(step)
			f.AllReduceMean("state", make([]float64, 3), vecs)
		}
		f.AllReduce("model", vecs)
		return f
	}
	a, b := run(), run()
	if a.VirtualTime() != b.VirtualTime() {
		t.Fatalf("clock nondeterministic: %v vs %v", a.VirtualTime(), b.VirtualTime())
	}
	if a.VirtualTime() <= 0 {
		t.Fatal("clock never advanced")
	}
	if got, want := a.Meter().TotalBytes(), NewCluster(4).Cost().TotalBytes(3, 4)*11; got != want {
		t.Fatalf("sim charged %d bytes, reference %d", got, want)
	}

	// Straggler injection: the scheduled step costs more than a plain one.
	plain := NewSimFabric(4, DefaultCostModel(), ScenarioLAN)
	slow := NewSimFabric(4, DefaultCostModel(), ScenarioStraggler)
	plain.StepDone(5) // ScenarioStraggler fires every 5 steps
	slow.StepDone(5)
	if slow.VirtualTime() <= plain.VirtualTime() {
		t.Fatalf("straggler step %v not slower than plain %v", slow.VirtualTime(), plain.VirtualTime())
	}
	before := slow.VirtualTime()
	slow.StepDone(6) // off-schedule: nominal cost
	if cost := slow.VirtualTime() - before; cost >= before {
		t.Fatalf("off-schedule step cost %v, straggler step cost %v", cost, before)
	}

	// Clock restore (checkpoint path).
	a.SetVirtualTime(1.5)
	if a.VirtualTime() != 1.5 {
		t.Fatal("SetVirtualTime ignored")
	}
}

func TestScenarioByName(t *testing.T) {
	for _, name := range []string{"lan", "fedwan", "straggler"} {
		s, err := ScenarioByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ScenarioByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScenarioByName("dialup"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestTCPFabricCollectives drives the raw socket fabric without any
// training on top: K fabric clients against a loopback coordinator,
// checking the mean, the meter and the result round trip.
func TestTCPFabricCollectives(t *testing.T) {
	const k = 3
	coord, err := ListenCoordinator("127.0.0.1:0", k)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	serveDone := make(chan error, 1)
	var results [][]byte
	go func() {
		var err error
		results, err = coord.Serve(context.Background(), []byte("job-payload"))
		serveDone <- err
	}()

	inputs := [][]float64{{1, 2, 8}, {4, 0, 1}, {1, 1, 0}}
	want := make([]float64, 3)
	for i := range want {
		want[i] = (inputs[0][i] + inputs[1][i] + inputs[2][i]) / k
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = r.(*FabricError)
				}
			}()
			f, job, err := DialFabric(context.Background(), coord.Addr(), DefaultCostModel())
			if err != nil {
				errs[w] = err
				return
			}
			defer f.Close()
			if string(job) != "job-payload" {
				t.Errorf("rank %d job payload %q", f.Rank(), job)
			}
			vec := append([]float64(nil), inputs[f.Rank()]...)
			rep := f.AllReduce("model", [][]float64{vec})
			for i := range vec {
				if math.Float64bits(vec[i]) != math.Float64bits(want[i]) {
					t.Errorf("rank %d mean[%d] = %v want %v", f.Rank(), i, vec[i], want[i])
				}
			}
			if rep.Bytes != f.Meter().TotalBytes() {
				t.Errorf("rank %d report/meter mismatch", f.Rank())
			}
			if rep.WireBytes <= 0 {
				t.Errorf("rank %d moved no wire bytes", f.Rank())
			}
			// Gather: every rank sees every contribution in rank order.
			got := f.Gather([][]float64{vec})
			if len(got) != k {
				t.Errorf("rank %d gathered %d vectors", f.Rank(), len(got))
			}
			errs[w] = f.SendResult([]byte{byte('a' + f.Rank())})
		}(w)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", w, err)
		}
	}
	for r, res := range results {
		if len(res) != 1 || res[0] != byte('a'+r) {
			t.Fatalf("rank %d result %q", r, res)
		}
	}
	rounds, wire := coord.Stats()
	if rounds != 2 || wire <= 0 { // AllReduce + Gather
		t.Fatalf("coordinator stats rounds=%d wire=%d", rounds, wire)
	}
}
