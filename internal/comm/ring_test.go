package comm

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// ringCase builds K deterministic n-length vectors, runs them through the
// concurrent ring cluster and the sequential reference cluster, and
// asserts the averages agree within FP-reordering tolerance and the
// metered bytes agree exactly.
func ringCase(t *testing.T, k, n int) {
	t.Helper()
	makeVecs := func() [][]float64 {
		rng := tensor.NewRNG(uint64(1000*k + n))
		vecs := make([][]float64, k)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			tensor.Normal(rng, vecs[i], 0, 1)
		}
		return vecs
	}

	seq := NewCluster(k)
	seqVecs := makeVecs()
	seq.AllReduce("model", seqVecs)

	ring := NewCluster(k)
	ring.Concurrent = true
	ringVecs := makeVecs()
	ring.AllReduce("model", ringVecs)

	for w := 0; w < k; w++ {
		for i := 0; i < n; i++ {
			got, want := ringVecs[w][i], seqVecs[0][i]
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("K=%d n=%d: worker %d element %d: ring %v, sequential %v",
					k, n, w, i, got, want)
			}
		}
		// All ring workers must hold the same vector bit for bit.
		for i := range ringVecs[w] {
			if ringVecs[w][i] != ringVecs[0][i] {
				t.Fatalf("K=%d n=%d: worker %d diverges from worker 0 at %d", k, n, w, i)
			}
		}
	}
	if got, want := ring.Meter().TotalBytes(), seq.Meter().TotalBytes(); got != want {
		t.Fatalf("K=%d n=%d: ring metered %d bytes, sequential %d", k, n, got, want)
	}
}

// TestRingAllReduceShorterThanCluster covers n < K, where some ring
// chunks are empty.
func TestRingAllReduceShorterThanCluster(t *testing.T) {
	ringCase(t, 5, 3)
	ringCase(t, 7, 1)
}

// TestRingAllReduceTwoWorkers covers the smallest nontrivial ring (K=2),
// where reduce-scatter and all-gather are each a single exchange.
func TestRingAllReduceTwoWorkers(t *testing.T) {
	ringCase(t, 2, 8)
	ringCase(t, 2, 9) // odd length: unequal chunks
}

// TestRingAllReduceUnevenChunks covers n not divisible by K.
func TestRingAllReduceUnevenChunks(t *testing.T) {
	ringCase(t, 4, 10)
	ringCase(t, 3, 100)
	ringCase(t, 6, 32)
}
