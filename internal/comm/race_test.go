package comm

import (
	"sync"
	"testing"
)

// TestMeterConcurrentCharges hammers one Meter from many goroutines —
// the pattern concurrent experiment cells would produce if they ever
// shared a meter — and checks the totals. Run under -race this is the
// gate for the meter's lock discipline.
func TestMeterConcurrentCharges(t *testing.T) {
	m := NewMeter()
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		kind := "state"
		if g%2 == 1 {
			kind = "model"
		}
		go func(kind string) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Charge(kind, 3)
				_ = m.TotalBytes()
				_ = m.BytesFor(kind)
			}
		}(kind)
	}
	wg.Wait()
	if got := m.TotalBytes(); got != goroutines*each*3 {
		t.Fatalf("TotalBytes = %d want %d", got, goroutines*each*3)
	}
	if m.OpsFor("state") != goroutines/2*each || m.OpsFor("model") != goroutines/2*each {
		t.Fatalf("ops split wrong: %d/%d", m.OpsFor("state"), m.OpsFor("model"))
	}
	if kinds := m.Kinds(); len(kinds) != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
}

// TestClustersConcurrently runs independent clusters (the per-sweep-cell
// topology) in parallel, each doing metered AllReduces, verifying cell
// isolation under the race detector.
func TestClustersConcurrently(t *testing.T) {
	const cells = 6
	var wg sync.WaitGroup
	wg.Add(cells)
	totals := make([]int64, cells)
	for c := 0; c < cells; c++ {
		go func(c int) {
			defer wg.Done()
			cl := NewCluster(3)
			for i := 0; i < 20; i++ {
				vecs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
				cl.AllReduce("model", vecs)
			}
			totals[c] = cl.Meter().TotalBytes()
		}(c)
	}
	wg.Wait()
	for c := 1; c < cells; c++ {
		if totals[c] != totals[0] {
			t.Fatalf("cell %d metered %d, cell 0 metered %d", c, totals[c], totals[0])
		}
	}
}
