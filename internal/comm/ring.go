package comm

import "sync"

// ringAllReduce performs an in-place averaging AllReduce across the K
// vectors using the classic two-phase ring algorithm (reduce-scatter then
// all-gather), with one goroutine per simulated worker and buffered
// channels as links. It exists to demonstrate and test that the simulated
// collective matches a real distributed implementation; the sequential
// path in Cluster.AllReduce is numerically equivalent (up to FP rounding
// order) and is the default for speed.
func ringAllReduce(vecs [][]float64) {
	k := len(vecs)
	if k == 1 {
		return
	}
	n := len(vecs[0])

	// Partition indices into k chunks.
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	chunk := func(v []float64, c int) []float64 {
		c = ((c % k) + k) % k
		return v[bounds[c]:bounds[c+1]]
	}

	// links[i] carries messages from worker i to worker (i+1)%k.
	links := make([]chan []float64, k)
	for i := range links {
		links[i] = make(chan []float64, 1)
	}

	var wg sync.WaitGroup
	wg.Add(k)
	for w := 0; w < k; w++ {
		go func(w int) {
			defer wg.Done()
			prev := links[(w-1+k)%k]
			next := links[w]

			// Reduce-scatter: after k−1 rounds worker w holds the full sum
			// for chunk (w+1) mod k.
			for r := 0; r < k-1; r++ {
				sendIdx := w - r
				out := chunk(vecs[w], sendIdx)
				buf := make([]float64, len(out))
				copy(buf, out)
				next <- buf
				in := <-prev
				recvIdx := w - r - 1
				dst := chunk(vecs[w], recvIdx)
				for i := range dst {
					dst[i] += in[i]
				}
			}
			// Average the owned chunk before gathering.
			owned := chunk(vecs[w], w+1)
			inv := 1 / float64(k)
			for i := range owned {
				owned[i] *= inv
			}
			// All-gather: circulate the finished chunks.
			for r := 0; r < k-1; r++ {
				sendIdx := w + 1 - r
				out := chunk(vecs[w], sendIdx)
				buf := make([]float64, len(out))
				copy(buf, out)
				next <- buf
				in := <-prev
				recvIdx := w - r
				copy(chunk(vecs[w], recvIdx), in)
			}
		}(w)
	}
	wg.Wait()
}
