package comm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestCostModelNaive(t *testing.T) {
	cm := CostModel{BytesPerParam: 4, Ring: false}
	if got := cm.PerWorkerBytes(100, 8); got != 400 {
		t.Fatalf("naive per-worker = %d", got)
	}
	if got := cm.TotalBytes(100, 8); got != 3200 {
		t.Fatalf("naive total = %d", got)
	}
}

func TestCostModelRing(t *testing.T) {
	cm := DefaultCostModel()
	// K=4, n=100: per worker 2*(3/4)*400 = 600 bytes.
	if got := cm.PerWorkerBytes(100, 4); got != 600 {
		t.Fatalf("ring per-worker = %d", got)
	}
	if got := cm.TotalBytes(100, 4); got != 2400 {
		t.Fatalf("ring total = %d", got)
	}
	// Single worker communicates the payload under either model.
	if got := cm.PerWorkerBytes(100, 1); got != 400 {
		t.Fatalf("K=1 per-worker = %d", got)
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.Charge("state", 10)
	m.Charge("state", 5)
	m.Charge("model", 100)
	if m.TotalBytes() != 115 {
		t.Fatalf("total = %d", m.TotalBytes())
	}
	if m.BytesFor("state") != 15 || m.OpsFor("state") != 2 {
		t.Fatalf("state = %d bytes %d ops", m.BytesFor("state"), m.OpsFor("state"))
	}
	kinds := m.Kinds()
	if len(kinds) != 2 || kinds[0] != "model" || kinds[1] != "state" {
		t.Fatalf("kinds = %v", kinds)
	}
	m.Reset()
	if m.TotalBytes() != 0 {
		t.Fatal("reset failed")
	}
}

func makeVecs(k, n int, seed uint64) [][]float64 {
	rng := tensor.NewRNG(seed)
	vecs := make([][]float64, k)
	for i := range vecs {
		vecs[i] = make([]float64, n)
		tensor.Normal(rng, vecs[i], 0, 1)
	}
	return vecs
}

func TestAllReduceAverageInPlace(t *testing.T) {
	c := NewCluster(4)
	vecs := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	c.AllReduce("model", vecs)
	for i, v := range vecs {
		if v[0] != 4 || v[1] != 5 {
			t.Fatalf("worker %d has %v want [4 5]", i, v)
		}
	}
	// Cost: ring, n=2, K=4: total = 4 * 2*(3/4)*8 = 48 bytes.
	if got := c.Meter().BytesFor("model"); got != 48 {
		t.Fatalf("charged %d bytes", got)
	}
}

func TestAllReduceMeanLeavesInputs(t *testing.T) {
	c := NewCluster(2)
	vecs := [][]float64{{2, 4}, {6, 8}}
	dst := make([]float64, 2)
	c.AllReduceMean("state", dst, vecs)
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("mean = %v", dst)
	}
	if vecs[0][0] != 2 || vecs[1][1] != 8 {
		t.Fatal("inputs were mutated")
	}
	if c.Meter().OpsFor("state") != 1 {
		t.Fatal("op not metered")
	}
}

func TestAllReduceScalars(t *testing.T) {
	c := NewCluster(3)
	got := c.AllReduceScalars("norm", []float64{1, 2, 6})
	if got != 3 {
		t.Fatalf("scalar mean = %v", got)
	}
}

func TestAllReduceValidation(t *testing.T) {
	c := NewCluster(2)
	for _, f := range []func(){
		func() { c.AllReduce("x", [][]float64{{1}}) },
		func() { c.AllReduce("x", [][]float64{{1}, {1, 2}}) },
		func() { c.AllReduceScalars("x", []float64{1}) },
		func() { NewCluster(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRingAllReduceMatchesSequential(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{1, 2, 7, 64, 129} {
			ref := makeVecs(k, n, uint64(k*1000+n))
			conc := make([][]float64, k)
			for i := range ref {
				conc[i] = tensor.Clone(ref[i])
			}
			mean := make([]float64, n)
			tensor.Mean(mean, ref...)
			ringAllReduce(conc)
			for w := 0; w < k; w++ {
				for i := 0; i < n; i++ {
					if math.Abs(conc[w][i]-mean[i]) > 1e-9 {
						t.Fatalf("K=%d n=%d worker %d idx %d: ring %v mean %v",
							k, n, w, i, conc[w][i], mean[i])
					}
				}
			}
		}
	}
}

func TestConcurrentClusterMatchesSequential(t *testing.T) {
	seq := NewCluster(5)
	conc := NewCluster(5)
	conc.Concurrent = true
	a := makeVecs(5, 40, 7)
	b := make([][]float64, 5)
	for i := range a {
		b[i] = tensor.Clone(a[i])
	}
	seq.AllReduce("model", a)
	conc.AllReduce("model", b)
	for w := range a {
		for i := range a[w] {
			if math.Abs(a[w][i]-b[w][i]) > 1e-9 {
				t.Fatalf("worker %d idx %d: %v vs %v", w, i, a[w][i], b[w][i])
			}
		}
	}
	if seq.Meter().TotalBytes() != conc.Meter().TotalBytes() {
		t.Fatal("cost accounting differs between implementations")
	}
}

// Property: AllReduce leaves all workers with identical vectors whose
// value equals the arithmetic mean of the inputs.
func TestAllReduceProperty(t *testing.T) {
	f := func(kRaw, nRaw uint8, seed uint16) bool {
		k := int(kRaw%6) + 1
		n := int(nRaw%50) + 1
		vecs := makeVecs(k, n, uint64(seed))
		want := make([]float64, n)
		tensor.Mean(want, vecs...)
		c := NewCluster(k)
		c.AllReduce("m", vecs)
		for _, v := range vecs {
			for i := range v {
				if math.Abs(v[i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkProfileCommTime(t *testing.T) {
	m := NewMeter()
	m.Charge("model", 1e9) // 1 GB = 8e9 bits
	tFL := ProfileFL.CommTime(m)
	tHPC := ProfileHPC.CommTime(m)
	if tFL <= tHPC {
		t.Fatalf("FL time %v should exceed HPC time %v", tFL, tHPC)
	}
	// 8e9 bits / 0.5e9 bps = 16 s plus latency.
	if math.Abs(tFL-16.02) > 0.1 {
		t.Fatalf("FL time = %v want ≈ 16.02", tFL)
	}
}

func TestProfilesOrdering(t *testing.T) {
	if !(ProfileFL.BandwidthBps < ProfileBalanced.BandwidthBps &&
		ProfileBalanced.BandwidthBps < ProfileHPC.BandwidthBps) {
		t.Fatal("profile bandwidth ordering broken")
	}
}
