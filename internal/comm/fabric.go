package comm

// Fabric is the pluggable communication backend a training cluster runs
// on. The training loop is written once against this interface and must
// behave bit-identically on every implementation: a fabric moves vectors
// and accounts costs, it never changes arithmetic. Three backends exist:
//
//   - Cluster: the in-process reference (sequential mean or goroutine
//     ring), the default and the specification of the collective
//     semantics;
//   - SimFabric: the reference math plus a deterministic virtual clock
//     driven by per-link bandwidth/latency profiles and straggler
//     injection, so runs report estimated wall-clock time-to-accuracy;
//   - TCPFabric: a real socket backend speaking the length-prefixed,
//     CRC-checked frame protocol of wire.go through a coordinator, used
//     by multi-process distributed training (`fdarun -worker`).
//
// Determinism contract (DESIGN.md §9): every reduction is computed from
// the K contributions in global rank order with the same kernels
// (tensor.Mean and friends) on every backend. Distributed backends
// achieve this by exchanging raw payloads — every process ends up
// holding all K contributions and computes the reduction locally,
// exactly as the in-process reference does. Only cost and time
// accounting may differ between backends; a CostReport's charged bytes
// may not.
//
// A fabric is driven by one training goroutine per process; collectives
// are blocking and must be issued in the same order by every process of
// a distributed cluster (the replicated training loop guarantees this).
type Fabric interface {
	// K is the global cluster size.
	K() int
	// Ranks lists the global worker ranks driven by this process, in
	// ascending order. The in-process fabrics own all of 0..K-1; a
	// TCPFabric owns exactly one.
	Ranks() []int
	// AllReduce averages the K equal-length vectors in place — local
	// contributions are given in Ranks() order — and charges the
	// operation to the meter under kind.
	AllReduce(kind string, local [][]float64) CostReport
	// AllReduceMean averages the contributions into dst without
	// modifying them, charging like AllReduce.
	AllReduceMean(kind string, dst []float64, local [][]float64) CostReport
	// Broadcast overwrites every worker's vector with global rank root's,
	// charging kind under the naive model (root uploads one payload per
	// peer: (K−1)·payload total).
	Broadcast(kind string, root int, local [][]float64) CostReport
	// Gather returns all K workers' vectors in global rank order,
	// uncharged (measurement and evaluation only — the deployed
	// algorithm never calls it). The returned slices are valid until the
	// next fabric operation; in-process fabrics return the contributions
	// themselves.
	Gather(local [][]float64) [][]float64
	// ExchangeBytes moves one opaque payload per local rank and returns
	// all K payloads in global rank order. The socket fabric frames them
	// for real (this is how codec-compressed drifts travel); in-process
	// fabrics hand the contributions back directly. Uncharged — callers
	// account wire costs under their own model.
	ExchangeBytes(kind string, local [][]byte) [][]byte
	// Meter returns the fabric's cost meter.
	Meter() *Meter
	// Cost returns the fabric's byte-accounting model.
	Cost() CostModel
	// Close releases fabric resources (network connections); in-process
	// fabrics are no-ops. The fabric is unusable afterwards.
	Close() error
}

// CostReport is the accounting of one collective operation. Charged
// bytes follow the fabric's CostModel and are identical across backends
// for the same operation sequence; WireBytes and Seconds are
// backend-specific observations.
type CostReport struct {
	// Elements is the reduced vector length.
	Elements int
	// PerWorker is the charged bytes one worker transmits for the op.
	PerWorker int64
	// Bytes is the charged cluster-total wire bytes (what the meter
	// accumulated).
	Bytes int64
	// WireBytes is the actual framed bytes this process moved on a
	// socket fabric (0 in-process). Diagnostic only; never charged.
	WireBytes int64
	// Seconds is the operation's duration: virtual on SimFabric,
	// measured on TCPFabric, 0 on the in-process reference.
	Seconds float64
}

// VirtualClocker is implemented by fabrics that model time (SimFabric).
// VirtualTime returns the deterministic virtual seconds elapsed since
// the fabric was built.
type VirtualClocker interface {
	VirtualTime() float64
	// SetVirtualTime rewinds or advances the clock (checkpoint restore).
	SetVirtualTime(sec float64)
}

// StepTimer is implemented by fabrics that charge per-step computation
// time to their clock; the session calls StepDone once per completed
// global step t (1-based).
type StepTimer interface {
	StepDone(t int)
}

// TransferTimer is implemented by fabrics whose clock should advance
// for custom-charged transfers — codec-compressed synchronizations
// bypass the collective cost model and charge the meter directly, so
// they report their per-worker wire bytes here. Returns the modeled
// seconds.
type TransferTimer interface {
	TransferDone(perWorkerBytes int64) float64
}

// allRanks returns 0..k-1 (the Ranks of an in-process fabric).
func allRanks(k int) []int {
	r := make([]int, k)
	for i := range r {
		r[i] = i
	}
	return r
}
