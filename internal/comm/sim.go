package comm

import (
	"fmt"
	"sort"
)

// LinkProfile models one worker's attachment to the network plus its
// relative compute speed. Zero-valued fields take the scenario defaults
// (see Scenario.link).
type LinkProfile struct {
	// BandwidthBps is the link's usable bandwidth in bits per second.
	BandwidthBps float64
	// LatencySec is the fixed per-collective overhead on this link.
	LatencySec float64
	// ComputeMult scales the scenario's per-step compute time for this
	// worker (1 = nominal, 2 = half speed). Zero means 1.
	ComputeMult float64
}

// Scenario describes a heterogeneous deployment for the simulated
// fabric: who is attached how, how long a local step takes, and an
// optional deterministic straggler schedule. Scenarios are pure data —
// two SimFabrics built from equal scenarios tick identically.
type Scenario struct {
	// Name identifies the scenario in experiment records and specs.
	Name string
	// Links are the per-rank profiles; rank r uses Links[r % len(Links)],
	// so a single entry describes a homogeneous cluster. Empty means one
	// Balanced-profile link for everyone.
	Links []LinkProfile
	// ComputeSecPerStep is the nominal local-step compute time.
	ComputeSecPerStep float64
	// StragglerEvery injects a deterministic straggler: every such steps
	// (t % StragglerEvery == 0), rank StragglerRank's compute time is
	// multiplied by StragglerFactor. Zero disables injection.
	StragglerEvery  int
	StragglerRank   int
	StragglerFactor float64
}

// link returns rank r's effective profile with defaults applied.
func (s Scenario) link(r int) LinkProfile {
	p := LinkProfile{BandwidthBps: ProfileBalanced.BandwidthBps, LatencySec: ProfileBalanced.LatencySec}
	if len(s.Links) > 0 {
		p = s.Links[r%len(s.Links)]
	}
	if p.BandwidthBps <= 0 {
		p.BandwidthBps = ProfileBalanced.BandwidthBps
	}
	if p.LatencySec < 0 {
		p.LatencySec = 0
	}
	if p.ComputeMult <= 0 {
		p.ComputeMult = 1
	}
	return p
}

// Canned scenarios for the network sweeps (experiments' netsweep grid
// and the fda facade). Compute times are nominal per-step costs at the
// reproduction's model scale.
var (
	// ScenarioLAN is a homogeneous datacenter cluster: fast uniform
	// links, no stragglers.
	ScenarioLAN = Scenario{
		Name:              "lan",
		Links:             []LinkProfile{{BandwidthBps: 10e9, LatencySec: 1e-3}},
		ComputeSecPerStep: 0.05,
	}
	// ScenarioFedWAN is a federated deployment: half the cohort on slow
	// high-latency home links, half on fiber.
	ScenarioFedWAN = Scenario{
		Name: "fedwan",
		Links: []LinkProfile{
			{BandwidthBps: 100e6, LatencySec: 40e-3, ComputeMult: 1.5},
			{BandwidthBps: 1e9, LatencySec: 10e-3},
		},
		ComputeSecPerStep: 0.05,
	}
	// ScenarioStraggler is a LAN cluster where one worker periodically
	// stalls (GC pause, shared tenancy) to 8× its nominal step time.
	ScenarioStraggler = Scenario{
		Name:              "straggler",
		Links:             []LinkProfile{{BandwidthBps: 10e9, LatencySec: 1e-3}},
		ComputeSecPerStep: 0.05,
		StragglerEvery:    5,
		StragglerRank:     0,
		StragglerFactor:   8,
	}
)

// Scenarios returns the canned scenarios keyed by name.
func Scenarios() map[string]Scenario {
	return map[string]Scenario{
		ScenarioLAN.Name:       ScenarioLAN,
		ScenarioFedWAN.Name:    ScenarioFedWAN,
		ScenarioStraggler.Name: ScenarioStraggler,
	}
}

// ScenarioByName fetches a canned scenario.
func ScenarioByName(name string) (Scenario, error) {
	if s, ok := Scenarios()[name]; ok {
		return s, nil
	}
	names := make([]string, 0, 3)
	//fda:allow(detmap, key collection is sorted before use; error-path only)
	for n := range Scenarios() {
		names = append(names, n)
	}
	sort.Strings(names)
	return Scenario{}, fmt.Errorf("comm: unknown network scenario %q (have %v)", name, names)
}

// SimFabric is the simulated-network backend: the in-process reference
// math (it embeds a Cluster, so reductions and charged bytes are
// bit-identical to it) plus a deterministic virtual clock. Collectives
// advance the clock by the slowest link's transfer time — a synchronous
// collective is gated by its worst participant — and StepDone advances
// it by the slowest worker's compute time, with the scenario's
// deterministic straggler schedule applied. The clock is a pure
// function of the (scenario, operation sequence) pair; training math is
// untouched.
type SimFabric struct {
	*Cluster
	scen  Scenario
	clock float64
	// linkTime[r] caches rank r's per-byte seconds and latency.
	perByteSec []float64
	latency    []float64
	compute    []float64
}

// NewSimFabric builds a simulated fabric over k workers charging under
// cm and ticking under scen.
func NewSimFabric(k int, cm CostModel, scen Scenario) *SimFabric {
	f := &SimFabric{
		Cluster:    NewClusterWithCost(k, cm),
		scen:       scen,
		perByteSec: make([]float64, k),
		latency:    make([]float64, k),
		compute:    make([]float64, k),
	}
	for r := 0; r < k; r++ {
		p := scen.link(r)
		f.perByteSec[r] = 8 / p.BandwidthBps
		f.latency[r] = p.LatencySec
		f.compute[r] = scen.ComputeSecPerStep * p.ComputeMult
	}
	return f
}

// Scenario returns the fabric's scenario.
func (f *SimFabric) Scenario() Scenario { return f.scen }

// VirtualTime implements VirtualClocker.
func (f *SimFabric) VirtualTime() float64 { return f.clock }

// SetVirtualTime implements VirtualClocker (checkpoint restore).
func (f *SimFabric) SetVirtualTime(sec float64) { f.clock = sec }

// StepDone implements StepTimer: one lock-step global step completed;
// the cluster waits for its slowest worker.
func (f *SimFabric) StepDone(t int) {
	var worst float64
	for r, c := range f.compute {
		if f.scen.StragglerEvery > 0 && t%f.scen.StragglerEvery == 0 && r == f.scen.StragglerRank {
			c *= f.scen.StragglerFactor
		}
		if c > worst {
			worst = c
		}
	}
	f.clock += worst
}

// TransferDone implements TransferTimer: a custom-charged transfer
// (compressed synchronization) moving perWorker bytes on every link.
func (f *SimFabric) TransferDone(perWorker int64) float64 {
	s := f.collectiveSeconds(perWorker)
	f.clock += s
	return s
}

// collectiveSeconds models one collective moving perWorker bytes on
// every link: the barrier completes when the slowest link does.
func (f *SimFabric) collectiveSeconds(perWorker int64) float64 {
	var worst float64
	for r := range f.perByteSec {
		t := f.latency[r] + float64(perWorker)*f.perByteSec[r]
		if t > worst {
			worst = t
		}
	}
	return worst
}

// tick advances the clock for a charged collective and stamps the
// report.
func (f *SimFabric) tick(rep CostReport) CostReport {
	rep.Seconds = f.collectiveSeconds(rep.PerWorker)
	f.clock += rep.Seconds
	return rep
}

// AllReduce implements Fabric: reference math, then clock advance. The
// span wraps the span-free reference body so one traced event carries
// the op's charged bytes and simulated seconds.
func (f *SimFabric) AllReduce(kind string, vecs [][]float64) CostReport {
	sp := startOp("AllReduce")
	rep := f.tick(f.Cluster.allReduce(kind, vecs))
	endOp(sp, kind, rep)
	return rep
}

// AllReduceMean implements Fabric.
func (f *SimFabric) AllReduceMean(kind string, dst []float64, vecs [][]float64) CostReport {
	sp := startOp("AllReduceMean")
	rep := f.tick(f.Cluster.allReduceMean(kind, dst, vecs))
	endOp(sp, kind, rep)
	return rep
}

// Broadcast implements Fabric.
func (f *SimFabric) Broadcast(kind string, root int, vecs [][]float64) CostReport {
	sp := startOp("Broadcast")
	rep := f.tick(f.Cluster.broadcast(kind, root, vecs))
	endOp(sp, kind, rep)
	return rep
}
