package comm

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
)

// Coordinator is the rendezvous point and relay of a TCP-fabric
// cluster. It accepts exactly K worker connections, assigns global
// ranks in connection order, hands every worker the job payload, and
// then relays collectives: each round it reads one contribution frame
// per worker, verifies they agree on (sequence, kind), concatenates the
// payloads in rank order into a bundle and broadcasts it. The
// coordinator performs no arithmetic — reductions are replicated on the
// workers — so it cannot perturb training math, only move bytes.
//
// The run ends when every worker sends its result frame; Serve returns
// the K result payloads in rank order.
type Coordinator struct {
	ln net.Listener
	k  int

	mu        sync.Mutex
	rounds    int64
	wireBytes int64
}

// ListenCoordinator starts a coordinator for k workers on addr
// (host:port; ":0" picks an ephemeral port — see Addr).
func ListenCoordinator(addr string, k int) (*Coordinator, error) {
	if k <= 0 {
		return nil, fmt.Errorf("comm: coordinator for %d workers", k)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: coordinator listen %s: %w", addr, err)
	}
	return &Coordinator{ln: ln, k: k}, nil
}

// Addr returns the coordinator's bound address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops listening and aborts a Serve in progress.
func (c *Coordinator) Close() error { return c.ln.Close() }

// Stats reports relay totals: completed collective rounds and payload
// bytes moved through the coordinator (both directions).
func (c *Coordinator) Stats() (rounds, wireBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds, c.wireBytes
}

func (c *Coordinator) addStats(rounds, bytes int64) {
	c.mu.Lock()
	c.rounds += rounds
	c.wireBytes += bytes
	c.mu.Unlock()
}

// conn bundles one worker connection's buffered streams.
type coordConn struct {
	raw net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
}

// Serve runs one complete distributed session: rendezvous, relay,
// result collection. job is the opaque payload delivered to every
// worker at assignment (the serialized training spec). Serve blocks
// until all workers finished or the context is cancelled (which closes
// every connection, unblocking the workers with transport errors).
func (c *Coordinator) Serve(ctx context.Context, job []byte) (results [][]byte, err error) {
	// registered holds connections as the rendezvous admits them, guarded
	// by c.mu because the cancellation watcher below closes them
	// concurrently to unblock relay reads.
	registered := make([]*coordConn, 0, c.k)
	register := func(cc *coordConn) {
		c.mu.Lock()
		registered = append(registered, cc)
		c.mu.Unlock()
	}
	closeAll := func() {
		c.mu.Lock()
		for _, cc := range registered {
			cc.raw.Close()
		}
		c.mu.Unlock()
	}
	defer closeAll()

	// Cancellation support: closing the listener unblocks Accept; closing
	// the connections unblocks relay reads.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			c.ln.Close()
			closeAll()
		case <-done:
		}
	}()

	// Rendezvous: accept K workers, assign ranks in connection order.
	conns := make([]*coordConn, 0, c.k)
	for rank := 0; rank < c.k; rank++ {
		raw, aerr := c.ln.Accept()
		if aerr != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("comm: coordinator accept (have %d of %d workers): %w", rank, c.k, aerr)
		}
		cc := &coordConn{raw: raw, br: bufio.NewReaderSize(raw, 1<<16), bw: bufio.NewWriterSize(raw, 1<<16)}
		register(cc)
		fr, buf, rerr := readFrame(cc.br, nil)
		cc.buf = buf
		if rerr != nil {
			return nil, fmt.Errorf("comm: worker %d handshake: %w", rank, rerr)
		}
		if fr.op != opHello {
			return nil, fmt.Errorf("comm: worker %d sent op=%d, want hello", rank, fr.op)
		}
		assign := make([]byte, 0, 4+len(job))
		assign = append(assign, byte(c.k), byte(c.k>>8), byte(c.k>>16), byte(c.k>>24))
		assign = append(assign, job...)
		if werr := writeFrame(cc.bw, frame{op: opAssign, rank: int32(rank), payload: assign}); werr != nil {
			return nil, fmt.Errorf("comm: assigning rank %d: %w", rank, werr)
		}
		conns = append(conns, cc)
	}

	// Relay loop. Workers run a replicated deterministic control flow, so
	// each round every connection yields either a contribution for the
	// same (seq, kind) or — on the final round — a result frame.
	results = make([][]byte, c.k)
	parts := make([][]byte, c.k)
	var bundle []byte
	for {
		var seq uint32
		var kind string
		var op byte
		var roundBytes int64
		for rank, cc := range conns {
			fr, buf, rerr := readFrame(cc.br, cc.buf)
			cc.buf = buf
			if rerr != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				c.broadcastError(conns, fmt.Sprintf("worker %d failed: %v", rank, rerr))
				return nil, fmt.Errorf("comm: reading worker %d: %w", rank, rerr)
			}
			if rank == 0 {
				op, seq, kind = fr.op, fr.seq, fr.kind
			} else if fr.op != op || fr.seq != seq || (op == opContrib && fr.kind != kind) {
				c.broadcastError(conns, "cluster desynchronized")
				return nil, fmt.Errorf("comm: cluster desync: worker %d sent op=%d seq=%d kind=%q, worker 0 sent op=%d seq=%d kind=%q",
					rank, fr.op, fr.seq, fr.kind, op, seq, kind)
			}
			switch fr.op {
			case opContrib:
				// The frame's payload view lives in cc.buf, which the next
				// readFrame on this conn would clobber — but each conn is
				// read once per round, so the views stay valid until the
				// bundle is assembled below.
				parts[rank] = fr.payload
				roundBytes += int64(len(fr.payload))
			case opResult:
				results[rank] = append([]byte(nil), fr.payload...)
			default:
				c.broadcastError(conns, "unexpected frame")
				return nil, fmt.Errorf("comm: worker %d sent unexpected op=%d", rank, fr.op)
			}
		}
		switch op {
		case opResult:
			for _, cc := range conns {
				if werr := writeFrame(cc.bw, frame{op: opDone, seq: seq}); werr != nil {
					return nil, fmt.Errorf("comm: acknowledging results: %w", werr)
				}
			}
			return results, nil
		case opContrib:
			bundle = appendBundle(bundle[:0], parts)
			for rank, cc := range conns {
				if werr := writeFrame(cc.bw, frame{op: opBundle, rank: int32(rank), seq: seq, kind: kind, payload: bundle}); werr != nil {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					return nil, fmt.Errorf("comm: broadcasting bundle to worker %d: %w", rank, werr)
				}
			}
			c.addStats(1, roundBytes+int64(len(bundle))*int64(c.k))
		}
	}
}

// broadcastError best-effort notifies every worker before aborting.
func (c *Coordinator) broadcastError(conns []*coordConn, msg string) {
	for _, cc := range conns {
		_ = writeFrame(cc.bw, frame{op: opError, payload: []byte(msg)})
	}
}
