package tensor

import (
	"math"
	"testing"
)

// randVec fills deterministic pseudo-random test vectors across a range of
// magnitudes so reduction-order differences would show up as bit changes.
func randVec(rng *RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7))-3)
	}
	return v
}

// kernelLens exercises every unroll remainder (0..3) and the empty vector.
var kernelLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 64, 257, 1000}

// scalarDot is the pre-kernel reference: strict left-to-right products.
func scalarDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestDotMatchesScalarReferenceExactly(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range kernelLens {
		a, b := randVec(rng, n), randVec(rng, n)
		if got, want := Dot(a, b), scalarDot(a, b); got != want {
			t.Fatalf("n=%d: Dot=%v scalar=%v (order changed)", n, got, want)
		}
	}
}

func TestSquaredNormMatchesScalarReferenceExactly(t *testing.T) {
	rng := NewRNG(12)
	for _, n := range kernelLens {
		v := randVec(rng, n)
		var want float64
		for _, x := range v {
			want += x * x
		}
		if got := SquaredNorm(v); got != want {
			t.Fatalf("n=%d: SquaredNorm=%v scalar=%v", n, got, want)
		}
	}
}

func TestAXPYMatchesScalarReferenceExactly(t *testing.T) {
	rng := NewRNG(13)
	for _, n := range kernelLens {
		x, y := randVec(rng, n), randVec(rng, n)
		want := Clone(y)
		for i := range want {
			want[i] += 0.37 * x[i]
		}
		AXPY(0.37, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d i=%d: AXPY=%v scalar=%v", n, i, y[i], want[i])
			}
		}
	}
}

func TestSubThenSquaredNormFusesExactly(t *testing.T) {
	rng := NewRNG(14)
	for _, n := range kernelLens {
		a, b := randVec(rng, n), randVec(rng, n)
		ref := make([]float64, n)
		Sub(ref, a, b)
		want := scalarDot(ref, ref)
		dst := make([]float64, n)
		got := SubThenSquaredNorm(dst, a, b)
		if got != want {
			t.Fatalf("n=%d: fused norm %v != reference %v", n, got, want)
		}
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("n=%d i=%d: fused diff %v != %v", n, i, dst[i], ref[i])
			}
		}
	}
}

func TestSubThenSquaredNormAliasing(t *testing.T) {
	a := []float64{5, 4, 3, 2, 1}
	b := []float64{1, 1, 1, 1, 1}
	want := SubThenSquaredNorm(make([]float64, 5), a, b)
	got := SubThenSquaredNorm(a, a, b) // dst aliases a
	if got != want {
		t.Fatalf("aliased norm %v != %v", got, want)
	}
	for i, x := range []float64{4, 3, 2, 1, 0} {
		if a[i] != x {
			t.Fatalf("aliased dst[%d] = %v, want %v", i, a[i], x)
		}
	}
}

func TestAXPYTo(t *testing.T) {
	rng := NewRNG(15)
	for _, n := range kernelLens {
		x, y := randVec(rng, n), randVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + 2.5*x[i]
		}
		dst := make([]float64, n)
		AXPYTo(dst, 2.5, x, y)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d i=%d: AXPYTo=%v want %v", n, i, dst[i], want[i])
			}
		}
		// Aliasing dst with y must match AXPY.
		y2 := Clone(y)
		AXPY(2.5, x, y2)
		AXPYTo(y, 2.5, x, y)
		for i := range y {
			if y[i] != y2[i] {
				t.Fatalf("n=%d i=%d: aliased AXPYTo=%v AXPY=%v", n, i, y[i], y2[i])
			}
		}
	}
}

func TestScaleAdd(t *testing.T) {
	rng := NewRNG(16)
	for _, n := range kernelLens {
		v, x := randVec(rng, n), randVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = 0.9*v[i] + x[i]
		}
		ScaleAdd(v, 0.9, x)
		for i := range v {
			if v[i] != want[i] {
				t.Fatalf("n=%d i=%d: ScaleAdd=%v want %v", n, i, v[i], want[i])
			}
		}
	}
}

func TestSumMatchesScalarReferenceExactly(t *testing.T) {
	rng := NewRNG(17)
	for _, n := range kernelLens {
		v := randVec(rng, n)
		var want float64
		for _, x := range v {
			want += x
		}
		if got := Sum(v); got != want {
			t.Fatalf("n=%d: Sum=%v scalar=%v", n, got, want)
		}
	}
}

func TestAccumulateMatchesScalarReferenceExactly(t *testing.T) {
	rng := NewRNG(18)
	for _, n := range kernelLens {
		dst, src := randVec(rng, n), randVec(rng, n)
		want := Clone(dst)
		for i := range want {
			want[i] += src[i]
		}
		Accumulate(dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d i=%d: Accumulate=%v want %v", n, i, dst[i], want[i])
			}
		}
	}
}

// TestAXPY4MatchesSequentialAXPYsExactly pins the quad-tap kernel's
// per-element chaining: it must equal four sequential AXPY calls bit for
// bit, which is what carries the conv forward's bit-identity argument.
func TestAXPY4MatchesSequentialAXPYsExactly(t *testing.T) {
	rng := NewRNG(21)
	alphas := [4]float64{0.7, -1.3, 0.02, 5.5}
	for _, n := range kernelLens {
		xs := make([][]float64, 4)
		for i := range xs {
			xs[i] = randVec(rng, n)
		}
		y := randVec(rng, n)
		want := Clone(y)
		for q := 0; q < 4; q++ {
			AXPY(alphas[q], xs[q], want)
		}
		AXPY4(alphas[0], alphas[1], alphas[2], alphas[3], xs[0], xs[1], xs[2], xs[3], y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d i=%d: AXPY4=%v sequential=%v", n, i, y[i], want[i])
			}
		}
	}
}

func TestAXPY4x2MatchesTwoAXPY4Exactly(t *testing.T) {
	rng := NewRNG(22)
	a := [4]float64{0.3, -0.9, 2.1, -0.01}
	b := [4]float64{1.7, 0.4, -3.2, 0.08}
	for _, n := range kernelLens {
		xs := make([][]float64, 4)
		for i := range xs {
			xs[i] = randVec(rng, n)
		}
		ya, yb := randVec(rng, n), randVec(rng, n)
		wantA, wantB := Clone(ya), Clone(yb)
		AXPY4(a[0], a[1], a[2], a[3], xs[0], xs[1], xs[2], xs[3], wantA)
		AXPY4(b[0], b[1], b[2], b[3], xs[0], xs[1], xs[2], xs[3], wantB)
		AXPY4x2(a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3],
			xs[0], xs[1], xs[2], xs[3], ya, yb)
		for i := range ya {
			if ya[i] != wantA[i] || yb[i] != wantB[i] {
				t.Fatalf("n=%d i=%d: AXPY4x2=(%v,%v) AXPY4=(%v,%v)",
					n, i, ya[i], yb[i], wantA[i], wantB[i])
			}
		}
	}
}

func TestDot4MatchesSeparateDotsExactly(t *testing.T) {
	rng := NewRNG(23)
	for _, n := range kernelLens {
		a := randVec(rng, n)
		xs := make([][]float64, 4)
		for i := range xs {
			xs[i] = randVec(rng, n)
		}
		s0, s1, s2, s3 := Dot4(a, xs[0], xs[1], xs[2], xs[3])
		got := [4]float64{s0, s1, s2, s3}
		for q := 0; q < 4; q++ {
			if want := Dot(a, xs[q]); got[q] != want {
				t.Fatalf("n=%d q=%d: Dot4=%v Dot=%v", n, q, got[q], want)
			}
		}
	}
}

func TestDot4x2MatchesSeparateDotsExactly(t *testing.T) {
	rng := NewRNG(24)
	for _, n := range kernelLens {
		a, b := randVec(rng, n), randVec(rng, n)
		xs := make([][]float64, 4)
		for i := range xs {
			xs[i] = randVec(rng, n)
		}
		s0, s1, s2, s3, t0, t1, t2, t3 := Dot4x2(a, b, xs[0], xs[1], xs[2], xs[3])
		gotS := [4]float64{s0, s1, s2, s3}
		gotT := [4]float64{t0, t1, t2, t3}
		for q := 0; q < 4; q++ {
			if want := Dot(a, xs[q]); gotS[q] != want {
				t.Fatalf("n=%d q=%d: Dot4x2 a-row=%v Dot=%v", n, q, gotS[q], want)
			}
			if want := Dot(b, xs[q]); gotT[q] != want {
				t.Fatalf("n=%d q=%d: Dot4x2 b-row=%v Dot=%v", n, q, gotT[q], want)
			}
		}
	}
}

// TestBlockedMatMulMatchesNaiveExactly pins the blocked MatMul to the
// naive i-k-j triple loop bit for bit, including shapes that straddle the
// tile boundary and the zero-skip path.
func TestBlockedMatMulMatchesNaiveExactly(t *testing.T) {
	rng := NewRNG(19)
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {7, 5, 9},
		{3, 8, matMulTileJ - 1}, {3, 8, matMulTileJ}, {3, 8, matMulTileJ + 5},
		{4, 2, 2*matMulTileJ + 3},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := &Mat{Rows: m, Cols: k, Data: randVec(rng, m*k)}
		b := &Mat{Rows: k, Cols: n, Data: randVec(rng, k*n)}
		a.Data[0] = 0 // exercise the zero-skip branch
		want := NewMat(m, n)
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				av := a.At(i, kk)
				if av == 0 {
					continue
				}
				for j := 0; j < n; j++ {
					want.Data[i*n+j] += av * b.At(kk, j)
				}
			}
		}
		got := NewMat(m, n)
		MatMul(got, a, b)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: blocked[%d]=%v naive=%v", sh, i, got.Data[i], want.Data[i])
			}
		}
	}
}
