// Package tensor provides the numeric kernels used throughout the FDA
// reproduction: dense vector and matrix operations over float64 slices, a
// small deterministic random number generator, and the weight
// initialization schemes used by the paper's models (Glorot uniform and He
// normal).
//
// All training code in this repository is deterministic given a seed; the
// RNG here is a splitmix64 generator, chosen because it is tiny, fast,
// stateless to fork, and reproducible across platforms (no dependence on
// math/rand's global state or version-dependent stream).
package tensor

import "math"

// RNG is a deterministic splitmix64 pseudo-random number generator.
//
// The zero value is a valid generator seeded with 0; use NewRNG to seed.
// RNG is not safe for concurrent use; fork per-goroutine generators with
// Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's internal state. Together with SetState it
// lets checkpoints capture and replay the exact stream position, which is
// what makes a restored training session bit-identical to one that never
// stopped.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds (or fast-forwards) the generator to a state previously
// obtained from State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, which makes it suitable for giving
// each simulated worker its own stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform. Two uniforms are consumed per call; no state is cached so the
// stream stays easy to reason about when generators are split.
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
