package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	child := r.Split()
	// Parent and child should produce different streams.
	if r.Uint64() == child.Uint64() {
		t.Fatal("split stream coincides with parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
}

func TestFloat64MeanAndVariance(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Float64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %v", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(17)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	r := NewRNG(23)
	w := make([]float64, 5000)
	GlorotUniform(r, w, 100, 50)
	a := math.Sqrt(6.0 / 150.0)
	for _, x := range w {
		if x < -a || x > a {
			t.Fatalf("Glorot sample %v outside ±%v", x, a)
		}
	}
	// Should actually use most of the range.
	if MaxAbs(w) < 0.9*a {
		t.Fatalf("Glorot samples suspiciously concentrated: max %v of bound %v", MaxAbs(w), a)
	}
}

func TestHeNormalStd(t *testing.T) {
	r := NewRNG(29)
	w := make([]float64, 100000)
	HeNormal(r, w, 50)
	want := math.Sqrt(2.0 / 50.0)
	var sumSq float64
	for _, x := range w {
		sumSq += x * x
	}
	got := math.Sqrt(sumSq / float64(len(w)))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("He std = %v want ≈ %v", got, want)
	}
}

func TestUniformAndNormalFill(t *testing.T) {
	r := NewRNG(31)
	w := make([]float64, 1000)
	Uniform(r, w, -2, 3)
	for _, x := range w {
		if x < -2 || x >= 3 {
			t.Fatalf("Uniform sample %v outside [-2,3)", x)
		}
	}
	Normal(r, w, 10, 0.1)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum/1000-10) > 0.05 {
		t.Fatalf("Normal mean = %v want ≈ 10", sum/1000)
	}
}
