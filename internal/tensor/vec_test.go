package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestZeroAndFill(t *testing.T) {
	v := []float64{1, 2, 3}
	Zero(v)
	for i, x := range v {
		if x != 0 {
			t.Fatalf("Zero: v[%d] = %v", i, x)
		}
	}
	Fill(v, 2.5)
	for i, x := range v {
		if x != 2.5 {
			t.Fatalf("Fill: v[%d] = %v", i, x)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := []float64{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := make([]float64, 3)
	Add(dst, a, b)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Add[%d] = %v want %v", i, dst[i], want[i])
		}
	}
	Sub(dst, b, a)
	want = []float64{3, 3, 3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Sub[%d] = %v want %v", i, dst[i], want[i])
		}
	}
	Scale(dst, 2)
	for i := range dst {
		if dst[i] != 6 {
			t.Fatalf("Scale[%d] = %v want 6", i, dst[i])
		}
	}
}

func TestAddAliasing(t *testing.T) {
	a := []float64{1, 2}
	Add(a, a, a) // a = 2a in place
	if a[0] != 2 || a[1] != 4 {
		t.Fatalf("aliased Add got %v", a)
	}
}

func TestAXPY(t *testing.T) {
	x := []float64{1, 1, 1}
	y := []float64{1, 2, 3}
	AXPY(2, x, y)
	want := []float64{3, 4, 5}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY[%d] = %v want %v", i, y[i], want[i])
		}
	}
}

func TestDotAndNorms(t *testing.T) {
	a := []float64{3, 4}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v want 25", got)
	}
	if got := SquaredNorm(a); got != 25 {
		t.Fatalf("SquaredNorm = %v want 25", got)
	}
	if got := Norm(a); got != 5 {
		t.Fatalf("Norm = %v want 5", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if n != 5 {
		t.Fatalf("Normalize returned %v want 5", n)
	}
	if !almostEqual(Norm(v), 1, eps) {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 {
		t.Fatalf("Normalize(zero) = %v want 0", n)
	}
}

func TestMean(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	c := []float64{5, 6}
	dst := make([]float64, 2)
	Mean(dst, a, b, c)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Mean = %v", dst)
	}
}

func TestMeanSingleVectorAliased(t *testing.T) {
	a := []float64{2, 4}
	Mean(a, a)
	if a[0] != 2 || a[1] != 4 {
		t.Fatalf("Mean aliased single = %v", a)
	}
}

func TestArgMaxAndMaxAbs(t *testing.T) {
	v := []float64{-5, 2, 2, 1}
	if got := ArgMax(v); got != 1 {
		t.Fatalf("ArgMax = %d want 1 (first max)", got)
	}
	if got := MaxAbs(v); got != 5 {
		t.Fatalf("MaxAbs = %v want 5", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v want 0", got)
	}
}

func TestClip(t *testing.T) {
	v := []float64{-10, 0.5, 10}
	Clip(v, 1)
	want := []float64{-1, 0.5, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Clip[%d] = %v want %v", i, v[i], want[i])
		}
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Cauchy–Schwarz |<a,b>|² <= |a|²|b|² holds for random vectors.
// This is the inequality underlying LinearFDA's overestimation (Thm 3.2).
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a0, b0 [8]float64) bool {
		av, bv := shrinkVec(a0[:]), shrinkVec(b0[:])
		lhs := Dot(av, bv)
		return lhs*lhs <= SquaredNorm(av)*SquaredNorm(bv)*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// shrinkVec maps arbitrary quick-generated floats into a bounded range so
// sums cannot overflow to Inf.
func shrinkVec(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Mod(x, 1e6)
		if math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}

// Property: Mean is linear, i.e. mean of (a+b) = mean(a) + mean(b) per slot.
func TestMeanLinearityProperty(t *testing.T) {
	f := func(a0, b0 [4]float64, c0, d0 [4]float64) bool {
		a, b := shrinkVec(a0[:]), shrinkVec(b0[:])
		c, d := shrinkVec(c0[:]), shrinkVec(d0[:])
		sum1 := make([]float64, 4)
		Add(sum1, a[:], c[:])
		sum2 := make([]float64, 4)
		Add(sum2, b[:], d[:])
		meanOfSums := make([]float64, 4)
		Mean(meanOfSums, sum1, sum2)

		m1 := make([]float64, 4)
		Mean(m1, a[:], b[:])
		m2 := make([]float64, 4)
		Mean(m2, c[:], d[:])
		sumOfMeans := make([]float64, 4)
		Add(sumOfMeans, m1, m2)

		for i := range meanOfSums {
			if !almostEqual(meanOfSums[i], sumOfMeans[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
