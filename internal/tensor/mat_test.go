package tensor

import (
	"testing"
	"testing/quick"
)

func TestMatAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row view does not alias storage")
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("writing through Row view not visible")
	}
}

func TestMatFromValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad backing length")
		}
	}()
	MatFrom(2, 2, make([]float64, 3))
}

func TestMatVec(t *testing.T) {
	m := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	MatVec(dst, m, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestMatTVec(t *testing.T) {
	m := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1}
	dst := make([]float64, 3)
	MatTVec(dst, m, x)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MatTVec[%d] = %v want %v", i, dst[i], want[i])
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	AddOuter(m, 2, []float64{1, 2}, []float64{3, 4})
	want := []float64{6, 8, 12, 16}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuter data[%d] = %v want %v", i, m.Data[i], want[i])
		}
	}
}

func TestMatMulAgainstManual(t *testing.T) {
	a := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := MatFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewMat(2, 2)
	MatMul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("MatMul data[%d] = %v want %v", i, dst.Data[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	m := MatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := Transpose(m)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("Transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("Transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Property: (Aᵀ)x computed by MatTVec equals MatVec on the explicit
// transpose, for random small matrices.
func TestMatTVecMatchesTransposeProperty(t *testing.T) {
	f := func(data0 [6]float64, x0 [2]float64) bool {
		data, x := shrinkVec(data0[:]), shrinkVec(x0[:])
		m := MatFrom(2, 3, data)
		want := make([]float64, 3)
		MatVec(want, Transpose(m), x)
		got := make([]float64, 3)
		MatTVec(got, m, x)
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec is linear in x.
func TestMatVecLinearityProperty(t *testing.T) {
	f := func(data0 [6]float64, x0, y0 [3]float64) bool {
		data, x, y := shrinkVec(data0[:]), shrinkVec(x0[:]), shrinkVec(y0[:])
		m := MatFrom(2, 3, data)
		sum := make([]float64, 3)
		Add(sum, x, y)
		lhs := make([]float64, 2)
		MatVec(lhs, m, sum)
		mx := make([]float64, 2)
		MatVec(mx, m, x)
		my := make([]float64, 2)
		MatVec(my, m, y)
		for i := range lhs {
			if !almostEqual(lhs[i], mx[i]+my[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
