package tensor

import "fmt"

// Mat is a dense row-major matrix backed by a contiguous float64 slice.
// The backing slice may alias a region of a larger flat parameter vector,
// which is how network layers view their weights without copies.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat allocates a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMat with negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFrom wraps data as a Rows×Cols matrix without copying. It panics if
// len(data) != rows*cols.
func MatFrom(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatFrom backing length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a sub-slice view (no copy).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// MatVec computes dst = m * x for a Rows-length dst and Cols-length x.
// dst must not alias x.
func MatVec(dst []float64, m *Mat, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("tensor: MatVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = dotUnrolled(m.Row(i), x)
	}
}

// MatTVec computes dst = mᵀ * x for a Cols-length dst and Rows-length x.
// dst must not alias x.
func MatTVec(dst []float64, m *Mat, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("tensor: MatTVec dimension mismatch")
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		axpyUnrolled(xi, m.Row(i), dst)
	}
}

// AddOuter accumulates m += alpha * a bᵀ where a has length Rows and b has
// length Cols. This is the weight-gradient kernel for dense layers.
func AddOuter(m *Mat, alpha float64, a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("tensor: AddOuter dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		axpyUnrolled(ai, b, m.Row(i))
	}
}

// matMulTileJ is the column-tile width of the blocked MatMul: 256
// float64 columns keep one tile row of b (2 kB) resident in L1 while it
// is reused across all rows of a.
const matMulTileJ = 256

// MatMul computes dst = a * b with a column-blocked i-k-j loop nest. dst
// must be preallocated with a.Rows × b.Cols and must not alias a or b.
//
// Blocking changes only the traversal of independent output elements;
// for every dst element the reduction over k still runs in ascending k
// order, so the result is bit-identical to the naive triple loop.
func MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul dimension mismatch")
	}
	Zero(dst.Data)
	for j0 := 0; j0 < b.Cols; j0 += matMulTileJ {
		j1 := j0 + matMulTileJ
		if j1 > b.Cols {
			j1 = b.Cols
		}
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			drow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				axpyUnrolled(av, b.Data[k*b.Cols+j0:k*b.Cols+j1], drow)
			}
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func Transpose(m *Mat) *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}
