package tensor

import "fmt"

// Mat is a dense row-major matrix backed by a contiguous float64 slice.
// The backing slice may alias a region of a larger flat parameter vector,
// which is how network layers view their weights without copies.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat allocates a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMat with negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFrom wraps data as a Rows×Cols matrix without copying. It panics if
// len(data) != rows*cols.
func MatFrom(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: MatFrom backing length %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a sub-slice view (no copy).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// MatVec computes dst = m * x for a Rows-length dst and Cols-length x.
// dst must not alias x.
func MatVec(dst []float64, m *Mat, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("tensor: MatVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MatTVec computes dst = mᵀ * x for a Cols-length dst and Rows-length x.
// dst must not alias x.
func MatTVec(dst []float64, m *Mat, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("tensor: MatTVec dimension mismatch")
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuter accumulates m += alpha * a bᵀ where a has length Rows and b has
// length Cols. This is the weight-gradient kernel for dense layers.
func AddOuter(m *Mat, alpha float64, a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("tensor: AddOuter dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		ai := alpha * a[i]
		if ai == 0 {
			continue
		}
		for j := range row {
			row[j] += ai * b[j]
		}
	}
}

// MatMul computes dst = a * b. dst must be preallocated with a.Rows ×
// b.Cols and must not alias a or b.
func MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul dimension mismatch")
	}
	Zero(dst.Data)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func Transpose(m *Mat) *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}
