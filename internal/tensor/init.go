package tensor

import "math"

// GlorotUniform fills w with samples from U(-a, a) where
// a = sqrt(6 / (fanIn + fanOut)). This is the initialization used by the
// paper for LeNet-5 and VGG16* (Glorot & Bengio 2010).
func GlorotUniform(rng *RNG, w []float64, fanIn, fanOut int) {
	if fanIn <= 0 || fanOut <= 0 {
		panic("tensor: GlorotUniform with non-positive fan")
	}
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * a
	}
}

// HeNormal fills w with samples from N(0, 2/fanIn), the initialization the
// paper uses for the DenseNet models (He et al. 2015).
func HeNormal(rng *RNG, w []float64, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: HeNormal with non-positive fan")
	}
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}

// Uniform fills w with samples from U(lo, hi).
func Uniform(rng *RNG, w []float64, lo, hi float64) {
	for i := range w {
		w[i] = lo + rng.Float64()*(hi-lo)
	}
}

// Normal fills w with samples from N(mean, std^2).
func Normal(rng *RNG, w []float64, mean, std float64) {
	for i := range w {
		w[i] = mean + rng.NormFloat64()*std
	}
}
