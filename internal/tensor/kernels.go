// Fused numeric kernels for the training hot path.
//
// Every kernel in this file preserves the left-to-right reduction order of
// the scalar reference loops in vec.go/mat.go: unrolled bodies feed a
// single accumulator in index order, and blocked loops visit the reduction
// dimension monotonically for every output element. That property is what
// keeps results bit-identical across parallelism settings (the PR 1
// determinism contract): a kernel is free to restructure *memory access*,
// never *floating-point association*. kernels_test.go pins each kernel to
// its scalar reference with exact (==) comparisons.
package tensor

// dotUnrolled is the shared body of Dot: a 4-way unrolled product loop
// feeding one accumulator strictly left to right. The :i+4 capacity hints
// let the compiler drop bounds checks in the unrolled body.
//
//fda:noalloc
func dotUnrolled(a, b []float64) float64 {
	var s float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s += aa[0] * bb[0]
		s += aa[1] * bb[1]
		s += aa[2] * bb[2]
		s += aa[3] * bb[3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// axpyUnrolled is the shared body of AXPY: y += alpha*x, 4-way unrolled.
// Elements are independent, so unrolling only removes loop overhead and
// cannot change any result bit.
//
//fda:noalloc
func axpyUnrolled(alpha float64, x, y []float64) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// SubThenSquaredNorm stores a−b into dst and returns ‖dst‖², fusing the
// Sub and SquaredNorm passes of the drift computation u = w − w0,
// ‖u‖² into one sweep. The sum accumulates left to right, so the result
// equals SquaredNorm(dst) after Sub(dst, a, b) bit for bit. dst may alias
// a or b.
//
//fda:noalloc
func SubThenSquaredNorm(dst, a, b []float64) float64 {
	checkLen("SubThenSquaredNorm", a, b)
	checkLen("SubThenSquaredNorm", dst, a)
	var s float64
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		d0 := aa[0] - bb[0]
		dd[0] = d0
		s += d0 * d0
		d1 := aa[1] - bb[1]
		dd[1] = d1
		s += d1 * d1
		d2 := aa[2] - bb[2]
		dd[2] = d2
		s += d2 * d2
		d3 := aa[3] - bb[3]
		dd[3] = d3
		s += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		dst[i] = d
		s += d * d
	}
	return s
}

// AXPYTo stores y + alpha*x into dst without touching x or y. dst may
// alias x or y; each element is written once.
//
//fda:noalloc
func AXPYTo(dst []float64, alpha float64, x, y []float64) {
	checkLen("AXPYTo", x, y)
	checkLen("AXPYTo", dst, x)
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		dd[0] = yy[0] + alpha*xx[0]
		dd[1] = yy[1] + alpha*xx[1]
		dd[2] = yy[2] + alpha*xx[2]
		dd[3] = yy[3] + alpha*xx[3]
	}
	for ; i < n; i++ {
		dst[i] = y[i] + alpha*x[i]
	}
}

// ScaleAdd computes v = c*v + x in place — the momentum-velocity update
// kernel v ← µv + g as one sweep instead of Scale followed by Add.
//
//fda:noalloc
func ScaleAdd(v []float64, c float64, x []float64) {
	checkLen("ScaleAdd", v, x)
	n := len(v)
	i := 0
	for ; i+4 <= n; i += 4 {
		vv := v[i : i+4 : i+4]
		xx := x[i : i+4 : i+4]
		vv[0] = c*vv[0] + xx[0]
		vv[1] = c*vv[1] + xx[1]
		vv[2] = c*vv[2] + xx[2]
		vv[3] = c*vv[3] + xx[3]
	}
	for ; i < n; i++ {
		v[i] = c*v[i] + x[i]
	}
}

// Accumulate computes dst += src (an AXPY with alpha 1, without the
// multiplication), 4-way unrolled; the col2im scatter kernel.
//
//fda:noalloc
func Accumulate(dst, src []float64) {
	checkLen("Accumulate", dst, src)
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		ss := src[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		dd[0] += ss[0]
		dd[1] += ss[1]
		dd[2] += ss[2]
		dd[3] += ss[3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// Sum returns the left-to-right sum of v (the conv bias-gradient kernel).
//
//fda:noalloc
func Sum(v []float64) float64 {
	var s float64
	n := len(v)
	i := 0
	for ; i+4 <= n; i += 4 {
		vv := v[i : i+4 : i+4]
		s += vv[0]
		s += vv[1]
		s += vv[2]
		s += vv[3]
	}
	for ; i < n; i++ {
		s += v[i]
	}
	return s
}

// AXPY4 computes y += a0*x0 + a1*x1 + a2*x2 + a3*x3 in one sweep — the
// quad-tap convolution kernel: one load/store of y per four taps instead
// of four. Each element's partial sums chain in argument order, so the
// result is bit-identical to four sequential AXPY calls.
//
//fda:noalloc
func AXPY4(a0, a1, a2, a3 float64, x0, x1, x2, x3, y []float64) {
	checkLen("AXPY4", x0, y)
	checkLen("AXPY4", x1, y)
	checkLen("AXPY4", x2, y)
	checkLen("AXPY4", x3, y)
	// Reslice to the common length so the compiler can drop the per-index
	// bounds checks in the fused loop.
	n := len(y)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for i := range y {
		s := y[i] + a0*x0[i]
		s += a1 * x1[i]
		s += a2 * x2[i]
		s += a3 * x3[i]
		y[i] = s
	}
}

// Dot4 returns the four inner products <a, x0..3> in one sweep over a —
// the quad-tap weight-gradient kernel. Each accumulator runs strictly
// left to right, bit-identical to four separate Dot calls.
//
//fda:noalloc
func Dot4(a, x0, x1, x2, x3 []float64) (s0, s1, s2, s3 float64) {
	checkLen("Dot4", a, x0)
	checkLen("Dot4", a, x1)
	checkLen("Dot4", a, x2)
	checkLen("Dot4", a, x3)
	n := len(a)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for i, av := range a {
		s0 += av * x0[i]
		s1 += av * x1[i]
		s2 += av * x2[i]
		s3 += av * x3[i]
	}
	return
}

// AXPY4x2 is the register-blocked 2×4 convolution micro-kernel: it
// computes ya += a0*x0+…+a3*x3 and yb += b0*x0+…+b3*x3 in one sweep,
// loading each shared x element once for both destinations. Each
// destination's partial sums chain in tap order, bit-identical to two
// AXPY4 calls.
//
//fda:noalloc
func AXPY4x2(a0, a1, a2, a3, b0, b1, b2, b3 float64, x0, x1, x2, x3, ya, yb []float64) {
	checkLen("AXPY4x2", x0, ya)
	checkLen("AXPY4x2", x1, ya)
	checkLen("AXPY4x2", x2, ya)
	checkLen("AXPY4x2", x3, ya)
	checkLen("AXPY4x2", yb, ya)
	n := len(ya)
	x0, x1, x2, x3, yb = x0[:n], x1[:n], x2[:n], x3[:n], yb[:n]
	for i := range ya {
		v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
		s := ya[i] + a0*v0
		s += a1 * v1
		s += a2 * v2
		s += a3 * v3
		ya[i] = s
		t := yb[i] + b0*v0
		t += b1 * v1
		t += b2 * v2
		t += b3 * v3
		yb[i] = t
	}
}

// Dot4x2 is the 2×4 weight-gradient micro-kernel: the eight inner
// products of {a, b} against {x0..x3}, loading each shared x element once.
// Every accumulator runs strictly left to right, bit-identical to eight
// separate Dot calls.
//
//fda:noalloc
func Dot4x2(a, b, x0, x1, x2, x3 []float64) (s0, s1, s2, s3, t0, t1, t2, t3 float64) {
	checkLen("Dot4x2", a, b)
	checkLen("Dot4x2", a, x0)
	checkLen("Dot4x2", a, x1)
	checkLen("Dot4x2", a, x2)
	checkLen("Dot4x2", a, x3)
	n := len(a)
	b, x0, x1, x2, x3 = b[:n], x0[:n], x1[:n], x2[:n], x3[:n]
	for i, av := range a {
		v0, v1, v2, v3 := x0[i], x1[i], x2[i], x3[i]
		bv := b[i]
		s0 += av * v0
		s1 += av * v1
		s2 += av * v2
		s3 += av * v3
		t0 += bv * v0
		t1 += bv * v1
		t2 += bv * v2
		t3 += bv * v3
	}
	return
}
