package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64 components. All vector helpers in this
// package operate on raw slices so they compose with sub-slices of flat
// parameter vectors without copies.
type Vec = []float64

// checkLen panics when two vectors that must be conformal are not. Length
// mismatches here are always programming errors (model dimension is fixed
// per run), so a panic is preferred over threading errors through hot loops.
// The formatting lives in a separate never-inlined helper so checkLen
// inlines into the //fda:noalloc kernels without contributing the
// Sprintf argument boxing as escape-analysis allocation sites there.
func checkLen(op string, a, b []float64) {
	if len(a) != len(b) {
		lenPanic(op, len(a), len(b))
	}
}

//go:noinline
func lenPanic(op string, la, lb int) {
	panic(fmt.Sprintf("tensor: %s length mismatch %d != %d", op, la, lb))
}

// Zero sets every component of v to 0.
//
//fda:noalloc
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every component of v to c.
//
//fda:noalloc
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Clone returns a newly allocated copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Add stores a+b into dst. dst may alias a or b.
//
//fda:noalloc
func Add(dst, a, b []float64) {
	checkLen("Add", a, b)
	checkLen("Add", dst, a)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub stores a-b into dst. dst may alias a or b.
//
//fda:noalloc
func Sub(dst, a, b []float64) {
	checkLen("Sub", a, b)
	checkLen("Sub", dst, a)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Scale multiplies v by c in place.
//
//fda:noalloc
func Scale(v []float64, c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY computes y += alpha*x in place. The body is 4-way unrolled
// (kernels.go); element updates are independent, so the result is
// bit-identical to the scalar loop.
//
//fda:noalloc
func AXPY(alpha float64, x, y []float64) {
	checkLen("AXPY", x, y)
	axpyUnrolled(alpha, x, y)
}

// Dot returns the inner product <a, b>, accumulated left to right (4-way
// unrolled into a single accumulator, so the sum order — and therefore
// every result bit — matches the scalar loop).
//
//fda:noalloc
func Dot(a, b []float64) float64 {
	checkLen("Dot", a, b)
	return dotUnrolled(a, b)
}

// SquaredNorm returns ||v||_2^2, accumulated left to right.
//
//fda:noalloc
func SquaredNorm(v []float64) float64 {
	return dotUnrolled(v, v)
}

// Norm returns ||v||_2.
//
//fda:noalloc
func Norm(v []float64) float64 {
	return math.Sqrt(SquaredNorm(v))
}

// Normalize scales v to unit L2 norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm(v)
	if n == 0 {
		return 0
	}
	Scale(v, 1/n)
	return n
}

// Mean stores the arithmetic mean of vecs into dst. It panics if vecs is
// empty or lengths differ. dst may alias one of vecs.
//
//fda:noalloc
func Mean(dst []float64, vecs ...[]float64) {
	if len(vecs) == 0 {
		panic("tensor: Mean of no vectors") //fda:allow(noalloc, constant-string boxing on the abort path only)
	}
	first := vecs[0]
	checkLen("Mean", dst, first)
	copy(dst, first)
	for _, v := range vecs[1:] {
		Add(dst, dst, v)
	}
	Scale(dst, 1/float64(len(vecs)))
}

// MaxAbs returns the largest absolute component of v, or 0 for an empty
// vector.
//
//fda:noalloc
func MaxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest component; ties resolve to the
// first maximum. It panics on an empty vector.
//
//fda:noalloc
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector") //fda:allow(noalloc, constant-string boxing on the abort path only)
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Clip bounds every component of v to [-c, c] in place. c must be positive.
//
//fda:noalloc
func Clip(v []float64, c float64) {
	if c <= 0 {
		panic("tensor: Clip with non-positive bound") //fda:allow(noalloc, constant-string boxing on the abort path only)
	}
	for i, x := range v {
		if x > c {
			v[i] = c
		} else if x < -c {
			v[i] = -c
		}
	}
}

// AllFinite reports whether every component is neither NaN nor Inf.
//
//fda:noalloc
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
