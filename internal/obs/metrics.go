package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// desc identifies one metric: a Prometheus-style name plus an optional
// label set, rendered once at registration so exposition and hot paths
// never re-format.
type desc struct {
	name   string
	help   string
	labels []string // alternating key, value
	// rendered is `{k="v",...}` (escaped) or "" for label-less metrics.
	rendered string
}

func newDesc(name, help string, labels []string) desc {
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs: " + name)
	}
	d := desc{name: name, help: help, labels: labels}
	if len(labels) > 0 {
		var b strings.Builder
		b.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[i+1]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
		d.rendered = b.String()
	}
	return d
}

// escapeLabel applies the Prometheus text-format label escaping rules.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (d desc) labelMap() map[string]string {
	if len(d.labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(d.labels)/2)
	for i := 0; i < len(d.labels); i += 2 {
		m[d.labels[i]] = d.labels[i+1]
	}
	return m
}

// Counter is a monotonically increasing count. Add is one atomic add
// behind the global enable gate — zero allocation, no locks.
type Counter struct {
	v atomic.Int64
	d desc
}

// Add increments the counter by n (dropped while telemetry is off).
//
//fda:noalloc
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (float64).
type Gauge struct {
	v atomic.Uint64 // float64 bits
	d desc
}

// Set records the gauge's current value (dropped while telemetry is off).
//
//fda:noalloc
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.v.Store(math.Float64bits(v))
	}
}

// Value returns the last set value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// histBuckets is the fixed bucket count of every histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. the power-of-two
// range [2^(i-1), 2^i). Non-positive observations land in bucket 0.
// The scheme (DESIGN.md §11) trades resolution — every estimate is
// exact to within a factor of two — for an O(1), division-free,
// allocation-free Observe: one bits.Len64 and two atomic adds.
const histBuckets = 65

// Histogram is a fixed-bucket distribution over int64 observations in
// a raw unit (nanoseconds, bytes). Scale converts raw units to the
// exposed base unit (1e9 for ns→seconds, 1 for bytes) at readout time,
// so the hot path stays in integers.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	scale  float64
	d      desc
}

// Observe records one raw-unit observation (dropped while telemetry is
// off). It is safe for concurrent use and never allocates.
//
//fda:noalloc
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Since records the elapsed nanoseconds from a start stamp obtained via
// obs.Clock. A zero start means telemetry was off at the start of the
// section; the observation is dropped so intervals never mix clocks.
//
//fda:noalloc
func (h *Histogram) Since(start int64) {
	if start == 0 || !enabled.Load() {
		return
	}
	h.observe(clockNow() - start)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the observation total in the exposed base unit.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / h.scale }

// Quantile returns the p-quantile (0 < p ≤ 1) in the exposed base
// unit: the upper bound of the bucket containing the quantile rank,
// i.e. an overestimate by at most 2×. With no observations it is 0.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.bucketUpper(i)
		}
	}
	return h.bucketUpper(histBuckets - 1)
}

// bucketUpper returns bucket i's inclusive upper bound in base units.
func (h *Histogram) bucketUpper(i int) float64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64 / h.scale
	}
	return float64(uint64(1)<<i-1) / h.scale
}

// Registry holds the process's metrics. Metrics are registered once
// (idempotently) and resolved to pointers at instrumentation setup, so
// steady-state updates touch only the metric's own atomics.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]any
	metrics []any // *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]any{}}
}

// Default is the process-wide registry every built-in instrumentation
// point registers into.
var Default = NewRegistry()

func (r *Registry) lookup(d desc, build func() any) any {
	key := d.name + d.rendered
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		return m
	}
	m := build()
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns the existing) counter with the given
// name and alternating label key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	d := newDesc(name, help, labels)
	m := r.lookup(d, func() any { return &Counter{d: d} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %s%s already registered as %T", d.name, d.rendered, m))
	}
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	d := newDesc(name, help, labels)
	m := r.lookup(d, func() any { return &Gauge{d: d} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %s%s already registered as %T", d.name, d.rendered, m))
	}
	return g
}

// Histogram registers (or returns the existing) histogram. scale
// converts raw observation units into the exposed base unit — use
// obs.Seconds for nanosecond timings and obs.Bytes for sizes.
func (r *Registry) Histogram(name, help string, scale float64, labels ...string) *Histogram {
	if scale <= 0 {
		panic("obs: histogram scale must be positive: " + name)
	}
	d := newDesc(name, help, labels)
	m := r.lookup(d, func() any { return &Histogram{scale: scale, d: d} })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %s%s already registered as %T", d.name, d.rendered, m))
	}
	if h.scale != scale {
		panic(fmt.Sprintf("obs: %s%s re-registered with scale %g != %g", d.name, d.rendered, scale, h.scale))
	}
	return h
}

// Histogram scale constants: the raw→base-unit divisors for the two
// observation kinds the repo uses.
const (
	// Seconds scales nanosecond observations to seconds.
	Seconds = 1e9
	// Bytes exposes byte observations as-is.
	Bytes = 1
)

// sorted returns the registry's metrics ordered by (name, labels) so
// exposition and snapshots are deterministic and grouped by family.
func (r *Registry) sorted() []any {
	r.mu.Lock()
	out := make([]any, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := descOf(out[i]), descOf(out[j])
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.rendered < dj.rendered
	})
	return out
}

func descOf(m any) desc {
	switch m := m.(type) {
	case *Counter:
		return m.d
	case *Gauge:
		return m.d
	case *Histogram:
		return m.d
	}
	panic("obs: unknown metric type")
}

// CounterValue is one counter's reading in a Snap.
type CounterValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeValue is one gauge's reading in a Snap.
type GaugeValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramValue is one histogram's summary in a Snap: count, sum and
// the three headline quantiles, all in the metric's base unit.
type HistogramValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	P50    float64           `json:"p50"`
	P95    float64           `json:"p95"`
	P99    float64           `json:"p99"`
}

// Snap is a point-in-time reading of a registry, ordered by metric
// name — the JSON shape served under /v1/metrics and returned by
// fda.Telemetry.
type Snap struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snap {
	var s Snap
	for _, m := range r.sorted() {
		switch m := m.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterValue{Name: m.d.name, Labels: m.d.labelMap(), Value: m.Value()})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeValue{Name: m.d.name, Labels: m.d.labelMap(), Value: m.Value()})
		case *Histogram:
			s.Histograms = append(s.Histograms, HistogramValue{
				Name: m.d.name, Labels: m.d.labelMap(),
				Count: m.Count(), Sum: m.Sum(),
				P50: m.Quantile(0.50), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
			})
		}
	}
	return s
}

// CounterSum sums every counter named name whose labels include the
// given alternating key/value pairs (a convenience for views that
// aggregate one family, e.g. total syncs across strategies).
func (s Snap) CounterSum(name string, labels ...string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if c.Labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			total += c.Value
		}
	}
	return total
}
