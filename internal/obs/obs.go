// Package obs is the process-wide telemetry layer: a metrics registry
// (counters, gauges, fixed-bucket histograms with p50/p95/p99 readout),
// Chrome-trace-event span tracing, and Prometheus text exposition.
//
// Telemetry is strictly a side channel (DESIGN.md §11): nothing in this
// package feeds back into training math, so results are bit-identical
// with observability on, off or sampled — a contract pinned by the
// parity tests in internal/core. The layer is built for hot paths:
// metric updates are single atomic operations on pre-resolved pointers
// (no map lookups, no allocation), and when telemetry is disabled —
// the default — every entry point reduces to one atomic load and an
// early return, so instrumented code pays no measurable cost
// (asserted by alloc_test.go and the BENCH_PR7.json LocalStep series).
package obs

import (
	"sync/atomic"
	"time"
)

// enabled gates every metric update and clock read in the process.
// Disabled (the default), instrumentation costs one atomic load.
var enabled atomic.Bool

// Enable turns metric collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off; subsequent updates are dropped.
func Disable() { enabled.Store(false) }

// On reports whether metric collection is enabled.
func On() bool { return enabled.Load() }

// epoch anchors Clock: readings are monotonic nanoseconds since process
// start (time.Since reads the monotonic clock).
//
//fda:allow(wallclock, the trace epoch: telemetry timestamps are a side channel and never feed training math)
var epoch = time.Now()

// Clock returns the current monotonic time in nanoseconds when
// telemetry is enabled, and 0 when disabled — so call sites can stamp
// a start time without paying for a clock read in the disabled case:
//
//	start := obs.Clock()
//	...
//	hist.Since(start) // no-op when start == 0
func Clock() int64 {
	if !enabled.Load() {
		return 0
	}
	//fda:allow(wallclock, monotonic span timestamps are telemetry-only; parity-pinned to not affect results)
	return int64(time.Since(epoch))
}

// clockNow is Clock without the gate, for paths (the tracer) that are
// active regardless of the metrics switch.
//
//fda:allow(wallclock, monotonic span timestamps are telemetry-only; parity-pinned to not affect results)
func clockNow() int64 { return int64(time.Since(epoch)) }
