package obs

import (
	"fmt"
	"io"
	"runtime/metrics"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// `_bucket{le=...}`/`_sum`/`_count` series per histogram. Families are
// emitted in name order; empty histogram buckets are elided (the
// cumulative bucket counts stay correct, and +Inf is always present).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b []byte
	lastFamily := ""
	for _, m := range r.sorted() {
		d := descOf(m)
		if d.name != lastFamily {
			lastFamily = d.name
			b = append(b, "# HELP "...)
			b = append(b, d.name...)
			b = append(b, ' ')
			b = append(b, strings.ReplaceAll(d.help, "\n", " ")...)
			b = append(b, "\n# TYPE "...)
			b = append(b, d.name...)
			switch m.(type) {
			case *Counter:
				b = append(b, " counter\n"...)
			case *Gauge:
				b = append(b, " gauge\n"...)
			case *Histogram:
				b = append(b, " histogram\n"...)
			}
		}
		switch m := m.(type) {
		case *Counter:
			b = append(b, d.name...)
			b = append(b, d.rendered...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, m.Value(), 10)
			b = append(b, '\n')
		case *Gauge:
			b = append(b, d.name...)
			b = append(b, d.rendered...)
			b = append(b, ' ')
			b = strconv.AppendFloat(b, m.Value(), 'g', -1, 64)
			b = append(b, '\n')
		case *Histogram:
			b = m.appendProm(b, d)
		}
	}
	_, err := w.Write(b)
	return err
}

// appendProm renders one histogram's bucket/sum/count series.
func (h *Histogram) appendProm(b []byte, d desc) []byte {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		b = appendSeries(b, d.name+"_bucket", d.rendered, "le", formatLe(h.bucketUpper(i)))
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = appendSeries(b, d.name+"_bucket", d.rendered, "le", "+Inf")
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.Count(), 10)
	b = append(b, '\n')
	b = append(b, d.name...)
	b = append(b, "_sum"...)
	b = append(b, d.rendered...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, h.Sum(), 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, d.name...)
	b = append(b, "_count"...)
	b = append(b, d.rendered...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.Count(), 10)
	b = append(b, '\n')
	return b
}

func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendSeries writes name plus the metric's rendered labels merged
// with one extra label (the histogram's le).
func appendSeries(b []byte, name, rendered, extraKey, extraVal string) []byte {
	b = append(b, name...)
	if rendered == "" {
		b = append(b, '{')
	} else {
		b = append(b, rendered[:len(rendered)-1]...)
		b = append(b, ',')
	}
	b = append(b, extraKey...)
	b = append(b, `="`...)
	b = append(b, extraVal...)
	b = append(b, `"}`...)
	return b
}

// runtimeSamples is the fixed set of runtime/metrics series exposed:
// enough to correlate training behavior with scheduler and heap
// pressure without drowning the exposition.
var runtimeSamples = []struct {
	src  string // runtime/metrics name
	name string // exposed name
	kind string // prometheus type
}{
	{"/sched/goroutines:goroutines", "go_sched_goroutines", "gauge"},
	{"/sched/gomaxprocs:threads", "go_sched_gomaxprocs_threads", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_memory_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "counter"},
	{"/sync/mutex/wait/total:seconds", "go_sync_mutex_wait_seconds_total", "counter"},
}

// RuntimeSample reads the exposed runtime/metrics series as a flat
// name→value map (the JSON /v1/metrics shape).
func RuntimeSample() map[string]float64 {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range samples {
		samples[i].Name = runtimeSamples[i].src
	}
	metrics.Read(samples)
	out := make(map[string]float64, len(samples))
	for i, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[runtimeSamples[i].name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			out[runtimeSamples[i].name] = s.Value.Float64()
		}
	}
	return out
}

// WriteRuntimeMetrics renders the runtime/metrics sample set in
// Prometheus text format (appended after the registry's families on
// GET /metrics).
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range samples {
		samples[i].Name = runtimeSamples[i].src
	}
	metrics.Read(samples)
	var b []byte
	for i, s := range samples {
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			continue
		}
		rs := runtimeSamples[i]
		b = fmt.Appendf(b, "# HELP %s runtime/metrics %s\n# TYPE %s %s\n%s %s\n",
			rs.name, rs.src, rs.name, rs.kind, rs.name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	_, err := w.Write(b)
	return err
}
