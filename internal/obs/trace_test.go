package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// traceEvent is the Chrome trace-event schema subset the tracer emits.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

// collectTrace runs body under an armed tracer and returns the decoded
// event array — the schema gate for everything -trace writes.
func collectTrace(t *testing.T, body func()) []traceEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := TraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	body()
	if err := StopTrace(); err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON event array: %v\n%s", err, buf.String())
	}
	return events
}

func TestTraceSchema(t *testing.T) {
	events := collectTrace(t, func() {
		r := StartRegion("AllReduce", "fabric")
		r.EndArgs("bytes", int64(1024), "virtual_sec", 0.25, "kind", "model")
		Instant("sync", "session", "trigger", "LinearFDA")
		done := Span(context.Background(), "load")
		done()
	})
	if len(events) != 4 { // metadata + span + instant + ctx span
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil || ev.Ts == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
	}
	if events[0].Ph != "M" || events[0].Args["name"] != "fda" {
		t.Fatalf("first event is not process metadata: %+v", events[0])
	}
	sp := events[1]
	if sp.Ph != "X" || sp.Dur == nil || *sp.Dur < 0 || sp.Cat != "fabric" {
		t.Fatalf("span event malformed: %+v", sp)
	}
	if sp.Args["bytes"] != float64(1024) || sp.Args["virtual_sec"] != 0.25 || sp.Args["kind"] != "model" {
		t.Fatalf("span args = %v", sp.Args)
	}
	if inst := events[2]; inst.Ph != "i" || inst.Args["trigger"] != "LinearFDA" {
		t.Fatalf("instant event malformed: %+v", inst)
	}
	if events[3].Ph != "X" || events[3].Name != "load" {
		t.Fatalf("ctx span malformed: %+v", events[3])
	}
}

func TestTraceInactiveIsNoop(t *testing.T) {
	if Tracing() {
		t.Fatal("tracer unexpectedly armed")
	}
	r := StartRegion("x", "y")
	if r.Active() {
		t.Fatal("region active without a tracer")
	}
	r.End()
	r.EndArgs("k", 1)
	Instant("x", "y")
	Span(context.Background(), "x")()
	if err := StopTrace(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSampling(t *testing.T) {
	SetSampleEvery(3)
	defer SetSampleEvery(1)
	events := collectTrace(t, func() {
		for seq := int64(1); seq <= 9; seq++ {
			StartRegionEvery("step", "session", seq).End()
		}
	})
	var steps int
	for _, ev := range events {
		if ev.Name == "step" {
			steps++
		}
	}
	if steps != 3 { // seq 3, 6, 9
		t.Fatalf("sampled %d step spans, want 3", steps)
	}
}

func TestTraceDoubleArm(t *testing.T) {
	var buf bytes.Buffer
	if err := TraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	defer StopTrace()
	if err := TraceTo(&buf); err == nil {
		t.Fatal("second TraceTo succeeded, want error")
	}
}
