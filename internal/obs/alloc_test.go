package obs

import "testing"

// The telemetry layer's own zero-cost contract (ISSUE 7, DESIGN.md
// §11): metric updates allocate nothing whether telemetry is on or
// off, and with it off (the default) the instrumentation entry points
// reduce to an atomic load. These assertions are the obs-side
// counterpart of internal/core's kernel alloc tests and run in the
// same uninstrumented `make allocs` pass.

func assertZeroAllocs(t *testing.T, name string, body func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race instrumentation")
	}
	body() // warm-up
	if avg := testing.AllocsPerRun(100, body); avg != 0 {
		t.Fatalf("%s allocates %.1f times per call, want 0", name, avg)
	}
}

func TestMetricsZeroAllocsEnabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_c_total", "h", "k", "v")
	g := r.Gauge("alloc_g", "h")
	h := r.Histogram("alloc_h_seconds", "h", Seconds)
	withEnabled(t, func() {
		assertZeroAllocs(t, "Counter.Add", func() { c.Add(1) })
		assertZeroAllocs(t, "Gauge.Set", func() { g.Set(1.5) })
		assertZeroAllocs(t, "Histogram.Observe", func() { h.Observe(12345) })
		assertZeroAllocs(t, "Histogram.Since", func() { h.Since(Clock()) })
	})
}

func TestMetricsZeroAllocsDisabled(t *testing.T) {
	if On() {
		t.Fatal("telemetry unexpectedly enabled")
	}
	r := NewRegistry()
	c := r.Counter("alloc_d_total", "h")
	h := r.Histogram("alloc_d_seconds", "h", Seconds)
	assertZeroAllocs(t, "Counter.Add disabled", func() { c.Add(1) })
	assertZeroAllocs(t, "Histogram.Observe disabled", func() { h.Observe(12345) })
	assertZeroAllocs(t, "Clock disabled", func() {
		if Clock() != 0 {
			t.Fatal("Clock nonzero while disabled")
		}
	})
}

func TestSpanZeroAllocsDisarmed(t *testing.T) {
	if Tracing() {
		t.Fatal("tracer unexpectedly armed")
	}
	assertZeroAllocs(t, "StartRegion/End disarmed", func() {
		StartRegion("step", "session").End()
	})
	assertZeroAllocs(t, "StartRegionEvery disarmed", func() {
		StartRegionEvery("step", "session", 7).End()
	})
}
