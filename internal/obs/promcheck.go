package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidatePrometheusText checks that text is well-formed Prometheus
// exposition format (version 0.0.4): every line is a HELP/TYPE comment
// or a `name{labels} value` sample with a parseable float value, TYPE
// declarations use a known type, and every histogram family has
// monotone cumulative buckets ending in a +Inf bucket equal to its
// _count. It is the parser behind the /metrics tests and the CI smoke.
func ValidatePrometheusText(text string) error {
	types := map[string]string{}
	buckets := map[string][]float64{} // family+labels → cumulative counts
	infs := map[string]float64{}
	counts := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && types[base] == "histogram" {
			key := base + "|" + stripLabel(labels, "le")
			if le := labelValue(labels, "le"); le == "+Inf" {
				infs[key] = value
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("line %d: bad le %q", lineNo, le)
			}
			prev := buckets[key]
			if len(prev) > 0 && value < prev[len(prev)-1] {
				return fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, base)
			}
			buckets[key] = append(prev, value)
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok && types[base] == "histogram" {
			counts[base+"|"+labels] = value
		}
	}
	for key, inf := range infs {
		if c, ok := counts[key]; !ok || c != inf {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, counts[key])
		}
	}
	return nil
}

// parseSample splits one sample line into name, raw label block (no
// braces) and value, validating the pieces.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name, rest = rest[:i], rest[i:]
	for _, r := range name {
		if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return "", "", 0, fmt.Errorf("bad metric name %q", name)
		}
	}
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, rest = rest[1:end], rest[end+1:]
		if err := checkLabels(labels); err != nil {
			return "", "", 0, err
		}
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", "", 0, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	return name, labels, v, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		s = strings.TrimPrefix(s, "+")
	}
	return strconv.ParseFloat(s, 64)
}

// checkLabels validates a comma-separated k="v" list, honoring escapes.
func checkLabels(s string) error {
	for s != "" {
		eq := strings.Index(s, "=")
		if eq <= 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return fmt.Errorf("malformed label block near %q", s)
		}
		rest := s[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value near %q", s)
		}
		s = rest[end+1:]
		if s != "" {
			if s[0] != ',' {
				return fmt.Errorf("malformed label separator near %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

// labelValue extracts one label's unescaped value from a raw block.
func labelValue(block, key string) string {
	for _, part := range splitLabels(block) {
		k, v, ok := strings.Cut(part, "=")
		if ok && k == key {
			return strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(strings.Trim(v, `"`))
		}
	}
	return ""
}

// stripLabel returns the block without the given label (so histogram
// series of one family group together regardless of le).
func stripLabel(block, key string) string {
	var kept []string
	for _, part := range splitLabels(block) {
		if k, _, ok := strings.Cut(part, "="); !ok || k != key {
			kept = append(kept, part)
		}
	}
	return strings.Join(kept, ",")
}

// splitLabels splits on commas outside quoted values.
func splitLabels(block string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, block[start:i])
				start = i + 1
			}
		}
	}
	if start < len(block) {
		parts = append(parts, block[start:])
	}
	return parts
}
