package obs

import "testing"

// FuzzValidatePrometheusText drives the exposition-format validator
// with arbitrary text. The validator fronts the /metrics CI smoke and
// parses attacker-adjacent input (anything a scrape returns), so it
// must classify — never panic on — malformed comments, samples, label
// syntax or histogram series.
func FuzzValidatePrometheusText(f *testing.F) {
	f.Add("# HELP fda_steps_total steps\n# TYPE fda_steps_total counter\nfda_steps_total 4\n")
	f.Add("# TYPE lat histogram\nlat_bucket{le=\"0.1\"} 1\nlat_bucket{le=\"+Inf\"} 2\nlat_count 2\nlat_sum 0.3\n")
	f.Add("metric{label=\"v\"} 1.5e-9\n")
	f.Add("# TYPE x bogus\n")
	f.Add("x{le=}")
	f.Add("\xff\xfe not utf8 {")

	f.Fuzz(func(t *testing.T, text string) {
		_ = ValidatePrometheusText(text)
	})
}
