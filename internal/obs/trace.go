package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// Tracer serializes spans into the Chrome trace-event JSON array format
// (one "X" complete event per span), which chrome://tracing and
// Perfetto open directly. At most one tracer is active per process;
// writes are serialized under its mutex and buffered, so tracing is a
// cold-path cost paid only when explicitly armed.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer // underlying writer, when it wants closing
	buf   []byte    // event scratch, reused across writes
	first bool
	err   error
}

// active is the process's tracer, nil when tracing is off.
var active atomic.Pointer[Tracer]

// sampleEvery is the span sampling stride for StartRegionEvery: 1
// records everything, n>1 records every n-th sequence number.
var sampleEvery atomic.Int64

func init() { sampleEvery.Store(1) }

// SetSampleEvery sets the sampling stride for high-frequency spans
// (the per-step session span): n ≤ 1 records every span, n > 1 records
// sequence numbers divisible by n. Sampling changes which spans are
// written, never what the traced code computes.
func SetSampleEvery(n int) {
	if n < 1 {
		n = 1
	}
	sampleEvery.Store(int64(n))
}

// TraceTo arms tracing: subsequent spans are appended to w as a Chrome
// trace-event JSON array. If w implements io.Closer, StopTrace closes
// it. An error is returned if a trace is already active.
func TraceTo(w io.Writer) error {
	t := &Tracer{w: bufio.NewWriter(w), first: true}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	if !active.CompareAndSwap(nil, t) {
		return fmt.Errorf("obs: a trace is already active")
	}
	t.mu.Lock()
	_, t.err = t.w.WriteString("[\n")
	t.mu.Unlock()
	// Name the process row so Perfetto shows "fda" instead of "pid 1".
	meta := StartRegion("process_name", "__metadata")
	meta.write('M', 0, "name", "fda")
	return nil
}

// StopTrace closes the JSON array, flushes, disarms tracing and closes
// the underlying writer when it is closable. It returns the first
// write error seen over the trace's lifetime.
func StopTrace() error {
	t := active.Swap(nil)
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.w.WriteString("\n]\n"); err != nil && t.err == nil {
		t.err = err
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Tracing reports whether a tracer is armed.
func Tracing() bool { return active.Load() != nil }

// Region is an in-flight span (after runtime/trace's StartRegion). It
// is a value: starting one allocates nothing, and the zero Region —
// returned whenever tracing is off or the span is sampled out — makes
// every method a no-op after one nil check.
type Region struct {
	t     *Tracer
	name  string
	cat   string
	start int64
}

// StartRegion opens a span; end it with End or EndArgs. cat groups
// spans into Perfetto categories ("session", "fabric", "runstore",
// "http").
//
//fda:noalloc
func StartRegion(name, cat string) Region {
	t := active.Load()
	if t == nil {
		return Region{}
	}
	return Region{t: t, name: name, cat: cat, start: clockNow()}
}

// StartRegionEvery is StartRegion under the sampling stride: the span
// is recorded only when seq is a multiple of SetSampleEvery's n. Use
// for per-step-frequency spans where full traces would dominate.
//
//fda:noalloc
func StartRegionEvery(name, cat string, seq int64) Region {
	t := active.Load()
	if t == nil {
		return Region{}
	}
	if n := sampleEvery.Load(); n > 1 && seq%n != 0 {
		return Region{}
	}
	return Region{t: t, name: name, cat: cat, start: clockNow()}
}

// Active reports whether the region will be written — callers can skip
// building expensive args when it won't.
//
//fda:noalloc
func (r Region) Active() bool { return r.t != nil }

// End closes the span with no args.
//
//fda:noalloc
func (r Region) End() {
	if r.t == nil {
		return
	}
	r.write('X', clockNow()-r.start)
}

// EndArgs closes the span attaching trace args from alternating
// key/value pairs (values: int, int64, float64, bool, string).
func (r Region) EndArgs(kv ...any) {
	if r.t == nil {
		return
	}
	r.write('X', clockNow()-r.start, kv...)
}

// Instant records a zero-duration instant event (a vertical tick in
// the viewer) — used for point occurrences like sync triggers.
func Instant(name, cat string, kv ...any) {
	t := active.Load()
	if t == nil {
		return
	}
	r := Region{t: t, name: name, cat: cat, start: clockNow()}
	r.write('i', 0, kv...)
}

// Span opens a named span on the app category and returns the function
// that ends it — the ctx-shaped convenience form:
//
//	defer obs.Span(ctx, "load-model")()
//
// ctx is accepted for signature familiarity and future propagation;
// cancellation does not affect the span.
func Span(ctx context.Context, name string) func() {
	_ = ctx
	r := StartRegion(name, "app")
	if r.t == nil {
		return noopEnd
	}
	return r.End
}

var noopEnd = func() {}

// write serializes one event under the tracer lock. ts/dur are in
// microseconds (the trace-event unit) with nanosecond decimals.
func (r Region) write(ph byte, dur int64, kv ...any) {
	t := r.t
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	if t.first {
		t.first = false
	} else {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, r.name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, r.cat)
	b = append(b, `,"ph":"`...)
	b = append(b, ph)
	b = append(b, `","pid":1,"tid":1,"ts":`...)
	b = strconv.AppendFloat(b, float64(r.start)/1e3, 'f', 3, 64)
	if ph == 'X' {
		b = append(b, `,"dur":`...)
		b = strconv.AppendFloat(b, float64(dur)/1e3, 'f', 3, 64)
	}
	if ph == 'i' {
		// Instant scope: thread.
		b = append(b, `,"s":"t"`...)
	}
	b = appendArgs(b, kv)
	b = append(b, '}')
	t.buf = b
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// appendArgs renders an "args" object from alternating key/value
// pairs; malformed pairs are skipped rather than corrupting the trace.
func appendArgs(b []byte, kv []any) []byte {
	if len(kv) < 2 {
		return b
	}
	b = append(b, `,"args":{`...)
	n := 0
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			continue
		}
		if n > 0 {
			b = append(b, ',')
		}
		n++
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		switch v := kv[i+1].(type) {
		case int:
			b = strconv.AppendInt(b, int64(v), 10)
		case int64:
			b = strconv.AppendInt(b, v, 10)
		case uint64:
			b = strconv.AppendUint(b, v, 10)
		case float64:
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		case bool:
			b = strconv.AppendBool(b, v)
		case string:
			b = strconv.AppendQuote(b, v)
		default:
			b = strconv.AppendQuote(b, fmt.Sprint(v))
		}
	}
	return append(b, '}')
}
