package obs

import (
	"bytes"
	"strings"
	"testing"
)

// withEnabled runs the body with the global gate on, restoring the
// prior state (tests in this package share the process-wide switch).
func withEnabled(t *testing.T, body func()) {
	t.Helper()
	prev := On()
	Enable()
	defer func() {
		if !prev {
			Disable()
		}
	}()
	body()
}

func TestCounterGateAndValue(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	Disable()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d, want 0", got)
	}
	withEnabled(t, func() {
		c.Add(5)
		c.Inc()
	})
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", "k", "v")
	b := r.Counter("c_total", "h", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := r.Counter("c_total", "h", "k", "w"); c == a {
		t.Fatal("different label value returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("c_total", "h", "k", "v")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", Seconds)
	withEnabled(t, func() {
		// 90 fast observations ~1µs, 10 slow ~1ms.
		for i := 0; i < 90; i++ {
			h.Observe(1000)
		}
		for i := 0; i < 10; i++ {
			h.Observe(1_000_000)
		}
	})
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := (90*1000 + 10*1_000_000) / 1e9
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	// The p50 must land in the fast bucket, the p99 in the slow one.
	// Bucket upper bounds overestimate by at most 2×.
	if p50 := h.Quantile(0.50); p50 < 1000/1e9 || p50 > 2048/1e9 {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 1_000_000/1e9 || p99 > 2_097_152/1e9 {
		t.Fatalf("p99 = %v, want ~1ms", p99)
	}
	if p := h.Quantile(0.50); h.Quantile(0.99) < p {
		t.Fatal("quantiles are not monotone")
	}
}

func TestHistogramSinceDropsZeroStart(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "h", Seconds)
	// A start stamp of 0 means the clock was read while disabled: the
	// interval straddles the enable switch and must be dropped.
	withEnabled(t, func() { h.Since(0) })
	if h.Count() != 0 {
		t.Fatalf("Since(0) recorded %d observations, want 0", h.Count())
	}
	withEnabled(t, func() { h.Since(Clock()) })
	if h.Count() != 1 {
		t.Fatalf("Since(Clock()) recorded %d observations, want 1", h.Count())
	}
}

func TestSnapshotAndCounterSum(t *testing.T) {
	r := NewRegistry()
	withEnabled(t, func() {
		r.Counter("syncs_total", "h", "strategy", "A").Add(3)
		r.Counter("syncs_total", "h", "strategy", "B").Add(4)
		r.Gauge("up", "h").Set(1)
		r.Histogram("d_seconds", "h", Seconds).Observe(5000)
	})
	s := r.Snapshot()
	if len(s.Counters) != 2 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot shape = %d/%d/%d", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	if got := s.CounterSum("syncs_total"); got != 7 {
		t.Fatalf("CounterSum = %d, want 7", got)
	}
	if got := s.CounterSum("syncs_total", "strategy", "B"); got != 4 {
		t.Fatalf("CounterSum(strategy=B) = %d, want 4", got)
	}
	if s.Counters[0].Labels["strategy"] != "A" {
		t.Fatalf("snapshot not label-sorted: %+v", s.Counters)
	}
	if s.Histograms[0].Count != 1 || s.Histograms[0].P50 <= 0 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms[0])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	withEnabled(t, func() {
		r.Counter("jobs_total", "jobs seen", "status", `we"ird`).Add(2)
		r.Gauge("uptime_seconds", "uptime").Set(1.5)
		h := r.Histogram("req_seconds", "request latency", Seconds, "route", "GET /x")
		h.Observe(1000)
		h.Observe(1_000_000)
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{status="we\"ird"} 2`,
		"# TYPE uptime_seconds gauge",
		"uptime_seconds 1.5",
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{route="GET /x",le="+Inf"} 2`,
		`req_seconds_count{route="GET /x"} 2`,
		`req_seconds_sum{route="GET /x"} 0.001001`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := ValidatePrometheusText(text); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRuntimeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "go_sched_goroutines ") {
		t.Fatalf("runtime exposition missing goroutines:\n%s", buf.String())
	}
	if err := ValidatePrometheusText(buf.String()); err != nil {
		t.Fatal(err)
	}
	if RuntimeSample()["go_sched_goroutines"] < 1 {
		t.Fatal("RuntimeSample reports no goroutines")
	}
}
