//go:build race

package obs

// raceEnabled reports that this test binary was built with -race. Race
// instrumentation allocates shadow state of its own, so the zero-alloc
// assertions are meaningful only without it.
const raceEnabled = true
