// Package dist implements multi-process distributed training on the
// TCP fabric: the serializable job spec every process builds its
// replicated configuration from, the worker driver behind
// `fdarun -worker -connect`, and the coordinator driver behind
// `fdaserve`'s distributed train jobs and `fdarun -coordinator`.
//
// The execution model is replicated SPMD (DESIGN.md §9): the
// coordinator sends the same JobSpec to every worker; each worker
// deterministically derives the full cluster layout (datasets, shards,
// initial model, per-rank RNG streams) from it and steps only its
// assigned rank, meeting the others exclusively through fabric
// collectives. Because reductions are computed from rank-ordered
// contributions with the in-process kernels, every process finishes
// with bit-identical training state and an identical Result — which the
// coordinator verifies before reporting.
package dist

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
)

// JobSpec is the serializable description of one distributed training
// run — the payload the coordinator hands every worker at rank
// assignment. It mirrors the fdarun flag surface / fdaserve train
// request; every field is deterministic input, so two processes holding
// equal specs build bit-identical cluster state.
type JobSpec struct {
	// Model is a zoo model name (lenet5s, vgg16s, ...). Required.
	Model string `json:"model"`
	// Strategy is the synchronization policy name. Required.
	Strategy string `json:"strategy"`
	// Theta is the FDA variance threshold; 0 selects the model's default
	// grid entry.
	Theta float64 `json:"theta,omitempty"`
	// Tau is the round length for the schedule-based baselines.
	Tau int `json:"tau,omitempty"`
	// K, Batch, Steps, EvalEvery, Target, Het, Seed mirror core.Config.
	K         int     `json:"k"`
	Batch     int     `json:"batch"`
	Steps     int     `json:"steps"`
	EvalEvery int     `json:"eval_every,omitempty"`
	Target    float64 `json:"target,omitempty"`
	Het       string  `json:"het,omitempty"`
	Seed      uint64  `json:"seed"`
	// TopK/QBits compose sync compression exactly as the fdarun flags.
	TopK  float64 `json:"topk,omitempty"`
	QBits int     `json:"qbits,omitempty"`
}

// WithDefaults fills the documented zero-value defaults.
func (s JobSpec) WithDefaults() JobSpec {
	if s.Theta == 0 {
		if spec, err := models.ByName(s.Model); err == nil && len(spec.ThetaGrid) > 1 {
			s.Theta = spec.ThetaGrid[1]
		}
	}
	if s.Tau == 0 {
		s.Tau = 10
	}
	if s.K == 0 {
		s.K = 5
	}
	if s.Batch == 0 {
		s.Batch = 32
	}
	if s.Steps == 0 {
		s.Steps = 200
	}
	if s.EvalEvery == 0 {
		s.EvalEvery = 20
	}
	if s.Het == "" {
		s.Het = "iid"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// BuildConfig materializes the replicated core.Config (datasets
// generated, heterogeneity parsed, codec composed). The caller still
// sets Fabric and Parallelism — the two knobs that are process-local by
// design.
func (s JobSpec) BuildConfig() (core.Config, error) {
	spec, err := models.ByName(s.Model)
	if err != nil {
		return core.Config{}, err
	}
	het, err := ParseHet(s.Het)
	if err != nil {
		return core.Config{}, err
	}
	train, test := models.DatasetFor(spec, s.Seed)
	cfg := core.Config{
		K: s.K, BatchSize: s.Batch, Seed: s.Seed,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Train: train, Test: test,
		Het:            het,
		MaxSteps:       s.Steps,
		EvalEvery:      s.EvalEvery,
		TargetAccuracy: s.Target,
	}
	switch {
	case s.TopK > 0 && s.QBits > 0:
		cfg.SyncCodec = compress.Chain{Stages: []compress.Codec{
			compress.TopK{Fraction: s.TopK}, compress.Quantize{Bits: s.QBits}}}
	case s.TopK > 0:
		cfg.SyncCodec = compress.TopK{Fraction: s.TopK}
	case s.QBits > 0:
		cfg.SyncCodec = compress.Quantize{Bits: s.QBits}
	}
	return cfg, nil
}

// BuildStrategy constructs the named strategy. FedOpt variants bind
// their round length to cfg; PostLocal switches at a quarter of the
// step budget, matching the fdarun CLI convention.
func (s JobSpec) BuildStrategy(cfg core.Config) (core.Strategy, error) {
	return StrategyFor(s.Strategy, s.Theta, s.Tau, cfg)
}

// StrategyFor is the shared strategy-name index used by fdarun,
// fdaserve and the distributed workers.
func StrategyFor(name string, theta float64, tau int, cfg core.Config) (core.Strategy, error) {
	switch name {
	case "LinearFDA":
		return core.NewLinearFDA(theta), nil
	case "SketchFDA":
		return core.NewSketchFDA(theta), nil
	case "OracleFDA":
		return core.NewOracleFDA(theta), nil
	case "Synchronous":
		return core.NewSynchronous(), nil
	case "LocalSGD":
		return core.NewLocalSGD(tau), nil
	case "IncTau":
		return core.NewIncreasingTauLocalSGD(tau, 2), nil
	case "DecTau":
		return core.NewDecreasingTauLocalSGD(tau, 2), nil
	case "PostLocal":
		return core.NewPostLocalSGD(cfg.MaxSteps/4, tau), nil
	case "LAG":
		return core.NewLAG(tau, 0.5), nil
	case "FedAvg":
		return core.NewFedAvgFor(cfg, 1), nil
	case "FedAvgM":
		return core.NewFedAvgMFor(cfg, 1), nil
	case "FedAdam":
		return core.NewFedAdamFor(cfg, 1), nil
	default:
		return nil, fmt.Errorf("dist: unknown strategy %q", name)
	}
}

// ParseHet converts the het selector grammar (iid, label<Y>, pct<X>,
// dir<alpha>) shared by fdarun and fdaserve into a scenario.
func ParseHet(s string) (data.Heterogeneity, error) {
	return data.ParseHeterogeneity(s)
}
