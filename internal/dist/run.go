package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/core"
)

// RunWorker joins the coordinator at addr as one worker process: it
// dials the fabric, receives its rank and the job spec, builds the
// replicated session for its rank, trains to completion, and reports
// its Result to the coordinator. The returned Result is this rank's
// local view — bit-identical to every other rank's by the fabric
// determinism contract.
//
// parallelism bounds the in-process worker/eval goroutines exactly like
// the -jobs flag (results are unaffected).
func RunWorker(ctx context.Context, addr string, parallelism int) (res core.Result, rank int, err error) {
	fabric, payload, err := comm.DialFabric(ctx, addr, comm.DefaultCostModel())
	if err != nil {
		return core.Result{}, -1, err
	}
	defer fabric.Close()
	rank = fabric.Rank()

	var spec JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return core.Result{}, rank, fmt.Errorf("dist: decoding job spec: %w", err)
	}
	spec = spec.WithDefaults()
	cfg, err := spec.BuildConfig()
	if err != nil {
		return core.Result{}, rank, err
	}
	cfg.Fabric = fabric
	cfg.Parallelism = parallelism
	strat, err := spec.BuildStrategy(cfg)
	if err != nil {
		return core.Result{}, rank, err
	}

	res, err = runSession(ctx, cfg, strat)
	if err != nil {
		return res, rank, err
	}
	body, err := json.Marshal(res)
	if err != nil {
		return res, rank, err
	}
	if err := fabric.SendResult(body); err != nil {
		return res, rank, fmt.Errorf("dist: reporting result: %w", err)
	}
	return res, rank, nil
}

// runSession drives one session, converting fabric transport panics
// (connection drops, protocol desync) into ordinary errors.
func runSession(ctx context.Context, cfg core.Config, strat core.Strategy) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			var fe *comm.FabricError
			if e, ok := r.(error); ok && errors.As(e, &fe) {
				err = fe
				return
			}
			panic(r)
		}
	}()
	sess, err := core.NewSession(ctx, cfg, strat)
	if err != nil {
		return core.Result{}, err
	}
	return sess.Run()
}

// Coordinate drives one distributed training run end to end: it serves
// the rendezvous and relay on coord, hands spec to every worker, waits
// for all K results, verifies the ranks agree bit-for-bit, and returns
// the cluster Result. The coordinator owns no training state — it is
// transport plus verification.
func Coordinate(ctx context.Context, coord *comm.Coordinator, spec JobSpec) (core.Result, error) {
	spec = spec.WithDefaults()
	job, err := json.Marshal(spec)
	if err != nil {
		return core.Result{}, err
	}
	payloads, err := coord.Serve(ctx, job)
	if err != nil {
		return core.Result{}, err
	}
	results := make([]core.Result, len(payloads))
	for r, p := range payloads {
		if err := json.Unmarshal(p, &results[r]); err != nil {
			return core.Result{}, fmt.Errorf("dist: decoding rank %d result: %w", r, err)
		}
	}
	for r := 1; r < len(results); r++ {
		if err := sameResult(results[0], results[r]); err != nil {
			return results[0], fmt.Errorf("dist: rank %d diverged from rank 0: %w — the fabric determinism contract is broken", r, err)
		}
	}
	return results[0], nil
}

// sameResult checks the fields the determinism contract pins: training
// trajectory (steps, syncs, accuracy bits) and cost accounting.
func sameResult(a, b core.Result) error {
	switch {
	case a.Steps != b.Steps:
		return fmt.Errorf("steps %d vs %d", a.Steps, b.Steps)
	case a.SyncCount != b.SyncCount:
		return fmt.Errorf("syncs %d vs %d", a.SyncCount, b.SyncCount)
	case a.CommBytes != b.CommBytes:
		return fmt.Errorf("comm bytes %d vs %d", a.CommBytes, b.CommBytes)
	case a.StateBytes != b.StateBytes || a.ModelBytes != b.ModelBytes:
		return fmt.Errorf("byte split (%d,%d) vs (%d,%d)", a.StateBytes, a.ModelBytes, b.StateBytes, b.ModelBytes)
	case math.Float64bits(a.FinalTestAcc) != math.Float64bits(b.FinalTestAcc):
		return fmt.Errorf("final accuracy %v vs %v", a.FinalTestAcc, b.FinalTestAcc)
	case a.ReachedTarget != b.ReachedTarget:
		return fmt.Errorf("reached %v vs %v", a.ReachedTarget, b.ReachedTarget)
	case len(a.History) != len(b.History):
		return fmt.Errorf("history length %d vs %d", len(a.History), len(b.History))
	}
	return nil
}
