package dist

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
)

// testSpec is a fast distributed job: the smallest zoo model, two
// workers, a handful of steps.
func testSpec() JobSpec {
	return JobSpec{
		Model: "lenet5s", Strategy: "LinearFDA", Theta: 0.1,
		K: 2, Batch: 16, Steps: 24, EvalEvery: 8, Seed: 9,
	}
}

// runDistributed executes spec as a real coordinator + K worker
// processes collapsed into goroutines (same code paths, same wire
// protocol, loopback sockets).
func runDistributed(t *testing.T, spec JobSpec) (core.Result, []core.Result) {
	t.Helper()
	coord, err := comm.ListenCoordinator("127.0.0.1:0", spec.K)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	workerRes := make([]core.Result, spec.K)
	workerErr := make([]error, spec.K)
	for w := 0; w < spec.K; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, rank, err := RunWorker(ctx, coord.Addr(), 1)
			if err != nil {
				workerErr[w] = err
				return
			}
			workerRes[rank] = res
		}(w)
	}
	res, err := Coordinate(ctx, coord, spec)
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	for w, werr := range workerErr {
		if werr != nil {
			t.Fatalf("worker %d: %v", w, werr)
		}
	}
	return res, workerRes
}

// TestDistributedMatchesLocal pins the whole dist stack: a coordinator
// driving RunWorker processes over real sockets produces exactly the
// Result (accuracy bits, byte counts, sync schedule, history) of an
// in-process run built from the same JobSpec.
func TestDistributedMatchesLocal(t *testing.T) {
	spec := testSpec().WithDefaults()

	cfg, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	strat, err := spec.BuildStrategy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Run(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}

	distRes, workerRes := runDistributed(t, spec)
	if !reflect.DeepEqual(local, distRes) {
		t.Fatalf("distributed result diverged from local:\n%+v\nvs\n%+v", distRes, local)
	}
	for rank, wr := range workerRes {
		if math.Float64bits(wr.FinalTestAcc) != math.Float64bits(local.FinalTestAcc) {
			t.Fatalf("rank %d accuracy %v, local %v", rank, wr.FinalTestAcc, local.FinalTestAcc)
		}
		if wr.CommBytes != local.CommBytes {
			t.Fatalf("rank %d charged %d bytes, local %d", rank, wr.CommBytes, local.CommBytes)
		}
	}
	if local.SyncCount == 0 {
		t.Fatal("degenerate test: no synchronizations happened")
	}
}

// TestDistributedCompressedSync sends the drifts through the real wire
// codec path (Encode on the sender, framed exchange, Decode on every
// receiver) and still matches the local run bit-for-bit.
func TestDistributedCompressedSync(t *testing.T) {
	spec := testSpec()
	spec.TopK = 0.25
	spec.QBits = 8
	spec = spec.WithDefaults()

	cfg, err := spec.BuildConfig()
	if err != nil {
		t.Fatal(err)
	}
	strat, err := spec.BuildStrategy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Run(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	distRes, _ := runDistributed(t, spec)
	if !reflect.DeepEqual(local, distRes) {
		t.Fatalf("compressed distributed result diverged:\n%+v\nvs\n%+v", distRes, local)
	}
	if local.SyncCount == 0 {
		t.Fatal("degenerate test: no synchronizations happened")
	}
}

// TestCoordinateRejectsDivergence exercises the verification half of
// Coordinate through its helper.
func TestCoordinateRejectsDivergence(t *testing.T) {
	a := core.Result{Steps: 10, FinalTestAcc: 0.5}
	b := a
	if err := sameResult(a, b); err != nil {
		t.Fatalf("equal results rejected: %v", err)
	}
	b.FinalTestAcc = math.Nextafter(0.5, 1)
	if err := sameResult(a, b); err == nil {
		t.Fatal("diverged accuracy accepted")
	}
	b = a
	b.CommBytes = 1
	if err := sameResult(a, b); err == nil {
		t.Fatal("diverged byte accounting accepted")
	}
}

// TestJobSpecDefaults pins the documented zero-value behavior.
func TestJobSpecDefaults(t *testing.T) {
	s := JobSpec{Model: "lenet5s", Strategy: "LinearFDA"}.WithDefaults()
	if s.K != 5 || s.Batch != 32 || s.Steps != 200 || s.EvalEvery != 20 || s.Seed != 1 {
		t.Fatalf("defaults: %+v", s)
	}
	if s.Theta <= 0 {
		t.Fatalf("theta default not taken from the model grid: %v", s.Theta)
	}
	if _, err := (JobSpec{Model: "nope", Strategy: "LinearFDA"}).WithDefaults().BuildConfig(); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := StrategyFor("nope", 0, 1, core.Config{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
