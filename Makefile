GO ?= go

.PHONY: check build fmt vet lint fuzz test race allocs bench apicheck apigen loadsmoke clustersmoke clusterbench

# check is the CI gate: formatting, static analysis (go vet plus the
# fdavet invariant analyzers), the public-API surface diff, the full
# test suite under the race detector, the zero-allocation regressions
# (which must run without -race, where they self-skip), and a
# benchmark smoke.
check: fmt vet lint apicheck race allocs bench

# lint runs the fdavet suite (DESIGN.md §12): detmap, wallclock,
# floatsum, obswrite and noalloc enforce the determinism, zero-alloc
# and telemetry-non-interference invariants on every package. Exits
# non-zero on any finding, including unused //fda:allow annotations.
lint:
	$(GO) run ./cmd/fdavet ./...

# fuzz gives each native fuzz target a short adversarial run on top of
# its always-on seed corpus (the seeds run as plain tests under
# `go test`). Targets: the checkpoint v2 container decoder, the
# compress wire-frame decoders and the Prometheus exposition validator
# — every parser that consumes bytes from disk or socket.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/checkpoint -fuzz FuzzUnmarshal -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compress -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compress -fuzz FuzzWireRoundtrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs -fuzz FuzzValidatePrometheusText -fuzztime $(FUZZTIME)

# The public surface of the fda package is pinned in docs/fda-api.txt
# (a go doc -all dump). apicheck fails when a change alters it without
# regenerating the golden file (make apigen), so API breaks are always
# an explicit, reviewed diff — never a silent side effect.
apicheck:
	@$(GO) doc -all ./fda > .fda-api.tmp || { rm -f .fda-api.tmp; exit 1; }
	@if ! diff -u docs/fda-api.txt .fda-api.tmp; then \
		rm -f .fda-api.tmp; \
		echo "public fda API changed; review the diff above and run 'make apigen'"; \
		exit 1; \
	fi
	@rm -f .fda-api.tmp

apigen:
	@mkdir -p docs
	@$(GO) doc -all ./fda > docs/fda-api.txt
	@echo "wrote docs/fda-api.txt"

# The AllocsPerRun assertions guard the steady-state zero-allocation
# contract (DESIGN.md §7) and the telemetry layer's zero-alloc hot path
# in both enabled and disabled states (DESIGN.md §11); race
# instrumentation allocates, so they skip themselves under -race and
# need this separate uninstrumented run.
allocs:
	$(GO) test ./internal/core/ ./internal/obs/ -run ZeroAllocs -v | grep -v '^=== RUN'

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The explicit timeout keeps the race-instrumented figure sweeps from
# tripping go test's 10m default on small (1–2 core) machines.
race:
	$(GO) test -race -timeout 45m ./...

# bench runs the suite once and records a machine-readable report in
# BENCH_PR9.json (op, ns/op, bytes, custom metrics, env metadata) so the
# perf trajectory is tracked across PRs (BENCH_PR2.json holds the
# pre-fused-kernel baseline, BENCH_PR3.json the fused-kernel one,
# BENCH_PR5.json the transport-fabric one, BENCH_PR6.json the warm-start
# one, BENCH_PR7.json the telemetry one). The raw text still prints.
# Figure/sweep benches run once (each iteration is a whole experiment);
# the step-, kernel-, fabric- and telemetry-level benches run 100
# iterations so the recorded hot-path numbers are steady-state rather
# than cold-start noise. The Fabric series contrasts the in-process,
# simulated-network and loopback-TCP AllReduce; the LocalStepSession
# ObsOff/ObsOn pair and the Obs micro benches price the telemetry layer
# in both states (disabled must be unmeasurable, DESIGN.md §11). The
# Workload series prices the load-generation machinery (DESIGN.md §13):
# schedule expansion, trace serialization, open-loop dispatch.
bench:
	@$(GO) test -run '^$$' -bench '^Benchmark(Table2|Figure|Ablation|Sweep|RunWorkers)' \
		-benchtime 1x -benchmem -timeout 0 . > bench.raw.txt \
		|| { cat bench.raw.txt; rm -f bench.raw.txt; exit 1; }
	@$(GO) test -run '^$$' -bench '^Benchmark(LocalStep|Kernel|Fabric|Obs)' \
		-benchtime 100x -benchmem -timeout 0 . >> bench.raw.txt \
		|| { cat bench.raw.txt; rm -f bench.raw.txt; exit 1; }
	@$(GO) test -run '^$$' -bench '^BenchmarkWorkload' \
		-benchtime 100x -benchmem -timeout 0 ./internal/workload >> bench.raw.txt \
		|| { cat bench.raw.txt; rm -f bench.raw.txt; exit 1; }
	@$(GO) run ./cmd/benchjson -in bench.raw.txt -out BENCH_PR9.json
	@rm -f bench.raw.txt
	@echo "wrote BENCH_PR9.json"

# loadsmoke is the load-path CI gate (DESIGN.md §13): boot a real
# fdaserve with the admission cap armed, drive two seconds of Poisson
# traffic through fdaload's default mix, and validate the report —
# nonzero completed work, zero unexpected errors (-check exits
# non-zero otherwise).
loadsmoke:
	@rm -rf .loadsmoke && mkdir -p .loadsmoke
	@$(GO) build -o .loadsmoke/ ./cmd/fdaserve ./cmd/fdaload
	@./.loadsmoke/fdaserve -store .loadsmoke/store -addr 127.0.0.1:18091 \
		-max-queue 256 >.loadsmoke/server.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18091/v1/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	./.loadsmoke/fdaload -addr http://127.0.0.1:18091 -rate 40 -duration 2s \
		-mix train=1,status=4,store=1 -steps 10 -k 1 -eval-every 10 \
		-out .loadsmoke/report.json -check
	@rm -rf .loadsmoke

# clustersmoke is the scale-out CI gate (DESIGN.md §14): three fdaserve
# replicas on one shared store behind fdagate, two seconds of Poisson
# traffic through the gateway, and the fdaload report gated on zero
# unexpected errors with at most 25% shed load.
clustersmoke:
	@rm -rf .clustersmoke && mkdir -p .clustersmoke
	@$(GO) build -o .clustersmoke/ ./cmd/fdaserve ./cmd/fdagate ./cmd/fdaload
	@pids=""; \
	trap 'kill $$pids 2>/dev/null' EXIT; \
	for i in 1 2 3; do \
		./.clustersmoke/fdaserve -store .clustersmoke/store -addr 127.0.0.1:1809$$i \
			-name r$$i -max-queue 64 >.clustersmoke/serve$$i.log 2>&1 & \
		pids="$$pids $$!"; \
	done; \
	./.clustersmoke/fdagate -addr 127.0.0.1:18090 \
		-replicas http://127.0.0.1:18091,http://127.0.0.1:18092,http://127.0.0.1:18093 \
		-poll 500ms >.clustersmoke/gate.log 2>&1 & \
	pids="$$pids $$!"; \
	for t in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18090/v1/healthz 2>/dev/null | grep -q '"status":"ok"' && break; sleep 0.2; \
	done; \
	./.clustersmoke/fdaload -addr http://127.0.0.1:18090 -rate 15 -duration 2s \
		-mix train=1,status=4,store=1 -steps 10 -k 1 -eval-every 10 \
		-out .clustersmoke/report.json -check -max-rejected 0.25
	@rm -rf .clustersmoke

# clusterbench reproduces the committed BENCH_PR10.json: 1/2/4-replica
# ramps through fdagate folded into one capacity report by
# `fdagate -analyze` (see scripts/clusterbench.sh for the methodology).
clusterbench:
	@./scripts/clusterbench.sh BENCH_PR10.json
