GO ?= go

.PHONY: check build fmt vet test race bench

# check is the CI gate: formatting, static analysis, the full test suite
# under the race detector, and a one-iteration benchmark smoke.
check: fmt vet race bench

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The explicit timeout keeps the race-instrumented figure sweeps from
# tripping go test's 10m default on small (1–2 core) machines.
race:
	$(GO) test -race -timeout 45m ./...

# bench runs the suite once and records a machine-readable report in
# BENCH_PR2.json (op, ns/op, bytes, custom metrics) so the perf
# trajectory is tracked across PRs. The raw text still prints.
bench:
	@$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -timeout 0 . > bench.raw.txt \
		|| { cat bench.raw.txt; rm -f bench.raw.txt; exit 1; }
	@$(GO) run ./cmd/benchjson -in bench.raw.txt -out BENCH_PR2.json
	@rm -f bench.raw.txt
	@echo "wrote BENCH_PR2.json"
