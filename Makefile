GO ?= go

.PHONY: check build fmt vet test race bench

# check is the CI gate: formatting, static analysis, the full test suite
# under the race detector, and a one-iteration benchmark smoke.
check: fmt vet race bench

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
