package repro

import (
	"repro/fda"
	"repro/internal/data"
)

// benchSampler is a minimal deterministic batch source for the
// micro-benchmarks (avoids importing internal/data details in bench_test).
type benchSampler struct {
	ds  *fda.Dataset
	pos int
}

func newBenchSampler(ds *fda.Dataset) *benchSampler { return &benchSampler{ds: ds} }

func (s *benchSampler) batch(n int) data.Batch {
	b := data.Batch{X: make([][]float64, n), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		j := (s.pos + i) % s.ds.Len()
		b.X[i] = s.ds.X[j]
		b.Y[i] = s.ds.Y[j]
	}
	s.pos = (s.pos + n) % s.ds.Len()
	return b
}
