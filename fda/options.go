package fda

// Functional options for Config construction. NewConfig composes a
// Config from With* options, an alternative to struct literals that
// reads well at call sites which set only a few fields and keeps
// examples stable as Config grows:
//
//	cfg := fda.NewConfig(
//		fda.WithWorkers(8),
//		fda.WithSeed(1),
//		fda.WithModel(spec.Build),
//		fda.WithOptimizer(fda.NewAdam(1e-3)),
//		fda.WithData(train, test),
//		fda.WithTargetAccuracy(0.95),
//	)
//	sess, err := fda.NewSession(ctx, cfg, fda.NewLinearFDA(0.05))
//
// Every option sets exactly one Config field; zero values keep the
// trainer defaults (batch size 32 is the one opinionated default
// NewConfig adds, matching every experiment in the paper).

// Option mutates one field of a Config under construction.
type Option func(*Config)

// NewConfig builds a Config from options. Validate (or NewSession/Run,
// which call it) reports any missing required field.
func NewConfig(opts ...Option) Config {
	cfg := Config{BatchSize: 32}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithWorkers sets the number of simulated workers K.
func WithWorkers(k int) Option { return func(c *Config) { c.K = k } }

// WithBatchSize sets the local mini-batch size b.
func WithBatchSize(b int) Option { return func(c *Config) { c.BatchSize = b } }

// WithSeed sets the run seed; identical configs reproduce bit-equal
// results.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithModel sets the replica builder.
func WithModel(m ModelBuilder) Option { return func(c *Config) { c.Model = m } }

// WithOptimizer sets the local-optimizer factory.
func WithOptimizer(f func() Optimizer) Option {
	return func(c *Config) { c.Optimizer = f }
}

// WithData sets the global train and test datasets.
func WithData(train, test *Dataset) Option {
	return func(c *Config) { c.Train, c.Test = train, test }
}

// WithHeterogeneity selects the data-distribution scenario.
func WithHeterogeneity(h Heterogeneity) Option {
	return func(c *Config) { c.Het = h }
}

// WithMaxSteps caps the in-parallel learning steps.
func WithMaxSteps(steps int) Option { return func(c *Config) { c.MaxSteps = steps } }

// WithTargetAccuracy ends the run once the global model reaches the
// given test accuracy.
func WithTargetAccuracy(acc float64) Option {
	return func(c *Config) { c.TargetAccuracy = acc }
}

// WithEvalEvery sets the step interval between evaluations.
func WithEvalEvery(steps int) Option { return func(c *Config) { c.EvalEvery = steps } }

// WithTrainAccuracy additionally records training accuracy at each
// evaluation point.
func WithTrainAccuracy() Option {
	return func(c *Config) { c.RecordTrainAccuracy = true }
}

// WithSyncCodec compresses model synchronizations with the codec.
func WithSyncCodec(codec Codec) Option { return func(c *Config) { c.SyncCodec = codec } }

// WithCostModel overrides the communication cost accounting.
func WithCostModel(cm CostModel) Option { return func(c *Config) { c.Cost = cm } }

// WithFabric runs the training on the given communication backend: nil
// (the default) selects the in-process reference cluster, NewSimFabric
// a modeled heterogeneous network with a virtual clock, and a dialed
// TCP fabric a multi-process cluster. Results are bit-identical across
// fabrics; only cost/time accounting differs. A fabric instance carries
// its own meter and clock and therefore belongs to exactly one run.
func WithFabric(f Fabric) Option { return func(c *Config) { c.Fabric = f } }

// WithParallelism bounds the goroutines of the worker/eval loops
// (results are bit-identical at any setting; see AutoParallelism).
func WithParallelism(jobs int) Option { return func(c *Config) { c.Parallelism = jobs } }
