package fda_test

import (
	"encoding/json"
	"testing"

	"repro/fda"
)

// TestRunRegistryFacade exercises the library-user path to the run
// registry: open a store, check a spec, persist records, read them
// back.
func TestRunRegistryFacade(t *testing.T) {
	st, err := fda.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := fda.RunSpec{
		Experiment: "custom", Seed: 1,
		Model: "lenet5s", Strategy: "LinearFDA", Theta: 0.05, K: 5,
		Het: "iid", Targets: []float64{0.9}, CellSeed: 42,
	}
	if fda.Cached(st, spec) {
		t.Fatal("fresh store reports spec cached")
	}
	if spec.Hash() == (fda.RunSpec{Experiment: "custom", Seed: 2}).Hash() {
		t.Fatal("different specs share a hash")
	}
	if err := st.Put(spec, []json.RawMessage{json.RawMessage(`{"steps":12}`)}); err != nil {
		t.Fatal(err)
	}
	if !fda.Cached(st, spec) {
		t.Fatal("stored spec not reported cached")
	}
	recs, ok, err := st.Get(spec)
	if err != nil || !ok || len(recs) != 1 || string(recs[0]) != `{"steps":12}` {
		t.Fatalf("get: %s ok=%v err=%v", recs, ok, err)
	}
	ms, err := st.List()
	if err != nil || len(ms) != 1 {
		t.Fatalf("list: %v err=%v", ms, err)
	}
	var m fda.RunManifest = ms[0]
	if m.Spec.Experiment != "custom" || m.Records != 1 {
		t.Fatalf("manifest: %+v", m)
	}
}
