package fda_test

import (
	"testing"

	"repro/fda"
)

// buildMLP is the canonical quickstart model.
func buildMLP(dim, classes int) fda.ModelBuilder {
	return func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(dim, 32, fda.GlorotUniformInit),
			fda.NewReLU(32),
			fda.NewDense(32, classes, fda.GlorotUniformInit),
		)
	}
}

// The facade must support the full documented quickstart flow.
func TestFacadeQuickstartFlow(t *testing.T) {
	train, test := fda.MNISTLike(1)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	cfg := fda.Config{
		K: 4, BatchSize: 32, Seed: 1,
		Model:     buildMLP(train.Dim(), train.NumClasses),
		Optimizer: fda.NewAdam(1e-3),
		Train:     train, Test: test,
		MaxSteps: 120, EvalEvery: 30,
	}
	res := fda.MustRun(cfg, fda.NewLinearFDA(0.08))
	if res.Steps != 120 {
		t.Fatalf("run stopped early: %v", res)
	}
	if res.CommBytes == 0 {
		t.Fatal("no communication recorded")
	}

	res2, err := fda.Run(cfg, fda.NewSketchFDA(0.08))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Strategy != "SketchFDA" {
		t.Fatalf("strategy %q", res2.Strategy)
	}
}

func TestFacadeHeterogeneityAndBaselines(t *testing.T) {
	train, test := fda.MNISTLike(2)
	cfg := fda.Config{
		K: 4, BatchSize: 16, Seed: 2,
		Model:     buildMLP(train.Dim(), train.NumClasses),
		Optimizer: fda.NewAdam(1e-3),
		Train:     train, Test: test,
		Het:      fda.NonIIDLabel(0, 2),
		MaxSteps: 40, EvalEvery: 20,
	}
	for _, s := range []fda.Strategy{
		fda.NewSynchronous(),
		fda.NewLocalSGD(10),
		fda.NewFedAdamFor(cfg, 1),
	} {
		res := fda.MustRun(cfg, s)
		if res.Steps != 40 {
			t.Fatalf("%s stopped early", res.Strategy)
		}
	}
}

func TestFacadeAsync(t *testing.T) {
	train, test := fda.MNISTLike(3)
	ac := fda.AsyncConfig{
		Config: fda.Config{
			K: 3, BatchSize: 16, Seed: 3,
			Model:     buildMLP(train.Dim(), train.NumClasses),
			Optimizer: fda.NewAdam(1e-3),
			Train:     train, Test: test,
			MaxSteps: 30,
		},
		Theta:  0.1,
		Speeds: []float64{1, 1, 0.5},
	}
	res, err := fda.RunAsync(ac)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepsPerWorker) != 3 {
		t.Fatalf("per-worker steps %v", res.StepsPerWorker)
	}
}

func TestFacadeCompressionComposes(t *testing.T) {
	train, test := fda.MNISTLike(4)
	cfg := fda.Config{
		K: 3, BatchSize: 16, Seed: 4,
		Model:     buildMLP(train.Dim(), train.NumClasses),
		Optimizer: fda.NewAdam(1e-3),
		Train:     train, Test: test,
		MaxSteps: 60, EvalEvery: 30,
	}
	dense := fda.MustRun(cfg, fda.NewLinearFDA(0.05))
	cfg.SyncCodec = fda.TopK{Fraction: 0.1}
	sparse := fda.MustRun(cfg, fda.NewLinearFDA(0.05))
	if sparse.ModelBytes >= dense.ModelBytes {
		t.Fatalf("top-k sync (%d B) not cheaper than dense (%d B)",
			sparse.ModelBytes, dense.ModelBytes)
	}
}

func TestFacadeModelZooAndSketches(t *testing.T) {
	if len(fda.ModelCatalog()) != 5 {
		t.Fatal("zoo size")
	}
	spec, err := fda.ModelByName("lenet5s")
	if err != nil {
		t.Fatal(err)
	}
	tr, te := fda.DatasetForModel(spec, 1)
	if tr.Len() == 0 || te.Len() == 0 {
		t.Fatal("empty zoo datasets")
	}

	sk := fda.NewSketcher(5, 64, 1)
	v := make([]float64, 500)
	for i := range v {
		v[i] = 1
	}
	est := fda.M2(sk.Sketch(v))
	if est < 250 || est > 1000 {
		t.Fatalf("M2 estimate %v far from 500", est)
	}
}

func TestFacadeProfilesAndCostModel(t *testing.T) {
	if fda.DefaultCostModel().BytesPerParam != 4 {
		t.Fatal("cost model default")
	}
	if fda.ProfileFL.BandwidthBps >= fda.ProfileHPC.BandwidthBps {
		t.Fatal("profile ordering")
	}
	_ = fda.ProfileBalanced
}
