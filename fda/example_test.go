package fda_test

import (
	"fmt"

	"repro/fda"
)

// ExampleRun trains a small model across four simulated workers with
// LinearFDA and prints whether the accuracy target was reached. Runs are
// deterministic in the seed, so this example's output is stable.
func ExampleRun() {
	train, test := fda.MNISTLike(42)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	model := func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(train.Dim(), 32, fda.GlorotUniformInit),
			fda.NewReLU(32),
			fda.NewDense(32, 10, fda.GlorotUniformInit),
		)
	}
	cfg := fda.Config{
		K: 4, BatchSize: 32, Seed: 42,
		Model: model, Optimizer: fda.NewAdam(1e-3),
		Train: train, Test: test,
		TargetAccuracy: 0.9, MaxSteps: 800,
	}
	res, err := fda.Run(cfg, fda.NewLinearFDA(0.1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("strategy:", res.Strategy)
	fmt.Println("reached target:", res.ReachedTarget)
	// Output:
	// strategy: LinearFDA
	// reached target: true
}

// ExampleNewSketcher demonstrates the AMS sketch: estimating a squared
// norm from a compact summary and exploiting linearity.
func ExampleNewSketcher() {
	s := fda.NewSketcher(5, 250, 7)
	v := make([]float64, 10000)
	for i := range v {
		v[i] = 1 // ‖v‖² = 10000
	}
	est := fda.M2(s.Sketch(v))
	fmt.Println("within 10%:", est > 9000 && est < 11000)
	// Output:
	// within 10%: true
}

// ExampleHeterogeneity shows the paper's data-distribution scenarios.
func ExampleHeterogeneity() {
	fmt.Println(fda.IID())
	fmt.Println(fda.NonIIDPercent(60))
	fmt.Println(fda.NonIIDLabel(0, 2))
	fmt.Println(fda.NonIIDDirichlet(0.5))
	// Output:
	// IID
	// Non-IID: 60%
	// Non-IID: Label "0"
	// Non-IID: Dir(0.5)
}

// ExampleCostModel shows the paper's communication accounting: one ring
// AllReduce of a d-dimensional float32 model across K workers.
func ExampleCostModel() {
	cm := fda.DefaultCostModel()
	const d, k = 1000, 8
	fmt.Println("per-worker bytes:", cm.PerWorkerBytes(d, k))
	fmt.Println("cluster total:  ", cm.TotalBytes(d, k))
	// Output:
	// per-worker bytes: 7000
	// cluster total:   56000
}
