package fda

import (
	"io"

	"repro/internal/obs"
)

// Telemetry (DESIGN.md §11). The library carries a process-wide metrics
// registry and span tracer that instrument sessions, fabrics and the
// run registry. Both are off by default and cost nothing disabled (one
// atomic load per would-be update, zero allocations); enabled or not,
// training results are bit-identical — telemetry is a pure side
// channel, pinned by the core parity tests.
type (
	// TelemetrySnapshot is a point-in-time copy of every registered
	// metric, JSON-encodable (the fdaserve /v1/metrics payload shape).
	TelemetrySnapshot = obs.Snap
	// TelemetryCounter, TelemetryGauge and TelemetryHistogram are the
	// snapshot's per-metric entries; histograms carry count, sum and
	// p50/p95/p99 estimates.
	TelemetryCounter   = obs.CounterValue
	TelemetryGauge     = obs.GaugeValue
	TelemetryHistogram = obs.HistogramValue
)

var (
	// EnableTelemetry turns the metrics registry and span clock on;
	// DisableTelemetry turns them off again. TelemetryOn reports the
	// current state.
	EnableTelemetry  = obs.Enable
	DisableTelemetry = obs.Disable
	TelemetryOn      = obs.On

	// StartTrace arms whole-run span tracing: spans (session steps,
	// fabric collectives, runstore operations, warm-start restores) are
	// streamed to w as Chrome trace-event JSON, openable in Perfetto or
	// chrome://tracing. Call EnableTelemetry first — the tracer shares
	// the telemetry clock. StopTrace closes the JSON array and flushes.
	StartTrace = obs.TraceTo
	StopTrace  = obs.StopTrace
)

// Telemetry returns a snapshot of the process-wide metrics registry:
// session step/sync/eval timings, per-strategy sync counters, fabric
// byte counters, runstore latencies, and anything the embedding process
// registered on top.
func Telemetry() TelemetrySnapshot { return obs.Default.Snapshot() }

// WriteTelemetryPrometheus writes the registry in Prometheus text
// exposition format — what fdaserve serves at GET /metrics.
func WriteTelemetryPrometheus(w io.Writer) error { return obs.Default.WritePrometheus(w) }
