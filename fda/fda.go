// Package fda is the public API of the Federated Dynamic Averaging (FDA)
// library — a Go reproduction of "Communication-Efficient Distributed Deep
// Learning via Federated Dynamic Averaging" (EDBT 2025).
//
// FDA trains a model across K workers and synchronizes them only when the
// model variance across workers exceeds a threshold Θ, estimated each step
// from tiny per-worker states (an AMS sketch for SketchFDA, two scalars
// for LinearFDA) instead of on a fixed schedule. The package re-exports
// the library's building blocks:
//
//   - strategies: NewSketchFDA, NewLinearFDA, NewSynchronous, NewLocalSGD,
//     NewFedAvg/NewFedAvgM/NewFedAdam (and their *For constructors),
//   - the session API: NewSession over a Config (built as a literal or
//     with NewConfig and the With* options) returns an incremental,
//     cancellable, checkpointable run with a typed event stream,
//   - the batch trainer: Run/MustRun — thin, bit-identical wrappers over
//     a session — and RunAsync/RunAsyncContext for the coordinator-based
//     asynchronous variant,
//   - substrates: neural networks (nn), optimizers (opt), synthetic
//     datasets and heterogeneity partitioners (data), AMS sketches
//     (sketch), the simulated cluster (comm), and sync compression
//     (compress) through type aliases.
//
// A minimal training run:
//
//	train, test := fda.MNISTLike(1)
//	cfg := fda.Config{
//		K: 8, BatchSize: 32, Seed: 1,
//		Model:     myModelBuilder,
//		Optimizer: fda.NewAdam(1e-3),
//		Train: train, Test: test,
//		TargetAccuracy: 0.95,
//	}
//	res := fda.MustRun(cfg, fda.NewLinearFDA(0.05))
//	fmt.Println(res)
//
// The same run as an observable session:
//
//	sess, err := fda.NewSession(ctx, cfg, fda.NewLinearFDA(0.05))
//	sess.Subscribe(func(e fda.Event) { ... })   // StepEvent, SyncEvent, EvalEvent, DoneEvent
//	res, err = sess.Run()                       // or Step() one step at a time
//
// See examples/ for complete programs (examples/session walks through
// events, cancellation and bit-exact checkpoint resume).
package fda

import (
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/runstore"
	"repro/internal/sketch"
	"repro/internal/tensor"
)

// Core training types.
type (
	// Config describes one training run; see core.Config. Construct it
	// as a literal or with NewConfig and the With* options; Validate
	// reports structured per-field errors.
	Config = core.Config
	// FieldError pinpoints one invalid Config field.
	FieldError = core.FieldError
	// ConfigError aggregates every invalid field found by
	// Config.Validate.
	ConfigError = core.ConfigError
	// Result summarizes a run's cost and quality.
	Result = core.Result
	// Point is one evaluation snapshot of a run.
	Point = core.Point
	// Strategy is a synchronization policy.
	Strategy = core.Strategy
	// ModelBuilder constructs model replicas.
	ModelBuilder = core.ModelBuilder
	// AsyncConfig configures the asynchronous runner (§3.3).
	AsyncConfig = core.AsyncConfig
	// AsyncResult reports an asynchronous run.
	AsyncResult = core.AsyncResult
	// Env is the state strategies operate on (advanced use: custom
	// strategies implement Strategy against it).
	Env = core.Env
)

// Session API: an in-flight training run as an incremental object.
// NewSession validates the config, positions the run before step 1, and
// hands back a Session that callers Step, observe through typed events,
// cancel via the context, and checkpoint with Snapshot/Restore. The
// batch entry points (Run/MustRun/RunAsync) are thin wrappers over the
// same loop, with bit-identical results. See DESIGN.md §8.
type (
	// Session is an incremental, cancellable, resumable training run.
	Session = core.Session
	// Event is the typed progress stream element; concrete variants are
	// StepEvent, SyncEvent, EvalEvent and DoneEvent.
	Event = core.Event
	// StepEvent reports one completed training step.
	StepEvent = core.StepEvent
	// SyncEvent reports one model synchronization (trigger and bytes).
	SyncEvent = core.SyncEvent
	// EvalEvent reports one evaluation of the averaged global model.
	EvalEvent = core.EvalEvent
	// DoneEvent carries the finished run's Result.
	DoneEvent = core.DoneEvent
	// EventSink consumes session events, synchronously on the stepping
	// goroutine.
	EventSink = core.EventSink
)

// Training entry points.
var (
	// NewSession starts an incremental training session under a context.
	NewSession = core.NewSession
	// Run executes a training run under a strategy.
	Run = core.Run
	// RunContext is Run under a context: cancellation stops between
	// steps and surfaces the context's error.
	RunContext = core.RunContext
	// MustRun is Run that panics on configuration errors.
	MustRun = core.MustRun
	// RunAsync executes the coordinator-based asynchronous FDA variant.
	RunAsync = core.RunAsync
	// RunAsyncContext is RunAsync on the session event spine: typed
	// events per local step/sync/eval plus context cancellation.
	RunAsyncContext = core.RunAsyncContext
)

// AutoParallelism, assigned to Config.Parallelism (or any Jobs knob),
// selects runtime.GOMAXPROCS goroutines. Results are bit-identical to a
// sequential run at the same seed — parallel sections write only
// index-addressed per-worker slots and reductions stay in worker order.
const AutoParallelism = core.AutoParallelism

// Strategies.
var (
	// NewSketchFDA returns the AMS-sketch FDA variant (Theorem 3.1).
	NewSketchFDA = core.NewSketchFDA
	// NewLinearFDA returns the two-scalar FDA variant (Theorem 3.2).
	NewLinearFDA = core.NewLinearFDA
	// NewOracleFDA returns the exact-variance ablation strategy.
	NewOracleFDA = core.NewOracleFDA
	// NewSynchronous returns the BSP baseline (sync every step).
	NewSynchronous = core.NewSynchronous
	// NewLocalSGD returns the fixed-τ Local-SGD baseline.
	NewLocalSGD = core.NewLocalSGD
	// NewFedAvgFor, NewFedAvgMFor and NewFedAdamFor return the federated
	// optimization baselines with round lengths bound to a config.
	NewFedAvgFor  = core.NewFedAvgFor
	NewFedAvgMFor = core.NewFedAvgMFor
	NewFedAdamFor = core.NewFedAdamFor
	// Related-work schedules (§2): increasing/decreasing τ, post-local
	// SGD and lazily aggregated rounds.
	NewIncreasingTauLocalSGD = core.NewIncreasingTauLocalSGD
	NewDecreasingTauLocalSGD = core.NewDecreasingTauLocalSGD
	NewPostLocalSGD          = core.NewPostLocalSGD
	NewLAG                   = core.NewLAG
	// NewAdaptiveTheta implements the paper's §5 future-work proposal:
	// a bandwidth-budget controller over Θ.
	NewAdaptiveTheta = core.NewAdaptiveTheta
)

// Neural-network stack.
type (
	// Network is a flat-parameter feed-forward network.
	Network = nn.Network
	// Layer is one differentiable network stage.
	Layer = nn.Layer
	// Shape is an activation volume (H, W, C).
	Shape = nn.Shape
)

var (
	// NewNetwork wires layers into a network.
	NewNetwork = nn.New
	// Layer constructors.
	NewDense         = nn.NewDense
	NewConv2D        = nn.NewConv2D
	NewMaxPool2D     = nn.NewMaxPool2D
	NewAvgPool2D     = nn.NewAvgPool2D
	NewGlobalAvgPool = nn.NewGlobalAvgPool
	NewReLU          = nn.NewReLU
	NewLeakyReLU     = nn.NewLeakyReLU
	NewTanh          = nn.NewTanh
	NewSigmoid       = nn.NewSigmoid
	NewDropout       = nn.NewDropout
	NewBatchNorm     = nn.NewBatchNorm
	// NewDenseBlock builds DenseNet-style concatenation blocks.
	NewDenseBlock = nn.NewDenseBlock
)

// Weight initialization schemes.
const (
	GlorotUniformInit = nn.GlorotUniformInit
	HeNormalInit      = nn.HeNormalInit
)

// Optimizers.
type Optimizer = opt.Optimizer

var (
	// NewSGD, NewSGDMomentum, NewSGDNesterov, NewAdam and NewAdamW return
	// local-optimizer factories.
	NewSGD         = opt.NewSGD
	NewSGDMomentum = opt.NewSGDMomentum
	NewSGDNesterov = opt.NewSGDNesterov
	NewAdam        = opt.NewAdam
	NewAdamW       = opt.NewAdamW
)

// Data: datasets, generators and partitioners.
type (
	// Dataset is an in-memory classification dataset.
	Dataset = data.Dataset
	// Heterogeneity selects the paper's data-distribution scenarios.
	Heterogeneity = data.Heterogeneity
	// SyntheticConfig parameterizes the synthetic task generator.
	SyntheticConfig = data.SyntheticConfig
)

var (
	// Synthetic generates a task from a config; MNISTLike/CIFAR10Like/
	// CIFAR100Like are the presets used by the experiments.
	Synthetic     = data.Synthetic
	MNISTLike     = data.MNISTLike
	CIFAR10Like   = data.CIFAR10Like
	CIFAR100Like  = data.CIFAR100Like
	FitNormalizer = data.FitNormalizer
	// IID, NonIIDPercent, NonIIDLabel and NonIIDDirichlet name the
	// heterogeneity scenarios (Dirichlet is the FL-literature extension).
	IID             = data.IID
	NonIIDPercent   = data.NonIIDPercent
	NonIIDLabel     = data.NonIIDLabel
	NonIIDDirichlet = data.NonIIDDirichlet
)

// Sketches (exposed for advanced monitoring uses).
type (
	// Sketcher carries shared AMS hash functions.
	Sketcher = sketch.Sketcher
	// Sketch is an l×m AMS sketch.
	Sketch = sketch.Sketch
)

var (
	// NewSketcher builds a sketcher; M2 estimates a squared norm.
	NewSketcher = sketch.NewSketcher
	M2          = sketch.M2
)

// Communication substrate: the pluggable fabric and its backends. The
// same training loop runs bit-identically on every fabric; only cost
// and time accounting differ (DESIGN.md §9).
type (
	// Fabric is the pluggable communication backend (assign with
	// Config.Fabric or WithFabric).
	Fabric = comm.Fabric
	// CostReport is the per-collective accounting a fabric returns.
	CostReport = comm.CostReport
	// CostModel controls byte accounting of collectives.
	CostModel = comm.CostModel
	// NetworkProfile translates bytes to wall-time estimates.
	NetworkProfile = comm.NetworkProfile
	// LinkProfile models one worker's link and compute speed in a
	// simulated-network scenario.
	LinkProfile = comm.LinkProfile
	// Scenario describes a heterogeneous deployment for the simulated
	// fabric (per-link profiles, straggler schedule, step compute time).
	Scenario = comm.Scenario
)

var (
	// DefaultCostModel matches the paper's accounting.
	DefaultCostModel = comm.DefaultCostModel
	// Network profiles of Figure 12.
	ProfileFL       = comm.ProfileFL
	ProfileBalanced = comm.ProfileBalanced
	ProfileHPC      = comm.ProfileHPC
	// NewSimFabric builds the simulated-network fabric: reference math
	// plus a deterministic virtual clock, so Results report estimated
	// wall-clock time-to-accuracy (Result.VirtualSec).
	NewSimFabric = comm.NewSimFabric
	// Canned deployment scenarios for NewSimFabric, also addressable by
	// name through ScenarioByName.
	ScenarioLAN       = comm.ScenarioLAN
	ScenarioFedWAN    = comm.ScenarioFedWAN
	ScenarioStraggler = comm.ScenarioStraggler
	ScenarioByName    = comm.ScenarioByName
)

// Compression codecs for the synchronization step. Every codec also
// implements WireCodec: Encode/Decode materialize the compressed form
// as length-prefixed, CRC-checked bytes, which is what the TCP fabric
// actually transmits during a compressed synchronization.
type (
	// Codec compresses synchronized drifts.
	Codec = compress.Codec
	// WireCodec is a Codec with a real byte-level wire format.
	WireCodec = compress.WireCodec
	// TopK keeps the largest-magnitude fraction of components.
	TopK = compress.TopK
	// Quantize maps components onto 2^Bits uniform levels.
	Quantize = compress.Quantize
	// Chain composes codecs left to right (e.g. top-k then quantize).
	Chain = compress.Chain
)

// Model zoo (the scaled Table 2 architectures).
type ModelSpec = models.Spec

var (
	// ModelCatalog lists the zoo; ModelByName fetches one entry.
	ModelCatalog = models.Catalog
	ModelByName  = models.ByName
	// DatasetForModel generates a spec's workload.
	DatasetForModel = models.DatasetFor
	// Pretrain produces centrally trained weights (transfer learning).
	Pretrain = models.Pretrain
	// WithInit starts every replica from fixed weights.
	WithInit = models.WithInit
)

// Checkpointing (model snapshots with CRC-verified binary encoding).
type Snapshot = checkpoint.Snapshot

var (
	// SaveCheckpoint and LoadCheckpoint persist snapshots atomically.
	SaveCheckpoint = checkpoint.Save
	LoadCheckpoint = checkpoint.Load
)

// Run registry: the content-addressed result store behind fdaexp -store
// and fdaserve. Results are keyed by the hash of a canonical RunSpec;
// because runs are bit-identical in their spec at any parallelism, a
// cached result is interchangeable with a fresh computation.
type (
	// RunStore is a content-addressed store of experiment records.
	RunStore = runstore.Store
	// RunSpec canonically identifies one run (parallelism-independent
	// fields only); RunSpec.Hash is its content address.
	RunSpec = runstore.Spec
	// RunManifest describes one stored run.
	RunManifest = runstore.Manifest
)

// OpenStore opens (creating as needed) a run registry rooted at a
// directory.
var OpenStore = runstore.Open

// Cached reports whether st already holds verified records for spec —
// i.e. whether resubmitting spec would be served from cache.
func Cached(st *RunStore, spec RunSpec) bool { return st.Contains(spec) }

// RNG re-exports the deterministic generator used throughout.
type RNG = tensor.RNG

// NewRNG returns a seeded deterministic generator.
var NewRNG = tensor.NewRNG
