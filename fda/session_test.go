package fda_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/fda"
)

// TestNewConfigOptions: the functional options compose a Config
// equivalent to the struct literal, and the session-backed facade run
// matches the batch entry point bit-for-bit.
func TestNewConfigOptions(t *testing.T) {
	train, test := fda.Synthetic(fda.SyntheticConfig{
		Seed: 5, Classes: 4, TrainPer: 60, TestPer: 15,
		Height: 6, Width: 6, Channels: 1,
	})
	model := func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(36, 16, fda.GlorotUniformInit),
			fda.NewReLU(16),
			fda.NewDense(16, 4, fda.GlorotUniformInit),
		)
	}
	cfg := fda.NewConfig(
		fda.WithWorkers(4),
		fda.WithBatchSize(16),
		fda.WithSeed(9),
		fda.WithModel(model),
		fda.WithOptimizer(fda.NewAdam(1e-3)),
		fda.WithData(train, test),
		fda.WithMaxSteps(40),
		fda.WithEvalEvery(10),
		fda.WithParallelism(2),
	)
	lit := fda.Config{
		K: 4, BatchSize: 16, Seed: 9,
		Model: model, Optimizer: fda.NewAdam(1e-3),
		Train: train, Test: test,
		MaxSteps: 40, EvalEvery: 10, Parallelism: 2,
	}
	want := fda.MustRun(lit, fda.NewLinearFDA(0.1))

	sess, err := fda.NewSession(context.Background(), cfg, fda.NewLinearFDA(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var done fda.DoneEvent
	sess.Subscribe(func(e fda.Event) {
		if d, ok := e.(fda.DoneEvent); ok {
			done = d
		}
	})
	got, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("options-built session diverged from literal-config Run:\nwant: %v\ngot:  %v", want, got)
	}
	if !reflect.DeepEqual(done.Result, got) {
		t.Fatal("DoneEvent result differs from Run return")
	}
}

// TestValidateStructuredErrors: the facade surfaces per-field errors.
func TestValidateStructuredErrors(t *testing.T) {
	err := fda.NewConfig(fda.WithWorkers(-2)).Validate()
	var cerr *fda.ConfigError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *fda.ConfigError, got %T (%v)", err, err)
	}
	found := false
	for _, f := range cerr.Fields {
		if f.Field == "K" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no K field error in %v", cerr)
	}
}
