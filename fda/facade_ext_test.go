package fda_test

import (
	"path/filepath"
	"testing"

	"repro/fda"
)

// The extended facade surface: new layers, related-work strategies, the
// adaptive-Θ controller, Dirichlet splits and checkpoints.
func TestFacadeNewLayersTrain(t *testing.T) {
	train, test := fda.MNISTLike(21)
	model := func(rng *fda.RNG) *fda.Network {
		conv := fda.NewConv2D(fda.Shape{H: 8, W: 8, C: 1}, 4, 3, fda.HeNormalInit)
		block := fda.NewDenseBlock(fda.Shape{H: 8, W: 8, C: 1}, conv, 4)
		pool := fda.NewAvgPool2D(block.OutShape(), 2)
		return fda.NewNetwork(rng,
			block,
			fda.NewLeakyReLU(block.OutDim(), 0.1),
			pool,
			fda.NewBatchNorm(pool.OutDim()),
			fda.NewDense(pool.OutDim(), 16, fda.HeNormalInit),
			fda.NewSigmoid(16),
			fda.NewDense(16, 10, fda.GlorotUniformInit),
		)
	}
	cfg := fda.Config{
		K: 3, BatchSize: 16, Seed: 21,
		Model: model, Optimizer: fda.NewAdam(1e-3),
		Train: train, Test: test,
		MaxSteps: 30, EvalEvery: 15,
	}
	res := fda.MustRun(cfg, fda.NewLinearFDA(0.1))
	if res.Steps != 30 {
		t.Fatalf("run stopped early: %v", res)
	}
}

func TestFacadeRelatedWorkStrategies(t *testing.T) {
	train, test := fda.MNISTLike(22)
	cfg := fda.Config{
		K: 3, BatchSize: 16, Seed: 22,
		Model:     buildMLP(train.Dim(), train.NumClasses),
		Optimizer: fda.NewAdam(1e-3),
		Train:     train, Test: test,
		MaxSteps: 40, EvalEvery: 20,
		Het: fda.NonIIDDirichlet(0.5),
	}
	for _, s := range []fda.Strategy{
		fda.NewIncreasingTauLocalSGD(4, 2),
		fda.NewDecreasingTauLocalSGD(16, 1),
		fda.NewPostLocalSGD(10, 5),
		fda.NewLAG(8, 0.5),
		fda.NewAdaptiveTheta(fda.NewLinearFDA(0.05), 5000),
	} {
		res := fda.MustRun(cfg, s)
		if res.Steps != 40 {
			t.Fatalf("%s stopped early", res.Strategy)
		}
	}
}

func TestFacadeCheckpointRoundTrip(t *testing.T) {
	train, _ := fda.MNISTLike(23)
	net := buildMLP(train.Dim(), train.NumClasses)(fda.NewRNG(23))
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := fda.SaveCheckpoint(path, &fda.Snapshot{Step: 7, Params: net.Params()}); err != nil {
		t.Fatal(err)
	}
	snap, err := fda.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 7 || len(snap.Params) != net.NumParams() {
		t.Fatalf("snapshot %+v", snap)
	}
	for i, v := range net.Params() {
		if snap.Params[i] != v {
			t.Fatal("checkpoint payload mismatch")
		}
	}
}
