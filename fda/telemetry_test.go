package fda_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/fda"
)

// TestFacadeTelemetry drives the documented telemetry flow: run once
// dark, once with telemetry on, verify the results are bit-identical,
// and check the snapshot and Prometheus exposition reflect the run.
func TestFacadeTelemetry(t *testing.T) {
	train, test := fda.MNISTLike(4)
	cfg := fda.Config{
		K: 3, BatchSize: 16, Seed: 4,
		Model:     buildMLP(train.Dim(), train.NumClasses),
		Optimizer: fda.NewAdam(1e-3),
		Train:     train, Test: test,
		MaxSteps: 30, EvalEvery: 10,
	}

	if fda.TelemetryOn() {
		t.Fatal("telemetry must be off by default")
	}
	dark := fda.MustRun(cfg, fda.NewLinearFDA(0.08))

	fda.EnableTelemetry()
	defer fda.DisableTelemetry()
	lit := fda.MustRun(cfg, fda.NewLinearFDA(0.08))
	if !reflect.DeepEqual(dark, lit) {
		t.Fatalf("telemetry changed the result:\ndark %+v\nlit  %+v", dark, lit)
	}

	snap := fda.Telemetry()
	if snap.CounterSum("fda_steps_total") < int64(cfg.MaxSteps) {
		t.Fatalf("snapshot records %d steps, ran %d", snap.CounterSum("fda_steps_total"), cfg.MaxSteps)
	}
	var sb strings.Builder
	if err := fda.WriteTelemetryPrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fda_session_step_seconds_count") {
		t.Fatalf("exposition missing session histogram:\n%s", sb.String())
	}
}
