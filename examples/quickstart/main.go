// Quickstart: train a small CNN across 8 simulated workers with
// LinearFDA and compare its communication bill against the Synchronous
// (BSP) baseline at the same accuracy target.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/fda"
)

func main() {
	// 1. A 10-class synthetic image task standing in for MNIST (the
	//    environment is offline; see DESIGN.md for the substitution).
	train, test := fda.MNISTLike(42)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	// 2. A model builder: every worker constructs its own replica; the
	//    trainer starts them all from identical weights (Algorithm 1).
	model := func(rng *fda.RNG) *fda.Network {
		conv := fda.NewConv2D(fda.Shape{H: 8, W: 8, C: 1}, 6, 3, fda.GlorotUniformInit)
		pool := fda.NewMaxPool2D(conv.OutShape(), 2)
		return fda.NewNetwork(rng,
			conv, fda.NewReLU(conv.OutDim()), pool,
			fda.NewDense(pool.OutDim(), 32, fda.GlorotUniformInit),
			fda.NewReLU(32),
			fda.NewDense(32, 10, fda.GlorotUniformInit),
		)
	}

	// 3. The training run: 8 workers, batch 32, stop at 95% test accuracy.
	cfg := fda.Config{
		K: 8, BatchSize: 32, Seed: 42,
		Model: model, Optimizer: fda.NewAdam(1e-3),
		Train: train, Test: test,
		TargetAccuracy: 0.95,
		MaxSteps:       800,
	}

	// Θ rule of thumb from the paper (Figure 12): Θ ≈ 4e-5 · d.
	d := model(fda.NewRNG(0)).NumParams()
	theta := 4e-5 * float64(d)
	fmt.Printf("model dimension d = %d, Θ = %.4f\n\n", d, theta)

	for _, strat := range []fda.Strategy{
		fda.NewLinearFDA(theta),
		fda.NewSketchFDA(theta),
		fda.NewSynchronous(),
	} {
		res := fda.MustRun(cfg, strat)
		fmt.Println(res)
	}
	fmt.Println("\nFDA reaches the same target with a fraction of the bytes:")
	fmt.Println("synchronizations happen only when the model variance across")
	fmt.Println("workers exceeds Θ, detected from tiny per-step states.")
}
