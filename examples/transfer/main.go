// Transfer learning: the paper's ConvNeXtLarge → CIFAR-100 fine-tuning
// scenario (§4, Figure 13). A model is pre-trained centrally (standing in
// for the ImageNet backbone + feature-extraction stage), then fine-tuned
// across workers with both FDA variants. On this harder task SketchFDA's
// tighter variance estimates pay off: it reaches the target with fewer
// synchronizations than LinearFDA.
//
// Run with:
//
//	go run ./examples/transfer
package main

import (
	"fmt"

	"repro/fda"
)

func main() {
	spec, err := fda.ModelByName("convnexts")
	if err != nil {
		panic(err)
	}
	train, test := fda.DatasetForModel(spec, 11)

	// Stage 1: central pre-training — the paper starts from a model whose
	// feature-extraction accuracy on the downstream task is already ≈60%.
	fmt.Println("pre-training the backbone centrally...")
	pre := fda.Pretrain(spec, train, 200, 32, 11)
	probe := spec.Build(fda.NewRNG(0))
	probe.SetParams(pre)
	base := probe.Accuracy(test)
	fmt.Printf("feature-extraction accuracy before fine-tuning: %.3f\n\n", base)

	// Stage 2: distributed fine-tuning of the full model with FDA.
	target := base + 0.25
	builder := fda.WithInit(spec.Build, pre)
	for _, name := range []string{"SketchFDA", "LinearFDA", "Synchronous"} {
		cfg := fda.Config{
			K: 3, BatchSize: 32, Seed: 11,
			Model: builder, Optimizer: spec.Optimizer,
			Train: train, Test: test,
			TargetAccuracy: target,
			MaxSteps:       600,
			EvalEvery:      15,
		}
		theta := spec.ThetaGrid[1]
		var strat fda.Strategy
		switch name {
		case "SketchFDA":
			strat = fda.NewSketchFDA(theta)
		case "LinearFDA":
			strat = fda.NewLinearFDA(theta)
		default:
			strat = fda.NewSynchronous()
		}
		res := fda.MustRun(cfg, strat)
		fmt.Println(res)
	}
	fmt.Printf("\nfine-tuning target was %.3f (feature-extraction %.3f + 0.25)\n", target, base)
}
