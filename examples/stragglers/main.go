// Stragglers: the asynchronous FDA variant of §3.3. A coordinator
// aggregates small local states as they arrive and triggers
// synchronization from the most recent state of every worker, so slow
// workers never block fast ones. This example runs a cluster where one
// worker is 4× slower and shows per-worker progress.
//
// Run with:
//
//	go run ./examples/stragglers
package main

import (
	"fmt"

	"repro/fda"
)

func main() {
	train, test := fda.MNISTLike(5)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	model := func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(train.Dim(), 32, fda.GlorotUniformInit),
			fda.NewReLU(32),
			fda.NewDense(32, 10, fda.GlorotUniformInit),
		)
	}
	d := model(fda.NewRNG(0)).NumParams()

	ac := fda.AsyncConfig{
		Config: fda.Config{
			K: 6, BatchSize: 32, Seed: 5,
			Model: model, Optimizer: fda.NewAdam(1e-3),
			Train: train, Test: test,
			TargetAccuracy: 0.93,
			MaxSteps:       800,
		},
		Theta: 4e-5 * float64(d),
		// Five nominal workers and one 4× straggler.
		Speeds: []float64{1, 1, 1, 1, 1, 0.25},
	}
	res, err := fda.RunAsync(ac)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Result)
	fmt.Printf("per-worker local steps: %v\n", res.StepsPerWorker)
	fmt.Printf("virtual clock at end:   %.1f step-times\n", res.VirtualTime)
	fmt.Println("\nthe straggler advanced at 1/4 the rate without ever blocking")
	fmt.Println("the cluster; synchronization still fires on variance evidence.")
}
