// Heterogeneity: the paper's claim that FDA keeps consistent cost and
// quality across IID and Non-IID splits. This example trains the same
// model on three data distributions — IID, "all label-0 samples on two
// workers", and "60% of the data sorted by label" — and prints the cost
// to reach a fixed accuracy target for FDA vs FedAdam.
//
// Run with:
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"

	"repro/fda"
)

func main() {
	train, test := fda.MNISTLike(7)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	model := func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(train.Dim(), 48, fda.GlorotUniformInit),
			fda.NewReLU(48),
			fda.NewDense(48, 10, fda.GlorotUniformInit),
		)
	}
	d := model(fda.NewRNG(0)).NumParams()
	theta := 4e-5 * float64(d)

	scenarios := []fda.Heterogeneity{
		fda.IID(),
		fda.NonIIDLabel(0, 2),
		fda.NonIIDPercent(60),
	}

	fmt.Printf("%-20s %-11s %8s %12s %8s\n", "distribution", "strategy", "steps", "comm (MB)", "reached")
	for _, het := range scenarios {
		for _, name := range []string{"LinearFDA", "FedAdam"} {
			cfg := fda.Config{
				K: 10, BatchSize: 32, Seed: 7,
				Model: model, Optimizer: fda.NewAdam(1e-3),
				Train: train, Test: test,
				Het:            het,
				TargetAccuracy: 0.93,
				MaxSteps:       900,
			}
			var strat fda.Strategy
			if name == "LinearFDA" {
				strat = fda.NewLinearFDA(theta)
			} else {
				strat = fda.NewFedAdamFor(cfg, 1)
			}
			res := fda.MustRun(cfg, strat)
			fmt.Printf("%-20s %-11s %8d %12.3f %8v\n",
				het, name, res.Steps, float64(res.CommBytes)/1e6, res.ReachedTarget)
		}
	}
	fmt.Println("\nFDA's costs stay in the same band across all three splits;")
	fmt.Println("the fixed-schedule baseline pays for heterogeneity with extra")
	fmt.Println("rounds (steps) to the same target.")
}
