// Session: drive a training run incrementally — observe its typed event
// stream, cancel it mid-flight, checkpoint it, and resume into a result
// bit-identical to a run that was never interrupted.
//
// Run with:
//
//	go run ./examples/session
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"

	"repro/fda"
)

func main() {
	// A small synthetic task and model (see examples/quickstart for the
	// walk-through of these pieces). The config is assembled with the
	// functional options this time.
	train, test := fda.MNISTLike(7)
	model := func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(64, 32, fda.GlorotUniformInit),
			fda.NewReLU(32),
			fda.NewDense(32, 10, fda.GlorotUniformInit),
		)
	}
	cfg := fda.NewConfig(
		fda.WithWorkers(6),
		fda.WithSeed(7),
		fda.WithModel(model),
		fda.WithOptimizer(fda.NewAdam(1e-3)),
		fda.WithData(train, test),
		fda.WithMaxSteps(120),
		fda.WithEvalEvery(30),
		fda.WithParallelism(fda.AutoParallelism),
	)
	theta := 0.05
	newStrat := func() fda.Strategy { return fda.NewLinearFDA(theta) }

	// Reference: the batch API (itself a thin loop over a session).
	want := fda.MustRun(cfg, newStrat())

	// 1. A session with a live event stream.
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := fda.NewSession(ctx, cfg, newStrat())
	check(err)
	sess.Subscribe(func(e fda.Event) {
		switch ev := e.(type) {
		case fda.SyncEvent:
			fmt.Printf("  sync #%d at step %d (%s, %d bytes)\n",
				ev.SyncCount, ev.Step, ev.Trigger, ev.SyncBytes)
		case fda.EvalEvent:
			fmt.Printf("  eval at step %d: acc=%.4f\n", ev.Point.Step, ev.Point.TestAcc)
		}
	})

	// 2. Step it halfway, then cancel — as a served run would be when its
	//    client disappears.
	for sess.StepCount() < 60 {
		if _, err := sess.Step(); err != nil {
			check(err)
		}
	}
	cancel()
	if _, err := sess.Step(); !errors.Is(err, context.Canceled) {
		check(fmt.Errorf("expected cancellation, got %v", err))
	}
	fmt.Printf("cancelled at step %d\n", sess.StepCount())

	// 3. Snapshot the full training state and persist it.
	snap, err := sess.Snapshot()
	check(err)
	path := "session-example.ckpt"
	check(fda.SaveCheckpoint(path, snap))
	defer os.Remove(path)

	// 4. Resume in a fresh session (fresh process, in real life) and run
	//    to completion.
	loaded, err := fda.LoadCheckpoint(path)
	check(err)
	resumed, err := fda.NewSession(context.Background(), cfg, newStrat())
	check(err)
	check(resumed.Restore(loaded))
	got, err := resumed.Run()
	check(err)

	// 5. The resumed trajectory is the uninterrupted one, bit for bit.
	fmt.Printf("uninterrupted: %v\n", want)
	fmt.Printf("resumed:       %v\n", got)
	if !reflect.DeepEqual(want, got) {
		check(errors.New("resumed run diverged"))
	}
	fmt.Println("cancelled-then-resumed run matches the uninterrupted run exactly")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "session example:", err)
		os.Exit(1)
	}
}
