// Bandwidth budget: the paper's §5 future-work proposal, implemented.
// Instead of picking Θ by hand, AdaptiveTheta adjusts it during training
// so the run's average communication tracks a target bytes-per-step
// budget: when consumption runs hot the controller raises Θ (fewer
// synchronizations); when there is headroom it lowers Θ (tighter
// synchronization for free).
//
// Run with:
//
//	go run ./examples/bandwidthbudget
package main

import (
	"fmt"

	"repro/fda"
)

func main() {
	train, test := fda.MNISTLike(17)
	nz := fda.FitNormalizer(train)
	nz.Apply(train)
	nz.Apply(test)

	model := func(rng *fda.RNG) *fda.Network {
		return fda.NewNetwork(rng,
			fda.NewDense(train.Dim(), 48, fda.GlorotUniformInit),
			fda.NewReLU(48),
			fda.NewDense(48, 10, fda.GlorotUniformInit),
		)
	}
	d := model(fda.NewRNG(0)).NumParams()
	const k = 8

	// One model synchronization costs roughly 2(K−1)·d·4 bytes cluster-wide
	// under ring accounting; express budgets as fractions of that.
	syncBytes := float64(2 * (k - 1) * d * 4)

	fmt.Printf("model d = %d, one synchronization ≈ %.0f kB cluster-wide\n\n", d, syncBytes/1e3)
	fmt.Printf("%-22s %10s %10s %8s %9s\n", "budget (B/step)", "comm (MB)", "B/step", "syncs", "test acc")

	for _, fraction := range []float64{1.0 / 100, 1.0 / 25, 1.0 / 5} {
		budget := syncBytes * fraction
		cfg := fda.Config{
			K: k, BatchSize: 32, Seed: 17,
			Model: model, Optimizer: fda.NewAdam(1e-3),
			Train: train, Test: test,
			MaxSteps: 600, EvalEvery: 50,
		}
		ctrl := fda.NewAdaptiveTheta(fda.NewLinearFDA(4e-5*float64(d)), budget)
		res := fda.MustRun(cfg, ctrl)
		perStep := float64(res.CommBytes) / float64(res.Steps)
		fmt.Printf("%-22.0f %10.3f %10.0f %8d %9.3f\n",
			budget, float64(res.CommBytes)/1e6, perStep, res.SyncCount, res.FinalTestAcc)
	}

	fmt.Println("\nhigher budgets are spent on more synchronizations (lower Θ);")
	fmt.Println("tight budgets force Θ up while training continues locally.")
}
