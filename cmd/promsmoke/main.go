// Command promsmoke validates a Prometheus text exposition (as served
// by fdaserve's GET /metrics): HELP/TYPE comment structure, sample-line
// syntax, and histogram cumulative-bucket monotonicity. It exits 0 when
// the input parses and prints the sample count, so CI can smoke-test a
// live scrape without a Prometheus server in the loop.
//
//	curl -s localhost:8080/metrics | promsmoke
//	promsmoke -in metrics.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	b, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	text := string(b)
	if err := obs.ValidatePrometheusText(text); err != nil {
		fatal(err)
	}
	samples := 0
	for _, line := range strings.Split(text, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples++
		}
	}
	if samples == 0 {
		fatal(fmt.Errorf("exposition holds no samples"))
	}
	fmt.Printf("promsmoke: ok (%d samples)\n", samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promsmoke:", err)
	os.Exit(1)
}
