package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// The validator behind promsmoke must accept what the registry writes
// and reject malformed expositions — the CI smoke depends on both
// directions.
func TestValidatorRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("smoke_total", "A counter.", "kind", "a").Add(0)
	r.Histogram("smoke_seconds", "A histogram.", obs.Seconds)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheusText(sb.String()); err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, sb.String())
	}
	if err := obs.ValidatePrometheusText("not a metric line\n"); err == nil {
		t.Fatal("garbage accepted")
	}
}
